#!/usr/bin/env bash
# Local equivalent of .github/workflows/ci.yml: release gate, sanitizer
# gate, and the static-analysis gate.  Tools that are not installed are
# skipped with a notice instead of failing, so the script is useful on
# minimal machines; CI runs the full set.
#
# Usage: ci/run_checks.sh [release|sanitize|lint|all]   (default: all)
set -euo pipefail

cd "$(dirname "$0")/.."
what="${1:-all}"
jobs="$(nproc 2>/dev/null || echo 4)"

note() { printf '\n== %s ==\n' "$*"; }

run_release() {
  note "release gate: -Werror build, tests at off and full check levels"
  cmake --preset werror
  cmake --build --preset werror -j "${jobs}"
  ctest --test-dir build-werror --output-on-failure -j "${jobs}"
  ICBDD_CHECK_LEVEL=full ctest --test-dir build-werror --output-on-failure \
    -j "${jobs}"
}

run_sanitize() {
  note "sanitizer gate: ASan + UBSan, cheap per-op checking"
  cmake --preset asan-ubsan
  cmake --build --preset asan-ubsan -j "${jobs}"
  ICBDD_CHECK_LEVEL=cheap \
  ASAN_OPTIONS=strict_string_checks=1:detect_stack_use_after_return=1 \
  UBSAN_OPTIONS=print_stacktrace=1 \
    ctest --test-dir build-asan --output-on-failure -j "${jobs}"
}

run_lint() {
  note "static-analysis gate: cppcheck + clang-tidy"
  cmake --preset dev >/dev/null
  if command -v cppcheck >/dev/null 2>&1; then
    cmake --build build --target cppcheck
  else
    echo "cppcheck not installed -- skipped (CI runs it)"
  fi
  if command -v clang-tidy >/dev/null 2>&1; then
    cmake --build build --target tidy
  else
    echo "clang-tidy not installed -- skipped (CI runs it)"
  fi
}

case "${what}" in
  release)  run_release ;;
  sanitize) run_sanitize ;;
  lint)     run_lint ;;
  all)      run_release; run_sanitize; run_lint ;;
  *) echo "usage: $0 [release|sanitize|lint|all]" >&2; exit 2 ;;
esac

note "done"
