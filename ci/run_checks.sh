#!/usr/bin/env bash
# Local equivalent of .github/workflows/ci.yml: release gate, sanitizer
# gate, and the static-analysis gate.  Tools that are not installed are
# skipped with a notice instead of failing, so the script is useful on
# minimal machines; CI runs the full set.
#
# Usage: ci/run_checks.sh [release|sanitize|tsan|lint|lint-strict|bench|
#                          parallel|spill|svc|loadgen|all]
# (default: all)
set -euo pipefail

cd "$(dirname "$0")/.."
what="${1:-all}"
jobs="$(nproc 2>/dev/null || echo 4)"

note() { printf '\n== %s ==\n' "$*"; }

run_release() {
  note "release gate: -Werror build, tests at off and full check levels"
  cmake --preset werror
  cmake --build --preset werror -j "${jobs}"
  ctest --test-dir build-werror --output-on-failure -j "${jobs}"
  ICBDD_CHECK_LEVEL=full ctest --test-dir build-werror --output-on-failure \
    -j "${jobs}"
}

run_bench_json() {
  note "observability gate: bench --json + ICBDD_TRACE schema validation"
  ICBDD_TRACE=build-werror/bench-trace.jsonl \
    ./build-werror/bench/table1_fifo --json --depth 3 \
    > build-werror/bench-table1.jsonl
  if command -v python3 >/dev/null 2>&1; then
    python3 - <<'EOF'
import json
lines = [json.loads(l)
         for l in open('build-werror/bench-table1.jsonl') if l.strip()]
header, cells = lines[0], lines[1:]
assert header['schema'] == 'icbdd-bench-v1', header
assert header['cells'] == len(cells), (header['cells'], len(cells))
for c in cells:
    for key in ('group', 'method', 'verdict', 'time_s', 'iterations',
                'peak_iterate_nodes', 'member_sizes', 'metrics'):
        assert key in c, (key, c)
    # Packed 16-byte nodes plus the true-footprint terms (refcount side
    # table, unique-table buckets, page-table overhead): mem_bytes is at
    # least the packed arena, never again the old 24-bytes/node layout and
    # never *under* the arena it accounts for (docs/node_layout.md).
    assert c['mem_bytes'] >= c['peak_allocated_nodes'] * 16, \
        ('mem accounting lost the packed arena term', c['mem_bytes'],
         c['peak_allocated_nodes'])
    assert c['mem_bytes'] < c['peak_allocated_nodes'] * 24 + (1 << 20), \
        ('mem accounting ballooned past the packed layout', c['mem_bytes'],
         c['peak_allocated_nodes'])
    assert c['spilled'] is False, ('unspilled bench reported spilled', c)
    histos = c['metrics'].get('histograms', {})
    assert any(k.startswith('bdd.apply.') for k in histos), \
        ('no bdd.apply.* latency histogram', sorted(histos))
    for name, summary in histos.items():
        for key in ('count', 'sum', 'p50', 'p90', 'p99'):
            assert key in summary, (name, key, summary)
events = [json.loads(l)
          for l in open('build-werror/bench-trace.jsonl') if l.strip()]
assert any(e['ev'] == 'run_end' for e in events), 'trace has no run_end'
print(f"ok: {len(cells)} bench cells, {len(events)} trace events")
EOF
  else
    echo "python3 not installed -- schema validation skipped (CI runs it)"
  fi

  note "observability gate: doctor --metrics-prom exposition"
  ./build-werror/examples/icbdd_doctor --model fifo --metrics-prom \
    > build-werror/doctor-prom.txt
  if command -v python3 >/dev/null 2>&1; then
    python3 - <<'EOF'
import re
import sys
sys.path.insert(0, 'ci')
from loadgen import check_grammar
text = "".join(l for l in open('build-werror/doctor-prom.txt')
               if l.startswith(('#', 'icbdd_')))
errors = check_grammar(text)
assert not errors, errors[:5]
assert re.search(r'^# TYPE icbdd_bdd_apply_\w+_latency_us histogram$', text,
                 re.M), 'no apply-latency histogram family'
print(f"ok: {len(text.splitlines())} exposition lines")
EOF
  fi
}

run_parallel() {
  note "parallel gate: --apply-workers 1 must match serial byte for byte"
  # The determinism contract (docs/parallel.md): applyWorkers <= 1 takes the
  # exact serial code path, so the bench JSONL -- every counter, every
  # iteration count, every node total, every histogram sample count -- must
  # match byte for byte once the wall-clock-valued fields (time_s and the
  # microsecond latency quantiles, which no two process runs can agree on)
  # are masked out.
  ./build-werror/bench/table1_fifo --json --depth 3 \
    > build-werror/bench-serial.jsonl
  ./build-werror/bench/table1_fifo --json --depth 3 --apply-workers 1 \
    > build-werror/bench-workers1.jsonl
  if command -v python3 >/dev/null 2>&1; then
    python3 - <<'EOF'
import json

def canonical(path):
    out = []
    for line in open(path):
        if not line.strip():
            continue
        obj = json.loads(line)
        obj.pop('time_s', None)
        for h in obj.get('metrics', {}).get('histograms', {}).values():
            for k in ('sum', 'min', 'max', 'p50', 'p90', 'p99'):
                h.pop(k, None)  # wall-clock microseconds; count stays
        out.append(json.dumps(obj, sort_keys=True))
    return out

serial = canonical('build-werror/bench-serial.jsonl')
workers1 = canonical('build-werror/bench-workers1.jsonl')
for i, (a, b) in enumerate(zip(serial, workers1)):
    assert a == b, f'line {i + 1} diverged:\nserial   {a}\nworkers1 {b}'
assert len(serial) == len(workers1), (len(serial), len(workers1))
print(f"ok: --apply-workers 1 identical to serial "
      f"({len(serial)} lines, timing fields masked)")
EOF
  else
    echo "python3 not installed -- identity check skipped (CI runs it)"
  fi

  note "parallel gate: shared-manager apply workers (identity + speedup)"
  # Always enforce that every worker count reaches the serial verdict and
  # iteration count; enforce the >=2x speedup target at 4 workers only when
  # the host actually has >= 4 cores (the committed BENCH_parallel_apply.json
  # records hardware_cores for the same reason).
  ./build-werror/bench/table_parallel_apply --depth 8 \
    > build-werror/bench-parallel.jsonl
  if command -v python3 >/dev/null 2>&1; then
    python3 - <<'EOF'
import json
lines = [json.loads(l)
         for l in open('build-werror/bench-parallel.jsonl') if l.strip()]
header, cells, summary = lines[0], lines[1:-1], lines[-1]
assert header['schema'] == 'icbdd-bench-parallel-v1', header
assert header['cells'] == len(cells), (header['cells'], len(cells))
assert summary.get('summary') is True, summary
assert summary['outcomes_identical'], \
    ('parallel apply changed the verification outcome', cells)
serial = next(c for c in cells if c['apply_workers'] == 1)
for c in cells:
    assert c['verdict'] == serial['verdict'], (c, serial)
    assert c['iterations'] == serial['iterations'], (c, serial)
cores = header['hardware_cores']
w4 = summary['speedup'].get('w4')
if cores >= 4 and w4 is not None:
    assert w4 >= 2.0, f'speedup at 4 workers is {w4:.2f}x, want >= 2.0x'
    print(f"ok: {len(cells)} cells, outcomes identical, w4 {w4:.2f}x")
else:
    print(f"ok: {len(cells)} cells, outcomes identical "
          f"(speedup gate waived: {cores} core(s), w4 {w4})")
EOF
  else
    echo "python3 not installed -- parallel validation skipped (CI runs it)"
  fi
}

run_svc() {
  note "service gate: icbdd_serve NDJSON smoke (rejection + kill/resume)"
  if command -v python3 >/dev/null 2>&1; then
    python3 ci/svc_smoke.py ./build-werror/examples/icbdd_serve
  else
    echo "python3 not installed -- service smoke skipped (CI runs it)"
  fi
}

run_loadgen() {
  note "load gate: ${1:-240}-job soak against icbdd_serve --metrics-port"
  if command -v python3 >/dev/null 2>&1; then
    python3 ci/loadgen.py --serve "${2:-./build-werror/examples/icbdd_serve}" \
      --jobs "${1:-240}" --workers 4 \
      --summary-json "${3:-build-werror/loadgen-summary.json}"
  else
    echo "python3 not installed -- load soak skipped (CI runs it)"
  fi
}

run_spill() {
  note "spill gate: tiny RAM budget, identical verdicts, page faults > 0"
  # The beyond-RAM acceptance check (docs/external_memory.md): the depth-4
  # FIFO Fwd sweep peaks around 9300 nodes; a 2048-node resident budget
  # forces most of the arena through the page file.  Verdicts, iteration
  # counts, and node totals must match the unspilled run exactly, and the
  # spilled cells must show real pager traffic.
  ./build-werror/bench/table1_fifo --json --depth 4 \
    > build-werror/bench-nospill.jsonl
  ./build-werror/bench/table1_fifo --json --depth 4 \
    --spill-dir build-werror/spill-scratch --spill-threshold 2048 \
    > build-werror/bench-spill.jsonl
  if command -v python3 >/dev/null 2>&1; then
    python3 - <<'EOF'
import json

def cells(path):
    rows = [json.loads(l) for l in open(path) if l.strip()]
    return {(c['group'], c['method']): c for c in rows if 'method' in c}

plain = cells('build-werror/bench-nospill.jsonl')
spill = cells('build-werror/bench-spill.jsonl')
assert plain.keys() == spill.keys(), (sorted(plain), sorted(spill))
spilled_cells = 0
for key, p in plain.items():
    s = spill[key]
    # Storage tier only: the decision procedure must be untouched.
    for field in ('verdict', 'iterations', 'peak_iterate_nodes',
                  'member_sizes', 'peak_allocated_nodes'):
        assert p[field] == s[field], (key, field, p[field], s[field])
    assert p['spilled'] is False, key
    if s['spilled']:
        spilled_cells += 1
        counters = s['metrics']['counters']
        assert counters.get('bdd.xmem.page_faults', 0) > 0, \
            ('spilled cell with no page faults', key, counters)
        assert counters.get('bdd.xmem.spill_bytes', 0) > 0, (key, counters)
        # The resident budget caps the arena term well under the peak.
        assert s['mem_bytes'] < p['mem_bytes'], (key, s['mem_bytes'],
                                                 p['mem_bytes'])
assert spilled_cells > 0, 'no cell engaged the spill tier'
print(f"ok: {len(plain)} cells identical, {spilled_cells} ran beyond RAM")
EOF
  else
    echo "python3 not installed -- spill validation skipped (CI runs it)"
  fi
}

run_loadgen_spill() {
  note "load gate: spill-mode soak (svc.jobs.spilled + bdd.xmem.* scrape)"
  if command -v python3 >/dev/null 2>&1; then
    python3 ci/loadgen.py --serve ./build-werror/examples/icbdd_serve \
      --jobs 60 --workers 4 --spill \
      --summary-json build-werror/loadgen-spill-summary.json
  else
    echo "python3 not installed -- spill soak skipped (CI runs it)"
  fi
}

run_sanitize() {
  note "sanitizer gate: ASan + UBSan, cheap per-op checking"
  cmake --preset asan-ubsan
  cmake --build --preset asan-ubsan -j "${jobs}"
  ICBDD_CHECK_LEVEL=cheap \
  ASAN_OPTIONS=strict_string_checks=1:detect_stack_use_after_return=1 \
  UBSAN_OPTIONS=print_stacktrace=1 \
    ctest --test-dir build-asan --output-on-failure -j "${jobs}"
}

run_tsan() {
  note "thread-sanitizer gate: parallel scheduler raced under --jobs 4"
  cmake --preset tsan
  cmake --build --preset tsan -j "${jobs}"
  TSAN_OPTIONS=halt_on_error=1 ctest --preset tsan
  ./build-tsan/bench/table1_fifo --depth 3 --jobs 4 >/dev/null
  # Reduced soak: the HTTP thread, the workers, and the emit path all raced
  # under TSan (smaller job count -- TSan is ~10x slower).
  TSAN_OPTIONS=halt_on_error=1 \
    run_loadgen 40 ./build-tsan/examples/icbdd_serve \
    build-tsan/loadgen-summary.json
}

run_lint() {
  note "static-analysis gate: cppcheck + clang-tidy"
  cmake --preset dev >/dev/null
  if command -v cppcheck >/dev/null 2>&1; then
    cmake --build build --target cppcheck
  else
    echo "cppcheck not installed -- skipped (CI runs it)"
  fi
  if command -v clang-tidy >/dev/null 2>&1; then
    cmake --build build --target tidy
  else
    echo "clang-tidy not installed -- skipped (CI runs it)"
  fi
}

run_lint_strict() {
  note "lint-strict gate: icbdd rules L1-L5 (hard fail, no tools needed)"
  python3 ci/lint/icbdd_lint.py --root .
  python3 tests/lint/lint_fixtures_test.py

  note "lint-strict gate: metric catalog generated from docs/observability.md"
  python3 ci/gen_metric_catalog.py --check

  note "lint-strict gate: clang thread-safety analysis (-Werror)"
  if command -v clang++ >/dev/null 2>&1; then
    cmake -B build-tsa -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
      -DCMAKE_CXX_COMPILER=clang++ -DICBDD_WERROR=ON
    cmake --build build-tsa -j "${jobs}"
  else
    echo "clang++ not installed -- thread-safety build skipped (CI runs it)"
  fi

  note "lint-strict gate: cppcheck (hard fail)"
  if command -v cppcheck >/dev/null 2>&1; then
    cppcheck --version
    cmake --preset dev >/dev/null
    cmake --build build --target cppcheck
  else
    echo "cppcheck not installed -- skipped (CI runs it, pinned version)"
  fi
}

case "${what}" in
  release)  run_release; run_bench_json; run_parallel; run_spill; run_svc;
            run_loadgen; run_loadgen_spill ;;
  sanitize) run_sanitize ;;
  tsan)     run_tsan ;;
  lint)     run_lint ;;
  lint-strict) run_lint_strict ;;
  bench)    run_bench_json ;;
  parallel) run_parallel ;;
  spill)    run_spill; run_loadgen_spill ;;
  svc)      run_svc ;;
  loadgen)  run_loadgen ;;
  all)      run_release; run_bench_json; run_parallel; run_spill; run_svc;
            run_loadgen; run_loadgen_spill; run_sanitize; run_tsan; run_lint;
            run_lint_strict ;;
  *) echo "usage: $0 [release|sanitize|tsan|lint|lint-strict|bench|parallel|" >&2
     echo "          spill|svc|loadgen|all]" >&2
     exit 2 ;;
esac

note "done"
