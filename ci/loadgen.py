#!/usr/bin/env python3
"""Load harness for icbdd_serve: soak the service and reconcile /metrics.

Drives one icbdd_serve process with hundreds of concurrent small jobs over
the icbdd-svc-v1 stdin/stdout protocol while scraping its Prometheus
endpoint, then cross-checks the two views of the same run:

  * every scrape must parse under the text-exposition grammar (HELP/TYPE
    comments, sample lines, histogram bucket/sum/count families);
  * counters must be monotone across scrapes, histogram buckets cumulative
    with +Inf == _count;
  * the NDJSON stream and the final scrape must agree: accepted ==
    completed + failed, and the svc.job.run_us histogram must have exactly
    one sample per completed job.

Prints a latency-percentile summary (p50/p90/p99 from the per-job NDJSON
seconds) and optionally writes it as JSON for the CI artifact.  Pure
stdlib -- no third-party packages.

Usage:
  ci/loadgen.py --serve ./build/examples/icbdd_serve [--jobs 240]
                [--workers 4] [--failures 8] [--timeout 300]
                [--summary-json out.json]
"""

from __future__ import annotations

import argparse
import json
import re
import subprocess
import sys
import tempfile
import threading
import time
import urllib.request

# Prometheus text exposition 0.0.4, restricted to what icbdd emits: no
# timestamps, only the "le" label, metric names icbdd_*.
COMMENT_RE = re.compile(r"^# (HELP|TYPE) icbdd_[a-zA-Z0-9_]+(?: .*)?$")
SAMPLE_RE = re.compile(
    r'^(icbdd_[a-zA-Z0-9_]+)(\{le="(?:\d+|\+Inf)"\})? '
    r"(-?\d+(?:\.\d+)?(?:[eE][+-]?\d+)?)$"
)
TYPE_RE = re.compile(r"^# TYPE (icbdd_[a-zA-Z0-9_]+) (counter|gauge|histogram)$")


def check_grammar(text: str) -> list[str]:
    """Returns grammar violations ([] means the exposition is well-formed)."""
    errors = []
    for lineno, line in enumerate(text.splitlines(), 1):
        if not line:
            errors.append(f"line {lineno}: empty line")
        elif line.startswith("#"):
            if not COMMENT_RE.match(line):
                errors.append(f"line {lineno}: bad comment {line!r}")
        elif not SAMPLE_RE.match(line):
            errors.append(f"line {lineno}: bad sample {line!r}")
    return errors


def parse_samples(text: str) -> dict[str, float]:
    """Maps 'name' or 'name{le=\"...\"}' to its value."""
    out = {}
    for line in text.splitlines():
        m = SAMPLE_RE.match(line)
        if m:
            out[m.group(1) + (m.group(2) or "")] = float(m.group(3))
    return out


def parse_types(text: str) -> dict[str, str]:
    return {m.group(1): m.group(2) for m in map(TYPE_RE.match, text.splitlines()) if m}


def check_histograms(samples: dict[str, float], types: dict[str, str]) -> list[str]:
    """Cumulative buckets, +Inf == _count, for every histogram family."""
    errors = []
    for name, kind in types.items():
        if kind != "histogram":
            continue
        buckets = []
        for key, value in samples.items():
            m = re.match(re.escape(name) + r'_bucket\{le="(\d+|\+Inf)"\}$', key)
            if m:
                le = float("inf") if m.group(1) == "+Inf" else float(m.group(1))
                buckets.append((le, value))
        buckets.sort()
        if not buckets or buckets[-1][0] != float("inf"):
            errors.append(f"{name}: missing +Inf bucket")
            continue
        for (_, lo), (_, hi) in zip(buckets, buckets[1:]):
            if hi < lo:
                errors.append(f"{name}: non-cumulative buckets")
        if buckets[-1][1] != samples.get(f"{name}_count"):
            errors.append(f"{name}: +Inf bucket != _count")
        if f"{name}_sum" not in samples:
            errors.append(f"{name}: missing _sum")
    return errors


def check_monotone(prev: dict[str, float], cur: dict[str, float],
                   types: dict[str, str]) -> list[str]:
    errors = []
    for key, value in prev.items():
        base = key.split("{")[0]
        kind = types.get(base)
        if kind == "counter" or (kind == "histogram" and base != key):
            if cur.get(key, 0.0) < value:
                errors.append(f"{key}: went backwards {value} -> {cur.get(key)}")
    return errors


def percentile(sorted_values: list[float], q: float) -> float:
    if not sorted_values:
        return 0.0
    idx = min(len(sorted_values) - 1, int(q * (len(sorted_values) - 1) + 0.5))
    return sorted_values[idx]


def job_line(i: int, fail: bool, spill: bool = False) -> str:
    if fail:
        # An unknown model passes admission and fails in the worker: the
        # job_failed path must reconcile exactly like the completed one.
        return json.dumps({"id": f"load-{i}", "model": "no-such-model"})
    req = {
        "id": f"load-{i}",
        "model": ["fifo", "mutex", "network"][i % 3],
        "method": "xici",
        "size": 3,
        "width": 4,
        "want_trace": False,
    }
    if spill:
        req["spill"] = True
    return json.dumps(req)


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--serve", default="./build/examples/icbdd_serve")
    ap.add_argument("--jobs", type=int, default=240)
    ap.add_argument("--workers", type=int, default=4)
    ap.add_argument("--failures", type=int, default=8,
                    help="jobs submitted with an unknown model (job_failed path)")
    ap.add_argument("--apply-workers", type=int, default=0,
                    help="intra-problem apply workers per job "
                         "(icbdd_serve --apply-workers; 0 = serial)")
    ap.add_argument("--spill", action="store_true",
                    help="submit every job with \"spill\": true against a "
                         "spill-enabled service and reconcile the "
                         "svc.jobs.spilled / bdd.xmem.* counters "
                         "(docs/external_memory.md)")
    ap.add_argument("--timeout", type=float, default=300.0)
    ap.add_argument("--summary-json", default="")
    args = ap.parse_args()

    counts = {"job_accepted": 0, "job_rejected": 0, "job_result": 0,
              "job_failed": 0}
    seconds = []
    stop_line = {}
    lock = threading.Lock()

    def reader(stream):
        for raw in stream:
            try:
                obj = json.loads(raw)
            except json.JSONDecodeError:
                continue
            with lock:
                kind = obj.get("type")
                if kind in counts:
                    counts[kind] += 1
                if kind == "job_result":
                    seconds.append(float(obj.get("seconds", 0.0)))
                if kind == "service_stop":
                    stop_line.update(obj)

    with tempfile.TemporaryDirectory(prefix="icbdd-loadgen-") as journal:
        cmd = [args.serve, "--workers", str(args.workers),
               "--queue-bound", str(args.jobs + 8),
               "--journal", journal, "--metrics-port", "0"]
        if args.apply_workers > 0:
            cmd += ["--apply-workers", str(args.apply_workers)]
        if args.spill:
            # A threshold below even the model build guarantees every
            # spill-requesting job engages the tier, exercising the
            # spilled-result plumbing and metric fold-in end to end.
            cmd += ["--spill-dir", f"{journal}/spill",
                    "--spill-threshold-nodes", "64"]
        proc = subprocess.Popen(
            cmd, stdin=subprocess.PIPE, stdout=subprocess.PIPE, text=True)
        start = json.loads(proc.stdout.readline())
        port = start.get("metrics_port")
        if not isinstance(port, int):
            print("FAIL: service_start carries no metrics_port", file=sys.stderr)
            proc.kill()
            return 1
        threading.Thread(target=reader, args=(proc.stdout,), daemon=True).start()

        for i in range(args.jobs):
            fail = i % max(1, args.jobs // max(1, args.failures)) == 1 \
                if args.failures else False
            proc.stdin.write(job_line(i, fail, args.spill) + "\n")
        proc.stdin.flush()

        def scrape(path="/metrics"):
            with urllib.request.urlopen(
                    f"http://127.0.0.1:{port}{path}", timeout=10) as resp:
                return resp.status, resp.read().decode()

        errors = []
        prev_samples = {}
        scrapes = 0
        deadline = time.monotonic() + args.timeout
        while True:
            status, text = scrape()
            scrapes += 1
            if status != 200:
                errors.append(f"/metrics returned {status}")
            errors += check_grammar(text)
            samples, types = parse_samples(text), parse_types(text)
            errors += check_histograms(samples, types)
            errors += check_monotone(prev_samples, samples, types)
            prev_samples = samples
            with lock:
                done = counts["job_result"] + counts["job_failed"]
                accepted = counts["job_accepted"]
            if accepted == args.jobs and done == accepted:
                break
            if time.monotonic() > deadline:
                errors.append(
                    f"timeout: {done}/{accepted} jobs finished of {args.jobs}")
                break
            time.sleep(0.2)

        hstatus, htext = scrape("/healthz")
        if hstatus != 200 or not htext.startswith("ok"):
            errors.append(f"/healthz not ok: {hstatus} {htext!r}")

        proc.stdin.close()
        proc.wait(timeout=60)

    # Reconciliation: the NDJSON stream, the final scrape, and the
    # service_stop trailer must all describe the same run.
    with lock:
        accepted, completed = counts["job_accepted"], counts["job_result"]
        failed, rejected = counts["job_failed"], counts["job_rejected"]
    if accepted != completed + failed:
        errors.append(f"accepted {accepted} != completed {completed} + failed {failed}")
    if accepted + rejected != args.jobs:
        errors.append(f"accepted {accepted} + rejected {rejected} != submitted {args.jobs}")
    for key, want in [("icbdd_svc_jobs_accepted", accepted),
                      ("icbdd_svc_jobs_completed", completed),
                      ("icbdd_svc_jobs_failed", failed),
                      ("icbdd_svc_job_run_us_count", completed)]:
        got = prev_samples.get(key, 0.0)
        if got != want:
            errors.append(f"{key}: prometheus says {got}, NDJSON says {want}")
    if args.spill:
        # Every completed job requested the tier and the threshold sits
        # below the model build, so all of them must have engaged it, and
        # the per-job pager counters must have been folded into the scrape.
        got = prev_samples.get("icbdd_svc_jobs_spilled", 0.0)
        if got != completed:
            errors.append(f"icbdd_svc_jobs_spilled: prometheus says {got}, "
                          f"want {completed}")
        if "icbdd_bdd_xmem_spill_bytes" not in prev_samples:
            errors.append("spill soak exposed no icbdd_bdd_xmem_spill_bytes")
    if stop_line.get("jobs_completed") != completed:
        errors.append(f"service_stop jobs_completed {stop_line.get('jobs_completed')}"
                      f" != {completed}")

    seconds.sort()
    summary = {
        "jobs": args.jobs,
        "workers": args.workers,
        "apply_workers": args.apply_workers,
        "accepted": accepted,
        "completed": completed,
        "failed": failed,
        "rejected": rejected,
        "scrapes": scrapes,
        "run_seconds_p50": percentile(seconds, 0.50),
        "run_seconds_p90": percentile(seconds, 0.90),
        "run_seconds_p99": percentile(seconds, 0.99),
        "errors": errors,
    }
    print(f"loadgen: {accepted} accepted = {completed} completed + {failed} failed"
          f" ({rejected} rejected), {scrapes} scrapes")
    print(f"loadgen: job run seconds p50={summary['run_seconds_p50']:.6f}"
          f" p90={summary['run_seconds_p90']:.6f}"
          f" p99={summary['run_seconds_p99']:.6f}")
    if args.summary_json:
        with open(args.summary_json, "w") as f:
            json.dump(summary, f, indent=2)
            f.write("\n")
    if errors:
        for e in errors[:20]:
            print(f"FAIL: {e}", file=sys.stderr)
        return 1
    print("loadgen: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
