#!/usr/bin/env python3
"""End-to-end smoke test for icbdd_serve and the icbdd-svc-v1 protocol.

Three phases, every emitted line schema-validated:

  admission -- --drain with a tiny queue bound: a batch whose last valid
               request must be rejected with reason=queue_full and whose
               malformed line must be rejected with reason=parse_error,
               while the accepted jobs all complete;
  kill      -- a long job with checkpoint_every=1 is started, the process
               is SIGKILLed right after its first job_progress line (the
               checkpoint is journaled before the line is emitted, so the
               journal is guaranteed non-empty);
  resume    -- a fresh process on the same --journal recovers the job and
               must finish it with resumed=true and resumed_from >= 1.

Usage: ci/svc_smoke.py [path/to/icbdd_serve]
"""
import json
import os
import signal
import subprocess
import sys
import tempfile

SERVE = sys.argv[1] if len(sys.argv) > 1 else "./build-werror/examples/icbdd_serve"
SCHEMA = "icbdd-svc-v1"

REQUIRED = {
    "service_start": {"workers", "queue_bound", "journal"},
    "job_accepted": {"id", "queue_depth"},
    "job_rejected": {"reason", "queue_depth", "queue_bound"},
    "job_progress": {"id", "iteration", "checkpoint", "worker"},
    "job_result": {"id", "model", "method", "verdict", "iterations",
                   "seconds", "resumed", "worker"},
    "job_failed": {"id", "error", "worker"},
    "service_stop": {"jobs_accepted", "jobs_rejected", "jobs_completed",
                     "jobs_failed", "jobs_resumed", "checkpoints_saved"},
}
REJECT_REASONS = {"queue_full", "parse_error", "invalid_request", "duplicate_id"}


def validate(raw):
    line = json.loads(raw)
    assert line.get("schema") == SCHEMA, f"bad schema: {raw}"
    kind = line.get("type")
    assert kind in REQUIRED, f"unknown type: {raw}"
    missing = REQUIRED[kind] - line.keys()
    assert not missing, f"{kind} missing {missing}: {raw}"
    if kind == "job_rejected":
        assert line["reason"] in REJECT_REASONS, raw
    return line


def run_batch(args, requests):
    proc = subprocess.run([SERVE] + args, input="\n".join(requests) + "\n",
                          capture_output=True, text=True, timeout=300)
    assert proc.returncode == 0, proc.stderr
    return [validate(l) for l in proc.stdout.splitlines() if l.strip()]


def of_type(lines, kind):
    return [l for l in lines if l["type"] == kind]


def phase_admission():
    lines = run_batch(
        ["--drain", "--queue-bound", "2", "--checkpoint-every", "0"],
        [
            '{"id":"ok1","model":"mutex","method":"xici","size":3}',
            '{"id":"ok2","model":"fifo","method":"fwd","size":3,"width":4}',
            '{"id":"over","model":"mutex","method":"xici","size":3}',
            '{"id":"torn","model":',
            '{"id":"ok1","model":"mutex","method":"xici","size":3}',
        ])
    rejected = of_type(lines, "job_rejected")
    reasons = sorted(r["reason"] for r in rejected)
    assert reasons == ["duplicate_id", "parse_error", "queue_full"], reasons
    queue_full = next(r for r in rejected if r["reason"] == "queue_full")
    assert queue_full["id"] == "over" and queue_full["queue_bound"] == 2
    results = of_type(lines, "job_result")
    assert sorted(r["id"] for r in results) == ["ok1", "ok2"], results
    assert all(r["verdict"] == "holds" for r in results), results
    stop = of_type(lines, "service_stop")[0]
    assert stop["jobs_accepted"] == 2 and stop["jobs_rejected"] == 3
    assert stop["jobs_completed"] == 2 and stop["jobs_failed"] == 0
    print(f"ok: admission phase, {len(lines)} lines validated")
    return len(lines)


def phase_kill_and_resume(journal):
    # Phase kill: start the long job, SIGKILL on its first checkpoint.
    request = ('{"id":"big","model":"network","method":"fwd","size":5,'
               '"checkpoint_every":1}\n')
    proc = subprocess.Popen(
        [SERVE, "--journal", journal, "--checkpoint-every", "1"],
        stdin=subprocess.PIPE, stdout=subprocess.PIPE, text=True)
    killed_lines = []
    try:
        proc.stdin.write(request)
        proc.stdin.flush()
        while True:
            raw = proc.stdout.readline()
            assert raw, "serve exited before the first checkpoint"
            line = validate(raw)
            killed_lines.append(line)
            if line["type"] == "job_progress":
                break
    finally:
        proc.kill()
        proc.wait()
    assert of_type(killed_lines, "job_accepted"), killed_lines
    assert os.path.exists(os.path.join(journal, "big.req")), \
        "journal lost the killed job's request"
    assert os.path.exists(os.path.join(journal, "big.ckpt")), \
        "journal lost the killed job's checkpoint"

    # Phase resume: a fresh process recovers and finishes the job.
    lines = run_batch(["--journal", journal, "--checkpoint-every", "1"], [""])
    results = of_type(lines, "job_result")
    assert len(results) == 1, lines
    result = results[0]
    assert result["id"] == "big" and result["resumed"] is True, result
    assert result["resumed_from"] >= 1, result
    assert result["verdict"] == "holds", result
    stop = of_type(lines, "service_stop")[0]
    assert stop["jobs_resumed"] == 1 and stop["jobs_completed"] == 1, stop
    assert not os.listdir(journal), "journal not cleaned after completion"
    print(f"ok: kill+resume phase, resumed from iteration "
          f"{result['resumed_from']} of {result['iterations']}, "
          f"{len(killed_lines) + len(lines)} lines validated")
    return len(killed_lines) + len(lines)


def main():
    signal.alarm(600)  # whole-script watchdog
    total = phase_admission()
    with tempfile.TemporaryDirectory(prefix="icbdd-svc-smoke-") as journal:
        total += phase_kill_and_resume(journal)
    print(f"ok: icbdd-svc-v1 smoke passed, {total} lines validated")


if __name__ == "__main__":
    main()
