#!/usr/bin/env python3
"""ICBDD-specific lint gate (pure stdlib -- runs anywhere python3 does).

Enforces the project invariants no off-the-shelf checker knows about
(docs/static_analysis.md is the rationale; src/util/lint.hpp declares the
marker macros):

  L1  engine-io        no raw I/O or sleeping inside an engine iteration --
                       such work must route through the deadline-credit
                       helpers (obs::TraceSession, ICBDD_CHECK audits) so it
                       cannot flip a resource-capped verdict into a timeout.
  L2  safe-point       autoReorderIfNeeded() and CheckpointEmitter::emit()
                       only under an ICBDD_SAFE_POINT(...) marker (within
                       the preceding 12 lines): both mutate or serialize
                       manager state that is only coherent at iteration
                       boundaries.
  L3  raw-node-escape  no interior node representation in a public surface:
                       no Node pointer/reference and no packed-word
                       (word0/word1) accessor in a public section of a src
                       header, and no BddManager::Node / PackedNode use
                       outside src/bdd + src/check: nodes move under GC and
                       reordering and their packing is NodeStore-private;
                       only Edge/Bdd handles are stable.
  L4  metric-catalog   every metric-name string literal in src/ matches the
                       dotted-name catalog in docs/observability.md (the
                       icbdd-metric-catalog block, one 'name kind help...'
                       line per metric -- the same block that generates
                       src/obs/metric_catalog.inc, see
                       ci/gen_metric_catalog.py).  A literal ending in '.'
                       is a prefix used for dynamic composition and passes
                       when some catalog name starts with it.  The kind is
                       checked too: names passed to recordHistogram /
                       mergeHistogram must be catalogued as histograms, and
                       names passed to the scalar writers (add, setGauge,
                       setGaugeMax) must not be.
  L5  relaxed-order    every std::memory_order_relaxed carries a "relaxed:"
                       justification comment on the same line or within the
                       3 preceding lines.

Escape hatch: ICBDD_LINT_SUPPRESS(<rule>, "<reason>") suppresses that
rule's findings on its own line and the next one.  Suppressions are counted
and reported in the summary so they stay visible.

Usage:
  icbdd_lint.py [--root DIR]              lint the source tree (default:
                                          the repo containing this script)
  icbdd_lint.py --fixture FILE [FILE...]  lint specific files with every
                                          rule active regardless of path
                                          (the fixture corpus driver)
  icbdd_lint.py --list-rules              print rule ids and one-liners

Exit status: 0 clean, 1 findings, 2 usage/internal error.
"""

from __future__ import annotations

import argparse
import re
import sys
from dataclasses import dataclass, field
from pathlib import Path

RULES = {
    "L1": "engine-io: raw I/O / sleeps inside an engine iteration",
    "L2": "safe-point: reorder/checkpoint call without ICBDD_SAFE_POINT",
    "L3": "raw-node-escape: interior node type or packed word escapes the "
          "manager",
    "L4": "metric-catalog: metric name not in docs/observability.md",
    "L5": "relaxed-order: memory_order_relaxed without 'relaxed:' comment",
}

# L2: a marker this many lines (or fewer) above the call registers it.
SAFE_POINT_WINDOW = 12
# L5: justification comment may sit this many lines above the load/store.
RELAXED_WINDOW = 3

# L1 applies to the engine iteration loops and the ICI kernels they drive.
ENGINE_FILES = {
    "src/verif/forward.cpp",
    "src/verif/backward.cpp",
    "src/verif/fd_forward.cpp",
    "src/verif/ici_backward.cpp",
    "src/verif/xici_backward.cpp",
}
ENGINE_DIR_PREFIXES = ("src/ici/",)

BANNED_IO = [
    (re.compile(r"\bstd\s*::\s*(cout|cerr|clog)\b"), "stream I/O"),
    (re.compile(r"\b(printf|fprintf|puts|fwrite|fputs)\s*\("), "stdio I/O"),
    (re.compile(r"\bstd\s*::\s*(ofstream|fstream)\b"), "file stream"),
    (re.compile(r"\bfopen\s*\("), "file open"),
    (re.compile(r"\bsystem\s*\("), "subprocess"),
    (re.compile(r"\b(sleep_for|sleep_until|usleep|nanosleep|sleep)\s*\("),
     "sleeping"),
]

REORDER_CALL = re.compile(r"\bautoReorderIfNeeded\s*\(")
SAFE_POINT = re.compile(r"\bICBDD_SAFE_POINT\s*\(")
CKPT_DECL = re.compile(r"\bCheckpointEmitter\s+(\w+)\s*[({]")
SUPPRESS = re.compile(r"\bICBDD_LINT_SUPPRESS\s*\(\s*(L[1-5])\s*,")

PUBLIC_NODE = re.compile(r"\bNode\s*[*&]")
PACKED_WORD = re.compile(r"\bword[01]\b")
ACCESS_SPEC = re.compile(r"^\s*(public|private|protected)\s*:")
CLASS_DECL = re.compile(r"^\s*(class|struct)\s+(?:\w+\s+)*(\w+)[^;]*$")
FOREIGN_NODE = re.compile(r"\bBddManager\s*::\s*Node\b")
FOREIGN_PACKED = re.compile(r"\bPackedNode\b")

METRIC_NAME = re.compile(r"^(bdd|ici|svc)\.[a-z0-9_.]+$")
METRIC_PREFIX = re.compile(r"^(bdd|ici|svc)\.([a-z0-9_.]*\.)?$")
RELAXED = re.compile(r"\bmemory_order_relaxed\b")
RELAXED_TAG = re.compile(r"relaxed:")

CATALOG_BLOCK = re.compile(r"<!--\s*icbdd-metric-catalog\s*(.*?)-->", re.S)
CATALOG_KINDS = ("counter", "gauge", "histogram")
HISTO_WRITE = re.compile(r"\b(recordHistogram|mergeHistogram)\s*\(")
SCALAR_WRITE = re.compile(r"\b(add|setGauge|setGaugeMax)\s*\(")


@dataclass
class Line:
    """One source line split into code, string-literal contents, comments."""

    code: str
    strings: list[str]
    comment: str


@dataclass
class Finding:
    path: str
    line: int
    rule: str
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}: {self.rule}: {self.message}"


@dataclass
class Report:
    findings: list[Finding] = field(default_factory=list)
    suppressed: int = 0

    def add(self, path: str, line: int, rule: str, message: str) -> None:
        self.findings.append(Finding(path, line, rule, message))


def lex(text: str) -> list[Line]:
    """Split each line into code / string contents / comment text.

    A hand-rolled scanner (not regex) so nested quotes, escapes, and
    multi-line block comments are handled; raw strings are treated as
    ordinary strings, which is fine for this codebase (no raw strings with
    embedded quotes in linted paths).
    """
    lines: list[Line] = []
    in_block = False
    for raw in text.splitlines():
        code: list[str] = []
        strings: list[str] = []
        comment: list[str] = []
        i, n = 0, len(raw)
        while i < n:
            ch = raw[i]
            nxt = raw[i + 1] if i + 1 < n else ""
            if in_block:
                if ch == "*" and nxt == "/":
                    in_block = False
                    i += 2
                else:
                    comment.append(ch)
                    i += 1
                continue
            if ch == "/" and nxt == "/":
                comment.append(raw[i + 2:])
                break
            if ch == "/" and nxt == "*":
                in_block = True
                i += 2
                continue
            if ch == '"' or ch == "'":
                quote = ch
                i += 1
                lit: list[str] = []
                while i < n:
                    if raw[i] == "\\":
                        lit.append(raw[i:i + 2])
                        i += 2
                        continue
                    if raw[i] == quote:
                        i += 1
                        break
                    lit.append(raw[i])
                    i += 1
                if quote == '"':
                    strings.append("".join(lit))
                code.append(quote + quote)  # keep positions roughly aligned
                continue
            code.append(ch)
            i += 1
        lines.append(Line("".join(code), strings, "".join(comment)))
    return lines


def load_catalog(root: Path) -> list[tuple[str, str]] | None:
    """Parses the catalog block into (name, kind) pairs.

    Each block line is 'name kind help...'; the help text is the Prometheus
    HELP string and irrelevant to linting.  Lines without a recognized kind
    token are rejected so a malformed block fails loudly instead of
    silently shrinking the catalog.
    """
    doc = root / "docs" / "observability.md"
    if not doc.is_file():
        return None
    match = CATALOG_BLOCK.search(doc.read_text(encoding="utf-8"))
    if match is None:
        return None
    entries: list[tuple[str, str]] = []
    for ln in match.group(1).splitlines():
        parts = ln.split(None, 2)
        if not parts:
            continue
        if len(parts) < 2 or parts[1] not in CATALOG_KINDS:
            print(f"icbdd_lint: malformed catalog line (want "
                  f"'name kind help...'): {ln.strip()!r}", file=sys.stderr)
            return None
        entries.append((parts[0], parts[1]))
    return entries or None


def catalog_kind(name: str, catalog: list[tuple[str, str]]) -> str | None:
    """The catalogued kind of `name`, or None when it is not catalogued."""
    for entry, kind in catalog:
        if "<" in entry:
            pattern = re.escape(entry).replace(r"\<op\>", r"[a-z0-9_]+")
            if re.fullmatch(pattern, name):
                return kind
        elif entry == name:
            return kind
    return None


def prefix_kinds(prefix: str, catalog: list[tuple[str, str]]) -> set[str]:
    """Kinds of every catalogued name starting with `prefix`."""
    return {kind for entry, kind in catalog if entry.startswith(prefix)}


class FileLinter:
    """Lints one file; which rules fire where is decided by the caller."""

    def __init__(self, path: Path, rel: str, rules: set[str],
                 catalog: list[str] | None, report: Report) -> None:
        self.path = path
        self.rel = rel
        self.rules = rules
        self.catalog = catalog
        self.report = report
        self.lines = lex(path.read_text(encoding="utf-8", errors="replace"))
        # Suppressions: rule id -> set of line numbers it covers (1-based).
        self.suppressions: dict[str, set[int]] = {}
        for num, line in enumerate(self.lines, 1):
            for match in SUPPRESS.finditer(line.code):
                self.suppressions.setdefault(match.group(1), set()).update(
                    {num, num + 1})

    def emit(self, num: int, rule: str, message: str) -> None:
        if num in self.suppressions.get(rule, ()):  # counted, not reported
            self.report.suppressed += 1
            return
        self.report.add(self.rel, num, rule, message)

    def run(self) -> None:
        if "L1" in self.rules:
            self.check_engine_io()
        if "L2" in self.rules:
            self.check_safe_points()
        if "L3" in self.rules:
            self.check_node_escape()
        if "L4" in self.rules and self.catalog is not None:
            self.check_metric_names()
        if "L5" in self.rules:
            self.check_relaxed()

    def check_engine_io(self) -> None:
        for num, line in enumerate(self.lines, 1):
            for pattern, what in BANNED_IO:
                if pattern.search(line.code):
                    self.emit(num, "L1",
                              f"{what} inside an engine iteration -- route "
                              "through the deadline-credit helpers "
                              "(obs::TraceSession / auditArenaCreditingTime)")

    def check_safe_points(self) -> None:
        ckpt_vars: set[str] = set()
        for line in self.lines:
            match = CKPT_DECL.search(line.code)
            if match:
                ckpt_vars.add(match.group(1))
        ckpt_call = (re.compile(
            r"\b(" + "|".join(re.escape(v) for v in sorted(ckpt_vars)) +
            r")\s*\.\s*emit\s*\(") if ckpt_vars else None)
        marker_lines = [num for num, line in enumerate(self.lines, 1)
                        if SAFE_POINT.search(line.code)]

        def registered(num: int) -> bool:
            return any(num - SAFE_POINT_WINDOW <= m <= num
                       for m in marker_lines)

        for num, line in enumerate(self.lines, 1):
            if REORDER_CALL.search(line.code) and not registered(num):
                self.emit(num, "L2",
                          "autoReorderIfNeeded() without an ICBDD_SAFE_POINT "
                          f"marker in the preceding {SAFE_POINT_WINDOW} lines")
            if ckpt_call and ckpt_call.search(line.code) \
                    and not registered(num):
                self.emit(num, "L2",
                          "checkpoint emit without an ICBDD_SAFE_POINT "
                          f"marker in the preceding {SAFE_POINT_WINDOW} lines")

    def check_node_escape(self) -> None:
        # Part 1 (headers): Node* / Node& in a public class section.
        if self.rel.endswith((".hpp", ".h")):
            access = "public"  # file scope: treat as public until told else
            depth_at_class: list[tuple[int, str]] = []
            depth = 0
            for num, line in enumerate(self.lines, 1):
                spec = ACCESS_SPEC.match(line.code)
                if spec:
                    access = spec.group(1)
                if CLASS_DECL.match(line.code) and "{" in line.code:
                    depth_at_class.append((depth, access))
                    access = ("public" if line.code.lstrip()
                              .startswith("struct") else "private")
                depth += line.code.count("{") - line.code.count("}")
                while depth_at_class and depth <= depth_at_class[-1][0]:
                    access = depth_at_class.pop()[1]
                if access == "public" and depth_at_class:
                    if PUBLIC_NODE.search(line.code):
                        self.emit(num, "L3",
                                  "interior Node pointer/reference in a "
                                  "public section -- expose Edge/Bdd handles "
                                  "instead (nodes move under GC and "
                                  "reordering)")
                    if PACKED_WORD.search(line.code):
                        self.emit(num, "L3",
                                  "packed node word (word0/word1) in a "
                                  "public section -- the packing is "
                                  "NodeStore-private; expose "
                                  "(var, hi, lo, next) field accessors "
                                  "instead")
        # Part 2 (everywhere outside the manager + its audit hooks):
        # naming the interior node type at all.
        if not self.rel.startswith(("src/bdd/", "src/check/")):
            for num, line in enumerate(self.lines, 1):
                if FOREIGN_NODE.search(line.code):
                    self.emit(num, "L3",
                              "BddManager::Node used outside src/bdd + "
                              "src/check -- interior nodes are not a stable "
                              "API; use Edge/Bdd handles")
                if FOREIGN_PACKED.search(line.code):
                    self.emit(num, "L3",
                              "PackedNode used outside src/bdd + src/check "
                              "-- the node representation is not a stable "
                              "API; use Edge/Bdd handles")

    def check_metric_names(self) -> None:
        assert self.catalog is not None
        for num, line in enumerate(self.lines, 1):
            # The writer call on the line decides which kind is legal:
            # histogram writers take only histogram names, scalar writers
            # never do.  Reader calls and bare literals skip the kind check.
            want_histogram = bool(HISTO_WRITE.search(line.code))
            scalar_write = bool(SCALAR_WRITE.search(line.code))
            for lit in line.strings:
                if lit.endswith("."):  # dynamic composition prefix
                    if not METRIC_PREFIX.match(lit):
                        continue
                    kinds = prefix_kinds(lit, self.catalog)
                    if not kinds:
                        self.emit(num, "L4",
                                  f'metric prefix "{lit}" matches no '
                                  "catalog entry in docs/observability.md")
                    elif want_histogram and "histogram" not in kinds:
                        self.emit(num, "L4",
                                  f'metric prefix "{lit}" covers no '
                                  "histogram-kind catalog entry but is "
                                  "passed to a histogram writer")
                elif METRIC_NAME.match(lit):
                    kind = catalog_kind(lit, self.catalog)
                    if kind is None:
                        self.emit(num, "L4",
                                  f'metric name "{lit}" is not in the '
                                  "icbdd-metric-catalog block of "
                                  "docs/observability.md")
                    elif want_histogram and kind != "histogram":
                        self.emit(num, "L4",
                                  f'metric name "{lit}" is catalogued as a '
                                  f"{kind} but passed to recordHistogram/"
                                  "mergeHistogram (histograms only)")
                    elif scalar_write and not want_histogram \
                            and kind == "histogram":
                        self.emit(num, "L4",
                                  f'metric name "{lit}" is catalogued as a '
                                  "histogram but passed to a counter/gauge "
                                  "writer (use recordHistogram)")

    def check_relaxed(self) -> None:
        for num, line in enumerate(self.lines, 1):
            if not RELAXED.search(line.code):
                continue
            if not self.relaxed_justified(num):
                self.emit(num, "L5",
                          "std::memory_order_relaxed without an adjacent "
                          "'relaxed:' justification comment (same statement "
                          "or the comment block directly above it)")

    def relaxed_justified(self, num: int) -> bool:
        """Tag on the statement's own lines, or in the comment block
        immediately above the statement (the statement may wrap)."""
        i = num - 1  # 0-based index of the flagged line
        if RELAXED_TAG.search(self.lines[i].comment):
            return True
        j = i  # walk to the statement's first line (bounded)
        budget = RELAXED_WINDOW
        while j > 0 and budget > 0:
            prev = self.lines[j - 1]
            if not prev.code.strip() or prev.comment \
                    or prev.code.rstrip().endswith((";", "{", "}", ":")):
                break
            j -= 1
            budget -= 1
        k = j - 1  # the contiguous comment block above the statement
        while k >= 0 and self.lines[k].comment \
                and not self.lines[k].code.strip():
            if RELAXED_TAG.search(self.lines[k].comment):
                return True
            k -= 1
        return False


def rules_for(rel: str) -> set[str]:
    """Which rules apply to a tree file at repo-relative path `rel`."""
    rules: set[str] = set()
    if not rel.startswith("src/"):
        return rules
    if (rel in ENGINE_FILES or rel.startswith(ENGINE_DIR_PREFIXES)) \
            and rel.endswith(".cpp"):
        rules.add("L1")
    if not rel.startswith("src/bdd/"):
        rules.add("L2")  # the manager itself implements reordering
    rules.update(("L3", "L4", "L5"))
    return rules


def iter_tree(root: Path):
    for sub in ("src",):
        base = root / sub
        if not base.is_dir():
            continue
        for path in sorted(base.rglob("*")):
            if path.suffix in (".cpp", ".hpp", ".h"):
                yield path


def main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--root", type=Path,
                        default=Path(__file__).resolve().parents[2],
                        help="repository root (default: two levels up)")
    parser.add_argument("--fixture", nargs="+", type=Path, metavar="FILE",
                        help="lint these files with every rule active")
    parser.add_argument("--list-rules", action="store_true")
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule, text in RULES.items():
            print(f"{rule}  {text}")
        return 0

    root = args.root.resolve()
    catalog = load_catalog(root)
    report = Report()

    if args.fixture:
        for path in args.fixture:
            if not path.is_file():
                print(f"icbdd_lint: no such file: {path}", file=sys.stderr)
                return 2
            FileLinter(path, str(path), set(RULES), catalog, report).run()
    else:
        if catalog is None:
            print("icbdd_lint: cannot read the icbdd-metric-catalog block "
                  f"from {root}/docs/observability.md", file=sys.stderr)
            return 2
        for path in iter_tree(root):
            rel = path.relative_to(root).as_posix()
            rules = rules_for(rel)
            if rules:
                FileLinter(path, rel, rules, catalog, report).run()

    for finding in report.findings:
        print(finding.render())
    print(f"icbdd_lint: {len(report.findings)} finding"
          f"{'' if len(report.findings) == 1 else 's'}, "
          f"{report.suppressed} suppression"
          f"{'' if report.suppressed == 1 else 's'}")
    return 1 if report.findings else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
