// The external-memory tier in isolation (docs/external_memory.md): PageFile
// slot I/O and failure typing, and PagedStore's two contracts -- exact
// std::vector semantics while disengaged, and value-preserving eviction /
// fault-in under a resident-page budget once engaged.  The NodeStore mounts
// its packed-node arena on this store, so the zero-on-expose assertions here
// are load-bearing for the whole BDD package (docs/node_layout.md).
#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "xmem/page_file.hpp"
#include "xmem/paged_store.hpp"
#include "xmem/stats.hpp"

namespace icb::xmem {
namespace {

/// Same shape as the node arena's record: 16 trivially-copyable bytes.
struct Rec {
  std::uint64_t a = 0;
  std::uint64_t b = 0;
};

bool operator==(const Rec& x, const Rec& y) { return x.a == y.a && x.b == y.b; }

/// A distinctive non-zero payload for record i.
Rec recFor(std::size_t i) {
  return Rec{0x1000u + i, 0x2000u + 3 * i};
}

std::string tempName(const char* name) {
  return (std::filesystem::path(testing::TempDir()) / name).string();
}

using Store = PagedStore<Rec>;
constexpr std::size_t kPR = Store::kPageRecords;

// ---------------------------------------------------------------------------
// PageFile

TEST(PageFile, WritesAndReadsSlots) {
  const std::string path = tempName("pf_roundtrip.xpage");
  PageFile file;
  file.open(path, sizeof(Rec) * 4, sizeof(Rec));

  std::vector<Rec> page0{recFor(0), recFor(1), recFor(2), recFor(3)};
  std::vector<Rec> page2{recFor(10), recFor(11), recFor(12), recFor(13)};
  file.writePage(0, page0.data());
  file.writePage(2, page2.data());

  // Header + three slots: slot 2 is the high-water mark even though slot 1
  // was never written (its bytes are a file hole).
  EXPECT_EQ(file.bytesOnDisk(),
            PageFile::kHeaderBytes + 3 * sizeof(Rec) * 4);

  std::vector<Rec> back(4);
  file.readPage(2, back.data());
  EXPECT_EQ(back, page2);
  file.readPage(0, back.data());
  EXPECT_EQ(back, page0);
}

TEST(PageFile, HeaderIsSelfDescribing) {
  const std::string path = tempName("pf_header.xpage");
  PageFile file;
  file.open(path, 1024, 16);
  // The scratch file exists until close(); its first bytes are the magic.
  std::ifstream raw(path, std::ios::binary);
  ASSERT_TRUE(raw.good());
  char magic[14] = {};
  raw.read(magic, sizeof(magic));
  EXPECT_EQ(std::string(magic, sizeof(magic)), "icbdd-xpage-v3");
}

TEST(PageFile, CloseUnlinksTheScratchFile) {
  const std::string path = tempName("pf_unlink.xpage");
  PageFile file;
  file.open(path, 256, 16);
  ASSERT_TRUE(std::filesystem::exists(path));
  file.close();
  EXPECT_FALSE(file.isOpen());
  EXPECT_FALSE(std::filesystem::exists(path));
  file.close();  // idempotent
}

TEST(PageFile, ShortReadPastEofIsTypedWithPathAndOffset) {
  const std::string path = tempName("pf_short.xpage");
  PageFile file;
  file.open(path, 256, 16);
  std::vector<char> buf(256);
  bool threw = false;
  try {
    file.readPage(7, buf.data());  // never written; beyond EOF
  } catch (const IoError& err) {
    threw = true;
    EXPECT_EQ(err.path(), path);
    EXPECT_GE(err.byteOffset(), PageFile::kHeaderBytes);
    EXPECT_NE(std::string(err.what()).find("truncated"), std::string::npos);
    EXPECT_NE(std::string(err.what()).find(path), std::string::npos);
  }
  EXPECT_TRUE(threw);
}

TEST(PageFile, UnopenableDirectoryIsTyped) {
  PageFile file;
  // A path whose parent is a regular file cannot be created.
  const std::string blocker = tempName("pf_blocker");
  { std::ofstream make(blocker); make << "x"; }
  EXPECT_THROW(file.open(blocker + "/sub/pf.xpage", 256, 16), IoError);
}

// ---------------------------------------------------------------------------
// PagedStore, disengaged: the vector drop-in

TEST(PagedStore, DisengagedBehavesLikeZeroFilledVector) {
  Store s;
  EXPECT_EQ(s.size(), 0u);
  s.resize(10);
  EXPECT_EQ(s.size(), 10u);
  for (std::size_t i = 0; i < 10; ++i) EXPECT_EQ(s[i], Rec{}) << i;

  s[3] = recFor(3);
  s.push_back(recFor(10));
  Rec& r = s.emplace_back();
  EXPECT_EQ(r, Rec{});
  r = recFor(11);
  EXPECT_EQ(s.size(), 12u);
  EXPECT_EQ(s[3], recFor(3));
  EXPECT_EQ(s[10], recFor(10));
  EXPECT_EQ(s[11], recFor(11));
  EXPECT_FALSE(s.engaged());
}

TEST(PagedStore, ShrinkThenGrowReexposesZeroRecords) {
  Store s;
  s.resize(2 * kPR);
  for (std::size_t i = 0; i < 2 * kPR; ++i) s[i] = recFor(i);
  // Cut into the middle of page 1, then grow back: the re-exposed tail must
  // be zero even though the stale bytes are still in the page buffer.
  const std::size_t cut = kPR + kPR / 2;
  s.resize(cut);
  s.resize(2 * kPR);
  for (std::size_t i = 0; i < cut; ++i) EXPECT_EQ(s[i], recFor(i)) << i;
  for (std::size_t i = cut; i < 2 * kPR; ++i) EXPECT_EQ(s[i], Rec{}) << i;
}

// ---------------------------------------------------------------------------
// PagedStore, engaged: budgeted residency over a PageFile

struct EngagedStore {
  PageFile file;
  PagerStats stats;
  Store store;

  explicit EngagedStore(const char* name, std::size_t pages,
                        std::size_t budget) {
    store.resize(pages * kPR);
    for (std::size_t i = 0; i < store.size(); ++i) store[i] = recFor(i);
    file.open(tempName(name), Store::kPageBytes, sizeof(Rec));
    store.engage(budget, &file, &stats);
  }
};

TEST(PagedStore, EngageEvictsDownToBudgetAndSpillsBytes) {
  EngagedStore e("ps_engage.xpage", /*pages=*/10, /*budget=*/3);
  EXPECT_TRUE(e.store.engaged());
  EXPECT_EQ(e.store.budgetPages(), 3u);
  EXPECT_LE(e.store.residentPages(), 3u);
  EXPECT_GE(e.stats.evictions, 7u);
  // Every evicted page was dirty (pre-engagement data), so it was written
  // back and counted once in the spill high-water.
  EXPECT_GE(e.stats.spillBytes, 7 * Store::kPageBytes);
  EXPECT_EQ(e.stats.writeBytes, e.stats.spillBytes);
  EXPECT_GT(e.file.bytesOnDisk(), PageFile::kHeaderBytes);
}

TEST(PagedStore, BudgetIsFlooredAtMinResidentPages) {
  EngagedStore e("ps_floor.xpage", /*pages=*/6, /*budget=*/0);
  EXPECT_EQ(e.store.budgetPages(), Store::kMinResidentPages);
}

TEST(PagedStore, FaultInRestoresEveryRecordExactly) {
  EngagedStore e("ps_fault.xpage", /*pages=*/10, /*budget=*/3);
  // Sweeping the whole store re-reads evicted pages through the file.
  for (std::size_t i = 0; i < e.store.size(); ++i) {
    EXPECT_EQ(static_cast<const Store&>(e.store)[i], recFor(i)) << i;
  }
  EXPECT_GT(e.stats.pageFaults, 0u);
  EXPECT_GE(e.stats.readBytes, e.stats.pageFaults * Store::kPageBytes);
  EXPECT_LE(e.store.residentPages(), 3u);
  EXPECT_GT(e.stats.pageReadUs.count(), 0u);
  EXPECT_GT(e.stats.pageWriteUs.count(), 0u);
}

TEST(PagedStore, DirtyWriteBackSurvivesRepeatedEviction) {
  EngagedStore e("ps_dirty.xpage", /*pages=*/10, /*budget=*/3);
  // Mutate one record on a faulted-in page, then cycle the working set so
  // the page is evicted (write-back) and faulted again.
  e.store[5 * kPR + 7] = recFor(999999);
  for (int sweep = 0; sweep < 2; ++sweep) {
    for (std::size_t p = 0; p < 10; ++p) {
      (void)static_cast<const Store&>(e.store)[p * kPR];
    }
  }
  EXPECT_EQ(static_cast<const Store&>(e.store)[5 * kPR + 7], recFor(999999));
  EXPECT_EQ(static_cast<const Store&>(e.store)[5 * kPR + 6], recFor(5 * kPR + 6));
}

TEST(PagedStore, ReexposureOverEvictedPagesReadsZero) {
  EngagedStore e("ps_zero.xpage", /*pages=*/10, /*budget=*/3);
  // Truncate into the middle of a page that is currently spilled, then grow
  // back past it: below the cut the disk copy must survive, above it the
  // records must be zero -- the stale bytes live only in the spill file.
  const std::size_t cut = 5 * kPR + kPR / 2;
  e.store.resize(cut);
  e.store.resize(10 * kPR);
  for (std::size_t i = 5 * kPR; i < cut; ++i) {
    EXPECT_EQ(static_cast<const Store&>(e.store)[i], recFor(i)) << i;
  }
  for (std::size_t i = cut; i < 10 * kPR; ++i) {
    EXPECT_EQ(static_cast<const Store&>(e.store)[i], Rec{}) << i;
  }
}

TEST(PagedStore, GrowthWhileEngagedStaysWithinBudget) {
  EngagedStore e("ps_grow.xpage", /*pages=*/4, /*budget=*/3);
  const std::size_t base = e.store.size();
  for (std::size_t i = 0; i < 6 * kPR; ++i) {
    e.store.push_back(recFor(base + i));
  }
  EXPECT_LE(e.store.residentPages(), 3u);
  for (std::size_t i = 0; i < e.store.size(); ++i) {
    EXPECT_EQ(static_cast<const Store&>(e.store)[i], recFor(i)) << i;
  }
}

TEST(PagedStore, ResidentAccessDoesNotInvalidateReferences) {
  EngagedStore e("ps_refstable.xpage", /*pages=*/10, /*budget=*/3);
  // Eviction happens only while servicing a miss: two records on the same
  // resident page can be held across further same-page accesses.
  Rec& first = e.store[2 * kPR + 1];
  const Rec copy = first;
  (void)e.store[2 * kPR + 9];  // same page: no fault, no eviction
  EXPECT_EQ(first, copy);
  EXPECT_EQ(&first, &e.store[2 * kPR + 1]);
}

}  // namespace
}  // namespace icb::xmem
