// Section III.B exact termination test: tautology checking on implicit
// disjunctions, implication and equality between implicitly conjoined
// lists -- validated against explicitly built conjunctions, across all
// cofactor-choice strategies and with the Theorem 3 shortcut on and off.
#include <gtest/gtest.h>

#include "ici/termination.hpp"
#include "test_util.hpp"

namespace icb {
namespace {

ConjunctList randomList(BddManager& mgr, unsigned nvars, Rng& rng,
                        unsigned count) {
  ConjunctList list(&mgr);
  for (unsigned i = 0; i < count; ++i) {
    list.push(test::randomBdd(mgr, nvars, rng, 3));
  }
  return list;
}

struct TermParam {
  CofactorChoice choice;
  bool shortcut;
  std::uint64_t seed;
};

class TerminationSweep : public ::testing::TestWithParam<TermParam> {};

TEST_P(TerminationSweep, TautologyAgreesWithExplicitDisjunction) {
  const auto [choice, shortcut, seed] = GetParam();
  BddManager mgr;
  constexpr unsigned kVars = 8;
  for (unsigned i = 0; i < kVars; ++i) mgr.newVar();
  Rng rng(seed);
  TerminationOptions options;
  options.cofactorChoice = choice;
  options.restrictShortcut = shortcut;
  TerminationChecker checker(mgr, options);

  int tautCount = 0;
  for (int round = 0; round < 60; ++round) {
    std::vector<Bdd> keep;
    std::vector<Edge> disj;
    Bdd expected = mgr.zero();
    const unsigned count = 2 + static_cast<unsigned>(rng.below(4));
    for (unsigned i = 0; i < count; ++i) {
      Bdd f = test::randomBdd(mgr, kVars, rng, 3);
      if (round % 4 == 0 && i + 1 == count) {
        f = f | !expected;  // bias toward tautologies
      }
      keep.push_back(f);
      disj.push_back(f.edge());
      expected |= f;
    }
    const bool taut = expected.isOne();
    tautCount += taut ? 1 : 0;
    EXPECT_EQ(checker.disjunctionIsTautology(disj), taut)
        << "round " << round;
  }
  EXPECT_GT(tautCount, 5);
  EXPECT_LT(tautCount, 55);
}

TEST_P(TerminationSweep, ImplicationAgreesWithExplicitConjunction) {
  const auto [choice, shortcut, seed] = GetParam();
  BddManager mgr;
  constexpr unsigned kVars = 8;
  for (unsigned i = 0; i < kVars; ++i) mgr.newVar();
  Rng rng(seed * 3 + 1);
  TerminationOptions options;
  options.cofactorChoice = choice;
  options.restrictShortcut = shortcut;
  TerminationChecker checker(mgr, options);

  int implCount = 0;
  for (int round = 0; round < 40; ++round) {
    ConjunctList x = randomList(mgr, kVars, rng, 3);
    Bdd y = test::randomBdd(mgr, kVars, rng, 3);
    if (round % 3 == 0) y = y | x.evaluate();  // bias toward implications
    const bool expected = x.evaluate().implies(y);
    implCount += expected ? 1 : 0;
    EXPECT_EQ(checker.implies(x, y), expected) << "round " << round;
  }
  EXPECT_GT(implCount, 3);
}

TEST_P(TerminationSweep, ListEqualityAgreesWithExplicitConjunctions) {
  const auto [choice, shortcut, seed] = GetParam();
  BddManager mgr;
  constexpr unsigned kVars = 8;
  for (unsigned i = 0; i < kVars; ++i) mgr.newVar();
  Rng rng(seed * 7 + 5);
  TerminationOptions options;
  options.cofactorChoice = choice;
  options.restrictShortcut = shortcut;
  TerminationChecker checker(mgr, options);

  int equalCount = 0;
  for (int round = 0; round < 30; ++round) {
    ConjunctList x = randomList(mgr, kVars, rng, 3);
    ConjunctList y;
    if (round % 2 == 0) {
      // Same set, syntactically different list: split one member.
      y = ConjunctList(&mgr);
      for (const Bdd& c : x) y.push(c);
      const Bdd extra = test::randomBdd(mgr, kVars, rng, 2);
      y.push(x[0] | extra);  // implied by x[0]: no semantic change
    } else {
      y = randomList(mgr, kVars, rng, 3);
    }
    const bool expected = x.evaluate() == y.evaluate();
    equalCount += expected ? 1 : 0;
    EXPECT_EQ(checker.equal(x, y), expected) << "round " << round;
  }
  EXPECT_GT(equalCount, 5);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, TerminationSweep,
    ::testing::Values(
        TermParam{CofactorChoice::kTopOfFirst, true, 1},
        TermParam{CofactorChoice::kTopOfFirst, false, 2},
        TermParam{CofactorChoice::kHighestLevel, true, 3},
        TermParam{CofactorChoice::kHighestLevel, false, 4},
        TermParam{CofactorChoice::kMostCommon, true, 5},
        TermParam{CofactorChoice::kMostCommon, false, 6}),
    [](const ::testing::TestParamInfo<TermParam>& paramInfo) {
      std::string name;
      switch (paramInfo.param.choice) {
        case CofactorChoice::kTopOfFirst: name = "TopOfFirst"; break;
        case CofactorChoice::kHighestLevel: name = "HighestLevel"; break;
        case CofactorChoice::kMostCommon: name = "MostCommon"; break;
      }
      name += paramInfo.param.shortcut ? "Shortcut" : "Literal";
      name += "s" + std::to_string(paramInfo.param.seed);
      return name;
    });

TEST(Termination, TrivialCases) {
  BddManager mgr;
  mgr.newVar();
  TerminationChecker checker(mgr);
  // Empty disjunction is FALSE, not a tautology.
  EXPECT_FALSE(checker.disjunctionIsTautology({}));
  EXPECT_TRUE(checker.disjunctionIsTautology({kTrueEdge}));
  EXPECT_FALSE(checker.disjunctionIsTautology({kFalseEdge}));
  const Edge x = mgr.var(0).edge();
  EXPECT_TRUE(checker.disjunctionIsTautology({x, edgeNot(x)}));  // step 2
  EXPECT_FALSE(checker.disjunctionIsTautology({x, x}));
}

TEST(Termination, Step3PairwiseTautology) {
  BddManager mgr;
  for (unsigned i = 0; i < 4; ++i) mgr.newVar();
  TerminationChecker checker(mgr);
  // Neither pair is complementary but one pairwise OR is TRUE.
  const Bdd a = mgr.var(0) | mgr.var(1);
  const Bdd c = mgr.var(3);
  // a | (!a | x2) is a tautology (caught at step 3, not step 2).
  EXPECT_TRUE(checker.disjunctionIsTautology(
      {a.edge(), ((!a) | mgr.var(2)).edge(), c.edge()}));
  // a | (x0 & x2) | x3 misses x0=x1=x3=0: not a tautology.
  EXPECT_FALSE(checker.disjunctionIsTautology(
      {a.edge(), (mgr.var(0) & mgr.var(2)).edge(), c.edge()}));
}

TEST(Termination, MonotonicModeSkipsOneDirection) {
  BddManager mgr;
  for (unsigned i = 0; i < 4; ++i) mgr.newVar();
  TerminationOptions options;
  options.assumeMonotonic = true;
  TerminationChecker checker(mgr, options);
  // subset really is a subset: monotone equality must hold only when the
  // superset also implies the subset.
  ConjunctList subset(&mgr, {mgr.var(0), mgr.var(1)});
  ConjunctList superset(&mgr, {mgr.var(0)});
  EXPECT_FALSE(checker.equal(subset, superset));
  ConjunctList same(&mgr, {mgr.var(0) & mgr.var(1)});
  EXPECT_TRUE(checker.equal(subset, same));
}

TEST(Termination, StatsAccumulate) {
  BddManager mgr;
  for (unsigned i = 0; i < 6; ++i) mgr.newVar();
  Rng rng(9);
  TerminationChecker checker(mgr);
  for (int i = 0; i < 10; ++i) {
    ConjunctList x = randomList(mgr, 6, rng, 3);
    ConjunctList y = randomList(mgr, 6, rng, 3);
    (void)checker.equal(x, y);
  }
  EXPECT_GT(checker.stats().tautologyCalls, 0u);
  EXPECT_GT(checker.stats().implicationChecks, 0u);
  checker.resetStats();
  EXPECT_EQ(checker.stats().tautologyCalls, 0u);
}

}  // namespace
}  // namespace icb
