// The embedded scrape server (obs/httpd.hpp): ephemeral-port bind, GET
// routing, status codes for bad input, handler exceptions, and clean
// concurrent shutdown.  Talks to the server over a raw TCP socket so the
// on-the-wire HTTP framing itself is what is being tested.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>
#include <stdexcept>
#include <string>

#include "obs/httpd.hpp"

namespace icb {
namespace {

/// One request/response exchange against 127.0.0.1:port; returns the raw
/// response bytes (empty on connect failure).
std::string exchange(std::uint16_t port, const std::string& request) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return {};
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    ::close(fd);
    return {};
  }
  (void)::send(fd, request.data(), request.size(), 0);
  std::string response;
  char buf[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;
    response.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  return response;
}

obs::HttpResponse route(const std::string& path) {
  if (path == "/metrics") {
    obs::HttpResponse r;
    r.body = "icbdd_test_metric 1\n";
    return r;
  }
  if (path == "/boom") throw std::runtime_error("handler exploded");
  obs::HttpResponse r;
  r.status = 404;
  r.body = "not found\n";
  return r;
}

TEST(HttpServer, ServesGetOnEphemeralPort) {
  obs::HttpServer server(0, route);
  ASSERT_NE(server.port(), 0);  // the kernel's pick was reported back

  const std::string response =
      exchange(server.port(), "GET /metrics HTTP/1.1\r\nHost: x\r\n\r\n");
  EXPECT_NE(response.find("HTTP/1.1 200 OK\r\n"), std::string::npos);
  EXPECT_NE(response.find("Content-Length: 20\r\n"), std::string::npos);
  EXPECT_NE(response.find("icbdd_test_metric 1\n"), std::string::npos);
}

TEST(HttpServer, QueryStringsAreStrippedBeforeRouting) {
  obs::HttpServer server(0, route);
  const std::string response = exchange(
      server.port(), "GET /metrics?format=text HTTP/1.1\r\nHost: x\r\n\r\n");
  EXPECT_NE(response.find("200 OK"), std::string::npos);
}

TEST(HttpServer, RejectsNonGetAndMalformedRequests) {
  obs::HttpServer server(0, route);
  EXPECT_NE(exchange(server.port(),
                     "POST /metrics HTTP/1.1\r\nHost: x\r\n\r\n")
                .find("405"),
            std::string::npos);
  EXPECT_NE(exchange(server.port(), "garbage\r\n\r\n").find("400"),
            std::string::npos);
  EXPECT_NE(
      exchange(server.port(), "GET /nope HTTP/1.1\r\nHost: x\r\n\r\n")
          .find("404"),
      std::string::npos);
}

TEST(HttpServer, ThrowingHandlerAnswers500) {
  obs::HttpServer server(0, route);
  const std::string response =
      exchange(server.port(), "GET /boom HTTP/1.1\r\nHost: x\r\n\r\n");
  EXPECT_NE(response.find("500"), std::string::npos);
}

TEST(HttpServer, StopIsIdempotentAndStopsServing) {
  obs::HttpServer server(0, route);
  const std::uint16_t port = server.port();
  ASSERT_FALSE(
      exchange(port, "GET /metrics HTTP/1.1\r\nHost: x\r\n\r\n").empty());
  server.stop();
  server.stop();  // idempotent
  // After stop the port no longer accepts (or resets immediately).
  const std::string after =
      exchange(port, "GET /metrics HTTP/1.1\r\nHost: x\r\n\r\n");
  EXPECT_EQ(after.find("icbdd_test_metric"), std::string::npos);
}

TEST(HttpServer, ClientClosingMidResponseDoesNotWedgeTheServer) {
  // A body far larger than any socket buffer, so the server's sendAll needs
  // many send() calls and is still mid-body when the client vanishes.
  const std::string big(8u << 20, 'x');
  obs::HttpServer server(0, [&big](const std::string& path) {
    obs::HttpResponse r;
    r.body = path == "/big" ? big : "ok\n";
    return r;
  });

  // Hang up right after (or even before) the request is served.  SO_LINGER
  // with zero timeout turns close() into an immediate RST, so the server's
  // in-flight send() surfaces ECONNRESET/EPIPE -- the abandon path -- rather
  // than buffering quietly.  Repeat a few times to hit different phases.
  for (int i = 0; i < 5; ++i) {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    ASSERT_GE(fd, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(server.port());
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    ASSERT_EQ(
        ::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)),
        0);
    const std::string request = "GET /big HTTP/1.1\r\nHost: x\r\n\r\n";
    (void)::send(fd, request.data(), request.size(), 0);
    if (i % 2 == 0) {
      // Sometimes read a little first so the close lands mid-body, not
      // before the response even starts.
      char buf[1024];
      (void)::recv(fd, buf, sizeof(buf), 0);
    }
    linger lg{};
    lg.l_onoff = 1;
    lg.l_linger = 0;
    ::setsockopt(fd, SOL_SOCKET, SO_LINGER, &lg, sizeof(lg));
    ::close(fd);
  }

  // The serve loop survived every abandoned reply and still answers.
  const std::string response =
      exchange(server.port(), "GET /ok HTTP/1.1\r\nHost: x\r\n\r\n");
  EXPECT_NE(response.find("200 OK"), std::string::npos);
  EXPECT_NE(response.find("ok\n"), std::string::npos);
}

TEST(HttpServer, ManySequentialRequestsSurvive) {
  obs::HttpServer server(0, route);
  for (int i = 0; i < 50; ++i) {
    const std::string response =
        exchange(server.port(), "GET /metrics HTTP/1.1\r\nHost: x\r\n\r\n");
    ASSERT_NE(response.find("200 OK"), std::string::npos) << "request " << i;
  }
}

}  // namespace
}  // namespace icb
