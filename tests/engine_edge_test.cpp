// Engine corner cases: degenerate initial sets, trivial properties,
// already-violated properties, option interplay.
#include <gtest/gtest.h>

#include "sym/bitvector.hpp"
#include "verif/counterexample.hpp"
#include "verif/run_all.hpp"

namespace icb {
namespace {

struct Toy {
  std::unique_ptr<Fsm> fsm;
};

/// One-bit toggler: s' = s ^ in.
Toy makeToggler(BddManager& mgr, Bdd init, Bdd invariant) {
  Toy t;
  t.fsm = std::make_unique<Fsm>(mgr);
  VarManager& vars = t.fsm->vars();
  const unsigned in = vars.addInputBit("in");
  const unsigned s = vars.addStateBit("s");
  t.fsm->setNext(s, vars.cur(s) ^ vars.input(in));
  t.fsm->setInit(std::move(init));
  t.fsm->addInvariant(std::move(invariant));
  return t;
}

TEST(EngineEdge, EmptyInitialSetHoldsVacuously) {
  for (const Method m : allMethods()) {
    BddManager mgr;
    Toy t = makeToggler(mgr, mgr.zero(), mgr.zero());  // even G == FALSE
    const EngineResult r = runMethod(*t.fsm, m, {});
    EXPECT_EQ(r.verdict, Verdict::kHolds) << methodName(m);
  }
}

TEST(EngineEdge, TrivialTruePropertyHolds) {
  for (const Method m : allMethods()) {
    BddManager mgr;
    Toy t = makeToggler(mgr, mgr.one(), mgr.one());
    const EngineResult r = runMethod(*t.fsm, m, {});
    EXPECT_EQ(r.verdict, Verdict::kHolds) << methodName(m);
  }
}

TEST(EngineEdge, FalsePropertyViolatedImmediately) {
  for (const Method m : allMethods()) {
    BddManager mgr;
    Toy t = makeToggler(mgr, mgr.one(), mgr.zero());
    const EngineResult r = runMethod(*t.fsm, m, {});
    EXPECT_EQ(r.verdict, Verdict::kViolated) << methodName(m);
    if (r.trace.has_value()) {
      EXPECT_EQ(r.trace->states.size(), 1u);
    }
  }
}

TEST(EngineEdge, FullyReachableTogglerConverges) {
  // s toggles freely: both values reachable; the TRUE property holds.
  for (const Method m : allMethods()) {
    BddManager mgr;
    Toy t = makeToggler(mgr, mgr.one(), mgr.one());
    // Start from s == 0 only (var 1 is the state bit; var 0 the input).
    t.fsm->setInit(mgr.nvar(1));
    const EngineResult r = runMethod(*t.fsm, m, {});
    EXPECT_EQ(r.verdict, Verdict::kHolds) << methodName(m);
  }
}

TEST(EngineEdge, SelfLoopOnlyMachine) {
  // No inputs at all: s' = s.  Exercises empty input cubes everywhere.
  for (const Method m : allMethods()) {
    BddManager mgr;
    Fsm fsm(mgr);
    const unsigned s = fsm.vars().addStateBit("s");
    fsm.setNext(s, fsm.vars().cur(s));
    fsm.setInit(!fsm.vars().cur(s));
    fsm.addInvariant(!fsm.vars().cur(s));
    const EngineResult r = runMethod(fsm, m, {});
    EXPECT_EQ(r.verdict, Verdict::kHolds) << methodName(m);
  }
}

TEST(EngineEdge, FdWithBogusCandidatesStillCorrect) {
  // Candidates that are NOT functionally dependent must be skipped or
  // promoted without affecting the verdict.
  BddManager mgr;
  Fsm fsm(mgr);
  VarManager& vars = fsm.vars();
  const unsigned in = vars.addInputBit("in");
  const unsigned a = vars.addStateBit("a");
  const unsigned b = vars.addStateBit("b");
  // a counts mod 2 on input; b follows a XOR input: b is NOT a function of
  // a on the reachable set (it can differ), and init leaves b free.
  fsm.setNext(a, vars.cur(a) ^ vars.input(in));
  fsm.setNext(b, vars.cur(a) ^ vars.input(in) ^ vars.cur(b));
  fsm.setInit(!vars.cur(a));
  fsm.addInvariant(mgr.one());
  (void)b;
  const EngineResult r = runFdForward(fsm, {1}, {});
  EXPECT_EQ(r.verdict, Verdict::kHolds);
}

TEST(EngineEdge, FdPromotionPathExercised) {
  // Dependency holds in the initial state but breaks after one step:
  // b starts equal to a but then evolves independently via its own input.
  BddManager mgr;
  Fsm fsm(mgr);
  VarManager& vars = fsm.vars();
  const unsigned i1 = vars.addInputBit("i1");
  const unsigned i2 = vars.addInputBit("i2");
  const unsigned a = vars.addStateBit("a");
  const unsigned b = vars.addStateBit("b");
  fsm.setNext(a, vars.input(i1));
  fsm.setNext(b, vars.input(i2));
  fsm.setInit((!vars.cur(a)) & (!vars.cur(b)));
  fsm.addInvariant(mgr.one());
  const EngineResult r = runFdForward(fsm, {0, 1}, {});
  EXPECT_EQ(r.verdict, Verdict::kHolds);
  EXPECT_NE(r.note.find("promoted"), std::string::npos);
}

TEST(EngineEdge, AssistsThatAreRedundantDoNotChangeVerdicts) {
  BddManager mgr;
  Fsm fsm(mgr);
  VarManager& vars = fsm.vars();
  const unsigned in = vars.addInputBit("in");
  BitVec v;
  for (unsigned j = 0; j < 3; ++j) {
    v.push(vars.cur(vars.addStateBit("c" + std::to_string(j))));
  }
  const BitVec next = mux(vars.input(in) & !eqConst(v, 5), incTrunc(v), v);
  for (unsigned j = 0; j < 3; ++j) fsm.setNext(j, next.bit(j));
  fsm.setInit(eqConst(v, 0));
  fsm.addInvariant(uleConst(v, 5));
  fsm.addAssistInvariant(uleConst(v, 7));  // trivially true (width 3)
  fsm.addAssistInvariant(uleConst(v, 6));  // implied by the main invariant

  for (const Method m : allMethods()) {
    EngineOptions options;
    options.withAssists = true;
    const EngineResult r = runMethod(fsm, m, {}, options);
    EXPECT_EQ(r.verdict, Verdict::kHolds) << methodName(m);
  }
}

TEST(EngineEdge, PolicyMaxMergesRespected) {
  BddManager mgr;
  for (unsigned i = 0; i < 8; ++i) mgr.newVar();
  ConjunctList list(&mgr);
  for (unsigned i = 0; i < 8; ++i) list.push(mgr.var(i));
  EvaluatePolicyOptions options;
  options.growThreshold = 1e9;
  options.pairTable.buildCapFactor = 0.0;
  options.maxMerges = 3;
  options.simplifyFirst = false;
  const auto r = greedyEvaluate(list, options);
  EXPECT_EQ(r.merges, 3u);
  EXPECT_EQ(list.size(), 5u);
}

}  // namespace
}  // namespace icb
