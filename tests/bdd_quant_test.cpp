// Quantification: exists/forall against truth-table oracles, the AndExists
// fusion, and cube construction.
#include <gtest/gtest.h>

#include "bdd/bdd.hpp"
#include "test_util.hpp"

namespace icb {
namespace {

Bdd cubeOf(BddManager& mgr, std::vector<unsigned> vars) {
  return Bdd(&mgr, mgr.cubeE(vars));
}

struct QuantParam {
  unsigned nvars;
  std::uint64_t seed;
};

class QuantSweep : public ::testing::TestWithParam<QuantParam> {};

TEST_P(QuantSweep, ExistsForallMatchOracle) {
  const auto [nvars, seed] = GetParam();
  BddManager mgr;
  for (unsigned i = 0; i < nvars; ++i) mgr.newVar();
  Rng rng(seed);
  for (int round = 0; round < 10; ++round) {
    const Bdd f = test::randomBdd(mgr, nvars, rng);
    // Random subset of variables to quantify.
    std::vector<unsigned> qs;
    for (unsigned v = 0; v < nvars; ++v) {
      if (rng.coin()) qs.push_back(v);
    }
    const Bdd cube = cubeOf(mgr, qs);
    const Bdd ex = f.exists(cube);
    const Bdd fa = f.forall(cube);

    const auto tf = test::truthTable(f, nvars);
    const auto tex = test::truthTable(ex, nvars);
    const auto tfa = test::truthTable(fa, nvars);
    const std::size_t size = tf.size();
    for (std::size_t m = 0; m < size; ++m) {
      // Enumerate all assignments to the quantified vars on top of m.
      bool any = false;
      bool all = true;
      const std::size_t k = qs.size();
      for (std::size_t q = 0; q < (std::size_t{1} << k); ++q) {
        std::size_t m2 = m;
        for (std::size_t i = 0; i < k; ++i) {
          const std::size_t bit = std::size_t{1} << qs[i];
          m2 = ((q >> i) & 1u) != 0 ? (m2 | bit) : (m2 & ~bit);
        }
        any |= tf[m2] != 0;
        all &= tf[m2] != 0;
      }
      EXPECT_EQ(tex[m] != 0, any);
      EXPECT_EQ(tfa[m] != 0, all);
    }
  }
}

TEST_P(QuantSweep, AndExistsEqualsComposition) {
  const auto [nvars, seed] = GetParam();
  BddManager mgr;
  for (unsigned i = 0; i < nvars; ++i) mgr.newVar();
  Rng rng(seed * 13 + 3);
  for (int round = 0; round < 10; ++round) {
    const Bdd f = test::randomBdd(mgr, nvars, rng);
    const Bdd g = test::randomBdd(mgr, nvars, rng);
    std::vector<unsigned> qs;
    for (unsigned v = 0; v < nvars; ++v) {
      if (rng.coin()) qs.push_back(v);
    }
    const Bdd cube = cubeOf(mgr, qs);
    EXPECT_EQ(f.andExists(g, cube), (f & g).exists(cube));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, QuantSweep,
    ::testing::Values(QuantParam{3, 1}, QuantParam{4, 2}, QuantParam{5, 3},
                      QuantParam{6, 4}, QuantParam{7, 5}),
    [](const ::testing::TestParamInfo<QuantParam>& paramInfo) {
      return "v" + std::to_string(paramInfo.param.nvars) + "s" +
             std::to_string(paramInfo.param.seed);
    });

TEST(BddQuant, QuantifyingAbsentVariableIsIdentity) {
  BddManager mgr;
  for (unsigned i = 0; i < 4; ++i) mgr.newVar();
  const Bdd f = mgr.var(0) & mgr.var(1);
  EXPECT_EQ(f.exists(cubeOf(mgr, {2, 3})), f);
  EXPECT_EQ(f.forall(cubeOf(mgr, {2, 3})), f);
}

TEST(BddQuant, EmptyCubeIsIdentity) {
  BddManager mgr;
  mgr.newVar();
  const Bdd f = mgr.var(0);
  EXPECT_EQ(f.exists(mgr.one()), f);
  EXPECT_EQ(f.forall(mgr.one()), f);
}

TEST(BddQuant, ExistsOfConjunctionOfLiterals) {
  BddManager mgr;
  for (unsigned i = 0; i < 3; ++i) mgr.newVar();
  const Bdd f = mgr.var(0) & !mgr.var(1) & mgr.var(2);
  EXPECT_EQ(f.exists(cubeOf(mgr, {1})), mgr.var(0) & mgr.var(2));
  EXPECT_EQ(f.forall(cubeOf(mgr, {1})), mgr.zero());
}

TEST(BddQuant, CubeConstructionOrderIndependent) {
  BddManager mgr;
  for (unsigned i = 0; i < 5; ++i) mgr.newVar();
  EXPECT_EQ(cubeOf(mgr, {0, 2, 4}), cubeOf(mgr, {4, 0, 2}));
  EXPECT_EQ(cubeOf(mgr, {0, 2, 4}), mgr.var(0) & mgr.var(2) & mgr.var(4));
}

TEST(BddQuant, DualityExistsForall) {
  BddManager mgr;
  for (unsigned i = 0; i < 6; ++i) mgr.newVar();
  Rng rng(29);
  for (int i = 0; i < 15; ++i) {
    const Bdd f = test::randomBdd(mgr, 6, rng);
    const Bdd cube = cubeOf(mgr, {1, 3, 5});
    EXPECT_EQ(f.forall(cube), !((!f).exists(cube)));
  }
}

}  // namespace
}  // namespace icb
