// Negative-input sweep for the obs/jsonl reader.  The service feeds it raw
// untrusted request lines, so every malformed document must fail with a
// structured JsonParseError (offset + detail) -- never UB, stack overflow,
// or silent acceptance.
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "obs/jsonl.hpp"

namespace icb::obs {
namespace {

TEST(JsonlFuzz, MalformedCorpusThrowsStructuredErrors) {
  const std::vector<std::string> corpus{
      "",
      "   ",
      "{",
      "}",
      "[",
      "]",
      "{]",
      "[}",
      "{\"a\":}",
      "{\"a\"}",
      "{\"a\":1,}",
      "{,}",
      "{\"a\":1 \"b\":2}",
      "[1,]",
      "[1 2]",
      "[,1]",
      "\"unterminated",
      "\"bad escape \\q\"",
      "\"bad hex \\u12G4\"",
      "\"truncated hex \\u12",
      "tru",
      "truthy",
      "fals",
      "nul",
      "nulll",
      "+1",
      "01",
      "1.",
      ".5",
      "1e",
      "1e+",
      "--1",
      "0x10",
      "NaN",
      "Infinity",
      "{\"a\":1}garbage",
      "[1,2] [3]",
      "{\"a\" 1}",
      "{1:2}",
      "{\"\\ud800\"}",              // lone high surrogate, then bad object
      "\"\\ud800\"",               // lone high surrogate
      "\"\\udc00\"",               // lone low surrogate
      "\"\\ud800\\u0041\"",        // high surrogate not followed by low
  };
  for (const std::string& doc : corpus) {
    bool threw = false;
    try {
      (void)parseJson(doc);
    } catch (const JsonParseError& e) {
      threw = true;
      EXPECT_LE(e.offset(), doc.size()) << "offset out of range for: " << doc;
      EXPECT_FALSE(e.detail().empty()) << "empty detail for: " << doc;
    }
    EXPECT_TRUE(threw) << "accepted malformed input: " << doc;
  }
}

TEST(JsonlFuzz, EveryPrefixOfValidDocumentFailsCleanly) {
  const std::string doc =
      "{\"id\":\"fifo-1\",\"n\":-12.5e2,\"flags\":[true,false,null],"
      "\"text\":\"a\\\"b\\\\c\\u00e9\",\"nested\":{\"x\":[1,2,{\"y\":3}]}}";
  // The full document parses; every strict prefix must throw, not crash.
  EXPECT_NO_THROW((void)parseJson(doc));
  for (std::size_t len = 0; len < doc.size(); ++len) {
    EXPECT_THROW((void)parseJson(doc.substr(0, len)), JsonParseError)
        << "prefix of length " << len << " was accepted";
  }
}

TEST(JsonlFuzz, OverDeepNestingIsRejectedNotOverflowed) {
  // kMaxJsonDepth nests parse; one more must throw (and "ten thousand '['"
  // must not touch the stack guard at all -- it fails at depth 65).
  const std::string okArr(kMaxJsonDepth, '[');
  const std::string okClose(kMaxJsonDepth, ']');
  EXPECT_NO_THROW((void)parseJson(okArr + okClose));

  std::string deep(kMaxJsonDepth + 1, '[');
  deep += std::string(kMaxJsonDepth + 1, ']');
  EXPECT_THROW((void)parseJson(deep), JsonParseError);

  const std::string pathological(10000, '[');
  EXPECT_THROW((void)parseJson(pathological), JsonParseError);

  std::string deepObj;
  for (int i = 0; i < 200; ++i) deepObj += "{\"k\":";
  deepObj += "1";
  for (int i = 0; i < 200; ++i) deepObj += "}";
  EXPECT_THROW((void)parseJson(deepObj), JsonParseError);
}

TEST(JsonlFuzz, StrictNumbers) {
  EXPECT_DOUBLE_EQ(parseJson("-12.5e2").number, -1250.0);
  EXPECT_DOUBLE_EQ(parseJson("0").number, 0.0);
  EXPECT_DOUBLE_EQ(parseJson("1e3").number, 1000.0);
  EXPECT_THROW((void)parseJson("1.2.3"), JsonParseError);
  EXPECT_THROW((void)parseJson("1-2"), JsonParseError);
  EXPECT_THROW((void)parseJson("[1.2.3]"), JsonParseError);
  EXPECT_THROW((void)parseJson("{\"a\":1..2}"), JsonParseError);
}

TEST(JsonlFuzz, ControlCharactersInStringsAreRejected) {
  for (char c = 1; c < 0x20; ++c) {
    std::string doc = "\"a";
    doc += c;
    doc += "b\"";
    EXPECT_THROW((void)parseJson(doc), JsonParseError)
        << "raw control char " << static_cast<int>(c) << " accepted";
  }
  std::string withNul("\"a\0b\"", 5);
  EXPECT_THROW((void)parseJson(withNul), JsonParseError);
  // Escaped forms are fine.
  EXPECT_EQ(parseJson("\"a\\tb\\nc\"").text, "a\tb\nc");
}

TEST(JsonlFuzz, UnicodeEscapesAndSurrogatePairs) {
  EXPECT_EQ(parseJson("\"\\u0041\"").text, "A");
  EXPECT_EQ(parseJson("\"\\u00e9\"").text, "\xc3\xa9");          // é
  EXPECT_EQ(parseJson("\"\\u20ac\"").text, "\xe2\x82\xac");      // €
  EXPECT_EQ(parseJson("\"\\ud83d\\ude00\"").text,
            "\xf0\x9f\x98\x80");                                 // 😀
  // Raw UTF-8 passes through untouched.
  EXPECT_EQ(parseJson("\"caf\xc3\xa9\"").text, "caf\xc3\xa9");
}

TEST(JsonlFuzz, ParseJsonLinesReportsFirstBadLine) {
  std::istringstream ok("{\"a\":1}\n\n{\"b\":2}\n");
  const auto values = parseJsonLines(ok);
  ASSERT_EQ(values.size(), 2u);
  EXPECT_DOUBLE_EQ(values[0].find("a")->number, 1.0);

  std::istringstream bad("{\"a\":1}\n{oops\n{\"b\":2}\n");
  EXPECT_THROW((void)parseJsonLines(bad), JsonParseError);
}

}  // namespace
}  // namespace icb::obs
