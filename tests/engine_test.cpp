// The five verification engines on small hand-built machines with known
// answers, including cross-engine agreement and resource-limit verdicts.
#include <gtest/gtest.h>

#include "sym/bitvector.hpp"
#include "verif/counterexample.hpp"
#include "verif/run_all.hpp"
#include "test_util.hpp"

namespace icb {
namespace {

/// A width-bit saturating counter: input `go` increments until all ones.
/// Reachable states: everything (eventually); property options below.
struct Counter {
  std::unique_ptr<Fsm> fsm;
  std::vector<unsigned> bits;
};

Counter makeCounter(BddManager& mgr, unsigned width, unsigned cap,
                    bool propertyHolds) {
  Counter c;
  c.fsm = std::make_unique<Fsm>(mgr);
  VarManager& vars = c.fsm->vars();
  const unsigned go = vars.addInputBit("go");
  for (unsigned j = 0; j < width; ++j) {
    c.bits.push_back(vars.addStateBit("c" + std::to_string(j)));
  }
  BitVec v;
  for (unsigned j = 0; j < width; ++j) v.push(vars.cur(c.bits[j]));
  // Saturate at `cap`: stop incrementing once the counter reaches it.
  const Bdd atCap = eqConst(v, cap);
  const BitVec next = mux(vars.input(go) & !atCap, incTrunc(v), v);
  for (unsigned j = 0; j < width; ++j) c.fsm->setNext(c.bits[j], next.bit(j));
  c.fsm->setInit(eqConst(v, 0));
  // Holds: counter <= cap.  Violated: counter < cap (cap itself reachable).
  c.fsm->addInvariant(propertyHolds ? uleConst(v, cap)
                                    : ult(v, BitVec::constant(mgr, width, cap)));
  return c;
}

class EngineAgreement : public ::testing::TestWithParam<Method> {};

TEST_P(EngineAgreement, HoldsOnSafeCounter) {
  BddManager mgr;
  Counter c = makeCounter(mgr, 3, 5, /*propertyHolds=*/true);
  const EngineResult r = runMethod(*c.fsm, GetParam(), {});
  EXPECT_EQ(r.verdict, Verdict::kHolds) << methodName(GetParam());
  EXPECT_GT(r.peakIterateNodes, 0u);
  EXPECT_GT(r.peakAllocatedNodes, 0u);
}

TEST_P(EngineAgreement, ViolatedOnUnsafeCounter) {
  BddManager mgr;
  Counter c = makeCounter(mgr, 3, 5, /*propertyHolds=*/false);
  const EngineResult r = runMethod(*c.fsm, GetParam(), {});
  EXPECT_EQ(r.verdict, Verdict::kViolated) << methodName(GetParam());
}

TEST_P(EngineAgreement, TraceIsValidWhenProduced) {
  BddManager mgr;
  Counter c = makeCounter(mgr, 3, 5, /*propertyHolds=*/false);
  EngineOptions options;
  options.wantTrace = true;
  const EngineResult r = runMethod(*c.fsm, GetParam(), {}, options);
  ASSERT_EQ(r.verdict, Verdict::kViolated);
  if (r.trace.has_value()) {
    const std::string err =
        validateTrace(*c.fsm, *r.trace, c.fsm->property(false));
    EXPECT_EQ(err, "") << methodName(GetParam());
    // Reaching 5 from 0 takes exactly 5 increments.
    EXPECT_EQ(r.trace->states.size(), 6u);
  }
}

INSTANTIATE_TEST_SUITE_P(AllMethods, EngineAgreement,
                         ::testing::Values(Method::kFwd, Method::kBkwd,
                                           Method::kFd, Method::kIci,
                                           Method::kXici),
                         [](const ::testing::TestParamInfo<Method>& paramInfo) {
                           return methodName(paramInfo.param);
                         });

TEST(Engines, ForwardIterationCountMatchesDiameter) {
  BddManager mgr;
  Counter c = makeCounter(mgr, 3, 5, true);
  const EngineResult r = runForward(*c.fsm);
  // 5 images add states, the 6th finds nothing new.
  EXPECT_EQ(r.iterations, 6u);
}

TEST(Engines, BackwardConvergesInOneIterationOnInductiveInvariant) {
  BddManager mgr;
  Counter c = makeCounter(mgr, 3, 5, true);
  const EngineResult r = runBackward(*c.fsm);
  EXPECT_EQ(r.verdict, Verdict::kHolds);
  EXPECT_EQ(r.iterations, 1u);
}

TEST(Engines, NodeLimitVerdict) {
  BddManager mgr;
  Counter c = makeCounter(mgr, 8, 200, true);
  EngineOptions options;
  options.maxNodes = 50;  // absurdly small
  const EngineResult r = runForward(*c.fsm, options);
  EXPECT_EQ(r.verdict, Verdict::kNodeLimit);
  // Manager still usable afterwards.
  mgr.gc();
  mgr.checkInvariants();
}

TEST(Engines, TimeLimitVerdict) {
  BddManager mgr;
  Counter c = makeCounter(mgr, 10, 1000, true);
  EngineOptions options;
  options.timeLimitSeconds = 1e-9;
  const EngineResult r = runForward(*c.fsm, options);
  EXPECT_EQ(r.verdict, Verdict::kTimeLimit);
}

TEST(Engines, IterationLimitVerdict) {
  BddManager mgr;
  Counter c = makeCounter(mgr, 6, 50, true);
  EngineOptions options;
  options.maxIterations = 2;
  const EngineResult r = runForward(*c.fsm, options);
  EXPECT_EQ(r.verdict, Verdict::kIterationLimit);
}

TEST(Engines, MethodNamesAndParsing) {
  EXPECT_EQ(parseMethod("fwd"), Method::kFwd);
  EXPECT_EQ(parseMethod("XICI"), Method::kXici);
  EXPECT_EQ(parseMethod("Bkwd"), Method::kBkwd);
  EXPECT_THROW(parseMethod("nonsense"), std::invalid_argument);
  EXPECT_EQ(allMethods().size(), 5u);
  for (const Method m : allMethods()) {
    EXPECT_NE(std::string(methodName(m)), "?");
  }
}

TEST(Engines, VerdictHelpers) {
  EXPECT_FALSE(verdictExceeded(Verdict::kHolds));
  EXPECT_FALSE(verdictExceeded(Verdict::kViolated));
  EXPECT_TRUE(verdictExceeded(Verdict::kNodeLimit));
  EXPECT_TRUE(verdictExceeded(Verdict::kTimeLimit));
  EXPECT_TRUE(verdictExceeded(Verdict::kIterationLimit));
}

TEST(Engines, XiciTerminationStatsPopulated) {
  // The violated counter never converges syntactically, so every iteration
  // exercises the exact equality test before the violation is found.
  BddManager mgr;
  Counter c = makeCounter(mgr, 4, 9, false);
  const EngineResult r = runXiciBackward(*c.fsm);
  EXPECT_EQ(r.verdict, Verdict::kViolated);
  EXPECT_GT(r.terminationStats.tautologyCalls, 0u);
  EXPECT_GT(r.terminationStats.implicationChecks, 0u);
}

TEST(Engines, XiciMonotonicOptionAgrees) {
  BddManager mgr;
  Counter c1 = makeCounter(mgr, 4, 9, true);
  EngineOptions options;
  options.termination.assumeMonotonic = true;
  const EngineResult r = runXiciBackward(*c1.fsm, options);
  EXPECT_EQ(r.verdict, Verdict::kHolds);
}

TEST(Engines, MultiConjunctPropertyAllEnginesAgree) {
  // Two independent counters; property = both stay in range (2 conjuncts).
  BddManager mgr;
  Fsm fsm(mgr);
  VarManager& vars = fsm.vars();
  const unsigned go = vars.addInputBit("go");
  std::vector<unsigned> a;
  std::vector<unsigned> b;
  for (unsigned j = 0; j < 3; ++j) a.push_back(vars.addStateBit("a" + std::to_string(j)));
  for (unsigned j = 0; j < 3; ++j) b.push_back(vars.addStateBit("b" + std::to_string(j)));
  BitVec va;
  BitVec vb;
  for (unsigned j = 0; j < 3; ++j) va.push(vars.cur(a[j]));
  for (unsigned j = 0; j < 3; ++j) vb.push(vars.cur(b[j]));
  const BitVec na = mux(vars.input(go) & !eqConst(va, 6), incTrunc(va), va);
  const BitVec nb = mux((!vars.input(go)) & !eqConst(vb, 3), incTrunc(vb), vb);
  for (unsigned j = 0; j < 3; ++j) {
    fsm.setNext(a[j], na.bit(j));
    fsm.setNext(b[j], nb.bit(j));
  }
  fsm.setInit(eqConst(va, 0) & eqConst(vb, 0));
  fsm.addInvariant(uleConst(va, 6));
  fsm.addInvariant(uleConst(vb, 3));

  for (const Method m : allMethods()) {
    const EngineResult r = runMethod(fsm, m, {});
    EXPECT_EQ(r.verdict, Verdict::kHolds) << methodName(m);
  }
}

}  // namespace
}  // namespace icb
