// Beyond-RAM verification through the spill tier (docs/external_memory.md).
//
// The acceptance contract under test: a run whose resident-arena budget is
// far below its peak node count completes with the SAME verdict, iteration
// count, and counterexample as the unspilled run, with pager activity
// (page faults > 0) proving the tier actually engaged.  Also pinned here:
// the two resource-limit paths with the tier enabled -- kNodes inside a
// beginConcurrent region falls back quiesce -> engage -> serial retry,
// while kNodeIndexSpace (the structural 31-bit Edge ceiling) aborts the
// run no matter how much disk is available -- and checkpoint/resume
// equivalence across spill on/off in both directions.
#include <gtest/gtest.h>

#include <filesystem>
#include <sstream>
#include <string>
#include <vector>

#include "check/structural_checker.hpp"
#include "check/test_hooks.hpp"
#include "svc/job.hpp"
#include "test_util.hpp"
#include "verif/checkpoint.hpp"
#include "verif/run_all.hpp"

namespace icb {
namespace {

/// Resident budget (in nodes) far below kSpillCase's ~9300-node peak: a
/// floor of xmem::PagedStore::kMinResidentPages pages stays resident, so
/// most of the arena must round-trip through the page file.
constexpr std::uint64_t kTightThreshold = 2048;

std::string spillDir() {
  return (std::filesystem::path(testing::TempDir()) / "spill_test").string();
}

svc::JobRequest spillCase(Method method, bool injectBug) {
  // depth-4, 8-bit typed FIFO: the Fwd sweep peaks around 9300 allocated
  // nodes -- roughly 10 pages -- which is comfortably beyond the tight
  // resident budget while staying a sub-second test.
  svc::JobRequest req;
  req.id = "spill-test";
  req.model = "fifo";
  req.method = method;
  req.size = 4;
  req.width = 8;
  req.injectBug = injectBug;
  return req;
}

BddOptions spilledOptions(const svc::JobRequest& req,
                          std::uint64_t threshold = kTightThreshold) {
  BddOptions options = svc::bddOptionsFor(req);
  options.spillDir = spillDir();
  options.spillThresholdNodes = threshold;
  return options;
}

EngineResult runCase(const svc::JobRequest& req, const BddOptions& bddOpts,
                     EngineOptions engineOpts) {
  BddManager mgr(bddOpts);
  ModelInstance model = svc::buildJobModel(mgr, req);
  return runMethod(*model.fsm, req.method, model.fdCandidates, engineOpts);
}

void expectSameOutcome(const EngineResult& base, const EngineResult& other) {
  EXPECT_EQ(base.verdict, other.verdict);
  EXPECT_EQ(base.iterations, other.iterations);
  ASSERT_EQ(base.trace.has_value(), other.trace.has_value());
  if (base.trace.has_value()) {
    EXPECT_EQ(base.trace->states, other.trace->states);
    EXPECT_EQ(base.trace->inputs, other.trace->inputs);
  }
}

// ---------------------------------------------------------------------------
// The acceptance criterion: beyond-RAM run == in-RAM run, faults observed

TEST(Spill, BudgetBelowPeakCompletesIdenticallyWithPageFaults) {
  const svc::JobRequest req = spillCase(Method::kFwd, /*injectBug=*/false);
  const EngineOptions engineOpts = svc::engineOptionsFor(req);

  const EngineResult base = runCase(req, svc::bddOptionsFor(req), engineOpts);
  ASSERT_EQ(base.verdict, Verdict::kHolds);
  EXPECT_FALSE(base.spilled);
  ASSERT_GT(base.peakAllocatedNodes, 4 * kTightThreshold)
      << "case too small to prove beyond-RAM operation";

  BddManager mgr(spilledOptions(req));
  ModelInstance model = svc::buildJobModel(mgr, req);
  const EngineResult spilled =
      runMethod(*model.fsm, req.method, model.fdCandidates, engineOpts);

  expectSameOutcome(base, spilled);
  EXPECT_TRUE(spilled.spilled);
  EXPECT_TRUE(mgr.spillEngaged());

  // Pager activity proves the run really cycled state through the disk
  // tier: pages were evicted, and previously spilled pages were re-read.
  const xmem::PagerStats* pager = mgr.pagerStats();
  ASSERT_NE(pager, nullptr);
  EXPECT_GT(pager->pageFaults, 0u);
  EXPECT_GT(pager->evictions, 0u);
  EXPECT_GT(pager->spillBytes, 0u);
  // The same numbers flow into the run's metric snapshot (the CI spill
  // stage asserts the counter from bench JSON).
  EXPECT_EQ(spilled.metrics.counter("bdd.xmem.page_faults"),
            pager->pageFaults);
  EXPECT_GT(spilled.metrics.counter("bdd.xmem.spill_bytes"), 0u);

  // Resident arena stayed within budget while the peak ran past it.
  const NodeStore::SpillInfo info = mgr.spillInfo();
  EXPECT_TRUE(info.engaged);
  EXPECT_LE(info.residentPages, info.budgetPages);
  EXPECT_GT(info.pageCount, info.budgetPages);
  EXPECT_GT(info.spillFileBytes, 0u);

  // And the spilled store is still structurally sound end to end.
  EXPECT_TRUE(StructuralChecker(mgr).run(CheckLevel::kFull).ok());
}

TEST(Spill, CounterexampleTraceSurvivesSpilling) {
  const svc::JobRequest req = spillCase(Method::kFwd, /*injectBug=*/true);
  const EngineOptions engineOpts = svc::engineOptionsFor(req);

  const EngineResult base = runCase(req, svc::bddOptionsFor(req), engineOpts);
  ASSERT_EQ(base.verdict, Verdict::kViolated);
  ASSERT_TRUE(base.trace.has_value());

  const EngineResult spilled = runCase(req, spilledOptions(req), engineOpts);
  EXPECT_TRUE(spilled.spilled);
  expectSameOutcome(base, spilled);
}

// ---------------------------------------------------------------------------
// kNodes with the tier enabled: spill instead of aborting

TEST(Spill, NodeCapThatAbortsUnspilledCompletesSpilled) {
  const svc::JobRequest req = spillCase(Method::kFwd, /*injectBug=*/false);
  EngineOptions engineOpts = svc::engineOptionsFor(req);

  const EngineResult reference =
      runCase(req, svc::bddOptionsFor(req), engineOpts);
  ASSERT_EQ(reference.verdict, Verdict::kHolds);

  // A cap above the model build but below the sweep's peak: fatal without
  // the tier...
  engineOpts.maxNodes = reference.peakAllocatedNodes - 1000;
  const EngineResult capped =
      runCase(req, svc::bddOptionsFor(req), engineOpts);
  ASSERT_EQ(capped.verdict, Verdict::kNodeLimit);

  // ...and a lazy engage-at-the-cap with the tier armed (threshold 0:
  // spill only where the cap would otherwise abort).
  BddManager mgr(spilledOptions(req, /*threshold=*/0));
  ModelInstance model = svc::buildJobModel(mgr, req);
  const EngineResult spilled =
      runMethod(*model.fsm, req.method, model.fdCandidates, engineOpts);
  EXPECT_TRUE(mgr.spillEngaged());
  EXPECT_TRUE(spilled.spilled);
  expectSameOutcome(reference, spilled);
}

TEST(Spill, NodeCapInsideConcurrentRegionFallsBackAndSpills) {
  // With applyWorkers > 1 the cap trips inside a beginConcurrent region,
  // where the tier must NOT mount mid-region: parApply quiesces the pool,
  // engages the tier, and re-runs the operation serially
  // (src/bdd/par_apply.cpp).  The run still completes with the baseline
  // verdict and count.
  svc::JobRequest req = spillCase(Method::kFwd, /*injectBug=*/false);
  EngineOptions engineOpts = svc::engineOptionsFor(req);

  const EngineResult reference =
      runCase(req, svc::bddOptionsFor(req), engineOpts);
  ASSERT_EQ(reference.verdict, Verdict::kHolds);
  engineOpts.maxNodes = reference.peakAllocatedNodes - 1000;

  req.applyWorkers = 2;
  {
    // Contrast: concurrent, capped, no tier -> kNodeLimit.
    const EngineResult capped =
        runCase(req, svc::bddOptionsFor(req), engineOpts);
    EXPECT_EQ(capped.verdict, Verdict::kNodeLimit);
  }

  BddManager mgr(spilledOptions(req, /*threshold=*/0));
  ASSERT_TRUE(mgr.spillArmed());
  ModelInstance model = svc::buildJobModel(mgr, req);
  const EngineResult spilled =
      runMethod(*model.fsm, req.method, model.fdCandidates, engineOpts);
  EXPECT_TRUE(mgr.spillEngaged());
  EXPECT_TRUE(spilled.spilled);
  expectSameOutcome(reference, spilled);
}

// ---------------------------------------------------------------------------
// kNodeIndexSpace: the structural ceiling no disk can lift

TEST(Spill, IndexSpaceExhaustionStillThrowsWithTierEngaged) {
  BddOptions options;
  options.spillDir = spillDir();
  BddManager mgr(options);
  for (unsigned i = 0; i < 8; ++i) mgr.newVar();

  std::vector<Bdd> keep;
  Rng rng(17);
  keep.push_back(test::randomBdd(mgr, 8, rng, 6));
  mgr.engageSpill();
  ASSERT_TRUE(mgr.spillEngaged());

  const std::uint32_t cap = NodeSurgeon::nodeCount(mgr) + 4;
  NodeSurgeon::capNodeIndexSpace(mgr, cap);
  bool tripped = false;
  try {
    for (int i = 0; i < 64; ++i) {
      keep.push_back(test::randomBdd(mgr, 8, rng, 6));
    }
  } catch (const ResourceLimitError& err) {
    tripped = true;
    // Index-space exhaustion is an Edge-encoding limit, not a RAM limit:
    // the engaged tier must not absorb it.
    EXPECT_EQ(err.kind(), ResourceKind::kNodeIndexSpace);
  }
  ASSERT_TRUE(tripped);
  EXPECT_TRUE(StructuralChecker(mgr).run(CheckLevel::kFull).ok());
}

TEST(Spill, IndexSpaceInsideConcurrentRegionReportsNodeLimitVerdict) {
  svc::JobRequest req = spillCase(Method::kFwd, /*injectBug=*/false);
  req.applyWorkers = 2;
  BddManager mgr(spilledOptions(req, /*threshold=*/0));
  ModelInstance model = svc::buildJobModel(mgr, req);
  // Cap the index space just above the built model: the sweep trips the
  // guard almost immediately, inside the parallel apply.
  NodeSurgeon::capNodeIndexSpace(mgr, NodeSurgeon::nodeCount(mgr) + 64);
  const EngineResult result = runMethod(*model.fsm, req.method,
                                        model.fdCandidates,
                                        svc::engineOptionsFor(req));
  // Engines map the typed throw to the capped verdict; the armed tier does
  // not rescue it (and must not have silently broken the store).
  EXPECT_EQ(result.verdict, Verdict::kNodeLimit);
  EXPECT_TRUE(StructuralChecker(mgr).run(CheckLevel::kFull).ok());
}

// ---------------------------------------------------------------------------
// Checkpoint/resume equivalence across spill on/off

TEST(Spill, UnspilledCheckpointResumesIdenticallyOnSpilledManager) {
  // Holds case: the depth-4 sweep takes several iterations, so the resume
  // really picks up mid-run (the buggy variant converges in one).
  const svc::JobRequest req = spillCase(Method::kFwd, /*injectBug=*/false);

  std::vector<std::string> snapshots;
  BddManager baseMgr(svc::bddOptionsFor(req));
  ModelInstance baseModel = svc::buildJobModel(baseMgr, req);
  EngineOptions baseOptions = svc::engineOptionsFor(req);
  baseOptions.checkpoint.everyIterations = 1;
  baseOptions.checkpoint.sink = [&](const EngineSnapshot& snap) {
    std::ostringstream os;
    saveSnapshot(os, baseMgr, snap);
    snapshots.push_back(os.str());
  };
  const EngineResult base =
      runMethod(*baseModel.fsm, req.method, baseModel.fdCandidates,
                baseOptions);
  ASSERT_GE(base.iterations, 2u);
  ASSERT_FALSE(snapshots.empty());

  BddManager resMgr(spilledOptions(req));
  ModelInstance resModel = svc::buildJobModel(resMgr, req);
  std::istringstream in(snapshots[snapshots.size() / 2]);
  const EngineSnapshot snapshot = loadSnapshot(in, resMgr);
  EngineOptions resOptions = svc::engineOptionsFor(req);
  resOptions.checkpoint.resume = &snapshot;
  const EngineResult resumed = runMethod(*resModel.fsm, req.method,
                                         resModel.fdCandidates, resOptions);
  EXPECT_TRUE(resMgr.spillEngaged());
  EXPECT_TRUE(resumed.spilled);
  expectSameOutcome(base, resumed);
}

TEST(Spill, ResumedCounterexampleSurvivesSpilling) {
  // Violation variant of the cross-spill resume: the resumed, spilling run
  // must reproduce the baseline counterexample byte for byte.
  svc::JobRequest req;
  req.id = "spill-test";
  req.model = "mutex";
  req.method = Method::kBkwd;
  req.size = 5;
  req.injectBug = true;

  std::vector<std::string> snapshots;
  BddManager baseMgr(svc::bddOptionsFor(req));
  ModelInstance baseModel = svc::buildJobModel(baseMgr, req);
  EngineOptions baseOptions = svc::engineOptionsFor(req);
  baseOptions.checkpoint.everyIterations = 1;
  baseOptions.checkpoint.sink = [&](const EngineSnapshot& snap) {
    std::ostringstream os;
    saveSnapshot(os, baseMgr, snap);
    snapshots.push_back(os.str());
  };
  const EngineResult base =
      runMethod(*baseModel.fsm, req.method, baseModel.fdCandidates,
                baseOptions);
  ASSERT_EQ(base.verdict, Verdict::kViolated);
  ASSERT_TRUE(base.trace.has_value());
  ASSERT_GE(base.iterations, 2u);
  ASSERT_FALSE(snapshots.empty());

  // A threshold below even the model build guarantees engagement.
  BddManager resMgr(spilledOptions(req, /*threshold=*/256));
  ModelInstance resModel = svc::buildJobModel(resMgr, req);
  std::istringstream in(snapshots[snapshots.size() / 2]);
  const EngineSnapshot snapshot = loadSnapshot(in, resMgr);
  EngineOptions resOptions = svc::engineOptionsFor(req);
  resOptions.checkpoint.resume = &snapshot;
  const EngineResult resumed = runMethod(*resModel.fsm, req.method,
                                         resModel.fdCandidates, resOptions);
  EXPECT_TRUE(resMgr.spillEngaged());
  EXPECT_TRUE(resumed.spilled);
  expectSameOutcome(base, resumed);
}

TEST(Spill, SpilledCheckpointResumesIdenticallyOnUnspilledManager) {
  const svc::JobRequest req = spillCase(Method::kFwd, /*injectBug=*/false);

  const EngineResult base =
      runCase(req, svc::bddOptionsFor(req), svc::engineOptionsFor(req));

  std::vector<std::string> snapshots;
  BddManager spillMgr(spilledOptions(req));
  ModelInstance spillModel = svc::buildJobModel(spillMgr, req);
  EngineOptions spillOptions = svc::engineOptionsFor(req);
  spillOptions.checkpoint.everyIterations = 1;
  spillOptions.checkpoint.sink = [&](const EngineSnapshot& snap) {
    std::ostringstream os;
    saveSnapshot(os, spillMgr, snap);
    snapshots.push_back(os.str());
  };
  const EngineResult spilled = runMethod(*spillModel.fsm, req.method,
                                         spillModel.fdCandidates,
                                         spillOptions);
  EXPECT_TRUE(spilled.spilled);
  expectSameOutcome(base, spilled);
  ASSERT_FALSE(snapshots.empty());

  // A snapshot written while paging to disk holds ordinary portable BDDs:
  // it resumes on a plain in-RAM manager to the same outcome.
  BddManager resMgr(svc::bddOptionsFor(req));
  ModelInstance resModel = svc::buildJobModel(resMgr, req);
  std::istringstream in(snapshots[snapshots.size() / 2]);
  const EngineSnapshot snapshot = loadSnapshot(in, resMgr);
  EngineOptions resOptions = svc::engineOptionsFor(req);
  resOptions.checkpoint.resume = &snapshot;
  const EngineResult resumed = runMethod(*resModel.fsm, req.method,
                                         resModel.fdCandidates, resOptions);
  EXPECT_FALSE(resumed.spilled);
  expectSameOutcome(base, resumed);
}

}  // namespace
}  // namespace icb
