// Round-trip tests for the textual (v1/v2) and binary (icbdd-bdd-v3) BDD
// serialization, plus a fuzz-style corpus sweep proving that every
// truncation or corruption fails as a typed SerializeError with a byte
// offset -- never a crash, a hang, or a silent partial load.
#include <gtest/gtest.h>

#include <cstddef>
#include <sstream>
#include <string>
#include <vector>

#include "bdd/serialize.hpp"
#include "test_util.hpp"

namespace icb {
namespace {

TEST(Serialize, RoundTripRandomFunctions) {
  BddManager src;
  constexpr unsigned kVars = 8;
  for (unsigned i = 0; i < kVars; ++i) src.newVar("x" + std::to_string(i));
  Rng rng(5);
  std::vector<Bdd> roots;
  std::vector<std::vector<char>> tables;
  for (int i = 0; i < 10; ++i) {
    roots.push_back(test::randomBdd(src, kVars, rng));
    tables.push_back(test::truthTable(roots.back(), kVars));
  }

  std::ostringstream os;
  saveBdds(os, src, roots);

  BddManager dst;  // empty: variables come from the file
  std::istringstream is(os.str());
  const std::vector<Bdd> loaded = loadBdds(is, dst);
  ASSERT_EQ(loaded.size(), roots.size());
  EXPECT_EQ(dst.varCount(), kVars);
  EXPECT_EQ(dst.varName(3), "x3");
  for (std::size_t i = 0; i < loaded.size(); ++i) {
    EXPECT_EQ(test::truthTable(loaded[i], kVars), tables[i]);
  }
}

TEST(Serialize, RoundTripIntoExistingManagerPreservesSharing) {
  BddManager src;
  for (unsigned i = 0; i < 6; ++i) src.newVar();
  const Bdd common = src.var(2) ^ src.var(3);
  const std::vector<Bdd> roots{src.var(0) & common, src.var(1) & common,
                               !common};
  std::ostringstream os;
  saveBdds(os, src, roots);

  BddManager dst;
  for (unsigned i = 0; i < 6; ++i) dst.newVar();
  std::istringstream is(os.str());
  const std::vector<Bdd> loaded = loadBdds(is, dst);
  // Sharing survives: the shared-DAG size matches the source.
  EXPECT_EQ(sharedSize(loaded), sharedSize(roots));
  // Complement-edge round trip: third root is the negation of the common part.
  EXPECT_EQ(loaded[2], !(loaded[0].exists(Bdd(&dst, dst.cubeE(std::vector<unsigned>{0})))));
}

TEST(Serialize, ConstantsAndEmptyRootList) {
  BddManager src;
  src.newVar();
  const std::vector<Bdd> roots{src.one(), src.zero()};
  std::ostringstream os;
  saveBdds(os, src, roots);
  BddManager dst;
  std::istringstream is(os.str());
  const auto loaded = loadBdds(is, dst);
  ASSERT_EQ(loaded.size(), 2u);
  EXPECT_TRUE(loaded[0].isOne());
  EXPECT_TRUE(loaded[1].isZero());
}

TEST(Serialize, RejectsGarbage) {
  BddManager mgr;
  {
    std::istringstream is("not-a-bdd-file\n");
    EXPECT_THROW(loadBdds(is, mgr), BddUsageError);
  }
  {
    std::istringstream is("icbdd-bdd-v1\nvars 1\nv 0 x\nnodes 1\nn 0 0 T Q\n");
    EXPECT_THROW(loadBdds(is, mgr), BddUsageError);
  }
  {
    std::istringstream is("icbdd-bdd-v1\nvars 1\nv 0 x\nnodes 1\nn 0 0 T 5\n");
    EXPECT_THROW(loadBdds(is, mgr), BddUsageError);
  }
  {
    // Truncated file.
    std::istringstream is("icbdd-bdd-v1\nvars 1\n");
    EXPECT_THROW(loadBdds(is, mgr), BddUsageError);
  }
}

TEST(Serialize, RoundTripAfterReordering) {
  // Serialization stores variables, not levels: a file written under a
  // sifted order loads into a fresh manager and still denotes the same
  // functions.  Since v2 the file also carries the writer's level->var
  // map, so the fresh manager additionally adopts the sifted order.
  BddManager src;
  constexpr unsigned kVars = 8;
  for (unsigned i = 0; i < kVars; ++i) src.newVar();
  Rng rng(11);
  const Bdd f = test::randomBdd(src, kVars, rng, 6);
  const auto table = test::truthTable(f, kVars);
  src.sift();
  std::ostringstream os;
  const std::vector<Bdd> roots{f};
  saveBdds(os, src, roots);

  BddManager dst;
  std::istringstream is(os.str());
  const auto loaded = loadBdds(is, dst);
  EXPECT_EQ(test::truthTable(loaded[0], kVars), table);
}

TEST(Serialize, V2PersistsVariableOrder) {
  // The regression this guards: a snapshot taken after dynamic reordering
  // must restore into a manager with the *same* order, or resumed runs see
  // differently-shaped (Restrict-simplified) BDDs and diverge byte-wise.
  BddManager src;
  constexpr unsigned kVars = 8;
  for (unsigned i = 0; i < kVars; ++i) src.newVar("x" + std::to_string(i));
  Rng rng(23);
  std::vector<Bdd> roots;
  for (int i = 0; i < 6; ++i) roots.push_back(test::randomBdd(src, kVars, rng, 5));
  // Force a decidedly non-default order (a sift() might settle on identity).
  const std::vector<unsigned> shuffled{7, 0, 6, 1, 5, 2, 4, 3};
  applyVarOrder(src, shuffled);
  for (unsigned level = 0; level < kVars; ++level) {
    ASSERT_EQ(src.varAtLevel(level), shuffled[level]);
  }

  std::ostringstream os;
  saveBdds(os, src, roots);

  BddManager dst;  // fresh: variables and order both come from the file
  std::istringstream is(os.str());
  const auto loaded = loadBdds(is, dst);
  ASSERT_EQ(dst.varCount(), kVars);
  for (unsigned level = 0; level < kVars; ++level) {
    EXPECT_EQ(dst.varAtLevel(level), src.varAtLevel(level)) << "level " << level;
  }
  // Same order => structurally identical DAG, not just the same functions.
  EXPECT_EQ(sharedSize(loaded), sharedSize(roots));
  for (std::size_t i = 0; i < roots.size(); ++i) {
    EXPECT_EQ(test::truthTable(loaded[i], kVars),
              test::truthTable(roots[i], kVars));
  }
}

TEST(Serialize, V2OrderRestoredIntoAutoReorderManager) {
  // applyVarOrder must compose with a destination manager that has dynamic
  // reordering enabled (the service resumes jobs with auto_reorder on).
  BddManager src;
  constexpr unsigned kVars = 6;
  for (unsigned i = 0; i < kVars; ++i) src.newVar();
  Rng rng(31);
  const Bdd f = test::randomBdd(src, kVars, rng, 6);
  const auto table = test::truthTable(f, kVars);
  applyVarOrder(src, std::vector<unsigned>{5, 3, 1, 0, 2, 4});

  std::ostringstream os;
  const std::vector<Bdd> roots{f};
  saveBdds(os, src, roots);

  BddOptions opts;
  opts.autoReorder = true;
  BddManager dst(opts);
  std::istringstream is(os.str());
  const auto loaded = loadBdds(is, dst);
  for (unsigned level = 0; level < kVars; ++level) {
    EXPECT_EQ(dst.varAtLevel(level), src.varAtLevel(level)) << "level " << level;
  }
  EXPECT_EQ(test::truthTable(loaded[0], kVars), table);
}

TEST(Serialize, V1FilesWithoutOrderLineStillLoad) {
  // Pre-order-line files load with the manager's current (default) order.
  const std::string v1 =
      "icbdd-bdd-v1\n"
      "vars 2\n"
      "v 0 a\n"
      "v 1 b\n"
      "nodes 2\n"
      "n 0 1 T F\n"
      "n 1 0 0 F\n"
      "roots 1\n"
      "r 1\n";
  BddManager dst;
  std::istringstream is(v1);
  const auto loaded = loadBdds(is, dst);
  ASSERT_EQ(loaded.size(), 1u);
  EXPECT_EQ(loaded[0], Bdd(dst.var(0) & dst.var(1)));
  EXPECT_EQ(dst.varAtLevel(0), 0u);
  EXPECT_EQ(dst.varAtLevel(1), 1u);
}

TEST(Serialize, ApplyVarOrderRejectsBadPermutations) {
  BddManager mgr;
  for (unsigned i = 0; i < 4; ++i) mgr.newVar();
  {
    const std::vector<unsigned> tooShort{2, 1, 0};
    EXPECT_THROW(applyVarOrder(mgr, tooShort), BddUsageError);
  }
  {
    const std::vector<unsigned> duplicate{0, 1, 1, 3};
    EXPECT_THROW(applyVarOrder(mgr, duplicate), BddUsageError);
  }
  {
    const std::vector<unsigned> outOfRange{0, 1, 2, 4};
    EXPECT_THROW(applyVarOrder(mgr, outOfRange), BddUsageError);
  }
  const std::vector<unsigned> order{3, 1, 0, 2};
  applyVarOrder(mgr, order);
  for (unsigned level = 0; level < 4; ++level) {
    EXPECT_EQ(mgr.varAtLevel(level), order[level]);
  }
}

// ---------------------------------------------------------------------------
// Binary (icbdd-bdd-v3) format

TEST(SerializeV3, BinaryRoundTripIsBitIdentical) {
  BddManager src;
  constexpr unsigned kVars = 8;
  for (unsigned i = 0; i < kVars; ++i) src.newVar("x" + std::to_string(i));
  Rng rng(7);
  std::vector<Bdd> roots;
  std::vector<std::vector<char>> tables;
  for (int i = 0; i < 10; ++i) {
    roots.push_back(test::randomBdd(src, kVars, rng));
    tables.push_back(test::truthTable(roots.back(), kVars));
  }
  roots.push_back(src.one());
  roots.push_back(src.zero());
  roots.push_back(!roots[0]);

  std::ostringstream os;
  saveBddsBinary(os, src, roots);
  const std::string dump = os.str();

  BddManager dst;  // empty: variables come from the file
  std::istringstream is(dump);
  const std::vector<Bdd> loaded = loadBdds(is, dst);
  ASSERT_EQ(loaded.size(), roots.size());
  EXPECT_EQ(dst.varCount(), kVars);
  EXPECT_EQ(dst.varName(3), "x3");
  for (std::size_t i = 0; i < tables.size(); ++i) {
    EXPECT_EQ(test::truthTable(loaded[i], kVars), tables[i]);
  }
  EXPECT_TRUE(loaded[tables.size()].isOne());
  EXPECT_TRUE(loaded[tables.size() + 1].isZero());
  EXPECT_EQ(loaded[tables.size() + 2], !loaded[0]);

  // Bit-identical re-dump: same vars, same order, same DAG => the second
  // writer walks the identical topological order and emits the same bytes.
  std::ostringstream os2;
  saveBddsBinary(os2, dst, loaded);
  EXPECT_EQ(os2.str(), dump);
}

TEST(SerializeV3, BinaryPersistsVariableOrderAndSharing) {
  BddManager src;
  constexpr unsigned kVars = 8;
  for (unsigned i = 0; i < kVars; ++i) src.newVar();
  Rng rng(13);
  std::vector<Bdd> roots;
  for (int i = 0; i < 6; ++i) roots.push_back(test::randomBdd(src, kVars, rng, 5));
  const std::vector<unsigned> shuffled{6, 2, 7, 0, 5, 1, 4, 3};
  applyVarOrder(src, shuffled);

  std::ostringstream os;
  saveBddsBinary(os, src, roots);
  BddManager dst;
  std::istringstream is(os.str());
  const auto loaded = loadBdds(is, dst);
  for (unsigned level = 0; level < kVars; ++level) {
    EXPECT_EQ(dst.varAtLevel(level), shuffled[level]) << "level " << level;
  }
  EXPECT_EQ(sharedSize(loaded), sharedSize(roots));
  for (std::size_t i = 0; i < roots.size(); ++i) {
    EXPECT_EQ(test::truthTable(loaded[i], kVars),
              test::truthTable(roots[i], kVars));
  }
}

TEST(SerializeV3, TextAndBinaryDenoteTheSameFunctions) {
  BddManager src;
  constexpr unsigned kVars = 6;
  for (unsigned i = 0; i < kVars; ++i) src.newVar();
  Rng rng(17);
  const std::vector<Bdd> roots{test::randomBdd(src, kVars, rng, 6),
                               test::randomBdd(src, kVars, rng, 6)};
  std::ostringstream text;
  std::ostringstream binary;
  saveBdds(text, src, roots);
  saveBddsBinary(binary, src, roots);

  BddManager fromText;
  BddManager fromBinary;
  std::istringstream ist(text.str());
  std::istringstream isb(binary.str());
  const auto a = loadBdds(ist, fromText);
  const auto b = loadBdds(isb, fromBinary);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(test::truthTable(a[i], kVars), test::truthTable(b[i], kVars));
  }
}

TEST(SerializeV3, InspectDumpReportsHeaderWithoutLoading) {
  BddManager src;
  for (unsigned i = 0; i < 4; ++i) src.newVar();
  Rng rng(19);
  const std::vector<Bdd> roots{test::randomBdd(src, 4, rng, 4),
                               test::randomBdd(src, 4, rng, 4)};
  DumpInfo binInfo;
  {
    std::ostringstream os;
    saveBddsBinary(os, src, roots);
    std::istringstream is(os.str());
    binInfo = inspectDump(is);
    EXPECT_EQ(binInfo.version, 3);
    EXPECT_TRUE(binInfo.binary);
    EXPECT_EQ(binInfo.varCount, 4u);
    EXPECT_EQ(binInfo.rootCount, 2u);
    EXPECT_GT(binInfo.nodeCount, 0u);
    EXPECT_EQ(binInfo.nodeBytes, binInfo.nodeCount * 16);
  }
  {
    std::ostringstream os;
    saveBdds(os, src, roots);
    std::istringstream is(os.str());
    const DumpInfo info = inspectDump(is);
    EXPECT_EQ(info.version, 2);
    EXPECT_FALSE(info.binary);
    EXPECT_EQ(info.varCount, 4u);
    EXPECT_EQ(info.rootCount, 2u);
    // Both writers walk the same topological order: identical node counts.
    EXPECT_EQ(info.nodeCount, binInfo.nodeCount);
  }
}

// ---------------------------------------------------------------------------
// Fuzz-style corpus: truncation and corruption are typed errors

namespace fuzz {

/// A small but representative corpus dump: complement edges, shared
/// subgraphs, constant and non-constant roots.
std::string corpus(bool binary) {
  BddManager src;
  for (unsigned i = 0; i < 4; ++i) src.newVar("v" + std::to_string(i));
  const Bdd common = src.var(1) ^ src.var(2);
  const std::vector<Bdd> roots{src.var(0) & common, !common, src.one(),
                               (src.var(3) | common) & src.var(0)};
  std::ostringstream os;
  if (binary) {
    saveBddsBinary(os, src, roots);
  } else {
    saveBdds(os, src, roots);
  }
  return os.str();
}

/// Loading `bytes` must throw SerializeError -- the typed class, with a
/// plausible byte offset surfaced both structurally and in the message.
void expectTypedFailure(const std::string& bytes, std::size_t cut) {
  BddManager mgr;
  std::istringstream is(bytes.substr(0, cut));
  try {
    (void)loadBdds(is, mgr);
    FAIL() << "prefix of " << cut << "/" << bytes.size()
           << " bytes loaded successfully";
  } catch (const SerializeError& err) {
    EXPECT_LE(err.byteOffset(), bytes.size()) << "cut " << cut;
    EXPECT_NE(std::string(err.what()).find("(at byte "), std::string::npos)
        << "cut " << cut;
  }
  // Any other exception type escapes and fails the test: truncation must
  // never surface as bad_alloc, length_error, or a crash.
}

}  // namespace fuzz

TEST(SerializeFuzz, EveryBinaryTruncationIsATypedError) {
  // The v3 trailing checksum makes every strict prefix invalid: whatever
  // field the cut lands in, some later read hits EOF.
  const std::string dump = fuzz::corpus(/*binary=*/true);
  ASSERT_GT(dump.size(), 100u);
  for (std::size_t cut = 0; cut < dump.size(); ++cut) {
    fuzz::expectTypedFailure(dump, cut);
  }
}

TEST(SerializeFuzz, EveryTextTruncationBeforeTheLastLineIsATypedError) {
  const std::string dump = fuzz::corpus(/*binary=*/false);
  ASSERT_GT(dump.size(), 50u);
  ASSERT_EQ(dump.back(), '\n');
  // Cuts inside the final "r ..." line can still parse (a shortened decimal
  // reference is a different, valid reference), and dropping only the final
  // newline is exactly the stream getline still accepts; everything earlier
  // must fail typed.
  const std::size_t lastLineStart = dump.rfind('\n', dump.size() - 2) + 1;
  for (std::size_t cut = 0; cut < lastLineStart; ++cut) {
    fuzz::expectTypedFailure(dump, cut);
  }
  for (std::size_t cut = lastLineStart; cut < dump.size(); ++cut) {
    BddManager mgr;
    std::istringstream is(dump.substr(0, cut));
    try {
      (void)loadBdds(is, mgr);  // permitted: the prefix may still be valid
    } catch (const SerializeError&) {
      // permitted: typed failure
    }
  }
}

TEST(SerializeFuzz, EveryBinaryByteFlipIsATypedError) {
  // Single-byte corruption anywhere in a v3 dump is caught: structural
  // checks (magic, endian tag, ranges, reserved bits) or, failing those,
  // the trailing FNV-1a checksum.
  const std::string dump = fuzz::corpus(/*binary=*/true);
  for (std::size_t i = 0; i < dump.size(); ++i) {
    std::string bad = dump;
    bad[i] = static_cast<char>(bad[i] ^ 0x5a);
    BddManager mgr;
    std::istringstream is(bad);
    try {
      (void)loadBdds(is, mgr);
      FAIL() << "flip at byte " << i << " loaded successfully";
    } catch (const SerializeError&) {
      // typed, as required
    }
  }
}

TEST(SerializeFuzz, HeaderlessCountLinesAreNotASilentEmptyLoad) {
  // Regression: counts whose number is missing used to extract as zero on
  // some paths, turning a mangled dump into a successful load of nothing.
  BddManager mgr;
  {
    std::istringstream is("icbdd-bdd-v1\nvars\nnodes\nroots\n");
    EXPECT_THROW((void)loadBdds(is, mgr), SerializeError);
  }
  {
    std::istringstream is("icbdd-bdd-v2\n");
    EXPECT_THROW((void)loadBdds(is, mgr), SerializeError);
  }
  {
    std::istringstream is("");
    EXPECT_THROW((void)loadBdds(is, mgr), SerializeError);
  }
}

TEST(SerializeFuzz, ImplausibleBinaryCountsFailFastNotBigAlloc) {
  // A dump declaring 2^60 nodes (or a 4 GiB variable name) must fail as a
  // typed truncation/corruption error when the bytes run out, not attempt
  // the allocation up front.
  const std::string dump = fuzz::corpus(/*binary=*/true);
  const std::size_t bodyStart = dump.find('\n') + 1;
  // node count: u64 at body offset 8 (endian tag, flags) + 8 (var count).
  std::string bad = dump;
  for (int i = 0; i < 8; ++i) {
    bad[bodyStart + 16 + i] = static_cast<char>(0xff);
  }
  BddManager mgr;
  std::istringstream is(bad);
  EXPECT_THROW((void)loadBdds(is, mgr), SerializeError);
}

TEST(SerializeFuzz, SerializeErrorCarriesOffsetAndDerivesFromUsageError) {
  const std::string dump = fuzz::corpus(/*binary=*/false);
  BddManager mgr;
  std::istringstream is(dump.substr(0, dump.size() / 2));
  bool threw = false;
  try {
    (void)loadBdds(is, mgr);
  } catch (const BddUsageError& err) {  // the base class still catches it
    threw = true;
    const auto* typed = dynamic_cast<const SerializeError*>(&err);
    ASSERT_NE(typed, nullptr);
    EXPECT_GT(typed->byteOffset(), 0u);
    EXPECT_LE(typed->byteOffset(), dump.size());
  }
  EXPECT_TRUE(threw);
}

}  // namespace
}  // namespace icb
