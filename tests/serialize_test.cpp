// Round-trip tests for the textual BDD serialization.
#include <gtest/gtest.h>

#include <sstream>

#include "bdd/serialize.hpp"
#include "test_util.hpp"

namespace icb {
namespace {

TEST(Serialize, RoundTripRandomFunctions) {
  BddManager src;
  constexpr unsigned kVars = 8;
  for (unsigned i = 0; i < kVars; ++i) src.newVar("x" + std::to_string(i));
  Rng rng(5);
  std::vector<Bdd> roots;
  std::vector<std::vector<char>> tables;
  for (int i = 0; i < 10; ++i) {
    roots.push_back(test::randomBdd(src, kVars, rng));
    tables.push_back(test::truthTable(roots.back(), kVars));
  }

  std::ostringstream os;
  saveBdds(os, src, roots);

  BddManager dst;  // empty: variables come from the file
  std::istringstream is(os.str());
  const std::vector<Bdd> loaded = loadBdds(is, dst);
  ASSERT_EQ(loaded.size(), roots.size());
  EXPECT_EQ(dst.varCount(), kVars);
  EXPECT_EQ(dst.varName(3), "x3");
  for (std::size_t i = 0; i < loaded.size(); ++i) {
    EXPECT_EQ(test::truthTable(loaded[i], kVars), tables[i]);
  }
}

TEST(Serialize, RoundTripIntoExistingManagerPreservesSharing) {
  BddManager src;
  for (unsigned i = 0; i < 6; ++i) src.newVar();
  const Bdd common = src.var(2) ^ src.var(3);
  const std::vector<Bdd> roots{src.var(0) & common, src.var(1) & common,
                               !common};
  std::ostringstream os;
  saveBdds(os, src, roots);

  BddManager dst;
  for (unsigned i = 0; i < 6; ++i) dst.newVar();
  std::istringstream is(os.str());
  const std::vector<Bdd> loaded = loadBdds(is, dst);
  // Sharing survives: the shared-DAG size matches the source.
  EXPECT_EQ(sharedSize(loaded), sharedSize(roots));
  // Complement-edge round trip: third root is the negation of the common part.
  EXPECT_EQ(loaded[2], !(loaded[0].exists(Bdd(&dst, dst.cubeE(std::vector<unsigned>{0})))));
}

TEST(Serialize, ConstantsAndEmptyRootList) {
  BddManager src;
  src.newVar();
  const std::vector<Bdd> roots{src.one(), src.zero()};
  std::ostringstream os;
  saveBdds(os, src, roots);
  BddManager dst;
  std::istringstream is(os.str());
  const auto loaded = loadBdds(is, dst);
  ASSERT_EQ(loaded.size(), 2u);
  EXPECT_TRUE(loaded[0].isOne());
  EXPECT_TRUE(loaded[1].isZero());
}

TEST(Serialize, RejectsGarbage) {
  BddManager mgr;
  {
    std::istringstream is("not-a-bdd-file\n");
    EXPECT_THROW(loadBdds(is, mgr), BddUsageError);
  }
  {
    std::istringstream is("icbdd-bdd-v1\nvars 1\nv 0 x\nnodes 1\nn 0 0 T Q\n");
    EXPECT_THROW(loadBdds(is, mgr), BddUsageError);
  }
  {
    std::istringstream is("icbdd-bdd-v1\nvars 1\nv 0 x\nnodes 1\nn 0 0 T 5\n");
    EXPECT_THROW(loadBdds(is, mgr), BddUsageError);
  }
  {
    // Truncated file.
    std::istringstream is("icbdd-bdd-v1\nvars 1\n");
    EXPECT_THROW(loadBdds(is, mgr), BddUsageError);
  }
}

TEST(Serialize, RoundTripAfterReordering) {
  // Serialization stores variables, not levels: a file written under a
  // sifted order loads into a fresh manager and still denotes the same
  // functions.  Since v2 the file also carries the writer's level->var
  // map, so the fresh manager additionally adopts the sifted order.
  BddManager src;
  constexpr unsigned kVars = 8;
  for (unsigned i = 0; i < kVars; ++i) src.newVar();
  Rng rng(11);
  const Bdd f = test::randomBdd(src, kVars, rng, 6);
  const auto table = test::truthTable(f, kVars);
  src.sift();
  std::ostringstream os;
  const std::vector<Bdd> roots{f};
  saveBdds(os, src, roots);

  BddManager dst;
  std::istringstream is(os.str());
  const auto loaded = loadBdds(is, dst);
  EXPECT_EQ(test::truthTable(loaded[0], kVars), table);
}

TEST(Serialize, V2PersistsVariableOrder) {
  // The regression this guards: a snapshot taken after dynamic reordering
  // must restore into a manager with the *same* order, or resumed runs see
  // differently-shaped (Restrict-simplified) BDDs and diverge byte-wise.
  BddManager src;
  constexpr unsigned kVars = 8;
  for (unsigned i = 0; i < kVars; ++i) src.newVar("x" + std::to_string(i));
  Rng rng(23);
  std::vector<Bdd> roots;
  for (int i = 0; i < 6; ++i) roots.push_back(test::randomBdd(src, kVars, rng, 5));
  // Force a decidedly non-default order (a sift() might settle on identity).
  const std::vector<unsigned> shuffled{7, 0, 6, 1, 5, 2, 4, 3};
  applyVarOrder(src, shuffled);
  for (unsigned level = 0; level < kVars; ++level) {
    ASSERT_EQ(src.varAtLevel(level), shuffled[level]);
  }

  std::ostringstream os;
  saveBdds(os, src, roots);

  BddManager dst;  // fresh: variables and order both come from the file
  std::istringstream is(os.str());
  const auto loaded = loadBdds(is, dst);
  ASSERT_EQ(dst.varCount(), kVars);
  for (unsigned level = 0; level < kVars; ++level) {
    EXPECT_EQ(dst.varAtLevel(level), src.varAtLevel(level)) << "level " << level;
  }
  // Same order => structurally identical DAG, not just the same functions.
  EXPECT_EQ(sharedSize(loaded), sharedSize(roots));
  for (std::size_t i = 0; i < roots.size(); ++i) {
    EXPECT_EQ(test::truthTable(loaded[i], kVars),
              test::truthTable(roots[i], kVars));
  }
}

TEST(Serialize, V2OrderRestoredIntoAutoReorderManager) {
  // applyVarOrder must compose with a destination manager that has dynamic
  // reordering enabled (the service resumes jobs with auto_reorder on).
  BddManager src;
  constexpr unsigned kVars = 6;
  for (unsigned i = 0; i < kVars; ++i) src.newVar();
  Rng rng(31);
  const Bdd f = test::randomBdd(src, kVars, rng, 6);
  const auto table = test::truthTable(f, kVars);
  applyVarOrder(src, std::vector<unsigned>{5, 3, 1, 0, 2, 4});

  std::ostringstream os;
  const std::vector<Bdd> roots{f};
  saveBdds(os, src, roots);

  BddOptions opts;
  opts.autoReorder = true;
  BddManager dst(opts);
  std::istringstream is(os.str());
  const auto loaded = loadBdds(is, dst);
  for (unsigned level = 0; level < kVars; ++level) {
    EXPECT_EQ(dst.varAtLevel(level), src.varAtLevel(level)) << "level " << level;
  }
  EXPECT_EQ(test::truthTable(loaded[0], kVars), table);
}

TEST(Serialize, V1FilesWithoutOrderLineStillLoad) {
  // Pre-order-line files load with the manager's current (default) order.
  const std::string v1 =
      "icbdd-bdd-v1\n"
      "vars 2\n"
      "v 0 a\n"
      "v 1 b\n"
      "nodes 2\n"
      "n 0 1 T F\n"
      "n 1 0 0 F\n"
      "roots 1\n"
      "r 1\n";
  BddManager dst;
  std::istringstream is(v1);
  const auto loaded = loadBdds(is, dst);
  ASSERT_EQ(loaded.size(), 1u);
  EXPECT_EQ(loaded[0], Bdd(dst.var(0) & dst.var(1)));
  EXPECT_EQ(dst.varAtLevel(0), 0u);
  EXPECT_EQ(dst.varAtLevel(1), 1u);
}

TEST(Serialize, ApplyVarOrderRejectsBadPermutations) {
  BddManager mgr;
  for (unsigned i = 0; i < 4; ++i) mgr.newVar();
  {
    const std::vector<unsigned> tooShort{2, 1, 0};
    EXPECT_THROW(applyVarOrder(mgr, tooShort), BddUsageError);
  }
  {
    const std::vector<unsigned> duplicate{0, 1, 1, 3};
    EXPECT_THROW(applyVarOrder(mgr, duplicate), BddUsageError);
  }
  {
    const std::vector<unsigned> outOfRange{0, 1, 2, 4};
    EXPECT_THROW(applyVarOrder(mgr, outOfRange), BddUsageError);
  }
  const std::vector<unsigned> order{3, 1, 0, 2};
  applyVarOrder(mgr, order);
  for (unsigned level = 0; level < 4; ++level) {
    EXPECT_EQ(mgr.varAtLevel(level), order[level]);
  }
}

}  // namespace
}  // namespace icb
