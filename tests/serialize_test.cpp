// Round-trip tests for the textual BDD serialization.
#include <gtest/gtest.h>

#include <sstream>

#include "bdd/serialize.hpp"
#include "test_util.hpp"

namespace icb {
namespace {

TEST(Serialize, RoundTripRandomFunctions) {
  BddManager src;
  constexpr unsigned kVars = 8;
  for (unsigned i = 0; i < kVars; ++i) src.newVar("x" + std::to_string(i));
  Rng rng(5);
  std::vector<Bdd> roots;
  std::vector<std::vector<char>> tables;
  for (int i = 0; i < 10; ++i) {
    roots.push_back(test::randomBdd(src, kVars, rng));
    tables.push_back(test::truthTable(roots.back(), kVars));
  }

  std::ostringstream os;
  saveBdds(os, src, roots);

  BddManager dst;  // empty: variables come from the file
  std::istringstream is(os.str());
  const std::vector<Bdd> loaded = loadBdds(is, dst);
  ASSERT_EQ(loaded.size(), roots.size());
  EXPECT_EQ(dst.varCount(), kVars);
  EXPECT_EQ(dst.varName(3), "x3");
  for (std::size_t i = 0; i < loaded.size(); ++i) {
    EXPECT_EQ(test::truthTable(loaded[i], kVars), tables[i]);
  }
}

TEST(Serialize, RoundTripIntoExistingManagerPreservesSharing) {
  BddManager src;
  for (unsigned i = 0; i < 6; ++i) src.newVar();
  const Bdd common = src.var(2) ^ src.var(3);
  const std::vector<Bdd> roots{src.var(0) & common, src.var(1) & common,
                               !common};
  std::ostringstream os;
  saveBdds(os, src, roots);

  BddManager dst;
  for (unsigned i = 0; i < 6; ++i) dst.newVar();
  std::istringstream is(os.str());
  const std::vector<Bdd> loaded = loadBdds(is, dst);
  // Sharing survives: the shared-DAG size matches the source.
  EXPECT_EQ(sharedSize(loaded), sharedSize(roots));
  // Complement-edge round trip: third root is the negation of the common part.
  EXPECT_EQ(loaded[2], !(loaded[0].exists(Bdd(&dst, dst.cubeE(std::vector<unsigned>{0})))));
}

TEST(Serialize, ConstantsAndEmptyRootList) {
  BddManager src;
  src.newVar();
  const std::vector<Bdd> roots{src.one(), src.zero()};
  std::ostringstream os;
  saveBdds(os, src, roots);
  BddManager dst;
  std::istringstream is(os.str());
  const auto loaded = loadBdds(is, dst);
  ASSERT_EQ(loaded.size(), 2u);
  EXPECT_TRUE(loaded[0].isOne());
  EXPECT_TRUE(loaded[1].isZero());
}

TEST(Serialize, RejectsGarbage) {
  BddManager mgr;
  {
    std::istringstream is("not-a-bdd-file\n");
    EXPECT_THROW(loadBdds(is, mgr), BddUsageError);
  }
  {
    std::istringstream is("icbdd-bdd-v1\nvars 1\nv 0 x\nnodes 1\nn 0 0 T Q\n");
    EXPECT_THROW(loadBdds(is, mgr), BddUsageError);
  }
  {
    std::istringstream is("icbdd-bdd-v1\nvars 1\nv 0 x\nnodes 1\nn 0 0 T 5\n");
    EXPECT_THROW(loadBdds(is, mgr), BddUsageError);
  }
  {
    // Truncated file.
    std::istringstream is("icbdd-bdd-v1\nvars 1\n");
    EXPECT_THROW(loadBdds(is, mgr), BddUsageError);
  }
}

TEST(Serialize, RoundTripAfterReordering) {
  // Serialization stores variables, not levels: a file written under a
  // sifted order loads into a fresh manager with the default order and
  // still denotes the same functions.
  BddManager src;
  constexpr unsigned kVars = 8;
  for (unsigned i = 0; i < kVars; ++i) src.newVar();
  Rng rng(11);
  const Bdd f = test::randomBdd(src, kVars, rng, 6);
  const auto table = test::truthTable(f, kVars);
  src.sift();
  std::ostringstream os;
  const std::vector<Bdd> roots{f};
  saveBdds(os, src, roots);

  BddManager dst;
  std::istringstream is(os.str());
  const auto loaded = loadBdds(is, dst);
  EXPECT_EQ(test::truthTable(loaded[0], kVars), table);
}

}  // namespace
}  // namespace icb
