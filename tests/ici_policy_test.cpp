// Section III.A machinery: Restrict cross-simplification, the pairwise
// conjunction table, Figure 1's greedy evaluation, and the Theorem 2 exact
// pairwise cover -- all of which must preserve the denoted conjunction.
#include <gtest/gtest.h>

#include "ici/evaluate_policy.hpp"
#include "ici/pair_cover.hpp"
#include "ici/pair_table.hpp"
#include "ici/simplify.hpp"
#include "test_util.hpp"

namespace icb {
namespace {

ConjunctList randomList(BddManager& mgr, unsigned nvars, Rng& rng,
                        unsigned count) {
  ConjunctList list(&mgr);
  for (unsigned i = 0; i < count; ++i) {
    list.push(test::randomBdd(mgr, nvars, rng, 3));
  }
  return list;
}

struct PolicyParam {
  unsigned nvars;
  unsigned count;
  std::uint64_t seed;
};

class PolicySweep : public ::testing::TestWithParam<PolicyParam> {};

TEST_P(PolicySweep, SimplifyPreservesConjunction) {
  const auto [nvars, count, seed] = GetParam();
  BddManager mgr;
  for (unsigned i = 0; i < nvars; ++i) mgr.newVar();
  Rng rng(seed);
  for (int round = 0; round < 6; ++round) {
    ConjunctList list = randomList(mgr, nvars, rng, count);
    const Bdd before = list.evaluate();
    const SimplifyResult r = simplifyList(list);
    EXPECT_EQ(list.evaluate(), before);
    EXPECT_LE(r.sizeAfter, r.sizeBefore);
  }
}

TEST_P(PolicySweep, GreedyEvaluatePreservesConjunction) {
  const auto [nvars, count, seed] = GetParam();
  BddManager mgr;
  for (unsigned i = 0; i < nvars; ++i) mgr.newVar();
  Rng rng(seed * 5 + 1);
  for (int round = 0; round < 6; ++round) {
    ConjunctList list = randomList(mgr, nvars, rng, count);
    const Bdd before = list.evaluate();
    greedyEvaluate(list);
    EXPECT_EQ(list.evaluate(), before);
  }
}

TEST_P(PolicySweep, FullPolicyPreservesConjunction) {
  const auto [nvars, count, seed] = GetParam();
  BddManager mgr;
  for (unsigned i = 0; i < nvars; ++i) mgr.newVar();
  Rng rng(seed * 11 + 7);
  for (int round = 0; round < 6; ++round) {
    ConjunctList list = randomList(mgr, nvars, rng, count);
    const Bdd before = list.evaluate();
    evaluateAndSimplify(list);
    EXPECT_EQ(list.evaluate(), before);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, PolicySweep,
    ::testing::Values(PolicyParam{4, 3, 1}, PolicyParam{6, 4, 2},
                      PolicyParam{8, 5, 3}, PolicyParam{8, 8, 4},
                      PolicyParam{10, 6, 5}),
    [](const ::testing::TestParamInfo<PolicyParam>& paramInfo) {
      return "v" + std::to_string(paramInfo.param.nvars) + "c" +
             std::to_string(paramInfo.param.count) + "s" +
             std::to_string(paramInfo.param.seed);
    });

TEST(PairTable, RatiosMatchDefinition) {
  BddManager mgr;
  for (unsigned i = 0; i < 6; ++i) mgr.newVar();
  const Bdd a = mgr.var(0) & mgr.var(1);
  const Bdd b = mgr.var(1) & mgr.var(2);
  const Bdd c = mgr.var(4);
  PairTable table(mgr, {a, b, c});
  const auto best = table.best();
  ASSERT_TRUE(best.has_value());
  const Bdd pij = table.conjuncts()[best->i] & table.conjuncts()[best->j];
  const std::vector<Bdd> pair{table.conjuncts()[best->i],
                              table.conjuncts()[best->j]};
  const double expected = static_cast<double>(pij.size()) /
                          static_cast<double>(sharedSize(pair));
  EXPECT_DOUBLE_EQ(best->ratio, expected);
}

TEST(PairTable, MergeShrinksCountAndKeepsSemantics) {
  BddManager mgr;
  for (unsigned i = 0; i < 8; ++i) mgr.newVar();
  Rng rng(13);
  std::vector<Bdd> items;
  Bdd all = mgr.one();
  for (int i = 0; i < 5; ++i) {
    items.push_back(test::randomBdd(mgr, 8, rng, 3));
    all &= items.back();
  }
  PairTable table(mgr, items);
  while (table.count() > 1) {
    const auto best = table.best();
    ASSERT_TRUE(best.has_value());
    table.merge(best->i, best->j);
  }
  EXPECT_EQ(table.conjuncts().front(), all);
}

TEST(GreedyEvaluate, MergesSubsumedConjuncts) {
  // x & (x|y): the pair conjunction equals x (smaller than the pair),
  // so the greedy loop must evaluate it.
  BddManager mgr;
  mgr.newVar();
  mgr.newVar();
  const Bdd x = mgr.var(0);
  ConjunctList list(&mgr, {x, x | mgr.var(1)});
  EvaluatePolicyOptions options;
  options.simplifyFirst = false;
  const auto r = greedyEvaluate(list, options);
  EXPECT_EQ(r.merges, 1u);
  EXPECT_EQ(list.size(), 1u);
  EXPECT_EQ(list[0], x);
}

TEST(GreedyEvaluate, ThresholdZeroNeverMerges) {
  BddManager mgr;
  for (unsigned i = 0; i < 6; ++i) mgr.newVar();
  // Disjoint-support conjuncts: every pair conjunction is strictly larger
  // than the shared size, so with threshold < 1 nothing merges.
  ConjunctList list(&mgr, {mgr.var(0) & mgr.var(1), mgr.var(2) & mgr.var(3),
                           mgr.var(4) & mgr.var(5)});
  EvaluatePolicyOptions options;
  options.growThreshold = 0.5;
  options.simplifyFirst = false;
  const auto r = greedyEvaluate(list, options);
  EXPECT_EQ(r.merges, 0u);
  EXPECT_EQ(list.size(), 3u);
}

TEST(GreedyEvaluate, HugeThresholdMergesEverything) {
  BddManager mgr;
  for (unsigned i = 0; i < 6; ++i) mgr.newVar();
  ConjunctList list(&mgr, {mgr.var(0), mgr.var(1), mgr.var(2), mgr.var(3)});
  EvaluatePolicyOptions options;
  options.growThreshold = 1e9;
  options.pairTable.buildCapFactor = 0.0;  // unbounded builds
  const auto r = greedyEvaluate(list, options);
  EXPECT_EQ(list.size(), 1u);
  EXPECT_EQ(r.merges, 3u);
}

TEST(SimplifyList, RemovesImpliedConjuncts) {
  BddManager mgr;
  for (unsigned i = 0; i < 3; ++i) mgr.newVar();
  const Bdd x = mgr.var(0);
  // x (small) makes x | y redundant; simplification must expose the TRUE.
  ConjunctList list(&mgr, {x, x | mgr.var(1), mgr.var(2)});
  simplifyList(list);
  EXPECT_EQ(list.size(), 2u);
  EXPECT_EQ(list.evaluate(), x & mgr.var(2));
}

TEST(SimplifyList, ExposesContradictionAsFalse) {
  BddManager mgr;
  for (unsigned i = 0; i < 2; ++i) mgr.newVar();
  const Bdd x = mgr.var(0);
  ConjunctList list(&mgr, {x, !x});
  simplifyList(list);
  EXPECT_TRUE(list.isFalse());
}

TEST(PairCover, OptimalCoverBeatsOrMatchesNaive) {
  BddManager mgr;
  for (unsigned i = 0; i < 8; ++i) mgr.newVar();
  Rng rng(17);
  for (int round = 0; round < 5; ++round) {
    ConjunctList list = randomList(mgr, 8, rng, 6);
    list.normalize();
    if (list.size() < 2) continue;
    const PairCoverResult cover = optimalPairCover(list);
    // The all-singletons cover is feasible, so the optimum can't exceed it.
    std::uint64_t naive = 0;
    for (const auto s : list.memberSizes()) naive += s;
    EXPECT_LE(cover.additiveCost, naive);
    // Applying the cover preserves the conjunction.
    const ConjunctList applied = applyPairCover(list, cover);
    EXPECT_EQ(applied.evaluate(), list.evaluate());
  }
}

TEST(PairCover, RejectsOversizedLists) {
  BddManager mgr;
  mgr.newVar();
  ConjunctList list(&mgr);
  for (int i = 0; i < 25; ++i) list.push(mgr.var(0));
  EXPECT_THROW(optimalPairCover(list), BddUsageError);
}

TEST(PairCover, SingletonList) {
  BddManager mgr;
  mgr.newVar();
  ConjunctList list(&mgr, {mgr.var(0)});
  const PairCoverResult cover = optimalPairCover(list);
  EXPECT_EQ(cover.cover.size(), 1u);
  EXPECT_EQ(cover.additiveCost, mgr.var(0).size());
}

}  // namespace
}  // namespace icb
