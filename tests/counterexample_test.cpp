// Counterexample machinery details: trace validation catches corrupt
// traces, formatting, and traces through nondeterministic branching.
#include <gtest/gtest.h>

#include "sym/bitvector.hpp"
#include "verif/counterexample.hpp"
#include "verif/run_all.hpp"
#include "test_util.hpp"

namespace icb {
namespace {

/// Machine with a nondeterministic choice: from 0, input picks branch A
/// (safe plateau at 2) or branch B (reaches the bad value 7 in 3 steps).
struct Branchy {
  std::unique_ptr<Fsm> fsm;
  std::vector<unsigned> bits;
};

Branchy makeBranchy(BddManager& mgr) {
  Branchy b;
  b.fsm = std::make_unique<Fsm>(mgr);
  VarManager& vars = b.fsm->vars();
  const unsigned pick = vars.addInputBit("pick");
  for (unsigned j = 0; j < 3; ++j) {
    b.bits.push_back(vars.addStateBit("s" + std::to_string(j)));
  }
  BitVec v;
  for (unsigned j = 0; j < 3; ++j) v.push(vars.cur(b.bits[j]));
  // Branch A: 0 -> 1 -> 2 -> 2 ...; branch B: 0 -> 5 -> 6 -> 7 -> 7.
  const Bdd atZero = eqConst(v, 0);
  const Bdd inA = ult(v, BitVec::constant(mgr, 3, 2));
  const Bdd inB = uleConst(v, 6) & !uleConst(v, 4);
  BitVec next = v;
  next = mux(inB, incTrunc(v), next);
  next = mux(inA & !atZero, incTrunc(v), next);
  next = mux(atZero,
             mux(vars.input(pick), BitVec::constant(mgr, 3, 5),
                 BitVec::constant(mgr, 3, 1)),
             next);
  for (unsigned j = 0; j < 3; ++j) b.fsm->setNext(b.bits[j], next.bit(j));
  b.fsm->setInit(atZero);
  b.fsm->addInvariant(ult(v, BitVec::constant(mgr, 3, 7)));
  return b;
}

TEST(Counterexample, TraceThroughNondeterministicChoice) {
  BddManager mgr;
  Branchy b = makeBranchy(mgr);
  for (const Method m :
       {Method::kFwd, Method::kBkwd, Method::kIci, Method::kXici}) {
    BddManager local;
    Branchy fresh = makeBranchy(local);
    const EngineResult r = runMethod(*fresh.fsm, m, {});
    ASSERT_EQ(r.verdict, Verdict::kViolated) << methodName(m);
    ASSERT_TRUE(r.trace.has_value()) << methodName(m);
    EXPECT_EQ(validateTrace(*fresh.fsm, *r.trace, fresh.fsm->property(false)),
              "")
        << methodName(m);
    // Shortest violation: 0 -> 5 -> 6 -> 7 (4 states).
    EXPECT_EQ(r.trace->states.size(), 4u) << methodName(m);
  }
}

TEST(Counterexample, ValidateRejectsCorruptedTraces) {
  BddManager mgr;
  Branchy b = makeBranchy(mgr);
  const EngineResult r = runMethod(*b.fsm, Method::kFwd, {});
  ASSERT_TRUE(r.trace.has_value());
  const ConjunctList prop = b.fsm->property(false);

  {
    Trace broken = *r.trace;
    broken.states.front()[b.fsm->vars().stateBit(0).cur] ^= 1;
    EXPECT_NE(validateTrace(*b.fsm, broken, prop), "");
  }
  {
    Trace broken = *r.trace;
    broken.states.back() = broken.states.front();  // ends in a good state
    EXPECT_NE(validateTrace(*b.fsm, broken, prop), "");
  }
  {
    Trace broken = *r.trace;
    broken.inputs.pop_back();
    EXPECT_NE(validateTrace(*b.fsm, broken, prop), "");
  }
  {
    Trace broken;
    EXPECT_NE(validateTrace(*b.fsm, broken, prop), "");
  }
}

TEST(Counterexample, FormatUsesStatePrinter) {
  BddManager mgr;
  Branchy b = makeBranchy(mgr);
  b.fsm->setStatePrinter([](const Fsm&, std::span<const char>) {
    return std::string("CUSTOM");
  });
  const EngineResult r = runMethod(*b.fsm, Method::kFwd, {});
  ASSERT_TRUE(r.trace.has_value());
  const std::string text = formatTrace(*b.fsm, *r.trace);
  EXPECT_NE(text.find("CUSTOM"), std::string::npos);
  EXPECT_NE(text.find("step 0"), std::string::npos);
}

TEST(Counterexample, NoTraceWhenDisabled) {
  BddManager mgr;
  Branchy b = makeBranchy(mgr);
  EngineOptions options;
  options.wantTrace = false;
  const EngineResult r = runMethod(*b.fsm, Method::kFwd, {}, options);
  EXPECT_EQ(r.verdict, Verdict::kViolated);
  EXPECT_FALSE(r.trace.has_value());
}

TEST(Counterexample, ImmediateViolationGivesSingleStateTrace) {
  BddManager mgr;
  Fsm fsm(mgr);
  VarManager& vars = fsm.vars();
  vars.addInputBit("i");
  const unsigned s = vars.addStateBit("s");
  fsm.setNext(0, vars.cur(s));
  fsm.setInit(vars.cur(s));       // starts at 1
  fsm.addInvariant(!vars.cur(s)); // requires 0
  for (const Method m :
       {Method::kFwd, Method::kBkwd, Method::kIci, Method::kXici}) {
    BddManager local;
    Fsm f2(local);
    VarManager& v2 = f2.vars();
    v2.addInputBit("i");
    const unsigned s2 = v2.addStateBit("s");
    f2.setNext(0, v2.cur(s2));
    f2.setInit(v2.cur(s2));
    f2.addInvariant(!v2.cur(s2));
    const EngineResult r = runMethod(f2, m, {});
    ASSERT_EQ(r.verdict, Verdict::kViolated) << methodName(m);
    ASSERT_TRUE(r.trace.has_value());
    EXPECT_EQ(r.trace->states.size(), 1u) << methodName(m);
    EXPECT_EQ(validateTrace(f2, *r.trace, f2.property(false)), "");
  }
}

}  // namespace
}  // namespace icb
