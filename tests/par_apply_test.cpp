// Intra-problem parallel apply (docs/parallel.md): N workers share one
// BddManager, splitting cofactor subproblems of a single operation across
// a work-stealing pool over the shared-atomic NodeStore and the lock-free
// computed cache.
//
// The contract under test is *canonical-result equivalence*: any
// applyWorkers setting computes the same functions, so every engine
// produces the same verdict, the same iteration count, and the same
// counterexample as the serial build.  The stress tests hammer the shared
// structures from 8 threads; their names are part of the tsan preset's
// test filter (CMakePresets.json), so the same workloads run under
// ThreadSanitizer in CI.
#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "bdd/bdd.hpp"
#include "bdd/serialize.hpp"
#include "models/avg_filter.hpp"
#include "models/mutex_ring.hpp"
#include "models/network.hpp"
#include "models/pipeline_cpu.hpp"
#include "models/typed_fifo.hpp"
#include "test_util.hpp"
#include "verif/run_all.hpp"

namespace icb {
namespace {

EngineOptions optionsWithWorkers(unsigned applyWorkers) {
  EngineOptions options;
  options.maxNodes = 2'000'000;
  options.timeLimitSeconds = 120.0;
#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
  options.timeLimitSeconds *= 10.0;
#endif
  options.wantTrace = true;
  options.applyWorkers = applyWorkers;
  return options;
}

/// A model plus the private manager that owns it.
struct Instance {
  std::unique_ptr<BddManager> mgr;
  ModelInstance model;
};

constexpr const char* kModelNames[] = {"fifo", "mutex", "network", "filter",
                                       "pipeline"};

/// Small instances of the paper's five models (the icbdd_doctor defaults),
/// optionally with the model's seeded bug so a counterexample exists.
Instance makeModel(const std::string& name, bool injectBug) {
  Instance out;
  out.mgr = std::make_unique<BddManager>();
  BddManager& mgr = *out.mgr;
  if (name == "fifo") {
    auto m = std::make_shared<TypedFifoModel>(mgr,
                                              TypedFifoConfig{3, 4, injectBug});
    out.model.fsm = &m->fsm();
    out.model.fdCandidates = m->fdCandidates();
    out.model.holder = std::move(m);
  } else if (name == "mutex") {
    auto m = std::make_shared<MutexRingModel>(mgr, MutexRingConfig{3, injectBug});
    out.model.fsm = &m->fsm();
    out.model.fdCandidates = m->fdCandidates();
    out.model.holder = std::move(m);
  } else if (name == "network") {
    auto m = std::make_shared<NetworkModel>(mgr, NetworkConfig{3, injectBug});
    out.model.fsm = &m->fsm();
    out.model.fdCandidates = m->fdCandidates();
    out.model.holder = std::move(m);
  } else if (name == "filter") {
    auto m = std::make_shared<AvgFilterModel>(mgr,
                                              AvgFilterConfig{2, 4, injectBug});
    out.model.fsm = &m->fsm();
    out.model.fdCandidates = m->fdCandidates();
    out.model.holder = std::move(m);
  } else {
    auto m = std::make_shared<PipelineCpuModel>(
        mgr, PipelineCpuConfig{2, 1, injectBug});
    out.model.fsm = &m->fsm();
    out.model.fdCandidates = m->fdCandidates();
    out.model.holder = std::move(m);
  }
  return out;
}

/// Runs `method` on a fresh instance at the given worker count.
EngineResult runOnce(const std::string& name, bool injectBug, Method method,
                     unsigned applyWorkers) {
  Instance inst = makeModel(name, injectBug);
  return runMethod(*inst.model.fsm, method, inst.model.fdCandidates,
                   optionsWithWorkers(applyWorkers));
}

void expectIdenticalOutcome(const EngineResult& serial,
                            const EngineResult& parallel,
                            const std::string& label) {
  EXPECT_EQ(serial.verdict, parallel.verdict) << label;
  EXPECT_EQ(serial.iterations, parallel.iterations) << label;
  EXPECT_EQ(serial.peakIterateNodes, parallel.peakIterateNodes) << label;
  EXPECT_EQ(serial.peakIterateMemberSizes, parallel.peakIterateMemberSizes)
      << label;
  ASSERT_EQ(serial.trace.has_value(), parallel.trace.has_value()) << label;
  if (serial.trace.has_value()) {
    EXPECT_EQ(serial.trace->states, parallel.trace->states) << label;
    EXPECT_EQ(serial.trace->inputs, parallel.trace->inputs) << label;
  }
}

// ---------------------------------------------------------------------------
// 5 models x 5 methods: verdicts, iteration counts, and counterexamples are
// identical at applyWorkers 1 and 4.

TEST(ParallelApplyEquivalence, AllModelsAllMethodsMatchSerial) {
  for (const char* name : kModelNames) {
    for (const Method m : allMethods()) {
      const std::string label = std::string(name) + "/" + methodName(m);
      const EngineResult serial = runOnce(name, /*injectBug=*/false, m, 1);
      const EngineResult parallel = runOnce(name, /*injectBug=*/false, m, 4);
      EXPECT_EQ(serial.verdict, Verdict::kHolds) << label;
      expectIdenticalOutcome(serial, parallel, label);
    }
  }
}

TEST(ParallelApplyEquivalence, InjectedBugCounterexamplesMatchSerial) {
  for (const char* name : kModelNames) {
    for (const Method m : allMethods()) {
      const std::string label =
          std::string(name) + "+bug/" + methodName(m);
      const EngineResult serial = runOnce(name, /*injectBug=*/true, m, 1);
      const EngineResult parallel = runOnce(name, /*injectBug=*/true, m, 4);
      EXPECT_EQ(serial.verdict, Verdict::kViolated) << label;
      expectIdenticalOutcome(serial, parallel, label);
    }
  }
}

// ---------------------------------------------------------------------------
// applyWorkers plumbing: EngineOptions 0 inherits the manager's setting,
// >0 overrides it for the run and restores it afterwards.

TEST(ParallelApplyEquivalence, EngineOptionInheritsAndRestoresManagerSetting) {
  Instance inst = makeModel("fifo", false);
  inst.mgr->setApplyWorkers(4);
  EXPECT_EQ(inst.mgr->applyWorkers(), 4u);

  EngineOptions forceSerial = optionsWithWorkers(1);
  const EngineResult r =
      runMethod(*inst.model.fsm, Method::kBkwd, inst.model.fdCandidates,
                forceSerial);
  EXPECT_EQ(r.verdict, Verdict::kHolds);
  // The LimitGuard restored the manager's own configuration.
  EXPECT_EQ(inst.mgr->applyWorkers(), 4u);

  EngineOptions inherit = optionsWithWorkers(0);
  const EngineResult r2 = runMethod(*inst.model.fsm, Method::kBkwd,
                                    inst.model.fdCandidates, inherit);
  EXPECT_EQ(r2.verdict, Verdict::kHolds);
  EXPECT_EQ(inst.mgr->applyWorkers(), 4u);
}

// ---------------------------------------------------------------------------
// Shared-structure stress: 8 workers hammering one manager's unique table
// and computed cache.  Run under ThreadSanitizer by the tsan CI preset.

/// The same random operation mix on a manager with the given worker count;
/// returns the canonical serialization of the surviving functions, which
/// must not depend on the worker count.
std::string randomWorkloadFingerprint(unsigned applyWorkers) {
  BddOptions options;
  options.applyWorkers = applyWorkers;
  BddManager mgr(options);
  const unsigned kVars = 13;
  for (unsigned i = 0; i < kVars; ++i) mgr.newVar();

  Rng rng(20260808);
  std::vector<Bdd> pool;
  for (int i = 0; i < 8; ++i) pool.push_back(test::randomBdd(mgr, kVars, rng, 6));

  for (int round = 0; round < 40; ++round) {
    const Bdd& a = pool[rng.below(pool.size())];
    const Bdd& b = pool[rng.below(pool.size())];
    Bdd r = mgr.one();
    switch (rng.below(5)) {
      case 0: r = a & b; break;
      case 1: r = a ^ b; break;
      case 2: r = a.ite(b, pool[rng.below(pool.size())]); break;
      case 3: {
        Bdd cube = mgr.var(static_cast<unsigned>(rng.below(kVars)));
        cube &= mgr.var(static_cast<unsigned>(rng.below(kVars)));
        r = a.exists(cube);
        break;
      }
      default: {
        Bdd cube = mgr.var(static_cast<unsigned>(rng.below(kVars)));
        r = a.andExists(b, cube);
        break;
      }
    }
    pool[rng.below(pool.size())] = r;
    if (round % 16 == 15) mgr.gc();  // quiesced safe point between regions
  }

  mgr.checkInvariants();
  std::ostringstream os;
  saveBdds(os, mgr, pool);
  return os.str();
}

TEST(ParallelApplyStress, EightWorkerRandomOpsMatchSerialByteForByte) {
  const std::string serial = randomWorkloadFingerprint(1);
  const std::string parallel = randomWorkloadFingerprint(8);
  EXPECT_EQ(serial, parallel);
}

TEST(ParallelApplyStress, EightWorkerEngineRunStaysCoherent) {
  // One full fixpoint computation with a heavily oversubscribed pool: every
  // image step fans its conjunction/quantification out over 8 threads on a
  // shared arena.  The verdict (and the structural invariants afterwards)
  // must come out exactly as in the serial run.
  const EngineResult serial = runOnce("mutex", false, Method::kBkwd, 1);
  const EngineResult parallel = runOnce("mutex", false, Method::kBkwd, 8);
  EXPECT_EQ(serial.verdict, Verdict::kHolds);
  expectIdenticalOutcome(serial, parallel, "mutex/bkwd@8");
}

TEST(ParallelApplyStress, WorkerCountCanChangeBetweenRegions) {
  // setApplyWorkers at quiesced points: grow, shrink to serial, regrow.
  // Each region must still match the serial fingerprint of the same ops.
  BddManager mgr;
  const unsigned kVars = 10;
  for (unsigned i = 0; i < kVars; ++i) mgr.newVar();
  Rng rng(7);
  const Bdd f = test::randomBdd(mgr, kVars, rng, 6);
  const Bdd g = test::randomBdd(mgr, kVars, rng, 6);

  const Bdd serialAnd = f & g;
  mgr.setApplyWorkers(8);
  EXPECT_EQ(f & g, serialAnd);  // cache hit or recompute: same canonical node
  const Bdd parXor = f ^ g;
  mgr.setApplyWorkers(1);
  EXPECT_EQ(f ^ g, parXor);
  mgr.setApplyWorkers(3);
  EXPECT_EQ((f & g) | (f ^ g), serialAnd | parXor);
  mgr.checkInvariants();
}

}  // namespace
}  // namespace icb
