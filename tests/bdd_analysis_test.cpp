// Node counting (including the paper's 9-node comparator), shared sizes,
// satisfying-assignment counts, support, minterm picking and the bounded AND.
#include <gtest/gtest.h>

#include <sstream>

#include "bdd/bdd.hpp"
#include "sym/bitvector.hpp"
#include "test_util.hpp"

namespace icb {
namespace {

TEST(BddAnalysis, ConstantAndLiteralSizes) {
  BddManager mgr;
  mgr.newVar();
  EXPECT_EQ(mgr.one().size(), 1u);   // terminal only
  EXPECT_EQ(mgr.zero().size(), 1u);  // complement edge to the same terminal
  EXPECT_EQ(mgr.var(0).size(), 2u);  // one decision node + terminal
  EXPECT_EQ((!mgr.var(0)).size(), 2u);
}

TEST(BddAnalysis, PaperNineNodeComparator) {
  // The paper's typed FIFO counts each "entry <= 128" constraint as 9 BDD
  // nodes for an 8-bit entry.  Reproduce that exact count.
  BddManager mgr;
  BitVec entry;
  for (unsigned j = 0; j < 8; ++j) {
    entry.push(mgr.var(mgr.newVar()));
  }
  const Bdd constraint = uleConst(entry, 128);
  EXPECT_EQ(constraint.size(), 9u);
}

TEST(BddAnalysis, SharedSizeCountsOverlapOnce) {
  BddManager mgr;
  for (unsigned i = 0; i < 6; ++i) mgr.newVar();
  const Bdd common = mgr.var(2) & mgr.var(3);
  const Bdd a = mgr.var(0) & common;
  const Bdd b = mgr.var(1) & common;
  const std::vector<Bdd> both{a, b};
  EXPECT_LT(sharedSize(both), a.size() + b.size());
  EXPECT_GE(sharedSize(both), std::max(a.size(), b.size()));
  const std::vector<Bdd> same{a, a};
  EXPECT_EQ(sharedSize(same), a.size());
}

TEST(BddAnalysis, SatCountMatchesOracle) {
  BddManager mgr;
  constexpr unsigned kVars = 6;
  for (unsigned i = 0; i < kVars; ++i) mgr.newVar();
  Rng rng(3);
  for (int i = 0; i < 20; ++i) {
    const Bdd f = test::randomBdd(mgr, kVars, rng);
    const auto table = test::truthTable(f, kVars);
    double expected = 0;
    for (const char c : table) expected += c;
    EXPECT_DOUBLE_EQ(f.satCount(kVars), expected);
  }
}

TEST(BddAnalysis, SupportIsExact) {
  BddManager mgr;
  for (unsigned i = 0; i < 6; ++i) mgr.newVar();
  const Bdd f = (mgr.var(1) & mgr.var(4)) | mgr.var(5);
  EXPECT_EQ(f.support(), (std::vector<unsigned>{1, 4, 5}));
  EXPECT_TRUE(mgr.one().support().empty());
}

TEST(BddAnalysis, PickMintermSatisfiesFunction) {
  BddManager mgr;
  constexpr unsigned kVars = 8;
  std::vector<unsigned> vars;
  for (unsigned i = 0; i < kVars; ++i) vars.push_back(mgr.newVar());
  Rng rng(17);
  int nontrivial = 0;
  for (int i = 0; i < 40; ++i) {
    const Bdd f = test::randomBdd(mgr, kVars, rng);
    if (f.isZero()) continue;
    ++nontrivial;
    std::vector<char> values;
    mgr.pickMintermE(f.edge(), vars, rng, values);
    EXPECT_TRUE(f.eval(values));
  }
  EXPECT_GT(nontrivial, 10);
}

TEST(BddAnalysis, PickMintermOnEmptySetThrows) {
  BddManager mgr;
  mgr.newVar();
  Rng rng(1);
  std::vector<char> values;
  std::vector<unsigned> vars{0};
  EXPECT_THROW(mgr.pickMintermE(kFalseEdge, vars, rng, values), BddUsageError);
}

TEST(BddAnalysis, EvalWalksAssignments) {
  BddManager mgr;
  for (unsigned i = 0; i < 3; ++i) mgr.newVar();
  const Bdd f = mgr.var(0).ite(mgr.var(1), !mgr.var(2));
  const std::vector<char> a{1, 1, 0};
  const std::vector<char> b{1, 0, 0};
  const std::vector<char> c{0, 0, 1};
  EXPECT_TRUE(f.eval(a));
  EXPECT_FALSE(f.eval(b));
  EXPECT_FALSE(f.eval(c));
}

TEST(BddAnalysis, AndBoundedSucceedsWithGenerousBudget) {
  BddManager mgr;
  for (unsigned i = 0; i < 8; ++i) mgr.newVar();
  Rng rng(23);
  const Bdd a = test::randomBdd(mgr, 8, rng);
  const Bdd b = test::randomBdd(mgr, 8, rng);
  Edge out = kFalseEdge;
  ASSERT_TRUE(mgr.andBoundedE(a.edge(), b.edge(), 1u << 20, &out));
  EXPECT_EQ(Bdd(&mgr, out), a & b);
}

TEST(BddAnalysis, AndBoundedAbortsOnTinyBudget) {
  BddManager mgr;
  // Two functions whose conjunction needs fresh nodes: interleaved
  // comparators over disjoint variable groups.
  BitVec x;
  BitVec y;
  for (unsigned j = 0; j < 12; ++j) {
    x.push(mgr.var(mgr.newVar()));
    y.push(mgr.var(mgr.newVar()));
  }
  const Bdd a = ule(x, y);
  const Bdd b = ule(y, x);
  mgr.gc();
  Edge out = kFalseEdge;
  const bool ok = mgr.andBoundedE(a.edge(), b.edge(), 2, &out);
  EXPECT_FALSE(ok);
  // The manager must remain fully usable.
  mgr.gc();
  mgr.checkInvariants();
  Edge out2 = kFalseEdge;
  ASSERT_TRUE(mgr.andBoundedE(a.edge(), b.edge(), 1u << 22, &out2));
  EXPECT_EQ(Bdd(&mgr, out2), a & b);
}

TEST(BddAnalysis, DotDumpMentionsRootsAndVariables) {
  BddManager mgr;
  mgr.newVar("alpha");
  mgr.newVar("beta");
  const Bdd f = mgr.var(0) & !mgr.var(1);
  std::ostringstream os;
  const Edge roots[1] = {f.edge()};
  const std::string names[1] = {"f"};
  mgr.dumpDot(os, roots, names);
  const std::string dot = os.str();
  EXPECT_NE(dot.find("digraph"), std::string::npos);
  EXPECT_NE(dot.find("alpha"), std::string::npos);
  EXPECT_NE(dot.find("beta"), std::string::npos);
  EXPECT_NE(dot.find("\"f\""), std::string::npos);
}

}  // namespace
}  // namespace icb
