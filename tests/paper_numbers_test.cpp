// Regression pins for the headline paper reproductions (see EXPERIMENTS.md).
// These are the cells of Tables 1-3 that this implementation reproduces
// EXACTLY; if a change to the policies, the simplifier or the variable
// ordering moves any of them, this file fails loudly.
#include <gtest/gtest.h>

#include <algorithm>

#include "models/avg_filter.hpp"
#include "models/network.hpp"
#include "models/typed_fifo.hpp"
#include "verif/run_all.hpp"

namespace icb {
namespace {

std::vector<std::uint64_t> sorted(std::vector<std::uint64_t> v) {
  std::sort(v.begin(), v.end());
  return v;
}

TEST(PaperNumbers, Table1FifoMonolithicConjunction) {
  // Paper Table 1: Fwd/Bkwd "BDD Nodes" = 543 at depth 5, 32767 at depth 10.
  {
    BddManager mgr;
    TypedFifoModel model(mgr, {.depth = 5, .width = 8});
    EXPECT_EQ(model.fsm().property(false).evaluate().size(), 543u);
  }
  {
    BddManager mgr;
    TypedFifoModel model(mgr, {.depth = 10, .width = 8});
    EXPECT_EQ(model.fsm().property(false).evaluate().size(), 32767u);
  }
}

TEST(PaperNumbers, Table1FifoImplicitLists) {
  // Paper: ICI/XICI 41 nodes "(5 x 9 nodes)" and 81 "(10 x 9 nodes)",
  // converging in one iteration.
  for (const unsigned depth : {5u, 10u}) {
    for (const Method m : {Method::kIci, Method::kXici}) {
      BddManager mgr;
      TypedFifoModel model(mgr, {.depth = depth, .width = 8});
      const EngineResult r = runMethod(model.fsm(), m, {});
      ASSERT_EQ(r.verdict, Verdict::kHolds);
      EXPECT_EQ(r.iterations, 1u);
      EXPECT_EQ(r.peakIterateNodes, depth == 5 ? 41u : 81u);
      ASSERT_EQ(r.peakIterateMemberSizes.size(), depth);
      for (const auto s : r.peakIterateMemberSizes) EXPECT_EQ(s, 9u);
    }
  }
}

TEST(PaperNumbers, Table1FifoForwardIterations) {
  // Paper: 6 iterations at depth 5, 11 at depth 10.
  for (const unsigned depth : {5u, 10u}) {
    BddManager mgr;
    TypedFifoModel model(mgr, {.depth = depth, .width = 8});
    const EngineResult r = runForward(model.fsm());
    ASSERT_EQ(r.verdict, Verdict::kHolds);
    EXPECT_EQ(r.iterations, depth + 1);
    EXPECT_EQ(r.peakIterateNodes, depth == 5 ? 543u : 32767u);
  }
}

TEST(PaperNumbers, Table1FilterWithAssists) {
  // Paper: ICI/XICI converge in 1 iteration at 146 (45+102) for depth 4 and
  // 638 (81+169+390... the paper prints 390,169,81 plus sharing) for 8.
  struct Expect {
    unsigned depth;
    std::uint64_t total;
    std::vector<std::uint64_t> members;
  };
  for (const Expect& e :
       {Expect{4, 146, {45, 102}}, Expect{8, 638, {81, 169, 390}}}) {
    for (const Method m : {Method::kIci, Method::kXici}) {
      BddManager mgr;
      AvgFilterModel model(mgr, {.depth = e.depth, .sampleWidth = 8});
      EngineOptions options;
      options.withAssists = true;
      options.maxNodes = 24'000'000;
      options.timeLimitSeconds = 120;
#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
      options.timeLimitSeconds *= 10;  // sanitizer slowdown headroom
#endif
      const EngineResult r = runMethod(model.fsm(), m, {}, options);
      ASSERT_EQ(r.verdict, Verdict::kHolds) << methodName(m);
      EXPECT_EQ(r.iterations, 1u) << methodName(m);
      EXPECT_EQ(r.peakIterateNodes, e.total) << methodName(m);
      EXPECT_EQ(sorted(r.peakIterateMemberSizes), e.members) << methodName(m);
    }
  }
}

TEST(PaperNumbers, Table2XiciDerivesTheLemmasAutomatically) {
  // Paper Table 2 (the headline): without assists, XICI reaches the same
  // 146/638 lists in 2/3 iterations.
  struct Expect {
    unsigned depth;
    unsigned iters;
    std::uint64_t total;
    std::vector<std::uint64_t> members;
  };
  for (const Expect& e :
       {Expect{4, 2, 146, {45, 102}}, Expect{8, 3, 638, {81, 169, 390}}}) {
    BddManager mgr;
    AvgFilterModel model(mgr, {.depth = e.depth, .sampleWidth = 8});
    EngineOptions options;
    options.withAssists = false;
    options.maxNodes = 24'000'000;
    options.timeLimitSeconds = 120;
#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
    options.timeLimitSeconds *= 10;  // sanitizer slowdown headroom
#endif
    const EngineResult r = runXiciBackward(model.fsm(), options);
    ASSERT_EQ(r.verdict, Verdict::kHolds);
    EXPECT_EQ(r.iterations, e.iters);
    EXPECT_EQ(r.peakIterateNodes, e.total);
    EXPECT_EQ(sorted(r.peakIterateMemberSizes), e.members);
  }
}

TEST(PaperNumbers, Table2IciDegeneratesToBackward) {
  // Paper Table 2 at depth 4: the ICI row equals the Bkwd row when no user
  // partition exists.
  BddManager m1;
  AvgFilterModel a(m1, {.depth = 4, .sampleWidth = 8});
  const EngineResult bkwd = runBackward(a.fsm());
  BddManager m2;
  AvgFilterModel b(m2, {.depth = 4, .sampleWidth = 8});
  const EngineResult ici = runIciBackward(b.fsm());
  ASSERT_EQ(bkwd.verdict, Verdict::kHolds);
  ASSERT_EQ(ici.verdict, Verdict::kHolds);
  EXPECT_EQ(bkwd.peakIterateNodes, 490u);  // the paper's exact cell
  EXPECT_EQ(ici.peakIterateNodes, bkwd.peakIterateNodes);
}

TEST(PaperNumbers, NetworkPerProcessorConjunctSizes) {
  // Paper: 4 conjuncts of 62 nodes at n=4, 7 of 156 at n=7; ours measure
  // 60/154 under our slot-field ordering -- pinned so drift is visible.
  for (const unsigned n : {4u, 7u}) {
    BddManager mgr;
    NetworkModel model(mgr, {.processors = n});
    const ConjunctList prop = model.fsm().property(false);
    ASSERT_EQ(prop.size(), n);
    for (const auto s : prop.memberSizes()) {
      EXPECT_EQ(s, n == 4 ? 60u : 154u);
    }
  }
}

}  // namespace
}  // namespace icb
