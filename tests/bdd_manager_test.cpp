// Manager-level behaviour: adaptive GC, statistics counters, variable
// naming/levels, option plumbing.
#include <gtest/gtest.h>

#include <sstream>

#include "bdd/bdd.hpp"
#include "bdd/serialize.hpp"
#include "test_util.hpp"

namespace icb {
namespace {

TEST(BddManagerBehaviour, VariableNamesAndLevels) {
  BddManager mgr;
  const unsigned a = mgr.newVar("alpha");
  const unsigned b = mgr.newVar();  // auto-named
  EXPECT_EQ(mgr.varName(a), "alpha");
  EXPECT_EQ(mgr.varName(b), "v1");
  EXPECT_EQ(mgr.varLevel(a), 0u);
  EXPECT_EQ(mgr.varLevel(b), 1u);
  EXPECT_EQ(mgr.varAtLevel(0), a);
  EXPECT_EQ(mgr.varAtLevel(1), b);
  mgr.swapAdjacentLevels(0);
  EXPECT_EQ(mgr.varLevel(a), 1u);
  EXPECT_EQ(mgr.varAtLevel(0), b);
}

TEST(BddManagerBehaviour, StatsCountersMove) {
  BddManager mgr;
  for (unsigned i = 0; i < 10; ++i) mgr.newVar();
  Rng rng(3);
  const auto before = mgr.stats();
  for (int i = 0; i < 20; ++i) {
    const Bdd f = test::randomBdd(mgr, 10, rng, 5);
    (void)f;
  }
  const auto after = mgr.stats();
  EXPECT_GT(after.nodesCreated, before.nodesCreated);
  EXPECT_GT(after.uniqueLookups, before.uniqueLookups);
  EXPECT_GT(after.cacheLookups(), before.cacheLookups());
  EXPECT_GE(after.peakNodes, before.peakNodes);
  mgr.gc();
  EXPECT_EQ(mgr.stats().gcRuns, after.gcRuns + 1);
}

TEST(BddManagerBehaviour, ResetPeakTracksFromCurrentOccupancy) {
  BddManager mgr;
  for (unsigned i = 0; i < 12; ++i) mgr.newVar();
  Rng rng(5);
  {
    const Bdd garbage = test::randomBdd(mgr, 12, rng, 7);
    (void)garbage;
  }
  mgr.gc();
  mgr.resetPeak();
  const std::uint64_t baseline = mgr.stats().peakNodes;
  EXPECT_EQ(baseline, mgr.allocatedNodes());
  const Bdd f = test::randomBdd(mgr, 12, rng, 7);
  (void)f;
  EXPECT_GT(mgr.stats().peakNodes, baseline);
}

TEST(BddManagerBehaviour, GcKeepsCacheEntriesWhoseNodesSurvive) {
  BddManager mgr;
  for (unsigned i = 0; i < 12; ++i) mgr.newVar();
  Rng rng(11);
  const Bdd f = test::randomBdd(mgr, 12, rng, 6);
  const Bdd g = test::randomBdd(mgr, 12, rng, 6);
  const Bdd h = f & g;  // seeds the computed cache; f, g, h stay rooted
  {
    const Bdd garbage = test::randomBdd(mgr, 12, rng, 6);
    (void)garbage;
  }
  mgr.gc();
  // The sweep frees slots in place, so an entry whose operands and result
  // all survived is still exactly valid -- repeating the conjunction must
  // hit the cache instead of recomputing.
  const std::uint64_t hitsBefore = mgr.stats().cacheFor(BddOp::kAnd).hits;
  const std::uint64_t createdBefore = mgr.stats().nodesCreated;
  EXPECT_EQ(f & g, h);
  EXPECT_GT(mgr.stats().cacheFor(BddOp::kAnd).hits, hitsBefore);
  EXPECT_EQ(mgr.stats().nodesCreated, createdBefore);
}

TEST(BddManagerBehaviour, AutoGcEventuallyCollects) {
  BddOptions options;
  options.gcThreshold = 1u << 10;  // tiny threshold: force collections
  BddManager mgr(options);
  for (unsigned i = 0; i < 16; ++i) mgr.newVar();
  Rng rng(7);
  for (int i = 0; i < 300; ++i) {
    const Bdd f = test::randomBdd(mgr, 16, rng, 5);
    (void)f;  // dies immediately: pure garbage
  }
  EXPECT_GT(mgr.stats().gcRuns, 0u);
  mgr.checkInvariants();
}

TEST(BddManagerBehaviour, BytesForNodesIsMonotone) {
  // Instance method since the estimate folds in the refcount side table and
  // (when spilling) the page-cache overhead, both per-manager state.
  BddManager mgr;
  EXPECT_LT(mgr.bytesForNodes(10), mgr.bytesForNodes(1000));
  // Arena bytes alone are a lower bound on the reported footprint.
  EXPECT_GE(mgr.bytesForNodes(1000), 1000u * 16u);
}

TEST(BddManagerBehaviour, EmptyCubeIsTrue) {
  BddManager mgr;
  EXPECT_EQ(mgr.cubeE(std::vector<unsigned>{}), kTrueEdge);
}

TEST(BddManagerBehaviour, CubeRejectsUnknownVariables) {
  BddManager mgr;
  mgr.newVar();
  EXPECT_THROW(mgr.cubeE(std::vector<unsigned>{5}), BddUsageError);
}

TEST(BddManagerBehaviour, VarAccessorsRejectOutOfRange) {
  BddManager mgr;
  EXPECT_THROW((void)mgr.var(0), BddUsageError);
  EXPECT_THROW((void)mgr.nvar(0), BddUsageError);
  EXPECT_THROW((void)mgr.varEdge(0), BddUsageError);
}

TEST(BddManagerBehaviour, FreeListReusesIndices) {
  BddManager mgr;
  for (unsigned i = 0; i < 8; ++i) mgr.newVar();
  Rng rng(11);
  {
    const Bdd garbage = test::randomBdd(mgr, 8, rng, 6);
    (void)garbage;
  }
  const std::uint64_t grown = mgr.allocatedNodes();
  mgr.gc();
  EXPECT_LT(mgr.allocatedNodes(), grown);
  // New work reuses freed slots before growing the arena.
  const std::uint64_t arena = grown;  // allocatedNodes counts live only
  const Bdd fresh = test::randomBdd(mgr, 8, rng, 4);
  (void)fresh;
  (void)arena;
  mgr.checkInvariants();
}

TEST(BddManagerBehaviour, GcIsDeterministicAcrossRefTableHistories) {
  // GC enumerates its roots from the refcount side table, an unordered_map
  // whose iteration order depends on its resize history.  The enumeration
  // is sorted by node index before marking, so two managers holding the
  // same functions behave identically even when their side tables grew
  // along completely different paths.  Build that divergence on purpose:
  // manager B starts from a different arena reservation and churns through
  // hundreds of short-lived handles (forcing side-table rehashes A never
  // performs) before running the common workload.
  const auto workload = [](BddManager& mgr) {
    Rng rng(29);
    std::vector<Bdd> kept;
    for (int i = 0; i < 16; ++i) {
      const Bdd f = test::randomBdd(mgr, 10, rng, 6);
      if (i % 2 == 0) kept.push_back(f);  // odd ones become garbage
    }
    return kept;
  };

  BddManager a;
  for (unsigned i = 0; i < 10; ++i) a.newVar();
  const std::vector<Bdd> rootsA = workload(a);

  BddOptions optsB;
  optsB.initialCapacity = 1u << 12;  // different reserve history from A
  BddManager b(optsB);
  for (unsigned i = 0; i < 10; ++i) b.newVar();
  {
    Rng churnRng(97);
    std::vector<Bdd> churn;
    for (int i = 0; i < 400; ++i) {
      churn.push_back(test::randomBdd(b, 10, churnRng, 3));
    }
  }
  b.gc();  // drop the churn; the side table keeps its grown bucket array
  const std::vector<Bdd> rootsB = workload(b);

  a.gc();
  b.gc();

  // Same functions, same live count, byte-identical canonical serialization
  // -- regardless of physical node indices or side-table layout.
  EXPECT_EQ(a.liveNodes(), b.liveNodes());
  std::ostringstream osA;
  std::ostringstream osB;
  saveBdds(osA, a, rootsA);
  saveBdds(osB, b, rootsB);
  EXPECT_EQ(osA.str(), osB.str());
  a.checkInvariants();
  b.checkInvariants();
}

}  // namespace
}  // namespace icb
