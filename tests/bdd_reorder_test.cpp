// Dynamic reordering: adjacent swaps preserve every held function and all
// structural invariants; sifting shrinks a badly-ordered function.
#include <gtest/gtest.h>

#include "bdd/bdd.hpp"
#include "sym/bitvector.hpp"
#include "test_util.hpp"

namespace icb {
namespace {

TEST(BddReorder, SwapPreservesFunctionsAndInvariants) {
  BddManager mgr;
  constexpr unsigned kVars = 8;
  for (unsigned i = 0; i < kVars; ++i) mgr.newVar();
  Rng rng(5);
  std::vector<Bdd> funcs;
  std::vector<std::vector<char>> tables;
  for (int i = 0; i < 12; ++i) {
    funcs.push_back(test::randomBdd(mgr, kVars, rng));
    tables.push_back(test::truthTable(funcs.back(), kVars));
  }
  for (unsigned l = 0; l + 1 < kVars; ++l) {
    mgr.swapAdjacentLevels(l);
    mgr.checkInvariants();
  }
  for (std::size_t i = 0; i < funcs.size(); ++i) {
    EXPECT_EQ(test::truthTable(funcs[i], kVars), tables[i]);
  }
  // Order is now rotated: var 0 sank one level per swap.
  EXPECT_EQ(mgr.varLevel(0), kVars - 1);
}

TEST(BddReorder, SwapIsItsOwnInverse) {
  BddManager mgr;
  for (unsigned i = 0; i < 6; ++i) mgr.newVar();
  Rng rng(9);
  const Bdd f = test::randomBdd(mgr, 6, rng, 6);
  const auto table = test::truthTable(f, 6);
  mgr.swapAdjacentLevels(2);
  mgr.swapAdjacentLevels(2);
  EXPECT_EQ(mgr.varLevel(2), 2u);
  EXPECT_EQ(test::truthTable(f, 6), table);
  mgr.checkInvariants();
}

TEST(BddReorder, SwapHandlesComplementedElseArcs) {
  BddManager mgr;
  for (unsigned i = 0; i < 4; ++i) mgr.newVar();
  // xor chains force complemented else arcs at every level.
  const Bdd f = mgr.var(0) ^ mgr.var(1) ^ mgr.var(2) ^ mgr.var(3);
  const auto table = test::truthTable(f, 4);
  for (unsigned l = 0; l + 1 < 4; ++l) {
    mgr.swapAdjacentLevels(l);
    mgr.checkInvariants();
    EXPECT_EQ(test::truthTable(f, 4), table);
  }
}

TEST(BddReorder, SiftShrinksBadComparatorOrder) {
  // a <= b over two vectors allocated in the WORST order (all of a, then all
  // of b) is exponential-ish; sifting must interleave and shrink it.
  BddManager mgr;
  constexpr unsigned kWidth = 6;
  BitVec a;
  BitVec b;
  for (unsigned j = 0; j < kWidth; ++j) a.push(mgr.var(mgr.newVar()));
  for (unsigned j = 0; j < kWidth; ++j) b.push(mgr.var(mgr.newVar()));
  const Bdd le = ule(a, b);
  const auto table = test::truthTable(le, 2 * kWidth);
  mgr.gc();
  const std::uint64_t before = le.size();
  const std::int64_t delta = mgr.sift();
  EXPECT_LT(delta, 0);  // net shrink
  EXPECT_LT(le.size(), before);
  EXPECT_EQ(test::truthTable(le, 2 * kWidth), table);
  mgr.checkInvariants();
}

TEST(BddReorder, SiftOnTrivialManagerIsNoop) {
  BddManager mgr;
  mgr.newVar();
  EXPECT_EQ(mgr.sift(), 0);
}

}  // namespace
}  // namespace icb
