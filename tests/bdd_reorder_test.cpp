// Dynamic reordering: adjacent swaps preserve every held function and all
// structural invariants; sifting shrinks a badly-ordered function.
#include <gtest/gtest.h>

#include <array>

#include "bdd/bdd.hpp"
#include "check/check.hpp"
#include "sym/bitvector.hpp"
#include "test_util.hpp"

namespace icb {
namespace {

TEST(BddReorder, SwapPreservesFunctionsAndInvariants) {
  BddManager mgr;
  constexpr unsigned kVars = 8;
  for (unsigned i = 0; i < kVars; ++i) mgr.newVar();
  Rng rng(5);
  std::vector<Bdd> funcs;
  std::vector<std::vector<char>> tables;
  for (int i = 0; i < 12; ++i) {
    funcs.push_back(test::randomBdd(mgr, kVars, rng));
    tables.push_back(test::truthTable(funcs.back(), kVars));
  }
  for (unsigned l = 0; l + 1 < kVars; ++l) {
    mgr.swapAdjacentLevels(l);
    mgr.checkInvariants();
  }
  for (std::size_t i = 0; i < funcs.size(); ++i) {
    EXPECT_EQ(test::truthTable(funcs[i], kVars), tables[i]);
  }
  // Order is now rotated: var 0 sank one level per swap.
  EXPECT_EQ(mgr.varLevel(0), kVars - 1);
}

TEST(BddReorder, SwapIsItsOwnInverse) {
  BddManager mgr;
  for (unsigned i = 0; i < 6; ++i) mgr.newVar();
  Rng rng(9);
  const Bdd f = test::randomBdd(mgr, 6, rng, 6);
  const auto table = test::truthTable(f, 6);
  mgr.swapAdjacentLevels(2);
  mgr.swapAdjacentLevels(2);
  EXPECT_EQ(mgr.varLevel(2), 2u);
  EXPECT_EQ(test::truthTable(f, 6), table);
  mgr.checkInvariants();
}

TEST(BddReorder, SwapHandlesComplementedElseArcs) {
  BddManager mgr;
  for (unsigned i = 0; i < 4; ++i) mgr.newVar();
  // xor chains force complemented else arcs at every level.
  const Bdd f = mgr.var(0) ^ mgr.var(1) ^ mgr.var(2) ^ mgr.var(3);
  const auto table = test::truthTable(f, 4);
  for (unsigned l = 0; l + 1 < 4; ++l) {
    mgr.swapAdjacentLevels(l);
    mgr.checkInvariants();
    EXPECT_EQ(test::truthTable(f, 4), table);
  }
}

TEST(BddReorder, SiftShrinksBadComparatorOrder) {
  // a <= b over two vectors allocated in the WORST order (all of a, then all
  // of b) is exponential-ish; sifting must interleave and shrink it.
  BddManager mgr;
  constexpr unsigned kWidth = 6;
  BitVec a;
  BitVec b;
  for (unsigned j = 0; j < kWidth; ++j) a.push(mgr.var(mgr.newVar()));
  for (unsigned j = 0; j < kWidth; ++j) b.push(mgr.var(mgr.newVar()));
  const Bdd le = ule(a, b);
  const auto table = test::truthTable(le, 2 * kWidth);
  mgr.gc();
  const std::uint64_t before = le.size();
  const std::int64_t delta = mgr.sift();
  EXPECT_LT(delta, 0);  // net shrink
  EXPECT_LT(le.size(), before);
  EXPECT_EQ(test::truthTable(le, 2 * kWidth), table);
  mgr.checkInvariants();
}

TEST(BddReorder, SiftOnTrivialManagerIsNoop) {
  BddManager mgr;
  mgr.newVar();
  EXPECT_EQ(mgr.sift(), 0);
}

TEST(BddReorder, GroupedSiftKeepsPairsAdjacent) {
  // Same worst-order comparator, but with each (a_j, b_j) pair registered as
  // a sifting group: the pairs must come out adjacent and in order, the way
  // VarManager's (cur, nxt) state-bit pairs rely on.
  BddManager mgr;
  constexpr unsigned kWidth = 5;
  BitVec a;
  BitVec b;
  for (unsigned j = 0; j < kWidth; ++j) a.push(mgr.var(mgr.newVar()));
  for (unsigned j = 0; j < kWidth; ++j) b.push(mgr.var(mgr.newVar()));
  for (unsigned j = 0; j < kWidth; ++j) {
    const std::array<unsigned, 2> pair{a.bit(j).topVar(), b.bit(j).topVar()};
    mgr.groupVars(pair);
    EXPECT_EQ(mgr.varGroupOf(pair[0]), mgr.varGroupOf(pair[1]));
  }
  const Bdd le = ule(a, b);
  const auto table = test::truthTable(le, 2 * kWidth);
  mgr.gc();
  const std::uint64_t before = le.size();
  EXPECT_LT(mgr.sift(), 0);
  EXPECT_LT(le.size(), before);
  EXPECT_EQ(test::truthTable(le, 2 * kWidth), table);
  for (unsigned j = 0; j < kWidth; ++j) {
    EXPECT_EQ(mgr.varLevel(a.bit(j).topVar()) + 1,
              mgr.varLevel(b.bit(j).topVar()))
        << "pair " << j << " split by sift";
  }
  mgr.checkInvariants();
}

TEST(BddReorder, GroupVarsRejectsBadIndex) {
  BddManager mgr;
  mgr.newVar();
  const std::array<unsigned, 2> bad{0, 7};
  EXPECT_THROW(mgr.groupVars(bad), BddUsageError);
  EXPECT_EQ(mgr.varGroupOf(0), BddManager::kNoGroup);
}

TEST(BddReorder, SiftIncrementalCountMatchesMarkPass) {
  // Under kFull, every swap cross-checks the sift's incremental live count
  // against a fresh liveNodes() mark pass (auditReorderBook); a clean sift
  // here means the bookkeeping agreed at every one of the O(n^2) steps.
  const CheckLevel saved = checkLevel();
  setCheckLevel(CheckLevel::kFull);
  BddManager mgr;
  BitVec a;
  BitVec b;
  for (unsigned j = 0; j < 5; ++j) a.push(mgr.var(mgr.newVar()));
  for (unsigned j = 0; j < 5; ++j) b.push(mgr.var(mgr.newVar()));
  const Bdd le = ule(a, b);
  const Bdd sum = (a.bit(0) ^ b.bit(4)) & le;
  EXPECT_NO_THROW(mgr.sift());
  setCheckLevel(saved);
  mgr.checkInvariants();
}

TEST(BddReorder, InterruptedSiftLeavesManagerAuditClean) {
  BddManager mgr;
  BitVec a;
  BitVec b;
  for (unsigned j = 0; j < 6; ++j) a.push(mgr.var(mgr.newVar()));
  for (unsigned j = 0; j < 6; ++j) b.push(mgr.var(mgr.newVar()));
  const Bdd le = ule(a, b);
  const auto table = test::truthTable(le, 12);
  mgr.gc();
  // Any swap that allocates pushes past this cap, so the per-swap limit
  // check fires almost immediately -- mid-sift, between two swaps.
  ResourceLimits limits;
  limits.maxNodes = mgr.allocatedNodes();
  mgr.setLimits(limits);
  EXPECT_THROW(mgr.sift(), ResourceLimitError);
  mgr.clearLimits();
  EXPECT_EQ(mgr.stats().reorderInterrupted, 1u);
  // The manager must be audit-clean and fully usable: the interrupt landed
  // at a consistent state, with only collectable dead nodes left behind.
  mgr.checkInvariants();
  mgr.gc();
  mgr.checkInvariants();
  EXPECT_EQ(test::truthTable(le, 12), table);
}

TEST(BddReorder, AutoReorderFiresOnGrowthAndIsIdentityWhenOff) {
  BddOptions on;
  on.autoReorder = true;
  on.reorderTrigger = 1.2;
  on.reorderMinLiveNodes = 1;
  BddManager mgr(on);
  BitVec a;
  BitVec b;
  for (unsigned j = 0; j < 6; ++j) a.push(mgr.var(mgr.newVar()));
  for (unsigned j = 0; j < 6; ++j) b.push(mgr.var(mgr.newVar()));
  // First safe point records the baseline; nothing to do yet.
  EXPECT_FALSE(mgr.autoReorderIfNeeded());
  const Bdd le = ule(a, b);  // worst-order: plenty of growth past 1.2x
  const auto table = test::truthTable(le, 12);
  EXPECT_TRUE(mgr.autoReorderIfNeeded());
  EXPECT_EQ(mgr.stats().reorderRuns, 1u);
  EXPECT_GT(mgr.stats().reorderSavedNodes, 0u);
  EXPECT_EQ(test::truthTable(le, 12), table);
  mgr.checkInvariants();

  BddManager off;  // default options: the paper's fixed-order regime
  BitVec c;
  BitVec d;
  for (unsigned j = 0; j < 6; ++j) c.push(off.var(off.newVar()));
  for (unsigned j = 0; j < 6; ++j) d.push(off.var(off.newVar()));
  const Bdd le2 = ule(c, d);
  EXPECT_FALSE(off.autoReorderIfNeeded());
  EXPECT_EQ(off.stats().reorderRuns, 0u);
  EXPECT_EQ(off.stats().reorderSwaps, 0u);
  for (unsigned v = 0; v < off.varCount(); ++v) {
    EXPECT_EQ(off.varLevel(v), v);  // order untouched
  }
}

}  // namespace
}  // namespace icb
