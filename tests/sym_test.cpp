// Symbolic layer plumbing: variable manager cubes and naming, the shared
// clustered relational product, and FSM step/describe helpers.
#include <gtest/gtest.h>

#include "sym/bitvector.hpp"
#include "sym/image.hpp"
#include "test_util.hpp"

namespace icb {
namespace {

TEST(VarManager, StateBitsAllocateAdjacentPairs) {
  BddManager mgr;
  VarManager vars(mgr);
  const unsigned a = vars.addStateBit("a");
  const unsigned b = vars.addStateBit("b");
  EXPECT_EQ(vars.stateBit(a).nxt, vars.stateBit(a).cur + 1);
  EXPECT_EQ(vars.stateBit(b).cur, vars.stateBit(a).nxt + 1);
  EXPECT_EQ(mgr.varName(vars.stateBit(a).cur), "a");
  EXPECT_EQ(mgr.varName(vars.stateBit(a).nxt), "a'");
  EXPECT_EQ(vars.stateBitCount(), 2u);
}

TEST(VarManager, CubesCoverExactlyTheirVariables) {
  BddManager mgr;
  VarManager vars(mgr);
  vars.addInputBit("i0");
  vars.addStateBit("s0");
  vars.addInputBit("i1");
  vars.addStateBit("s1");

  const auto supportOf = [](const Bdd& f) { return f.support(); };
  std::vector<unsigned> inputSupport = supportOf(vars.inputCube());
  std::vector<unsigned> curSupport = supportOf(vars.curCube());
  std::vector<unsigned> nxtSupport = supportOf(vars.nxtCube());

  EXPECT_EQ(inputSupport.size(), 2u);
  EXPECT_EQ(curSupport.size(), 2u);
  EXPECT_EQ(nxtSupport.size(), 2u);
  // The three cubes are disjoint and cover all variables.
  std::vector<unsigned> all;
  all.insert(all.end(), inputSupport.begin(), inputSupport.end());
  all.insert(all.end(), curSupport.begin(), curSupport.end());
  all.insert(all.end(), nxtSupport.begin(), nxtSupport.end());
  std::sort(all.begin(), all.end());
  EXPECT_EQ(all, (std::vector<unsigned>{0, 1, 2, 3, 4, 5}));
}

TEST(ClusteredProduct, MatchesMonolithicConjunction) {
  BddManager mgr;
  constexpr unsigned kVars = 10;
  for (unsigned i = 0; i < kVars; ++i) mgr.newVar();
  Rng rng(3);
  for (int round = 0; round < 10; ++round) {
    const Bdd base = test::randomBdd(mgr, kVars, rng, 3);
    std::vector<Bdd> conjuncts;
    Bdd all = base;
    for (int i = 0; i < 5; ++i) {
      conjuncts.push_back(test::randomBdd(mgr, kVars, rng, 3));
      all &= conjuncts.back();
    }
    std::vector<unsigned> qs;
    for (unsigned v = 0; v < kVars; v += 2) qs.push_back(v);
    const Bdd expected = all.exists(Bdd(&mgr, mgr.cubeE(qs)));
    // Tiny cluster cap (every conjunct its own cluster) and a huge one
    // (single cluster) must both agree with the monolithic computation.
    EXPECT_EQ(clusteredExistsProduct(mgr, base, conjuncts, qs, 1), expected);
    EXPECT_EQ(clusteredExistsProduct(mgr, base, conjuncts, qs, 1u << 30),
              expected);
  }
}

TEST(ClusteredProduct, EmptyConjunctsQuantifiesBaseOnly) {
  BddManager mgr;
  for (unsigned i = 0; i < 4; ++i) mgr.newVar();
  const Bdd base = mgr.var(0) & mgr.var(1);
  const std::vector<unsigned> qs{1};
  EXPECT_EQ(clusteredExistsProduct(mgr, base, {}, qs, 100), mgr.var(0));
}

TEST(FsmStep, AgreesWithNextFunctionEvaluation) {
  BddManager mgr;
  Fsm fsm(mgr);
  VarManager& vars = fsm.vars();
  const unsigned in = vars.addInputBit("in");
  const unsigned s0 = vars.addStateBit("s0");
  const unsigned s1 = vars.addStateBit("s1");
  fsm.setNext(s0, vars.cur(s0) ^ vars.input(in));
  fsm.setNext(s1, vars.cur(s0) & vars.cur(s1));
  fsm.setInit(mgr.one());
  fsm.addInvariant(mgr.one());

  std::vector<char> values(mgr.varCount(), 0);
  values[vars.stateBit(s0).cur] = 1;
  values[vars.stateBit(s1).cur] = 1;
  values[vars.inputVars()[0]] = 1;
  const std::vector<char> next = fsm.step(values);
  EXPECT_EQ(next[vars.stateBit(s0).cur], 0);  // 1 ^ 1
  EXPECT_EQ(next[vars.stateBit(s1).cur], 1);  // 1 & 1
  // Inputs and nxt positions are zeroed in the result.
  EXPECT_EQ(next[vars.inputVars()[0]], 0);
}

TEST(FsmDescribe, DefaultPrinterListsBits) {
  BddManager mgr;
  Fsm fsm(mgr);
  fsm.vars().addStateBit("alpha");
  fsm.vars().addStateBit("beta");
  std::vector<char> values(mgr.varCount(), 0);
  values[fsm.vars().stateBit(0).cur] = 1;
  const std::string s = fsm.describeState(values);
  EXPECT_NE(s.find("alpha=1"), std::string::npos);
  EXPECT_NE(s.find("beta=0"), std::string::npos);
}

TEST(ImageComputer, ClusterCapControlsClusterCount) {
  BddManager mgr;
  Fsm fsm(mgr);
  VarManager& vars = fsm.vars();
  const unsigned in = vars.addInputBit("in");
  BitVec v;
  for (unsigned j = 0; j < 6; ++j) {
    v.push(vars.cur(vars.addStateBit("b" + std::to_string(j))));
  }
  const BitVec next = mux(vars.input(in), incTrunc(v), v);
  for (unsigned j = 0; j < 6; ++j) fsm.setNext(j, next.bit(j));
  fsm.setInit(eqConst(v, 0));
  fsm.addInvariant(mgr.one());

  ImageOptions fine;
  fine.clusterCap = 1;
  ImageOptions coarse;
  coarse.clusterCap = 1u << 20;
  ImageComputer a(fsm, fine);
  ImageComputer b(fsm, coarse);
  EXPECT_GT(a.clusterCount(), b.clusterCount());
  EXPECT_EQ(b.clusterCount(), 1u);
  // Both compute the same image of the initial states.
  EXPECT_EQ(a.image(fsm.init()), b.image(fsm.init()));
}

}  // namespace
}  // namespace icb
