// Mutation tests for the invariant-checker subsystem (src/check/).
//
// Each negative test breaks exactly one invariant class through the
// test-only surgeon hooks and asserts the matching ViolationKind is
// reported.  Positive tests pin down that clean structures audit clean,
// so the checkers cannot rot into always-firing (or never-firing) noise.
#include <gtest/gtest.h>

#include "bdd/bdd.hpp"
#include "check/cache_auditor.hpp"
#include "check/check.hpp"
#include "check/ici_checker.hpp"
#include "check/structural_checker.hpp"
#include "check/test_hooks.hpp"
#include "ici/conjunct_list.hpp"
#include "ici/pair_table.hpp"

namespace icb {
namespace {

/// Restores the process check level on scope exit so tests that lower it
/// cannot weaken an ICBDD_CHECK_LEVEL=full suite run for later tests.
class CheckLevelGuard {
 public:
  CheckLevelGuard() : saved_(checkLevel()) {}
  ~CheckLevelGuard() { setCheckLevel(saved_); }

 private:
  CheckLevel saved_;
};

/// A manager with two conjoined variables and one node freed by GC, which
/// is the minimal arena exercising every structural-checker branch.
struct Patient {
  BddManager mgr;
  unsigned a = 0;
  unsigned b = 0;
  unsigned c = 0;
  Bdd f;                      // a & b, kept live
  std::uint32_t fIndex = 0;   // arena index of f's top node
  std::uint32_t freeIndex = 0;  // some GC-freed slot (0 when none found)

  Patient() {
    a = mgr.newVar("a");
    b = mgr.newVar("b");
    c = mgr.newVar("c");
    {
      const Bdd garbage = mgr.var(a) ^ mgr.var(c);
      (void)garbage;
    }
    f = mgr.var(a) & mgr.var(b);
    fIndex = edgeIndex(f.edge());
    mgr.gc();  // frees the xor node, leaving a hole in the arena
    for (std::uint32_t i = 1; i < NodeSurgeon::nodeCount(mgr); ++i) {
      if (NodeSurgeon::isFree(mgr, i)) {
        freeIndex = i;
        break;
      }
    }
  }
};

bool reports(const BddManager& mgr, ViolationKind kind) {
  return StructuralChecker(mgr).run(CheckLevel::kFull).has(kind);
}

// ---------------------------------------------------------------------------
// positive: clean structures audit clean

TEST(CheckClean, FullStructuralAuditPassesOnWorkingManager) {
  BddManager mgr;
  std::vector<Bdd> vars;
  for (unsigned i = 0; i < 8; ++i) vars.push_back(mgr.var(mgr.newVar()));
  Bdd f = mgr.one();
  for (unsigned i = 0; i < 8; ++i) f = (f & vars[i]) ^ vars[(i + 3) % 8];
  mgr.gc();
  const CheckReport report = StructuralChecker(mgr).run(CheckLevel::kFull);
  EXPECT_TRUE(report.ok()) << report.summary();
  EXPECT_GT(report.itemsChecked, 0u);
  EXPECT_NO_THROW(mgr.checkInvariants());
}

TEST(CheckClean, CacheAuditPassesOnWorkingManager) {
  Patient p;
  const Bdd more = (p.mgr.var(p.a) | p.mgr.var(p.c)) ^ p.f;
  (void)more;
  const CheckReport report = CacheAuditor(p.mgr).audit();
  EXPECT_TRUE(report.ok()) << report.summary();
  EXPECT_GT(report.itemsChecked, 0u);
}

TEST(CheckClean, IciAuditsPassOnHonestListAndTable) {
  Patient p;
  const ConjunctList list(&p.mgr, {p.f, p.mgr.var(p.c)});
  const IciChecker checker(p.mgr);
  EXPECT_TRUE(checker.checkDenotationPreserved(list, list).ok());

  PairTable table(p.mgr, {p.mgr.var(p.a), p.mgr.var(p.b), p.mgr.var(p.c)});
  const CheckReport report = checker.checkPairTable(table);
  EXPECT_TRUE(report.ok()) << report.summary();
  table.merge(0, 1);
  EXPECT_TRUE(checker.checkPairTable(table).ok());
}

// ---------------------------------------------------------------------------
// level plumbing

TEST(CheckLevelPlumbing, ParseAcceptsNamesAndDigits) {
  CheckLevel level = CheckLevel::kOff;
  EXPECT_TRUE(parseCheckLevel("full", &level));
  EXPECT_EQ(level, CheckLevel::kFull);
  EXPECT_TRUE(parseCheckLevel("CHEAP", &level));
  EXPECT_EQ(level, CheckLevel::kCheap);
  EXPECT_TRUE(parseCheckLevel("0", &level));
  EXPECT_EQ(level, CheckLevel::kOff);
  EXPECT_FALSE(parseCheckLevel("paranoid", &level));
  EXPECT_EQ(level, CheckLevel::kOff);  // untouched on failure
}

TEST(CheckLevelPlumbing, SetCheckLevelIsObservedByTheMacro) {
  CheckLevelGuard guard;
  setCheckLevel(CheckLevel::kOff);
  int fired = 0;
  ICBDD_CHECK(kCheap, ++fired);
  EXPECT_EQ(fired, 0);
  setCheckLevel(CheckLevel::kCheap);
  ICBDD_CHECK(kCheap, ++fired);
  ICBDD_CHECK(kFull, ++fired);  // cheap level must not run full checks
  EXPECT_EQ(fired, 1);
  setCheckLevel(CheckLevel::kFull);
  ICBDD_CHECK(kFull, ++fired);
  EXPECT_EQ(fired, 2);
}

TEST(CheckLevelPlumbing, CheapEffortSkipsTheArenaWalk) {
  Patient p;
  NodeSurgeon::complementThenArc(p.mgr, p.fIndex);
  // Node-level corruption is invisible to the O(roots + free list) tier...
  EXPECT_TRUE(StructuralChecker(p.mgr).run(CheckLevel::kCheap).ok());
  // ...and loud at full effort.
  EXPECT_TRUE(reports(p.mgr, ViolationKind::kComplementedThenArc));
}

// ---------------------------------------------------------------------------
// mutations: node arena / canonical form

TEST(CheckMutation, ComplementedThenArcIsReported) {
  Patient p;
  NodeSurgeon::complementThenArc(p.mgr, p.fIndex);
  EXPECT_TRUE(reports(p.mgr, ViolationKind::kComplementedThenArc));
}

TEST(CheckMutation, RedundantNodeIsReported) {
  Patient p;
  NodeSurgeon::setNodeFields(p.mgr, p.fIndex, NodeSurgeon::rawVar(p.mgr, p.fIndex),
                             NodeSurgeon::rawLo(p.mgr, p.fIndex),
                             NodeSurgeon::rawLo(p.mgr, p.fIndex));
  EXPECT_TRUE(reports(p.mgr, ViolationKind::kRedundantNode));
}

TEST(CheckMutation, OrderViolationIsReported) {
  Patient p;
  // f's node tests `a` (level 0) and its then-arc reaches the projection of
  // `b` (level 1).  Relabelling the node with `b` puts the child at the same
  // level as its parent: the order is no longer strictly decreasing.
  NodeSurgeon::setNodeFields(p.mgr, p.fIndex, p.b,
                             NodeSurgeon::rawHi(p.mgr, p.fIndex),
                             NodeSurgeon::rawLo(p.mgr, p.fIndex));
  EXPECT_TRUE(reports(p.mgr, ViolationKind::kOrderViolation));
}

TEST(CheckMutation, DanglingChildIsReported) {
  Patient p;
  ASSERT_NE(p.freeIndex, 0u) << "fixture failed to produce a freed slot";
  NodeSurgeon::setNodeFields(p.mgr, p.fIndex, NodeSurgeon::rawVar(p.mgr, p.fIndex),
                             makeEdge(p.freeIndex, false),
                             NodeSurgeon::rawLo(p.mgr, p.fIndex));
  EXPECT_TRUE(reports(p.mgr, ViolationKind::kDanglingChild));
}

TEST(CheckMutation, ChildOutsideTheArenaIsReported) {
  Patient p;
  NodeSurgeon::setNodeFields(p.mgr, p.fIndex, NodeSurgeon::rawVar(p.mgr, p.fIndex),
                             makeEdge(NodeSurgeon::nodeCount(p.mgr) + 7, false),
                             NodeSurgeon::rawLo(p.mgr, p.fIndex));
  EXPECT_TRUE(reports(p.mgr, ViolationKind::kInvalidEdge));
}

TEST(CheckMutation, DuplicateNodeIsReported) {
  Patient p;
  const Bdd g = p.mgr.var(p.a) ^ p.mgr.var(p.b);
  const std::uint32_t gIndex = edgeIndex(g.edge());
  ASSERT_NE(gIndex, p.fIndex);
  NodeSurgeon::setNodeFields(p.mgr, gIndex, NodeSurgeon::rawVar(p.mgr, p.fIndex),
                             NodeSurgeon::rawHi(p.mgr, p.fIndex),
                             NodeSurgeon::rawLo(p.mgr, p.fIndex));
  EXPECT_TRUE(reports(p.mgr, ViolationKind::kDuplicateNode));
}

// ---------------------------------------------------------------------------
// mutations: unique table / free list / roots

TEST(CheckMutation, UniqueTableMissIsReported) {
  Patient p;
  ASSERT_TRUE(NodeSurgeon::detachFromUniqueTable(p.mgr, p.fIndex));
  EXPECT_TRUE(reports(p.mgr, ViolationKind::kUniqueTableMiss));
}

TEST(CheckMutation, FreeListCounterDriftIsReportedEvenAtCheapEffort) {
  Patient p;
  NodeSurgeon::bumpFreeCount(p.mgr, 5);
  // The free-list sweep is part of the cheap tier.
  EXPECT_TRUE(
      StructuralChecker(p.mgr).run(CheckLevel::kCheap).has(
          ViolationKind::kFreeListCorrupt));
}

TEST(CheckMutation, StaleRefOnFreedNodeIsReported) {
  Patient p;
  ASSERT_NE(p.freeIndex, 0u) << "fixture failed to produce a freed slot";
  NodeSurgeon::setRef(p.mgr, p.freeIndex, 3);
  EXPECT_TRUE(reports(p.mgr, ViolationKind::kStaleRefOnFreeNode));
}

TEST(CheckMutation, CorruptProjectionEdgeIsReported) {
  Patient p;
  NodeSurgeon::setVarEdge(p.mgr, p.b, kTrueEdge);
  EXPECT_TRUE(reports(p.mgr, ViolationKind::kVarEdgeCorrupt));
}

TEST(CheckMutation, CheckInvariantsStillThrowsBddUsageError) {
  // The pre-existing public entry point must keep its documented contract
  // after delegating to the new checker.
  Patient p;
  NodeSurgeon::complementThenArc(p.mgr, p.fIndex);
  EXPECT_THROW(p.mgr.checkInvariants(), BddUsageError);
}

TEST(CheckMutation, ThrowIfBrokenCarriesTheViolationKind) {
  Patient p;
  NodeSurgeon::bumpFreeCount(p.mgr, 1);
  try {
    StructuralChecker(p.mgr).throwIfBroken();
    FAIL() << "expected CheckFailure";
  } catch (const CheckFailure& e) {
    EXPECT_EQ(e.kind(), ViolationKind::kFreeListCorrupt);
    EXPECT_NE(std::string(e.what()).find("free-list-corrupt"),
              std::string::npos);
  }
}

// ---------------------------------------------------------------------------
// mutations: computed cache

TEST(CheckMutation, FlippedCacheResultIsCaughtByReExecution) {
  Patient p;
  // The fixture's gc() flushed the computed cache; repopulate it so there
  // is an entry to corrupt.
  const Bdd g = p.f ^ p.mgr.var(p.c);
  (void)g;
  ASSERT_TRUE(NodeSurgeon::corruptFirstCacheEntry(p.mgr));
  const CheckReport report = CacheAuditor(p.mgr).audit();
  EXPECT_TRUE(report.has(ViolationKind::kCacheWrongResult))
      << report.summary();
}

TEST(CheckMutation, DanglingCacheOperandIsReported) {
  Patient p;
  NodeSurgeon::plantDanglingCacheEntry(p.mgr);
  const CheckReport report = CacheAuditor(p.mgr).audit();
  EXPECT_TRUE(report.has(ViolationKind::kCacheDanglingEdge))
      << report.summary();
}

// ---------------------------------------------------------------------------
// mutations: ICI layer

TEST(CheckMutation, ChangedDenotationIsCaughtExactly) {
  Patient p;
  const ConjunctList before(&p.mgr, {p.f, p.mgr.var(p.c)});
  const ConjunctList after(&p.mgr, {p.f, !p.mgr.var(p.c)});
  const CheckReport report =
      IciChecker(p.mgr).checkDenotationPreserved(before, after);
  EXPECT_TRUE(report.has(ViolationKind::kDenotationChanged))
      << report.summary();
}

TEST(CheckMutation, ChangedDenotationIsCaughtBySampling) {
  Patient p;
  IciCheckOptions options;
  options.exactNodeLimit = 0;  // force the spot-check path
  const ConjunctList before(&p.mgr, {p.f, p.mgr.var(p.c)});
  const ConjunctList after(&p.mgr, {p.f, !p.mgr.var(p.c)});
  const CheckReport report =
      IciChecker(p.mgr, options).checkDenotationPreserved(before, after);
  EXPECT_TRUE(report.has(ViolationKind::kDenotationChanged))
      << report.summary();
}

TEST(CheckMutation, PairTableEntryMismatchIsReported) {
  Patient p;
  PairTable table(p.mgr, {p.mgr.var(p.a), p.mgr.var(p.b)});
  PairTableSurgeon::replaceEntry(table, 0, 1, p.mgr.var(p.a));
  EXPECT_TRUE(IciChecker(p.mgr).checkPairTable(table).has(
      ViolationKind::kPairTableMismatch));
}

TEST(CheckMutation, PairTableStaleSizeColumnsAreReported) {
  Patient p;
  PairTable table(p.mgr, {p.mgr.var(p.a), p.mgr.var(p.b)});
  PairTableSurgeon::corruptEntrySize(table, 0, 1, 999);
  EXPECT_TRUE(IciChecker(p.mgr).checkPairTable(table).has(
      ViolationKind::kPairTableStaleSize));

  PairTable table2(p.mgr, {p.mgr.var(p.a), p.mgr.var(p.b)});
  PairTableSurgeon::corruptConjunctSize(table2, 0, 999);
  EXPECT_TRUE(IciChecker(p.mgr).checkPairTable(table2).has(
      ViolationKind::kPairTableStaleSize));
}

TEST(CheckMutation, RefcountSaturatesAtMaxAndPinsForever) {
  // A node whose external count reaches kMaxRef is pinned: further refs
  // are no-ops and derefs neither decrement nor underflow.  The surgeon
  // plants a near-saturated count so the test does not need 2^32 handles.
  constexpr std::uint32_t kMax = NodeStore::kMaxRef;
  Patient p;
  NodeSurgeon::setRef(p.mgr, p.fIndex, kMax - 1);

  {
    const Bdd c1 = p.f;  // ref: kMax-1 -> kMax (the last real increment)
    EXPECT_EQ(NodeSurgeon::refOf(p.mgr, p.fIndex), kMax);
    const Bdd c2 = p.f;  // ref at kMax: saturates, stays kMax
    (void)c2;
    EXPECT_EQ(NodeSurgeon::refOf(p.mgr, p.fIndex), kMax);
  }
  // Both copies released: a pinned count never comes back down, and --
  // the bug class this guards -- never wraps through zero.
  EXPECT_EQ(NodeSurgeon::refOf(p.mgr, p.fIndex), kMax);
  EXPECT_EQ(p.mgr.stats().refUnderflows, 0u);

  // Checked-path deref on the pinned node is also a no-op, not an
  // underflow diagnostic.
  NodeSurgeon::derefEdge(p.mgr, p.f.edge());
  EXPECT_EQ(NodeSurgeon::refOf(p.mgr, p.fIndex), kMax);
  EXPECT_EQ(p.mgr.stats().refUnderflows, 0u);

  // GC sees the pinned node as a root and keeps it.
  p.mgr.gc();
  EXPECT_FALSE(NodeSurgeon::isFree(p.mgr, p.fIndex));
  EXPECT_EQ(NodeSurgeon::refOf(p.mgr, p.fIndex), kMax);
  p.mgr.checkInvariants();
}

}  // namespace
}  // namespace icb
