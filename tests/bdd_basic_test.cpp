// Structural fundamentals: constants, projection functions, canonicity,
// complement edges, handle lifetime, garbage collection, resource limits.
#include <gtest/gtest.h>

#include <atomic>

#include "bdd/bdd.hpp"
#include "test_util.hpp"

namespace icb {
namespace {

TEST(BddBasic, ConstantsAreDistinctAndComplementary) {
  BddManager mgr;
  EXPECT_TRUE(mgr.one().isOne());
  EXPECT_TRUE(mgr.zero().isZero());
  EXPECT_NE(mgr.one(), mgr.zero());
  EXPECT_EQ(!mgr.one(), mgr.zero());
  EXPECT_EQ(!mgr.zero(), mgr.one());
}

TEST(BddBasic, NegationIsConstantTimeInvolution) {
  BddManager mgr;
  mgr.newVar();
  mgr.newVar();
  const Bdd f = mgr.var(0) & !mgr.var(1);
  EXPECT_EQ(!!f, f);
  EXPECT_NE(!f, f);
  // Complement edges: negation allocates no nodes.
  const auto before = mgr.stats().nodesCreated;
  const Bdd g = !f;
  EXPECT_EQ(mgr.stats().nodesCreated, before);
  EXPECT_EQ(g.size(), f.size());
}

TEST(BddBasic, ProjectionFunctions) {
  BddManager mgr;
  mgr.newVar("x");
  mgr.newVar("y");
  const Bdd x = mgr.var(0);
  EXPECT_FALSE(x.isConstant());
  EXPECT_EQ(x.topVar(), 0u);
  EXPECT_TRUE(x.high().isOne());
  EXPECT_TRUE(x.low().isZero());
  EXPECT_EQ(mgr.nvar(0), !x);
}

TEST(BddBasic, CanonicityHashConsing) {
  BddManager mgr;
  mgr.newVar();
  mgr.newVar();
  mgr.newVar();
  // Same function built two different ways must be pointer-identical.
  const Bdd a = (mgr.var(0) & mgr.var(1)) | mgr.var(2);
  const Bdd b = !(((!mgr.var(0)) | (!mgr.var(1))) & (!mgr.var(2)));
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.edge(), b.edge());
}

TEST(BddBasic, DeMorganAndXorIdentities) {
  BddManager mgr;
  mgr.newVar();
  mgr.newVar();
  const Bdd x = mgr.var(0);
  const Bdd y = mgr.var(1);
  EXPECT_EQ(!(x & y), (!x) | (!y));
  EXPECT_EQ(x ^ y, (x & (!y)) | ((!x) & y));
  EXPECT_EQ(x ^ x, mgr.zero());
  EXPECT_EQ(x ^ !x, mgr.one());
  EXPECT_EQ(x.xnor(y), !(x ^ y));
}

TEST(BddBasic, IteAgreesWithDefinition) {
  BddManager mgr;
  mgr.newVar();
  mgr.newVar();
  mgr.newVar();
  const Bdd f = mgr.var(0);
  const Bdd g = mgr.var(1);
  const Bdd h = mgr.var(2);
  EXPECT_EQ(f.ite(g, h), (f & g) | ((!f) & h));
  EXPECT_EQ(f.ite(mgr.one(), mgr.zero()), f);
  EXPECT_EQ(f.ite(mgr.zero(), mgr.one()), !f);
}

TEST(BddBasic, ImplicationAndDisjointness) {
  BddManager mgr;
  mgr.newVar();
  mgr.newVar();
  const Bdd x = mgr.var(0);
  const Bdd y = mgr.var(1);
  EXPECT_TRUE((x & y).implies(x));
  EXPECT_FALSE(x.implies(x & y));
  EXPECT_TRUE(x.disjointFrom(!x));
  EXPECT_FALSE(x.disjointFrom(x | y));
}

TEST(BddBasic, GcKeepsReferencedNodesAndReclaimsGarbage) {
  BddManager mgr;
  for (unsigned i = 0; i < 10; ++i) mgr.newVar();
  Rng rng(7);
  Bdd keep = test::randomBdd(mgr, 10, rng, 6);
  const std::vector<char> table = test::truthTable(keep, 10);
  {
    // Create garbage that dies at scope exit.
    for (int i = 0; i < 50; ++i) {
      const Bdd tmp = test::randomBdd(mgr, 10, rng, 6);
      (void)tmp;
    }
  }
  const std::uint64_t liveBefore = mgr.liveNodes();
  mgr.gc();
  EXPECT_LE(mgr.liveNodes(), liveBefore);
  mgr.checkInvariants();
  // The kept function must be untouched.
  EXPECT_EQ(test::truthTable(keep, 10), table);
  // And still usable in new operations.
  EXPECT_EQ(keep & keep, keep);
}

TEST(BddBasic, GcReclaimsEverythingWhenNothingIsHeld) {
  BddManager mgr;
  for (unsigned i = 0; i < 8; ++i) mgr.newVar();
  const std::uint64_t baseline = mgr.liveNodes();
  Rng rng(9);
  {
    Bdd tmp = test::randomBdd(mgr, 8, rng, 7);
    (void)tmp;
  }
  mgr.gc();
  EXPECT_EQ(mgr.liveNodes(), baseline);
}

TEST(BddBasic, HandleCopyAndMoveSemantics) {
  BddManager mgr;
  mgr.newVar();
  Bdd a = mgr.var(0);
  Bdd b = a;             // copy
  Bdd c = std::move(a);  // move
  EXPECT_TRUE(a.isNull());
  EXPECT_EQ(b, c);
  b = b;  // self-assignment must be safe
  EXPECT_EQ(b, c);
  mgr.gc();
  EXPECT_EQ(b & c, c);
}

TEST(BddBasic, NodeLimitThrowsAndManagerStaysUsable) {
  BddManager mgr;
  for (unsigned i = 0; i < 24; ++i) mgr.newVar();
  ResourceLimits limits;
  limits.maxNodes = 200;
  mgr.setLimits(limits);
  Rng rng(11);
  bool threw = false;
  try {
    Bdd acc = mgr.one();
    for (int i = 0; i < 100 && !threw; ++i) {
      acc &= test::randomBdd(mgr, 24, rng, 6);
    }
  } catch (const ResourceLimitError& e) {
    threw = true;
    EXPECT_EQ(e.kind(), ResourceKind::kNodes);
  }
  EXPECT_TRUE(threw);
  mgr.clearLimits();
  mgr.gc();
  mgr.checkInvariants();
  EXPECT_EQ(mgr.var(0) & mgr.var(1), mgr.var(1) & mgr.var(0));
}

TEST(BddBasic, CancelFlagThrowsCancelledAndManagerStaysUsable) {
  BddManager mgr;
  for (unsigned i = 0; i < 24; ++i) mgr.newVar();
  std::atomic<bool> cancel{false};
  ResourceLimits limits;
  limits.cancelFlag = &cancel;
  mgr.setLimits(limits);
  Rng rng(17);

  // Flag down: work proceeds normally.
  (void)test::randomBdd(mgr, 24, rng, 6);

  cancel.store(true);
  bool threw = false;
  try {
    for (int i = 0; i < 1000 && !threw; ++i) {
      (void)test::randomBdd(mgr, 24, rng, 8);
    }
  } catch (const ResourceLimitError& e) {
    threw = true;
    EXPECT_EQ(e.kind(), ResourceKind::kCancelled);
    EXPECT_NE(std::string(e.what()).find("cancelled"), std::string::npos);
  }
  EXPECT_TRUE(threw);

  // Like the other limit kinds, cancellation leaves the manager reusable.
  cancel.store(false);
  mgr.clearLimits();
  mgr.gc();
  mgr.checkInvariants();
  EXPECT_EQ(mgr.var(0) & mgr.var(1), mgr.var(1) & mgr.var(0));
}

TEST(BddBasic, DeadlineLimitThrows) {
  BddManager mgr;
  for (unsigned i = 0; i < 30; ++i) mgr.newVar();
  ResourceLimits limits;
  limits.deadline = Deadline::afterSeconds(0.0);
  mgr.setLimits(limits);
  Rng rng(13);
  bool threw = false;
  try {
    for (int i = 0; i < 10000 && !threw; ++i) {
      const Bdd f = test::randomBdd(mgr, 30, rng, 8);
      (void)f;
    }
  } catch (const ResourceLimitError& e) {
    threw = true;
    EXPECT_EQ(e.kind(), ResourceKind::kTime);
  }
  EXPECT_TRUE(threw);
}

TEST(BddBasic, MixedManagerOperandsRejected) {
  BddManager m1;
  BddManager m2;
  m1.newVar();
  m2.newVar();
  EXPECT_THROW((void)(m1.var(0) & m2.var(0)), BddUsageError);
}

TEST(BddBasic, CheckInvariantsOnRandomWorkload) {
  BddManager mgr;
  for (unsigned i = 0; i < 12; ++i) mgr.newVar();
  Rng rng(17);
  std::vector<Bdd> keep;
  for (int i = 0; i < 40; ++i) {
    keep.push_back(test::randomBdd(mgr, 12, rng, 6));
    if (i % 10 == 9) {
      mgr.gc();
      mgr.checkInvariants();
    }
  }
  mgr.checkInvariants();
}

}  // namespace
}  // namespace icb
