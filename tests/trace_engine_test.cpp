// Engine-level tracing: running a model with EngineOptions::traceSink must
// produce a well-formed JSONL stream whose span structure matches the
// engine's phase order, and the EngineResult must carry a populated metrics
// snapshot.  The mutex ring at 3 stations is the reference workload -- small
// enough to converge in a handful of iterations, rich enough to exercise the
// ICI policy and termination paths.
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "models/mutex_ring.hpp"
#include "obs/jsonl.hpp"
#include "obs/trace.hpp"
#include "verif/run_all.hpp"

namespace icb {
namespace {

using obs::JsonValue;

struct TracedRun {
  EngineResult result;
  std::vector<JsonValue> events;
};

TracedRun runTraced(Method method) {
  BddManager mgr;
  MutexRingModel model(mgr, MutexRingConfig{3, false});

  std::ostringstream out;
  obs::TraceSink sink(out);
  EngineOptions options;
  options.traceSink = &sink;

  TracedRun run;
  run.result = runMethod(model.fsm(), method, model.fdCandidates(), options);

  std::istringstream in(out.str());
  run.events = obs::parseJsonLines(in);
  return run;
}

std::string_view eventName(const JsonValue& ev) {
  const JsonValue* name = ev.find("ev");
  return name != nullptr ? name->textOr("") : "";
}

/// Every phase_begin must be closed by a phase_end with the same phase and
/// iteration before the next span of the same engine opens; iterations are
/// 1-based and non-decreasing.  Returns the number of matched spans.
std::size_t checkSpanNesting(const std::vector<JsonValue>& events,
                             std::string_view expectedPhase) {
  struct Open {
    std::string phase;
    std::uint64_t iter;
  };
  std::vector<Open> stack;
  std::size_t matched = 0;
  std::uint64_t lastIter = 0;

  for (const JsonValue& ev : events) {
    const std::string_view name = eventName(ev);
    if (name == "phase_begin") {
      const std::string phase(ev.find("phase")->textOr("?"));
      const auto iter =
          static_cast<std::uint64_t>(ev.find("iter")->numberOr(0));
      EXPECT_EQ(phase, expectedPhase);
      EXPECT_GE(iter, 1u) << "iterations are 1-based";
      EXPECT_GE(iter, lastIter) << "iteration numbers must not go backwards";
      lastIter = iter;
      stack.push_back(Open{phase, iter});
    } else if (name == "phase_end") {
      EXPECT_FALSE(stack.empty()) << "phase_end without matching phase_begin";
      if (stack.empty()) continue;
      EXPECT_EQ(std::string(ev.find("phase")->textOr("?")), stack.back().phase);
      EXPECT_EQ(static_cast<std::uint64_t>(ev.find("iter")->numberOr(0)),
                stack.back().iter);
      EXPECT_GE(ev.find("wall_s")->numberOr(-1.0), 0.0);
      stack.pop_back();
      ++matched;
    }
  }
  EXPECT_TRUE(stack.empty()) << stack.size() << " span(s) left open";
  return matched;
}

TEST(TraceEngine, XiciMutexRingSpansMatchPhaseOrder) {
  const TracedRun run = runTraced(Method::kXici);
  ASSERT_EQ(run.result.verdict, Verdict::kHolds);
  ASSERT_GE(run.events.size(), 4u);

  // The stream is bracketed by run_begin / run_end.
  EXPECT_EQ(eventName(run.events.front()), "run_begin");
  EXPECT_EQ(run.events.front().find("method")->textOr(""), "XICI");
  EXPECT_EQ(eventName(run.events.back()), "run_end");
  EXPECT_EQ(run.events.back().find("verdict")->textOr(""), "holds");
  EXPECT_DOUBLE_EQ(run.events.back().find("iterations")->numberOr(-1),
                   static_cast<double>(run.result.iterations));

  // One back_image span per engine iteration, properly nested.
  const std::size_t spans = checkSpanNesting(run.events, "back_image");
  EXPECT_EQ(spans, run.result.iterations);

  // Every closed span reports the implicit-conjunction members it ended with.
  std::size_t policyEvents = 0;
  std::size_t terminationEvents = 0;
  for (const JsonValue& ev : run.events) {
    if (eventName(ev) == "phase_end") {
      const JsonValue* sizes = ev.find("conjunct_sizes");
      ASSERT_NE(sizes, nullptr);
      EXPECT_FALSE(sizes->items.empty());
      std::uint64_t total = 0;
      for (const JsonValue& s : sizes->items) {
        total += static_cast<std::uint64_t>(s.numberOr(0));
      }
      EXPECT_DOUBLE_EQ(ev.find("iterate_nodes")->numberOr(-1),
                       static_cast<double>(total));
    } else if (eventName(ev) == "policy") {
      ++policyEvents;
    } else if (eventName(ev) == "termination") {
      ++terminationEvents;
    }
  }
  // The XICI engine evaluates the merge policy on the initial list and once
  // per iteration, and runs the paper's termination test once per iteration.
  EXPECT_EQ(policyEvents, run.result.iterations + 1u);
  EXPECT_EQ(terminationEvents, run.result.iterations);

  // The run's metrics snapshot is populated alongside the trace.
  EXPECT_FALSE(run.result.metrics.empty());
  EXPECT_GT(run.result.metrics.counter("bdd.nodes_created"), 0u);
  EXPECT_GT(run.result.metrics.counter("bdd.cache.lookups"), 0u);
  EXPECT_GT(run.result.metrics.counter("ici.pair_table.entries_built"), 0u);
  EXPECT_GT(run.result.metrics.counter("ici.policy.merges_accepted"), 0u);
}

TEST(TraceEngine, ForwardMutexRingUsesImagePhase) {
  const TracedRun run = runTraced(Method::kFwd);
  ASSERT_EQ(run.result.verdict, Verdict::kHolds);
  EXPECT_EQ(run.events.front().find("method")->textOr(""), "Fwd");
  const std::size_t spans = checkSpanNesting(run.events, "image");
  EXPECT_EQ(spans, run.result.iterations);
  EXPECT_GT(run.result.metrics.counter("bdd.nodes_created"), 0u);
}

TEST(TraceEngine, AllMethodsTraceCleanlyAndAgree) {
  for (const Method method : allMethods()) {
    const TracedRun run = runTraced(method);
    EXPECT_EQ(run.result.verdict, Verdict::kHolds)
        << "method " << methodName(method);
    ASSERT_GE(run.events.size(), 2u) << "method " << methodName(method);
    EXPECT_EQ(eventName(run.events.front()), "run_begin");
    EXPECT_EQ(eventName(run.events.back()), "run_end");
    EXPECT_EQ(run.events.front().find("method")->textOr(""),
              methodName(method));
    EXPECT_FALSE(run.result.metrics.empty())
        << "method " << methodName(method);
  }
}

}  // namespace
}  // namespace icb
