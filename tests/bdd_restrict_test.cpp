// The care-set simplifiers at the heart of the paper: Restrict and
// Constrain contracts, shrinking behaviour, and Theorem 3
// ("a | b is a tautology iff Restrict(a, !b) is a tautology").
#include <gtest/gtest.h>

#include "bdd/bdd.hpp"
#include "test_util.hpp"

namespace icb {
namespace {

struct RestrictParam {
  unsigned nvars;
  std::uint64_t seed;
};

class RestrictSweep : public ::testing::TestWithParam<RestrictParam> {};

TEST_P(RestrictSweep, RestrictContract) {
  const auto [nvars, seed] = GetParam();
  BddManager mgr;
  for (unsigned i = 0; i < nvars; ++i) mgr.newVar();
  Rng rng(seed);
  for (int round = 0; round < 20; ++round) {
    const Bdd f = test::randomBdd(mgr, nvars, rng);
    const Bdd c = test::randomBdd(mgr, nvars, rng);
    if (c.isZero()) continue;  // vacuous contract
    const Bdd r = f.restrictBy(c);
    // The defining property: agreement wherever the care set holds.
    EXPECT_EQ(r & c, f & c);
  }
}

TEST_P(RestrictSweep, ConstrainContract) {
  const auto [nvars, seed] = GetParam();
  BddManager mgr;
  for (unsigned i = 0; i < nvars; ++i) mgr.newVar();
  Rng rng(seed * 3 + 11);
  for (int round = 0; round < 20; ++round) {
    const Bdd f = test::randomBdd(mgr, nvars, rng);
    const Bdd c = test::randomBdd(mgr, nvars, rng);
    if (c.isZero()) continue;
    const Bdd r = f.constrainBy(c);
    EXPECT_EQ(r & c, f & c);
  }
}

TEST_P(RestrictSweep, Theorem3RestrictTautology) {
  // Theorem 3: for any a, b: (a | b) == TRUE iff Restrict(a, !b) == TRUE.
  const auto [nvars, seed] = GetParam();
  BddManager mgr;
  for (unsigned i = 0; i < nvars; ++i) mgr.newVar();
  Rng rng(seed * 7 + 23);
  int tautologies = 0;
  for (int round = 0; round < 60; ++round) {
    Bdd a = test::randomBdd(mgr, nvars, rng);
    Bdd b = test::randomBdd(mgr, nvars, rng);
    if (round % 3 == 0) b = (!a) | b;  // bias toward actual tautologies
    if ((!b).isZero()) continue;     // Restrict(a, FALSE) is unconstrained
    const bool disjTaut = (a | b).isOne();
    tautologies += disjTaut ? 1 : 0;
    EXPECT_EQ(a.restrictBy(!b).isOne(), disjTaut);
  }
  EXPECT_GT(tautologies, 0);  // the sweep exercised the interesting side
}

TEST_P(RestrictSweep, Theorem3ConstrainTautology) {
  const auto [nvars, seed] = GetParam();
  BddManager mgr;
  for (unsigned i = 0; i < nvars; ++i) mgr.newVar();
  Rng rng(seed * 9 + 41);
  for (int round = 0; round < 60; ++round) {
    Bdd a = test::randomBdd(mgr, nvars, rng);
    Bdd b = test::randomBdd(mgr, nvars, rng);
    if (round % 3 == 0) b = (!a) | b;
    if ((!b).isZero()) continue;
    EXPECT_EQ(a.constrainBy(!b).isOne(), (a | b).isOne());
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, RestrictSweep,
    ::testing::Values(RestrictParam{3, 1}, RestrictParam{4, 2},
                      RestrictParam{5, 3}, RestrictParam{6, 4},
                      RestrictParam{7, 5}, RestrictParam{8, 6}),
    [](const ::testing::TestParamInfo<RestrictParam>& paramInfo) {
      return "v" + std::to_string(paramInfo.param.nvars) + "s" +
             std::to_string(paramInfo.param.seed);
    });

TEST(BddRestrict, TrueCareSetIsIdentity) {
  BddManager mgr;
  for (unsigned i = 0; i < 4; ++i) mgr.newVar();
  Rng rng(5);
  const Bdd f = test::randomBdd(mgr, 4, rng);
  EXPECT_EQ(f.restrictBy(mgr.one()), f);
  EXPECT_EQ(f.constrainBy(mgr.one()), f);
}

TEST(BddRestrict, RestrictByItselfIsTrue) {
  BddManager mgr;
  for (unsigned i = 0; i < 4; ++i) mgr.newVar();
  const Bdd f = mgr.var(0) ^ mgr.var(2);
  EXPECT_TRUE(f.restrictBy(f).isOne());
  EXPECT_TRUE(f.constrainBy(f).isOne());
  EXPECT_TRUE(f.restrictBy(!f).isZero());
}

TEST(BddRestrict, RestrictShrinksWhenCareSetEliminatesVariables) {
  // f depends on x0 only through a region the care set rules out.
  BddManager mgr;
  for (unsigned i = 0; i < 3; ++i) mgr.newVar();
  const Bdd x0 = mgr.var(0);
  const Bdd x1 = mgr.var(1);
  const Bdd x2 = mgr.var(2);
  const Bdd f = x0.ite(x1, x2);
  const Bdd care = x0;  // only the x0 half matters
  const Bdd r = f.restrictBy(care);
  EXPECT_EQ(r, x1);  // sibling substitution removes the x0 test entirely
  EXPECT_LT(r.size(), f.size());
}

TEST(BddRestrict, CofactorViaRestrictLiteral) {
  BddManager mgr;
  for (unsigned i = 0; i < 5; ++i) mgr.newVar();
  Rng rng(31);
  for (int i = 0; i < 20; ++i) {
    const Bdd f = test::randomBdd(mgr, 5, rng);
    for (unsigned v = 0; v < 5; ++v) {
      const Bdd c1 = f.cofactor(v, true);
      const Bdd c0 = f.cofactor(v, false);
      // Shannon decomposition reconstructs f.
      EXPECT_EQ(mgr.var(v).ite(c1, c0), f);
      // Cofactors do not mention the variable.
      for (const unsigned s : c1.support()) EXPECT_NE(s, v);
      for (const unsigned s : c0.support()) EXPECT_NE(s, v);
    }
  }
}

TEST(BddRestrict, ConstrainImageProperty) {
  // constrain(f, c) maps each x to f(pi_c(x)) -- on c it equals f.
  BddManager mgr;
  for (unsigned i = 0; i < 6; ++i) mgr.newVar();
  Rng rng(37);
  for (int i = 0; i < 20; ++i) {
    const Bdd f = test::randomBdd(mgr, 6, rng);
    const Bdd c = test::randomBdd(mgr, 6, rng);
    if (c.isZero()) continue;
    // If f covers c entirely then constrain is the constant TRUE test.
    if (c.implies(f)) {
      EXPECT_TRUE((c & f.constrainBy(c)).isOne() ||
                  c.implies(f.constrainBy(c)));
    }
  }
}

}  // namespace
}  // namespace icb
