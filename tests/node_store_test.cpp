// NodeStore seam tests: the packed 16-byte layout, the 31-bit index-space
// guard, the deref-underflow guard, and cross-layout persistence.
//
// The golden texts below were written by the PRE-packed node layout (the
// 20-byte struct-of-fields arena) and are embedded verbatim: the packed
// store must reproduce them bit-for-bit, both when rebuilding the same
// functions from the generating recipe and when round-tripping the files
// through load -> save.  That pins the on-disk formats (icbdd-bdd-v1/v2,
// icbdd-ckpt-v1) as layout-independent contracts.
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "bdd/node_store.hpp"
#include "bdd/serialize.hpp"
#include "check/structural_checker.hpp"
#include "check/test_hooks.hpp"
#include "svc/job.hpp"
#include "test_util.hpp"
#include "util/rng.hpp"
#include "verif/checkpoint.hpp"
#include "verif/run_all.hpp"

namespace icb {
namespace {

static_assert(sizeof(PackedNode) == 16,
              "the packed layout is the contract this suite pins down");

/// Restores the process check level on scope exit (the suite shares one
/// process; a leaked level would change every later test's behavior).
class ScopedCheckLevel {
 public:
  explicit ScopedCheckLevel(CheckLevel level) : saved_(checkLevel()) {
    setCheckLevel(level);
  }
  ~ScopedCheckLevel() { setCheckLevel(saved_); }

 private:
  CheckLevel saved_;
};

// ---------------------------------------------------------------------------
// index-space guard (the arena-bounds bugfix)

TEST(NodeIndexSpace, AllocationPastCapThrowsTypedError) {
  BddManager mgr;
  for (unsigned i = 0; i < 8; ++i) mgr.newVar();

  std::vector<Bdd> keep;  // pin everything so GC cannot mask the cap
  keep.push_back(mgr.var(0) & mgr.var(1));

  // Lower the cap to just above the current arena so the guard trips after
  // a handful of allocations instead of 2^31 of them.
  const std::uint32_t cap = NodeSurgeon::nodeCount(mgr) + 4;
  NodeSurgeon::capNodeIndexSpace(mgr, cap);

  Rng rng(11);
  bool tripped = false;
  try {
    for (int i = 0; i < 64; ++i) {
      keep.push_back(test::randomBdd(mgr, 8, rng, 6));
    }
  } catch (const ResourceLimitError& err) {
    tripped = true;
    EXPECT_EQ(err.kind(), ResourceKind::kNodeIndexSpace);
    EXPECT_NE(std::string(err.what()).find("index space"), std::string::npos);
  }
  ASSERT_TRUE(tripped) << "cap " << cap << " never tripped";

  // The throw must leave the store fully consistent (no half-linked node)...
  EXPECT_TRUE(StructuralChecker(mgr).run(CheckLevel::kFull).ok());
  EXPECT_LE(NodeSurgeon::nodeCount(mgr), cap + 1u);

  // ...and the manager usable: existing functions still evaluate, and with
  // the cap lifted the same construction goes through.
  NodeSurgeon::capNodeIndexSpace(mgr, NodeStore::kMaxIndex);
  const Bdd resumed = test::randomBdd(mgr, 8, rng, 4) & keep.front();
  EXPECT_TRUE((resumed & !resumed).isZero());
}

TEST(NodeIndexSpace, CapDefaultsToEdgeEncodingCeiling) {
  BddManager mgr;
  mgr.newVar();
  // One below kNil: a fresh index can never collide with the null link nor
  // overflow the 31-bit index field of Edge.
  EXPECT_EQ(NodeStore::kMaxIndex, 0x7FFFFFFEu);
}

// ---------------------------------------------------------------------------
// deref-underflow guard (the double-release bugfix)

TEST(RefUnderflow, ThrowsUnderCheapChecking) {
  BddManager mgr;
  for (unsigned i = 0; i < 2; ++i) mgr.newVar();
  Bdd f = mgr.var(0) & mgr.var(1);
  const Edge e = f.edge();

  const ScopedCheckLevel level(CheckLevel::kCheap);
  // First release is legitimate (f holds exactly one count)...
  NodeSurgeon::derefEdge(mgr, e);
  // ...the second is a double release and must be loud.
  bool threw = false;
  try {
    NodeSurgeon::derefEdge(mgr, e);
  } catch (const CheckFailure& err) {
    threw = true;
    EXPECT_EQ(err.kind(), ViolationKind::kRefUnderflow);
  }
  EXPECT_TRUE(threw);

  // Hand the count back before ~Bdd releases it, so the destructor's own
  // deref stays balanced (a CheckFailure from a destructor would terminate).
  NodeSurgeon::setRef(mgr, edgeIndex(e), 1);
}

TEST(RefUnderflow, CountedSilentlyWhenCheckingIsOff) {
  BddManager mgr;
  for (unsigned i = 0; i < 2; ++i) mgr.newVar();
  Bdd f = mgr.var(0) | mgr.var(1);
  const Edge e = f.edge();

  const ScopedCheckLevel level(CheckLevel::kOff);
  const std::uint64_t before = mgr.stats().refUnderflows;
  NodeSurgeon::derefEdge(mgr, e);  // legitimate: drops 1 -> 0
  EXPECT_EQ(mgr.stats().refUnderflows, before);
  NodeSurgeon::derefEdge(mgr, e);  // double release: counted, not thrown
  NodeSurgeon::derefEdge(mgr, e);
  EXPECT_EQ(mgr.stats().refUnderflows, before + 2);

  NodeSurgeon::setRef(mgr, edgeIndex(e), 1);
}

// ---------------------------------------------------------------------------
// cross-layout persistence goldens
//
// Generator recipe (fixed forever -- the texts below were captured from it
// under the pre-packed layout): 8 variables x0..x7, Rng seed 77, six roots
// of goldenRandomBdd depth 5, then applyVarOrder({6,1,7,0,4,3,5,2}).

Bdd goldenRandomBdd(BddManager& mgr, unsigned vars, Rng& rng, unsigned depth) {
  if (depth == 0 || rng.below(8) == 0) {
    const unsigned v = static_cast<unsigned>(rng.below(vars));
    return rng.below(2) != 0 ? mgr.var(v) : mgr.nvar(v);
  }
  const Bdd a = goldenRandomBdd(mgr, vars, rng, depth - 1);
  const Bdd b = goldenRandomBdd(mgr, vars, rng, depth - 1);
  switch (rng.below(3)) {
    case 0: return a & b;
    case 1: return a | b;
    default: return a ^ b;
  }
}

std::vector<Bdd> buildGoldenRoots(BddManager& mgr) {
  for (unsigned i = 0; i < 8; ++i) mgr.newVar("x" + std::to_string(i));
  Rng rng(77);
  std::vector<Bdd> roots;
  for (int i = 0; i < 6; ++i) roots.push_back(goldenRandomBdd(mgr, 8, rng, 5));
  const std::vector<unsigned> shuffled{6, 1, 7, 0, 4, 3, 5, 2};
  applyVarOrder(mgr, shuffled);
  return roots;
}

const char kGoldenV2[] = R"(icbdd-bdd-v2
vars 8
v 0 x0
v 1 x1
v 2 x2
v 3 x3
v 4 x4
v 5 x5
v 6 x6
v 7 x7
order 6 1 7 0 4 3 5 2
nodes 64
n 0 3 T F
n 1 2 T F
n 2 5 1 T
n 3 5 1 F
n 4 4 T !3
n 5 0 4 !2
n 6 7 T 5
n 7 5 T 1
n 8 3 7 2
n 9 5 T !1
n 10 3 9 !3
n 11 4 T 10
n 12 0 11 !8
n 13 3 1 F
n 14 0 T !13
n 15 7 14 12
n 16 1 15 6
n 17 0 3 2
n 18 0 T F
n 19 7 18 17
n 20 0 10 !8
n 21 3 1 T
n 22 0 21 13
n 23 7 22 !20
n 24 1 23 19
n 25 6 24 !16
n 26 3 T 1
n 27 4 8 26
n 28 3 T 7
n 29 3 7 T
n 30 4 29 28
n 31 0 30 27
n 32 7 27 31
n 33 4 T 7
n 34 1 33 32
n 35 0 28 26
n 36 7 26 35
n 37 1 7 36
n 38 6 37 34
n 39 4 T F
n 40 5 T F
n 41 4 T !40
n 42 0 T 41
n 43 4 40 T
n 44 0 43 T
n 45 7 44 42
n 46 0 T 43
n 47 7 46 44
n 48 1 47 45
n 49 4 T 40
n 50 0 49 T
n 51 0 T 40
n 52 7 51 50
n 53 4 40 F
n 54 0 43 !53
n 55 0 40 T
n 56 7 55 54
n 57 1 56 52
n 58 6 57 48
n 59 3 T !40
n 60 3 1 !40
n 61 4 60 59
n 62 0 61 !40
n 63 6 40 62
roots 6
r !63
r !58
r !39
r !38
r !25
r !0
)";

TEST(SerializeGolden, PackedStoreReproducesOldLayoutV2Dump) {
  // Rebuilding the generating recipe under the packed store must produce
  // the byte-identical file the old layout wrote: node numbering, sharing,
  // complement placement, and the persisted order all survive the layout
  // change.
  BddManager mgr;
  const std::vector<Bdd> roots = buildGoldenRoots(mgr);
  std::ostringstream os;
  saveBdds(os, mgr, roots);
  EXPECT_EQ(os.str(), kGoldenV2);
}

TEST(SerializeGolden, OldLayoutV2FileRoundTripsBitForBit) {
  BddManager mgr;
  std::istringstream in(kGoldenV2);
  const std::vector<Bdd> loaded = loadBdds(in, mgr);
  ASSERT_EQ(loaded.size(), 6u);

  std::ostringstream os;
  saveBdds(os, mgr, loaded);
  EXPECT_EQ(os.str(), kGoldenV2);

  // And the loaded functions are the recipe's functions.
  BddManager ref;
  const std::vector<Bdd> rebuilt = buildGoldenRoots(ref);
  for (std::size_t i = 0; i < loaded.size(); ++i) {
    EXPECT_EQ(test::truthTable(loaded[i], 8), test::truthTable(rebuilt[i], 8))
        << "root " << i;
  }
}

TEST(SerializeGolden, OldLayoutV1FileStillLoads) {
  // v1 == v2 minus the order line, under the v1 magic.  Derive it from the
  // golden so the two cannot drift apart.
  std::string v1(kGoldenV2);
  v1.replace(v1.find("icbdd-bdd-v2"), 12, "icbdd-bdd-v1");
  const std::size_t orderAt = v1.find("order ");
  ASSERT_NE(orderAt, std::string::npos);
  v1.erase(orderAt, v1.find('\n', orderAt) - orderAt + 1);

  BddManager mgr;  // empty: load creates the variables, order stays identity
  std::istringstream in(v1);
  const std::vector<Bdd> loaded = loadBdds(in, mgr);
  ASSERT_EQ(loaded.size(), 6u);

  BddManager ref;
  const std::vector<Bdd> rebuilt = buildGoldenRoots(ref);
  for (std::size_t i = 0; i < loaded.size(); ++i) {
    EXPECT_EQ(test::truthTable(loaded[i], 8), test::truthTable(rebuilt[i], 8))
        << "root " << i;
  }
}

// ---------------------------------------------------------------------------
// checkpoint cross-layout resume
//
// Snapshot captured under the pre-packed layout from: fifo model, size 4,
// width 4, forward reachability, checkpoint every iteration, snapshot taken
// at iteration 3 of 5.  The full run holds (verdict kHolds, 5 iterations).

const char kGoldenCkpt[] = R"(icbdd-ckpt-v1
method Fwd
iteration 3
numbers 0
lists 2 1 4
icbdd-bdd-v2
vars 36
v 0 in_sel
v 1 in_b0
v 2 q0_b0
v 3 q0_b0'
v 4 q1_b0
v 5 q1_b0'
v 6 q2_b0
v 7 q2_b0'
v 8 q3_b0
v 9 q3_b0'
v 10 in_b1
v 11 q0_b1
v 12 q0_b1'
v 13 q1_b1
v 14 q1_b1'
v 15 q2_b1
v 16 q2_b1'
v 17 q3_b1
v 18 q3_b1'
v 19 in_b2
v 20 q0_b2
v 21 q0_b2'
v 22 q1_b2
v 23 q1_b2'
v 24 q2_b2
v 25 q2_b2'
v 26 q3_b2
v 27 q3_b2'
v 28 q0_b3
v 29 q0_b3'
v 30 q1_b3
v 31 q1_b3'
v 32 q2_b3
v 33 q2_b3'
v 34 q3_b3
v 35 q3_b3'
order 0 1 2 3 4 5 6 7 8 9 10 11 12 13 14 15 16 17 18 19 20 21 22 23 24 25 26 27 28 29 30 31 32 33 34 35
nodes 166
n 0 34 T F
n 1 32 0 T
n 2 26 T 1
n 3 32 T 0
n 4 26 T 3
n 5 24 4 2
n 6 30 T 1
n 7 26 T 6
n 8 30 T 3
n 9 26 T 8
n 10 24 9 7
n 11 22 10 5
n 12 28 T 1
n 13 26 T 12
n 14 28 T 3
n 15 26 T 14
n 16 24 15 13
n 17 28 T 6
n 18 26 T 17
n 19 28 T 8
n 20 26 T 19
n 21 24 20 18
n 22 22 21 16
n 23 20 22 11
n 24 17 T 23
n 25 22 9 4
n 26 22 20 15
n 27 20 26 25
n 28 17 T 27
n 29 15 28 24
n 30 20 21 10
n 31 17 T 30
n 32 20 20 9
n 33 17 T 32
n 34 15 33 31
n 35 13 34 29
n 36 17 T 22
n 37 17 T 26
n 38 15 37 36
n 39 17 T 21
n 40 17 T 20
n 41 15 40 39
n 42 13 41 38
n 43 11 42 35
n 44 8 T 43
n 45 13 33 28
n 46 13 40 37
n 47 11 46 45
n 48 8 T 47
n 49 6 48 44
n 50 11 41 34
n 51 8 T 50
n 52 11 40 33
n 53 8 T 52
n 54 6 53 51
n 55 4 54 49
n 56 8 T 42
n 57 8 T 46
n 58 6 57 56
n 59 8 T 41
n 60 8 T 40
n 61 6 60 59
n 62 4 61 58
n 63 2 62 55
n 64 30 3 T
n 65 26 T 64
n 66 24 T 65
n 67 24 T 9
n 68 22 67 66
n 69 28 T 64
n 70 26 T 69
n 71 24 T 70
n 72 24 T 20
n 73 22 72 71
n 74 20 73 68
n 75 17 T 74
n 76 15 T 75
n 77 20 72 67
n 78 17 T 77
n 79 15 T 78
n 80 13 79 76
n 81 17 T 73
n 82 15 T 81
n 83 17 T 72
n 84 15 T 83
n 85 13 84 82
n 86 11 85 80
n 87 8 T 86
n 88 6 T 87
n 89 11 84 79
n 90 8 T 89
n 91 6 T 90
n 92 4 91 88
n 93 8 T 85
n 94 6 T 93
n 95 8 T 84
n 96 6 T 95
n 97 4 96 94
n 98 2 97 92
n 99 28 8 T
n 100 26 T 99
n 101 24 T 100
n 102 22 T 101
n 103 22 T 72
n 104 20 103 102
n 105 17 T 104
n 106 15 T 105
n 107 13 T 106
n 108 17 T 103
n 109 15 T 108
n 110 13 T 109
n 111 11 110 107
n 112 8 T 111
n 113 6 T 112
n 114 4 T 113
n 115 8 T 110
n 116 6 T 115
n 117 4 T 116
n 118 2 117 114
n 119 20 T 103
n 120 17 T 119
n 121 15 T 120
n 122 13 T 121
n 123 11 T 122
n 124 8 T 123
n 125 6 T 124
n 126 4 T 125
n 127 2 T 126
n 128 26 T 0
n 129 24 4 128
n 130 30 T 0
n 131 26 T 130
n 132 24 9 131
n 133 22 132 129
n 134 28 T 0
n 135 26 T 134
n 136 24 15 135
n 137 28 T 130
n 138 26 T 137
n 139 24 20 138
n 140 22 139 136
n 141 20 140 133
n 142 17 T 141
n 143 15 28 142
n 144 20 139 132
n 145 17 T 144
n 146 15 33 145
n 147 13 146 143
n 148 17 T 140
n 149 15 37 148
n 150 17 T 139
n 151 15 40 150
n 152 13 151 149
n 153 11 152 147
n 154 8 T 153
n 155 6 48 154
n 156 11 151 146
n 157 8 T 156
n 158 6 53 157
n 159 4 158 155
n 160 8 T 152
n 161 6 57 160
n 162 8 T 151
n 163 6 60 162
n 164 4 163 161
n 165 2 164 159
roots 5
r !165
r !127
r !118
r !98
r !63
)";

svc::JobRequest goldenCkptRequest() {
  svc::JobRequest req;
  req.id = "golden";
  req.model = "fifo";
  req.method = Method::kFwd;
  req.size = 4;
  req.width = 4;
  return req;
}

TEST(CheckpointGolden, OldLayoutSnapshotRoundTripsBitForBit) {
  const svc::JobRequest req = goldenCkptRequest();
  BddManager mgr(svc::bddOptionsFor(req));
  ModelInstance model = svc::buildJobModel(mgr, req);
  (void)model;

  std::istringstream in(kGoldenCkpt);
  const EngineSnapshot snapshot = loadSnapshot(in, mgr);
  EXPECT_EQ(snapshot.method, Method::kFwd);
  EXPECT_EQ(snapshot.iteration, 3u);

  std::ostringstream os;
  saveSnapshot(os, mgr, snapshot);
  EXPECT_EQ(os.str(), kGoldenCkpt);
}

TEST(CheckpointGolden, ResumeFromOldLayoutSnapshotMatchesFreshRun) {
  const svc::JobRequest req = goldenCkptRequest();

  BddManager mgr(svc::bddOptionsFor(req));
  ModelInstance model = svc::buildJobModel(mgr, req);
  std::istringstream in(kGoldenCkpt);
  const EngineSnapshot snapshot = loadSnapshot(in, mgr);
  EngineOptions options = svc::engineOptionsFor(req);
  options.checkpoint.resume = &snapshot;
  const EngineResult resumed =
      runMethod(*model.fsm, req.method, model.fdCandidates, options);

  // The uninterrupted run (captured with the golden) holds in 5 iterations;
  // resuming the old-layout snapshot under the packed store must agree.
  EXPECT_EQ(resumed.verdict, Verdict::kHolds);
  EXPECT_EQ(resumed.iterations, 5u);

  BddManager freshMgr(svc::bddOptionsFor(req));
  ModelInstance freshModel = svc::buildJobModel(freshMgr, req);
  const EngineResult fresh = runMethod(*freshModel.fsm, req.method,
                                       freshModel.fdCandidates,
                                       svc::engineOptionsFor(req));
  EXPECT_EQ(fresh.verdict, resumed.verdict);
  EXPECT_EQ(fresh.iterations, resumed.iterations);
}

}  // namespace
}  // namespace icb
