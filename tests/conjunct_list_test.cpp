// ConjunctList semantics: normalization, evaluation, size accounting,
// structural comparison.
#include <gtest/gtest.h>

#include "ici/conjunct_list.hpp"
#include "test_util.hpp"

namespace icb {
namespace {

TEST(ConjunctList, EmptyListIsTrue) {
  BddManager mgr;
  ConjunctList list(&mgr);
  EXPECT_TRUE(list.isTrue());
  EXPECT_FALSE(list.isFalse());
  EXPECT_TRUE(list.evaluate().isOne());
}

TEST(ConjunctList, NormalizeDropsTruesAndDuplicates) {
  BddManager mgr;
  for (unsigned i = 0; i < 3; ++i) mgr.newVar();
  ConjunctList list(&mgr);
  list.push(mgr.one());
  list.push(mgr.var(0));
  list.push(mgr.var(0));
  list.push(mgr.one());
  list.push(mgr.var(1));
  list.normalize();
  EXPECT_EQ(list.size(), 2u);
  EXPECT_EQ(list.evaluate(), mgr.var(0) & mgr.var(1));
}

TEST(ConjunctList, NormalizeCollapsesOnFalse) {
  BddManager mgr;
  mgr.newVar();
  ConjunctList list(&mgr);
  list.push(mgr.var(0));
  list.push(mgr.zero());
  list.normalize();
  EXPECT_TRUE(list.isFalse());
  EXPECT_EQ(list.size(), 1u);
  EXPECT_TRUE(list.evaluate().isZero());
}

TEST(ConjunctList, EvaluateEqualsExplicitConjunction) {
  BddManager mgr;
  for (unsigned i = 0; i < 8; ++i) mgr.newVar();
  Rng rng(3);
  for (int round = 0; round < 10; ++round) {
    ConjunctList list(&mgr);
    Bdd expected = mgr.one();
    for (int i = 0; i < 5; ++i) {
      const Bdd f = test::randomBdd(mgr, 8, rng);
      list.push(f);
      expected &= f;
    }
    EXPECT_EQ(list.evaluate(), expected);
  }
}

TEST(ConjunctList, SharedNodeCountNeverExceedsSumOfSizes) {
  BddManager mgr;
  for (unsigned i = 0; i < 8; ++i) mgr.newVar();
  Rng rng(7);
  ConjunctList list(&mgr);
  std::uint64_t total = 0;
  for (int i = 0; i < 6; ++i) {
    const Bdd f = test::randomBdd(mgr, 8, rng);
    list.push(f);
    total += f.size();
  }
  EXPECT_LE(list.sharedNodeCount(), total);
  EXPECT_EQ(list.memberSizes().size(), list.size());
}

TEST(ConjunctList, StructuralEqualityModes) {
  BddManager mgr;
  for (unsigned i = 0; i < 2; ++i) mgr.newVar();
  ConjunctList a(&mgr, {mgr.var(0), mgr.var(1)});
  ConjunctList b(&mgr, {mgr.var(1), mgr.var(0)});
  EXPECT_FALSE(a.structurallyEqual(b));
  EXPECT_TRUE(a.structurallyEqualUnordered(b));
  ConjunctList c(&mgr, {mgr.var(0)});
  EXPECT_FALSE(a.structurallyEqualUnordered(c));
}

TEST(ConjunctList, EvalAssignmentIsConjunction) {
  BddManager mgr;
  for (unsigned i = 0; i < 3; ++i) mgr.newVar();
  ConjunctList list(&mgr, {mgr.var(0), !mgr.var(2)});
  const std::vector<char> yes{1, 0, 0};
  const std::vector<char> no{1, 0, 1};
  EXPECT_TRUE(list.evalAssignment(yes));
  EXPECT_FALSE(list.evalAssignment(no));
}

TEST(ConjunctList, DescribeListsMemberSizes) {
  BddManager mgr;
  for (unsigned i = 0; i < 2; ++i) mgr.newVar();
  ConjunctList list(&mgr, {mgr.var(0), mgr.var(0) & mgr.var(1)});
  const std::string d = list.describe();
  EXPECT_NE(d.find("2 conjuncts"), std::string::npos);
  EXPECT_NE(d.find("("), std::string::npos);
}

TEST(ConjunctList, SortBySizeIsStable) {
  BddManager mgr;
  for (unsigned i = 0; i < 6; ++i) mgr.newVar();
  ConjunctList list(&mgr);
  list.push(mgr.var(0) & mgr.var(1) & mgr.var(2));
  list.push(mgr.var(3));
  list.push(mgr.var(4) & mgr.var(5));
  list.sortBySize();
  EXPECT_LE(list[0].size(), list[1].size());
  EXPECT_LE(list[1].size(), list[2].size());
}

}  // namespace
}  // namespace icb
