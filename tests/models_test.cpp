// The paper's four models: every engine agrees on small instances, bug
// injections produce validated counterexamples, FD works on the network.
#include <gtest/gtest.h>

#include "models/avg_filter.hpp"
#include "models/network.hpp"
#include "models/pipeline_cpu.hpp"
#include "models/typed_fifo.hpp"
#include "util/rng.hpp"
#include "verif/counterexample.hpp"
#include "verif/run_all.hpp"

namespace icb {
namespace {

EngineOptions quickOptions() {
  EngineOptions options;
  options.maxNodes = 2'000'000;
  options.timeLimitSeconds = 60.0;
#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
  // Sanitizer instrumentation slows the engines several-fold; scale the
  // wall-clock cap so the verdicts under test stay deterministic.
  options.timeLimitSeconds *= 10.0;
#endif
  return options;
}

// ---------------------------------------------------------------------------
// Typed FIFO

TEST(TypedFifo, AllEnginesProveSmallInstance) {
  for (const Method m : allMethods()) {
    BddManager mgr;
    TypedFifoModel model(mgr, {.depth = 3, .width = 4});
    const EngineResult r =
        runMethod(model.fsm(), m, model.fdCandidates(), quickOptions());
    EXPECT_EQ(r.verdict, Verdict::kHolds) << methodName(m);
  }
}

TEST(TypedFifo, BackwardConvergesInOneIterationAndIciStaysSmall) {
  BddManager mgr;
  TypedFifoModel model(mgr, {.depth = 5, .width = 8});
  const EngineResult ici = runIciBackward(model.fsm(), quickOptions());
  EXPECT_EQ(ici.verdict, Verdict::kHolds);
  EXPECT_EQ(ici.iterations, 1u);
  // The paper's "(5 x 9 nodes)": five conjuncts of nine nodes each.
  ASSERT_EQ(ici.peakIterateMemberSizes.size(), 5u);
  for (const auto s : ici.peakIterateMemberSizes) EXPECT_EQ(s, 9u);
}

TEST(TypedFifo, MonolithicRepresentationBlowsUpExponentially) {
  // The implicit conjunction's raison d'etre: under the interleaved order
  // the evaluated conjunction grows exponentially with depth while the list
  // grows linearly.
  std::uint64_t prev = 0;
  std::vector<std::uint64_t> monoSizes;
  std::vector<std::uint64_t> listSizes;
  for (unsigned depth : {2u, 4u, 6u, 8u}) {
    BddManager mgr;
    TypedFifoModel model(mgr, {.depth = depth, .width = 8});
    const ConjunctList prop = model.fsm().property(false);
    monoSizes.push_back(prop.evaluate().size());
    listSizes.push_back(prop.sharedNodeCount());
    (void)prev;
  }
  // Monolithic at least doubles per step while the list stays near-linear.
  EXPECT_GT(monoSizes[3], monoSizes[2] * 2);
  EXPECT_GT(monoSizes[2], monoSizes[1] * 2);
  EXPECT_LT(listSizes[3], listSizes[0] * 8);
}

TEST(TypedFifo, BugInjectionCaughtWithValidTrace) {
  for (const Method m : {Method::kFwd, Method::kBkwd, Method::kXici}) {
    BddManager mgr;
    TypedFifoModel model(mgr, {.depth = 3, .width = 4, .injectBug = true});
    const EngineResult r =
        runMethod(model.fsm(), m, model.fdCandidates(), quickOptions());
    ASSERT_EQ(r.verdict, Verdict::kViolated) << methodName(m);
    ASSERT_TRUE(r.trace.has_value());
    EXPECT_EQ(validateTrace(model.fsm(), *r.trace,
                            model.fsm().property(false)),
              "")
        << methodName(m);
  }
}

TEST(TypedFifo, FifoEntriesStayWellTypedAlongRandomSimulation) {
  BddManager mgr;
  TypedFifoModel model(mgr, {.depth = 4, .width = 8});
  Fsm& fsm = model.fsm();
  Rng rng(99);
  std::vector<char> values(mgr.varCount(), 0);
  // init: all zero is an initial state.
  ASSERT_TRUE(fsm.init().eval(values));
  for (int t = 0; t < 200; ++t) {
    for (const unsigned v : fsm.vars().inputVars()) {
      values[v] = rng.coin() ? 1 : 0;
    }
    values = fsm.step(values);
    for (unsigned e = 0; e < 4; ++e) {
      EXPECT_LE(model.entry(e).evalUint(values), model.bound());
    }
  }
}

// ---------------------------------------------------------------------------
// Network

TEST(Network, AllEnginesProveTwoProcessors) {
  for (const Method m : allMethods()) {
    BddManager mgr;
    NetworkModel model(mgr, {.processors = 2});
    const EngineResult r =
        runMethod(model.fsm(), m, model.fdCandidates(), quickOptions());
    EXPECT_EQ(r.verdict, Verdict::kHolds) << methodName(m);
  }
}

TEST(Network, BackwardMethodsConvergeInOneIteration) {
  BddManager mgr;
  NetworkModel model(mgr, {.processors = 3});
  const EngineResult r = runIciBackward(model.fsm(), quickOptions());
  EXPECT_EQ(r.verdict, Verdict::kHolds);
  EXPECT_EQ(r.iterations, 1u);
  EXPECT_EQ(r.peakIterateMemberSizes.size(), 3u);  // one conjunct per proc
}

TEST(Network, FdKeepsRepresentationSmallerThanForward) {
  BddManager mgrA;
  NetworkModel a(mgrA, {.processors = 4});
  const EngineResult fwd = runForward(a.fsm(), quickOptions());
  ASSERT_EQ(fwd.verdict, Verdict::kHolds);

  BddManager mgrB;
  NetworkModel b(mgrB, {.processors = 4});
  const EngineResult fd =
      runFdForward(b.fsm(), b.fdCandidates(), quickOptions());
  ASSERT_EQ(fd.verdict, Verdict::kHolds);
  EXPECT_EQ(fd.iterations, fwd.iterations);
  // The factored representation must be much smaller than the monolithic R.
  EXPECT_LT(fd.peakIterateNodes * 2, fwd.peakIterateNodes);
}

TEST(Network, BugInjectionCaught) {
  for (const Method m : {Method::kFwd, Method::kXici}) {
    BddManager mgr;
    NetworkModel model(mgr, {.processors = 2, .injectBug = true});
    const EngineResult r =
        runMethod(model.fsm(), m, model.fdCandidates(), quickOptions());
    ASSERT_EQ(r.verdict, Verdict::kViolated) << methodName(m);
    if (r.trace.has_value()) {
      EXPECT_EQ(validateTrace(model.fsm(), *r.trace,
                              model.fsm().property(false)),
                "");
    }
  }
}

// ---------------------------------------------------------------------------
// Moving-average filter

TEST(AvgFilter, AllEnginesProveDepth2Narrow) {
  for (const Method m : allMethods()) {
    BddManager mgr;
    AvgFilterModel model(mgr, {.depth = 2, .sampleWidth = 4});
    EngineOptions options = quickOptions();
    options.withAssists = true;
    const EngineResult r =
        runMethod(model.fsm(), m, model.fdCandidates(), options);
    EXPECT_EQ(r.verdict, Verdict::kHolds) << methodName(m);
  }
}

TEST(AvgFilter, XiciProvesDepth4WithoutAssists) {
  BddManager mgr;
  AvgFilterModel model(mgr, {.depth = 4, .sampleWidth = 8});
  EngineOptions options = quickOptions();
  options.withAssists = false;
  const EngineResult r = runXiciBackward(model.fsm(), options);
  EXPECT_EQ(r.verdict, Verdict::kHolds);
  // Without user assists the policy derives per-layer lemmas: the peak
  // iterate must be a genuine multi-conjunct list.
  EXPECT_GE(r.peakIterateMemberSizes.size(), 2u);
}

TEST(AvgFilter, AssistsMakeThePropertyInductive) {
  BddManager mgr;
  AvgFilterModel model(mgr, {.depth = 4, .sampleWidth = 6});
  EngineOptions options = quickOptions();
  options.withAssists = true;
  const EngineResult r = runIciBackward(model.fsm(), options);
  EXPECT_EQ(r.verdict, Verdict::kHolds);
  EXPECT_EQ(r.iterations, 1u);
}

TEST(AvgFilter, BugInjectionCaught) {
  BddManager mgr;
  AvgFilterModel model(mgr, {.depth = 4, .sampleWidth = 4, .injectBug = true});
  const EngineResult r = runXiciBackward(model.fsm(), quickOptions());
  ASSERT_EQ(r.verdict, Verdict::kViolated);
  ASSERT_TRUE(r.trace.has_value());
  EXPECT_EQ(
      validateTrace(model.fsm(), *r.trace, model.fsm().property(false)), "");
}

// ---------------------------------------------------------------------------
// Pipelined CPU

TEST(PipelineCpu, AllEnginesProveSmallestConfig) {
  for (const Method m : allMethods()) {
    BddManager mgr;
    PipelineCpuModel model(mgr, {.registers = 2, .width = 1});
    const EngineResult r =
        runMethod(model.fsm(), m, model.fdCandidates(), quickOptions());
    EXPECT_EQ(r.verdict, Verdict::kHolds) << methodName(m);
  }
}

TEST(PipelineCpu, XiciProvesTwoBitDatapath) {
  BddManager mgr;
  PipelineCpuModel model(mgr, {.registers = 2, .width = 2});
  const EngineResult r = runXiciBackward(model.fsm(), quickOptions());
  EXPECT_EQ(r.verdict, Verdict::kHolds);
}

TEST(PipelineCpu, MissingBypassCaughtWithValidTrace) {
  BddManager mgr;
  PipelineCpuModel model(mgr, {.registers = 2, .width = 1, .injectBug = true});
  const EngineResult r = runForward(model.fsm(), quickOptions());
  ASSERT_EQ(r.verdict, Verdict::kViolated);
  ASSERT_TRUE(r.trace.has_value());
  EXPECT_EQ(
      validateTrace(model.fsm(), *r.trace, model.fsm().property(false)), "");
}

TEST(PipelineCpu, RandomCosimulationAgreesWithSymbolicVerdict) {
  // Long random concrete run: register files must stay equal (the property
  // the symbolic engines prove).
  BddManager mgr;
  PipelineCpuModel model(mgr, {.registers = 4, .width = 2});
  Fsm& fsm = model.fsm();
  Rng rng(2024);
  std::vector<char> values(mgr.varCount(), 0);
  ASSERT_TRUE(fsm.init().eval(values));
  const ConjunctList prop = fsm.property(false);
  for (int t = 0; t < 500; ++t) {
    for (const unsigned v : fsm.vars().inputVars()) {
      values[v] = rng.coin() ? 1 : 0;
    }
    values = fsm.step(values);
    ASSERT_TRUE(prop.evalAssignment(values)) << "cycle " << t;
  }
}

TEST(PipelineCpu, BuggyCosimulationEventuallyDiverges) {
  BddManager mgr;
  PipelineCpuModel model(mgr, {.registers = 2, .width = 2, .injectBug = true});
  Fsm& fsm = model.fsm();
  Rng rng(77);
  std::vector<char> values(mgr.varCount(), 0);
  const ConjunctList prop = fsm.property(false);
  bool diverged = false;
  for (int t = 0; t < 2000 && !diverged; ++t) {
    for (const unsigned v : fsm.vars().inputVars()) {
      values[v] = rng.coin() ? 1 : 0;
    }
    values = fsm.step(values);
    diverged = !prop.evalAssignment(values);
  }
  EXPECT_TRUE(diverged);
}

}  // namespace
}  // namespace icb
