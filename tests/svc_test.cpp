// VerifyService behavior: admission control (bounded queue, structured
// rejections), the on-disk job journal, cross-instance recovery (the
// process-restart story), and the svc.* metrics the service maintains.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <mutex>
#include <sstream>
#include <string>
#include <vector>

#include "obs/jsonl.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "svc/journal.hpp"
#include "svc/service.hpp"
#include "verif/checkpoint.hpp"

namespace icb::svc {
namespace {

namespace fs = std::filesystem;

/// Collects every emitted response line, parsed.
struct Capture {
  std::mutex m;
  std::vector<obs::JsonValue> lines;

  VerifyService::Emit emit() {
    return [this](const std::string& line) {
      std::lock_guard<std::mutex> lock(m);
      lines.push_back(obs::parseJson(line));
    };
  }

  std::vector<const obs::JsonValue*> ofType(std::string_view type) {
    std::lock_guard<std::mutex> lock(m);
    std::vector<const obs::JsonValue*> out;
    for (const obs::JsonValue& v : lines) {
      if (const obs::JsonValue* t = v.find("type");
          t != nullptr && t->textOr("") == type) {
        out.push_back(&v);
      }
    }
    return out;
  }

  const obs::JsonValue* resultFor(std::string_view id) {
    for (const obs::JsonValue* r : ofType("job_result")) {
      if (const obs::JsonValue* i = r->find("id");
          i != nullptr && i->textOr("") == id) {
        return r;
      }
    }
    return nullptr;
  }
};

std::string uniqueDir(const char* stem) {
  static int counter = 0;
  fs::path dir = fs::path(::testing::TempDir()) / "icbdd_svc_tests" /
                 (std::string(stem) + "_" + std::to_string(counter++));
  fs::remove_all(dir);
  return dir.string();
}

TEST(SvcAdmission, DrainModeRejectsBeyondQueueBound) {
  ServiceOptions options;
  options.queueBound = 2;
  options.drain = true;  // nothing runs until shutdown: deterministic depth
  options.checkpointEvery = 0;
  Capture cap;
  VerifyService service(options, cap.emit());

  EXPECT_TRUE(service.submitLine(
      R"({"id":"j1","model":"mutex","method":"xici","size":3})"));
  EXPECT_TRUE(service.submitLine(
      R"({"id":"j2","model":"mutex","method":"xici","size":3})"));
  EXPECT_EQ(service.queueDepth(), 2u);
  EXPECT_FALSE(service.submitLine(
      R"({"id":"j3","model":"mutex","method":"xici","size":3})"));

  const auto rejected = cap.ofType("job_rejected");
  ASSERT_EQ(rejected.size(), 1u);
  EXPECT_EQ(rejected[0]->find("id")->textOr(""), "j3");
  EXPECT_EQ(rejected[0]->find("reason")->textOr(""), "queue_full");
  EXPECT_DOUBLE_EQ(rejected[0]->find("queue_bound")->numberOr(-1), 2.0);

  service.shutdown();
  EXPECT_EQ(cap.ofType("job_accepted").size(), 2u);
  EXPECT_EQ(cap.ofType("job_result").size(), 2u);
  EXPECT_NE(cap.resultFor("j1"), nullptr);
  EXPECT_NE(cap.resultFor("j2"), nullptr);

  const obs::MetricsRegistry metrics = service.metricsSnapshot();
  EXPECT_EQ(metrics.counter("svc.jobs.accepted"), 2u);
  EXPECT_EQ(metrics.counter("svc.jobs.rejected"), 1u);
  EXPECT_EQ(metrics.counter("svc.jobs.completed"), 2u);
  EXPECT_EQ(metrics.counter("svc.jobs.failed"), 0u);
  EXPECT_DOUBLE_EQ(metrics.gauge("svc.queue.peak_depth"), 2.0);
  EXPECT_EQ(service.queueDepth(), 0u);
}

TEST(SvcAdmission, StructuredRejectReasons) {
  ServiceOptions options;
  options.drain = true;
  Capture cap;
  VerifyService service(options, cap.emit());

  // Not JSON at all.
  EXPECT_FALSE(service.submitLine("{not json"));
  // Parses, but violates the request schema (bad id characters).
  EXPECT_FALSE(service.submitLine(R"({"id":"has spaces","model":"fifo"})"));
  // Missing required field.
  EXPECT_FALSE(service.submitLine(R"({"id":"j1"})"));
  // Duplicate of an already queued id.
  EXPECT_TRUE(service.submitLine(R"({"id":"dup","model":"mutex","size":3})"));
  EXPECT_FALSE(service.submitLine(R"({"id":"dup","model":"mutex","size":3})"));

  const auto rejected = cap.ofType("job_rejected");
  ASSERT_EQ(rejected.size(), 4u);
  EXPECT_EQ(rejected[0]->find("reason")->textOr(""), "parse_error");
  EXPECT_EQ(rejected[1]->find("reason")->textOr(""), "invalid_request");
  EXPECT_EQ(rejected[1]->find("id")->textOr(""), "has spaces");
  EXPECT_EQ(rejected[2]->find("reason")->textOr(""), "invalid_request");
  EXPECT_EQ(rejected[3]->find("reason")->textOr(""), "duplicate_id");
  service.shutdown();
}

TEST(SvcAdmission, UnknownModelFailsAtRunNotAdmission) {
  ServiceOptions options;
  options.drain = true;
  Capture cap;
  VerifyService service(options, cap.emit());
  EXPECT_TRUE(service.submitLine(R"({"id":"bad","model":"warpdrive"})"));
  service.shutdown();

  const auto failed = cap.ofType("job_failed");
  ASSERT_EQ(failed.size(), 1u);
  EXPECT_EQ(failed[0]->find("id")->textOr(""), "bad");
  const obs::MetricsRegistry metrics = service.metricsSnapshot();
  EXPECT_EQ(metrics.counter("svc.jobs.failed"), 1u);
  EXPECT_EQ(metrics.counter("svc.jobs.completed"), 0u);
}

TEST(SvcJournal, CompletedJobsLeaveNoJournalEntries) {
  const std::string dir = uniqueDir("clean");
  ServiceOptions options;
  options.drain = true;
  options.journalDir = dir;
  options.checkpointEvery = 1;
  Capture cap;
  VerifyService service(options, cap.emit());
  EXPECT_TRUE(service.submitLine(
      R"({"id":"c1","model":"fifo","method":"fwd","size":4,"width":4})"));
  service.shutdown();

  ASSERT_NE(cap.resultFor("c1"), nullptr);
  // Progress lines streamed as checkpoints landed (5 iterations, every=1).
  EXPECT_FALSE(cap.ofType("job_progress").empty());
  // ...and the journal is clean: nothing to recover.
  std::size_t entries = 0;
  for (const auto& e : fs::directory_iterator(dir)) {
    (void)e;
    ++entries;
  }
  EXPECT_EQ(entries, 0u);
}

TEST(SvcJournal, RecoverResumesFromCheckpointAcrossInstances) {
  // Simulates a killed process: the journal holds an accepted request plus
  // its last checkpoint, with no live service.  A fresh instance must pick
  // the job up with resume=true and finish with the uninterrupted verdict.
  const std::string dir = uniqueDir("recover");
  const std::string line =
      R"({"id":"r1","model":"fifo","method":"fwd","size":4,"width":4})";

  // Baseline (uninterrupted) and a mid-run checkpoint, via the engine.
  const JobRequest req = parseJobRequest(obs::parseJson(line));
  std::vector<std::pair<unsigned, std::string>> snapshots;
  BddManager mgr(bddOptionsFor(req));
  ModelInstance model = buildJobModel(mgr, req);
  EngineOptions engineOptions = engineOptionsFor(req);
  engineOptions.checkpoint.everyIterations = 1;
  engineOptions.checkpoint.sink = [&](const EngineSnapshot& snap) {
    std::ostringstream os;
    saveSnapshot(os, mgr, snap);
    snapshots.emplace_back(snap.iteration, os.str());
  };
  const EngineResult base =
      runMethod(*model.fsm, req.method, model.fdCandidates, engineOptions);
  ASSERT_GE(snapshots.size(), 2u);
  const auto& [ckptIteration, ckptText] = snapshots[snapshots.size() / 2];

  {
    // The "killed" instance's journal state, written directly.
    JobJournal journal(dir);
    journal.recordAccepted("r1", line);
    journal.recordCheckpoint("r1", ckptText);
  }

  ServiceOptions options;
  options.drain = true;
  options.journalDir = dir;
  Capture cap;
  VerifyService service(options, cap.emit());
  EXPECT_EQ(service.recoverJournal(), 1u);
  EXPECT_EQ(service.queueDepth(), 1u);
  service.shutdown();

  const obs::JsonValue* result = cap.resultFor("r1");
  ASSERT_NE(result, nullptr);
  EXPECT_TRUE(result->find("resumed")->boolean);
  EXPECT_DOUBLE_EQ(result->find("resumed_from")->numberOr(0),
                   static_cast<double>(ckptIteration));
  EXPECT_EQ(result->find("verdict")->textOr(""), verdictName(base.verdict));
  EXPECT_DOUBLE_EQ(result->find("iterations")->numberOr(0),
                   static_cast<double>(base.iterations));

  const obs::MetricsRegistry metrics = service.metricsSnapshot();
  EXPECT_EQ(metrics.counter("svc.jobs.recovered"), 1u);
  EXPECT_EQ(metrics.counter("svc.jobs.resumed"), 1u);
  EXPECT_EQ(metrics.counter("svc.jobs.completed"), 1u);

  // Finished: journal clean again, nothing to recover a second time.
  JobJournal after(dir);
  EXPECT_TRUE(after.recoverableRequests().empty());
}

TEST(SvcJournal, AtomicWritesAndRemove) {
  const std::string dir = uniqueDir("atomic");
  JobJournal journal(dir);
  journal.recordAccepted("a", R"({"id":"a","model":"fifo"})");
  journal.recordAccepted("b", R"({"id":"b","model":"mutex"})");
  journal.recordCheckpoint("a", "ckpt-text");

  const auto requests = journal.recoverableRequests();
  ASSERT_EQ(requests.size(), 2u);  // sorted by path: a then b
  EXPECT_NE(requests[0].find("\"id\":\"a\""), std::string::npos);
  EXPECT_NE(requests[1].find("\"id\":\"b\""), std::string::npos);

  ASSERT_TRUE(journal.checkpointText("a").has_value());
  EXPECT_EQ(*journal.checkpointText("a"), "ckpt-text");
  EXPECT_FALSE(journal.checkpointText("b").has_value());

  journal.remove("a");
  EXPECT_FALSE(journal.checkpointText("a").has_value());
  EXPECT_EQ(journal.recoverableRequests().size(), 1u);
  journal.remove("b");
  EXPECT_TRUE(journal.recoverableRequests().empty());
}

TEST(SvcJournal, WriteCounterSurfacesInMetricsSnapshot) {
  {
    const std::string dir = uniqueDir("writes_raw");
    JobJournal journal(dir);
    EXPECT_EQ(journal.writesRecorded(), 0u);
    journal.recordAccepted("a", R"({"id":"a","model":"fifo"})");
    journal.recordCheckpoint("a", "one");
    journal.recordCheckpoint("a", "two");  // replacement still counts
    EXPECT_EQ(journal.writesRecorded(), 3u);
  }

  const std::string dir = uniqueDir("writes_svc");
  ServiceOptions options;
  options.drain = true;
  options.journalDir = dir;
  options.checkpointEvery = 1;
  Capture cap;
  VerifyService service(options, cap.emit());
  EXPECT_TRUE(service.submitLine(
      R"({"id":"w1","model":"fifo","method":"fwd","size":4,"width":4})"));
  service.shutdown();

  ASSERT_NE(cap.resultFor("w1"), nullptr);
  const obs::MetricsRegistry metrics = service.metricsSnapshot();
  // One journaled request line plus one checkpoint per cadence hit.
  EXPECT_GE(metrics.counter("svc.journal.writes"),
            1u + metrics.counter("svc.checkpoints.saved"));
  EXPECT_GE(metrics.counter("svc.checkpoints.saved"), 1u);
  EXPECT_EQ(metrics.counter("svc.jobs.completed"), 1u);
}

TEST(SvcJournal, WriteFailuresDegradeInsteadOfThrowing) {
  const std::string dir = uniqueDir("degraded");
  JobJournal journal(dir);
  EXPECT_TRUE(journal.healthy());
  EXPECT_EQ(journal.writeFailures(), 0u);
  EXPECT_LT(journal.secondsSinceLastWrite(), 0.0);  // nothing written yet

  journal.recordAccepted("ok1", R"({"id":"ok1","model":"fifo"})");
  EXPECT_TRUE(journal.healthy());
  EXPECT_GE(journal.secondsSinceLastWrite(), 0.0);

  // Yank the directory out from under the journal: every write must fail
  // *silently* (counted + remembered), never throw.  Replacing the dir with
  // a regular file breaks writes even for a root test runner, which
  // chmod-based sabotage would not.
  fs::remove_all(dir);
  std::ofstream(dir) << "not a directory";
  EXPECT_NO_THROW(journal.recordAccepted("x", R"({"id":"x","model":"fifo"})"));
  EXPECT_NO_THROW(journal.recordCheckpoint("x", "snapshot"));
  EXPECT_FALSE(journal.healthy());
  EXPECT_EQ(journal.writeFailures(), 2u);
  EXPECT_FALSE(journal.lastError().empty());

  // Restoring the directory heals the journal on the next good write.
  fs::remove(dir);
  fs::create_directories(dir);
  journal.recordAccepted("y", R"({"id":"y","model":"fifo"})");
  EXPECT_TRUE(journal.healthy());
  EXPECT_TRUE(journal.lastError().empty());
  EXPECT_EQ(journal.writeFailures(), 2u);  // history is kept
}

TEST(SvcService, HealthFlipsWhenJournalDegrades) {
  const std::string dir = uniqueDir("health");
  ServiceOptions options;
  options.drain = true;
  options.journalDir = dir;
  Capture cap;
  VerifyService service(options, cap.emit());

  EXPECT_TRUE(service.submitLine(R"({"id":"h1","model":"mutex","size":3})"));
  ServiceHealth healthy = service.health();
  EXPECT_TRUE(healthy.ok());
  EXPECT_TRUE(healthy.journalOk);
  EXPECT_EQ(healthy.queueDepth, 1u);
  EXPECT_GE(healthy.secondsSinceJournalWrite, 0.0);
  EXPECT_TRUE(healthy.journalError.empty());

  // Sabotage the journal directory; the next accepted job's journal write
  // fails, the service keeps serving, and /healthz's view degrades.
  fs::remove_all(dir);
  std::ofstream(dir) << "not a directory";
  EXPECT_TRUE(service.submitLine(R"({"id":"h2","model":"mutex","size":3})"));
  const ServiceHealth degraded = service.health();
  EXPECT_FALSE(degraded.ok());
  EXPECT_FALSE(degraded.journalOk);
  EXPECT_FALSE(degraded.journalError.empty());

  service.shutdown();
  EXPECT_EQ(cap.ofType("job_result").size(), 2u);  // both jobs still ran
  const obs::MetricsRegistry metrics = service.metricsSnapshot();
  EXPECT_GE(metrics.counter("svc.journal.write_failures"), 1u);
  EXPECT_EQ(metrics.counter("svc.jobs.completed"), 2u);
}

TEST(SvcService, JobHistogramsBillEveryCompletedJob) {
  const std::string dir = uniqueDir("histos");
  ServiceOptions options;
  options.drain = true;
  options.journalDir = dir;
  options.checkpointEvery = 1;
  Capture cap;
  VerifyService service(options, cap.emit());
  EXPECT_TRUE(service.submitLine(
      R"({"id":"b1","model":"fifo","method":"fwd","size":4,"width":4})"));
  EXPECT_TRUE(service.submitLine(
      R"({"id":"b2","model":"mutex","method":"xici","size":3})"));
  EXPECT_TRUE(service.submitLine(R"({"id":"b3","model":"warpdrive"})"));
  service.shutdown();

  const obs::MetricsRegistry metrics = service.metricsSnapshot();
  EXPECT_EQ(metrics.counter("svc.jobs.completed"), 2u);
  EXPECT_EQ(metrics.counter("svc.jobs.failed"), 1u);

  // One sample per *completed* job in every attribution histogram; the
  // failed job never reached the engine and is billed nowhere.
  for (const char* name : {"svc.job.queue_wait_us", "svc.job.run_us",
                           "svc.job.nodes_created", "svc.job.peak_nodes"}) {
    const obs::Histogram* h = metrics.histogram(name);
    ASSERT_NE(h, nullptr) << name;
    EXPECT_EQ(h->count(), 2u) << name;
  }
  EXPECT_GT(metrics.histogram("svc.job.nodes_created")->sum(), 0u);
  EXPECT_GT(metrics.histogram("svc.job.peak_nodes")->min(), 0u);

  // Checkpoint snapshots billed by size, one sample per saved checkpoint.
  const obs::Histogram* bytes = metrics.histogram("svc.checkpoint.write_bytes");
  ASSERT_NE(bytes, nullptr);
  EXPECT_EQ(bytes->count(), metrics.counter("svc.checkpoints.saved"));
  EXPECT_GT(bytes->sum(), 0u);
}

TEST(SvcService, TraceSpansCarryJobIdAndResourceBill) {
  std::ostringstream traceOut;
  obs::TraceSink sink(traceOut);
  obs::setDefaultTraceSink(&sink);

  ServiceOptions options;
  options.drain = true;
  options.checkpointEvery = 0;
  Capture cap;
  VerifyService service(options, cap.emit());
  EXPECT_TRUE(service.submitLine(
      R"({"id":"span1","model":"mutex","method":"xici","size":3})"));
  service.shutdown();
  obs::setDefaultTraceSink(nullptr);

  std::istringstream in(traceOut.str());
  const obs::JsonValue* jobEnd = nullptr;
  std::size_t tagged = 0;
  const std::vector<obs::JsonValue> events = obs::parseJsonLines(in);
  for (const obs::JsonValue& ev : events) {
    // Every event of this run -- engine spans included -- carries the
    // request id in the "job" correlation field.
    if (const obs::JsonValue* job = ev.find("job")) {
      EXPECT_EQ(job->textOr(""), "span1");
      ++tagged;
    }
    if (ev.find("ev")->textOr("") == "job_end") jobEnd = &ev;
  }
  EXPECT_GT(tagged, 2u);  // job_begin/job_end plus the engine's own spans
  ASSERT_NE(jobEnd, nullptr);
  EXPECT_EQ(jobEnd->find("verdict")->textOr(""), "holds");
  EXPECT_GE(jobEnd->find("seconds")->numberOr(-1), 0.0);
  EXPECT_GE(jobEnd->find("queue_wait_s")->numberOr(-1), 0.0);
  EXPECT_GT(jobEnd->find("nodes_created")->numberOr(0), 0.0);
  EXPECT_GT(jobEnd->find("peak_nodes")->numberOr(0), 0.0);
}

TEST(SvcRequest, ParseAndValidation) {
  const obs::JsonValue v = obs::parseJson(
      R"({"id":"x.1","model":"filter","method":"fd","size":2,"width":4,)"
      R"("inject_bug":true,"deadline_seconds":2.5,"max_nodes":100000,)"
      R"("max_iterations":50,"checkpoint_every":3,"auto_reorder":true})");
  const JobRequest req = parseJobRequest(v);
  EXPECT_EQ(req.id, "x.1");
  EXPECT_EQ(req.model, "filter");
  EXPECT_EQ(req.method, Method::kFd);
  EXPECT_EQ(req.size, 2u);
  EXPECT_EQ(req.width, 4u);
  EXPECT_TRUE(req.injectBug);
  EXPECT_DOUBLE_EQ(req.deadlineSeconds, 2.5);
  EXPECT_EQ(req.maxNodes, 100000u);
  EXPECT_EQ(req.maxIterations, 50u);
  EXPECT_EQ(req.checkpointEvery, 3u);
  EXPECT_TRUE(req.autoReorder);
  EXPECT_TRUE(engineOptionsFor(req).wantTrace);
  EXPECT_EQ(engineOptionsFor(req).maxNodes, 100000u);
  EXPECT_TRUE(bddOptionsFor(req).autoReorder);

  EXPECT_TRUE(validJobId("a"));
  EXPECT_TRUE(validJobId("Job_1.retry-2"));
  EXPECT_FALSE(validJobId(""));
  EXPECT_FALSE(validJobId(".hidden"));
  EXPECT_FALSE(validJobId("has space"));
  EXPECT_FALSE(validJobId("sl/ash"));
  EXPECT_FALSE(validJobId(std::string(65, 'a')));

  // Schema violations the parser must throw on.
  EXPECT_THROW((void)parseJobRequest(obs::parseJson(R"({"model":"fifo"})")),
               std::invalid_argument);
  EXPECT_THROW((void)parseJobRequest(obs::parseJson(
                   R"({"id":"a","model":"fifo","size":-1})")),
               std::invalid_argument);
  EXPECT_THROW((void)parseJobRequest(obs::parseJson(
                   R"({"id":"a","model":"fifo","size":1.5})")),
               std::invalid_argument);
  EXPECT_THROW((void)parseJobRequest(obs::parseJson(
                   R"({"id":"a","model":"fifo","method":"warp"})")),
               std::invalid_argument);
  EXPECT_THROW((void)parseJobRequest(obs::parseJson(R"(["not","object"])")),
               std::invalid_argument);
}

TEST(SvcService, ParallelBatchCompletesEveryJob) {
  ServiceOptions options;
  options.workers = 4;
  options.queueBound = 16;
  options.drain = true;
  options.checkpointEvery = 0;
  Capture cap;
  VerifyService service(options, cap.emit());
  for (int i = 0; i < 6; ++i) {
    const std::string id = "p" + std::to_string(i);
    EXPECT_TRUE(service.submitLine(
        R"({"id":")" + id +
        R"(","model":"mutex","method":"fwd","size":3})"));
  }
  service.shutdown();
  EXPECT_EQ(cap.ofType("job_result").size(), 6u);
  for (int i = 0; i < 6; ++i) {
    const obs::JsonValue* r = cap.resultFor("p" + std::to_string(i));
    ASSERT_NE(r, nullptr);
    EXPECT_EQ(r->find("verdict")->textOr(""), "holds");
  }
  const obs::MetricsRegistry metrics = service.metricsSnapshot();
  EXPECT_EQ(metrics.counter("svc.jobs.completed"), 6u);
}

}  // namespace
}  // namespace icb::svc
