// Simultaneous multi-care-set Restrict (the paper's Section V wish).
#include <gtest/gtest.h>

#include "ici/simplify.hpp"
#include "sym/bitvector.hpp"
#include "test_util.hpp"

namespace icb {
namespace {

struct MultiParam {
  unsigned nvars;
  unsigned count;
  std::uint64_t seed;
};

class MultiRestrictSweep : public ::testing::TestWithParam<MultiParam> {};

TEST_P(MultiRestrictSweep, ContractHoldsAgainstExplicitConjunction) {
  const auto [nvars, count, seed] = GetParam();
  BddManager mgr;
  for (unsigned i = 0; i < nvars; ++i) mgr.newVar();
  Rng rng(seed);
  for (int round = 0; round < 20; ++round) {
    const Bdd f = test::randomBdd(mgr, nvars, rng, 3);
    std::vector<Bdd> cares;
    Bdd conj = mgr.one();
    for (unsigned i = 0; i < count; ++i) {
      cares.push_back(test::randomBdd(mgr, nvars, rng, 3));
      conj &= cares.back();
    }
    const Bdd r = f.restrictByAll(cares);
    // The Restrict contract against the (explicitly built) conjunction.
    EXPECT_EQ(r & conj, f & conj) << "round " << round;
  }
}

TEST_P(MultiRestrictSweep, SingleCareMatchesClassicRestrict) {
  const auto [nvars, count, seed] = GetParam();
  (void)count;
  BddManager mgr;
  for (unsigned i = 0; i < nvars; ++i) mgr.newVar();
  Rng rng(seed * 3 + 7);
  for (int round = 0; round < 15; ++round) {
    const Bdd f = test::randomBdd(mgr, nvars, rng, 3);
    const Bdd c = test::randomBdd(mgr, nvars, rng, 3);
    const std::vector<Bdd> one{c};
    EXPECT_EQ(f.restrictByAll(one), f.restrictBy(c));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, MultiRestrictSweep,
    ::testing::Values(MultiParam{4, 2, 1}, MultiParam{6, 3, 2},
                      MultiParam{8, 3, 3}, MultiParam{8, 5, 4},
                      MultiParam{10, 4, 5}),
    [](const ::testing::TestParamInfo<MultiParam>& paramInfo) {
      return "v" + std::to_string(paramInfo.param.nvars) + "c" +
             std::to_string(paramInfo.param.count) + "s" +
             std::to_string(paramInfo.param.seed);
    });

TEST(RestrictMulti, PaperSectionVScenario) {
  // The motivating case: f restricted by c1 alone or c2 alone does not
  // shrink (each care set individually is too weak), but against c1 & c2
  // simultaneously the function collapses.  Construct: f = parity over the
  // x block selected by region bits; c1 and c2 each pin one region bit.
  BddManager mgr;
  std::vector<Bdd> v;
  for (unsigned i = 0; i < 8; ++i) v.push_back(mgr.var(mgr.newVar()));
  const Bdd r1 = v[0];
  const Bdd r2 = v[1];
  // f: in region (r1 & r2) a single literal, elsewhere a wide parity.
  const Bdd wide = v[2] ^ v[3] ^ v[4] ^ v[5] ^ v[6] ^ v[7];
  const Bdd f = (r1 & r2).ite(v[2], wide);
  const Bdd c1 = r1;
  const Bdd c2 = r2;

  const Bdd multi = f.restrictByAll(std::vector<Bdd>{c1, c2});
  // Inside c1 & c2 the function is just v[2]; the simultaneous restrict
  // must find that even though each care alone leaves the wide parity.
  EXPECT_EQ(multi, v[2]);
  EXPECT_LT(multi.size(), f.restrictBy(c1).size());
  EXPECT_LT(multi.size(), f.restrictBy(c2).size());
}

TEST(RestrictMulti, EmptyAndTrivialCareLists) {
  BddManager mgr;
  for (unsigned i = 0; i < 4; ++i) mgr.newVar();
  Rng rng(9);
  const Bdd f = test::randomBdd(mgr, 4, rng);
  EXPECT_EQ(f.restrictByAll(std::vector<Bdd>{}), f);
  EXPECT_EQ(f.restrictByAll(std::vector<Bdd>{mgr.one(), mgr.one()}), f);
  // A FALSE member makes the contract vacuous; identity is the safe result.
  EXPECT_EQ(f.restrictByAll(std::vector<Bdd>{mgr.zero(), mgr.var(0)}), f);
}

TEST(RestrictMulti, SubsumesAtLeastOnePairwiseOrder) {
  // Multi-restrict by {c1, c2} satisfies the same contract as any pairwise
  // sequence; verify on random instances that it is never *wrong* and
  // frequently at least as small as the best sequential order.
  BddManager mgr;
  for (unsigned i = 0; i < 8; ++i) mgr.newVar();
  Rng rng(31);
  int atLeastAsGood = 0;
  int total = 0;
  for (int round = 0; round < 40; ++round) {
    const Bdd f = test::randomBdd(mgr, 8, rng, 3);
    const Bdd c1 = test::randomBdd(mgr, 8, rng, 3);
    const Bdd c2 = test::randomBdd(mgr, 8, rng, 3);
    if ((c1 & c2).isZero()) continue;
    ++total;
    const Bdd multi = f.restrictByAll(std::vector<Bdd>{c1, c2});
    const std::uint64_t seq =
        std::min(f.restrictBy(c1).restrictBy(c2).size(),
                 f.restrictBy(c2).restrictBy(c1).size());
    if (multi.size() <= seq) ++atLeastAsGood;
  }
  ASSERT_GT(total, 20);
  // Not a theorem, but the heuristic should win or tie most of the time.
  EXPECT_GT(atLeastAsGood * 10, total * 5);
}

TEST(RestrictMulti, SimultaneousSimplifyPreservesConjunction) {
  BddManager mgr;
  for (unsigned i = 0; i < 10; ++i) mgr.newVar();
  Rng rng(17);
  for (int round = 0; round < 10; ++round) {
    ConjunctList list(&mgr);
    for (int i = 0; i < 5; ++i) {
      list.push(test::randomBdd(mgr, 10, rng, 3));
    }
    const Bdd before = list.evaluate();
    SimplifyOptions options;
    options.simultaneous = true;
    simplifyList(list, options);
    EXPECT_EQ(list.evaluate(), before);
  }
}

TEST(RestrictMulti, SimultaneousModeCanBeatPairwiseMode) {
  // The Section V scenario embedded in a list: pairwise simplification gets
  // stuck, the simultaneous pass collapses the big member.
  BddManager mgr;
  std::vector<Bdd> v;
  for (unsigned i = 0; i < 8; ++i) v.push_back(mgr.var(mgr.newVar()));
  const Bdd wide = v[2] ^ v[3] ^ v[4] ^ v[5] ^ v[6] ^ v[7];
  const Bdd f = (v[0] & v[1]).ite(v[2], wide);

  ConjunctList pairwise(&mgr, {f, v[0], v[1]});
  ConjunctList simultaneous = pairwise;

  SimplifyOptions p;
  simplifyList(pairwise, p);
  SimplifyOptions s;
  s.simultaneous = true;
  simplifyList(simultaneous, s);

  EXPECT_EQ(simultaneous.evaluate(), pairwise.evaluate());
  // The simultaneous pass can never lose to pairwise here (and wins when
  // the pairwise pass rejects both intermediate growths).
  EXPECT_LE(simultaneous.sharedNodeCount(), pairwise.sharedNodeCount());
}

}  // namespace
}  // namespace icb
