// The parallel verification scheduler (src/par/): deterministic ordered
// aggregation, --jobs 1 / --jobs N verdict equivalence on all five example
// machines, cooperative cancellation, worker attribution, and the
// regressions fixed alongside it (PairTable reuse accounting,
// EvaluatePolicyResult::merge, adaptive computed-cache growth).
#include <gtest/gtest.h>

#include <atomic>
#include <optional>
#include <sstream>
#include <stdexcept>
#include <thread>

#include "ici/evaluate_policy.hpp"
#include "ici/pair_table.hpp"
#include "models/avg_filter.hpp"
#include "models/mutex_ring.hpp"
#include "models/network.hpp"
#include "models/pipeline_cpu.hpp"
#include "models/typed_fifo.hpp"
#include "obs/trace.hpp"
#include "par/scheduler.hpp"
#include "test_util.hpp"
#include "verif/run_all.hpp"

namespace icb {
namespace {

/// Builds a self-owning model instance: the holder keeps a private manager
/// and the model alive for the cell's lifetime.
template <typename ModelT, typename ConfigT>
ModelInstance makeInstance(const ConfigT& config) {
  struct Holder {
    BddManager mgr;
    std::optional<ModelT> model;
  };
  auto holder = std::make_shared<Holder>();
  holder->model.emplace(holder->mgr, config);
  ModelInstance out;
  out.fsm = &holder->model->fsm();
  out.fdCandidates = holder->model->fdCandidates();
  out.holder = std::move(holder);
  return out;
}

/// The five example machines at doctor-sized configurations.
std::vector<std::pair<std::string, ModelFactory>> tinyModels() {
  return {
      {"fifo",
       [] { return makeInstance<TypedFifoModel>(TypedFifoConfig{3, 4, false}); }},
      {"mutex",
       [] { return makeInstance<MutexRingModel>(MutexRingConfig{3, false}); }},
      {"network",
       [] { return makeInstance<NetworkModel>(NetworkConfig{3, false}); }},
      {"filter",
       [] { return makeInstance<AvgFilterModel>(AvgFilterConfig{2, 4, false}); }},
      {"pipeline",
       [] {
         return makeInstance<PipelineCpuModel>(PipelineCpuConfig{2, 1, false});
       }},
  };
}

EngineResult resultWithVerdict(Method method, Verdict verdict) {
  EngineResult r;
  r.method = method;
  r.verdict = verdict;
  return r;
}

TEST(CellContext, ApplyTagsWorkerAndClampsDeadline) {
  const par::CellContext ctx{2, 0, "job-7", 0.25, 5.0};

  EngineOptions uncapped;
  ctx.apply(uncapped);
  EXPECT_EQ(uncapped.traceWorker, 2);
  EXPECT_EQ(uncapped.traceJob, "job-7");
  EXPECT_DOUBLE_EQ(uncapped.timeLimitSeconds, 5.0);

  EngineOptions tighter;
  tighter.timeLimitSeconds = 3.0;
  ctx.apply(tighter);
  EXPECT_DOUBLE_EQ(tighter.timeLimitSeconds, 3.0);

  EngineOptions looser;
  looser.timeLimitSeconds = 10.0;
  ctx.apply(looser);
  EXPECT_DOUBLE_EQ(looser.timeLimitSeconds, 5.0);

  const par::CellContext noDeadline{0, 0, "", 0.0, 0.0};
  EngineOptions untouched;
  untouched.timeLimitSeconds = 7.0;
  noDeadline.apply(untouched);
  EXPECT_DOUBLE_EQ(untouched.timeLimitSeconds, 7.0);
  EXPECT_EQ(untouched.traceWorker, 0);
  EXPECT_TRUE(untouched.traceJob.empty());
}

TEST(VerifyScheduler, AggregatesInSubmissionOrder) {
  par::SchedulerOptions options;
  options.jobs = 4;
  par::VerifyScheduler scheduler(options);
  EXPECT_EQ(scheduler.jobs(), 4u);

  const std::vector<Method> methods{Method::kFwd, Method::kBkwd, Method::kFd,
                                    Method::kIci, Method::kXici, Method::kFwd,
                                    Method::kBkwd, Method::kIci};
  for (std::size_t i = 0; i < methods.size(); ++i) {
    scheduler.submit("g" + std::to_string(i / 4), methods[i],
                     [m = methods[i]](const par::CellContext&) {
                       return resultWithVerdict(m, Verdict::kHolds);
                     });
  }

  const std::vector<par::CellResult> results = scheduler.run();
  ASSERT_EQ(results.size(), methods.size());
  for (std::size_t i = 0; i < results.size(); ++i) {
    EXPECT_EQ(results[i].index, i);
    EXPECT_EQ(results[i].group, "g" + std::to_string(i / 4));
    EXPECT_EQ(results[i].method, methods[i]);
    EXPECT_FALSE(results[i].skipped);
    EXPECT_EQ(results[i].result.verdict, Verdict::kHolds);
    EXPECT_LT(results[i].worker, 4u);
  }
}

TEST(VerifyScheduler, RecordsQueueWaitAndThreadsGroupIntoContext) {
  par::SchedulerOptions options;
  options.jobs = 1;  // serial: deterministic dispatch order
  par::VerifyScheduler scheduler(options);

  std::vector<std::string> seenGroups(3);
  std::vector<double> seenWaits(3, -1.0);
  for (std::size_t i = 0; i < 3; ++i) {
    scheduler.submit("grp" + std::to_string(i), Method::kFwd,
                     [i, &seenGroups, &seenWaits](const par::CellContext& ctx) {
                       seenGroups[i] = ctx.group;
                       seenWaits[i] = ctx.queueWaitSeconds;
                       EngineOptions opts;
                       ctx.apply(opts);
                       EXPECT_EQ(opts.traceJob, ctx.group);
                       return resultWithVerdict(Method::kFwd, Verdict::kHolds);
                     });
  }

  const std::vector<par::CellResult> results = scheduler.run();
  ASSERT_EQ(results.size(), 3u);
  double lastWait = -1.0;
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(seenGroups[i], "grp" + std::to_string(i));
    EXPECT_GE(seenWaits[i], 0.0);
    EXPECT_DOUBLE_EQ(results[i].queueWaitSeconds, seenWaits[i]);
    // Serial dispatch: later cells waited at least as long as earlier ones.
    EXPECT_GE(seenWaits[i], lastWait);
    lastWait = seenWaits[i];
  }
}

TEST(VerifyScheduler, FirstViolationCancelsQueuedCells) {
  par::SchedulerOptions options;
  options.jobs = 1;  // serial: submission order is execution order
  options.cancelOnFirstViolation = true;
  par::VerifyScheduler scheduler(options);

  std::atomic<int> bodiesRun{0};
  scheduler.submit("bad", Method::kFwd, [&](const par::CellContext&) {
    ++bodiesRun;
    return resultWithVerdict(Method::kFwd, Verdict::kViolated);
  });
  for (int i = 0; i < 3; ++i) {
    scheduler.submit("later", Method::kBkwd, [&](const par::CellContext&) {
      ++bodiesRun;
      return resultWithVerdict(Method::kBkwd, Verdict::kHolds);
    });
  }

  const std::vector<par::CellResult> results = scheduler.run();
  ASSERT_EQ(results.size(), 4u);
  EXPECT_EQ(bodiesRun.load(), 1);
  EXPECT_FALSE(results[0].skipped);
  EXPECT_EQ(results[0].result.verdict, Verdict::kViolated);
  for (std::size_t i = 1; i < results.size(); ++i) {
    EXPECT_TRUE(results[i].skipped);
    EXPECT_NE(results[i].skipReason.find("first violation"), std::string::npos);
    EXPECT_NE(results[i].result.note.find("cancelled"), std::string::npos);
  }
}

TEST(VerifyScheduler, ThrowingCellCancelsRemainderAndRecordsFailure) {
  par::SchedulerOptions options;
  options.jobs = 1;
  par::VerifyScheduler scheduler(options);

  scheduler.submit("boom", Method::kIci, [](const par::CellContext&) -> EngineResult {
    throw std::runtime_error("injected harness failure");
  });
  scheduler.submit("next", Method::kXici, [](const par::CellContext&) {
    return resultWithVerdict(Method::kXici, Verdict::kHolds);
  });

  const std::vector<par::CellResult> results = scheduler.run();
  ASSERT_EQ(results.size(), 2u);
  EXPECT_FALSE(results[0].skipped);
  EXPECT_NE(results[0].result.note.find("injected harness failure"),
            std::string::npos);
  EXPECT_TRUE(results[1].skipped);
  EXPECT_NE(results[1].skipReason.find("injected harness failure"),
            std::string::npos);
}

TEST(VerifyScheduler, CancelRunningCellsStopsInFlightWork) {
  par::SchedulerOptions options;
  options.jobs = 2;
  options.cancelOnFirstViolation = true;
  options.cancelRunningCells = true;
  par::VerifyScheduler scheduler(options);

  // Cell 0 spins on the cancel flag the scheduler threads into its
  // EngineOptions (the same flag checkResourceLimits polls in a real run);
  // cell 1 waits until the spinner is live, then reports the violation
  // that must break the spinner out.
  std::atomic<bool> spinnerStarted{false};
  scheduler.submit("spinner", Method::kFwd,
                   [&](const par::CellContext& ctx) -> EngineResult {
                     EngineOptions opts;
                     ctx.apply(opts);
                     EXPECT_NE(opts.cancelFlag, nullptr);
                     spinnerStarted.store(true);
                     while (!opts.cancelFlag->load()) std::this_thread::yield();
                     return resultWithVerdict(Method::kFwd, Verdict::kTimeLimit);
                   });
  scheduler.submit("violator", Method::kBkwd,
                   [&](const par::CellContext&) -> EngineResult {
                     while (!spinnerStarted.load()) std::this_thread::yield();
                     return resultWithVerdict(Method::kBkwd, Verdict::kViolated);
                   });

  const std::vector<par::CellResult> results = scheduler.run();
  ASSERT_EQ(results.size(), 2u);
  EXPECT_FALSE(results[0].skipped);
  EXPECT_EQ(results[0].result.verdict, Verdict::kTimeLimit);
  EXPECT_EQ(results[1].result.verdict, Verdict::kViolated);
}

TEST(VerifyScheduler, CancelFlagAbsentByDefault) {
  // Historical semantics: without cancelRunningCells, in-flight cells run
  // to completion -- only queued cells are skipped -- so no flag is wired.
  par::SchedulerOptions options;
  options.jobs = 1;
  options.cancelOnFirstViolation = true;
  par::VerifyScheduler scheduler(options);

  scheduler.submit("only", Method::kFwd,
                   [&](const par::CellContext& ctx) -> EngineResult {
                     EngineOptions opts;
                     ctx.apply(opts);
                     EXPECT_EQ(opts.cancelFlag, nullptr);
                     return resultWithVerdict(Method::kFwd, Verdict::kHolds);
                   });
  const std::vector<par::CellResult> results = scheduler.run();
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].result.verdict, Verdict::kHolds);
}

TEST(VerifyScheduler, ExpiredGlobalDeadlineSkipsEverything) {
  par::SchedulerOptions options;
  options.jobs = 1;
  options.globalDeadlineSeconds = 1e-9;  // expires before the first dispatch
  par::VerifyScheduler scheduler(options);

  std::atomic<int> bodiesRun{0};
  for (int i = 0; i < 3; ++i) {
    scheduler.submit("capped", Method::kFwd, [&](const par::CellContext&) {
      ++bodiesRun;
      return resultWithVerdict(Method::kFwd, Verdict::kHolds);
    });
  }

  const std::vector<par::CellResult> results = scheduler.run();
  EXPECT_EQ(bodiesRun.load(), 0);
  for (const par::CellResult& cell : results) {
    EXPECT_TRUE(cell.skipped);
    EXPECT_NE(cell.skipReason.find("deadline"), std::string::npos);
  }
}

/// The headline determinism contract: every (model, method) cell produces
/// the same verdict, iteration count, and peak iterate size whether the
/// sweep runs serially (--jobs 1) or on a parallel worker pool (--jobs 4).
TEST(RunAllMethods, ParallelSweepMatchesSerialSweep) {
  for (const auto& [name, factory] : tinyModels()) {
    RunAllOptions serial;
    serial.group = name;
    serial.scheduler.jobs = 1;
    const std::vector<par::CellResult> expected =
        runAllMethods(factory, serial);

    RunAllOptions parallel = serial;
    parallel.scheduler.jobs = 4;
    const std::vector<par::CellResult> actual =
        runAllMethods(factory, parallel);

    ASSERT_EQ(expected.size(), allMethods().size());
    ASSERT_EQ(actual.size(), expected.size());
    for (std::size_t i = 0; i < expected.size(); ++i) {
      SCOPED_TRACE(name + "/" +
                   std::string(methodName(expected[i].result.method)));
      EXPECT_EQ(actual[i].method, expected[i].method);
      EXPECT_EQ(actual[i].result.verdict, expected[i].result.verdict);
      EXPECT_EQ(actual[i].result.iterations, expected[i].result.iterations);
      EXPECT_EQ(actual[i].result.peakIterateNodes,
                expected[i].result.peakIterateNodes);
      EXPECT_EQ(actual[i].result.peakIterateMemberSizes,
                expected[i].result.peakIterateMemberSizes);
      EXPECT_TRUE(expected[i].result.holds());
    }
  }
}

/// Concurrent cells sharing one JSONL sink: the sink's internal mutex must
/// keep every line intact, and each engine event must carry its cell's
/// worker attribution.
TEST(RunAllMethods, SharedTraceSinkStaysLineAtomicUnderParallelCells) {
  std::ostringstream out;
  obs::TraceSink sink(out);

  RunAllOptions options;
  options.scheduler.jobs = 4;
  options.engine.traceSink = &sink;
  const auto models = tinyModels();
  const std::vector<par::CellResult> results =
      runAllMethods(models.front().second, options);
  ASSERT_EQ(results.size(), allMethods().size());

  std::istringstream in(out.str());
  const std::vector<obs::JsonValue> lines = obs::parseJsonLines(in);
  EXPECT_GT(lines.size(), 0u);
  std::size_t runBegins = 0;
  for (const obs::JsonValue& line : lines) {
    const obs::JsonValue* ev = line.find("ev");
    ASSERT_NE(ev, nullptr);
    const obs::JsonValue* worker = line.find("worker");
    ASSERT_NE(worker, nullptr) << "event without worker attribution: "
                               << std::string(ev->textOr(""));
    EXPECT_GE(worker->numberOr(-1.0), 0.0);
    if (ev->textOr("") == "run_begin") ++runBegins;
  }
  EXPECT_EQ(runBegins, allMethods().size());
}

// ---------------------------------------------------------------------------
// satellite regressions

/// An entry that survives several merges is one avoided rebuild, not one per
/// merge: 5 conjuncts merged twice at (0, 1) must report exactly 3 reused
/// entries (the historical per-merge formula double-counted to 4).
TEST(PairTableRegression, ReusedEntriesCountedOncePerLifetime) {
  BddManager mgr;
  for (unsigned i = 0; i < 5; ++i) mgr.newVar();
  std::vector<Bdd> conjuncts;
  for (unsigned i = 0; i < 5; ++i) conjuncts.push_back(mgr.var(i));

  PairTable table(mgr, conjuncts);
  EXPECT_EQ(table.entriesReused(), 0u);

  table.merge(0, 1);
  // Survivors not touching the merged slot: (1,2), (1,3), (2,3).
  EXPECT_EQ(table.entriesReused(), 3u);

  table.merge(0, 1);
  // The only surviving untouched entry descends from one already counted.
  EXPECT_EQ(table.entriesReused(), 3u);
  EXPECT_LE(table.entriesReused(), table.entriesBuilt());
}

TEST(EvaluatePolicyResultMerge, FoldsALaterApplicationIntoAnEarlierOne) {
  EvaluatePolicyResult first;
  first.sizeBefore = 100;
  first.sizeAfter = 80;
  first.merges = 2;
  first.rejections = 1;
  first.simplifyApplications = 3;
  first.abortedPairBuilds = 1;
  first.pairEntriesBuilt = 10;
  first.pairEntriesReused = 4;
  first.acceptedRatios = {1.2, 1.1};
  first.rejectedRatio = 1.9;

  EvaluatePolicyResult second;
  second.sizeBefore = 80;
  second.sizeAfter = 60;
  second.merges = 1;
  second.rejections = 2;
  second.simplifyApplications = 1;
  second.abortedPairBuilds = 2;
  second.pairEntriesBuilt = 5;
  second.pairEntriesReused = 1;
  second.acceptedRatios = {1.05};
  second.rejectedRatio = 1.7;

  first.merge(second);
  EXPECT_EQ(first.sizeBefore, 100u);  // earliest snapshot wins
  EXPECT_EQ(first.sizeAfter, 60u);    // latest snapshot wins
  EXPECT_EQ(first.merges, 3u);
  EXPECT_EQ(first.rejections, 3u);
  EXPECT_EQ(first.simplifyApplications, 4u);
  EXPECT_EQ(first.abortedPairBuilds, 3u);
  EXPECT_EQ(first.pairEntriesBuilt, 15u);
  EXPECT_EQ(first.pairEntriesReused, 5u);
  ASSERT_EQ(first.acceptedRatios.size(), 3u);
  EXPECT_DOUBLE_EQ(first.acceptedRatios[2], 1.05);
  EXPECT_DOUBLE_EQ(first.rejectedRatio, 1.7);

  EvaluatePolicyResult empty;
  empty.merge(second);
  EXPECT_EQ(empty.sizeBefore, 80u);  // nothing earlier to keep
  EXPECT_DOUBLE_EQ(empty.rejectedRatio, 1.7);

  EvaluatePolicyResult noRejection;  // a later clean pass keeps the old ratio
  first.merge(noRejection);
  EXPECT_DOUBLE_EQ(first.rejectedRatio, 1.7);
}

TEST(AdaptiveComputedCache, GrowsWithArenaUpToCeiling) {
  BddOptions options;
  options.cacheBitsLog2 = 8;      // boot at 256 entries
  options.cacheMaxBitsLog2 = 12;  // ceiling 4096 entries
  BddManager mgr(options);
  EXPECT_EQ(mgr.computedCacheEntries(), 256u);

  const unsigned nvars = 14;
  for (unsigned i = 0; i < nvars; ++i) mgr.newVar();
  Rng rng(7);
  std::vector<Bdd> keep;  // roots pin the arena so GC cannot shrink it
  while (mgr.allocatedNodes() <= 4096 && keep.size() < 4096) {
    keep.push_back(test::randomBdd(mgr, nvars, rng, 6));
  }
  ASSERT_GT(mgr.allocatedNodes(), 4096u);

  EXPECT_GT(mgr.stats().cacheResizes, 0u);
  EXPECT_EQ(mgr.computedCacheEntries(), 4096u);  // clamped at the ceiling
}

TEST(AdaptiveComputedCache, PinnedCeilingPreservesFixedSizeBehavior) {
  BddOptions options;
  options.cacheBitsLog2 = 8;
  options.cacheMaxBitsLog2 = 8;  // opt out of adaptive growth
  BddManager mgr(options);

  const unsigned nvars = 12;
  for (unsigned i = 0; i < nvars; ++i) mgr.newVar();
  Rng rng(11);
  std::vector<Bdd> keep;
  while (mgr.allocatedNodes() <= 1024 && keep.size() < 2048) {
    keep.push_back(test::randomBdd(mgr, nvars, rng, 6));
  }
  ASSERT_GT(mgr.allocatedNodes(), 1024u);

  EXPECT_EQ(mgr.stats().cacheResizes, 0u);
  EXPECT_EQ(mgr.computedCacheEntries(), 256u);
}

}  // namespace
}  // namespace icb
