// The token-ring mutual exclusion model: agreement across engines, the
// pairwise-conjunct property scaling, and the duplicated-token bug.
#include <gtest/gtest.h>

#include "models/mutex_ring.hpp"
#include "util/rng.hpp"
#include "verif/counterexample.hpp"
#include "verif/run_all.hpp"

namespace icb {
namespace {

TEST(MutexRing, AllEnginesProveSmallRing) {
  for (const Method m : allMethods()) {
    BddManager mgr;
    MutexRingModel model(mgr, {.cells = 3});
    const EngineResult r = runMethod(model.fsm(), m, model.fdCandidates());
    EXPECT_EQ(r.verdict, Verdict::kHolds) << methodName(m);
  }
}

TEST(MutexRing, PropertyIsManyTinyConjuncts) {
  BddManager mgr;
  MutexRingModel model(mgr, {.cells = 6});
  const ConjunctList prop = model.fsm().property(false);
  // 2 per unordered pair + 1 per cell.
  EXPECT_EQ(prop.size(), 2u * (6 * 5 / 2) + 6u);
  for (const auto s : prop.memberSizes()) EXPECT_LE(s, 8u);
}

TEST(MutexRing, XiciScalesToLargerRings) {
  BddManager mgr;
  MutexRingModel model(mgr, {.cells = 8});
  EngineOptions options;
  options.maxNodes = 4'000'000;
  options.timeLimitSeconds = 60.0;
#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
  options.timeLimitSeconds *= 10.0;  // sanitizer slowdown headroom
#endif
  const EngineResult r = runXiciBackward(model.fsm(), options);
  EXPECT_EQ(r.verdict, Verdict::kHolds);
}

TEST(MutexRing, DuplicatedTokenBugCaught) {
  for (const Method m : {Method::kFwd, Method::kXici}) {
    BddManager mgr;
    MutexRingModel model(mgr, {.cells = 3, .injectBug = true});
    const EngineResult r = runMethod(model.fsm(), m, model.fdCandidates());
    ASSERT_EQ(r.verdict, Verdict::kViolated) << methodName(m);
    ASSERT_TRUE(r.trace.has_value());
    EXPECT_EQ(validateTrace(model.fsm(), *r.trace,
                            model.fsm().property(false)),
              "")
        << methodName(m);
  }
}

TEST(MutexRing, TokenConservedAlongRandomRuns) {
  BddManager mgr;
  MutexRingModel model(mgr, {.cells = 5});
  Fsm& fsm = model.fsm();
  Rng rng(7);
  std::vector<char> values(mgr.varCount(), 0);
  // Initial state: token at cell 0 (state bit index 2 of cell 0).
  values[fsm.vars().stateBit(2).cur] = 1;
  ASSERT_TRUE(fsm.init().eval(values));
  const ConjunctList prop = fsm.property(false);
  for (int t = 0; t < 300; ++t) {
    for (const unsigned v : fsm.vars().inputVars()) {
      values[v] = rng.coin() ? 1 : 0;
    }
    values = fsm.step(values);
    ASSERT_TRUE(prop.evalAssignment(values)) << "step " << t;
    // Exactly one token at all times.
    unsigned tokens = 0;
    for (unsigned i = 0; i < 5; ++i) {
      tokens += values[fsm.vars().stateBit(3 * i + 2).cur] != 0 ? 1u : 0u;
    }
    EXPECT_EQ(tokens, 1u) << "step " << t;
  }
}

}  // namespace
}  // namespace icb
