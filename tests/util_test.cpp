// Utility layer: table formatting, CLI parsing, RNG determinism, timers.
#include <gtest/gtest.h>

#include <sstream>

#include "util/cli.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace icb {
namespace {

TEST(TextTable, AlignsColumnsAndSpans) {
  TextTable t({"Meth.", "Time", "Iter"});
  t.addSpan("Example: test");
  t.addRow({"Fwd", "0:03", "6"});
  t.addRow({"XICI", "0:00", "1"});
  std::ostringstream os;
  t.print(os);
  const std::string s = os.str();
  EXPECT_NE(s.find("Meth."), std::string::npos);
  EXPECT_NE(s.find("-- Example: test"), std::string::npos);
  EXPECT_NE(s.find("XICI"), std::string::npos);
  EXPECT_EQ(t.rowCount(), 3u);
}

TEST(TextTable, FormatMinSec) {
  EXPECT_EQ(formatMinSec(0.0), "0:00.00");
  EXPECT_EQ(formatMinSec(1.5), "0:01.50");
  EXPECT_EQ(formatMinSec(337.0), "5:37");
  EXPECT_EQ(formatMinSec(-3.0), "0:00.00");
}

TEST(TextTable, FormatKb) {
  EXPECT_EQ(formatKb(0), "0K");
  EXPECT_EQ(formatKb(1), "1K");
  EXPECT_EQ(formatKb(1024), "1K");
  EXPECT_EQ(formatKb(1025), "2K");
  EXPECT_EQ(formatKb(936 * 1024), "936K");
}

TEST(CliArgs, ParsesFlagsAndPositionals) {
  const char* argv[] = {"prog",     "--depth",  "8",    "--assist=true",
                        "posarg",   "--ratio",  "1.5",  "--flag"};
  CliArgs args(8, argv);
  EXPECT_EQ(args.getInt("depth", 0), 8);
  EXPECT_TRUE(args.getBool("assist", false));
  EXPECT_TRUE(args.getBool("flag", false));
  EXPECT_DOUBLE_EQ(args.getDouble("ratio", 0.0), 1.5);
  EXPECT_EQ(args.getString("missing", "dflt"), "dflt");
  EXPECT_EQ(args.positional(), std::vector<std::string>{"posarg"});
  EXPECT_TRUE(args.has("depth"));
  EXPECT_FALSE(args.has("nope"));
  EXPECT_THROW((void)args.getBool("depth", false), std::invalid_argument);
}

TEST(Rng, DeterministicAcrossInstances) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
  Rng c(43);
  bool differs = false;
  Rng a2(42);
  for (int i = 0; i < 10; ++i) differs |= a2.next() != c.next();
  EXPECT_TRUE(differs);
}

TEST(Rng, BoundsRespected) {
  Rng r(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(r.below(17), 17u);
    const double u = r.unit();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Timer, StopwatchAdvances) {
  Stopwatch w;
  double sink = 0;
  for (int i = 0; i < 100000; ++i) sink += i;
  (void)sink;
  EXPECT_GE(w.elapsedSeconds(), 0.0);
  EXPECT_GE(w.elapsedMs(), 0);
}

TEST(Timer, DeadlineSemantics) {
  const Deadline never;
  EXPECT_FALSE(never.isSet());
  EXPECT_FALSE(never.expired());
  const Deadline past = Deadline::afterSeconds(-1.0);
  EXPECT_TRUE(past.isSet());
  EXPECT_TRUE(past.expired());
  const Deadline future = Deadline::afterSeconds(3600.0);
  EXPECT_FALSE(future.expired());
}

}  // namespace
}  // namespace icb
