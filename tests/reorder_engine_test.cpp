// Property tests for growth-triggered reordering at the engine level: with
// auto-reorder forced to fire aggressively between iterations, every engine
// must report the same verdict as the fixed-order run, engines whose
// termination test is semantic (Fwd, Bkwd, FD, XICI) the same iteration
// count, and counterexample traces must still validate against the machine.
// ICI is the one exception on iterations: its CAV'93-style convergence test
// is syntactic (a repeated list signature) and Restrict results are
// variable-order-sensitive, so a sift legitimately shifts *when* the forms
// go flat -- only the verdict is order-independent there.
// The VerifySchedulerReorder suite
// checks composition with the parallel scheduler's per-cell managers and
// that a reorder interrupted by a resource cap surfaces as the capped
// verdict, never as a crash.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "models/avg_filter.hpp"
#include "models/mutex_ring.hpp"
#include "models/network.hpp"
#include "models/pipeline_cpu.hpp"
#include "models/typed_fifo.hpp"
#include "verif/counterexample.hpp"
#include "verif/run_all.hpp"

namespace icb {
namespace {

/// Fires a sift at essentially every engine iteration boundary: any growth
/// at all re-arms the trigger, with no minimum arena size.
BddOptions aggressiveReorder() {
  BddOptions options;
  options.autoReorder = true;
  options.reorderTrigger = 1.05;
  options.reorderMinLiveNodes = 1;
  return options;
}

/// Keeps the private manager alive alongside the model object it owns.
struct Holder {
  std::shared_ptr<BddManager> mgr;
  std::shared_ptr<void> model;
};

ModelInstance buildNamed(const std::string& name, const BddOptions& bddOptions,
                         bool injectBug) {
  auto holder = std::make_shared<Holder>();
  holder->mgr = std::make_shared<BddManager>(bddOptions);
  BddManager& mgr = *holder->mgr;
  ModelInstance out;
  if (name == "fifo") {
    auto m = std::make_shared<TypedFifoModel>(
        mgr, TypedFifoConfig{3, 4, injectBug});
    out.fsm = &m->fsm();
    out.fdCandidates = m->fdCandidates();
    holder->model = std::move(m);
  } else if (name == "mutex") {
    auto m =
        std::make_shared<MutexRingModel>(mgr, MutexRingConfig{3, injectBug});
    out.fsm = &m->fsm();
    out.fdCandidates = m->fdCandidates();
    holder->model = std::move(m);
  } else if (name == "network") {
    auto m = std::make_shared<NetworkModel>(mgr, NetworkConfig{3, injectBug});
    out.fsm = &m->fsm();
    out.fdCandidates = m->fdCandidates();
    holder->model = std::move(m);
  } else if (name == "filter") {
    auto m = std::make_shared<AvgFilterModel>(
        mgr, AvgFilterConfig{2, 4, injectBug});
    out.fsm = &m->fsm();
    out.fdCandidates = m->fdCandidates();
    holder->model = std::move(m);
  } else if (name == "pipeline") {
    auto m = std::make_shared<PipelineCpuModel>(
        mgr, PipelineCpuConfig{2, 1, injectBug});
    out.fsm = &m->fsm();
    out.fdCandidates = m->fdCandidates();
    holder->model = std::move(m);
  }
  out.holder = std::move(holder);
  return out;
}

const std::vector<std::string>& modelNames() {
  static const std::vector<std::string> names{"fifo", "mutex", "network",
                                              "filter", "pipeline"};
  return names;
}

TEST(ReorderEngine, VerdictsAndIterationsMatchFixedOrder) {
  for (const std::string& name : modelNames()) {
    for (const Method m : allMethods()) {
      ModelInstance fixed = buildNamed(name, BddOptions{}, false);
      const EngineResult base =
          runMethod(*fixed.fsm, m, fixed.fdCandidates, {});

      ModelInstance sifted = buildNamed(name, aggressiveReorder(), false);
      const EngineResult run =
          runMethod(*sifted.fsm, m, sifted.fdCandidates, {});

      const std::string where = name + "/" + methodName(m);
      EXPECT_EQ(run.verdict, base.verdict) << where;
      // ICI's syntactic convergence test is order-sensitive (see header
      // comment); every semantic-termination engine must match exactly.
      if (m != Method::kIci) {
        EXPECT_EQ(run.iterations, base.iterations) << where;
      }
    }
  }
}

TEST(ReorderEngine, CounterexampleTracesSurviveReordering) {
  // Bugged machines: every method must still find the violation under
  // aggressive sifting, with a trace of the fixed-order length that replays
  // cleanly.  Exact states may differ (minterm picking is shape-dependent);
  // existence, length, and validity are the order-independent contract.
  for (const std::string& name : modelNames()) {
    for (const Method m : allMethods()) {
      ModelInstance fixed = buildNamed(name, BddOptions{}, true);
      const EngineResult base =
          runMethod(*fixed.fsm, m, fixed.fdCandidates, {});
      if (base.verdict != Verdict::kViolated) continue;  // method-blind bug

      ModelInstance sifted = buildNamed(name, aggressiveReorder(), true);
      const EngineResult run =
          runMethod(*sifted.fsm, m, sifted.fdCandidates, {});

      const std::string where = name + "/" + methodName(m);
      ASSERT_EQ(run.verdict, Verdict::kViolated) << where;
      // Trace *presence* must match the fixed-order run (FD reports the
      // violation but never reconstructs a trace, in either mode).
      ASSERT_EQ(run.trace.has_value(), base.trace.has_value()) << where;
      if (!base.trace.has_value()) continue;
      EXPECT_EQ(run.trace->states.size(), base.trace->states.size()) << where;
      EXPECT_EQ(validateTrace(*sifted.fsm, *run.trace,
                              sifted.fsm->property(false)),
                "")
          << where;
    }
  }
}

TEST(VerifySchedulerReorder, PerCellManagersComposeWithAutoReorder) {
  // Each cell builds its own manager with auto-reorder forced on; two
  // workers run them concurrently.  Verdicts must match a fixed-order serial
  // sweep -- reordering is cell-private state, invisible across cells.
  std::vector<EngineResult> serial;
  for (const Method m : allMethods()) {
    ModelInstance fixed = buildNamed("fifo", BddOptions{}, false);
    serial.push_back(runMethod(*fixed.fsm, m, fixed.fdCandidates, {}));
  }

  RunAllOptions options;
  options.scheduler.jobs = 2;
  options.group = "fifo";
  const std::vector<par::CellResult> cells = runAllMethods(
      [] { return buildNamed("fifo", aggressiveReorder(), false); }, options);

  ASSERT_EQ(cells.size(), serial.size());
  for (std::size_t i = 0; i < cells.size(); ++i) {
    ASSERT_FALSE(cells[i].skipped) << methodName(serial[i].method);
    EXPECT_EQ(cells[i].result.verdict, serial[i].verdict)
        << methodName(serial[i].method);
    EXPECT_EQ(cells[i].result.iterations, serial[i].iterations)
        << methodName(serial[i].method);
  }
}

TEST(VerifySchedulerReorder, InterruptedSiftReportsCappedVerdict) {
  // A node cap tight enough to interrupt mid-run -- possibly mid-sift --
  // must come back as the capped verdict with a usable manager, never as a
  // crash or a CheckFailure.
  ModelInstance sifted = buildNamed("fifo", aggressiveReorder(), false);
  EngineOptions options;
  options.maxNodes = 400;  // below what the depth-3 FIFO needs
  const EngineResult run =
      runMethod(*sifted.fsm, Method::kFwd, sifted.fdCandidates, options);
  EXPECT_EQ(run.verdict, Verdict::kNodeLimit);
  auto* holder = static_cast<Holder*>(sifted.holder.get());
  holder->mgr->checkInvariants();
}

}  // namespace
}  // namespace icb
