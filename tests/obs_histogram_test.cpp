// obs::Histogram: bucket geometry, merge associativity, quantile accuracy,
// and the registry/BddStats integration points the telemetry tier relies on
// (docs/observability.md "Histograms").
#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <random>
#include <sstream>
#include <vector>

#include "bdd/manager.hpp"
#include "obs/histogram.hpp"
#include "obs/jsonl.hpp"
#include "obs/metrics.hpp"

namespace icb {
namespace {

TEST(Histogram, BucketGeometryIsPowerOfTwo) {
  // Value 0 has its own bucket; value v lands in bucket bit_width(v).
  EXPECT_EQ(obs::Histogram::bucketFor(0), 0u);
  EXPECT_EQ(obs::Histogram::bucketFor(1), 1u);
  EXPECT_EQ(obs::Histogram::bucketFor(2), 2u);
  EXPECT_EQ(obs::Histogram::bucketFor(3), 2u);
  EXPECT_EQ(obs::Histogram::bucketFor(4), 3u);
  EXPECT_EQ(obs::Histogram::bucketFor(1023), 10u);
  EXPECT_EQ(obs::Histogram::bucketFor(1024), 11u);
  EXPECT_EQ(
      obs::Histogram::bucketFor(std::numeric_limits<std::uint64_t>::max()),
      obs::Histogram::kBuckets - 1);

  // Bounds are inclusive and adjacent: [lower(b), upper(b)] tile the range.
  for (std::size_t b = 0; b + 1 < obs::Histogram::kBuckets; ++b) {
    EXPECT_EQ(obs::Histogram::bucketFor(obs::Histogram::bucketUpperBound(b)),
              b);
    EXPECT_EQ(obs::Histogram::bucketFor(obs::Histogram::bucketLowerBound(b)),
              b);
    EXPECT_EQ(obs::Histogram::bucketUpperBound(b) + 1,
              obs::Histogram::bucketLowerBound(b + 1));
  }
  EXPECT_EQ(obs::Histogram::bucketUpperBound(obs::Histogram::kBuckets - 1),
            std::numeric_limits<std::uint64_t>::max());
}

TEST(Histogram, RecordTracksCountSumMinMax) {
  obs::Histogram h;
  EXPECT_TRUE(h.empty());
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 0u);

  for (const std::uint64_t v : {7u, 0u, 1000u, 3u}) h.record(v);
  EXPECT_EQ(h.count(), 4u);
  EXPECT_EQ(h.sum(), 1010u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 1000u);
  EXPECT_EQ(h.bucketCount(0), 1u);   // the 0
  EXPECT_EQ(h.bucketCount(2), 1u);   // 3
  EXPECT_EQ(h.bucketCount(3), 1u);   // 7
  EXPECT_EQ(h.bucketCount(10), 1u);  // 1000
}

TEST(Histogram, MergeIsAssociativeAndOrderIndependent) {
  std::mt19937_64 rng(42);
  std::vector<obs::Histogram> parts(5);
  for (obs::Histogram& part : parts) {
    for (int i = 0; i < 200; ++i) part.record(rng() % 100000);
  }

  obs::Histogram leftFold;
  for (const obs::Histogram& part : parts) leftFold.merge(part);

  obs::Histogram rightFold;
  for (auto it = parts.rbegin(); it != parts.rend(); ++it)
    rightFold.merge(*it);

  // (a+b)+c folded pairwise first, then into an empty accumulator.
  obs::Histogram pair01 = parts[0];
  pair01.merge(parts[1]);
  obs::Histogram pair23 = parts[2];
  pair23.merge(parts[3]);
  obs::Histogram treeFold;
  treeFold.merge(pair01);
  treeFold.merge(pair23);
  treeFold.merge(parts[4]);

  for (const obs::Histogram* h : {&rightFold, &treeFold}) {
    EXPECT_EQ(h->count(), leftFold.count());
    EXPECT_EQ(h->sum(), leftFold.sum());
    EXPECT_EQ(h->min(), leftFold.min());
    EXPECT_EQ(h->max(), leftFold.max());
    for (std::size_t b = 0; b < obs::Histogram::kBuckets; ++b) {
      EXPECT_EQ(h->bucketCount(b), leftFold.bucketCount(b));
    }
  }

  // Merging an empty histogram is the identity.
  obs::Histogram copy = leftFold;
  copy.merge(obs::Histogram{});
  EXPECT_EQ(copy.count(), leftFold.count());
  EXPECT_EQ(copy.min(), leftFold.min());
}

TEST(Histogram, QuantileInterpolatesWithinBucketAccuracy) {
  obs::Histogram h;
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 0.0);  // empty

  // A constant distribution reports the constant exactly (min/max clamp).
  obs::Histogram constant;
  for (int i = 0; i < 100; ++i) constant.record(37);
  EXPECT_DOUBLE_EQ(constant.quantile(0.0), 37.0);
  EXPECT_DOUBLE_EQ(constant.quantile(0.5), 37.0);
  EXPECT_DOUBLE_EQ(constant.quantile(1.0), 37.0);

  // Uniform 1..1000: every estimate must land within the true value's
  // power-of-two bucket (off by at most 2x), and the extremes are exact.
  obs::Histogram uniform;
  for (std::uint64_t v = 1; v <= 1000; ++v) uniform.record(v);
  EXPECT_DOUBLE_EQ(uniform.quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(uniform.quantile(1.0), 1000.0);
  for (const double q : {0.25, 0.5, 0.9, 0.99}) {
    const double truth = 1.0 + q * 999.0;
    const double estimate = uniform.quantile(q);
    EXPECT_GE(estimate, truth / 2.0) << "q=" << q;
    EXPECT_LE(estimate, truth * 2.0) << "q=" << q;
  }
  // Quantiles are monotone in q.
  double last = -1.0;
  for (const double q : {0.0, 0.1, 0.5, 0.9, 0.99, 1.0}) {
    const double estimate = uniform.quantile(q);
    EXPECT_GE(estimate, last);
    last = estimate;
  }
}

TEST(Histogram, SummaryJsonParsesAndMatchesAccessors) {
  obs::Histogram h;
  for (const std::uint64_t v : {1u, 2u, 3u, 400u}) h.record(v);
  const obs::JsonValue parsed = obs::parseJson(h.summaryJson());
  EXPECT_DOUBLE_EQ(parsed.find("count")->numberOr(-1), 4.0);
  EXPECT_DOUBLE_EQ(parsed.find("sum")->numberOr(-1), 406.0);
  EXPECT_DOUBLE_EQ(parsed.find("min")->numberOr(-1), 1.0);
  EXPECT_DOUBLE_EQ(parsed.find("max")->numberOr(-1), 400.0);
  EXPECT_GE(parsed.find("p99")->numberOr(-1), parsed.find("p50")->numberOr(1e9));
}

TEST(Metrics, HistogramsLiveInTheRegistry) {
  obs::MetricsRegistry m;
  EXPECT_TRUE(m.empty());
  m.recordHistogram("t.latency_us", 5);
  m.recordHistogram("t.latency_us", 300);
  EXPECT_FALSE(m.empty());
  ASSERT_NE(m.histogram("t.latency_us"), nullptr);
  EXPECT_EQ(m.histogram("t.latency_us")->count(), 2u);
  EXPECT_EQ(m.histogram("missing"), nullptr);

  obs::Histogram extra;
  extra.record(7);
  m.mergeHistogram("t.latency_us", extra);
  EXPECT_EQ(m.histogram("t.latency_us")->count(), 3u);

  obs::MetricsRegistry other;
  other.recordHistogram("t.latency_us", 9);
  other.recordHistogram("t.other_us", 1);
  m.merge(other);
  EXPECT_EQ(m.histogram("t.latency_us")->count(), 4u);
  ASSERT_NE(m.histogram("t.other_us"), nullptr);

  // toJson embeds the summaries under "histograms".
  const obs::JsonValue parsed = obs::parseJson(m.toJson());
  const obs::JsonValue* histos = parsed.find("histograms");
  ASSERT_NE(histos, nullptr);
  ASSERT_NE(histos->find("t.latency_us"), nullptr);
  EXPECT_DOUBLE_EQ(histos->find("t.latency_us")->find("count")->numberOr(-1),
                   4.0);

  m.clear();
  EXPECT_TRUE(m.empty());
}

TEST(Metrics, CaptureBddFoldsLatencyHistograms) {
  BddStats stats;
  {
    const BddOpTimer timer(stats, BddOp::kAnd);
  }
  stats.gcPauseUs.record(12);
  stats.reorderPauseUs.record(34);

  obs::MetricsRegistry m;
  // captureBdd reads a manager; fold the stat histograms the same way the
  // registry does for a manager-owned BddStats.
  m.mergeHistogram("bdd.apply.and.latency_us",
                   stats.applyLatencyUs[static_cast<std::size_t>(BddOp::kAnd)]);
  m.mergeHistogram("bdd.gc.pause_us", stats.gcPauseUs);
  m.mergeHistogram("bdd.reorder.pause_us", stats.reorderPauseUs);
  EXPECT_EQ(m.histogram("bdd.apply.and.latency_us")->count(), 1u);
  EXPECT_EQ(m.histogram("bdd.gc.pause_us")->sum(), 12u);
  EXPECT_EQ(m.histogram("bdd.reorder.pause_us")->sum(), 34u);
}

}  // namespace
}  // namespace icb
