// Shared helpers for the test suite: truth-table oracles and random
// function generation over small variable counts.
#pragma once

#include <cstdint>
#include <vector>

#include "bdd/bdd.hpp"
#include "util/rng.hpp"

namespace icb::test {

/// Full truth table of `f` over variables [0, nvars): 2^nvars entries,
/// entry m is f evaluated with variable v = bit v of m.
inline std::vector<char> truthTable(const Bdd& f, unsigned nvars) {
  std::vector<char> table(std::size_t{1} << nvars);
  std::vector<char> values(f.manager()->varCount(), 0);
  for (std::size_t m = 0; m < table.size(); ++m) {
    for (unsigned v = 0; v < nvars; ++v) {
      values[v] = static_cast<char>((m >> v) & 1u);
    }
    table[m] = f.eval(values) ? 1 : 0;
  }
  return table;
}

/// Random function over variables [0, nvars) built as an expression tree of
/// the given depth -- exercises all the basic connectives.
inline Bdd randomBdd(BddManager& mgr, unsigned nvars, Rng& rng,
                     unsigned depth = 4) {
  if (depth == 0 || rng.below(8) == 0) {
    switch (rng.below(4)) {
      case 0:
        return mgr.one();
      case 1:
        return mgr.zero();
      default: {
        const Bdd v = mgr.var(static_cast<unsigned>(rng.below(nvars)));
        return rng.coin() ? v : !v;
      }
    }
  }
  const Bdd a = randomBdd(mgr, nvars, rng, depth - 1);
  const Bdd b = randomBdd(mgr, nvars, rng, depth - 1);
  switch (rng.below(5)) {
    case 0:
      return a & b;
    case 1:
      return a | b;
    case 2:
      return a ^ b;
    case 3:
      return !a;
    default: {
      const Bdd c = randomBdd(mgr, nvars, rng, depth - 1);
      return a.ite(b, c);
    }
  }
}

/// A manager pre-loaded with `nvars` variables.
inline BddManager& freshManager(unsigned nvars, BddManager& storage) {
  for (unsigned i = 0; i < nvars; ++i) storage.newVar();
  return storage;
}

}  // namespace icb::test
