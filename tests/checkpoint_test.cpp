// Checkpoint/resume equivalence: for every model and a mix of engine
// methods, a run killed at a checkpoint and resumed from the persisted
// snapshot must reproduce the uninterrupted run exactly -- same verdict,
// same iteration count, and a byte-identical counterexample trace.
//
// The resumed run goes through the full persistence path (saveSnapshot ->
// text -> loadSnapshot into a *fresh* manager with a freshly rebuilt model),
// exactly what the service's on-disk journal does across a process restart.
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "svc/job.hpp"
#include "verif/checkpoint.hpp"
#include "verif/run_all.hpp"

namespace icb {
namespace {

struct Case {
  const char* model;
  Method method;
  unsigned size;
  unsigned width;
  bool injectBug;
};

svc::JobRequest requestFor(const Case& c) {
  svc::JobRequest req;
  req.id = "ckpt-test";
  req.model = c.model;
  req.method = c.method;
  req.size = c.size;
  req.width = c.width;
  req.injectBug = c.injectBug;
  return req;
}

std::string describe(const Case& c) {
  return std::string(c.model) + "/" + methodName(c.method) +
         (c.injectBug ? "/bug" : "");
}

void expectSameOutcome(const Case& c, const EngineResult& base,
                       const EngineResult& resumed) {
  EXPECT_EQ(base.verdict, resumed.verdict) << describe(c);
  EXPECT_EQ(base.iterations, resumed.iterations) << describe(c);
  ASSERT_EQ(base.trace.has_value(), resumed.trace.has_value()) << describe(c);
  if (base.trace.has_value()) {
    // Byte-identical counterexample: same states, same inputs, in order.
    EXPECT_EQ(base.trace->states, resumed.trace->states) << describe(c);
    EXPECT_EQ(base.trace->inputs, resumed.trace->inputs) << describe(c);
  }
}

/// Runs `c` uninterrupted while snapshotting every iteration, then replays
/// from the snapshot taken at roughly the midpoint on a fresh manager/model.
void runEquivalenceCase(const Case& c) {
  const svc::JobRequest req = requestFor(c);

  // Baseline: uninterrupted, capturing every iteration-boundary snapshot as
  // the serialized text the journal would hold.
  std::vector<std::string> snapshots;
  BddManager baseMgr(svc::bddOptionsFor(req));
  ModelInstance baseModel = svc::buildJobModel(baseMgr, req);
  EngineOptions baseOptions = svc::engineOptionsFor(req);
  baseOptions.checkpoint.everyIterations = 1;
  baseOptions.checkpoint.sink = [&](const EngineSnapshot& snap) {
    std::ostringstream os;
    saveSnapshot(os, baseMgr, snap);
    snapshots.push_back(os.str());
  };
  const EngineResult base =
      runMethod(*baseModel.fsm, c.method, baseModel.fdCandidates, baseOptions);
  ASSERT_GE(base.iterations, 2u)
      << describe(c) << ": config converged before any checkpoint fired; "
      << "pick a deeper configuration";
  ASSERT_FALSE(snapshots.empty()) << describe(c);

  // "Kill" at the middle checkpoint: rebuild the world from scratch and
  // resume from the persisted text alone.
  const std::string& chosen = snapshots[snapshots.size() / 2];
  BddManager resMgr(svc::bddOptionsFor(req));
  ModelInstance resModel = svc::buildJobModel(resMgr, req);
  std::istringstream in(chosen);
  const EngineSnapshot snapshot = loadSnapshot(in, resMgr);
  EXPECT_EQ(snapshot.method, c.method) << describe(c);
  EngineOptions resOptions = svc::engineOptionsFor(req);
  resOptions.checkpoint.resume = &snapshot;
  const EngineResult resumed =
      runMethod(*resModel.fsm, c.method, resModel.fdCandidates, resOptions);

  EXPECT_GT(snapshot.iteration, 0u) << describe(c);
  expectSameOutcome(c, base, resumed);
}

// Two (or more) methods per model, chosen so every run takes >= 2
// iterations (a checkpoint must actually fire for resume to be exercised);
// the inject_bug cases end in a counterexample, so the byte-identical
// trace comparison is exercised for both traversal directions.
const Case kCases[] = {
    {"fifo", Method::kFwd, 4, 4, false},
    {"fifo", Method::kFd, 4, 4, false},
    {"mutex", Method::kFwd, 4, 0, false},
    {"mutex", Method::kXici, 5, 0, true},
    {"mutex", Method::kBkwd, 5, 0, true},
    {"network", Method::kFwd, 4, 0, false},
    {"network", Method::kIci, 4, 0, true},
    {"filter", Method::kFd, 2, 4, false},
    {"filter", Method::kBkwd, 2, 4, true},
    {"pipeline", Method::kFwd, 2, 2, false},
    {"pipeline", Method::kXici, 2, 2, false},
};

TEST(CheckpointResume, FifoFwd) { runEquivalenceCase(kCases[0]); }
TEST(CheckpointResume, FifoFd) { runEquivalenceCase(kCases[1]); }
TEST(CheckpointResume, MutexFwd) { runEquivalenceCase(kCases[2]); }
TEST(CheckpointResume, MutexXiciBug) { runEquivalenceCase(kCases[3]); }
TEST(CheckpointResume, MutexBkwdBug) { runEquivalenceCase(kCases[4]); }
TEST(CheckpointResume, NetworkFwd) { runEquivalenceCase(kCases[5]); }
TEST(CheckpointResume, NetworkIciBug) { runEquivalenceCase(kCases[6]); }
TEST(CheckpointResume, FilterFd) { runEquivalenceCase(kCases[7]); }
TEST(CheckpointResume, FilterBkwdBug) { runEquivalenceCase(kCases[8]); }
TEST(CheckpointResume, PipelineFwd) { runEquivalenceCase(kCases[9]); }
TEST(CheckpointResume, PipelineXici) { runEquivalenceCase(kCases[10]); }

TEST(CheckpointResume, EveryCheckpointOfOneRunResumesIdentically) {
  // Stronger sweep on one model: resuming from *any* checkpoint, not just
  // the midpoint, reproduces the baseline.
  const Case c{"network", Method::kFwd, 4, 0, false};
  const svc::JobRequest req = requestFor(c);

  std::vector<std::string> snapshots;
  BddManager baseMgr(svc::bddOptionsFor(req));
  ModelInstance baseModel = svc::buildJobModel(baseMgr, req);
  EngineOptions baseOptions = svc::engineOptionsFor(req);
  baseOptions.checkpoint.everyIterations = 1;
  baseOptions.checkpoint.sink = [&](const EngineSnapshot& snap) {
    std::ostringstream os;
    saveSnapshot(os, baseMgr, snap);
    snapshots.push_back(os.str());
  };
  const EngineResult base =
      runMethod(*baseModel.fsm, c.method, baseModel.fdCandidates, baseOptions);
  ASSERT_GE(snapshots.size(), 3u);

  for (const std::string& text : snapshots) {
    BddManager resMgr(svc::bddOptionsFor(req));
    ModelInstance resModel = svc::buildJobModel(resMgr, req);
    std::istringstream in(text);
    const EngineSnapshot snapshot = loadSnapshot(in, resMgr);
    EngineOptions resOptions = svc::engineOptionsFor(req);
    resOptions.checkpoint.resume = &snapshot;
    const EngineResult resumed = runMethod(*resModel.fsm, c.method,
                                           resModel.fdCandidates, resOptions);
    EXPECT_EQ(base.verdict, resumed.verdict)
        << "from iteration " << snapshot.iteration;
    EXPECT_EQ(base.iterations, resumed.iterations)
        << "from iteration " << snapshot.iteration;
  }
}

TEST(CheckpointResume, ResumedRunSkipsAlreadyJournaledCheckpoint) {
  // A run resumed at iteration k with everyIterations=1 must not re-emit
  // the iteration-k snapshot (it is already journaled); its first emission
  // is k+1.
  const Case c{"fifo", Method::kFwd, 4, 4, false};
  const svc::JobRequest req = requestFor(c);

  std::vector<std::string> snapshots;
  BddManager baseMgr(svc::bddOptionsFor(req));
  ModelInstance baseModel = svc::buildJobModel(baseMgr, req);
  EngineOptions baseOptions = svc::engineOptionsFor(req);
  baseOptions.checkpoint.everyIterations = 1;
  baseOptions.checkpoint.sink = [&](const EngineSnapshot& snap) {
    std::ostringstream os;
    saveSnapshot(os, baseMgr, snap);
    snapshots.push_back(os.str());
  };
  (void)runMethod(*baseModel.fsm, c.method, baseModel.fdCandidates,
                  baseOptions);
  ASSERT_GE(snapshots.size(), 2u);

  BddManager resMgr(svc::bddOptionsFor(req));
  ModelInstance resModel = svc::buildJobModel(resMgr, req);
  std::istringstream in(snapshots.front());
  const EngineSnapshot snapshot = loadSnapshot(in, resMgr);
  std::vector<unsigned> emitted;
  EngineOptions resOptions = svc::engineOptionsFor(req);
  resOptions.checkpoint.everyIterations = 1;
  resOptions.checkpoint.resume = &snapshot;
  resOptions.checkpoint.sink = [&](const EngineSnapshot& snap) {
    emitted.push_back(snap.iteration);
  };
  (void)runMethod(*resModel.fsm, c.method, resModel.fdCandidates, resOptions);
  ASSERT_FALSE(emitted.empty());
  EXPECT_GT(emitted.front(), snapshot.iteration);
}

TEST(CheckpointResume, SnapshotTextRoundTripsThroughSaveLoad) {
  const Case c{"mutex", Method::kFwd, 4, 0, false};
  const svc::JobRequest req = requestFor(c);

  std::vector<std::string> snapshots;
  BddManager mgr(svc::bddOptionsFor(req));
  ModelInstance model = svc::buildJobModel(mgr, req);
  EngineOptions options = svc::engineOptionsFor(req);
  options.checkpoint.everyIterations = 2;
  options.checkpoint.sink = [&](const EngineSnapshot& snap) {
    std::ostringstream os;
    saveSnapshot(os, mgr, snap);
    snapshots.push_back(os.str());
  };
  (void)runMethod(*model.fsm, c.method, model.fdCandidates, options);
  ASSERT_FALSE(snapshots.empty());

  // load -> save on a fresh manager reproduces the same text: the dump is
  // canonical under a fixed variable order.
  BddManager mgr2(svc::bddOptionsFor(req));
  ModelInstance model2 = svc::buildJobModel(mgr2, req);
  std::istringstream in(snapshots.front());
  const EngineSnapshot snapshot = loadSnapshot(in, mgr2);
  std::ostringstream os2;
  saveSnapshot(os2, mgr2, snapshot);
  EXPECT_EQ(os2.str(), snapshots.front());
}

TEST(CheckpointResume, BinaryBddSnapshotsResumeIdenticallyToText) {
  // saveSnapshot's binaryBdds flag swaps the embedded BDD dump for the
  // icbdd-bdd-v3 format; loadSnapshot auto-detects.  Both encodings of the
  // same snapshot must decode to the same resumable state.
  const Case c{"mutex", Method::kXici, 5, 0, true};
  const svc::JobRequest req = requestFor(c);

  std::vector<std::string> textSnaps;
  std::vector<std::string> binarySnaps;
  BddManager baseMgr(svc::bddOptionsFor(req));
  ModelInstance baseModel = svc::buildJobModel(baseMgr, req);
  EngineOptions baseOptions = svc::engineOptionsFor(req);
  baseOptions.checkpoint.everyIterations = 1;
  baseOptions.checkpoint.sink = [&](const EngineSnapshot& snap) {
    std::ostringstream text;
    saveSnapshot(text, baseMgr, snap);
    textSnaps.push_back(text.str());
    std::ostringstream binary;
    saveSnapshot(binary, baseMgr, snap, /*binaryBdds=*/true);
    binarySnaps.push_back(binary.str());
  };
  const EngineResult base =
      runMethod(*baseModel.fsm, c.method, baseModel.fdCandidates, baseOptions);
  ASSERT_GE(base.iterations, 2u);
  ASSERT_EQ(textSnaps.size(), binarySnaps.size());
  ASSERT_FALSE(binarySnaps.empty());

  const std::size_t mid = binarySnaps.size() / 2;
  EXPECT_NE(binarySnaps[mid], textSnaps[mid]);

  // Resume from the binary snapshot: same outcome as the uninterrupted run.
  BddManager resMgr(svc::bddOptionsFor(req));
  ModelInstance resModel = svc::buildJobModel(resMgr, req);
  std::istringstream in(binarySnaps[mid]);
  const EngineSnapshot snapshot = loadSnapshot(in, resMgr);
  EXPECT_EQ(snapshot.method, c.method);
  EngineOptions resOptions = svc::engineOptionsFor(req);
  resOptions.checkpoint.resume = &snapshot;
  const EngineResult resumed =
      runMethod(*resModel.fsm, c.method, resModel.fdCandidates, resOptions);
  expectSameOutcome(c, base, resumed);

  // The binary snapshot re-saved as text reproduces the text snapshot
  // byte-for-byte: both encodings carry identical state.
  BddManager rtMgr(svc::bddOptionsFor(req));
  ModelInstance rtModel = svc::buildJobModel(rtMgr, req);
  std::istringstream rtIn(binarySnaps[mid]);
  const EngineSnapshot rtSnap = loadSnapshot(rtIn, rtMgr);
  std::ostringstream rtOut;
  saveSnapshot(rtOut, rtMgr, rtSnap);
  EXPECT_EQ(rtOut.str(), textSnaps[mid]);
}

TEST(CheckpointResume, LoadSnapshotRejectsGarbage) {
  BddManager mgr;
  {
    std::istringstream in("not-a-checkpoint\n");
    EXPECT_THROW((void)loadSnapshot(in, mgr), BddUsageError);
  }
  {
    std::istringstream in("icbdd-ckpt-v1\nmethod warp\niteration 1\n");
    EXPECT_THROW((void)loadSnapshot(in, mgr), BddUsageError);
  }
  {
    std::istringstream in("icbdd-ckpt-v1\nmethod fwd\n");
    EXPECT_THROW((void)loadSnapshot(in, mgr), BddUsageError);
  }
}

TEST(CheckpointResume, DeadlineKilledRunResumesToBaselineVerdict) {
  // The service's crash story end-to-end at the engine level: a run cut
  // short by a deadline leaves a journaled checkpoint; resuming without the
  // deadline finishes with the uninterrupted run's verdict and count.
  const Case c{"network", Method::kFwd, 4, 0, false};
  const svc::JobRequest req = requestFor(c);

  BddManager baseMgr(svc::bddOptionsFor(req));
  ModelInstance baseModel = svc::buildJobModel(baseMgr, req);
  const EngineResult base = runMethod(*baseModel.fsm, c.method,
                                      baseModel.fdCandidates,
                                      svc::engineOptionsFor(req));

  std::vector<std::string> snapshots;
  BddManager killMgr(svc::bddOptionsFor(req));
  ModelInstance killModel = svc::buildJobModel(killMgr, req);
  EngineOptions killOptions = svc::engineOptionsFor(req);
  killOptions.timeLimitSeconds = 0.015;
  killOptions.checkpoint.everyIterations = 1;
  killOptions.checkpoint.sink = [&](const EngineSnapshot& snap) {
    std::ostringstream os;
    saveSnapshot(os, killMgr, snap);
    snapshots.push_back(os.str());
  };
  const EngineResult killed = runMethod(*killModel.fsm, c.method,
                                        killModel.fdCandidates, killOptions);
  if (killed.verdict != Verdict::kTimeLimit || snapshots.empty()) {
    GTEST_SKIP() << "machine too fast to hit the deadline mid-run";
  }

  BddManager resMgr(svc::bddOptionsFor(req));
  ModelInstance resModel = svc::buildJobModel(resMgr, req);
  std::istringstream in(snapshots.back());
  const EngineSnapshot snapshot = loadSnapshot(in, resMgr);
  EngineOptions resOptions = svc::engineOptionsFor(req);
  resOptions.checkpoint.resume = &snapshot;
  const EngineResult resumed = runMethod(*resModel.fsm, c.method,
                                         resModel.fdCandidates, resOptions);
  EXPECT_EQ(resumed.verdict, base.verdict);
  EXPECT_EQ(resumed.iterations, base.iterations);
}

}  // namespace
}  // namespace icb
