// Word-level arithmetic over BDD bit vectors, checked exhaustively against
// machine integers on small widths (parameterized sweeps).
#include <gtest/gtest.h>

#include "sym/bitvector.hpp"
#include "test_util.hpp"

namespace icb {
namespace {

/// Two symbolic vectors of the given width over fresh variables, interleaved.
struct Pair {
  BitVec a, b;
  unsigned width;
};

Pair makePair(BddManager& mgr, unsigned width) {
  Pair p;
  p.width = width;
  for (unsigned j = 0; j < width; ++j) {
    p.a.push(mgr.var(mgr.newVar()));
    p.b.push(mgr.var(mgr.newVar()));
  }
  return p;
}

/// Evaluates `f` with a/b bound to the given integers.
bool evalWith(const BddManager& mgr, const Bdd& f, unsigned width,
              std::uint64_t av, std::uint64_t bv) {
  std::vector<char> values(mgr.varCount(), 0);
  for (unsigned j = 0; j < width; ++j) {
    values[2 * j] = static_cast<char>((av >> j) & 1u);
    values[2 * j + 1] = static_cast<char>((bv >> j) & 1u);
  }
  return f.eval(values);
}

std::uint64_t evalVec(const BddManager& mgr, const BitVec& v, unsigned width,
                      std::uint64_t av, std::uint64_t bv) {
  std::vector<char> values(mgr.varCount(), 0);
  for (unsigned j = 0; j < width; ++j) {
    values[2 * j] = static_cast<char>((av >> j) & 1u);
    values[2 * j + 1] = static_cast<char>((bv >> j) & 1u);
  }
  return v.evalUint(values);
}

class BitVecSweep : public ::testing::TestWithParam<unsigned> {};

TEST_P(BitVecSweep, AddSubCompareExhaustive) {
  const unsigned w = GetParam();
  BddManager mgr;
  const Pair p = makePair(mgr, w);
  const BitVec sum = add(p.a, p.b);
  const BitVec sumT = addTrunc(p.a, p.b);
  const BitVec diff = subTrunc(p.a, p.b);
  const Bdd equal = eq(p.a, p.b);
  const Bdd le = ule(p.a, p.b);
  const Bdd lt = ult(p.a, p.b);
  ASSERT_EQ(sum.width(), w + 1);
  ASSERT_EQ(sumT.width(), w);

  const std::uint64_t mask = (std::uint64_t{1} << w) - 1;
  for (std::uint64_t av = 0; av <= mask; ++av) {
    for (std::uint64_t bv = 0; bv <= mask; ++bv) {
      EXPECT_EQ(evalVec(mgr, sum, w, av, bv), av + bv);
      EXPECT_EQ(evalVec(mgr, sumT, w, av, bv), (av + bv) & mask);
      EXPECT_EQ(evalVec(mgr, diff, w, av, bv), (av - bv) & mask);
      EXPECT_EQ(evalWith(mgr, equal, w, av, bv), av == bv);
      EXPECT_EQ(evalWith(mgr, le, w, av, bv), av <= bv);
      EXPECT_EQ(evalWith(mgr, lt, w, av, bv), av < bv);
    }
  }
}

TEST_P(BitVecSweep, ConstantComparisonsExhaustive) {
  const unsigned w = GetParam();
  BddManager mgr;
  const Pair p = makePair(mgr, w);
  const std::uint64_t mask = (std::uint64_t{1} << w) - 1;
  for (std::uint64_t k = 0; k <= mask; k += (mask / 5) + 1) {
    const Bdd eqK = eqConst(p.a, k);
    const Bdd leK = uleConst(p.a, k);
    for (std::uint64_t av = 0; av <= mask; ++av) {
      EXPECT_EQ(evalWith(mgr, eqK, w, av, 0), av == k);
      EXPECT_EQ(evalWith(mgr, leK, w, av, 0), av <= k);
    }
  }
}

TEST_P(BitVecSweep, IncDecShiftMux) {
  const unsigned w = GetParam();
  BddManager mgr;
  const Pair p = makePair(mgr, w);
  const BitVec inc = incTrunc(p.a);
  const BitVec dec = decTrunc(p.a);
  const BitVec shr = p.a.shiftRight(1);
  const Bdd sel = eq(p.a, p.b);
  const BitVec m = mux(sel, p.a, p.b);
  const std::uint64_t mask = (std::uint64_t{1} << w) - 1;
  for (std::uint64_t av = 0; av <= mask; ++av) {
    EXPECT_EQ(evalVec(mgr, inc, w, av, 0), (av + 1) & mask);
    EXPECT_EQ(evalVec(mgr, dec, w, av, 0), (av - 1) & mask);
    EXPECT_EQ(evalVec(mgr, shr, w, av, 0), av >> 1);
    for (std::uint64_t bv = 0; bv <= mask; bv += 3) {
      EXPECT_EQ(evalVec(mgr, m, w, av, bv), av == bv ? av : bv);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Widths, BitVecSweep, ::testing::Values(1u, 2u, 3u, 4u, 5u),
                         [](const ::testing::TestParamInfo<unsigned>& paramInfo) {
                           return "w" + std::to_string(paramInfo.param);
                         });

TEST(BitVec, ConstantRoundTrip) {
  BddManager mgr;
  for (std::uint64_t v : {0ull, 1ull, 41ull, 128ull, 255ull}) {
    const BitVec c = BitVec::constant(mgr, 8, v);
    std::vector<char> none;
    EXPECT_EQ(c.evalUint(none), v);
  }
}

TEST(BitVec, ResizeAndDropLow) {
  BddManager mgr;
  const BitVec c = BitVec::constant(mgr, 8, 0b10110100);
  std::vector<char> none;
  EXPECT_EQ(c.resized(10).evalUint(none), 0b10110100u);
  EXPECT_EQ(c.resized(4).evalUint(none), 0b0100u);
  EXPECT_EQ(c.dropLow(2).evalUint(none), 0b101101u);
  EXPECT_EQ(c.dropLow(2).width(), 6u);
}

TEST(BitVec, MixedWidthOperandsZeroExtend) {
  BddManager mgr;
  const BitVec a = BitVec::constant(mgr, 3, 5);
  const BitVec b = BitVec::constant(mgr, 6, 40);
  std::vector<char> none;
  EXPECT_EQ(add(a, b).evalUint(none), 45u);
  EXPECT_TRUE(ult(a, b).isOne());
  EXPECT_TRUE(eq(a, BitVec::constant(mgr, 8, 5)).isOne());
}

TEST(BitVec, UleConstWideConstantIsTrue) {
  BddManager mgr;
  BitVec a;
  for (unsigned j = 0; j < 4; ++j) a.push(mgr.var(mgr.newVar()));
  EXPECT_TRUE(uleConst(a, 1000).isOne());
  EXPECT_TRUE(eqConst(a, 1000).isZero());
}

}  // namespace
}  // namespace icb
