// Vector composition and variable renaming.
#include <gtest/gtest.h>

#include "bdd/bdd.hpp"
#include "test_util.hpp"

namespace icb {
namespace {

TEST(BddCompose, IdentityMapIsIdentity) {
  BddManager mgr;
  for (unsigned i = 0; i < 5; ++i) mgr.newVar();
  Rng rng(3);
  const Bdd f = test::randomBdd(mgr, 5, rng);
  std::vector<Edge> map;
  for (unsigned v = 0; v < 5; ++v) map.push_back(mgr.varEdge(v));
  EXPECT_EQ(f.composeVec(map), f);
}

TEST(BddCompose, ConstantSubstitutionEqualsCofactor) {
  BddManager mgr;
  for (unsigned i = 0; i < 5; ++i) mgr.newVar();
  Rng rng(7);
  for (int i = 0; i < 20; ++i) {
    const Bdd f = test::randomBdd(mgr, 5, rng);
    for (unsigned v = 0; v < 5; ++v) {
      std::vector<Edge> map;
      for (unsigned u = 0; u < 5; ++u) map.push_back(mgr.varEdge(u));
      map[v] = kTrueEdge;
      EXPECT_EQ(f.composeVec(map), f.cofactor(v, true));
      map[v] = kFalseEdge;
      EXPECT_EQ(f.composeVec(map), f.cofactor(v, false));
    }
  }
}

TEST(BddCompose, SimultaneousSwapSubstitution) {
  // Substituting x<->y simultaneously must not cascade.
  BddManager mgr;
  for (unsigned i = 0; i < 2; ++i) mgr.newVar();
  const Bdd x = mgr.var(0);
  const Bdd y = mgr.var(1);
  const Bdd f = x & !y;
  std::vector<Edge> map{mgr.varEdge(1), mgr.varEdge(0)};
  EXPECT_EQ(f.composeVec(map), y & !x);
}

TEST(BddCompose, MatchesTruthTableOracle) {
  BddManager mgr;
  constexpr unsigned kVars = 5;
  for (unsigned i = 0; i < kVars; ++i) mgr.newVar();
  Rng rng(11);
  for (int round = 0; round < 10; ++round) {
    const Bdd f = test::randomBdd(mgr, kVars, rng);
    std::vector<Bdd> subs;
    std::vector<Edge> map;
    for (unsigned v = 0; v < kVars; ++v) {
      subs.push_back(test::randomBdd(mgr, kVars, rng, 3));
      map.push_back(subs.back().edge());
    }
    const Bdd composed = f.composeVec(map);
    // Oracle: evaluate g(x) = f(subs(x)) pointwise.
    std::vector<char> values(mgr.varCount(), 0);
    for (std::size_t m = 0; m < (std::size_t{1} << kVars); ++m) {
      for (unsigned v = 0; v < kVars; ++v) {
        values[v] = static_cast<char>((m >> v) & 1u);
      }
      std::vector<char> inner(mgr.varCount(), 0);
      for (unsigned v = 0; v < kVars; ++v) {
        inner[v] = subs[v].eval(values) ? 1 : 0;
      }
      EXPECT_EQ(composed.eval(values), f.eval(inner));
    }
  }
}

TEST(BddCompose, PermuteRenamesVariables) {
  BddManager mgr;
  for (unsigned i = 0; i < 6; ++i) mgr.newVar();
  const Bdd f = (mgr.var(0) & mgr.var(1)) ^ mgr.var(2);
  // Shift all variables up by 3.
  std::vector<unsigned> perm{3, 4, 5, 3, 4, 5};
  const Bdd g = f.permute(perm);
  EXPECT_EQ(g, (mgr.var(3) & mgr.var(4)) ^ mgr.var(5));
}

TEST(BddCompose, PermuteRoundTrip) {
  BddManager mgr;
  for (unsigned i = 0; i < 8; ++i) mgr.newVar();
  Rng rng(13);
  // Swap pairs (2k, 2k+1) -- an involution.
  std::vector<unsigned> perm;
  for (unsigned v = 0; v < 8; ++v) perm.push_back(v ^ 1u);
  for (int i = 0; i < 10; ++i) {
    const Bdd f = test::randomBdd(mgr, 8, rng);
    EXPECT_EQ(f.permute(perm).permute(perm), f);
  }
}

TEST(BddTransfer, CopiesFunctionsAcrossManagers) {
  BddManager src;
  constexpr unsigned kVars = 8;
  for (unsigned i = 0; i < kVars; ++i) src.newVar("n" + std::to_string(i));
  Rng rng(41);
  for (int round = 0; round < 10; ++round) {
    const Bdd f = test::randomBdd(src, kVars, rng);
    BddManager dst;
    const Bdd g = transferTo(dst, f);
    EXPECT_EQ(dst.varCount(), kVars);
    EXPECT_EQ(dst.varName(2), "n2");
    EXPECT_EQ(test::truthTable(g, kVars), test::truthTable(f, kVars));
  }
}

TEST(BddTransfer, SameManagerIsIdentity) {
  BddManager mgr;
  mgr.newVar();
  const Bdd f = mgr.var(0);
  EXPECT_EQ(transferTo(mgr, f), f);
}

TEST(BddTransfer, WorksAcrossDifferentOrders) {
  BddManager src;
  for (unsigned i = 0; i < 6; ++i) src.newVar();
  Rng rng(43);
  const Bdd f = test::randomBdd(src, 6, rng, 5);
  const auto table = test::truthTable(f, 6);
  src.sift();  // scramble the source order
  BddManager dst;
  const Bdd g = transferTo(dst, f);
  EXPECT_EQ(test::truthTable(g, 6), table);
  dst.checkInvariants();
}

}  // namespace
}  // namespace icb
