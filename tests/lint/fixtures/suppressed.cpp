// Suppression fixture: the L1 violation on the line after the marker is
// counted but not reported, and the summary shows the suppression total.
#include <cstdio>

void engineLoop() {
  ICBDD_LINT_SUPPRESS(L1, "fixture: demonstrates the counted escape hatch");
  printf("intentional\n");
}
