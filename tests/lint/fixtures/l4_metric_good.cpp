// L4 good fixture: cataloged names, including the dynamic-composition
// prefix form (a literal ending in '.' concatenated with an op name).
void record(MetricsRegistry& metrics, const char* opName) {
  metrics.add("svc.jobs.accepted");
  metrics.setGauge("svc.queue.depth", 3.0);
  metrics.add(std::string("bdd.cache.") + opName + ".lookups");
}
