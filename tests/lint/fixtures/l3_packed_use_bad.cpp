// L3 bad fixture: naming the packed node type outside src/bdd + src/check.
// The node representation is not a stable API; only Edge/Bdd handles are.
#include "bdd/node_store.hpp"

std::size_t nodeBytes(std::size_t count) {
  return count * sizeof(icb::PackedNode);
}
