// L3 bad fixture: packed node words leaking through a public section.  The
// word0/word1 packing is NodeStore-private; public surfaces speak
// (var, hi, lo, next) so the layout can change without touching callers.
#pragma once

class NodeStore {
 public:
  std::uint64_t rawWord0(unsigned index) const { return nodes_[index].word0; }
  void setWord1(unsigned index, std::uint64_t word1);

 private:
  std::uint64_t word0 = 0;  // fine: private packed state
};
