// L4 bad fixture: histogram kind mismatches against the typed
// icbdd-metric-catalog block.  Line 1: a histogram writer given a name the
// catalog does not know.  Line 2: a histogram writer given a name the
// catalog types as a counter.  Line 3: a scalar writer given a
// histogram-typed name (distribution silently collapsed to a count).
void record(MetricsRegistry& metrics, const Histogram& h) {
  metrics.recordHistogram("svc.job.bogus_us", 7);
  metrics.mergeHistogram("bdd.gc.runs", h);
  metrics.add("svc.job.run_us");
}
