// L4 good fixture: histogram writers with histogram-typed catalog names,
// including the dynamic-composition prefix form for the per-op apply
// latency family.
void record(MetricsRegistry& metrics, const Histogram& h, const char* op) {
  metrics.recordHistogram("svc.job.queue_wait_us", 42);
  metrics.mergeHistogram("bdd.gc.pause_us", h);
  metrics.mergeHistogram(std::string("bdd.apply.") + op + ".latency_us", h);
}
