// L2 good fixture: both calls sit under an ICBDD_SAFE_POINT marker, the
// declared iteration boundary where no edge-level results are live.
void iterate(BddManager& mgr, const EngineOptions& options, unsigned iter) {
  CheckpointEmitter ckpt(mgr, options.checkpoint, Method::kFwd);
  ICBDD_SAFE_POINT("fixture loop head: all state rooted in handles");
  ckpt.emit(iter, {});
  ICBDD_SAFE_POINT("fixture iteration boundary: no raw edges outstanding");
  mgr.autoReorderIfNeeded();
}
