// L2 bad fixture: reordering and checkpoint emission with no registered
// safe point.  Mid-iteration, raw Edge results may still be live; a sift
// or a snapshot here observes (or invalidates) incoherent state.
void iterate(BddManager& mgr, const EngineOptions& options, unsigned iter) {
  CheckpointEmitter ckpt(mgr, options.checkpoint, Method::kFwd);
  mgr.autoReorderIfNeeded();
  ckpt.emit(iter, {});
}
