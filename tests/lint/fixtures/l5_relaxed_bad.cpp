// L5 bad fixture: a naked relaxed load with no justification tag.
#include <atomic>

std::atomic<int> g_counter{0};

int peek() { return g_counter.load(std::memory_order_relaxed); }
