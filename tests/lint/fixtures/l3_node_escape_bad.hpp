// L3 bad fixture: interior node pointers in a public section.  Nodes move
// under GC compaction and reordering; only Edge/Bdd handles are stable.
#pragma once

class BddManager {
 public:
  Node* lookup(unsigned var, Edge hi, Edge lo);
  const Node& nodeAt(unsigned index) const;

 private:
  Node* freeHead_ = nullptr;  // fine: private interior state
};
