// L3 good fixture: the public API deals in Edge/Bdd handles only; the
// interior Node type stays in the private section.
#pragma once

class BddManager {
 public:
  Edge varEdge(unsigned var) const;
  Bdd var(unsigned v);

 private:
  struct Node {
    unsigned var;
    Edge hi;
    Edge lo;
  };
  Node* nodes_ = nullptr;
};
