// L1 bad fixture: raw I/O and sleeping inside an engine iteration.
// Neither routes through the deadline-credit helpers, so a resource-capped
// run would burn deadline on I/O stalls and flip to a spurious timeout.
#include <chrono>
#include <cstdio>
#include <thread>

void engineLoop(int iterations) {
  for (int i = 0; i < iterations; ++i) {
    printf("iteration %d\n", i);
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
}
