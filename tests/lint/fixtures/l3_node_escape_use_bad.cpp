// L3 bad fixture: naming the interior node type outside src/bdd and the
// src/check audit layer.
#include "bdd/manager.hpp"

unsigned peekVar(BddManager& mgr, unsigned index) {
  const BddManager::Node& n = rawNodes(mgr)[index];
  return n.var;
}
