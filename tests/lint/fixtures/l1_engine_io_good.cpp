// L1 good fixture: emission routes through the trace session, whose write
// path credits its wall time back to the manager's deadline.
void engineLoop(TraceSession& trace, int iterations) {
  for (int i = 0; i < iterations; ++i) {
    if (trace.enabled()) {
      trace.phaseBegin("image", static_cast<unsigned>(i));
      trace.phaseEnd("image", static_cast<unsigned>(i), 0, 0, {});
    }
  }
}
