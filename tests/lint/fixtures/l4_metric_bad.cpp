// L4 bad fixture: metric names that are not in the icbdd-metric-catalog
// block of docs/observability.md.  Uncataloged names silently vanish from
// dashboards and the bench JSON schema.
void record(MetricsRegistry& metrics) {
  metrics.add("svc.bogus.counter");
  metrics.setGauge("bdd.cache.typo_rate", 1.0);
}
