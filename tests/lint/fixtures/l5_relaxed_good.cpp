// L5 good fixture: the relaxed order carries its justification in the
// comment block directly above the (wrapped) statement.
#include <atomic>

std::atomic<int> g_counter{0};

int peek() {
  // relaxed: standalone counter -- no other data is published with it, so
  // ordering against the writer's other stores is irrelevant.
  return static_cast<int>(
      g_counter.load(std::memory_order_relaxed));
}
