#!/usr/bin/env python3
"""Fixture corpus driver for ci/lint/icbdd_lint.py.

Runs the lint in --fixture mode on every file under fixtures/ and asserts
the EXACT rule ids produced: bad fixtures must trip precisely their seeded
rule (no more, no less), good fixtures must be clean, and the suppression
fixture must report zero findings but a counted suppression.  Registered
with ctest as `lint_fixtures` (tests/CMakeLists.txt).
"""

from __future__ import annotations

import re
import subprocess
import sys
from pathlib import Path

HERE = Path(__file__).resolve().parent
ROOT = HERE.parents[1]
LINT = ROOT / "ci" / "lint" / "icbdd_lint.py"
FIXTURES = HERE / "fixtures"

# fixture file -> exact multiset of rule ids it must produce.
CASES = {
    "l1_engine_io_bad.cpp": ["L1", "L1"],
    "l1_engine_io_good.cpp": [],
    "l2_safe_point_bad.cpp": ["L2", "L2"],
    "l2_safe_point_good.cpp": [],
    "l3_node_escape_bad.hpp": ["L3", "L3"],
    "l3_node_escape_use_bad.cpp": ["L3"],
    "l3_node_escape_good.hpp": [],
    "l3_packed_word_bad.hpp": ["L3", "L3"],
    "l3_packed_use_bad.cpp": ["L3"],
    "l4_metric_bad.cpp": ["L4", "L4"],
    "l4_metric_good.cpp": [],
    "l4_histogram_bad.cpp": ["L4", "L4", "L4"],
    "l4_histogram_good.cpp": [],
    "l5_relaxed_bad.cpp": ["L5"],
    "l5_relaxed_good.cpp": [],
}

FINDING = re.compile(r"^.+?:\d+: (L[1-5]): ", re.M)


def run_lint(*args: str) -> subprocess.CompletedProcess:
    return subprocess.run([sys.executable, str(LINT), *args],
                          capture_output=True, text=True, check=False)


def main() -> int:
    failures: list[str] = []

    covered = {name for name in CASES} | {"suppressed.cpp"}
    on_disk = {p.name for p in FIXTURES.iterdir() if p.is_file()}
    for missing in sorted(covered - on_disk):
        failures.append(f"fixture listed but not on disk: {missing}")
    for unlisted in sorted(on_disk - covered):
        failures.append(f"fixture on disk but not asserted: {unlisted}")

    for name, expected in sorted(CASES.items()):
        proc = run_lint("--fixture", str(FIXTURES / name))
        got = FINDING.findall(proc.stdout)
        want_rc = 1 if expected else 0
        if sorted(got) != sorted(expected):
            failures.append(f"{name}: expected rules {expected}, got {got}\n"
                            f"--- lint output ---\n{proc.stdout}")
        elif proc.returncode != want_rc:
            failures.append(f"{name}: expected exit {want_rc}, "
                            f"got {proc.returncode}")

    # The escape hatch: finding suppressed, suppression counted.
    proc = run_lint("--fixture", str(FIXTURES / "suppressed.cpp"))
    if FINDING.findall(proc.stdout) or proc.returncode != 0:
        failures.append("suppressed.cpp: expected no findings / exit 0, got "
                        f"exit {proc.returncode}\n{proc.stdout}")
    elif "1 suppression" not in proc.stdout:
        failures.append("suppressed.cpp: summary does not count the "
                        f"suppression:\n{proc.stdout}")

    if failures:
        print(f"lint_fixtures: {len(failures)} failure(s)")
        for failure in failures:
            print(f"\nFAIL: {failure}")
        return 1
    print(f"lint_fixtures: {len(CASES) + 1} fixtures OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
