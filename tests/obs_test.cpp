// The observability layer in isolation: JSONL writer/reader round trips,
// MetricsRegistry semantics, TraceSink accounting, and the zero-allocation
// guarantee of the disabled trace path.
#include <atomic>
#include <cstdlib>
#include <new>
#include <sstream>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "bdd/bdd.hpp"
#include "obs/jsonl.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

// ---------------------------------------------------------------------------
// Counting global operator new: the disabled-trace-path test asserts that
// engines' emit sites allocate NOTHING when no sink is installed.  The
// replacement is binary-wide but only adds one relaxed counter bump.

namespace {
std::atomic<std::uint64_t> g_allocations{0};
}  // namespace

// The replacement operators are intentionally malloc/free-backed; GCC's
// -Wmismatched-new-delete cannot see that the pair is consistent once the
// sanitizer builds inline both sides, so silence it for these definitions.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
void* operator new(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size == 0 ? 1 : size)) return p;
  throw std::bad_alloc();
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
#pragma GCC diagnostic pop

namespace icb {
namespace {

using obs::JsonObject;
using obs::JsonValue;

TEST(Jsonl, EscapesControlCharactersAndQuotes) {
  EXPECT_EQ(obs::jsonEscape("plain"), "plain");
  EXPECT_EQ(obs::jsonEscape("a\"b"), "a\\\"b");
  EXPECT_EQ(obs::jsonEscape("back\\slash"), "back\\\\slash");
  EXPECT_EQ(obs::jsonEscape("line\nbreak\ttab"), "line\\nbreak\\ttab");
}

TEST(Jsonl, NumberFormattingClampsNonFinite) {
  EXPECT_EQ(obs::jsonNumber(0.0), "0");
  EXPECT_EQ(obs::jsonNumber(1.5), "1.5");
  EXPECT_EQ(obs::jsonNumber(std::numeric_limits<double>::infinity()), "0");
  EXPECT_EQ(obs::jsonNumber(std::numeric_limits<double>::quiet_NaN()), "0");
}

TEST(Jsonl, ObjectBuilderRoundTripsThroughParser) {
  const std::uint64_t sizes[] = {12, 7, 3};
  const std::string doc =
      std::move(JsonObject()
                    .put("ev", "phase_end")
                    .put("phase", "back_image")
                    .put("iter", std::uint64_t{4})
                    .put("wall_s", 0.25)
                    .put("ok", true)
                    .put("delta", std::int64_t{-3})
                    .putRaw("conjunct_sizes", obs::jsonArray(sizes)))
          .str();

  const JsonValue v = obs::parseJson(doc);
  ASSERT_EQ(v.kind, JsonValue::Kind::kObject);
  EXPECT_EQ(v.find("ev")->textOr(""), "phase_end");
  EXPECT_EQ(v.find("phase")->textOr(""), "back_image");
  EXPECT_DOUBLE_EQ(v.find("iter")->numberOr(-1), 4.0);
  EXPECT_DOUBLE_EQ(v.find("wall_s")->numberOr(-1), 0.25);
  EXPECT_TRUE(v.find("ok")->boolean);
  EXPECT_DOUBLE_EQ(v.find("delta")->numberOr(0), -3.0);
  const JsonValue* arr = v.find("conjunct_sizes");
  ASSERT_NE(arr, nullptr);
  ASSERT_EQ(arr->items.size(), 3u);
  EXPECT_DOUBLE_EQ(arr->items[1].numberOr(0), 7.0);
  EXPECT_EQ(v.find("missing"), nullptr);
}

TEST(Jsonl, StringEscapesRoundTrip) {
  const std::string doc =
      std::move(JsonObject().put("s", "a\"b\\c\nd\te")).str();
  const JsonValue v = obs::parseJson(doc);
  EXPECT_EQ(v.find("s")->textOr(""), "a\"b\\c\nd\te");
  // \uXXXX escapes up to 0x7f are decoded.
  EXPECT_EQ(obs::parseJson("\"\\u0041\\u002f\"").textOr(""), "A/");
}

TEST(Jsonl, ParserRejectsMalformedInput) {
  EXPECT_THROW((void)obs::parseJson("{"), std::runtime_error);
  EXPECT_THROW((void)obs::parseJson("{\"a\":}"), std::runtime_error);
  EXPECT_THROW((void)obs::parseJson("[1,2,]"), std::runtime_error);
  EXPECT_THROW((void)obs::parseJson("{} trailing"), std::runtime_error);
  EXPECT_THROW((void)obs::parseJson("nul"), std::runtime_error);
}

TEST(Jsonl, ParseJsonLinesSkipsBlankLines) {
  std::istringstream in("{\"a\":1}\n\n{\"a\":2}\n");
  const std::vector<JsonValue> lines = obs::parseJsonLines(in);
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_DOUBLE_EQ(lines[1].find("a")->numberOr(0), 2.0);
}

TEST(Metrics, CountersAddAndGaugesTrackMax) {
  obs::MetricsRegistry m;
  EXPECT_TRUE(m.empty());
  m.add("a.count", 2);
  m.add("a.count", 3);
  m.add("zero", 0);  // zero deltas never materialize a counter
  EXPECT_EQ(m.counter("a.count"), 5u);
  EXPECT_EQ(m.counter("zero"), 0u);
  EXPECT_EQ(m.counters().count("zero"), 0u);

  m.setGauge("g", 2.0);
  m.setGauge("g", 1.0);
  EXPECT_DOUBLE_EQ(m.gauge("g"), 1.0);
  m.setGaugeMax("peak", 3.0);
  m.setGaugeMax("peak", 2.0);
  EXPECT_DOUBLE_EQ(m.gauge("peak"), 3.0);

  obs::MetricsRegistry other;
  other.add("a.count", 1);
  other.setGauge("g", 9.0);
  m.merge(other);
  EXPECT_EQ(m.counter("a.count"), 6u);
  EXPECT_DOUBLE_EQ(m.gauge("g"), 9.0);

  m.clear();
  EXPECT_TRUE(m.empty());
}

TEST(SharedMetricsConcurrency, UpdatesFromManyThreadsAreLossless) {
  obs::SharedMetrics shared;
  constexpr int kThreads = 4;
  constexpr int kPerThread = 1000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&shared, t] {
      obs::MetricsRegistry local;
      for (int i = 0; i < kPerThread; ++i) {
        shared.add("svc.jobs.accepted");
        shared.setGaugeMax("svc.queue.peak_depth",
                           static_cast<double>(t * kPerThread + i));
        local.add("svc.checkpoints.saved");
      }
      shared.merge(local);
    });
  }
  for (std::thread& t : threads) t.join();

  const obs::MetricsRegistry snap = shared.snapshot();
  EXPECT_EQ(snap.counter("svc.jobs.accepted"),
            static_cast<std::uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(snap.counter("svc.checkpoints.saved"),
            static_cast<std::uint64_t>(kThreads) * kPerThread);
  EXPECT_DOUBLE_EQ(snap.gauge("svc.queue.peak_depth"),
                   static_cast<double>(kThreads * kPerThread - 1));
}

TEST(SharedMetricsConcurrency, SnapshotIsAPointInTimeCopy) {
  obs::SharedMetrics shared;
  shared.add("svc.jobs.accepted", 2);
  const obs::MetricsRegistry before = shared.snapshot();
  shared.add("svc.jobs.accepted", 3);
  EXPECT_EQ(before.counter("svc.jobs.accepted"), 2u);
  EXPECT_EQ(shared.snapshot().counter("svc.jobs.accepted"), 5u);
}

TEST(Metrics, ToJsonRoundTrips) {
  obs::MetricsRegistry m;
  m.add("bdd.cache.hits", 7);
  m.setGauge("bdd.cache.hit_rate", 0.5);
  const JsonValue v = obs::parseJson(m.toJson());
  EXPECT_DOUBLE_EQ(v.find("counters")->find("bdd.cache.hits")->numberOr(0), 7.0);
  EXPECT_DOUBLE_EQ(v.find("gauges")->find("bdd.cache.hit_rate")->numberOr(0), 0.5);
}

TEST(Metrics, CaptureBddFoldsManagerStats) {
  BddManager mgr;
  const Bdd a = mgr.var(mgr.newVar());
  const Bdd b = mgr.var(mgr.newVar());
  const Bdd f = a & b;
  (void)(f ^ a);
  (void)f.restrictBy(a);

  obs::MetricsRegistry m;
  m.captureBdd(mgr);
  EXPECT_GT(m.counter("bdd.nodes_created"), 0u);
  EXPECT_GT(m.counter("bdd.cache.lookups"), 0u);
  EXPECT_EQ(m.counter("bdd.cache.and.lookups"),
            mgr.stats().cacheFor(BddOp::kAnd).lookups);
  EXPECT_EQ(m.counter("bdd.restrict.calls"), mgr.stats().restrictCalls);
  EXPECT_GT(m.gauge("bdd.peak_nodes"), 0.0);
}

TEST(TraceSink, CountsLinesAndWriteTime) {
  std::ostringstream out;
  obs::TraceSink sink(out);
  sink.writeLine("{\"a\":1}");
  sink.writeLine("{\"a\":2}");
  sink.flush();
  EXPECT_EQ(sink.linesWritten(), 2u);
  EXPECT_GE(sink.writeSeconds(), 0.0);
  EXPECT_EQ(out.str(), "{\"a\":1}\n{\"a\":2}\n");
}

TEST(TraceSink, FileCtorThrowsOnUnopenablePath) {
  EXPECT_THROW(obs::TraceSink("/nonexistent-dir-xyz/trace.jsonl"),
               std::runtime_error);
}

TEST(TraceSession, SpansRecordWallTimeAndNest) {
  std::ostringstream out;
  obs::TraceSink sink(out);
  obs::TraceSession session(&sink);
  ASSERT_TRUE(session.enabled());

  session.runBegin("XICI", "unit test");
  session.phaseBegin("outer", 1);
  session.phaseBegin("inner", 1);
  const std::uint64_t innerSizes[] = {5};
  session.phaseEnd("inner", 1, 10, 10, innerSizes);
  const std::uint64_t outerSizes[] = {4, 3};
  session.phaseEnd("outer", 1, 20, 20, outerSizes);
  session.runEnd("holds", 1, 0.5, 7, 20);

  std::istringstream in(out.str());
  const std::vector<JsonValue> events = obs::parseJsonLines(in);
  ASSERT_EQ(events.size(), 6u);
  EXPECT_EQ(events[0].find("ev")->textOr(""), "run_begin");
  EXPECT_EQ(events[0].find("detail")->textOr(""), "unit test");
  EXPECT_EQ(events[1].find("phase")->textOr(""), "outer");
  EXPECT_EQ(events[3].find("ev")->textOr(""), "phase_end");
  EXPECT_EQ(events[3].find("phase")->textOr(""), "inner");
  EXPECT_GE(events[3].find("wall_s")->numberOr(-1), 0.0);
  // Inner span closed first; outer's wall time covers it.
  EXPECT_GE(events[4].find("wall_s")->numberOr(-1),
            events[3].find("wall_s")->numberOr(1e9));
  EXPECT_EQ(events[4].find("conjunct_sizes")->items.size(), 2u);
  EXPECT_DOUBLE_EQ(events[4].find("iterate_nodes")->numberOr(0), 7.0);
  EXPECT_EQ(events[5].find("verdict")->textOr(""), "holds");
  // The shared trace clock is monotone across events.
  double last = -1.0;
  for (const JsonValue& ev : events) {
    const double t = ev.find("t")->numberOr(-1);
    EXPECT_GE(t, last);
    last = t;
  }
}

TEST(TraceSession, DisabledSessionIsInertAndAllocationFree) {
  obs::setDefaultTraceSink(nullptr);
  ASSERT_FALSE(obs::traceEnabled());
  obs::TraceSession session;  // resolves to the (null) process sink
  EXPECT_FALSE(session.enabled());

  const std::uint64_t sizes[] = {1, 2};
  const std::uint64_t before = g_allocations.load(std::memory_order_relaxed);
  for (int i = 0; i < 1000; ++i) {
    session.phaseBegin("image", 1);
    session.phaseEnd("image", 1, 0, 0, sizes);
    session.runBegin("Fwd");
    session.runEnd("holds", 0, 0.0, 0, 0);
    if (obs::traceEnabled()) FAIL() << "sink appeared out of nowhere";
  }
  const std::uint64_t after = g_allocations.load(std::memory_order_relaxed);
  EXPECT_EQ(after, before) << "disabled trace path must not allocate";
}

TEST(TraceSession, EnvelopeCarriesWorkerAndJobAttribution) {
  std::ostringstream out;
  obs::TraceSink sink(out);
  obs::TraceSession session(&sink, nullptr, 3, "job-42");
  EXPECT_EQ(session.worker(), 3);
  EXPECT_EQ(session.job(), "job-42");
  session.runBegin("XICI");
  session.emit("custom", obs::JsonObject().put("k", 1));

  std::istringstream in(out.str());
  const std::vector<JsonValue> events = obs::parseJsonLines(in);
  ASSERT_EQ(events.size(), 2u);
  for (const JsonValue& ev : events) {
    EXPECT_DOUBLE_EQ(ev.find("worker")->numberOr(-1), 3.0);
    EXPECT_EQ(ev.find("job")->textOr(""), "job-42");
  }

  // Defaulted attribution omits both fields -- the envelope is unchanged
  // for every pre-existing consumer.
  std::ostringstream plainOut;
  obs::TraceSink plainSink(plainOut);
  obs::TraceSession plain(&plainSink);
  plain.runBegin("Fwd");
  std::istringstream plainIn(plainOut.str());
  const std::vector<JsonValue> plainEvents = obs::parseJsonLines(plainIn);
  ASSERT_EQ(plainEvents.size(), 1u);
  EXPECT_EQ(plainEvents[0].find("worker"), nullptr);
  EXPECT_EQ(plainEvents[0].find("job"), nullptr);
}

TEST(TraceSession, ExplicitSinkOverridesProcessSink) {
  std::ostringstream processOut;
  obs::TraceSink processSink(processOut);
  obs::setDefaultTraceSink(&processSink);

  std::ostringstream runOut;
  obs::TraceSink runSink(runOut);
  obs::TraceSession session(&runSink);
  session.runBegin("Bkwd");

  obs::setDefaultTraceSink(nullptr);
  EXPECT_EQ(processSink.linesWritten(), 0u);
  EXPECT_EQ(runSink.linesWritten(), 1u);
}

}  // namespace
}  // namespace icb
