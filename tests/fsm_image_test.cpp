// Symbolic machine layer: Image / PreImage / BackImage against explicit
// enumeration oracles on random small machines; Theorem 1; duality.
#include <gtest/gtest.h>

#include <set>

#include "sym/image.hpp"
#include "test_util.hpp"

namespace icb {
namespace {

/// A random machine over `bits` state bits and `ins` input bits.
struct RandomMachine {
  std::unique_ptr<Fsm> fsm;
  unsigned bits;
  unsigned ins;
};

RandomMachine makeRandom(BddManager& mgr, unsigned bits, unsigned ins,
                         Rng& rng) {
  RandomMachine m;
  m.fsm = std::make_unique<Fsm>(mgr);
  m.bits = bits;
  m.ins = ins;
  VarManager& vars = m.fsm->vars();
  for (unsigned i = 0; i < ins; ++i) vars.addInputBit("i" + std::to_string(i));
  for (unsigned b = 0; b < bits; ++b) vars.addStateBit("s" + std::to_string(b));
  const unsigned nvars = mgr.varCount();
  for (unsigned b = 0; b < bits; ++b) {
    // Next function over cur-state and input vars only (never nxt vars).
    Bdd f;
    do {
      f = test::randomBdd(mgr, nvars, rng, 3);
      bool ok = true;
      for (const unsigned v : f.support()) {
        bool legal = false;
        for (unsigned i = 0; i < bits; ++i) {
          if (v == vars.stateBit(i).cur) legal = true;
        }
        for (const unsigned iv : vars.inputVars()) {
          if (v == iv) legal = true;
        }
        if (!legal) ok = false;
      }
      if (ok) break;
    } while (true);
    m.fsm->setNext(b, f);
  }
  m.fsm->setInit(mgr.one());  // not used in these tests
  m.fsm->addInvariant(mgr.one());
  return m;
}

/// Explicit-state one-step successors of the states in `fromStates`.
std::set<unsigned> explicitImage(const RandomMachine& m,
                                 const std::set<unsigned>& fromStates) {
  BddManager& mgr = m.fsm->mgr();
  std::set<unsigned> out;
  const VarManager& vars = m.fsm->vars();
  for (const unsigned s : fromStates) {
    for (unsigned in = 0; in < (1u << m.ins); ++in) {
      std::vector<char> values(mgr.varCount(), 0);
      for (unsigned b = 0; b < m.bits; ++b) {
        values[vars.stateBit(b).cur] = static_cast<char>((s >> b) & 1u);
      }
      for (unsigned i = 0; i < m.ins; ++i) {
        values[vars.inputVars()[i]] = static_cast<char>((in >> i) & 1u);
      }
      const std::vector<char> next = m.fsm->step(values);
      unsigned t = 0;
      for (unsigned b = 0; b < m.bits; ++b) {
        if (next[vars.stateBit(b).cur] != 0) t |= 1u << b;
      }
      out.insert(t);
    }
  }
  return out;
}

/// Decodes a state-set BDD (over cur vars) into explicit state numbers.
std::set<unsigned> explicitStates(const RandomMachine& m, const Bdd& z) {
  std::set<unsigned> out;
  BddManager& mgr = m.fsm->mgr();
  const VarManager& vars = m.fsm->vars();
  for (unsigned s = 0; s < (1u << m.bits); ++s) {
    std::vector<char> values(mgr.varCount(), 0);
    for (unsigned b = 0; b < m.bits; ++b) {
      values[vars.stateBit(b).cur] = static_cast<char>((s >> b) & 1u);
    }
    if (z.eval(values)) out.insert(s);
  }
  return out;
}

Bdd encodeStates(const RandomMachine& m, const std::set<unsigned>& states) {
  BddManager& mgr = m.fsm->mgr();
  const VarManager& vars = m.fsm->vars();
  Bdd out = mgr.zero();
  for (const unsigned s : states) {
    Bdd cube = mgr.one();
    for (unsigned b = 0; b < m.bits; ++b) {
      const unsigned v = vars.stateBit(b).cur;
      cube &= ((s >> b) & 1u) != 0 ? mgr.var(v) : mgr.nvar(v);
    }
    out |= cube;
  }
  return out;
}

class ImageSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ImageSweep, ImageMatchesExplicitEnumeration) {
  BddManager mgr;
  Rng rng(GetParam());
  RandomMachine m = makeRandom(mgr, 4, 2, rng);
  ImageComputer imager(*m.fsm);
  for (int round = 0; round < 8; ++round) {
    std::set<unsigned> from;
    for (unsigned s = 0; s < 16; ++s) {
      if (rng.coin()) from.insert(s);
    }
    const Bdd z = encodeStates(m, from);
    EXPECT_EQ(explicitStates(m, imager.image(z)), explicitImage(m, from));
  }
}

TEST_P(ImageSweep, MonolithicAndClusteredImagesAgree) {
  BddManager mgr;
  Rng rng(GetParam() * 3 + 1);
  RandomMachine m = makeRandom(mgr, 5, 2, rng);
  ImageOptions mono;
  mono.monolithic = true;
  ImageOptions tiny;
  tiny.clusterCap = 1;  // force one cluster per conjunct
  ImageComputer a(*m.fsm, mono);
  ImageComputer b(*m.fsm, tiny);
  ImageComputer c(*m.fsm);
  EXPECT_GT(b.clusterCount(), a.clusterCount());
  for (int round = 0; round < 6; ++round) {
    const Bdd z = test::randomBdd(mgr, mgr.varCount(), rng, 3)
                      .exists(m.fsm->vars().inputCube())
                      .exists(m.fsm->vars().nxtCube());
    EXPECT_EQ(a.image(z), b.image(z));
    EXPECT_EQ(a.image(z), c.image(z));
  }
}

TEST_P(ImageSweep, RelationalImagesMatchComposeOracle) {
  BddManager mgr;
  Rng rng(GetParam() * 29 + 17);
  RandomMachine m = makeRandom(mgr, 5, 2, rng);
  for (int round = 0; round < 8; ++round) {
    std::set<unsigned> target;
    for (unsigned s = 0; s < 32; ++s) {
      if (rng.coin()) target.insert(s);
    }
    const Bdd z = encodeStates(m, target);
    EXPECT_EQ(m.fsm->preImage(z), m.fsm->preImageByCompose(z));
    EXPECT_EQ(m.fsm->backImage(z), m.fsm->backImageByCompose(z));
  }
}

TEST_P(ImageSweep, BackImageIsDualOfPreImage) {
  BddManager mgr;
  Rng rng(GetParam() * 7 + 3);
  RandomMachine m = makeRandom(mgr, 4, 2, rng);
  for (int round = 0; round < 8; ++round) {
    std::set<unsigned> target;
    for (unsigned s = 0; s < 16; ++s) {
      if (rng.coin()) target.insert(s);
    }
    const Bdd z = encodeStates(m, target);
    EXPECT_EQ(m.fsm->backImage(z), !m.fsm->preImage(!z));
  }
}

TEST_P(ImageSweep, PreImageMatchesExplicitEnumeration) {
  BddManager mgr;
  Rng rng(GetParam() * 13 + 7);
  RandomMachine m = makeRandom(mgr, 4, 2, rng);
  for (int round = 0; round < 6; ++round) {
    std::set<unsigned> target;
    for (unsigned s = 0; s < 16; ++s) {
      if (rng.coin()) target.insert(s);
    }
    const Bdd z = encodeStates(m, target);
    // Explicit PreImage: states with at least one successor in target.
    std::set<unsigned> expected;
    for (unsigned s = 0; s < 16; ++s) {
      const auto succs = explicitImage(m, {s});
      for (const unsigned t : succs) {
        if (target.count(t) != 0) {
          expected.insert(s);
          break;
        }
      }
    }
    EXPECT_EQ(explicitStates(m, m.fsm->preImage(z)), expected);
  }
}

TEST_P(ImageSweep, BackImageMatchesExplicitEnumeration) {
  BddManager mgr;
  Rng rng(GetParam() * 17 + 11);
  RandomMachine m = makeRandom(mgr, 4, 2, rng);
  for (int round = 0; round < 6; ++round) {
    std::set<unsigned> target;
    for (unsigned s = 0; s < 16; ++s) {
      if (rng.coin()) target.insert(s);
    }
    const Bdd z = encodeStates(m, target);
    // Explicit BackImage: states ALL of whose successors land in target.
    std::set<unsigned> expected;
    for (unsigned s = 0; s < 16; ++s) {
      const auto succs = explicitImage(m, {s});
      bool all = true;
      for (const unsigned t : succs) {
        if (target.count(t) == 0) all = false;
      }
      if (all) expected.insert(s);
    }
    EXPECT_EQ(explicitStates(m, m.fsm->backImage(z)), expected);
  }
}

TEST_P(ImageSweep, Theorem1BackImageDistributesOverConjunction) {
  BddManager mgr;
  Rng rng(GetParam() * 23 + 13);
  RandomMachine m = makeRandom(mgr, 5, 2, rng);
  for (int round = 0; round < 8; ++round) {
    const Bdd y = encodeStates(m, explicitStates(m, test::randomBdd(
                                      mgr, mgr.varCount(), rng, 3)));
    const Bdd z = encodeStates(m, explicitStates(m, test::randomBdd(
                                      mgr, mgr.varCount(), rng, 3)));
    EXPECT_EQ(m.fsm->backImage(y & z),
              m.fsm->backImage(y) & m.fsm->backImage(z));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ImageSweep,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u),
                         [](const ::testing::TestParamInfo<std::uint64_t>& i) {
                           return "seed" + std::to_string(i.param);
                         });

TEST(FsmBasics, ValidationCatchesIncompleteMachines) {
  BddManager mgr;
  Fsm fsm(mgr);
  fsm.vars().addStateBit("s");
  EXPECT_THROW(fsm.validate(), BddUsageError);
  fsm.setInit(mgr.one());
  EXPECT_THROW(fsm.validate(), BddUsageError);  // missing next fn
  fsm.setNext(0, mgr.zero());
  EXPECT_THROW(fsm.validate(), BddUsageError);  // missing invariant
  fsm.addInvariant(mgr.one());
  EXPECT_NO_THROW(fsm.validate());
}

}  // namespace
}  // namespace icb
