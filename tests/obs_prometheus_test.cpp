// Prometheus text exposition (obs/prometheus.hpp): grammar of every emitted
// line, catalog-driven HELP/TYPE headers, cumulative histogram families,
// and counter monotonicity across successive renders.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <limits>
#include <map>
#include <regex>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/prometheus.hpp"

namespace icb {
namespace {

std::vector<std::string> lines(const std::string& text) {
  std::vector<std::string> out;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) out.push_back(line);
  return out;
}

/// name or name{le="..."} -> numeric value, for reconciliation checks.
std::map<std::string, double> samples(const std::string& text) {
  std::map<std::string, double> out;
  const std::regex sample(
      R"re(^(icbdd_[A-Za-z0-9_]+(?:\{le="(?:\d+|\+Inf)"\})?) (-?[0-9.eE+]+)$)re");
  std::smatch m;
  for (const std::string& line : lines(text)) {
    if (std::regex_match(line, m, sample)) out[m[1]] = std::stod(m[2]);
  }
  return out;
}

obs::MetricsRegistry populated() {
  obs::MetricsRegistry reg;
  reg.add("bdd.gc.runs", 3);
  reg.setGauge("svc.queue.depth", 2.0);
  for (const std::uint64_t v : {0u, 1u, 5u, 1000u})
    reg.recordHistogram("svc.job.run_us", v);
  return reg;
}

TEST(Prometheus, NameMangling) {
  EXPECT_EQ(obs::prometheusName("svc.job.run_us"), "icbdd_svc_job_run_us");
  EXPECT_EQ(obs::prometheusName("bdd.apply.and.latency_us"),
            "icbdd_bdd_apply_and_latency_us");
}

TEST(Prometheus, CatalogLookupResolvesWildcards) {
  ASSERT_FALSE(obs::metricCatalog().empty());
  const obs::MetricCatalogEntry* exact =
      obs::findCatalogEntry("svc.job.run_us");
  ASSERT_NE(exact, nullptr);
  EXPECT_EQ(exact->kind, obs::MetricKind::kHistogram);
  EXPECT_FALSE(exact->help.empty());

  // <op> matches exactly one segment.
  const obs::MetricCatalogEntry* wild =
      obs::findCatalogEntry("bdd.apply.and.latency_us");
  ASSERT_NE(wild, nullptr);
  EXPECT_EQ(wild->kind, obs::MetricKind::kHistogram);
  EXPECT_EQ(obs::findCatalogEntry("bdd.apply.latency_us"), nullptr);
  EXPECT_EQ(obs::findCatalogEntry("no.such.metric"), nullptr);
}

TEST(Prometheus, EveryLineMatchesTheExpositionGrammar) {
  const std::string text = obs::prometheusRender(populated());
  const std::regex comment(R"(^# (HELP|TYPE) icbdd_[A-Za-z0-9_]+( .*)?$)");
  const std::regex sample(
      R"re(^icbdd_[A-Za-z0-9_]+(\{le="(\d+|\+Inf)"\})? -?[0-9]+(\.[0-9]+)?([eE][-+]?[0-9]+)?$)re");
  ASSERT_FALSE(text.empty());
  EXPECT_EQ(text.back(), '\n');
  for (const std::string& line : lines(text)) {
    const bool ok = line.rfind("#", 0) == 0 ? std::regex_match(line, comment)
                                            : std::regex_match(line, sample);
    EXPECT_TRUE(ok) << "bad exposition line: " << line;
  }
}

TEST(Prometheus, TypesAndHelpComeFromTheCatalog) {
  const std::string text = obs::prometheusRender(populated());
  EXPECT_NE(text.find("# TYPE icbdd_bdd_gc_runs counter"), std::string::npos);
  EXPECT_NE(text.find("# TYPE icbdd_svc_queue_depth gauge"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE icbdd_svc_job_run_us histogram"),
            std::string::npos);
  // HELP text is the catalog's (docs/observability.md) wording.
  EXPECT_NE(text.find("# HELP icbdd_svc_job_run_us "), std::string::npos);
}

TEST(Prometheus, HistogramFamiliesAreCumulativeWithInfEqualToCount) {
  const std::string text = obs::prometheusRender(populated());
  const std::map<std::string, double> s = samples(text);

  // 0, 1, 5, 1000 -> inclusive power-of-two bounds 0, 1, 7, 1023.
  ASSERT_TRUE(s.count("icbdd_svc_job_run_us_bucket{le=\"0\"}"));
  EXPECT_DOUBLE_EQ(s.at("icbdd_svc_job_run_us_bucket{le=\"0\"}"), 1.0);
  EXPECT_DOUBLE_EQ(s.at("icbdd_svc_job_run_us_bucket{le=\"1\"}"), 2.0);
  EXPECT_DOUBLE_EQ(s.at("icbdd_svc_job_run_us_bucket{le=\"7\"}"), 3.0);
  EXPECT_DOUBLE_EQ(s.at("icbdd_svc_job_run_us_bucket{le=\"1023\"}"), 4.0);
  EXPECT_DOUBLE_EQ(s.at("icbdd_svc_job_run_us_bucket{le=\"+Inf\"}"), 4.0);
  EXPECT_DOUBLE_EQ(s.at("icbdd_svc_job_run_us_count"), 4.0);
  EXPECT_DOUBLE_EQ(s.at("icbdd_svc_job_run_us_sum"), 1006.0);

  // Buckets are cumulative: values never decrease as (numeric) le grows.
  std::vector<std::pair<double, double>> buckets;
  const std::string prefix = "icbdd_svc_job_run_us_bucket{le=\"";
  for (const auto& [key, value] : s) {
    if (key.rfind(prefix, 0) != 0) continue;
    const std::string le = key.substr(prefix.size());
    buckets.emplace_back(le.rfind("+Inf", 0) == 0
                             ? std::numeric_limits<double>::infinity()
                             : std::stod(le),
                         value);
  }
  std::sort(buckets.begin(), buckets.end());
  ASSERT_GE(buckets.size(), 2u);
  for (std::size_t i = 1; i < buckets.size(); ++i) {
    EXPECT_GE(buckets[i].second, buckets[i - 1].second)
        << "le=" << buckets[i].first;
  }
}

TEST(Prometheus, CountersAreMonotoneAcrossRenders) {
  obs::MetricsRegistry reg = populated();
  const std::map<std::string, double> before =
      samples(obs::prometheusRender(reg));
  reg.add("bdd.gc.runs", 2);
  reg.recordHistogram("svc.job.run_us", 9);
  const std::map<std::string, double> after =
      samples(obs::prometheusRender(reg));
  for (const auto& [key, value] : before) {
    if (key.rfind("icbdd_svc_queue_depth", 0) == 0) continue;  // gauge
    ASSERT_TRUE(after.count(key)) << key;
    EXPECT_GE(after.at(key), value) << key;
  }
  EXPECT_DOUBLE_EQ(after.at("icbdd_bdd_gc_runs"), 5.0);
}

TEST(Prometheus, EmptyRegistryRendersNothing) {
  EXPECT_TRUE(obs::prometheusRender(obs::MetricsRegistry{}).empty());
}

}  // namespace
}  // namespace icb
