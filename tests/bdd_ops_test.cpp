// Truth-table oracle tests: every Boolean connective agrees with direct
// evaluation on randomized functions, swept over seeds and variable counts
// with parameterized gtest.
#include <gtest/gtest.h>

#include "bdd/bdd.hpp"
#include "test_util.hpp"

namespace icb {
namespace {

struct SweepParam {
  unsigned nvars;
  std::uint64_t seed;
};

class OpsSweep : public ::testing::TestWithParam<SweepParam> {};

TEST_P(OpsSweep, BinaryOpsMatchTruthTables) {
  const auto [nvars, seed] = GetParam();
  BddManager mgr;
  for (unsigned i = 0; i < nvars; ++i) mgr.newVar();
  Rng rng(seed);
  for (int round = 0; round < 12; ++round) {
    const Bdd a = test::randomBdd(mgr, nvars, rng);
    const Bdd b = test::randomBdd(mgr, nvars, rng);
    const auto ta = test::truthTable(a, nvars);
    const auto tb = test::truthTable(b, nvars);

    const auto tAnd = test::truthTable(a & b, nvars);
    const auto tOr = test::truthTable(a | b, nvars);
    const auto tXor = test::truthTable(a ^ b, nvars);
    const auto tNot = test::truthTable(!a, nvars);
    for (std::size_t m = 0; m < ta.size(); ++m) {
      EXPECT_EQ(tAnd[m], ta[m] & tb[m]);
      EXPECT_EQ(tOr[m], ta[m] | tb[m]);
      EXPECT_EQ(tXor[m], ta[m] ^ tb[m]);
      EXPECT_EQ(tNot[m], 1 - ta[m]);
    }
  }
}

TEST_P(OpsSweep, IteMatchesTruthTables) {
  const auto [nvars, seed] = GetParam();
  BddManager mgr;
  for (unsigned i = 0; i < nvars; ++i) mgr.newVar();
  Rng rng(seed * 31 + 5);
  for (int round = 0; round < 8; ++round) {
    const Bdd f = test::randomBdd(mgr, nvars, rng);
    const Bdd g = test::randomBdd(mgr, nvars, rng);
    const Bdd h = test::randomBdd(mgr, nvars, rng);
    const auto tf = test::truthTable(f, nvars);
    const auto tg = test::truthTable(g, nvars);
    const auto th = test::truthTable(h, nvars);
    const auto ti = test::truthTable(f.ite(g, h), nvars);
    for (std::size_t m = 0; m < tf.size(); ++m) {
      EXPECT_EQ(ti[m], tf[m] ? tg[m] : th[m]);
    }
  }
}

TEST_P(OpsSweep, CanonicityUnderRandomConstruction) {
  const auto [nvars, seed] = GetParam();
  BddManager mgr;
  for (unsigned i = 0; i < nvars; ++i) mgr.newVar();
  Rng rng(seed * 77 + 1);
  for (int round = 0; round < 10; ++round) {
    const Bdd a = test::randomBdd(mgr, nvars, rng);
    const Bdd b = test::randomBdd(mgr, nvars, rng);
    // Equal truth tables imply identical handles (canonicity).
    if (test::truthTable(a, nvars) == test::truthTable(b, nvars)) {
      EXPECT_EQ(a, b);
    } else {
      EXPECT_NE(a, b);
    }
  }
  mgr.checkInvariants();
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, OpsSweep,
    ::testing::Values(SweepParam{2, 1}, SweepParam{3, 2}, SweepParam{4, 3},
                      SweepParam{5, 4}, SweepParam{6, 5}, SweepParam{6, 6},
                      SweepParam{7, 7}, SweepParam{8, 8}),
    [](const ::testing::TestParamInfo<SweepParam>& paramInfo) {
      return "v" + std::to_string(paramInfo.param.nvars) + "s" +
             std::to_string(paramInfo.param.seed);
    });

TEST(BddOps, AbsorptionAndIdempotence) {
  BddManager mgr;
  mgr.newVar();
  mgr.newVar();
  const Bdd x = mgr.var(0);
  const Bdd y = mgr.var(1);
  EXPECT_EQ(x & (x | y), x);
  EXPECT_EQ(x | (x & y), x);
  EXPECT_EQ(x & x, x);
  EXPECT_EQ(x | x, x);
}

TEST(BddOps, OperandOrderIrrelevant) {
  BddManager mgr;
  for (unsigned i = 0; i < 6; ++i) mgr.newVar();
  Rng rng(23);
  for (int i = 0; i < 20; ++i) {
    const Bdd a = test::randomBdd(mgr, 6, rng);
    const Bdd b = test::randomBdd(mgr, 6, rng);
    EXPECT_EQ(a & b, b & a);
    EXPECT_EQ(a | b, b | a);
    EXPECT_EQ(a ^ b, b ^ a);
  }
}

}  // namespace
}  // namespace icb
