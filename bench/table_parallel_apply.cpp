// Intra-problem parallel apply scaling (docs/parallel.md): the same model
// and method with one manager serving a pool of apply workers, serial
// first, then at every requested worker count.
//
// Output is always "icbdd-bench-parallel-v1" JSONL (the committed
// BENCH_parallel_apply.json artifact): a header line carrying
// hardware_cores -- speedup claims are meaningless without knowing how
// many cores the host actually had -- one cell line per worker count, and
// a trailing summary line with the measured speedups.  CI
// (ci/run_checks.sh, parallel gate) always enforces that every worker
// count produced the serial verdict and iteration count, and enforces the
// >= 2x speedup target at 4 workers only when hardware_cores >= 4.
//
//   table_parallel_apply [--depth N] [--workers-list 1,2,4] [--repeat R]
//                        [--max-nodes N] [--time-limit S]
//
// The workload is the largest Table-1 configuration, the depth-10 typed
// FIFO, under Bkwd: one giant relational-product (andExists) per run --
// the deepest single apply recursion in the suite, i.e. the best case for
// cofactor splitting and the honest case for measuring it.
#include <thread>

#include "bench_util.hpp"
#include "models/typed_fifo.hpp"
#include "util/timer.hpp"

using namespace icb;
using namespace icb::bench;

namespace {

struct Cell {
  unsigned applyWorkers = 1;
  EngineResult best;       ///< fastest of --repeat runs
  double bestSeconds = 0.0;
};

EngineResult runCell(unsigned depth, unsigned applyWorkers,
                     const BenchCaps& caps) {
  BddOptions bddOpts;
  bddOpts.applyWorkers = applyWorkers;
  BddManager mgr(bddOpts);
  TypedFifoModel model(mgr, {.depth = depth, .width = 8});
  EngineOptions options = caps.engineOptions();
  return runMethod(model.fsm(), Method::kBkwd, model.fdCandidates(), options);
}

std::vector<unsigned> parseWorkersList(const std::string& spec) {
  std::vector<unsigned> out;
  std::istringstream is(spec);
  std::string tok;
  while (std::getline(is, tok, ',')) {
    if (!tok.empty()) out.push_back(static_cast<unsigned>(std::stoul(tok)));
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  const BenchCaps caps = BenchCaps::fromArgs(args);
  const unsigned depth = static_cast<unsigned>(args.getInt("depth", 10));
  const unsigned repeat =
      static_cast<unsigned>(args.getInt("repeat", 3));
  const std::vector<unsigned> workersList =
      parseWorkersList(args.getString("workers-list", "1,4"));
  const unsigned cores = std::thread::hardware_concurrency();

  std::vector<Cell> cells;
  for (const unsigned w : workersList) {
    Cell cell;
    cell.applyWorkers = w;
    for (unsigned r = 0; r < repeat; ++r) {
      const Stopwatch watch;
      EngineResult result = runCell(depth, w, caps);
      const double seconds = watch.elapsedSeconds();
      if (r == 0 || seconds < cell.bestSeconds) {
        cell.bestSeconds = seconds;
        cell.best = std::move(result);
      }
    }
    cells.push_back(std::move(cell));
  }

  std::cout << std::move(
                   obs::JsonObject()
                       .put("schema", "icbdd-bench-parallel-v1")
                       .put("table", "parallel_apply")
                       .put("model", "fifo-depth" + std::to_string(depth))
                       .put("method", "Bkwd")
                       .put("hardware_cores", static_cast<std::uint64_t>(cores))
                       .put("repeat", static_cast<std::uint64_t>(repeat))
                       .put("cells", static_cast<std::uint64_t>(cells.size())))
                   .str()
            << '\n';

  const Cell* serial = nullptr;
  for (const Cell& c : cells) {
    if (c.applyWorkers <= 1) serial = &c;
    const EngineResult& r = c.best;
    obs::JsonObject line;
    line.put("apply_workers", static_cast<std::uint64_t>(c.applyWorkers))
        .put("verdict", verdictName(r.verdict))
        .put("iterations", r.iterations)
        .put("time_s", c.bestSeconds)
        .put("peak_iterate_nodes", r.peakIterateNodes)
        .put("peak_allocated_nodes", r.peakAllocatedNodes)
        .put("par_steals", r.metrics.counter("bdd.par.steals"))
        .put("par_cas_retries", r.metrics.counter("bdd.par.cas_retries"))
        .put("par_cache_races", r.metrics.counter("bdd.par.cache_races"));
    std::cout << std::move(line).str() << '\n';
  }

  obs::JsonObject summary;
  summary.put("summary", true);
  bool identical = true;
  if (serial != nullptr) {
    obs::JsonObject speedups;
    for (const Cell& c : cells) {
      if (&c == serial) continue;
      identical = identical &&
                  c.best.verdict == serial->best.verdict &&
                  c.best.iterations == serial->best.iterations &&
                  c.best.peakIterateNodes == serial->best.peakIterateNodes;
      speedups.put("w" + std::to_string(c.applyWorkers),
                   c.bestSeconds > 0.0 ? serial->bestSeconds / c.bestSeconds
                                       : 0.0);
    }
    summary.putRaw("speedup", std::move(speedups).str());
  }
  summary.put("outcomes_identical", identical);
  std::cout << std::move(summary).str() << '\n';
  return identical ? 0 : 1;
}
