// Ablation: pairwise Restrict cross-simplification (the paper's policy) vs.
// the simultaneous multi-care-set Restrict the paper wishes for in SS V
// ("What's needed, therefore, is a routine that simplifies using multiple
// BDDs simultaneously").
//
// Runs the full XICI verification of the Table 2 and Table 3 workloads with
// each simplification mode and reports verdict / time / peak iterate.
#include <functional>

#include "bench_util.hpp"
#include "models/avg_filter.hpp"
#include "models/mutex_ring.hpp"
#include "models/pipeline_cpu.hpp"

using namespace icb;
using namespace icb::bench;

namespace {

void runBoth(TextTable& table, const std::string& label,
             const std::function<EngineResult(bool)>& run) {
  for (const bool simultaneous : {false, true}) {
    const EngineResult r = run(simultaneous);
    std::string nodes = std::to_string(r.peakIterateNodes);
    const std::string breakdown = describeMemberSizes(r);
    if (!breakdown.empty()) nodes += " " + breakdown;
    table.addRow({label, simultaneous ? "simultaneous" : "pairwise",
                  verdictName(r.verdict), formatMinSec(r.seconds),
                  std::to_string(r.iterations), nodes});
  }
}

}  // namespace

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  const BenchCaps caps = BenchCaps::fromArgs(args);
  std::printf(
      "Ablation / pairwise vs simultaneous Restrict in the XICI policy\n"
      "(node cap %llu, time cap %.0fs)\n\n",
      static_cast<unsigned long long>(caps.maxNodes), caps.timeLimitSeconds);

  TextTable table({"Workload", "Simplify", "Verdict", "Time", "Iter",
                   "Peak nodes"});

  runBoth(table, "filter-8 no assists", [&](bool simultaneous) {
    BddManager mgr;
    AvgFilterModel model(mgr, {.depth = 8, .sampleWidth = 8});
    EngineOptions options = caps.engineOptions();
    options.policy.simplify.simultaneous = simultaneous;
    return runXiciBackward(model.fsm(), options);
  });

  runBoth(table, "filter-16 no assists", [&](bool simultaneous) {
    BddManager mgr;
    AvgFilterModel model(mgr, {.depth = 16, .sampleWidth = 8});
    EngineOptions options = caps.engineOptions();
    options.policy.simplify.simultaneous = simultaneous;
    return runXiciBackward(model.fsm(), options);
  });

  runBoth(table, "pipeline 2R 2B", [&](bool simultaneous) {
    BddManager mgr;
    PipelineCpuModel model(mgr, {.registers = 2, .width = 2});
    EngineOptions options = caps.engineOptions();
    options.policy.simplify.simultaneous = simultaneous;
    return runXiciBackward(model.fsm(), options);
  });

  runBoth(table, "mutex ring 8", [&](bool simultaneous) {
    BddManager mgr;
    MutexRingModel model(mgr, {.cells = 8});
    EngineOptions options = caps.engineOptions();
    options.policy.simplify.simultaneous = simultaneous;
    return runXiciBackward(model.fsm(), options);
  });

  table.print(std::cout);
  std::printf(
      "\nExpected shape: identical verdicts; the simultaneous mode can only\n"
      "tighten the lists (same contract, sharper care information), at some\n"
      "cost per pass from the uncached multi-way recursion.\n");
  return 0;
}
