// Table 1, third block: 8-bit moving-average filter WITH user-supplied
// assisting invariants, depths 4, 8, 16.
//
// Paper reference values:
//   depth  4: Fwd 11267/3, Bkwd 490/1, ICI 146 (102,45)/1, XICI same
//   depth  8: Fwd exceeded 60MB, Bkwd exceeded 40min,
//             ICI 638 (390,169,81)/1, XICI same
//   depth 16: ICI 2558 (1501,629,290,141)/1, XICI same
// Expected shape: with the per-layer lemmas supplied, both implicit-
// conjunction methods converge in one iteration with a small list per adder
// layer, while the monolithic traversals die on the larger depths.
#include "bench_util.hpp"
#include "models/avg_filter.hpp"

using namespace icb;
using namespace icb::bench;

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  const BenchCaps caps = BenchCaps::fromArgs(args);
  const BddOptions bddOpts = bddOptions(args);
  BenchReport report("table1_filter", args, caps);
  if (!report.jsonMode()) {
    std::printf(
        "Table 1 / moving-average filter WITH assisting invariants\n"
        "(node cap %llu, time cap %.0fs)\n\n",
        static_cast<unsigned long long>(caps.maxNodes), caps.timeLimitSeconds);
  }

  par::VerifyScheduler scheduler(schedulerOptions(args));
  for (const unsigned depth : {4u, 8u, 16u}) {
    const std::string group = "filter depth " + std::to_string(depth) +
                              ", 8-bit samples, assists supplied";
    for (const Method m :
         {Method::kFwd, Method::kBkwd, Method::kIci, Method::kXici}) {
      scheduler.submit(group, m, [depth, m, &caps, &bddOpts](const par::CellContext& ctx) {
        BddManager mgr(bddOpts);
        AvgFilterModel model(mgr, {.depth = depth, .sampleWidth = 8});
        EngineOptions options = caps.engineOptions();
        options.withAssists = true;
        ctx.apply(options);
        return runMethod(model.fsm(), m, model.fdCandidates(), options);
      });
    }
  }
  for (const par::CellResult& cell : scheduler.run()) report.addCell(cell);
  report.print(std::cout);
  return 0;
}
