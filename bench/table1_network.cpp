// Table 1, second block: processors sending messages through a
// non-order-preserving network, 4 and 7 processors.
//
// Paper reference values:
//   4 procs: Fwd 1198/9, Bkwd 994/1, FD 41/9, ICI 245 (4x62), XICI 245
//   7 procs: Fwd 88647/15, Bkwd 61861/1, FD 169/15, ICI 1086 (7x156), XICI same
// Expected shape: the monolithic representations (Fwd, Bkwd) carry the
// cross-product of the per-processor counting relations and grow steeply
// with the processor count; FD's factored form and the ICI/XICI lists stay
// near-linear.
#include "bench_util.hpp"
#include "models/network.hpp"

using namespace icb;
using namespace icb::bench;

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  BenchCaps caps = BenchCaps::fromArgs(args);
  const BddOptions bddOpts = bddOptions(args);
  if (!args.has("time-limit")) {
    caps.timeLimitSeconds = 240.0;  // the Fwd/FD rows are iteration-heavy
  }
  BenchReport report("table1_network", args, caps);
  if (!report.jsonMode()) {
    std::printf(
        "Table 1 / processors & network (node cap %llu, time cap %.0fs)\n\n",
        static_cast<unsigned long long>(caps.maxNodes), caps.timeLimitSeconds);
  }

  par::VerifyScheduler scheduler(schedulerOptions(args));
  for (const unsigned procs : {4u, 7u}) {
    const std::string group = std::to_string(procs) + " processors, " +
                              std::to_string(procs) + "-slot network";
    for (const Method m : allMethods()) {
      scheduler.submit(group, m, [procs, m, &caps, &bddOpts](const par::CellContext& ctx) {
        BddManager mgr(bddOpts);
        NetworkModel model(mgr, {.processors = procs});
        EngineOptions options = caps.engineOptions();
        ctx.apply(options);
        return runMethod(model.fsm(), m, model.fdCandidates(), options);
      });
    }
  }
  for (const par::CellResult& cell : scheduler.run()) report.addCell(cell);
  report.print(std::cout);
  return 0;
}
