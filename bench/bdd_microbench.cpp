// google-benchmark microbenchmarks for the BDD package primitives the
// verification algorithms lean on: AND/ITE/XOR apply, quantification,
// Restrict, vector compose, and the shared-size counter used by Figure 1.
#include <benchmark/benchmark.h>

#include "bdd/bdd.hpp"
#include "obs/trace.hpp"
#include "sym/bitvector.hpp"
#include "util/rng.hpp"

namespace icb {
namespace {

/// n-bit unsigned comparator a <= b over interleaved fresh variables.
struct Comparator {
  BddManager mgr;
  BitVec a, b;
  Bdd le;

  explicit Comparator(unsigned width) {
    for (unsigned j = 0; j < width; ++j) {
      a.push(mgr.var(mgr.newVar()));
      b.push(mgr.var(mgr.newVar()));
    }
    le = ule(a, b);
  }
};

void BM_MkAdderChain(benchmark::State& state) {
  const auto width = static_cast<unsigned>(state.range(0));
  for (auto _ : state) {
    BddManager mgr;
    BitVec a;
    BitVec b;
    for (unsigned j = 0; j < width; ++j) {
      a.push(mgr.var(mgr.newVar()));
      b.push(mgr.var(mgr.newVar()));
    }
    benchmark::DoNotOptimize(add(a, b).bits().back().edge());
  }
  state.SetItemsProcessed(state.iterations() * width);
}
BENCHMARK(BM_MkAdderChain)->Arg(8)->Arg(16)->Arg(32);

void BM_AndComparators(benchmark::State& state) {
  Comparator c(static_cast<unsigned>(state.range(0)));
  const Bdd ge = ule(c.b, c.a);
  for (auto _ : state) {
    // Different operands each round defeat the computed cache's top entry.
    benchmark::DoNotOptimize((c.le & ge).edge());
    benchmark::DoNotOptimize((c.le ^ ge).edge());
  }
}
BENCHMARK(BM_AndComparators)->Arg(8)->Arg(16)->Arg(24);

void BM_IteDeep(benchmark::State& state) {
  BddManager mgr;
  Rng rng(1);
  const unsigned nvars = 24;
  std::vector<Bdd> vars;
  for (unsigned i = 0; i < nvars; ++i) vars.push_back(mgr.var(mgr.newVar()));
  Bdd f = vars[0];
  Bdd g = vars[1];
  Bdd h = vars[2];
  for (unsigned i = 3; i < nvars; ++i) {
    f = f.ite(g, vars[i]);
    std::swap(g, h);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.ite(g, h).edge());
    benchmark::DoNotOptimize(g.ite(h, f).edge());
  }
}
BENCHMARK(BM_IteDeep);

void BM_ExistsOverCube(benchmark::State& state) {
  Comparator c(static_cast<unsigned>(state.range(0)));
  std::vector<unsigned> qs;
  for (unsigned v = 0; v < c.mgr.varCount(); v += 2) qs.push_back(v);
  const Bdd cube(&c.mgr, c.mgr.cubeE(qs));
  for (auto _ : state) {
    benchmark::DoNotOptimize(c.le.exists(cube).edge());
    benchmark::DoNotOptimize(c.le.forall(cube).edge());
  }
}
BENCHMARK(BM_ExistsOverCube)->Arg(8)->Arg(16)->Arg(24);

void BM_RestrictByConstraint(benchmark::State& state) {
  Comparator c(static_cast<unsigned>(state.range(0)));
  const Bdd care = uleConst(c.a, 100) & uleConst(c.b, 200);
  for (auto _ : state) {
    benchmark::DoNotOptimize(c.le.restrictBy(care).edge());
    benchmark::DoNotOptimize(c.le.constrainBy(care).edge());
  }
}
BENCHMARK(BM_RestrictByConstraint)->Arg(8)->Arg(16)->Arg(24);

void BM_VectorCompose(benchmark::State& state) {
  Comparator c(static_cast<unsigned>(state.range(0)));
  // Substitute a+1 for a (a shift of the comparator).
  const BitVec inc = incTrunc(c.a);
  std::vector<Edge> map;
  for (unsigned v = 0; v < c.mgr.varCount(); ++v) map.push_back(c.mgr.varEdge(v));
  for (unsigned j = 0; j < c.a.width(); ++j) {
    map[c.a.bit(j).topVar()] = inc.bit(j).edge();
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(c.le.composeVec(map).edge());
  }
}
BENCHMARK(BM_VectorCompose)->Arg(8)->Arg(16)->Arg(24);

void BM_SharedSize(benchmark::State& state) {
  BddManager mgr;
  Rng rng(7);
  std::vector<Bdd> funcs;
  const unsigned nvars = 20;
  std::vector<Bdd> vars;
  for (unsigned i = 0; i < nvars; ++i) vars.push_back(mgr.var(mgr.newVar()));
  Bdd acc = mgr.one();
  for (unsigned i = 0; i + 1 < nvars; ++i) {
    acc = (acc & vars[i]) ^ vars[i + 1];
    funcs.push_back(acc);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(sharedSize(funcs));
  }
}
BENCHMARK(BM_SharedSize);

// The <1% overhead contract of obs/trace.hpp: with no sink installed, the
// traceEnabled() guard at every emit site must reduce to a relaxed pointer
// load.  Same workload as BM_AndComparators; compare the two directly (and
// against a pre-obs baseline) to audit the disabled path.
void BM_AndComparatorsTraceDisabled(benchmark::State& state) {
  obs::setDefaultTraceSink(nullptr);
  Comparator c(static_cast<unsigned>(state.range(0)));
  const Bdd ge = ule(c.b, c.a);
  for (auto _ : state) {
    if (obs::traceEnabled()) {  // the per-phase pattern engines use
      benchmark::DoNotOptimize(c.le.edge());
    }
    benchmark::DoNotOptimize((c.le & ge).edge());
    benchmark::DoNotOptimize((c.le ^ ge).edge());
  }
}
BENCHMARK(BM_AndComparatorsTraceDisabled)->Arg(8)->Arg(16)->Arg(24);

// Grouped sifting from a deliberately bad order: each round builds the
// comparator with all a-bits above all b-bits (the worst case for ule --
// exponential in width) and times sift() recovering the interleaving.
void BM_Sift(benchmark::State& state) {
  const auto width = static_cast<unsigned>(state.range(0));
  std::uint64_t saved = 0;
  for (auto _ : state) {
    state.PauseTiming();
    BddManager mgr;
    BitVec a;
    BitVec b;
    for (unsigned j = 0; j < width; ++j) a.push(mgr.var(mgr.newVar()));
    for (unsigned j = 0; j < width; ++j) b.push(mgr.var(mgr.newVar()));
    const Bdd le = ule(a, b);
    mgr.gc();
    state.ResumeTiming();
    benchmark::DoNotOptimize(mgr.sift());
    state.PauseTiming();
    saved += mgr.stats().reorderSavedNodes;
    state.ResumeTiming();
  }
  state.counters["saved_nodes"] =
      benchmark::Counter(static_cast<double>(saved), benchmark::Counter::kAvgIterations);
}
BENCHMARK(BM_Sift)->Arg(8)->Arg(12)->Arg(16);

void BM_GarbageCollection(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    BddManager mgr;
    Rng rng(3);
    std::vector<Bdd> keep;
    for (unsigned i = 0; i < 16; ++i) mgr.newVar();
    for (int i = 0; i < 200; ++i) {
      Bdd f = mgr.var(static_cast<unsigned>(rng.below(16)));
      for (int j = 0; j < 6; ++j) {
        f = f ^ mgr.var(static_cast<unsigned>(rng.below(16)));
        f = f & mgr.var(static_cast<unsigned>(rng.below(16)));
      }
      if (i % 4 == 0) keep.push_back(f);
    }
    state.ResumeTiming();
    benchmark::DoNotOptimize(mgr.gc());
  }
}
BENCHMARK(BM_GarbageCollection);

}  // namespace
}  // namespace icb

BENCHMARK_MAIN();
