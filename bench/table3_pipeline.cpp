// Table 3: pipelined processor vs. non-pipelined specification, for
// (registers, datapath-width) in {(2,1), (2,2), (2,3), (4,1)}.
//
// Paper reference values:
//   (2,1): Fwd 284745/4, Bkwd 10745/4, ICI 10745/4, XICI 10745/4
//   (2,2): only XICI finishes: 8485 (45,441,1345,6657)/4
//   (2,3): only XICI finishes: 57510 (189,2503,9591,45230)/4
//   (4,1): only XICI finishes: 12947 (45,849,1290,10767)/4
// Expected shape: every method handles the smallest configuration; widening
// the datapath or doubling the register file kills the monolithic methods
// (and ICI with them -- per-register equality is not a useful partition)
// while XICI keeps finishing.
#include "bench_util.hpp"
#include "models/pipeline_cpu.hpp"

using namespace icb;
using namespace icb::bench;

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  BenchCaps caps = BenchCaps::fromArgs(args);
  const BddOptions bddOpts = bddOptions(args);
  if (!args.has("max-nodes")) {
    caps.maxNodes = 32'000'000;  // the (4,1) XICI run peaks near 8M nodes
  }
  BenchReport report("table3_pipeline", args, caps);
  if (!report.jsonMode()) {
    std::printf(
        "Table 3 / pipelined processor (node cap %llu, time cap %.0fs)\n\n",
        static_cast<unsigned long long>(caps.maxNodes), caps.timeLimitSeconds);
  }

  struct Config {
    unsigned registers;
    unsigned width;
  };
  // The paper's four configurations plus (4,2): on modern hardware with
  // partitioned relational images every method survives the 1994 sizes, so
  // the row where the monolithic iterate visibly outgrows the implicit list
  // sits one notch higher today.
  par::VerifyScheduler scheduler(schedulerOptions(args));
  for (const Config cfg :
       {Config{2, 1}, Config{2, 2}, Config{2, 3}, Config{4, 1},
        Config{4, 2}}) {
    const std::string group = std::to_string(cfg.registers) + " registers, " +
                              std::to_string(cfg.width) + "-bit datapath";
    for (const Method m :
         {Method::kFwd, Method::kBkwd, Method::kIci, Method::kXici}) {
      scheduler.submit(group, m, [cfg, m, &caps, &bddOpts](const par::CellContext& ctx) {
        BddManager mgr(bddOpts);
        PipelineCpuModel model(
            mgr, {.registers = cfg.registers, .width = cfg.width});
        EngineOptions options = caps.engineOptions();
        ctx.apply(options);
        return runMethod(model.fsm(), m, model.fdCandidates(), options);
      });
    }
  }
  for (const par::CellResult& cell : scheduler.run()) report.addCell(cell);
  report.print(std::cout);
  return 0;
}
