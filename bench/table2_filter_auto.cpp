// Table 2: the moving-average filter WITHOUT assisting invariants -- the
// paper's headline experiment.  The verifier gets only "the two outputs
// agree"; no user-supplied partition exists, so the original ICI degenerates
// to the monolithic backward traversal and dies with it on depths 8 and 16,
// while XICI's evaluation policy derives the per-layer lemmas automatically.
//
// Paper reference values:
//   depth  4: Fwd 11267/3, Bkwd 490/1, ICI 490/1 (== Bkwd!),
//             XICI 146 (45,102)/2
//   depth  8: Fwd/Bkwd/ICI all exceeded; XICI 638 (61,169,390)/3
//   depth 16: XICI 2558 (141,290,629,1501)/4
#include "bench_util.hpp"
#include "models/avg_filter.hpp"

using namespace icb;
using namespace icb::bench;

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  const BenchCaps caps = BenchCaps::fromArgs(args);
  const BddOptions bddOpts = bddOptions(args);
  BenchReport report("table2_filter_auto", args, caps);
  if (!report.jsonMode()) {
    std::printf(
        "Table 2 / moving-average filter WITHOUT assisting invariants\n"
        "(node cap %llu, time cap %.0fs)\n\n",
        static_cast<unsigned long long>(caps.maxNodes), caps.timeLimitSeconds);
  }

  par::VerifyScheduler scheduler(schedulerOptions(args));
  for (const unsigned depth : {4u, 8u, 16u}) {
    const std::string group = "filter depth " + std::to_string(depth) +
                              ", 8-bit samples, NO assists";
    for (const Method m :
         {Method::kFwd, Method::kBkwd, Method::kIci, Method::kXici}) {
      // Skip the hopeless monolithic runs at depth 16 (the paper's Table 2
      // does not even list them); they would only burn the time cap.
      if (depth == 16 && m != Method::kXici) continue;
      scheduler.submit(group, m, [depth, m, &caps, &bddOpts](const par::CellContext& ctx) {
        BddManager mgr(bddOpts);
        AvgFilterModel model(mgr, {.depth = depth, .sampleWidth = 8});
        EngineOptions options = caps.engineOptions();
        options.withAssists = false;
        ctx.apply(options);
        return runMethod(model.fsm(), m, model.fdCandidates(), options);
      });
    }
  }
  for (const par::CellResult& cell : scheduler.run()) report.addCell(cell);
  report.print(std::cout);
  if (!report.jsonMode()) {
    std::printf(
        "\nReading the table: at depth 4 the ICI row equals the Bkwd row\n"
        "(no user partition -> the method degenerates), and the XICI\n"
        "multi-conjunct breakdowns match the per-layer assisting invariants\n"
        "of Table 1 -- derived fully automatically.\n");
  }
  return 0;
}
