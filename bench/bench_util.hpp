// Shared harness for the paper-table benchmarks: runs one (model, method)
// cell under the paper-style resource caps and renders rows in the layout of
// Tables 1-3 (Meth. / Time / Iter / Mem / BDD Nodes with the parenthesized
// per-conjunct breakdown).
#pragma once

#include <cstdio>
#include <iostream>
#include <string>

#include "util/cli.hpp"
#include "util/table.hpp"
#include "verif/run_all.hpp"

namespace icb::bench {

/// Resource caps standing in for the paper's "Exceeded 60MB." (Sun 4/75
/// memory) and "Exceeded 40 minutes." rows.  Overridable per binary via
/// --max-nodes / --time-limit.
struct BenchCaps {
  std::uint64_t maxNodes = 24'000'000;  // ~0.6 GB of node storage
  double timeLimitSeconds = 60.0;

  static BenchCaps fromArgs(const CliArgs& args) {
    BenchCaps caps;
    caps.maxNodes = static_cast<std::uint64_t>(
        args.getInt("max-nodes", static_cast<std::int64_t>(caps.maxNodes)));
    caps.timeLimitSeconds = args.getDouble("time-limit", caps.timeLimitSeconds);
    return caps;
  }

  [[nodiscard]] EngineOptions engineOptions() const {
    EngineOptions options;
    options.maxNodes = maxNodes;
    options.timeLimitSeconds = timeLimitSeconds;
    options.wantTrace = false;  // benches measure the decision procedure
    return options;
  }
};

/// Renders one engine result as a table row.
inline void addResultRow(TextTable& table, const EngineResult& r) {
  std::string nodes;
  std::string time;
  std::string iters;
  std::string mem;
  switch (r.verdict) {
    case Verdict::kNodeLimit:
      time = "Exceeded node cap.";
      break;
    case Verdict::kTimeLimit:
      time = "Exceeded time cap.";
      break;
    case Verdict::kIterationLimit:
      time = "Exceeded iteration cap.";
      break;
    default: {
      time = formatMinSec(r.seconds);
      iters = std::to_string(r.iterations);
      mem = formatKb(r.memBytesEstimate);
      nodes = std::to_string(r.peakIterateNodes);
      const std::string breakdown = describeMemberSizes(r);
      if (!breakdown.empty()) nodes += " " + breakdown;
      if (r.verdict == Verdict::kViolated) nodes += " [VIOLATED]";
      break;
    }
  }
  table.addRow({methodName(r.method), time, iters, mem, nodes});
}

/// Standard header used by every table binary.
inline TextTable paperTable() {
  return TextTable({"Meth.", "Time", "Iter", "Mem", "BDD Nodes"});
}

}  // namespace icb::bench
