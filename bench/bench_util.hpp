// Shared harness for the paper-table benchmarks: runs one (model, method)
// cell under the paper-style resource caps and renders rows in the layout of
// Tables 1-3 (Meth. / Time / Iter / Mem / BDD Nodes with the parenthesized
// per-conjunct breakdown).
#pragma once

#include <cstdio>
#include <iostream>
#include <string>
#include <utility>
#include <vector>

#include "bdd/options.hpp"
#include "obs/jsonl.hpp"
#include "par/scheduler.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"
#include "verif/run_all.hpp"

namespace icb::bench {

/// Reads the scheduler knobs shared by every table binary:
///   --jobs N       worker threads (default 0 = hardware concurrency;
///                  --jobs 1 reproduces the historical serial sweep
///                  byte-for-byte)
///   --deadline S   global wall-clock budget for the whole table (0 = none)
inline par::SchedulerOptions schedulerOptions(const CliArgs& args) {
  par::SchedulerOptions options;
  options.jobs = static_cast<unsigned>(args.getInt("jobs", 0));
  options.globalDeadlineSeconds = args.getDouble("deadline", 0.0);
  return options;
}

/// Reads the BDD-manager knobs shared by every table binary:
///   --auto-reorder B      growth-triggered grouped sifting (default false:
///                         the paper keeps its fixed interleaved order, and
///                         paper-table reproduction depends on that)
///   --reorder-trigger K   live-node growth factor arming a sift (default 2.0)
///   --apply-workers N     intra-problem parallel apply workers sharing one
///                         manager (default 1 = the byte-identical serial
///                         path; see docs/parallel.md)
///   --spill-dir DIR       arm the spill-to-disk tier: page the node arena
///                         to DIR instead of aborting at the node cap
///                         (docs/external_memory.md)
///   --spill-threshold N   resident-arena budget in nodes once armed
///                         (default 0 = spill only where --max-nodes would
///                         otherwise abort the cell)
inline BddOptions bddOptions(const CliArgs& args) {
  BddOptions options;
  options.autoReorder = args.getBool("auto-reorder", options.autoReorder);
  options.reorderTrigger =
      args.getDouble("reorder-trigger", options.reorderTrigger);
  options.applyWorkers = static_cast<unsigned>(
      args.getInt("apply-workers", options.applyWorkers));
  options.spillDir = args.getString("spill-dir", "");
  options.spillThresholdNodes = static_cast<std::uint64_t>(
      args.getInt("spill-threshold", 0));
  return options;
}

/// Resource caps standing in for the paper's "Exceeded 60MB." (Sun 4/75
/// memory) and "Exceeded 40 minutes." rows.  Overridable per binary via
/// --max-nodes / --time-limit.
///
/// The time cap excludes observability costs by construction: trace-sink
/// writes (obs::TraceSession) and kFull audits both credit their own wall
/// time back to the manager's deadline, so enabling ICBDD_TRACE or
/// ICBDD_CHECK_LEVEL on a capped bench cannot flip a verdict to a spurious
/// "Exceeded time cap."
struct BenchCaps {
  std::uint64_t maxNodes = 24'000'000;  // ~0.6 GB of node storage
  double timeLimitSeconds = 60.0;

  static BenchCaps fromArgs(const CliArgs& args) {
    BenchCaps caps;
    caps.maxNodes = static_cast<std::uint64_t>(
        args.getInt("max-nodes", static_cast<std::int64_t>(caps.maxNodes)));
    caps.timeLimitSeconds = args.getDouble("time-limit", caps.timeLimitSeconds);
    return caps;
  }

  [[nodiscard]] EngineOptions engineOptions() const {
    EngineOptions options;
    options.maxNodes = maxNodes;
    options.timeLimitSeconds = timeLimitSeconds;
    options.wantTrace = false;  // benches measure the decision procedure
    return options;
  }
};

/// Renders one engine result as a table row.
inline void addResultRow(TextTable& table, const EngineResult& r) {
  std::string nodes;
  std::string time;
  std::string iters;
  std::string mem;
  switch (r.verdict) {
    case Verdict::kNodeLimit:
      time = "Exceeded node cap.";
      break;
    case Verdict::kTimeLimit:
      time = "Exceeded time cap.";
      break;
    case Verdict::kIterationLimit:
      time = "Exceeded iteration cap.";
      break;
    default: {
      time = formatMinSec(r.seconds);
      iters = std::to_string(r.iterations);
      mem = formatKb(r.memBytesEstimate);
      if (r.spilled) mem += " (spilled)";
      nodes = std::to_string(r.peakIterateNodes);
      const std::string breakdown = describeMemberSizes(r);
      if (!breakdown.empty()) nodes += " " + breakdown;
      if (r.verdict == Verdict::kViolated) nodes += " [VIOLATED]";
      break;
    }
  }
  table.addRow({methodName(r.method), time, iters, mem, nodes});
}

/// Standard header used by every table binary.
inline TextTable paperTable() {
  return TextTable({"Meth.", "Time", "Iter", "Mem", "BDD Nodes"});
}

/// Collects a table binary's cells and renders them either as the classic
/// paper-style text table (default) or, under --json, as "icbdd-bench-v1"
/// JSONL: one header line followed by one line per (group, method) cell
/// with the run's MetricsRegistry inlined.  docs/observability.md documents
/// the schema.
class BenchReport {
 public:
  BenchReport(std::string tableName, const CliArgs& args, const BenchCaps& caps)
      : tableName_(std::move(tableName)),
        caps_(caps),
        json_(args.getBool("json", false)) {}

  /// True when --json was passed; callers skip their printf banners then.
  [[nodiscard]] bool jsonMode() const { return json_; }

  /// Starts a new row group (one span line of the text table, the "group"
  /// field of every following JSONL cell).
  void beginGroup(std::string title) { groups_.push_back({std::move(title), {}}); }

  void add(const EngineResult& r) {
    if (groups_.empty()) beginGroup("");
    groups_.back().second.push_back(Row{r.method, r, -1, false, {}});
  }

  /// Adds one scheduler cell, opening a new row group whenever the cell's
  /// group label changes.  Feeding scheduler results (already in submission
  /// order) straight through this renders the same table a serial sweep
  /// renders, plus per-cell worker attribution in the JSON output.
  void addCell(const par::CellResult& cell) {
    if (groups_.empty() || groups_.back().first != cell.group) {
      beginGroup(cell.group);
    }
    groups_.back().second.push_back(Row{cell.method, cell.result,
                                        static_cast<int>(cell.worker),
                                        cell.skipped, cell.skipReason});
  }

  void print(std::ostream& os) const {
    if (json_) {
      printJson(os);
      return;
    }
    TextTable table = paperTable();
    for (const auto& [title, cells] : groups_) {
      if (!title.empty()) table.addSpan(title);
      for (const Row& row : cells) {
        if (row.skipped) {
          table.addRow({methodName(row.method), "Cancelled.", "", "", ""});
        } else {
          addResultRow(table, row.result);
        }
      }
    }
    table.print(os);
  }

 private:
  struct Row {
    Method method = Method::kFwd;
    EngineResult result;
    int worker = -1;  ///< executing worker; -1 = serial add(), no attribution
    bool skipped = false;
    std::string skipReason;
  };

  void printJson(std::ostream& os) const {
    std::size_t count = 0;
    for (const auto& [title, cells] : groups_) count += cells.size();
    os << std::move(obs::JsonObject()
                        .put("schema", "icbdd-bench-v1")
                        .put("table", tableName_)
                        .put("max_nodes", caps_.maxNodes)
                        .put("time_limit_s", caps_.timeLimitSeconds)
                        .put("cells", static_cast<std::uint64_t>(count)))
              .str()
       << '\n';
    for (const auto& [title, cells] : groups_) {
      for (const Row& row : cells) {
        const EngineResult& r = row.result;
        obs::JsonObject cell;
        cell.put("group", title).put("method", methodName(row.method));
        if (row.skipped) {
          cell.put("skipped", true).put("skip_reason", row.skipReason);
        } else {
          cell.put("verdict", verdictName(r.verdict))
              .put("time_s", r.seconds)
              .put("iterations", r.iterations)
              .put("mem_bytes", r.memBytesEstimate)
              .put("spilled", r.spilled)
              .put("peak_iterate_nodes", r.peakIterateNodes)
              .putRaw("member_sizes", obs::jsonArray(r.peakIterateMemberSizes))
              .put("peak_allocated_nodes", r.peakAllocatedNodes)
              .putRaw("metrics", r.metrics.toJson());
        }
        if (row.worker >= 0) cell.put("worker", row.worker);
        if (!r.note.empty()) cell.put("note", r.note);
        os << std::move(cell).str() << '\n';
      }
    }
  }

  std::string tableName_;
  BenchCaps caps_;
  bool json_;
  std::vector<std::pair<std::string, std::vector<Row>>> groups_;
};

}  // namespace icb::bench
