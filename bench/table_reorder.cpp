// Reordering benchmark (extension -- no paper counterpart): each cell builds
// a typed FIFO, deterministically scrambles the variable order away from the
// interleaving the model was constructed with, then verifies it twice --
// once with the order pinned (the paper's fixed-order regime) and once with
// growth-triggered grouped sifting enabled.  Verdicts and iteration counts
// must agree across the two regimes; the payoff shows up as a lower
// peak_allocated_nodes column in the auto-reorder rows.
#include "bench_util.hpp"
#include "models/typed_fifo.hpp"
#include "util/rng.hpp"

using namespace icb;
using namespace icb::bench;

namespace {

/// Walks the order away from the constructed interleaving with a seeded
/// sequence of adjacent swaps.  Deterministic, so the "off" and "on" cells
/// start the verification from byte-identical manager states.
void scrambleOrder(BddManager& mgr, unsigned rounds) {
  Rng rng(0x5eed);
  const unsigned nvars = mgr.varCount();
  if (nvars < 2) return;
  for (unsigned k = 0; k < rounds * nvars; ++k) {
    mgr.swapAdjacentLevels(static_cast<unsigned>(rng.below(nvars - 1)));
  }
}

}  // namespace

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  const BenchCaps caps = BenchCaps::fromArgs(args);
  BenchReport report("table_reorder", args, caps);
  if (!report.jsonMode()) {
    std::printf(
        "Reordering / scrambled typed FIFO (node cap %llu, time cap %.0fs)\n\n",
        static_cast<unsigned long long>(caps.maxNodes), caps.timeLimitSeconds);
  }

  std::vector<unsigned> depths{4u, 6u};
  if (args.has("depth")) {
    depths = {static_cast<unsigned>(args.getInt("depth", 4))};
  }
  const unsigned scrambleRounds =
      static_cast<unsigned>(args.getInt("scramble-rounds", 4));

  par::VerifyScheduler scheduler(schedulerOptions(args));
  for (const unsigned depth : depths) {
    for (const bool reorder : {false, true}) {
      const std::string group = "scrambled FIFO depth " +
                                std::to_string(depth) + ", auto-reorder " +
                                (reorder ? "on" : "off");
      for (const Method m : {Method::kFwd, Method::kBkwd}) {
        scheduler.submit(
            group, m,
            [depth, m, reorder, scrambleRounds,
             &caps](const par::CellContext& ctx) {
              BddOptions bddOpts;
              bddOpts.autoReorder = reorder;
              // The scrambled FIFO blows up well before the default arming
              // thresholds: fire on 30% growth, even on a small arena.
              bddOpts.reorderTrigger = 1.3;
              bddOpts.reorderMinLiveNodes = 256;
              BddManager mgr(bddOpts);
              TypedFifoModel model(mgr, {.depth = depth, .width = 8});
              scrambleOrder(mgr, scrambleRounds);
              EngineOptions options = caps.engineOptions();
              ctx.apply(options);
              return runMethod(model.fsm(), m, model.fdCandidates(), options);
            });
      }
    }
  }
  for (const par::CellResult& cell : scheduler.run()) report.addCell(cell);
  report.print(std::cout);
  return 0;
}
