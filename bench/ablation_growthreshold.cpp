// Ablation: the Figure 1 GrowThreshold.
//
// The paper fixes GrowThreshold = 1.5 and notes (Section V): "We have not,
// for example, investigated finding the best GrowThreshold in the evaluation
// algorithm ... a smaller threshold holds BDD size down, but can get caught
// in a local minimum, whereas any threshold greater than 1 could
// theoretically allow us to build exponentially-sized BDDs."
//
// This bench sweeps the threshold on the Table 2 workload (filter without
// assists, where the policy does the real work) and reports verdict, peak
// iterate size and time per setting.
#include "bench_util.hpp"
#include "models/avg_filter.hpp"

using namespace icb;
using namespace icb::bench;

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  const BenchCaps caps = BenchCaps::fromArgs(args);
  const unsigned depth = static_cast<unsigned>(args.getInt("depth", 8));
  std::printf(
      "Ablation / Figure 1 GrowThreshold sweep on the depth-%u filter, no "
      "assists\n(node cap %llu, time cap %.0fs)\n\n",
      depth, static_cast<unsigned long long>(caps.maxNodes),
      caps.timeLimitSeconds);

  TextTable table(
      {"GrowThreshold", "Verdict", "Time", "Iter", "Peak nodes", "Breakdown"});
  for (const double threshold : {0.8, 1.0, 1.2, 1.5, 2.0, 4.0, 16.0}) {
    BddManager mgr;
    AvgFilterModel model(mgr, {.depth = depth, .sampleWidth = 8});
    EngineOptions options = caps.engineOptions();
    options.policy.growThreshold = threshold;
    const EngineResult r = runXiciBackward(model.fsm(), options);
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.2f", threshold);
    table.addRow({buf, verdictName(r.verdict), formatMinSec(r.seconds),
                  std::to_string(r.iterations),
                  std::to_string(r.peakIterateNodes),
                  describeMemberSizes(r)});
  }
  table.print(std::cout);
  std::printf(
      "\nExpected shape: thresholds near the paper's 1.5 keep the list\n"
      "multi-conjunct and small; very large thresholds force full\n"
      "evaluation (degenerating toward monolithic backward traversal),\n"
      "very small ones refuse even profitable merges.\n");
  return 0;
}
