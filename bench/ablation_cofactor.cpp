// Ablation: the exact termination test's cofactor-variable choice and the
// Theorem 3 Restrict shortcut.
//
// Paper, Section III.B: "For simplicity, we are currently selecting the top
// BDD variable of the first BDD in the list"; Section V lists "choosing the
// best variable to use for cofactoring in the termination test" as untried
// future work.  Theorem 3 makes step 3 free when Restrict is the simplifier.
//
// This bench runs the full XICI verification of the Table 2 filter under
// each (choice, shortcut) combination and reports the exact test's own
// counters.
#include "bench_util.hpp"
#include "models/avg_filter.hpp"

using namespace icb;
using namespace icb::bench;

namespace {

const char* choiceName(CofactorChoice c) {
  switch (c) {
    case CofactorChoice::kTopOfFirst:
      return "top-of-first (paper)";
    case CofactorChoice::kHighestLevel:
      return "globally-topmost";
    case CofactorChoice::kMostCommon:
      return "most-common-top";
  }
  return "?";
}

}  // namespace

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  const BenchCaps caps = BenchCaps::fromArgs(args);
  const unsigned depth = static_cast<unsigned>(args.getInt("depth", 8));
  std::printf(
      "Ablation / exact-termination cofactor choice, depth-%u filter, no "
      "assists\n(node cap %llu, time cap %.0fs)\n\n",
      depth, static_cast<unsigned long long>(caps.maxNodes),
      caps.timeLimitSeconds);

  TextTable table({"Variable choice", "Thm3", "Verdict", "Time", "TautCalls",
                   "Shannon", "MaxDepth"});
  for (const CofactorChoice choice :
       {CofactorChoice::kTopOfFirst, CofactorChoice::kHighestLevel,
        CofactorChoice::kMostCommon}) {
    for (const bool shortcut : {true, false}) {
      BddManager mgr;
      AvgFilterModel model(mgr, {.depth = depth, .sampleWidth = 8});
      EngineOptions options = caps.engineOptions();
      options.termination.cofactorChoice = choice;
      options.termination.restrictShortcut = shortcut;
      const EngineResult r = runXiciBackward(model.fsm(), options);
      table.addRow({choiceName(choice), shortcut ? "on" : "off",
                    verdictName(r.verdict), formatMinSec(r.seconds),
                    std::to_string(r.terminationStats.tautologyCalls),
                    std::to_string(r.terminationStats.shannonExpansions),
                    std::to_string(r.terminationStats.maxDepth)});
    }
  }
  table.print(std::cout);
  std::printf(
      "\nExpected shape: the Theorem 3 shortcut collapses most tautology\n"
      "checks before any Shannon expansion; the variable choice shifts how\n"
      "many expansions the remaining checks need.\n");
  return 0;
}
