// Table 1, first block: 8-bit wide typed FIFO buffer, depths 5 and 10.
//
// Paper reference values (Sun 4/75, CMU BDD package):
//   depth  5: Fwd 543 nodes/6 iter, Bkwd 543/1, ICI 41 (5x9), XICI 41 (5x9)
//   depth 10: Fwd 32767/11, Bkwd 32767/1, ICI 81 (10x9), XICI 81 (10x9)
// Expected shape: Fwd/Bkwd peak nodes grow exponentially with the depth;
// ICI/XICI stay at depth x 9 with one iteration.
#include "bench_util.hpp"
#include "models/typed_fifo.hpp"

using namespace icb;
using namespace icb::bench;

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  const BenchCaps caps = BenchCaps::fromArgs(args);
  const BddOptions bddOpts = bddOptions(args);
  BenchReport report("table1_fifo", args, caps);
  if (!report.jsonMode()) {
    std::printf("Table 1 / typed FIFO (node cap %llu, time cap %.0fs)\n\n",
                static_cast<unsigned long long>(caps.maxNodes),
                caps.timeLimitSeconds);
  }

  // --depth runs a single configuration (CI uses a small one); the default
  // is the paper's depth {5, 10} pair.
  std::vector<unsigned> depths{5u, 10u};
  if (args.has("depth")) {
    depths = {static_cast<unsigned>(args.getInt("depth", 5))};
  }

  par::VerifyScheduler scheduler(schedulerOptions(args));
  for (const unsigned depth : depths) {
    const std::string group =
        "8-bit wide typed FIFO buffer, depth " + std::to_string(depth);
    for (const Method m :
         {Method::kFwd, Method::kBkwd, Method::kIci, Method::kXici}) {
      scheduler.submit(group, m,
                       [depth, m, &caps, &bddOpts](const par::CellContext& ctx) {
        BddManager mgr(bddOpts);
        TypedFifoModel model(mgr, {.depth = depth, .width = 8});
        EngineOptions options = caps.engineOptions();
        ctx.apply(options);
        return runMethod(model.fsm(), m, model.fdCandidates(), options);
      });
    }
  }
  for (const par::CellResult& cell : scheduler.run()) report.addCell(cell);
  report.print(std::cout);
  return 0;
}
