// Ablation: greedy pairwise merging (Figure 1) vs. the Theorem 2 optimum.
//
// Theorem 2 shows the minimum-cost PAIRWISE cover is polynomial, but the
// paper dismisses it: "in reality, for efficient BDD implementations, BDD
// sizes do not add, since all BDDs in the system can share nodes ... Thus,
// we turn to a greedy heuristic."  This bench quantifies that argument:
// on conjunct lists drawn from the paper's own models it compares
//   * the greedy policy's resulting shared size, against
//   * the exact additive-model optimum's additive cost AND its *actual*
//     shared size once node sharing is counted.
#include "bench_util.hpp"
#include "ici/evaluate_policy.hpp"
#include "ici/pair_cover.hpp"
#include "models/avg_filter.hpp"
#include "models/network.hpp"
#include "models/typed_fifo.hpp"

using namespace icb;
using namespace icb::bench;

namespace {

void compare(TextTable& table, const std::string& label, ConjunctList list) {
  const std::uint64_t before = list.sharedNodeCount();

  PairCoverResult exact = optimalPairCover(list);
  ConjunctList exactApplied = applyPairCover(list, exact);

  ConjunctList greedy = list;
  EvaluatePolicyOptions options;
  options.simplifyFirst = false;  // isolate the merging decision
  greedyEvaluate(greedy, options);

  table.addRow({label, std::to_string(list.size()), std::to_string(before),
                std::to_string(greedy.sharedNodeCount()),
                std::to_string(exact.additiveCost),
                std::to_string(exactApplied.sharedNodeCount())});
}

}  // namespace

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  (void)args;
  std::printf(
      "Ablation / greedy (Figure 1) vs exact pairwise cover (Theorem 2)\n\n");

  TextTable table({"Workload", "Conjuncts", "List size", "Greedy shared",
                   "Exact additive", "Exact shared"});

  {
    BddManager mgr;
    TypedFifoModel model(mgr, {.depth = 8, .width = 8});
    compare(table, "fifo-8 invariants", model.fsm().property(false));
  }
  {
    BddManager mgr;
    NetworkModel model(mgr, {.processors = 5});
    compare(table, "network-5 invariants", model.fsm().property(false));
  }
  {
    BddManager mgr;
    AvgFilterModel model(mgr, {.depth = 8, .sampleWidth = 8});
    compare(table, "filter-8 w/ assists", model.fsm().property(true));
  }
  {
    // The backward iterate where merging decisions actually matter: the
    // property plus the BackImages of its members after one step.
    BddManager mgr;
    AvgFilterModel model(mgr, {.depth = 8, .sampleWidth = 8});
    ConjunctList list = model.fsm().property(true);
    ConjunctList grown(&mgr);
    for (const Bdd& c : list) grown.push(c);
    for (const Bdd& c : list) grown.push(model.fsm().backImage(c));
    grown.normalize();
    compare(table, "filter-8 iterate", grown);
  }

  table.print(std::cout);
  std::printf(
      "\nReading the table: the exact cover optimizes the ADDITIVE model;\n"
      "its 'Exact shared' column (what memory actually costs under node\n"
      "sharing) is routinely no better than the greedy result -- the\n"
      "paper's stated reason for preferring the heuristic.\n");
  return 0;
}
