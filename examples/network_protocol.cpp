// Verify the processors-through-a-network protocol (the paper's second
// example): every processor's outstanding-request counter matches the
// network contents.  Demonstrates the FD baseline: with --method fd the
// counters are treated as functional dependencies of the network state.
//
//   network_protocol [--processors N] [--method ...] [--bug]
//                    [--max-nodes N] [--time-limit SECONDS]
#include <cstdio>
#include <iostream>

#include "models/network.hpp"
#include "util/cli.hpp"
#include "verif/counterexample.hpp"
#include "verif/run_all.hpp"

using namespace icb;

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  NetworkConfig config;
  config.processors = static_cast<unsigned>(args.getInt("processors", 4));
  config.injectBug = args.getBool("bug", false);

  EngineOptions options;
  options.maxNodes = static_cast<std::uint64_t>(args.getInt("max-nodes", 4'000'000));
  options.timeLimitSeconds = args.getDouble("time-limit", 120.0);

  const Method method = parseMethod(args.getString("method", "xici"));

  BddManager mgr;
  NetworkModel model(mgr, config);
  std::printf("network protocol: %u processors, %u-slot network, bug=%s\n",
              config.processors, config.processors,
              config.injectBug ? "yes" : "no");
  std::printf("method=%s; property: counter_p == outstanding messages of p\n",
              methodName(method));

  const EngineResult r =
      runMethod(model.fsm(), method, model.fdCandidates(), options);

  std::printf("\nverdict:      %s\n", verdictName(r.verdict));
  std::printf("iterations:   %u\n", r.iterations);
  std::printf("time:         %.3fs\n", r.seconds);
  std::printf("peak iterate: %llu nodes %s\n",
              static_cast<unsigned long long>(r.peakIterateNodes),
              describeMemberSizes(r).c_str());
  if (method == Method::kFd) {
    std::printf(
        "note: with FD the iterate above is the factored form -- the reduced\n"
        "reachable set over the network bits plus one dependency function per\n"
        "counter bit; the monolithic reachable set is never built.\n");
  }
  if (!r.note.empty()) std::printf("note: %s\n", r.note.c_str());

  if (r.trace.has_value()) {
    std::printf("\ncounterexample (%zu states):\n", r.trace->states.size());
    std::cout << formatTrace(model.fsm(), *r.trace);
    const std::string err =
        validateTrace(model.fsm(), *r.trace, model.fsm().property(false));
    std::printf("trace replay: %s\n", err.empty() ? "valid" : err.c_str());
  }
  return r.verdict == Verdict::kHolds || r.verdict == Verdict::kViolated ? 0 : 1;
}
