// Verify the typed FIFO queue (the paper's first example) from the command
// line, optionally with the injected type-leak bug to see a counterexample.
//
//   fifo_verify [--depth N] [--width W] [--method fwd|bkwd|fd|ici|xici]
//               [--bug] [--max-nodes N] [--time-limit SECONDS]
#include <cstdio>
#include <iostream>

#include "models/typed_fifo.hpp"
#include "util/cli.hpp"
#include "verif/counterexample.hpp"
#include "verif/run_all.hpp"

using namespace icb;

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  TypedFifoConfig config;
  config.depth = static_cast<unsigned>(args.getInt("depth", 5));
  config.width = static_cast<unsigned>(args.getInt("width", 8));
  config.injectBug = args.getBool("bug", false);

  EngineOptions options;
  options.maxNodes = static_cast<std::uint64_t>(args.getInt("max-nodes", 4'000'000));
  options.timeLimitSeconds = args.getDouble("time-limit", 120.0);

  const Method method = parseMethod(args.getString("method", "xici"));

  BddManager mgr;
  TypedFifoModel model(mgr, config);
  std::printf("typed FIFO: depth=%u width=%u bound=%llu bug=%s method=%s\n",
              config.depth, config.width,
              static_cast<unsigned long long>(model.bound()),
              config.injectBug ? "yes" : "no", methodName(method));
  std::printf("property: every entry stays <= %llu (one conjunct per entry)\n",
              static_cast<unsigned long long>(model.bound()));

  const EngineResult r =
      runMethod(model.fsm(), method, model.fdCandidates(), options);

  std::printf("\nverdict:      %s\n", verdictName(r.verdict));
  std::printf("iterations:   %u\n", r.iterations);
  std::printf("time:         %.3fs\n", r.seconds);
  std::printf("peak iterate: %llu nodes %s\n",
              static_cast<unsigned long long>(r.peakIterateNodes),
              describeMemberSizes(r).c_str());
  std::printf("peak memory:  ~%llu KB (%llu nodes allocated)\n",
              static_cast<unsigned long long>(r.memBytesEstimate / 1024),
              static_cast<unsigned long long>(r.peakAllocatedNodes));

  if (r.trace.has_value()) {
    std::printf("\ncounterexample (%zu states):\n", r.trace->states.size());
    std::cout << formatTrace(model.fsm(), *r.trace);
    const std::string err =
        validateTrace(model.fsm(), *r.trace, model.fsm().property(false));
    std::printf("trace replay: %s\n", err.empty() ? "valid" : err.c_str());
  }
  return r.verdict == Verdict::kHolds || r.verdict == Verdict::kViolated ? 0 : 1;
}
