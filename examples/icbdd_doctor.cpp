// icbdd-doctor: full invariant audit of the BDD core and the ICI layer.
//
// Exercises a model (or loads a saved BDD dump), then turns every checker
// in src/check/ loose on the resulting manager:
//
//   * StructuralChecker -- arena walk, canonical form, unique-table
//     completeness, free-list and GC-root consistency;
//   * CacheAuditor      -- computed-cache validity scan plus sampled
//     re-execution of cached operator results;
//   * IciChecker        -- the property list must denote the same set after
//     Restrict-based simplification (paper Section III.A), and a pairwise
//     conjunction table must match freshly computed P_ij (Figure 1).
//
// Exit status: 0 when every audit is clean, 1 when any violation is found,
// 2 on usage errors.  Run it when the package misbehaves and you need to
// know whether the core's invariants still stand.
//
//   icbdd_doctor --model fifo|mutex|network|filter|pipeline [--method xici]
//   icbdd_doctor --bdd dump.txt
#include <cstdio>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "bdd/serialize.hpp"
#include "check/cache_auditor.hpp"
#include "check/check.hpp"
#include "check/ici_checker.hpp"
#include "check/structural_checker.hpp"
#include "ici/simplify.hpp"
#include "models/avg_filter.hpp"
#include "models/mutex_ring.hpp"
#include "models/network.hpp"
#include "models/pipeline_cpu.hpp"
#include "models/typed_fifo.hpp"
#include "obs/metrics.hpp"
#include "util/cli.hpp"
#include "verif/run_all.hpp"

using namespace icb;

namespace {

/// Prints one audit's outcome and accumulates its violation count.
std::size_t reportAudit(const char* what, const CheckReport& report) {
  std::printf("  %-22s %s\n", what, report.summary().c_str());
  return report.violations.size();
}

std::size_t auditCore(BddManager& mgr) {
  std::size_t bad = 0;
  bad += reportAudit("structural", StructuralChecker(mgr).run(CheckLevel::kFull));
  bad += reportAudit("computed cache", CacheAuditor(mgr).audit());
  return bad;
}

/// The ICI-layer audit: simplification must preserve the denoted set, and a
/// pairwise table over the list must agree with fresh conjunctions.
std::size_t auditIciLayer(BddManager& mgr, const ConjunctList& property) {
  std::size_t bad = 0;
  const IciChecker checker(mgr);

  ConjunctList simplified = property;
  simplifyList(simplified);
  bad += reportAudit("simplify denotation",
                     checker.checkDenotationPreserved(property, simplified));

  if (simplified.size() >= 2) {
    const PairTable table(mgr, simplified.items());
    bad += reportAudit("pair table", checker.checkPairTable(table));
  }
  return bad;
}

struct ModelUnderTest {
  std::shared_ptr<void> holder;  // keeps the model (and its Fsm) alive
  Fsm* fsm = nullptr;
  std::vector<unsigned> fdCandidates;
};

/// Builds one of the five example machines at a small, fast configuration:
/// the doctor's job is to exercise every code path, not to reproduce the
/// paper's table sizes.
ModelUnderTest buildModel(BddManager& mgr, const std::string& name) {
  ModelUnderTest out;
  if (name == "fifo") {
    auto m = std::make_shared<TypedFifoModel>(mgr,
                                              TypedFifoConfig{3, 4, false});
    out.fsm = &m->fsm();
    out.fdCandidates = m->fdCandidates();
    out.holder = std::move(m);
  } else if (name == "mutex") {
    auto m = std::make_shared<MutexRingModel>(mgr, MutexRingConfig{3, false});
    out.fsm = &m->fsm();
    out.fdCandidates = m->fdCandidates();
    out.holder = std::move(m);
  } else if (name == "network") {
    auto m = std::make_shared<NetworkModel>(mgr, NetworkConfig{3, false});
    out.fsm = &m->fsm();
    out.fdCandidates = m->fdCandidates();
    out.holder = std::move(m);
  } else if (name == "filter") {
    auto m = std::make_shared<AvgFilterModel>(mgr,
                                              AvgFilterConfig{2, 4, false});
    out.fsm = &m->fsm();
    out.fdCandidates = m->fdCandidates();
    out.holder = std::move(m);
  } else if (name == "pipeline") {
    auto m = std::make_shared<PipelineCpuModel>(mgr,
                                                PipelineCpuConfig{2, 1, false});
    out.fsm = &m->fsm();
    out.fdCandidates = m->fdCandidates();
    out.holder = std::move(m);
  }
  return out;
}

int doctorModel(const std::string& name, const std::string& methodName) {
  BddManager mgr;
  ModelUnderTest model = buildModel(mgr, name);
  if (model.fsm == nullptr) {
    std::fprintf(stderr,
                 "unknown model '%s' (fifo|mutex|network|filter|pipeline)\n",
                 name.c_str());
    return 2;
  }

  Method method = Method::kXici;
  try {
    method = parseMethod(methodName);
  } catch (const std::invalid_argument& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return 2;
  }

  // Exercise the full pipeline first so the audits see a manager that has
  // actually worked: images, caches, GC, and the ICI machinery.
  const EngineResult run =
      runMethod(*model.fsm, method, model.fdCandidates);
  std::printf("model %s via %s: %s after %u iterations (%llu peak nodes)\n",
              name.c_str(), icb::methodName(method),
              run.holds() ? "property holds" : "property NOT proven",
              run.iterations,
              static_cast<unsigned long long>(run.peakIterateNodes));

  std::size_t bad = auditCore(mgr);
  bad += auditIciLayer(mgr, model.fsm->property(true));

  // The run's counter snapshot: when the diagnosis is CORRUPT, the metrics
  // often localize the misbehaving layer before any debugger is attached.
  std::printf("run metrics:\n");
  run.metrics.print(std::cout);

  std::printf("diagnosis: %s\n", bad == 0 ? "CLEAN" : "CORRUPT");
  return bad == 0 ? 0 : 1;
}

int doctorDump(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "cannot open '%s'\n", path.c_str());
    return 2;
  }
  BddManager mgr;
  std::vector<Bdd> loaded;
  try {
    loaded = loadBdds(in, mgr);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "failed to load '%s': %s\n", path.c_str(), e.what());
    return 2;
  }
  std::printf("loaded %zu function(s) over %u variable(s) from %s\n",
              loaded.size(), mgr.varCount(), path.c_str());

  std::size_t bad = auditCore(mgr);
  if (!loaded.empty()) {
    bad += auditIciLayer(mgr, ConjunctList(&mgr, loaded));
  }

  obs::MetricsRegistry metrics;
  metrics.captureBdd(mgr);
  std::printf("manager metrics:\n");
  metrics.print(std::cout);

  std::printf("diagnosis: %s\n", bad == 0 ? "CLEAN" : "CORRUPT");
  return bad == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  if (args.has("bdd")) {
    return doctorDump(args.getString("bdd", ""));
  }
  return doctorModel(args.getString("model", "fifo"),
                     args.getString("method", "xici"));
}
