// icbdd-doctor: full invariant audit of the BDD core and the ICI layer.
//
// Exercises a model (or loads a saved BDD dump), then turns every checker
// in src/check/ loose on the resulting manager:
//
//   * StructuralChecker -- arena walk, canonical form, unique-table
//     completeness, free-list and GC-root consistency;
//   * CacheAuditor      -- computed-cache validity scan plus sampled
//     re-execution of cached operator results;
//   * IciChecker        -- the property list must denote the same set after
//     Restrict-based simplification (paper Section III.A), and a pairwise
//     conjunction table must match freshly computed P_ij (Figure 1).
//
// Exit status: 0 when every audit is clean, 1 when any violation is found,
// 2 on usage errors.  Run it when the package misbehaves and you need to
// know whether the core's invariants still stand.
//
//   icbdd_doctor --model fifo|mutex|network|filter|pipeline|all
//                [--method xici] [--jobs N] [--metrics-prom]
//                [--auto-reorder true] [--reorder-trigger K]
//                [--apply-workers N]
//   icbdd_doctor --bdd dump.txt
//   icbdd_doctor --dump-store dump [--spill-dir DIR] [--spill-threshold N]
//   icbdd_doctor --job spec.json       (one icbdd-svc-v1 request object)
//
// --dump-store reports a saved dump's header (format version, v3 binary
// layout info) and, after loading it, the store's occupancy: arena bytes,
// refcount side-table size, and -- when --spill-dir arms the external-memory
// tier -- the page-cache geometry and page-file size.
//
// --model all audits every machine; --jobs N runs the model cells on the
// parallel verification scheduler (each with a private manager), with the
// reports printed in model order regardless of completion order.
// --metrics-prom additionally prints the run's metrics registry in
// Prometheus text exposition -- the same rendering `icbdd_serve
// --metrics-port` serves at /metrics, so the format can be eyeballed (or
// grammar-checked in CI) without starting the service.
#include <cstdio>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <memory>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "bdd/serialize.hpp"
#include "check/cache_auditor.hpp"
#include "check/check.hpp"
#include "check/ici_checker.hpp"
#include "check/structural_checker.hpp"
#include "ici/simplify.hpp"
#include "models/avg_filter.hpp"
#include "models/mutex_ring.hpp"
#include "models/network.hpp"
#include "models/pipeline_cpu.hpp"
#include "models/typed_fifo.hpp"
#include "obs/metrics.hpp"
#include "obs/prometheus.hpp"
#include "svc/job.hpp"
#include "util/cli.hpp"
#include "verif/run_all.hpp"

using namespace icb;

namespace {

/// Writes one audit's outcome into `os` and returns its violation count.
/// The audits render into a stream (not straight to stdout) so parallel
/// --model all cells can aggregate their reports in model order.
std::size_t reportAudit(std::ostream& os, const char* what,
                        const CheckReport& report) {
  os << "  " << std::left << std::setw(22) << what << ' ' << report.summary()
     << '\n';
  return report.violations.size();
}

std::size_t auditCore(BddManager& mgr, std::ostream& os) {
  std::size_t bad = 0;
  bad += reportAudit(os, "structural",
                     StructuralChecker(mgr).run(CheckLevel::kFull));
  bad += reportAudit(os, "computed cache", CacheAuditor(mgr).audit());
  return bad;
}

/// The ICI-layer audit: simplification must preserve the denoted set, and a
/// pairwise table over the list must agree with fresh conjunctions.
std::size_t auditIciLayer(BddManager& mgr, const ConjunctList& property,
                          std::ostream& os) {
  std::size_t bad = 0;
  const IciChecker checker(mgr);

  ConjunctList simplified = property;
  simplifyList(simplified);
  bad += reportAudit(os, "simplify denotation",
                     checker.checkDenotationPreserved(property, simplified));

  if (simplified.size() >= 2) {
    const PairTable table(mgr, simplified.items());
    bad += reportAudit(os, "pair table", checker.checkPairTable(table));
  }
  return bad;
}

struct ModelUnderTest {
  std::shared_ptr<void> holder;  // keeps the model (and its Fsm) alive
  Fsm* fsm = nullptr;
  std::vector<unsigned> fdCandidates;
};

/// Builds one of the five example machines at a small, fast configuration:
/// the doctor's job is to exercise every code path, not to reproduce the
/// paper's table sizes.
ModelUnderTest buildModel(BddManager& mgr, const std::string& name) {
  ModelUnderTest out;
  if (name == "fifo") {
    auto m = std::make_shared<TypedFifoModel>(mgr,
                                              TypedFifoConfig{3, 4, false});
    out.fsm = &m->fsm();
    out.fdCandidates = m->fdCandidates();
    out.holder = std::move(m);
  } else if (name == "mutex") {
    auto m = std::make_shared<MutexRingModel>(mgr, MutexRingConfig{3, false});
    out.fsm = &m->fsm();
    out.fdCandidates = m->fdCandidates();
    out.holder = std::move(m);
  } else if (name == "network") {
    auto m = std::make_shared<NetworkModel>(mgr, NetworkConfig{3, false});
    out.fsm = &m->fsm();
    out.fdCandidates = m->fdCandidates();
    out.holder = std::move(m);
  } else if (name == "filter") {
    auto m = std::make_shared<AvgFilterModel>(mgr,
                                              AvgFilterConfig{2, 4, false});
    out.fsm = &m->fsm();
    out.fdCandidates = m->fdCandidates();
    out.holder = std::move(m);
  } else if (name == "pipeline") {
    auto m = std::make_shared<PipelineCpuModel>(mgr,
                                                PipelineCpuConfig{2, 1, false});
    out.fsm = &m->fsm();
    out.fdCandidates = m->fdCandidates();
    out.holder = std::move(m);
  }
  return out;
}

/// One model's full report text plus its violation count.
struct ModelAudit {
  std::string text;
  std::size_t violations = 0;
};

/// Runs one model end-to-end in a private manager, audits it, and renders
/// the report into `audit`.  Safe to call concurrently for different models.
EngineResult doctorOneModel(const std::string& name, Method method,
                            const EngineOptions& engineOptions,
                            const BddOptions& bddOptions, ModelAudit& audit) {
  std::ostringstream os;
  BddManager mgr(bddOptions);
  ModelUnderTest model = buildModel(mgr, name);
  if (model.fsm == nullptr) {
    throw std::invalid_argument("unknown model '" + name + "'");
  }

  // Exercise the full pipeline first so the audits see a manager that has
  // actually worked: images, caches, GC, and the ICI machinery.
  const EngineResult run =
      runMethod(*model.fsm, method, model.fdCandidates, engineOptions);
  os << "model " << name << " via " << icb::methodName(method) << ": "
     << (run.holds() ? "property holds" : "property NOT proven") << " after "
     << run.iterations << " iterations (" << run.peakIterateNodes
     << " peak nodes)\n";

  std::size_t bad = auditCore(mgr, os);
  bad += auditIciLayer(mgr, model.fsm->property(true), os);

  // The run's counter snapshot: when the diagnosis is CORRUPT, the metrics
  // often localize the misbehaving layer before any debugger is attached.
  os << "run metrics:\n";
  run.metrics.print(os);

  audit.text = os.str();
  audit.violations = bad;
  return run;
}

int doctorModel(const std::string& name, Method method,
                const BddOptions& bddOptions, bool metricsProm) {
  {
    BddManager probe;
    if (buildModel(probe, name).fsm == nullptr) {
      std::fprintf(stderr,
                   "unknown model '%s' (fifo|mutex|network|filter|pipeline|all)\n",
                   name.c_str());
      return 2;
    }
  }

  ModelAudit audit;
  const EngineResult run =
      doctorOneModel(name, method, EngineOptions{}, bddOptions, audit);
  std::cout << audit.text;
  if (metricsProm) {
    // The exact bytes icbdd_serve's /metrics endpoint would expose for this
    // registry -- CI grammar-checks this output.
    std::cout << obs::prometheusRender(run.metrics);
  }
  std::printf("diagnosis: %s\n", audit.violations == 0 ? "CLEAN" : "CORRUPT");
  return audit.violations == 0 ? 0 : 1;
}

/// --model all: every machine as one scheduler cell, each with its own
/// manager.  Reports print in model order whatever the completion order.
int doctorAllModels(Method method, unsigned jobs,
                    const BddOptions& bddOptions) {
  const std::vector<std::string> names{"fifo", "mutex", "network", "filter",
                                       "pipeline"};
  std::vector<ModelAudit> audits(names.size());

  par::SchedulerOptions schedOptions;
  schedOptions.jobs = jobs;
  par::VerifyScheduler scheduler(schedOptions);
  for (std::size_t i = 0; i < names.size(); ++i) {
    scheduler.submit(names[i], method,
                     [i, method, &names, &audits,
                      &bddOptions](const par::CellContext& ctx) {
                       EngineOptions options;
                       ctx.apply(options);
                       // Each cell writes only audits[i]; aggregation below
                       // reads after run() returns, so no synchronization is
                       // needed beyond the scheduler's own join.
                       return doctorOneModel(names[i], method, options,
                                             bddOptions, audits[i]);
                     });
  }

  std::size_t bad = 0;
  bool skippedAny = false;
  for (const par::CellResult& cell : scheduler.run()) {
    if (cell.skipped) {
      std::printf("model %s: skipped (%s)\n", cell.group.c_str(),
                  cell.skipReason.c_str());
      skippedAny = true;
      continue;
    }
    std::cout << audits[cell.index].text;
    bad += audits[cell.index].violations;
  }
  std::printf("diagnosis: %s\n",
              bad == 0 && !skippedAny ? "CLEAN"
              : bad == 0              ? "INCOMPLETE"
                                      : "CORRUPT");
  return bad == 0 && !skippedAny ? 0 : 1;
}

/// --job spec.json: an icbdd-svc-v1 request object drives the audit through
/// the service's own parser and model builder, so the request schema has a
/// second consumer and cannot drift from what icbdd_serve accepts.
int doctorJob(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "cannot open '%s'\n", path.c_str());
    return 2;
  }
  std::ostringstream text;
  text << in.rdbuf();

  svc::JobRequest request;
  try {
    request = svc::parseJobRequest(obs::parseJson(text.str()));
  } catch (const std::exception& e) {
    std::fprintf(stderr, "bad job spec '%s': %s\n", path.c_str(), e.what());
    return 2;
  }

  std::ostringstream os;
  std::size_t bad = 0;
  try {
    BddManager mgr(svc::bddOptionsFor(request));
    ModelInstance model = svc::buildJobModel(mgr, request);
    const EngineResult run = runMethod(*model.fsm, request.method,
                                       model.fdCandidates,
                                       svc::engineOptionsFor(request));
    os << "job " << request.id << ": model " << request.model << " via "
       << icb::methodName(request.method) << ": "
       << (run.holds() ? "property holds" : "property NOT proven") << " after "
       << run.iterations << " iterations (" << run.peakIterateNodes
       << " peak nodes)\n";
    bad = auditCore(mgr, os);
    bad += auditIciLayer(mgr, model.fsm->property(true), os);
    os << "run metrics:\n";
    run.metrics.print(os);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "job '%s' failed: %s\n", request.id.c_str(),
                 e.what());
    return 2;
  }
  std::cout << os.str();
  std::printf("diagnosis: %s\n", bad == 0 ? "CLEAN" : "CORRUPT");
  return bad == 0 ? 0 : 1;
}

/// --dump-store: header + occupancy report for a saved dump.  Prints the
/// dump's version/counts without building nodes (inspectDump), then loads it
/// and reports the live store's footprint -- arena, refcount side table, and
/// (under --spill-dir) the page cache the spill tier would run with.
int doctorDumpStore(const std::string& path, const CliArgs& args) {
  DumpInfo info;
  {
    std::ifstream in(path);
    if (!in) {
      std::fprintf(stderr, "cannot open '%s'\n", path.c_str());
      return 2;
    }
    try {
      info = inspectDump(in);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "failed to inspect '%s': %s\n", path.c_str(),
                   e.what());
      return 2;
    }
  }
  std::printf("dump %s\n", path.c_str());
  std::printf("  format          icbdd-bdd-v%d (%s)\n", info.version,
              info.binary ? "binary, little-endian" : "text");
  std::printf("  vars            %llu\n",
              static_cast<unsigned long long>(info.varCount));
  std::printf("  nodes           %llu\n",
              static_cast<unsigned long long>(info.nodeCount));
  std::printf("  roots           %llu\n",
              static_cast<unsigned long long>(info.rootCount));
  if (info.binary) {
    std::printf("  node payload    %llu bytes\n",
                static_cast<unsigned long long>(info.nodeBytes));
  }

  BddOptions options;
  options.spillDir = args.getString("spill-dir", "");
  options.spillThresholdNodes =
      static_cast<std::uint64_t>(args.getInt("spill-threshold", 0));
  BddManager mgr(options);
  std::vector<Bdd> loaded;
  {
    std::ifstream in(path);
    try {
      loaded = loadBdds(in, mgr);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "failed to load '%s': %s\n", path.c_str(),
                   e.what());
      return 2;
    }
  }
  const std::uint64_t allocated = mgr.allocatedNodes();
  std::printf("store after load\n");
  std::printf("  allocated nodes %llu (%llu arena bytes)\n",
              static_cast<unsigned long long>(allocated),
              static_cast<unsigned long long>(allocated * 16));
  std::printf("  root set        %zu externally referenced node(s)\n",
              mgr.rootSetSize());
  std::printf("  true footprint  %llu bytes (arena + side table + page cache)\n",
              static_cast<unsigned long long>(mgr.bytesForNodes(allocated)));
  const NodeStore::SpillInfo spill = mgr.spillInfo();
  std::printf("  spill tier      %s\n",
              spill.engaged ? "engaged"
                            : (spill.armed ? "armed (not engaged)" : "off"));
  if (spill.armed) {
    std::printf("    pages         %zu total, %zu resident, budget %zu "
                "(%llu bytes each)\n",
                spill.pageCount, spill.residentPages, spill.budgetPages,
                static_cast<unsigned long long>(spill.pageBytes));
    std::printf("    page file     %llu bytes\n",
                static_cast<unsigned long long>(spill.spillFileBytes));
  }
  return 0;
}

int doctorDump(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "cannot open '%s'\n", path.c_str());
    return 2;
  }
  BddManager mgr;
  std::vector<Bdd> loaded;
  try {
    loaded = loadBdds(in, mgr);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "failed to load '%s': %s\n", path.c_str(), e.what());
    return 2;
  }
  std::printf("loaded %zu function(s) over %u variable(s) from %s\n",
              loaded.size(), mgr.varCount(), path.c_str());

  std::size_t bad = auditCore(mgr, std::cout);
  if (!loaded.empty()) {
    bad += auditIciLayer(mgr, ConjunctList(&mgr, loaded), std::cout);
  }

  obs::MetricsRegistry metrics;
  metrics.captureBdd(mgr);
  std::printf("manager metrics:\n");
  metrics.print(std::cout);

  std::printf("diagnosis: %s\n", bad == 0 ? "CLEAN" : "CORRUPT");
  return bad == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  if (args.has("dump-store")) {
    return doctorDumpStore(args.getString("dump-store", ""), args);
  }
  if (args.has("bdd")) {
    return doctorDump(args.getString("bdd", ""));
  }
  if (args.has("job")) {
    return doctorJob(args.getString("job", ""));
  }

  Method method = Method::kXici;
  try {
    method = parseMethod(args.getString("method", "xici"));
  } catch (const std::invalid_argument& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return 2;
  }

  // The doctor doubles as the harness for auditing reordering under load:
  // --auto-reorder turns on growth-triggered grouped sifting for every
  // audited manager, --reorder-trigger tunes how eagerly it fires.
  // --apply-workers N audits a manager whose operations ran through the
  // shared-store parallel apply path (every checker sees the post-region,
  // quiesced arena; docs/parallel.md).
  BddOptions bddOptions;
  bddOptions.autoReorder = args.getBool("auto-reorder", false);
  bddOptions.reorderTrigger =
      args.getDouble("reorder-trigger", bddOptions.reorderTrigger);
  bddOptions.applyWorkers = static_cast<unsigned>(
      args.getInt("apply-workers", bddOptions.applyWorkers));

  const std::string model = args.getString("model", "fifo");
  if (model == "all") {
    return doctorAllModels(method,
                           static_cast<unsigned>(args.getInt("jobs", 0)),
                           bddOptions);
  }
  return doctorModel(model, method, bddOptions,
                     args.getBool("metrics-prom", false));
}
