// Quickstart: the library in five minutes.
//
//  1. Build BDDs with the manager + handle API.
//  2. Keep a huge conjunction implicit and let the paper's Figure 1 policy
//     decide which parts to evaluate.
//  3. Decide equality of two implicit lists with the exact termination test.
//  4. Model-check a tiny machine with all five engines.
#include <cstdio>

#include "ici/evaluate_policy.hpp"
#include "ici/termination.hpp"
#include "sym/bitvector.hpp"
#include "verif/run_all.hpp"

using namespace icb;

int main() {
  // ---- 1. plain BDD manipulation -------------------------------------------
  BddManager mgr;
  const unsigned x = mgr.newVar("x");
  const unsigned y = mgr.newVar("y");
  const unsigned z = mgr.newVar("z");
  const Bdd f = (mgr.var(x) & mgr.var(y)) | mgr.var(z);
  const Bdd g = !(((!mgr.var(x)) | (!mgr.var(y))) & (!mgr.var(z)));
  std::printf("canonicity: f == g is %s (negation is one bit flip)\n",
              f == g ? "true" : "false");
  std::printf("f has %llu nodes, %g satisfying assignments over 3 vars\n",
              static_cast<unsigned long long>(f.size()), f.satCount(3));

  // ---- 2. implicitly conjoined lists ----------------------------------------
  // Ten 8-bit lanes, each constrained to <= 128, bit-slice interleaved:
  // the conjunction is exponential in the lane count, the list is tiny.
  BddManager dm;
  std::vector<BitVec> lanes(10);
  for (unsigned bit = 0; bit < 8; ++bit) {
    for (auto& lane : lanes) {
      lane.push(dm.var(dm.newVar()));
    }
  }
  ConjunctList constraints(&dm);
  for (const auto& lane : lanes) constraints.push(uleConst(lane, 128));
  std::printf("\nimplicit list: %s\n", constraints.describe().c_str());
  std::printf("evaluated conjunction would need %llu nodes\n",
              static_cast<unsigned long long>(constraints.evaluate().size()));

  EvaluatePolicyOptions policy;  // GrowThreshold = 1.5, as in Figure 1
  const auto stats = evaluateAndSimplify(constraints, policy);
  std::printf("after the Figure 1 policy: %s (%u merges -- none pay off)\n",
              constraints.describe().c_str(), stats.merges);

  // ---- 3. exact equality of implicit lists ----------------------------------
  TerminationChecker checker(dm);
  ConjunctList doubled(&dm);
  for (const Bdd& c : constraints) {
    doubled.push(c);
    doubled.push(c | dm.var(0));  // implied: same denoted set
  }
  std::printf("exact test: lists denote the same set: %s\n",
              checker.equal(constraints, doubled) ? "yes" : "no");

  // ---- 4. a tiny verification -----------------------------------------------
  BddManager vm;
  Fsm fsm(vm);
  VarManager& vars = fsm.vars();
  const unsigned go = vars.addInputBit("go");
  BitVec counter;
  for (unsigned j = 0; j < 4; ++j) {
    counter.push(vars.cur(vars.addStateBit("c" + std::to_string(j))));
  }
  const Bdd atMax = eqConst(counter, 12);
  const BitVec next = mux(vars.input(go) & !atMax, incTrunc(counter), counter);
  for (unsigned j = 0; j < 4; ++j) fsm.setNext(j, next.bit(j));
  fsm.setInit(eqConst(counter, 0));
  fsm.addInvariant(uleConst(counter, 12));

  std::printf("\nverifying a saturating counter with all five methods:\n");
  for (const Method m : allMethods()) {
    const EngineResult r = runMethod(fsm, m, {});
    std::printf("  %-5s %-9s %u iterations, peak iterate %llu nodes\n",
                methodName(m), verdictName(r.verdict), r.iterations,
                static_cast<unsigned long long>(r.peakIterateNodes));
  }
  return 0;
}
