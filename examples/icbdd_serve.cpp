// icbdd-serve: the verification job service over stdin/stdout.
//
// Reads one icbdd-svc-v1 request per line from stdin, answers with
// job_accepted / job_rejected immediately, streams job_progress lines as
// checkpoints land, and emits one job_result (or job_failed) per job.  EOF
// on stdin drains the queue and exits.  docs/service.md documents the
// protocol and the recovery guarantees.
//
//   icbdd_serve [--workers N] [--queue-bound N] [--journal DIR]
//               [--checkpoint-every N] [--max-job-seconds S]
//               [--default-job-seconds S] [--drain] [--no-recover]
//               [--metrics-port N] [--apply-workers N]
//               [--spill-dir DIR] [--spill-threshold-nodes N]
//
// --apply-workers N gives every job that does not set "apply_workers" in
// its request N intra-problem apply workers (one shared manager per job,
// split at the BDD-operation level; docs/parallel.md).
//
// --spill-dir DIR sets where jobs that request "spill": true page their
// arena (default: the system temp directory); --spill-threshold-nodes N
// caps such jobs' resident arena at N nodes (0 = spill only where
// max_nodes would abort).  docs/external_memory.md covers the tier.
//
// With --journal DIR, jobs accepted by a previous (killed) process are
// re-submitted with resume=true at startup, picking up from their last
// journaled checkpoint.  --drain holds every job until EOF and then runs
// the whole queue as one batch (deterministic admission decisions -- the CI
// smoke test's rejection path).  Per-job engine trace spans still follow
// ICBDD_TRACE, with worker attribution, independent of this protocol stream.
//
// --metrics-port N serves /metrics (Prometheus text exposition), /healthz
// (200 ok / 503 degraded on journal write failure), and /statusz (JSON) on
// an embedded HTTP thread; N = 0 picks an ephemeral port, reported as
// "metrics_port" in the service_start line.  Without the flag no socket is
// opened and the NDJSON stream is byte-identical to previous releases.
#include <iostream>
#include <memory>
#include <mutex>
#include <sstream>
#include <string>

#include "obs/httpd.hpp"
#include "obs/jsonl.hpp"
#include "obs/prometheus.hpp"
#include "obs/trace.hpp"
#include "svc/service.hpp"
#include "util/cli.hpp"

using namespace icb;

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);

  svc::ServiceOptions options;
  options.workers = static_cast<unsigned>(args.getInt("workers", 1));
  options.queueBound =
      static_cast<std::size_t>(args.getInt("queue-bound", 16));
  options.maxJobSeconds = args.getDouble("max-job-seconds", 0.0);
  options.defaultJobSeconds = args.getDouble("default-job-seconds", 0.0);
  options.checkpointEvery =
      static_cast<unsigned>(args.getInt("checkpoint-every", 4));
  options.applyWorkers =
      static_cast<unsigned>(args.getInt("apply-workers", 0));
  options.journalDir = args.getString("journal", "");
  options.spillDir = args.getString("spill-dir", "");
  options.spillThresholdNodes = static_cast<std::uint64_t>(
      args.getInt("spill-threshold-nodes", 0));
  options.drain = args.getBool("drain", false);

  std::mutex outMutex;
  auto emit = [&outMutex](const std::string& line) {
    // One line per response, flushed immediately: callers drive the
    // protocol by reading lines, so buffering would deadlock them.
    std::lock_guard<std::mutex> lock(outMutex);
    std::cout << line << '\n' << std::flush;
  };

  svc::VerifyService service(options, emit);

  // The scrape endpoints.  Everything the handler touches is internally
  // synchronized (SharedMetrics snapshot, journal stats), so serving from
  // the HTTP thread needs no extra locking.
  const std::int64_t metricsPort = args.getInt("metrics-port", -1);
  std::unique_ptr<obs::HttpServer> httpd;
  if (metricsPort >= 0) {
    httpd = std::make_unique<obs::HttpServer>(
        static_cast<std::uint16_t>(metricsPort),
        [&service, &options](const std::string& path) {
          obs::HttpResponse resp;
          if (path == "/metrics") {
            resp.contentType = "text/plain; version=0.0.4; charset=utf-8";
            resp.body = obs::prometheusRender(service.metricsSnapshot());
          } else if (path == "/healthz") {
            const svc::ServiceHealth h = service.health();
            std::ostringstream body;
            body << (h.ok() ? "ok" : "degraded: " + h.journalError) << "\n"
                 << "queue_depth " << h.queueDepth << "\n"
                 << "journal_age_s " << h.secondsSinceJournalWrite << "\n";
            resp.status = h.ok() ? 200 : 503;
            resp.body = body.str();
          } else if (path == "/statusz") {
            const svc::ServiceHealth h = service.health();
            resp.contentType = "application/json";
            resp.body = std::move(obs::JsonObject()
                                      .put("schema", "icbdd-svc-v1")
                                      .put("uptime_s", obs::traceClockSeconds())
                                      .put("queue_depth",
                                           static_cast<std::uint64_t>(
                                               h.queueDepth))
                                      .put("journal_ok", h.journalOk)
                                      .put("journal_age_s",
                                           h.secondsSinceJournalWrite)
                                      .put("spill_dir", options.spillDir)
                                      .put("spill_threshold_nodes",
                                           options.spillThresholdNodes)
                                      .putRaw("metrics",
                                              service.metricsSnapshot()
                                                  .toJson()))
                            .str() +
                        "\n";
          } else {
            resp.status = 404;
            resp.body = "not found\n";
          }
          return resp;
        });
  }

  obs::JsonObject start;
  start.put("schema", "icbdd-svc-v1")
      .put("type", "service_start")
      .put("workers", static_cast<std::uint64_t>(options.workers))
      .put("queue_bound", static_cast<std::uint64_t>(options.queueBound))
      .put("journal", options.journalDir);
  // Only present when the endpoint is enabled, so the default stream stays
  // byte-identical to releases without the flag.
  if (httpd) start.put("metrics_port", static_cast<std::uint64_t>(httpd->port()));
  emit(std::move(start).str());

  if (!options.journalDir.empty() && !args.getBool("no-recover", false)) {
    service.recoverJournal();
  }

  std::string line;
  while (std::getline(std::cin, line)) {
    if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
    service.submitLine(line);
  }
  service.shutdown();

  const obs::MetricsRegistry metrics = service.metricsSnapshot();
  emit(std::move(obs::JsonObject()
                     .put("schema", "icbdd-svc-v1")
                     .put("type", "service_stop")
                     .put("jobs_accepted", metrics.counter("svc.jobs.accepted"))
                     .put("jobs_rejected", metrics.counter("svc.jobs.rejected"))
                     .put("jobs_completed",
                          metrics.counter("svc.jobs.completed"))
                     .put("jobs_failed", metrics.counter("svc.jobs.failed"))
                     .put("jobs_resumed", metrics.counter("svc.jobs.resumed"))
                     .put("checkpoints_saved",
                          metrics.counter("svc.checkpoints.saved")))
           .str());
  return 0;
}
