// Prove the pipelined moving-average filter equivalent to its specification
// (the paper's Figure 2 example), with or without the user-supplied
// assisting invariants -- run without them and watch XICI derive the
// per-layer lemmas automatically (the paper's Table 2 headline).
//
//   filter_equivalence [--depth 4|8|16] [--sample-width W] [--assist]
//                      [--method ...] [--bug] [--max-nodes N]
//                      [--time-limit SECONDS]
#include <cstdio>
#include <iostream>

#include "models/avg_filter.hpp"
#include "util/cli.hpp"
#include "verif/counterexample.hpp"
#include "verif/run_all.hpp"

using namespace icb;

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  AvgFilterConfig config;
  config.depth = static_cast<unsigned>(args.getInt("depth", 4));
  config.sampleWidth = static_cast<unsigned>(args.getInt("sample-width", 8));
  config.injectBug = args.getBool("bug", false);

  EngineOptions options;
  options.withAssists = args.getBool("assist", false);
  options.maxNodes = static_cast<std::uint64_t>(args.getInt("max-nodes", 8'000'000));
  options.timeLimitSeconds = args.getDouble("time-limit", 300.0);

  const Method method = parseMethod(args.getString("method", "xici"));

  BddManager mgr;
  AvgFilterModel model(mgr, config);
  std::printf(
      "moving-average filter: depth=%u (%u adder layers) samples=%u bits\n",
      config.depth, model.layers(), config.sampleWidth);
  std::printf("assisting invariants: %s; method=%s; bug=%s\n",
              options.withAssists ? "supplied by user" : "none (automatic)",
              methodName(method), config.injectBug ? "yes" : "no");

  const EngineResult r =
      runMethod(model.fsm(), method, model.fdCandidates(), options);

  std::printf("\nverdict:      %s\n", verdictName(r.verdict));
  std::printf("iterations:   %u\n", r.iterations);
  std::printf("time:         %.3fs\n", r.seconds);
  std::printf("peak iterate: %llu nodes %s\n",
              static_cast<unsigned long long>(r.peakIterateNodes),
              describeMemberSizes(r).c_str());
  if (!options.withAssists && method == Method::kXici &&
      r.peakIterateMemberSizes.size() > 1) {
    std::printf(
        "note: the %zu-conjunct breakdown above is the per-layer lemma list\n"
        "the evaluation policy derived on its own -- the same invariants a\n"
        "user would have had to write by hand for the original ICI method.\n",
        r.peakIterateMemberSizes.size());
  }
  if (r.trace.has_value()) {
    std::printf("\ncounterexample (%zu states):\n", r.trace->states.size());
    std::cout << formatTrace(model.fsm(), *r.trace);
    const std::string err =
        validateTrace(model.fsm(), *r.trace, model.fsm().property(false));
    std::printf("trace replay: %s\n", err.empty() ? "valid" : err.c_str());
  }
  return r.verdict == Verdict::kHolds || r.verdict == Verdict::kViolated ? 0 : 1;
}
