// icbdd-trace: run one model/method with JSONL tracing and summarize.
//
// The tool demonstrates the full obs/ round trip: it installs a TraceSink
// on a file (or keeps the one ICBDD_TRACE configured), runs the chosen
// engine, then parses its own JSONL back and prints a digest -- slowest
// phases, conjunct-size growth across the backward-image iterations, and
// the cache hit rates from the run's metrics.
//
//   icbdd_trace [--model fifo|mutex|network|filter|pipeline]
//               [--method fwd|bkwd|fd|ici|xici] [--out run.jsonl] [--keep]
//
// The trace file is left on disk (default trace.jsonl, or --out) so it can
// be inspected or fed to jq; docs/observability.md documents the schema.
#include <algorithm>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "models/avg_filter.hpp"
#include "models/mutex_ring.hpp"
#include "models/network.hpp"
#include "models/pipeline_cpu.hpp"
#include "models/typed_fifo.hpp"
#include "obs/jsonl.hpp"
#include "obs/trace.hpp"
#include "util/cli.hpp"
#include "verif/run_all.hpp"

using namespace icb;

namespace {

struct ModelUnderTest {
  std::shared_ptr<void> holder;  // keeps the model (and its Fsm) alive
  Fsm* fsm = nullptr;
  std::vector<unsigned> fdCandidates;
};

/// Small, fast configurations -- the point is the trace, not the table.
ModelUnderTest buildModel(BddManager& mgr, const std::string& name) {
  ModelUnderTest out;
  if (name == "fifo") {
    auto m = std::make_shared<TypedFifoModel>(mgr, TypedFifoConfig{3, 4, false});
    out.fsm = &m->fsm();
    out.fdCandidates = m->fdCandidates();
    out.holder = std::move(m);
  } else if (name == "mutex") {
    auto m = std::make_shared<MutexRingModel>(mgr, MutexRingConfig{3, false});
    out.fsm = &m->fsm();
    out.fdCandidates = m->fdCandidates();
    out.holder = std::move(m);
  } else if (name == "network") {
    auto m = std::make_shared<NetworkModel>(mgr, NetworkConfig{3, false});
    out.fsm = &m->fsm();
    out.fdCandidates = m->fdCandidates();
    out.holder = std::move(m);
  } else if (name == "filter") {
    auto m = std::make_shared<AvgFilterModel>(mgr, AvgFilterConfig{2, 4, false});
    out.fsm = &m->fsm();
    out.fdCandidates = m->fdCandidates();
    out.holder = std::move(m);
  } else if (name == "pipeline") {
    auto m = std::make_shared<PipelineCpuModel>(mgr, PipelineCpuConfig{2, 1, false});
    out.fsm = &m->fsm();
    out.fdCandidates = m->fdCandidates();
    out.holder = std::move(m);
  }
  return out;
}

void summarize(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "cannot reopen trace '%s'\n", path.c_str());
    return;
  }
  const std::vector<obs::JsonValue> events = obs::parseJsonLines(in);

  struct Span {
    std::string phase;
    std::uint64_t iter = 0;
    double wallSeconds = 0.0;
  };
  std::vector<Span> spans;
  std::vector<std::pair<std::uint64_t, std::vector<double>>> conjunctSizes;

  for (const obs::JsonValue& ev : events) {
    if (ev.find("ev") == nullptr) continue;
    if (ev.find("ev")->textOr("") != "phase_end") continue;
    Span s;
    s.phase = ev.find("phase") != nullptr ? ev.find("phase")->textOr("?") : "?";
    s.iter = static_cast<std::uint64_t>(
        ev.find("iter") != nullptr ? ev.find("iter")->numberOr(0.0) : 0.0);
    s.wallSeconds =
        ev.find("wall_s") != nullptr ? ev.find("wall_s")->numberOr(0.0) : 0.0;
    spans.push_back(s);
    if (const obs::JsonValue* sizes = ev.find("conjunct_sizes");
        sizes != nullptr && !sizes->items.empty()) {
      std::vector<double> members;
      members.reserve(sizes->items.size());
      for (const obs::JsonValue& m : sizes->items) members.push_back(m.numberOr(0.0));
      conjunctSizes.emplace_back(s.iter, std::move(members));
    }
  }

  std::printf("\ntrace summary (%zu events, %zu phase spans)\n", events.size(),
              spans.size());

  std::sort(spans.begin(), spans.end(), [](const Span& a, const Span& b) {
    return a.wallSeconds > b.wallSeconds;
  });
  std::printf("  slowest phases:\n");
  for (std::size_t i = 0; i < std::min<std::size_t>(5, spans.size()); ++i) {
    std::printf("    %-12s iter %-4llu %.6fs\n", spans[i].phase.c_str(),
                static_cast<unsigned long long>(spans[i].iter),
                spans[i].wallSeconds);
  }

  if (!conjunctSizes.empty()) {
    std::printf("  conjunct sizes per iteration:\n");
    for (const auto& [iter, members] : conjunctSizes) {
      std::printf("    iter %-4llu [", static_cast<unsigned long long>(iter));
      for (std::size_t i = 0; i < members.size(); ++i) {
        std::printf("%s%.0f", i == 0 ? "" : ", ", members[i]);
      }
      std::printf("]\n");
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  const std::string modelName = args.getString("model", "mutex");
  const std::string path = args.getString("out", "trace.jsonl");

  BddManager mgr;
  ModelUnderTest model = buildModel(mgr, modelName);
  if (model.fsm == nullptr) {
    std::fprintf(stderr,
                 "unknown model '%s' (fifo|mutex|network|filter|pipeline)\n",
                 modelName.c_str());
    return 2;
  }

  Method method = Method::kXici;
  try {
    method = parseMethod(args.getString("method", "xici"));
  } catch (const std::invalid_argument& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return 2;
  }

  obs::TraceSink sink(path);
  EngineOptions options;
  options.traceSink = &sink;
  const EngineResult run =
      runMethod(*model.fsm, method, model.fdCandidates, options);

  std::printf("model %s via %s: %s after %u iterations (%llu peak nodes)\n",
              modelName.c_str(), methodName(method), verdictName(run.verdict),
              run.iterations,
              static_cast<unsigned long long>(run.peakIterateNodes));
  std::printf("trace: %s (%llu lines, %.6fs writing)\n", path.c_str(),
              static_cast<unsigned long long>(sink.linesWritten()),
              sink.writeSeconds());
  std::printf("run metrics:\n");
  run.metrics.print(std::cout);

  summarize(path);
  return run.holds() || run.violated() ? 0 : 1;
}
