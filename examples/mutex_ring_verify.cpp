// Verify mutual exclusion on a token ring -- the classic example family the
// paper's introduction cites.  The property is naturally a big implicit
// conjunction of tiny conjuncts (two per cell pair, one per cell), which is
// exactly the shape the implicitly-conjoined methods are built for.
//
//   mutex_ring_verify [--cells N] [--method ...] [--bug]
//                     [--max-nodes N] [--time-limit SECONDS]
#include <cstdio>
#include <iostream>

#include "models/mutex_ring.hpp"
#include "util/cli.hpp"
#include "verif/counterexample.hpp"
#include "verif/run_all.hpp"

using namespace icb;

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  MutexRingConfig config;
  config.cells = static_cast<unsigned>(args.getInt("cells", 4));
  config.injectBug = args.getBool("bug", false);

  EngineOptions options;
  options.maxNodes = static_cast<std::uint64_t>(args.getInt("max-nodes", 4'000'000));
  options.timeLimitSeconds = args.getDouble("time-limit", 120.0);

  const Method method = parseMethod(args.getString("method", "xici"));

  BddManager mgr;
  MutexRingModel model(mgr, config);
  const ConjunctList prop = model.fsm().property(false);
  std::printf("token ring: %u cells, bug=%s, method=%s\n", config.cells,
              config.injectBug ? "yes (token duplicated on release)" : "no",
              methodName(method));
  std::printf("property: %zu conjuncts (pairwise exclusion + token discipline)\n",
              prop.size());

  const EngineResult r =
      runMethod(model.fsm(), method, model.fdCandidates(), options);

  std::printf("\nverdict:      %s\n", verdictName(r.verdict));
  std::printf("iterations:   %u\n", r.iterations);
  std::printf("time:         %.3fs\n", r.seconds);
  std::printf("peak iterate: %llu nodes %s\n",
              static_cast<unsigned long long>(r.peakIterateNodes),
              describeMemberSizes(r).c_str());

  if (r.trace.has_value()) {
    std::printf("\ncounterexample (%zu states, I=idle W=want C=crit, *=token):\n",
                r.trace->states.size());
    std::cout << formatTrace(model.fsm(), *r.trace);
    const std::string err =
        validateTrace(model.fsm(), *r.trace, model.fsm().property(false));
    std::printf("trace replay: %s\n", err.empty() ? "valid" : err.c_str());
  }
  return r.verdict == Verdict::kHolds || r.verdict == Verdict::kViolated ? 0 : 1;
}
