// Verify the 3-stage pipelined processor against its non-pipelined
// specification (the paper's Figure 3 / Table 3 example).  --bug removes the
// register bypass path; the counterexample then shows the classic
// back-to-back data hazard.
//
//   pipeline_verify [--registers 2|4] [--width B] [--method ...] [--bug]
//                   [--max-nodes N] [--time-limit SECONDS]
#include <cstdio>
#include <iostream>

#include "models/pipeline_cpu.hpp"
#include "util/cli.hpp"
#include "verif/counterexample.hpp"
#include "verif/run_all.hpp"

using namespace icb;

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  PipelineCpuConfig config;
  config.registers = static_cast<unsigned>(args.getInt("registers", 2));
  config.width = static_cast<unsigned>(args.getInt("width", 1));
  config.injectBug = args.getBool("bug", false);

  EngineOptions options;
  options.maxNodes = static_cast<std::uint64_t>(args.getInt("max-nodes", 8'000'000));
  options.timeLimitSeconds = args.getDouble("time-limit", 300.0);

  const Method method = parseMethod(args.getString("method", "xici"));

  BddManager mgr;
  PipelineCpuModel model(mgr, config);
  std::printf(
      "pipelined CPU vs spec: %u registers, %u-bit datapath, bypass %s\n",
      config.registers, config.width,
      config.injectBug ? "REMOVED (bug)" : "present");
  std::printf("method=%s; property: register files always agree\n",
              methodName(method));

  const EngineResult r =
      runMethod(model.fsm(), method, model.fdCandidates(), options);

  std::printf("\nverdict:      %s\n", verdictName(r.verdict));
  std::printf("iterations:   %u\n", r.iterations);
  std::printf("time:         %.3fs\n", r.seconds);
  std::printf("peak iterate: %llu nodes %s\n",
              static_cast<unsigned long long>(r.peakIterateNodes),
              describeMemberSizes(r).c_str());
  std::printf("peak memory:  ~%llu KB\n",
              static_cast<unsigned long long>(r.memBytesEstimate / 1024));

  if (r.trace.has_value()) {
    std::printf("\ncounterexample (%zu states):\n", r.trace->states.size());
    std::cout << formatTrace(model.fsm(), *r.trace);
    const std::string err =
        validateTrace(model.fsm(), *r.trace, model.fsm().property(false));
    std::printf("trace replay: %s\n", err.empty() ? "valid" : err.c_str());
  }
  return r.verdict == Verdict::kHolds || r.verdict == Verdict::kViolated ? 0 : 1;
}
