
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/bdd/analysis.cpp" "src/CMakeFiles/icbdd.dir/bdd/analysis.cpp.o" "gcc" "src/CMakeFiles/icbdd.dir/bdd/analysis.cpp.o.d"
  "/root/repo/src/bdd/compose.cpp" "src/CMakeFiles/icbdd.dir/bdd/compose.cpp.o" "gcc" "src/CMakeFiles/icbdd.dir/bdd/compose.cpp.o.d"
  "/root/repo/src/bdd/io.cpp" "src/CMakeFiles/icbdd.dir/bdd/io.cpp.o" "gcc" "src/CMakeFiles/icbdd.dir/bdd/io.cpp.o.d"
  "/root/repo/src/bdd/manager.cpp" "src/CMakeFiles/icbdd.dir/bdd/manager.cpp.o" "gcc" "src/CMakeFiles/icbdd.dir/bdd/manager.cpp.o.d"
  "/root/repo/src/bdd/ops.cpp" "src/CMakeFiles/icbdd.dir/bdd/ops.cpp.o" "gcc" "src/CMakeFiles/icbdd.dir/bdd/ops.cpp.o.d"
  "/root/repo/src/bdd/quant.cpp" "src/CMakeFiles/icbdd.dir/bdd/quant.cpp.o" "gcc" "src/CMakeFiles/icbdd.dir/bdd/quant.cpp.o.d"
  "/root/repo/src/bdd/reorder.cpp" "src/CMakeFiles/icbdd.dir/bdd/reorder.cpp.o" "gcc" "src/CMakeFiles/icbdd.dir/bdd/reorder.cpp.o.d"
  "/root/repo/src/bdd/restrict.cpp" "src/CMakeFiles/icbdd.dir/bdd/restrict.cpp.o" "gcc" "src/CMakeFiles/icbdd.dir/bdd/restrict.cpp.o.d"
  "/root/repo/src/bdd/restrict_multi.cpp" "src/CMakeFiles/icbdd.dir/bdd/restrict_multi.cpp.o" "gcc" "src/CMakeFiles/icbdd.dir/bdd/restrict_multi.cpp.o.d"
  "/root/repo/src/bdd/serialize.cpp" "src/CMakeFiles/icbdd.dir/bdd/serialize.cpp.o" "gcc" "src/CMakeFiles/icbdd.dir/bdd/serialize.cpp.o.d"
  "/root/repo/src/ici/conjunct_list.cpp" "src/CMakeFiles/icbdd.dir/ici/conjunct_list.cpp.o" "gcc" "src/CMakeFiles/icbdd.dir/ici/conjunct_list.cpp.o.d"
  "/root/repo/src/ici/evaluate_policy.cpp" "src/CMakeFiles/icbdd.dir/ici/evaluate_policy.cpp.o" "gcc" "src/CMakeFiles/icbdd.dir/ici/evaluate_policy.cpp.o.d"
  "/root/repo/src/ici/pair_cover.cpp" "src/CMakeFiles/icbdd.dir/ici/pair_cover.cpp.o" "gcc" "src/CMakeFiles/icbdd.dir/ici/pair_cover.cpp.o.d"
  "/root/repo/src/ici/pair_table.cpp" "src/CMakeFiles/icbdd.dir/ici/pair_table.cpp.o" "gcc" "src/CMakeFiles/icbdd.dir/ici/pair_table.cpp.o.d"
  "/root/repo/src/ici/simplify.cpp" "src/CMakeFiles/icbdd.dir/ici/simplify.cpp.o" "gcc" "src/CMakeFiles/icbdd.dir/ici/simplify.cpp.o.d"
  "/root/repo/src/ici/termination.cpp" "src/CMakeFiles/icbdd.dir/ici/termination.cpp.o" "gcc" "src/CMakeFiles/icbdd.dir/ici/termination.cpp.o.d"
  "/root/repo/src/models/avg_filter.cpp" "src/CMakeFiles/icbdd.dir/models/avg_filter.cpp.o" "gcc" "src/CMakeFiles/icbdd.dir/models/avg_filter.cpp.o.d"
  "/root/repo/src/models/mutex_ring.cpp" "src/CMakeFiles/icbdd.dir/models/mutex_ring.cpp.o" "gcc" "src/CMakeFiles/icbdd.dir/models/mutex_ring.cpp.o.d"
  "/root/repo/src/models/network.cpp" "src/CMakeFiles/icbdd.dir/models/network.cpp.o" "gcc" "src/CMakeFiles/icbdd.dir/models/network.cpp.o.d"
  "/root/repo/src/models/pipeline_cpu.cpp" "src/CMakeFiles/icbdd.dir/models/pipeline_cpu.cpp.o" "gcc" "src/CMakeFiles/icbdd.dir/models/pipeline_cpu.cpp.o.d"
  "/root/repo/src/models/typed_fifo.cpp" "src/CMakeFiles/icbdd.dir/models/typed_fifo.cpp.o" "gcc" "src/CMakeFiles/icbdd.dir/models/typed_fifo.cpp.o.d"
  "/root/repo/src/sym/bitvector.cpp" "src/CMakeFiles/icbdd.dir/sym/bitvector.cpp.o" "gcc" "src/CMakeFiles/icbdd.dir/sym/bitvector.cpp.o.d"
  "/root/repo/src/sym/fsm.cpp" "src/CMakeFiles/icbdd.dir/sym/fsm.cpp.o" "gcc" "src/CMakeFiles/icbdd.dir/sym/fsm.cpp.o.d"
  "/root/repo/src/sym/image.cpp" "src/CMakeFiles/icbdd.dir/sym/image.cpp.o" "gcc" "src/CMakeFiles/icbdd.dir/sym/image.cpp.o.d"
  "/root/repo/src/sym/var_manager.cpp" "src/CMakeFiles/icbdd.dir/sym/var_manager.cpp.o" "gcc" "src/CMakeFiles/icbdd.dir/sym/var_manager.cpp.o.d"
  "/root/repo/src/util/cli.cpp" "src/CMakeFiles/icbdd.dir/util/cli.cpp.o" "gcc" "src/CMakeFiles/icbdd.dir/util/cli.cpp.o.d"
  "/root/repo/src/util/table.cpp" "src/CMakeFiles/icbdd.dir/util/table.cpp.o" "gcc" "src/CMakeFiles/icbdd.dir/util/table.cpp.o.d"
  "/root/repo/src/verif/backward.cpp" "src/CMakeFiles/icbdd.dir/verif/backward.cpp.o" "gcc" "src/CMakeFiles/icbdd.dir/verif/backward.cpp.o.d"
  "/root/repo/src/verif/counterexample.cpp" "src/CMakeFiles/icbdd.dir/verif/counterexample.cpp.o" "gcc" "src/CMakeFiles/icbdd.dir/verif/counterexample.cpp.o.d"
  "/root/repo/src/verif/engine.cpp" "src/CMakeFiles/icbdd.dir/verif/engine.cpp.o" "gcc" "src/CMakeFiles/icbdd.dir/verif/engine.cpp.o.d"
  "/root/repo/src/verif/fd_forward.cpp" "src/CMakeFiles/icbdd.dir/verif/fd_forward.cpp.o" "gcc" "src/CMakeFiles/icbdd.dir/verif/fd_forward.cpp.o.d"
  "/root/repo/src/verif/forward.cpp" "src/CMakeFiles/icbdd.dir/verif/forward.cpp.o" "gcc" "src/CMakeFiles/icbdd.dir/verif/forward.cpp.o.d"
  "/root/repo/src/verif/ici_backward.cpp" "src/CMakeFiles/icbdd.dir/verif/ici_backward.cpp.o" "gcc" "src/CMakeFiles/icbdd.dir/verif/ici_backward.cpp.o.d"
  "/root/repo/src/verif/run_all.cpp" "src/CMakeFiles/icbdd.dir/verif/run_all.cpp.o" "gcc" "src/CMakeFiles/icbdd.dir/verif/run_all.cpp.o.d"
  "/root/repo/src/verif/xici_backward.cpp" "src/CMakeFiles/icbdd.dir/verif/xici_backward.cpp.o" "gcc" "src/CMakeFiles/icbdd.dir/verif/xici_backward.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
