
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/bdd_analysis_test.cpp" "tests/CMakeFiles/icbdd_tests.dir/bdd_analysis_test.cpp.o" "gcc" "tests/CMakeFiles/icbdd_tests.dir/bdd_analysis_test.cpp.o.d"
  "/root/repo/tests/bdd_basic_test.cpp" "tests/CMakeFiles/icbdd_tests.dir/bdd_basic_test.cpp.o" "gcc" "tests/CMakeFiles/icbdd_tests.dir/bdd_basic_test.cpp.o.d"
  "/root/repo/tests/bdd_compose_test.cpp" "tests/CMakeFiles/icbdd_tests.dir/bdd_compose_test.cpp.o" "gcc" "tests/CMakeFiles/icbdd_tests.dir/bdd_compose_test.cpp.o.d"
  "/root/repo/tests/bdd_manager_test.cpp" "tests/CMakeFiles/icbdd_tests.dir/bdd_manager_test.cpp.o" "gcc" "tests/CMakeFiles/icbdd_tests.dir/bdd_manager_test.cpp.o.d"
  "/root/repo/tests/bdd_ops_test.cpp" "tests/CMakeFiles/icbdd_tests.dir/bdd_ops_test.cpp.o" "gcc" "tests/CMakeFiles/icbdd_tests.dir/bdd_ops_test.cpp.o.d"
  "/root/repo/tests/bdd_quant_test.cpp" "tests/CMakeFiles/icbdd_tests.dir/bdd_quant_test.cpp.o" "gcc" "tests/CMakeFiles/icbdd_tests.dir/bdd_quant_test.cpp.o.d"
  "/root/repo/tests/bdd_reorder_test.cpp" "tests/CMakeFiles/icbdd_tests.dir/bdd_reorder_test.cpp.o" "gcc" "tests/CMakeFiles/icbdd_tests.dir/bdd_reorder_test.cpp.o.d"
  "/root/repo/tests/bdd_restrict_test.cpp" "tests/CMakeFiles/icbdd_tests.dir/bdd_restrict_test.cpp.o" "gcc" "tests/CMakeFiles/icbdd_tests.dir/bdd_restrict_test.cpp.o.d"
  "/root/repo/tests/bitvector_test.cpp" "tests/CMakeFiles/icbdd_tests.dir/bitvector_test.cpp.o" "gcc" "tests/CMakeFiles/icbdd_tests.dir/bitvector_test.cpp.o.d"
  "/root/repo/tests/conjunct_list_test.cpp" "tests/CMakeFiles/icbdd_tests.dir/conjunct_list_test.cpp.o" "gcc" "tests/CMakeFiles/icbdd_tests.dir/conjunct_list_test.cpp.o.d"
  "/root/repo/tests/counterexample_test.cpp" "tests/CMakeFiles/icbdd_tests.dir/counterexample_test.cpp.o" "gcc" "tests/CMakeFiles/icbdd_tests.dir/counterexample_test.cpp.o.d"
  "/root/repo/tests/engine_edge_test.cpp" "tests/CMakeFiles/icbdd_tests.dir/engine_edge_test.cpp.o" "gcc" "tests/CMakeFiles/icbdd_tests.dir/engine_edge_test.cpp.o.d"
  "/root/repo/tests/engine_test.cpp" "tests/CMakeFiles/icbdd_tests.dir/engine_test.cpp.o" "gcc" "tests/CMakeFiles/icbdd_tests.dir/engine_test.cpp.o.d"
  "/root/repo/tests/fsm_image_test.cpp" "tests/CMakeFiles/icbdd_tests.dir/fsm_image_test.cpp.o" "gcc" "tests/CMakeFiles/icbdd_tests.dir/fsm_image_test.cpp.o.d"
  "/root/repo/tests/ici_policy_test.cpp" "tests/CMakeFiles/icbdd_tests.dir/ici_policy_test.cpp.o" "gcc" "tests/CMakeFiles/icbdd_tests.dir/ici_policy_test.cpp.o.d"
  "/root/repo/tests/models_test.cpp" "tests/CMakeFiles/icbdd_tests.dir/models_test.cpp.o" "gcc" "tests/CMakeFiles/icbdd_tests.dir/models_test.cpp.o.d"
  "/root/repo/tests/mutex_ring_test.cpp" "tests/CMakeFiles/icbdd_tests.dir/mutex_ring_test.cpp.o" "gcc" "tests/CMakeFiles/icbdd_tests.dir/mutex_ring_test.cpp.o.d"
  "/root/repo/tests/paper_numbers_test.cpp" "tests/CMakeFiles/icbdd_tests.dir/paper_numbers_test.cpp.o" "gcc" "tests/CMakeFiles/icbdd_tests.dir/paper_numbers_test.cpp.o.d"
  "/root/repo/tests/restrict_multi_test.cpp" "tests/CMakeFiles/icbdd_tests.dir/restrict_multi_test.cpp.o" "gcc" "tests/CMakeFiles/icbdd_tests.dir/restrict_multi_test.cpp.o.d"
  "/root/repo/tests/serialize_test.cpp" "tests/CMakeFiles/icbdd_tests.dir/serialize_test.cpp.o" "gcc" "tests/CMakeFiles/icbdd_tests.dir/serialize_test.cpp.o.d"
  "/root/repo/tests/sym_test.cpp" "tests/CMakeFiles/icbdd_tests.dir/sym_test.cpp.o" "gcc" "tests/CMakeFiles/icbdd_tests.dir/sym_test.cpp.o.d"
  "/root/repo/tests/termination_test.cpp" "tests/CMakeFiles/icbdd_tests.dir/termination_test.cpp.o" "gcc" "tests/CMakeFiles/icbdd_tests.dir/termination_test.cpp.o.d"
  "/root/repo/tests/util_test.cpp" "tests/CMakeFiles/icbdd_tests.dir/util_test.cpp.o" "gcc" "tests/CMakeFiles/icbdd_tests.dir/util_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/icbdd.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
