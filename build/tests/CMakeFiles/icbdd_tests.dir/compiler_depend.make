# Empty compiler generated dependencies file for icbdd_tests.
# This may be replaced when dependencies are built.
