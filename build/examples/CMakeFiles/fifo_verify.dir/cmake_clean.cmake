file(REMOVE_RECURSE
  "CMakeFiles/fifo_verify.dir/fifo_verify.cpp.o"
  "CMakeFiles/fifo_verify.dir/fifo_verify.cpp.o.d"
  "fifo_verify"
  "fifo_verify.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fifo_verify.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
