# Empty dependencies file for fifo_verify.
# This may be replaced when dependencies are built.
