file(REMOVE_RECURSE
  "CMakeFiles/filter_equivalence.dir/filter_equivalence.cpp.o"
  "CMakeFiles/filter_equivalence.dir/filter_equivalence.cpp.o.d"
  "filter_equivalence"
  "filter_equivalence.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/filter_equivalence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
