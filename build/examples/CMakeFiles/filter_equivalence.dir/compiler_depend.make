# Empty compiler generated dependencies file for filter_equivalence.
# This may be replaced when dependencies are built.
