file(REMOVE_RECURSE
  "CMakeFiles/network_protocol.dir/network_protocol.cpp.o"
  "CMakeFiles/network_protocol.dir/network_protocol.cpp.o.d"
  "network_protocol"
  "network_protocol.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/network_protocol.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
