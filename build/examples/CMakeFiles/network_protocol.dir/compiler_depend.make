# Empty compiler generated dependencies file for network_protocol.
# This may be replaced when dependencies are built.
