# Empty dependencies file for pipeline_verify.
# This may be replaced when dependencies are built.
