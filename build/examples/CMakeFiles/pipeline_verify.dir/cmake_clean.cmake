file(REMOVE_RECURSE
  "CMakeFiles/pipeline_verify.dir/pipeline_verify.cpp.o"
  "CMakeFiles/pipeline_verify.dir/pipeline_verify.cpp.o.d"
  "pipeline_verify"
  "pipeline_verify.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pipeline_verify.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
