file(REMOVE_RECURSE
  "CMakeFiles/mutex_ring_verify.dir/mutex_ring_verify.cpp.o"
  "CMakeFiles/mutex_ring_verify.dir/mutex_ring_verify.cpp.o.d"
  "mutex_ring_verify"
  "mutex_ring_verify.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mutex_ring_verify.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
