# Empty dependencies file for mutex_ring_verify.
# This may be replaced when dependencies are built.
