file(REMOVE_RECURSE
  "../bench/ablation_growthreshold"
  "../bench/ablation_growthreshold.pdb"
  "CMakeFiles/ablation_growthreshold.dir/ablation_growthreshold.cpp.o"
  "CMakeFiles/ablation_growthreshold.dir/ablation_growthreshold.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_growthreshold.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
