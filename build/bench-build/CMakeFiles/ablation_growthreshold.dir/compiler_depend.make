# Empty compiler generated dependencies file for ablation_growthreshold.
# This may be replaced when dependencies are built.
