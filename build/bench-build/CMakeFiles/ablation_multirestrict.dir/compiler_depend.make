# Empty compiler generated dependencies file for ablation_multirestrict.
# This may be replaced when dependencies are built.
