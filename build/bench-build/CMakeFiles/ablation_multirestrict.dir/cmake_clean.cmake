file(REMOVE_RECURSE
  "../bench/ablation_multirestrict"
  "../bench/ablation_multirestrict.pdb"
  "CMakeFiles/ablation_multirestrict.dir/ablation_multirestrict.cpp.o"
  "CMakeFiles/ablation_multirestrict.dir/ablation_multirestrict.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_multirestrict.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
