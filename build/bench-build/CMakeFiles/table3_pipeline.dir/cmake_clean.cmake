file(REMOVE_RECURSE
  "../bench/table3_pipeline"
  "../bench/table3_pipeline.pdb"
  "CMakeFiles/table3_pipeline.dir/table3_pipeline.cpp.o"
  "CMakeFiles/table3_pipeline.dir/table3_pipeline.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
