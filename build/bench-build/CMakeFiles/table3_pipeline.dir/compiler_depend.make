# Empty compiler generated dependencies file for table3_pipeline.
# This may be replaced when dependencies are built.
