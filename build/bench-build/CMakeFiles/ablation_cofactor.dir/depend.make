# Empty dependencies file for ablation_cofactor.
# This may be replaced when dependencies are built.
