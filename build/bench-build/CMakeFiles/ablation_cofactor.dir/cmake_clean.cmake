file(REMOVE_RECURSE
  "../bench/ablation_cofactor"
  "../bench/ablation_cofactor.pdb"
  "CMakeFiles/ablation_cofactor.dir/ablation_cofactor.cpp.o"
  "CMakeFiles/ablation_cofactor.dir/ablation_cofactor.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_cofactor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
