# Empty compiler generated dependencies file for table1_network.
# This may be replaced when dependencies are built.
