file(REMOVE_RECURSE
  "../bench/table1_network"
  "../bench/table1_network.pdb"
  "CMakeFiles/table1_network.dir/table1_network.cpp.o"
  "CMakeFiles/table1_network.dir/table1_network.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_network.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
