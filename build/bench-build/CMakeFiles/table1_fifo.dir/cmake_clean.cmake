file(REMOVE_RECURSE
  "../bench/table1_fifo"
  "../bench/table1_fifo.pdb"
  "CMakeFiles/table1_fifo.dir/table1_fifo.cpp.o"
  "CMakeFiles/table1_fifo.dir/table1_fifo.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_fifo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
