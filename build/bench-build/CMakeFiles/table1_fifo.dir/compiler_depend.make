# Empty compiler generated dependencies file for table1_fifo.
# This may be replaced when dependencies are built.
