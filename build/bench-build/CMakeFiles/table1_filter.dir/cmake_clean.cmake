file(REMOVE_RECURSE
  "../bench/table1_filter"
  "../bench/table1_filter.pdb"
  "CMakeFiles/table1_filter.dir/table1_filter.cpp.o"
  "CMakeFiles/table1_filter.dir/table1_filter.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_filter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
