# Empty compiler generated dependencies file for table1_filter.
# This may be replaced when dependencies are built.
