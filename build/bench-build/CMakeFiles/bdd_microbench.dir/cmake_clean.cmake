file(REMOVE_RECURSE
  "../bench/bdd_microbench"
  "../bench/bdd_microbench.pdb"
  "CMakeFiles/bdd_microbench.dir/bdd_microbench.cpp.o"
  "CMakeFiles/bdd_microbench.dir/bdd_microbench.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bdd_microbench.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
