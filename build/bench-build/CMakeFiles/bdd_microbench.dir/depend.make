# Empty dependencies file for bdd_microbench.
# This may be replaced when dependencies are built.
