# Empty compiler generated dependencies file for ablation_cover.
# This may be replaced when dependencies are built.
