file(REMOVE_RECURSE
  "../bench/ablation_cover"
  "../bench/ablation_cover.pdb"
  "CMakeFiles/ablation_cover.dir/ablation_cover.cpp.o"
  "CMakeFiles/ablation_cover.dir/ablation_cover.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_cover.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
