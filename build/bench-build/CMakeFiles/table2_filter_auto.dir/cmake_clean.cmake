file(REMOVE_RECURSE
  "../bench/table2_filter_auto"
  "../bench/table2_filter_auto.pdb"
  "CMakeFiles/table2_filter_auto.dir/table2_filter_auto.cpp.o"
  "CMakeFiles/table2_filter_auto.dir/table2_filter_auto.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_filter_auto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
