# Empty compiler generated dependencies file for table2_filter_auto.
# This may be replaced when dependencies are built.
