// Forward traversal exploiting user-specified functional dependencies
// (Hu & Dill, DAC'93 [16] -- the paper's "FD" rows in Table 1).
//
// The reachable set is represented in factored form
//   R_full = R_reduced(independent vars)  AND_k  (v_k == h_k(independent))
// for the state bits the user nominates as dependency candidates.  Images,
// property checks and the convergence test all run on the reduced pieces;
// the monolithic R_full (whose BDD carries the cross-product blowup of the
// dependency relations, e.g. every per-processor counter times every other)
// is never built.  A candidate whose dependency breaks -- in the image or on
// the overlap when uniting -- is promoted back into the independent set.
#pragma once

#include "sym/fsm.hpp"
#include "verif/engine.hpp"

namespace icb {

/// `candidateBits` are state-bit indices (VarManager numbering) expected to
/// be functions of the remaining state.  An empty list degenerates to plain
/// forward traversal over a monolithic R.
EngineResult runFdForward(Fsm& fsm, std::vector<unsigned> candidateBits,
                          const EngineOptions& options = {});

}  // namespace icb
