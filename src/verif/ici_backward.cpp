#include "verif/ici_backward.hpp"

#include <algorithm>
#include <set>

#include "ici/simplify.hpp"
#include "check/check.hpp"
#include "check/structural_checker.hpp"
#include "obs/trace.hpp"
#include "util/lint.hpp"
#include "util/timer.hpp"
#include "verif/checkpoint.hpp"
#include "verif/counterexample.hpp"
#include "verif/limit_guard.hpp"

namespace icb {

namespace {

/// Records the iterate's size metrics into the result.
void trackPeak(EngineResult& result, const ConjunctList& list) {
  const std::uint64_t nodes = list.sharedNodeCount();
  if (nodes > result.peakIterateNodes) {
    result.peakIterateNodes = nodes;
    result.peakIterateMemberSizes = list.memberSizes();
  }
}

/// Restrict-based cross-simplification that keeps every position in place
/// (members may become constant TRUE but are never dropped): the original
/// ICI pairs list positions with the user's partition across iterations, so
/// the list length must stay pinned.
void simplifyPositionwise(ConjunctList& list, const SimplifyOptions& options) {
  for (unsigned pass = 0; pass < options.maxPasses; ++pass) {
    bool changed = false;
    std::vector<std::uint64_t> sizes = list.memberSizes();
    for (std::size_t i = 0; i < list.size(); ++i) {
      Bdd current = list[i];
      if (current.isConstant()) continue;
      for (std::size_t j = 0; j < list.size(); ++j) {
        if (i == j || list[j].isConstant()) continue;
        if (options.smallerOnly && sizes[j] > sizes[i]) continue;
        const Bdd simplified = current.restrictBy(list[j]);
        if (simplified == current) continue;
        const std::uint64_t newSize = simplified.size();
        if (options.keepOnlyShrinking && newSize >= sizes[i] &&
            !simplified.isConstant()) {
          continue;
        }
        current = simplified;
        sizes[i] = newSize;
        changed = true;
        if (current.isConstant()) break;
      }
      if (current != list[i]) list.replace(i, current);
    }
    if (!changed) break;
  }
}

}  // namespace

EngineResult runIciBackward(Fsm& fsm, const EngineOptions& options) {
  fsm.validate();
  BddManager& mgr = fsm.mgr();
  EngineResult result;
  result.method = Method::kIci;
  Stopwatch watch;
  mgr.resetStats();
  LimitGuard guard(mgr, options);
  obs::TraceSession trace(options.traceSink, &mgr, options.traceWorker,
                          options.traceJob);
  trace.runBegin(methodName(result.method));

  try {
    // The user-supplied partition, positions fixed for the whole run.
    std::vector<Bdd> g0items = fsm.invariantConjuncts();
    if (options.withAssists) {
      const auto& assists = fsm.assistConjuncts();
      g0items.insert(g0items.end(), assists.begin(), assists.end());
    }
    ConjunctList g0(&mgr, g0items);
    const SimplifyOptions simplify = options.policy.simplify;

    ConjunctList current = g0;
    simplifyPositionwise(current, simplify);
    std::vector<ConjunctList> layers{current};

    CheckpointEmitter ckpt(mgr, options.checkpoint, Method::kIci);
    if (const EngineSnapshot* resume = options.checkpoint.resume) {
      if (resume->method != Method::kIci || resume->lists.size() < 2) {
        throw BddUsageError("runIciBackward: incompatible resume snapshot");
      }
      g0 = ConjunctList(&mgr, resume->lists[0]);
      layers.clear();
      for (std::size_t i = 1; i < resume->lists.size(); ++i) {
        layers.emplace_back(&mgr, resume->lists[i]);
      }
      current = layers.back();
      result.iterations = resume->iteration;
    }

    // Signatures of every list seen so far.  The G_i semantics are monotone
    // (G_{i+1} subset G_i), so revisiting ANY earlier syntactic form proves
    // the chain went flat in between -- a cheap, sound convergence test even
    // when Restrict makes the forms oscillate around the fixpoint.
    auto signatureOf = [](const ConjunctList& list) {
      std::vector<Edge> sig;
      sig.reserve(list.size());
      for (const Bdd& c : list) sig.push_back(c.edge());
      std::sort(sig.begin(), sig.end());
      return sig;
    };
    // Seeded from every restored layer on resume, so the cycle check keeps
    // its full pre-checkpoint history.
    std::set<std::vector<Edge>> seen;
    for (const ConjunctList& layer : layers) seen.insert(signatureOf(layer));

    while (true) {
      trackPeak(result, current);
      ICBDD_SAFE_POINT("ici loop head: g0/layers are the whole state");
      if (ckpt.due(result.iterations)) {
        std::vector<std::vector<Bdd>> lists;
        lists.reserve(layers.size() + 1);
        lists.emplace_back(g0.begin(), g0.end());
        for (const ConjunctList& layer : layers) {
          lists.emplace_back(layer.begin(), layer.end());
        }
        ckpt.emit(result.iterations, std::move(lists));
      }

      // Violation check, member by member: S !subset L[j].
      bool violated = false;
      for (const Bdd& c : current) {
        if (!(fsm.init() & !c).isZero()) {
          violated = true;
          break;
        }
      }
      if (violated) {
        result.verdict = Verdict::kViolated;
        if (options.wantTrace) {
          result.trace = buildBackwardTrace(fsm, layers);
        }
        break;
      }

      if (result.iterations >= options.maxIterations) {
        result.verdict = Verdict::kIterationLimit;
        break;
      }

      // Positionwise update against the original partition:
      //   L'[j] = G_0[j] & BackImage(L[j]),
      // with each incoming BackImage first simplified against every member
      // of the user's partition (each G_0[k] is a care set for the whole
      // conjunction).  When the partition is inductive -- the "assisting
      // invariants" setup of Table 1 -- this collapses BackImages that are
      // implied by other members to TRUE, keeping positions from absorbing
      // their neighbours' relations.
      trace.phaseBegin("back_image", result.iterations + 1);
      ConjunctList next(&mgr);
      for (std::size_t j = 0; j < current.size(); ++j) {
        Bdd back = current[j].isOne() ? mgr.one() : fsm.backImage(current[j]);
        for (std::size_t k = 0; k < g0.size() && !back.isConstant(); ++k) {
          const Bdd simplified = back.restrictBy(g0[k]);
          if (simplified.isConstant() || simplified.size() < back.size()) {
            back = simplified;
          }
        }
        next.push(g0[j] & back);
      }
      simplifyPositionwise(next, simplify);
      ++result.iterations;
      // Phase boundary: this step's iterate is complete; at kFull,
      // audit the whole arena before trusting it.
      ICBDD_CHECK(kFull, auditArenaCreditingTime(mgr));
      if (trace.enabled()) {
        trace.phaseEnd("back_image", result.iterations, mgr.allocatedNodes(),
                       mgr.stats().peakNodes, next.memberSizes());
      }
      // Iteration boundary: no edge-level results live, safe to reorder
      // (the signature set below stores Edge values, which a sift preserves).
      ICBDD_SAFE_POINT("ici update complete, lists rooted in handles");
      mgr.autoReorderIfNeeded();

      // Fast syntactic convergence test (the CAV'93-style one), extended
      // with the cycle check described above.
      if (!seen.insert(signatureOf(next)).second) {
        result.verdict = Verdict::kHolds;
        break;
      }
      current = next;
      layers.push_back(current);
    }
  } catch (const ResourceLimitError& err) {
    result.verdict = verdictForResourceLimit(err.kind());
    mgr.gc();
  }

  result.seconds = watch.elapsedSeconds();
  result.peakAllocatedNodes = mgr.stats().peakNodes;
  result.memBytesEstimate = mgr.bytesForNodes(result.peakAllocatedNodes);
  result.spilled = mgr.spillEngaged();
  result.metrics.captureBdd(mgr);
  trace.runEnd(verdictName(result.verdict), result.iterations, result.seconds,
               result.peakIterateNodes, result.peakAllocatedNodes);
  return result;
}

}  // namespace icb
