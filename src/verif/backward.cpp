#include "verif/backward.hpp"

#include <algorithm>

#include "check/check.hpp"
#include "check/structural_checker.hpp"
#include "obs/trace.hpp"
#include "util/lint.hpp"
#include "util/timer.hpp"
#include "verif/checkpoint.hpp"
#include "verif/counterexample.hpp"
#include "verif/limit_guard.hpp"

namespace icb {

EngineResult runBackward(Fsm& fsm, const EngineOptions& options) {
  fsm.validate();
  BddManager& mgr = fsm.mgr();
  EngineResult result;
  result.method = Method::kBkwd;
  Stopwatch watch;
  mgr.resetStats();
  LimitGuard guard(mgr, options);
  obs::TraceSession trace(options.traceSink, &mgr, options.traceWorker,
                          options.traceJob);
  trace.runBegin(methodName(result.method));

  try {
    const ConjunctList property = fsm.property(options.withAssists);
    Bdd g0 = property.evaluate();  // the monolithic conjunction

    Bdd g = g0;
    std::vector<ConjunctList> layers;
    layers.emplace_back(&mgr, std::vector<Bdd>{g});

    CheckpointEmitter ckpt(mgr, options.checkpoint, Method::kBkwd);
    if (const EngineSnapshot* resume = options.checkpoint.resume) {
      if (resume->method != Method::kBkwd || resume->lists.size() != 2 ||
          resume->lists[0].size() != 1 || resume->lists[1].empty()) {
        throw BddUsageError("runBackward: incompatible resume snapshot");
      }
      g0 = resume->lists[0][0];
      layers.clear();
      for (const Bdd& saved : resume->lists[1]) {
        layers.emplace_back(&mgr, std::vector<Bdd>{saved});
      }
      g = resume->lists[1].back();
      result.iterations = resume->iteration;
    }

    while (true) {
      result.peakIterateNodes = std::max(result.peakIterateNodes, g.size());
      ICBDD_SAFE_POINT("bkwd loop head: g0/layers are the whole state");
      if (ckpt.due(result.iterations)) {
        std::vector<Bdd> gs;
        gs.reserve(layers.size());
        for (const ConjunctList& layer : layers) gs.push_back(layer[0]);
        ckpt.emit(result.iterations, {{g0}, std::move(gs)});
      }

      if (!(fsm.init() & !g).isZero()) {
        result.verdict = Verdict::kViolated;
        if (options.wantTrace) {
          result.trace = buildBackwardTrace(fsm, layers);
        }
        break;
      }

      if (result.iterations >= options.maxIterations) {
        result.verdict = Verdict::kIterationLimit;
        break;
      }

      trace.phaseBegin("back_image", result.iterations + 1);
      const Bdd next = g0 & fsm.backImage(g);
      ++result.iterations;
      // Phase boundary: this step's iterate is complete; at kFull,
      // audit the whole arena before trusting it.
      ICBDD_CHECK(kFull, auditArenaCreditingTime(mgr));
      if (trace.enabled()) {
        const std::uint64_t sizes[] = {next.size()};
        trace.phaseEnd("back_image", result.iterations, mgr.allocatedNodes(),
                       mgr.stats().peakNodes, sizes);
      }
      // Iteration boundary: no edge-level results live, safe to reorder.
      ICBDD_SAFE_POINT("bkwd image complete, no raw edges outstanding");
      mgr.autoReorderIfNeeded();
      if (next == g) {  // canonical form: O(1) convergence test
        result.verdict = Verdict::kHolds;
        break;
      }
      g = next;
      layers.emplace_back(&mgr, std::vector<Bdd>{g});
    }
  } catch (const ResourceLimitError& err) {
    result.verdict = verdictForResourceLimit(err.kind());
    mgr.gc();
  }

  result.seconds = watch.elapsedSeconds();
  result.peakAllocatedNodes = mgr.stats().peakNodes;
  result.memBytesEstimate = mgr.bytesForNodes(result.peakAllocatedNodes);
  result.spilled = mgr.spillEngaged();
  result.metrics.captureBdd(mgr);
  trace.runEnd(verdictName(result.verdict), result.iterations, result.seconds,
               result.peakIterateNodes, result.peakAllocatedNodes);
  return result;
}

}  // namespace icb
