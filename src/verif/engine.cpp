#include "verif/engine.hpp"

namespace icb {

const char* verdictName(Verdict v) {
  switch (v) {
    case Verdict::kHolds:
      return "holds";
    case Verdict::kViolated:
      return "violated";
    case Verdict::kNodeLimit:
      return "node-limit";
    case Verdict::kTimeLimit:
      return "time-limit";
    case Verdict::kIterationLimit:
      return "iteration-limit";
  }
  return "?";
}

bool verdictExceeded(Verdict v) {
  return v == Verdict::kNodeLimit || v == Verdict::kTimeLimit ||
         v == Verdict::kIterationLimit;
}

const char* methodName(Method m) {
  switch (m) {
    case Method::kFwd:
      return "Fwd";
    case Method::kBkwd:
      return "Bkwd";
    case Method::kFd:
      return "FD";
    case Method::kIci:
      return "ICI";
    case Method::kXici:
      return "XICI";
  }
  return "?";
}

std::string describeMemberSizes(const EngineResult& r) {
  if (r.peakIterateMemberSizes.size() < 2) return {};
  std::string out = "(";
  bool first = true;
  for (const std::uint64_t s : r.peakIterateMemberSizes) {
    if (!first) out += ", ";
    out += std::to_string(s);
    first = false;
  }
  out += ")";
  return out;
}

}  // namespace icb
