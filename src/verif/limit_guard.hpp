// RAII installation of an engine's resource caps onto a BDD manager.
#pragma once

#include "bdd/manager.hpp"
#include "verif/engine.hpp"

namespace icb {

class LimitGuard {
 public:
  LimitGuard(BddManager& mgr, const EngineOptions& options) : mgr_(mgr) {
    saved_ = mgr.limits();
    ResourceLimits limits;
    limits.maxNodes = options.maxNodes;
    if (options.timeLimitSeconds > 0) {
      limits.deadline = Deadline::afterSeconds(options.timeLimitSeconds);
    }
    limits.cancelFlag = options.cancelFlag;
    mgr.setLimits(limits);
  }
  ~LimitGuard() { mgr_.setLimits(saved_); }

  LimitGuard(const LimitGuard&) = delete;
  LimitGuard& operator=(const LimitGuard&) = delete;

 private:
  BddManager& mgr_;
  ResourceLimits saved_;
};

}  // namespace icb
