// RAII installation of an engine's resource caps onto a BDD manager.
#pragma once

#include "bdd/manager.hpp"
#include "verif/engine.hpp"

namespace icb {

class LimitGuard {
 public:
  LimitGuard(BddManager& mgr, const EngineOptions& options) : mgr_(mgr) {
    saved_ = mgr.limits();
    ResourceLimits limits;
    limits.maxNodes = options.maxNodes;
    if (options.timeLimitSeconds > 0) {
      limits.deadline = Deadline::afterSeconds(options.timeLimitSeconds);
    }
    limits.cancelFlag = options.cancelFlag;
    mgr.setLimits(limits);
    // Engine entry is a safe point (no operation mid-flight), so the run's
    // apply-worker count installs here and the original comes back on exit.
    // 0 inherits the manager's own configuration.
    savedWorkers_ = mgr.applyWorkers();
    if (options.applyWorkers > 0) mgr.setApplyWorkers(options.applyWorkers);
  }
  ~LimitGuard() {
    mgr_.setApplyWorkers(savedWorkers_);
    mgr_.setLimits(saved_);
  }

  LimitGuard(const LimitGuard&) = delete;
  LimitGuard& operator=(const LimitGuard&) = delete;

 private:
  BddManager& mgr_;
  ResourceLimits saved_;
  unsigned savedWorkers_ = 1;
};

}  // namespace icb
