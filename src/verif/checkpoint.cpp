#include "verif/checkpoint.hpp"

#include <istream>
#include <ostream>
#include <sstream>
#include <string>

#include "bdd/serialize.hpp"
#include "util/timer.hpp"
#include "verif/run_all.hpp"

namespace icb {

namespace {

constexpr const char* kMagic = "icbdd-ckpt-v1";

/// Header-line reader tracking byte offsets, so truncated or garbled
/// checkpoints fail with a typed SerializeError pointing at the bad line
/// instead of silently resuming from a zeroed field.
struct CkptLines {
  std::istream& is;
  std::string line;
  std::uint64_t offset = 0;     ///< offset of the next unread byte
  std::uint64_t lineStart = 0;  ///< offset of the most recently read line

  std::istringstream next(const char* what) {
    lineStart = offset;
    if (!std::getline(is, line)) {
      throw SerializeError(
          std::string("loadSnapshot: truncated input, expected ") + what,
          offset);
    }
    offset += line.size() + 1;
    return std::istringstream(line);
  }

  [[noreturn]] void bad(const char* what) const {
    throw SerializeError(std::string("loadSnapshot: malformed ") + what +
                             " line '" + line + "'",
                         lineStart);
  }
};

}  // namespace

void saveSnapshot(std::ostream& os, const BddManager& mgr,
                  const EngineSnapshot& snap, bool binaryBdds) {
  os << kMagic << '\n';
  os << "method " << methodName(snap.method) << '\n';
  os << "iteration " << snap.iteration << '\n';
  os << "numbers " << snap.numbers.size();
  for (const std::uint64_t n : snap.numbers) os << ' ' << n;
  os << '\n';
  os << "lists " << snap.lists.size();
  std::vector<Bdd> flat;
  for (const std::vector<Bdd>& list : snap.lists) {
    os << ' ' << list.size();
    flat.insert(flat.end(), list.begin(), list.end());
  }
  os << '\n';
  if (binaryBdds) {
    saveBddsBinary(os, mgr, flat);
  } else {
    saveBdds(os, mgr, flat);
  }
}

EngineSnapshot loadSnapshot(std::istream& is, BddManager& mgr) {
  EngineSnapshot snap;
  CkptLines src{is, {}};
  {
    auto ls = src.next("magic line");
    std::string magic;
    ls >> magic;
    if (magic != kMagic) {
      throw SerializeError("loadSnapshot: bad magic '" + magic + "'", 0);
    }
  }
  {
    auto ls = src.next("method line");
    std::string key;
    std::string name;
    ls >> key >> name;
    if (ls.fail() || key != "method") src.bad("method");
    try {
      snap.method = parseMethod(name);
    } catch (const std::invalid_argument&) {
      throw SerializeError("loadSnapshot: unknown method '" + name + "'",
                           src.lineStart);
    }
  }
  {
    auto ls = src.next("iteration line");
    std::string key;
    ls >> key >> snap.iteration;
    if (ls.fail() || key != "iteration") src.bad("iteration");
  }
  {
    auto ls = src.next("numbers line");
    std::string key;
    std::size_t count = 0;
    ls >> key >> count;
    if (ls.fail() || key != "numbers") src.bad("numbers");
    snap.numbers.resize(count);
    for (std::size_t i = 0; i < count; ++i) {
      if (!(ls >> snap.numbers[i])) src.bad("numbers (truncated values)");
    }
  }
  std::vector<std::size_t> lengths;
  {
    auto ls = src.next("lists line");
    std::string key;
    std::size_t count = 0;
    ls >> key >> count;
    if (ls.fail() || key != "lists") src.bad("lists");
    lengths.resize(count);
    for (std::size_t i = 0; i < count; ++i) {
      if (!(ls >> lengths[i])) src.bad("lists (truncated lengths)");
    }
  }
  const std::vector<Bdd> flat = loadBdds(is, mgr);
  std::size_t at = 0;
  snap.lists.reserve(lengths.size());
  for (const std::size_t len : lengths) {
    if (at + len > flat.size()) {
      throw SerializeError("loadSnapshot: list lengths exceed root count",
                           src.offset);
    }
    snap.lists.emplace_back(flat.begin() + static_cast<std::ptrdiff_t>(at),
                            flat.begin() + static_cast<std::ptrdiff_t>(at + len));
    at += len;
  }
  if (at != flat.size()) {
    throw SerializeError("loadSnapshot: list lengths below root count",
                         src.offset);
  }
  return snap;
}

void CheckpointEmitter::emit(unsigned iteration,
                             std::vector<std::vector<Bdd>> lists,
                             std::vector<std::uint64_t> numbers) {
  const Stopwatch watch;
  EngineSnapshot snap;
  snap.method = method_;
  snap.iteration = iteration;
  snap.lists = std::move(lists);
  snap.numbers = std::move(numbers);
  options_.sink(snap);
  lastEmitted_ = iteration;
  // Credit the sink's wall time (serialization + journal I/O) back to the
  // deadline, mirroring the trace layer: checkpointing must not be able to
  // flip a run into a spurious time-limit verdict.
  ResourceLimits limits = mgr_.limits();
  if (limits.deadline.isSet()) {
    limits.deadline.extendBySeconds(watch.elapsedSeconds());
    mgr_.setLimits(limits);
  }
}

}  // namespace icb
