#include "verif/checkpoint.hpp"

#include <istream>
#include <ostream>
#include <sstream>
#include <string>

#include "bdd/serialize.hpp"
#include "util/timer.hpp"
#include "verif/run_all.hpp"

namespace icb {

namespace {

constexpr const char* kMagic = "icbdd-ckpt-v1";

std::istringstream nextLine(std::istream& is) {
  std::string line;
  if (!std::getline(is, line)) {
    throw BddUsageError("loadSnapshot: unexpected end of input");
  }
  return std::istringstream(line);
}

}  // namespace

void saveSnapshot(std::ostream& os, const BddManager& mgr,
                  const EngineSnapshot& snap) {
  os << kMagic << '\n';
  os << "method " << methodName(snap.method) << '\n';
  os << "iteration " << snap.iteration << '\n';
  os << "numbers " << snap.numbers.size();
  for (const std::uint64_t n : snap.numbers) os << ' ' << n;
  os << '\n';
  os << "lists " << snap.lists.size();
  std::vector<Bdd> flat;
  for (const std::vector<Bdd>& list : snap.lists) {
    os << ' ' << list.size();
    flat.insert(flat.end(), list.begin(), list.end());
  }
  os << '\n';
  saveBdds(os, mgr, flat);
}

EngineSnapshot loadSnapshot(std::istream& is, BddManager& mgr) {
  EngineSnapshot snap;
  {
    auto ls = nextLine(is);
    std::string magic;
    ls >> magic;
    if (magic != kMagic) throw BddUsageError("loadSnapshot: bad magic");
  }
  {
    auto ls = nextLine(is);
    std::string key;
    std::string name;
    ls >> key >> name;
    if (key != "method") throw BddUsageError("loadSnapshot: expected method");
    try {
      snap.method = parseMethod(name);
    } catch (const std::invalid_argument&) {
      throw BddUsageError("loadSnapshot: unknown method '" + name + "'");
    }
  }
  {
    auto ls = nextLine(is);
    std::string key;
    ls >> key >> snap.iteration;
    if (key != "iteration") {
      throw BddUsageError("loadSnapshot: expected iteration");
    }
  }
  {
    auto ls = nextLine(is);
    std::string key;
    std::size_t count = 0;
    ls >> key >> count;
    if (key != "numbers") throw BddUsageError("loadSnapshot: expected numbers");
    snap.numbers.resize(count);
    for (std::size_t i = 0; i < count; ++i) {
      if (!(ls >> snap.numbers[i])) {
        throw BddUsageError("loadSnapshot: truncated numbers line");
      }
    }
  }
  std::vector<std::size_t> lengths;
  {
    auto ls = nextLine(is);
    std::string key;
    std::size_t count = 0;
    ls >> key >> count;
    if (key != "lists") throw BddUsageError("loadSnapshot: expected lists");
    lengths.resize(count);
    for (std::size_t i = 0; i < count; ++i) {
      if (!(ls >> lengths[i])) {
        throw BddUsageError("loadSnapshot: truncated lists line");
      }
    }
  }
  const std::vector<Bdd> flat = loadBdds(is, mgr);
  std::size_t at = 0;
  snap.lists.reserve(lengths.size());
  for (const std::size_t len : lengths) {
    if (at + len > flat.size()) {
      throw BddUsageError("loadSnapshot: list lengths exceed root count");
    }
    snap.lists.emplace_back(flat.begin() + static_cast<std::ptrdiff_t>(at),
                            flat.begin() + static_cast<std::ptrdiff_t>(at + len));
    at += len;
  }
  if (at != flat.size()) {
    throw BddUsageError("loadSnapshot: list lengths below root count");
  }
  return snap;
}

void CheckpointEmitter::emit(unsigned iteration,
                             std::vector<std::vector<Bdd>> lists,
                             std::vector<std::uint64_t> numbers) {
  const Stopwatch watch;
  EngineSnapshot snap;
  snap.method = method_;
  snap.iteration = iteration;
  snap.lists = std::move(lists);
  snap.numbers = std::move(numbers);
  options_.sink(snap);
  lastEmitted_ = iteration;
  // Credit the sink's wall time (serialization + journal I/O) back to the
  // deadline, mirroring the trace layer: checkpointing must not be able to
  // flip a run into a spurious time-limit verdict.
  ResourceLimits limits = mgr_.limits();
  if (limits.deadline.isSet()) {
    limits.deadline.extendBySeconds(watch.elapsedSeconds());
    mgr_.setLimits(limits);
  }
}

}  // namespace icb
