// Conventional monolithic backward traversal (the paper's "Bkwd" rows):
//   G_0 = G (evaluated into ONE BDD -- this is where the blowup happens);
//   G_{i+1} = G_0 & BackImage(delta, G_i)
// with the violation check S !subset G_i and convergence G_{i+1} == G_i
// (trivial for single canonical BDDs).
#pragma once

#include "sym/fsm.hpp"
#include "verif/engine.hpp"

namespace icb {

EngineResult runBackward(Fsm& fsm, const EngineOptions& options = {});

}  // namespace icb
