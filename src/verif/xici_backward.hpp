// Backward traversal with the DAC'94 extended techniques (the "XICI" rows):
//
//   * the iterate is an implicitly conjoined list that GROWS as needed:
//       G_{i+1} = normalize( G_0 list  ++  [BackImage(c) for c in G_i] )
//     (Theorem 1 justifies the member-by-member BackImage);
//   * the Section III.A policy (Restrict cross-simplification followed by
//     Figure 1's greedy pairwise conjunction evaluation) compacts the list
//     each iteration -- this is what "derives the assisting invariants
//     automatically": the iterated BackImages of the output property ARE
//     the per-layer lemmas a user would otherwise have to supply;
//   * convergence is decided by the Section III.B exact termination test,
//     so the verdict never depends on a syntactic coincidence.
#pragma once

#include "sym/fsm.hpp"
#include "verif/engine.hpp"

namespace icb {

EngineResult runXiciBackward(Fsm& fsm, const EngineOptions& options = {});

}  // namespace icb
