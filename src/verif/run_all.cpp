#include "verif/run_all.hpp"

#include <algorithm>
#include <cctype>
#include <stdexcept>
#include <utility>

namespace icb {

EngineResult runMethod(Fsm& fsm, Method method,
                       const std::vector<unsigned>& fdCandidates,
                       const EngineOptions& options) {
  switch (method) {
    case Method::kFwd:
      return runForward(fsm, options);
    case Method::kBkwd:
      return runBackward(fsm, options);
    case Method::kFd:
      return runFdForward(fsm, fdCandidates, options);
    case Method::kIci:
      return runIciBackward(fsm, options);
    case Method::kXici:
      return runXiciBackward(fsm, options);
  }
  throw std::invalid_argument("unknown method");
}

Method parseMethod(const std::string& name) {
  std::string lower = name;
  std::transform(lower.begin(), lower.end(), lower.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  if (lower == "fwd" || lower == "forward") return Method::kFwd;
  if (lower == "bkwd" || lower == "backward") return Method::kBkwd;
  if (lower == "fd") return Method::kFd;
  if (lower == "ici") return Method::kIci;
  if (lower == "xici") return Method::kXici;
  throw std::invalid_argument("unknown method: " + name);
}

const std::vector<Method>& allMethods() {
  static const std::vector<Method> methods{Method::kFwd, Method::kBkwd,
                                           Method::kFd, Method::kIci,
                                           Method::kXici};
  return methods;
}

std::vector<par::CellResult> runAllMethods(const ModelFactory& factory,
                                           const RunAllOptions& options) {
  if (!factory) {
    throw std::invalid_argument("runAllMethods: null model factory");
  }
  const std::vector<Method>& methods =
      options.methods.empty() ? allMethods() : options.methods;
  par::VerifyScheduler scheduler(options.scheduler);
  for (const Method method : methods) {
    scheduler.submit(
        options.group, method,
        [&factory, method, engine = options.engine](const par::CellContext& ctx) {
          ModelInstance instance = factory();
          if (instance.fsm == nullptr) {
            throw std::invalid_argument("runAllMethods: factory built no Fsm");
          }
          EngineOptions cellOptions = engine;
          ctx.apply(cellOptions);
          return runMethod(*instance.fsm, method, instance.fdCandidates,
                           cellOptions);
        });
  }
  return scheduler.run();
}

}  // namespace icb
