// Conventional forward traversal (the paper's "Fwd" rows):
//   R_0 = S;  R_{i+1} = R_i | Image(delta, R_i)
// with the violation check R_i & !G != 0 each iteration, counterexamples
// from the onion rings, and convergence when no new states appear.
#pragma once

#include "sym/fsm.hpp"
#include "verif/engine.hpp"

namespace icb {

EngineResult runForward(Fsm& fsm, const EngineOptions& options = {});

}  // namespace icb
