#include "verif/forward.hpp"

#include <algorithm>

#include "check/check.hpp"
#include "check/structural_checker.hpp"
#include "obs/trace.hpp"
#include "util/lint.hpp"
#include "util/timer.hpp"
#include "verif/checkpoint.hpp"
#include "verif/counterexample.hpp"
#include "verif/limit_guard.hpp"

namespace icb {

EngineResult runForward(Fsm& fsm, const EngineOptions& options) {
  fsm.validate();
  BddManager& mgr = fsm.mgr();
  EngineResult result;
  result.method = Method::kFwd;
  Stopwatch watch;
  mgr.resetStats();
  LimitGuard guard(mgr, options);
  obs::TraceSession trace(options.traceSink, &mgr, options.traceWorker,
                          options.traceJob);
  trace.runBegin(methodName(result.method));

  try {
    const ConjunctList property = fsm.property(options.withAssists);
    const Bdd notGood = !property.evaluate();

    ImageComputer imager(fsm, options.image);

    Bdd reached = fsm.init();
    std::vector<Bdd> rings{fsm.init()};

    CheckpointEmitter ckpt(mgr, options.checkpoint, Method::kFwd);
    if (const EngineSnapshot* resume = options.checkpoint.resume) {
      if (resume->method != Method::kFwd || resume->lists.size() != 2 ||
          resume->lists[0].size() != 1) {
        throw BddUsageError("runForward: incompatible resume snapshot");
      }
      reached = resume->lists[0][0];
      rings = resume->lists[1];
      result.iterations = resume->iteration;
    }

    while (true) {
      result.peakIterateNodes =
          std::max(result.peakIterateNodes, reached.size());
      ICBDD_SAFE_POINT("fwd loop head: reached/rings are the whole state");
      if (ckpt.due(result.iterations)) {
        ckpt.emit(result.iterations, {{reached}, rings});
      }

      const Bdd bad = reached & notGood;
      if (!bad.isZero()) {
        result.verdict = Verdict::kViolated;
        if (options.wantTrace) {
          // Identify the first ring that touches the bad set so the trace
          // is as short as possible.
          while (rings.size() > 1 && !(rings[rings.size() - 2] & notGood).isZero()) {
            rings.pop_back();
          }
          std::vector<Bdd> trimmed(rings.begin(), rings.end());
          result.trace = buildForwardTrace(fsm, trimmed, notGood);
        }
        break;
      }

      if (result.iterations >= options.maxIterations) {
        result.verdict = Verdict::kIterationLimit;
        break;
      }

      trace.phaseBegin("image", result.iterations + 1);
      const Bdd frontier = rings.back();
      const Bdd next = imager.image(frontier);
      const Bdd fresh = next & !reached;
      ++result.iterations;
      // Phase boundary: this step's iterate is complete; at kFull,
      // audit the whole arena before trusting it.
      ICBDD_CHECK(kFull, auditArenaCreditingTime(mgr));
      if (trace.enabled()) {
        const std::uint64_t sizes[] = {reached.size(), fresh.size()};
        trace.phaseEnd("image", result.iterations, mgr.allocatedNodes(),
                       mgr.stats().peakNodes, sizes);
      }
      // Iteration boundary: no edge-level results live, safe to reorder.
      ICBDD_SAFE_POINT("fwd image complete, no raw edges outstanding");
      mgr.autoReorderIfNeeded();
      if (fresh.isZero()) {
        result.verdict = Verdict::kHolds;
        break;
      }
      rings.push_back(fresh);
      reached |= fresh;
    }
  } catch (const ResourceLimitError& err) {
    result.verdict = verdictForResourceLimit(err.kind());
    mgr.gc();  // reclaim orphaned intermediates so the manager stays usable
  }

  result.seconds = watch.elapsedSeconds();
  result.peakAllocatedNodes = mgr.stats().peakNodes;
  result.memBytesEstimate = mgr.bytesForNodes(result.peakAllocatedNodes);
  result.spilled = mgr.spillEngaged();
  result.metrics.captureBdd(mgr);
  trace.runEnd(verdictName(result.verdict), result.iterations, result.seconds,
               result.peakIterateNodes, result.peakAllocatedNodes);
  return result;
}

}  // namespace icb
