// Engine checkpoint persistence: text save/load of EngineSnapshot on top of
// bdd/serialize, plus the small emitter the engines call at their iteration
// boundary.
//
// Format (line oriented, wrapping one saveBdds dump):
//   icbdd-ckpt-v1
//   method <fwd|bkwd|fd|ici|xici>
//   iteration <n>
//   numbers <count> <value> ...
//   lists <count> <len0> <len1> ...
//   <icbdd-bdd-v2 dump of all list members, flattened in list order>
//
// The BDD dump carries the writer's variable order (serialize v2), so a
// snapshot taken after dynamic reordering restores into a manager with the
// same order -- the property the byte-identical resume guarantee rests on.
#pragma once

#include <iosfwd>

#include "verif/engine.hpp"

namespace icb {

/// Writes `snap` (whose handles must belong to `mgr`).  With
/// `binaryBdds = true` the embedded BDD dump uses the icbdd-bdd-v3 binary
/// format (near-memcpy, much faster for large snapshots); the checkpoint
/// header lines stay text either way, and loadSnapshot auto-detects the dump
/// version, so binary and text snapshots are interchangeable on load.  The
/// default stays text so existing golden checkpoint bytes are unchanged.
void saveSnapshot(std::ostream& os, const BddManager& mgr,
                  const EngineSnapshot& snap, bool binaryBdds = false);

/// Reads a snapshot into `mgr` (usually a freshly built model's manager).
/// Throws SerializeError (a BddUsageError) on malformed or truncated input.
EngineSnapshot loadSnapshot(std::istream& is, BddManager& mgr);

/// The per-engine checkpoint hook.  Engines construct one next to their
/// LimitGuard and call `maybeEmit` once per loop pass at the iteration
/// boundary; it handles the every-N cadence, skips the iteration the run was
/// resumed at (that state is already journaled), and credits the sink's wall
/// time back to the manager deadline.
class CheckpointEmitter {
 public:
  CheckpointEmitter(BddManager& mgr, const CheckpointOptions& options,
                    Method method)
      : mgr_(mgr),
        options_(options),
        method_(method),
        lastEmitted_(options.resume != nullptr ? options.resume->iteration
                                               : 0) {}

  /// True when a snapshot is wanted for `iteration` -- callers may use this
  /// to skip building the lists vector entirely on non-checkpoint passes.
  [[nodiscard]] bool due(unsigned iteration) const {
    return options_.everyIterations != 0 && options_.sink != nullptr &&
           iteration != 0 && iteration % options_.everyIterations == 0 &&
           iteration > lastEmitted_;
  }

  void emit(unsigned iteration, std::vector<std::vector<Bdd>> lists,
            std::vector<std::uint64_t> numbers = {});

 private:
  BddManager& mgr_;
  const CheckpointOptions& options_;
  Method method_;
  unsigned lastEmitted_;
};

}  // namespace icb
