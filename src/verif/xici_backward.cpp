#include "verif/xici_backward.hpp"

#include <algorithm>

#include "check/check.hpp"
#include "check/structural_checker.hpp"
#include "obs/trace.hpp"
#include "util/lint.hpp"
#include "util/timer.hpp"
#include "verif/checkpoint.hpp"
#include "verif/counterexample.hpp"
#include "verif/limit_guard.hpp"

namespace icb {

namespace {

void trackPeak(EngineResult& result, const ConjunctList& list) {
  const std::uint64_t nodes = list.sharedNodeCount();
  if (nodes > result.peakIterateNodes) {
    result.peakIterateNodes = nodes;
    result.peakIterateMemberSizes = list.memberSizes();
  }
}

}  // namespace

EngineResult runXiciBackward(Fsm& fsm, const EngineOptions& options) {
  fsm.validate();
  BddManager& mgr = fsm.mgr();
  EngineResult result;
  result.method = Method::kXici;
  Stopwatch watch;
  mgr.resetStats();
  LimitGuard guard(mgr, options);
  obs::TraceSession trace(options.traceSink, &mgr, options.traceWorker,
                          options.traceJob);
  trace.runBegin(methodName(result.method));

  TerminationChecker checker(mgr, options.termination);

  // Accumulates every Section III.A policy application of the run; captured
  // into the metrics registry once at run end so ratio gauges (best/worst
  // accepted) reflect the whole run, not just the last iteration.
  EvaluatePolicyResult policyTotals;
  auto recordPolicy = [&](const EvaluatePolicyResult& pol, std::uint64_t iter) {
    policyTotals.merge(pol);
    if (trace.enabled()) {
      trace.emit("policy", obs::JsonObject()
                               .put("iter", iter)
                               .put("merges", pol.merges)
                               .put("rejections", pol.rejections)
                               .put("size_before", pol.sizeBefore)
                               .put("size_after", pol.sizeAfter)
                               .put("aborted_builds", pol.abortedPairBuilds)
                               .put("rejected_ratio", pol.rejectedRatio));
    }
  };

  try {
    ConjunctList g0 = fsm.property(options.withAssists);
    recordPolicy(evaluateAndSimplify(g0, options.policy), 0);

    ConjunctList current = g0;
    std::vector<ConjunctList> layers{current};

    CheckpointEmitter ckpt(mgr, options.checkpoint, Method::kXici);
    if (const EngineSnapshot* resume = options.checkpoint.resume) {
      if (resume->method != Method::kXici || resume->lists.size() < 2) {
        throw BddUsageError("runXiciBackward: incompatible resume snapshot");
      }
      g0 = ConjunctList(&mgr, resume->lists[0]);
      layers.clear();
      for (std::size_t i = 1; i < resume->lists.size(); ++i) {
        layers.emplace_back(&mgr, resume->lists[i]);
      }
      current = layers.back();
      result.iterations = resume->iteration;
    }

    while (true) {
      trackPeak(result, current);
      ICBDD_SAFE_POINT("xici loop head: g0/layers are the whole state");
      if (ckpt.due(result.iterations)) {
        std::vector<std::vector<Bdd>> lists;
        lists.reserve(layers.size() + 1);
        lists.emplace_back(g0.begin(), g0.end());
        for (const ConjunctList& layer : layers) {
          lists.emplace_back(layer.begin(), layer.end());
        }
        ckpt.emit(result.iterations, std::move(lists));
      }

      // Violation check, member by member: S !subset L[j].  (A constant
      // FALSE member needs no special case -- init & !FALSE == init, which
      // is nonzero exactly when some start state exists to violate.)
      bool violated = false;
      for (const Bdd& c : current) {
        if (!(fsm.init() & !c).isZero()) {
          violated = true;
          break;
        }
      }
      if (violated) {
        result.verdict = Verdict::kViolated;
        if (options.wantTrace) {
          result.trace = buildBackwardTrace(fsm, layers);
        }
        break;
      }

      if (result.iterations >= options.maxIterations) {
        result.verdict = Verdict::kIterationLimit;
        break;
      }

      // G_{i+1} = G_0 & BackImage(G_i), kept implicitly conjoined:
      // Theorem 1 turns BackImage of the list into a list of BackImages.
      trace.phaseBegin("back_image", result.iterations + 1);
      ConjunctList next(&mgr);
      for (const Bdd& c : g0) next.push(c);
      for (const Bdd& c : current) next.push(fsm.backImage(c));
      next.normalize();

      // Section III.A policy: simplify, then greedily evaluate conjunctions.
      recordPolicy(evaluateAndSimplify(next, options.policy),
                   result.iterations + 1);
      ++result.iterations;
      // Phase boundary: this step's iterate is complete; at kFull,
      // audit the whole arena before trusting it.
      ICBDD_CHECK(kFull, auditArenaCreditingTime(mgr));
      if (trace.enabled()) {
        trace.phaseEnd("back_image", result.iterations, mgr.allocatedNodes(),
                       mgr.stats().peakNodes, next.memberSizes());
      }
      // Iteration boundary: no edge-level results live, safe to reorder.
      ICBDD_SAFE_POINT("xici update complete, lists rooted in handles");
      mgr.autoReorderIfNeeded();

      // Section III.B: exact termination test on the two implicit lists.
      const TerminationStats termBefore = checker.stats();
      const bool converged = checker.equal(next, current);
      if (trace.enabled()) {
        const TerminationStats& t = checker.stats();
        trace.emit("termination",
                   obs::JsonObject()
                       .put("iter", result.iterations)
                       .put("equal", converged)
                       .put("calls", t.tautologyCalls - termBefore.tautologyCalls)
                       .put("shannon",
                            t.shannonExpansions - termBefore.shannonExpansions));
      }
      if (converged) {
        result.verdict = Verdict::kHolds;
        break;
      }
      current = next;
      layers.push_back(current);
    }
  } catch (const ResourceLimitError& err) {
    result.verdict = verdictForResourceLimit(err.kind());
    mgr.gc();
  }

  result.terminationStats = checker.stats();
  result.seconds = watch.elapsedSeconds();
  result.peakAllocatedNodes = mgr.stats().peakNodes;
  result.memBytesEstimate = mgr.bytesForNodes(result.peakAllocatedNodes);
  result.spilled = mgr.spillEngaged();
  result.metrics.capturePolicy(policyTotals);
  result.metrics.captureBdd(mgr);
  result.metrics.captureTermination(result.terminationStats);
  trace.runEnd(verdictName(result.verdict), result.iterations, result.seconds,
               result.peakIterateNodes, result.peakAllocatedNodes);
  return result;
}

}  // namespace icb
