// Counterexample construction for both traversal directions.
//
// Forward: from the onion rings R_0 subset R_1 subset ... and a bad state in
// ring k, walk backwards through the rings picking concrete predecessors.
//
// Backward: the paper's algorithm -- "If we reach a point where G_i does not
// contain all of the start states, then there exists a sequence of i
// transitions from a start state to a violating state."  From a start state
// outside G_N, walk forward: while the current state satisfies G, pick an
// input whose successor falls outside the next-shallower G layer.
#pragma once

#include <vector>

#include "ici/conjunct_list.hpp"
#include "sym/fsm.hpp"
#include "verif/engine.hpp"

namespace icb {

/// `rings[t]` holds the states first reached at distance t (ring 0 contains
/// the initial states); `bad` intersects rings[k] for k = rings.size()-1.
Trace buildForwardTrace(const Fsm& fsm, const std::vector<Bdd>& rings,
                        const Bdd& bad);

/// `layers[i]` is G_i (deepest, i.e. most constrained, last);
/// some initial state lies outside the last layer.
Trace buildBackwardTrace(const Fsm& fsm,
                         const std::vector<ConjunctList>& layers);

/// Replays a trace through the machine's next-state functions, checking
/// every transition and that the final state violates the property.
/// Returns an empty string on success, else a diagnostic.
std::string validateTrace(const Fsm& fsm, const Trace& trace,
                          const ConjunctList& property);

/// Pretty-prints a trace using the machine's state printer.
std::string formatTrace(const Fsm& fsm, const Trace& trace);

}  // namespace icb
