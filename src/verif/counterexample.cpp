#include "verif/counterexample.hpp"

#include <algorithm>

#include "util/rng.hpp"

namespace icb {

namespace {

/// Cube (as a Bdd) fixing every cur variable to its value in `values`.
Bdd stateCube(const Fsm& fsm, std::span<const char> values) {
  BddManager& mgr = fsm.mgr();
  Bdd cube = mgr.one();
  for (const StateBit& b : fsm.vars().stateBits()) {
    cube &= values[b.cur] != 0 ? mgr.var(b.cur) : mgr.nvar(b.cur);
  }
  return cube;
}

/// Partial-evaluates `f` at the cur-variable assignment in `values`,
/// leaving a function over the remaining (input) variables.
Bdd fixState(const Fsm& fsm, const Bdd& f, std::span<const char> values) {
  // Restrict by a full cur cube == iterated cofactor (exact, not heuristic).
  return f.restrictBy(stateCube(fsm, values));
}

/// Picks the input assignment in `inputsOk` (a function over input vars).
std::vector<char> pickInputs(const Fsm& fsm, const Bdd& inputsOk, Rng& rng) {
  std::vector<char> values(fsm.mgr().varCount(), 0);
  fsm.mgr().pickMintermE(inputsOk.edge(), fsm.vars().inputVars(), rng, values);
  return values;
}

/// Builds, over the input variables, the set of inputs driving `state` to a
/// successor satisfying predicate-on-successor `targetOfNext`, where
/// `targetOfNext` is given over cur variables.
Bdd inputsReaching(const Fsm& fsm, std::span<const char> state,
                   const Bdd& targetOfNext) {
  // target[cur := F(cur, inputs)] evaluated at `state`.
  BddManager& mgr = fsm.mgr();
  std::vector<Edge> map(mgr.varCount());
  for (unsigned v = 0; v < map.size(); ++v) map[v] = mgr.varEdge(v);
  std::vector<Bdd> fixedNext;  // keep handles alive while map in use
  fixedNext.reserve(fsm.vars().stateBitCount());
  for (unsigned k = 0; k < fsm.vars().stateBitCount(); ++k) {
    fixedNext.push_back(fixState(fsm, fsm.next(k), state));
    map[fsm.vars().stateBit(k).cur] = fixedNext.back().edge();
  }
  return targetOfNext.composeVec(map);
}

std::vector<char> extractState(const Fsm& fsm, std::span<const char> values) {
  std::vector<char> out(fsm.mgr().varCount(), 0);
  for (const StateBit& b : fsm.vars().stateBits()) out[b.cur] = values[b.cur];
  return out;
}

}  // namespace

Trace buildForwardTrace(const Fsm& fsm, const std::vector<Bdd>& rings,
                        const Bdd& bad) {
  Rng rng(12345);
  BddManager& mgr = fsm.mgr();
  Trace trace;
  const std::size_t k = rings.size() - 1;

  // End state: in the newest ring and bad.
  std::vector<char> values(mgr.varCount(), 0);
  std::vector<unsigned> curVars;
  for (const StateBit& b : fsm.vars().stateBits()) curVars.push_back(b.cur);
  mgr.pickMintermE((rings[k] & bad).edge(), curVars, rng, values);
  std::vector<std::vector<char>> rev{extractState(fsm, values)};

  // Walk back to ring 0 through concrete predecessors.
  for (std::size_t t = k; t-- > 0;) {
    const Bdd target = stateCube(fsm, rev.back());
    const Bdd preds = rings[t] & fsm.preImage(target);
    std::vector<char> prev(mgr.varCount(), 0);
    mgr.pickMintermE(preds.edge(), curVars, rng, prev);
    rev.push_back(extractState(fsm, prev));
  }

  std::reverse(rev.begin(), rev.end());
  trace.states = std::move(rev);

  // Recover the inputs for each step.
  for (std::size_t t = 0; t + 1 < trace.states.size(); ++t) {
    const Bdd ok =
        inputsReaching(fsm, trace.states[t], stateCube(fsm, trace.states[t + 1]));
    trace.inputs.push_back(pickInputs(fsm, ok, rng));
  }
  return trace;
}

Trace buildBackwardTrace(const Fsm& fsm,
                         const std::vector<ConjunctList>& layers) {
  Rng rng(54321);
  BddManager& mgr = fsm.mgr();
  Trace trace;
  std::vector<unsigned> curVars;
  for (const StateBit& b : fsm.vars().stateBits()) curVars.push_back(b.cur);

  // Start state: initial and outside the deepest layer (outside some member).
  const ConjunctList& deepest = layers.back();
  Bdd seed;
  for (const Bdd& c : deepest) {
    const Bdd outside = fsm.init() & !c;
    if (!outside.isZero()) {
      seed = outside;
      break;
    }
  }
  if (seed.isNull()) {
    throw BddUsageError("buildBackwardTrace: init is inside the last layer");
  }
  std::vector<char> values(mgr.varCount(), 0);
  mgr.pickMintermE(seed.edge(), curVars, rng, values);
  trace.states.push_back(extractState(fsm, values));

  const ConjunctList& property = layers.front();  // G_0 == G
  // Walk forward, escaping one layer per step.
  std::size_t layer = layers.size() - 1;
  while (true) {
    const std::vector<char>& s = trace.states.back();
    if (!property.evalAssignment(s)) break;  // reached a violating state
    if (layer == 0) {
      throw BddUsageError("buildBackwardTrace: ran out of layers");
    }
    --layer;
    // Inputs whose successor escapes layer `layer`:  OR over members of
    // NOT(member o F) evaluated at s.
    Bdd bad = mgr.zero();
    for (const Bdd& c : layers[layer]) {
      bad |= !inputsReaching(fsm, s, c);
      if (bad.isOne()) break;
    }
    if (bad.isZero()) {
      throw BddUsageError("buildBackwardTrace: no escaping successor");
    }
    std::vector<char> inputs = pickInputs(fsm, bad, rng);
    // Merge state and inputs for the step evaluation.
    std::vector<char> full = s;
    for (const unsigned v : fsm.vars().inputVars()) full[v] = inputs[v];
    trace.inputs.push_back(std::move(inputs));
    trace.states.push_back(fsm.step(full));
  }
  return trace;
}

std::string validateTrace(const Fsm& fsm, const Trace& trace,
                          const ConjunctList& property) {
  if (trace.states.empty()) return "empty trace";
  if (trace.inputs.size() + 1 != trace.states.size()) {
    return "inputs/states length mismatch";
  }
  std::vector<char> init = trace.states.front();
  if (!fsm.init().eval(init)) return "first state is not initial";
  for (std::size_t t = 0; t + 1 < trace.states.size(); ++t) {
    std::vector<char> full = trace.states[t];
    for (const unsigned v : fsm.vars().inputVars()) {
      full[v] = trace.inputs[t][v];
    }
    const std::vector<char> next = fsm.step(full);
    for (const StateBit& b : fsm.vars().stateBits()) {
      if (next[b.cur] != trace.states[t + 1][b.cur]) {
        return "transition " + std::to_string(t) + " does not follow the machine";
      }
    }
  }
  if (property.evalAssignment(trace.states.back())) {
    return "final state satisfies the property";
  }
  return {};
}

std::string formatTrace(const Fsm& fsm, const Trace& trace) {
  std::string out;
  for (std::size_t t = 0; t < trace.states.size(); ++t) {
    out += "  step " + std::to_string(t) + ": " +
           fsm.describeState(trace.states[t]) + "\n";
  }
  return out;
}

}  // namespace icb
