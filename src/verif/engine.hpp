// Shared types for the five verification engines the paper compares:
//   Fwd   conventional forward traversal,
//   Bkwd  conventional (monolithic) backward traversal,
//   FD    forward traversal exploiting functional dependencies [16],
//   ICI   backward traversal with the original CAV'93 implicit-conjunction
//         heuristics [17],
//   XICI  ICI extended with this paper's evaluation/simplification policy
//         and exact termination test.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "bdd/bdd.hpp"
#include "ici/evaluate_policy.hpp"
#include "ici/termination.hpp"
#include "obs/metrics.hpp"
#include "sym/image.hpp"

namespace icb {

namespace obs {
class TraceSink;
}  // namespace obs

enum class Verdict {
  kHolds,           ///< fixpoint reached, property holds in all reachable states
  kViolated,        ///< counterexample found
  kNodeLimit,       ///< paper's "Exceeded 60MB."
  kTimeLimit,       ///< paper's "Exceeded 40 minutes."
  kIterationLimit,  ///< safety valve (inexact termination tests can miss)
};

[[nodiscard]] const char* verdictName(Verdict v);
[[nodiscard]] bool verdictExceeded(Verdict v);

/// Verdict for a run cut short by a ResourceLimitError: node-capacity kinds
/// (the configured cap and the 31-bit index-space ceiling) report kNodeLimit,
/// everything else kTimeLimit.  Shared by every engine's catch block.
[[nodiscard]] constexpr Verdict verdictForResourceLimit(ResourceKind kind) {
  return kind == ResourceKind::kNodes || kind == ResourceKind::kNodeIndexSpace
             ? Verdict::kNodeLimit
             : Verdict::kTimeLimit;
}

enum class Method { kFwd, kBkwd, kFd, kIci, kXici };

[[nodiscard]] const char* methodName(Method m);

/// Engine state captured at an iteration boundary (the reorder-safe point),
/// sufficient to resume the run as if it had never stopped.  The layout of
/// `lists` / `numbers` is engine-specific:
///   Fwd   lists[0] = {reached}, lists[1] = rings
///   Bkwd  lists[0] = {g0}, lists[1] = per-iteration g's, oldest first
///   ICI   lists[0] = g0 members, lists[1..] = layers G_i, oldest first
///   XICI  lists[0] = g0 members, lists[1..] = layers G_i, oldest first
///   FD    lists[0] = {reduced}, lists[1] = dependency functions h_j;
///         numbers = the matching dependent state-bit indices
/// g0 is stored rather than recomputed because its simplified form depends
/// on the variable order at the time it was built; everything else an engine
/// needs (the ICI signature set, the FD independent-bit set, ...) is rebuilt
/// deterministically from the restored lists, so a resumed run replays the
/// uninterrupted run exactly.
struct EngineSnapshot {
  Method method = Method::kFwd;
  unsigned iteration = 0;
  std::vector<std::vector<Bdd>> lists;
  std::vector<std::uint64_t> numbers;
};

/// Periodic checkpointing, hooked into each engine's iteration boundary
/// (right where autoReorderIfNeeded runs: no edge-level results live).
struct CheckpointOptions {
  /// Snapshot every N completed iterations.  0 disables checkpointing.
  unsigned everyIterations = 0;
  /// Receives each snapshot.  Wall time spent inside the sink is credited
  /// back to the manager's deadline, so checkpoint I/O cannot flip a run
  /// into a spurious time-limit verdict.
  std::function<void(const EngineSnapshot&)> sink;
  /// When non-null, the engine restores this state instead of starting
  /// fresh.  Must have been captured by the same method on the same model
  /// with the same options; `EngineResult::iterations` continues from
  /// `resume->iteration`.
  const EngineSnapshot* resume = nullptr;
};

struct EngineOptions {
  /// Node-count cap (manager-wide).  0 = unlimited.
  std::uint64_t maxNodes = 0;
  /// Wall-clock cap in seconds.  0 = unlimited.
  double timeLimitSeconds = 0.0;
  /// Iteration cap.
  unsigned maxIterations = 100000;
  /// Include the model's user-supplied assisting invariants in G.
  bool withAssists = false;
  /// Produce a counterexample trace on violation.
  bool wantTrace = true;
  /// JSONL observability sink for this run (not the counterexample trace).
  /// Null falls back to the process-wide ICBDD_TRACE sink; see obs/trace.hpp.
  obs::TraceSink* traceSink = nullptr;
  /// Worker attribution for this run's trace spans: >= 0 adds a "worker"
  /// field to every event (set by par::CellContext::apply); -1 omits it.
  int traceWorker = -1;
  /// Job-id attribution: non-empty adds a "job" field to every event, so
  /// one job's spans can be joined across an interleaved batch stream.
  /// Set by par::CellContext::apply from the cell's group name (the job
  /// service submits each job under its request id).
  std::string traceJob;
  /// Cooperative cancellation: installed onto the manager's ResourceLimits
  /// by LimitGuard, polled wherever the deadline is polled.  A run aborted
  /// through it reports the ordinary capped verdict (kTimeLimit), so a
  /// cancelled cell looks exactly like a deadline-expired one downstream.
  /// Set by par::CellContext::apply when the scheduler runs with
  /// SchedulerOptions::cancelRunningCells.
  const std::atomic<bool>* cancelFlag = nullptr;
  /// Intra-problem apply workers for this run: > 1 shares the manager's
  /// unique table and computed cache across a work-stealing pool that splits
  /// each AND/XOR/ITE/EXISTS/AND-EXISTS into cofactor subproblems
  /// (docs/parallel.md).  Installed -- and restored on exit -- by
  /// LimitGuard, so a shared manager leaves the run with its original
  /// configuration.  0 = inherit whatever the manager was constructed with
  /// (BddOptions::applyWorkers); 1 = force the byte-identical serial path.
  unsigned applyWorkers = 0;

  EvaluatePolicyOptions policy;     ///< XICI evaluation policy knobs
  TerminationOptions termination;   ///< XICI exact-test knobs
  ImageOptions image;               ///< forward-engine partitioning knobs
  CheckpointOptions checkpoint;     ///< periodic snapshot / resume hooks
};

/// A counterexample: states[0] is an initial state; inputs[t] drives the
/// transition from states[t] to states[t+1]; the last state violates G.
/// Each entry is a full assignment vector indexed by BDD variable.
struct Trace {
  std::vector<std::vector<char>> states;
  std::vector<std::vector<char>> inputs;
};

struct EngineResult {
  Verdict verdict = Verdict::kIterationLimit;
  Method method = Method::kFwd;
  unsigned iterations = 0;          ///< image computations performed
  double seconds = 0.0;
  /// Largest node count used to represent any iterate R_i / G_i
  /// (shared count for implicitly conjoined lists) -- the paper's
  /// implementation-independent "BDD Nodes" column.
  std::uint64_t peakIterateNodes = 0;
  /// Member sizes of the largest iterate when it was a conjunct list,
  /// the paper's parenthesized breakdown like "(1501, 629, 290, 141)".
  std::vector<std::uint64_t> peakIterateMemberSizes;
  /// Manager-wide peak of allocated nodes (live + not-yet-collected):
  /// the "total memory used" analogue.
  std::uint64_t peakAllocatedNodes = 0;
  std::uint64_t memBytesEstimate = 0;
  /// True when the external-memory tier engaged during the run: the arena
  /// paged through a spill file and the run completed beyond its RAM budget
  /// instead of reporting kNodeLimit (docs/external_memory.md).  The
  /// verdict, iteration count, and counterexample are identical to an
  /// unspilled run with enough RAM.
  bool spilled = false;
  std::string note;
  std::optional<Trace> trace;
  TerminationStats terminationStats;  ///< XICI only
  /// Counter/gauge snapshot of the run (BDD core always; ICI policy and
  /// termination metrics where the method uses them).
  obs::MetricsRegistry metrics;

  [[nodiscard]] bool holds() const { return verdict == Verdict::kHolds; }
  [[nodiscard]] bool violated() const { return verdict == Verdict::kViolated; }
};

/// Formats the member-size breakdown "(a, b, c)" or "" when not a list.
[[nodiscard]] std::string describeMemberSizes(const EngineResult& r);

}  // namespace icb
