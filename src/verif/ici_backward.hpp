// Backward traversal with the *original* implicitly conjoined invariants
// heuristics (Hu & Dill, CAV'93 -- the paper's "ICI" baseline rows).
//
// Faithful-in-spirit reconstruction (the DAC'94 paper deliberately elides
// the details: "The details of these heuristics do not concern us here"),
// keeping the three properties its comparisons rely on:
//   * the conjunct partition is exactly the one the USER supplied -- the
//     list length never grows: position j is updated in place as
//        L'[j] = G_0[j] & BackImage(L[j]),
//     so with a single user conjunct the method degenerates to the ordinary
//     monolithic backward traversal (Table 2's identical Bkwd/ICI rows);
//   * members are cross-simplified with Restrict after each update;
//   * termination is the fast *syntactic* test (same list of BDDs), which
//     is cheap but not proven to detect convergence -- hence the engine's
//     iteration-limit verdict as the safety valve.
#pragma once

#include "sym/fsm.hpp"
#include "verif/engine.hpp"

namespace icb {

EngineResult runIciBackward(Fsm& fsm, const EngineOptions& options = {});

}  // namespace icb
