// Convenience dispatcher: run one of the five methods on a model-provided
// machine, used by the examples and the table benchmarks.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "verif/backward.hpp"
#include "verif/engine.hpp"
#include "verif/fd_forward.hpp"
#include "verif/forward.hpp"
#include "verif/ici_backward.hpp"
#include "verif/xici_backward.hpp"

namespace icb {

/// Runs `method` on the machine.  `fdCandidates` is only consulted by FD.
EngineResult runMethod(Fsm& fsm, Method method,
                       const std::vector<unsigned>& fdCandidates,
                       const EngineOptions& options = {});

/// Parses "fwd" / "bkwd" / "fd" / "ici" / "xici" (case-insensitive).
/// Throws std::invalid_argument on anything else.
Method parseMethod(const std::string& name);

/// All five methods, in the paper's table order.
const std::vector<Method>& allMethods();

}  // namespace icb
