// Convenience dispatcher: run one of the five methods on a model-provided
// machine, used by the examples and the table benchmarks.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "par/scheduler.hpp"
#include "verif/backward.hpp"
#include "verif/engine.hpp"
#include "verif/fd_forward.hpp"
#include "verif/forward.hpp"
#include "verif/ici_backward.hpp"
#include "verif/xici_backward.hpp"

namespace icb {

/// Runs `method` on the machine.  `fdCandidates` is only consulted by FD.
EngineResult runMethod(Fsm& fsm, Method method,
                       const std::vector<unsigned>& fdCandidates,
                       const EngineOptions& options = {});

/// Parses "fwd" / "bkwd" / "fd" / "ici" / "xici" (case-insensitive).
/// Throws std::invalid_argument on anything else.
Method parseMethod(const std::string& name);

/// All five methods, in the paper's table order.
const std::vector<Method>& allMethods();

/// A freshly built model: `holder` keeps the BddManager and the model object
/// alive for as long as `fsm` is used, `fdCandidates` feeds the FD engine.
struct ModelInstance {
  std::shared_ptr<void> holder;
  Fsm* fsm = nullptr;
  std::vector<unsigned> fdCandidates;
};

/// Builds one private model instance.  Called once per cell, on the worker
/// that runs the cell, so every method gets its own BddManager and the cells
/// share no mutable state.
using ModelFactory = std::function<ModelInstance()>;

struct RunAllOptions {
  /// Methods to run, in submission order.  Empty = allMethods().
  std::vector<Method> methods;
  /// Worker count, cancellation policy, global deadline.
  par::SchedulerOptions scheduler;
  /// Per-cell engine options (the scheduler layers worker attribution and
  /// the global-deadline clamp on top via CellContext::apply).
  EngineOptions engine;
  /// Row-group label stamped on every CellResult (model name + config).
  std::string group;
};

/// Runs each requested method as one scheduler cell over a privately built
/// model and returns the results in method order.  With scheduler.jobs == 1
/// this is exactly the historical serial sweep.
std::vector<par::CellResult> runAllMethods(const ModelFactory& factory,
                                           const RunAllOptions& options = {});

}  // namespace icb
