#include "verif/fd_forward.hpp"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "check/check.hpp"
#include "check/structural_checker.hpp"
#include "obs/trace.hpp"
#include "util/lint.hpp"
#include "util/timer.hpp"
#include "sym/image.hpp"
#include "verif/checkpoint.hpp"
#include "verif/limit_guard.hpp"

namespace icb {

namespace {

struct Dep {
  unsigned bit;  ///< state-bit index
  Bdd h;         ///< v_bit == h over the independent current-state vars
};

/// Simultaneous-substitution map eliminating every dependent variable.
///
/// h_j may mention candidates extracted after j (they were still present
/// when h_j was computed), so the raw h's cannot be substituted in one shot.
/// Close them first: walk the deps in reverse extraction order, rewriting
/// each h_j over the later (already closed) h's; the closed functions then
/// mention independent variables only and substitute simultaneously.
class DepSubstituter {
 public:
  DepSubstituter(const Fsm& fsm, const std::vector<Dep>& deps)
      : mgr_(fsm.mgr()) {
    map_.resize(mgr_.varCount());
    for (unsigned v = 0; v < map_.size(); ++v) map_[v] = mgr_.varEdge(v);
    closed_.resize(deps.size());
    for (std::size_t j = deps.size(); j-- > 0;) {
      const unsigned v = fsm.vars().stateBit(deps[j].bit).cur;
      closed_[j] = deps[j].h.composeVec(map_);
      map_[v] = closed_[j].edge();
    }
  }

  [[nodiscard]] Bdd apply(const Bdd& f) const { return f.composeVec(map_); }

 private:
  BddManager& mgr_;
  std::vector<Edge> map_;
  std::vector<Bdd> closed_;  // keeps the map's edges alive
};

}  // namespace

EngineResult runFdForward(Fsm& fsm, std::vector<unsigned> candidateBits,
                          const EngineOptions& options) {
  fsm.validate();
  BddManager& mgr = fsm.mgr();
  EngineResult result;
  result.method = Method::kFd;
  Stopwatch watch;
  mgr.resetStats();
  LimitGuard guard(mgr, options);
  obs::TraceSession trace(options.traceSink, &mgr, options.traceWorker,
                          options.traceJob);
  trace.runBegin(methodName(result.method));

  try {
    const ConjunctList property = fsm.property(options.withAssists);

    // ---- initial dependency extraction from the initial states ----------
    Bdd reduced = fsm.init();
    std::vector<Dep> deps;
    std::unordered_set<unsigned> dependent;
    CheckpointEmitter ckpt(mgr, options.checkpoint, Method::kFd);
    if (const EngineSnapshot* resume = options.checkpoint.resume) {
      if (resume->method != Method::kFd || resume->lists.size() != 2 ||
          resume->lists[0].size() != 1 ||
          resume->lists[1].size() != resume->numbers.size()) {
        throw BddUsageError("runFdForward: incompatible resume snapshot");
      }
      reduced = resume->lists[0][0];
      for (std::size_t d = 0; d < resume->numbers.size(); ++d) {
        const unsigned bit = static_cast<unsigned>(resume->numbers[d]);
        deps.push_back(Dep{bit, resume->lists[1][d]});
        dependent.insert(bit);
      }
      result.iterations = resume->iteration;
    } else {
      for (const unsigned bit : candidateBits) {
        const unsigned v = fsm.vars().stateBit(bit).cur;
        const Bdd r1 = reduced.cofactor(v, true);
        const Bdd r0 = reduced.cofactor(v, false);
        if ((r1 & r0).isZero()) {
          deps.push_back(Dep{bit, r1});
          dependent.insert(bit);
          reduced = r1 | r0;  // == exists v . reduced
        }
      }
    }

    auto independentBits = [&] {
      std::vector<unsigned> out;
      for (unsigned k = 0; k < fsm.vars().stateBitCount(); ++k) {
        if (dependent.count(k) == 0) out.push_back(k);
      }
      return out;
    };

    auto promote = [&](std::size_t depIndex) {
      // Re-expand v == h into the reduced set and forget the dependency.
      const Dep dep = deps[depIndex];
      const unsigned v = fsm.vars().stateBit(dep.bit).cur;
      reduced &= mgr.var(v).xnor(dep.h);
      deps.erase(deps.begin() + static_cast<std::ptrdiff_t>(depIndex));
      dependent.erase(dep.bit);
      result.note += "promoted bit " + std::to_string(dep.bit) + "; ";
    };

    while (true) {
      // ---- peak metric: the factored representation's shared size -------
      {
        std::vector<Bdd> parts{reduced};
        for (const Dep& d : deps) parts.push_back(d.h);
        const std::uint64_t nodes = sharedSize(parts);
        if (nodes > result.peakIterateNodes) {
          result.peakIterateNodes = nodes;
          result.peakIterateMemberSizes.clear();
          for (const Bdd& p : parts) {
            result.peakIterateMemberSizes.push_back(p.size());
          }
        }
      }

      ICBDD_SAFE_POINT("fd loop head: reduced/deps are the whole state");
      if (ckpt.due(result.iterations)) {
        std::vector<Bdd> hs;
        std::vector<std::uint64_t> bits;
        hs.reserve(deps.size());
        bits.reserve(deps.size());
        for (const Dep& d : deps) {
          hs.push_back(d.h);
          bits.push_back(d.bit);
        }
        ckpt.emit(result.iterations, {{reduced}, std::move(hs)},
                  std::move(bits));
      }

      // ---- property check on the factored form ---------------------------
      const DepSubstituter subst(fsm, deps);
      bool violated = false;
      for (const Bdd& g : property) {
        const Bdd gReduced = subst.apply(g);
        if (!(reduced & !gReduced).isZero()) {
          violated = true;
          break;
        }
      }
      if (violated) {
        result.verdict = Verdict::kViolated;
        result.note += "FD does not reconstruct counterexample traces";
        break;
      }

      if (result.iterations >= options.maxIterations) {
        result.verdict = Verdict::kIterationLimit;
        break;
      }

      // ---- image over the independent bits -------------------------------
      trace.phaseBegin("image", result.iterations + 1);
      const std::vector<unsigned> ind = independentBits();
      std::vector<Bdd> nextFns(fsm.vars().stateBitCount());
      for (unsigned k = 0; k < fsm.vars().stateBitCount(); ++k) {
        nextFns[k] = subst.apply(fsm.next(k));
      }

      std::vector<Bdd> conjuncts;
      conjuncts.reserve(ind.size());
      for (const unsigned k : ind) {
        conjuncts.push_back(fsm.vars().nxt(k).xnor(nextFns[k]));
      }
      std::vector<unsigned> quantVars;
      for (const unsigned k : ind) {
        quantVars.push_back(fsm.vars().stateBit(k).cur);
      }
      for (const unsigned v : fsm.vars().inputVars()) quantVars.push_back(v);

      std::vector<unsigned> rename(mgr.varCount());
      for (unsigned v = 0; v < rename.size(); ++v) rename[v] = v;
      for (const unsigned k : ind) {
        rename[fsm.vars().stateBit(k).nxt] = fsm.vars().stateBit(k).cur;
      }

      const Bdd image = clusteredExistsProduct(mgr, reduced, conjuncts, quantVars,
                                          options.image.clusterCap)
                            .permute(rename);

      // ---- dependency functions in the image -----------------------------
      // One relational product per CHUNK of dependent bits (adjacent bits of
      // one counter usually share structure), then project each bit's
      // relation out of the chunk.  Keeps each product near the size of one
      // dependency relation while amortizing the shared T_ind work.
      constexpr std::size_t kDepChunk = 4;
      bool promoted = false;
      std::vector<Bdd> imageH(deps.size());
      for (std::size_t base = 0; base < deps.size() && !promoted;
           base += kDepChunk) {
        const std::size_t end = std::min(base + kDepChunk, deps.size());
        std::vector<Bdd> withDeps = conjuncts;
        std::vector<unsigned> renameD = rename;
        for (std::size_t d = base; d < end; ++d) {
          const unsigned bit = deps[d].bit;
          withDeps.push_back(fsm.vars().nxt(bit).xnor(nextFns[bit]));
          renameD[fsm.vars().stateBit(bit).nxt] = fsm.vars().stateBit(bit).cur;
        }
        const Bdd relChunk = clusteredExistsProduct(mgr, reduced, withDeps,
                                               quantVars,
                                               options.image.clusterCap)
                                 .permute(renameD);
        for (std::size_t d = base; d < end; ++d) {
          const unsigned v = fsm.vars().stateBit(deps[d].bit).cur;
          // Project the other chunk bits away before splitting on this one.
          std::vector<unsigned> others;
          for (std::size_t e = base; e < end; ++e) {
            if (e != d) others.push_back(fsm.vars().stateBit(deps[e].bit).cur);
          }
          const Bdd rel = relChunk.exists(Bdd(&mgr, mgr.cubeE(others)));
          const Bdd a1 = rel.cofactor(v, true);
          const Bdd a0 = rel.cofactor(v, false);
          if (!(a1 & a0).isZero()) {
            promote(d);  // not a function of the independents any more
            promoted = true;
            break;
          }
          imageH[d] = a1;
        }
      }
      if (promoted) {
        // Close the span: this attempt's work is re-done next pass with the
        // promoted bit independent, under the same iteration number.
        if (trace.enabled()) {
          trace.phaseEnd("image", result.iterations + 1, mgr.allocatedNodes(),
                         mgr.stats().peakNodes, {});
        }
        continue;  // rebuild images with the bit independent
      }

      // ---- consistency on the overlap, then unite -------------------------
      const Bdd overlap = reduced & image;
      for (std::size_t d = 0; d < deps.size() && !promoted; ++d) {
        if (!((deps[d].h ^ imageH[d]) & overlap).isZero()) {
          promote(d);
          promoted = true;
        }
      }
      if (promoted) {
        if (trace.enabled()) {
          trace.phaseEnd("image", result.iterations + 1, mgr.allocatedNodes(),
                         mgr.stats().peakNodes, {});
        }
        continue;
      }

      ++result.iterations;
      // Phase boundary: this step's iterate is complete; at kFull,
      // audit the whole arena before trusting it.
      ICBDD_CHECK(kFull, auditArenaCreditingTime(mgr));
      if (trace.enabled()) {
        std::vector<std::uint64_t> sizes{reduced.size()};
        for (const Dep& d : deps) sizes.push_back(d.h.size());
        trace.phaseEnd("image", result.iterations, mgr.allocatedNodes(),
                       mgr.stats().peakNodes, sizes);
      }
      // Iteration boundary: no edge-level results live (DepSubstituter maps
      // are rebuilt per step and rooted in handles), safe to reorder.
      ICBDD_SAFE_POINT("fd image complete, substituter maps rebuilt next step");
      mgr.autoReorderIfNeeded();

      // Converged when the image adds no new independent-part states AND
      // the image dependencies agree with the current ones on the image.
      bool hConsistent = true;
      for (std::size_t d = 0; d < deps.size(); ++d) {
        if (!((deps[d].h ^ imageH[d]) & image).isZero()) {
          hConsistent = false;
          break;
        }
      }
      if ((image & !reduced).isZero() && hConsistent) {
        result.verdict = Verdict::kHolds;
        break;
      }

      const Bdd united = reduced | image;
      for (std::size_t d = 0; d < deps.size(); ++d) {
        const Bdd merged = reduced.ite(deps[d].h, imageH[d]);
        deps[d].h = merged.restrictBy(united);
      }
      reduced = united;
    }
  } catch (const ResourceLimitError& err) {
    result.verdict = verdictForResourceLimit(err.kind());
    mgr.gc();
  }

  result.seconds = watch.elapsedSeconds();
  result.peakAllocatedNodes = mgr.stats().peakNodes;
  result.memBytesEstimate = mgr.bytesForNodes(result.peakAllocatedNodes);
  result.spilled = mgr.spillEngaged();
  result.metrics.captureBdd(mgr);
  trace.runEnd(verdictName(result.verdict), result.iterations, result.seconds,
               result.peakIterateNodes, result.peakAllocatedNodes);
  return result;
}

}  // namespace icb
