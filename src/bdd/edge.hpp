// Edge encoding for the BDD package.
//
// An Edge packs a node index and a complement bit into one 32-bit word:
//   bit 0      complement flag (the function is the negation of the node's)
//   bits 1..31 node index into the manager's node arena
//
// Node index 0 is the single terminal node, so:
//   Edge 0 (index 0, plain)        == constant TRUE
//   Edge 1 (index 0, complemented) == constant FALSE
//
// Complement edges make negation a constant-time bit flip; the paper's exact
// termination test (step 2: "if any two BDDs in the list are complements")
// explicitly relies on this property of "efficient BDD implementations".
#pragma once

#include <cstdint>

namespace icb {

using Edge = std::uint32_t;

inline constexpr Edge kTrueEdge = 0;
inline constexpr Edge kFalseEdge = 1;

/// Index of the node an edge points to.
constexpr std::uint32_t edgeIndex(Edge e) { return e >> 1; }

/// Whether the edge carries the complement flag.
constexpr bool edgeIsComplemented(Edge e) { return (e & 1u) != 0; }

/// Builds an edge from a node index and complement flag.
constexpr Edge makeEdge(std::uint32_t index, bool complemented) {
  return (index << 1) | (complemented ? 1u : 0u);
}

/// Constant-time negation.
constexpr Edge edgeNot(Edge e) { return e ^ 1u; }

/// Makes `e` plain (clears the complement bit); used when canonicalizing.
constexpr Edge edgeRegular(Edge e) { return e & ~1u; }

constexpr bool edgeIsConstant(Edge e) { return edgeIndex(e) == 0; }

}  // namespace icb
