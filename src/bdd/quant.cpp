// Quantification operators: EXISTS over a positive cube and the fused
// relational product AND-EXISTS (used by the image computation so the
// intermediate conjunction never has to be built in full).
#include <algorithm>

#include "bdd/manager.hpp"
#include "check/check.hpp"

namespace icb {

namespace {

/// Positive cubes are right-leaning chains: node(var, rest, FALSE).
/// Returns the rest of the cube after its top variable.
inline Edge cubeNext(const BddManager& mgr, Edge cube) {
  return mgr.edgeThen(cube);
}

}  // namespace

Edge BddManager::existsE(Edge f, Edge cube) {
  ICBDD_CHECK(kCheap, validateEdge(f); validateEdge(cube));
  const BddOpTimer timer(stats_, BddOp::kExists);
  if (parallelEnabled()) return parApply(Op::kExists, f, cube, 0);
  return existsRec(f, cube);
}

Edge BddManager::andExistsE(Edge f, Edge g, Edge cube) {
  ICBDD_CHECK(kCheap, validateEdge(f); validateEdge(g); validateEdge(cube));
  const BddOpTimer timer(stats_, BddOp::kAndExists);
  if (parallelEnabled()) return parApply(Op::kAndExists, f, g, cube);
  return andExistsRec(f, g, cube);
}

Edge BddManager::cubeE(std::span<const unsigned> vars) {
  // Build bottom-up in order, deepest variable first.
  std::vector<unsigned> sorted(vars.begin(), vars.end());
  std::sort(sorted.begin(), sorted.end(),
            [this](unsigned a, unsigned b) { return varLevel(a) > varLevel(b); });
  Edge acc = kTrueEdge;
  for (const unsigned v : sorted) {
    if (v >= varEdges_.size()) throw BddUsageError("cube var out of range");
    acc = mk(v, acc, kFalseEdge);
  }
  return acc;
}

Edge BddManager::existsRec(Edge f, Edge cube) {
  if (edgeIsConstant(f)) return f;
  // Skip cube variables above f's top: they don't occur in f.
  unsigned lf = edgeLevel(f);
  while (cube != kTrueEdge && edgeLevel(cube) < lf) {
    cube = cubeNext(*this, cube);
  }
  if (cube == kTrueEdge) return f;

  Edge cached;
  if (cacheLookup(Op::kExists, f, cube, 0, &cached)) return cached;

  const unsigned lc = edgeLevel(cube);
  const unsigned var = nodeVar(f);
  Edge result;
  if (lf == lc) {
    // Quantify this variable: OR of the cofactors.
    const Edge rest = cubeNext(*this, cube);
    const Edge r1 = existsRec(edgeThen(f), rest);
    if (r1 == kTrueEdge) {
      result = kTrueEdge;  // early cutoff: OR already saturated
    } else {
      const Edge r0 = existsRec(edgeElse(f), rest);
      result = orE(r1, r0);
    }
  } else {
    const Edge r1 = existsRec(edgeThen(f), cube);
    const Edge r0 = existsRec(edgeElse(f), cube);
    result = mk(var, r1, r0);
  }

  cacheInsert(Op::kExists, f, cube, 0, result);
  return result;
}

Edge BddManager::andExistsRec(Edge f, Edge g, Edge cube) {
  if (f == kFalseEdge || g == kFalseEdge) return kFalseEdge;
  if (f == edgeNot(g)) return kFalseEdge;
  if (f == kTrueEdge || f == g) return existsRec(g, cube);
  if (g == kTrueEdge) return existsRec(f, cube);
  // Both non-constant from here.
  const unsigned lf = edgeLevel(f);
  const unsigned lg = edgeLevel(g);
  unsigned top = std::min(lf, lg);
  while (cube != kTrueEdge && edgeLevel(cube) < top) {
    cube = cubeNext(*this, cube);
  }
  if (cube == kTrueEdge) return andRec(f, g);

  if (f > g) std::swap(f, g);
  Edge cached;
  if (cacheLookup(Op::kAndExists, f, g, cube, &cached)) return cached;

  const unsigned lf2 = edgeLevel(f);
  const unsigned lg2 = edgeLevel(g);
  const unsigned var = level2var_[top];
  const Edge f1 = lf2 == top ? edgeThen(f) : f;
  const Edge f0 = lf2 == top ? edgeElse(f) : f;
  const Edge g1 = lg2 == top ? edgeThen(g) : g;
  const Edge g0 = lg2 == top ? edgeElse(g) : g;

  Edge result;
  if (edgeLevel(cube) == top) {
    const Edge rest = cubeNext(*this, cube);
    const Edge r1 = andExistsRec(f1, g1, rest);
    if (r1 == kTrueEdge) {
      result = kTrueEdge;
    } else {
      const Edge r0 = andExistsRec(f0, g0, rest);
      result = orE(r1, r0);
    }
  } else {
    const Edge r1 = andExistsRec(f1, g1, cube);
    const Edge r0 = andExistsRec(f0, g0, cube);
    result = mk(var, r1, r0);
  }

  cacheInsert(Op::kAndExists, f, g, cube, result);
  return result;
}

}  // namespace icb
