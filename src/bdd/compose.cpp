// Simultaneous composition (vector compose), variable renaming, and literal
// cofactors.
//
// Vector compose substitutes a function for every variable at once:
//   composeVec(f, map)(x) = f[v := map[v] for all v]
// It is the workhorse behind BackImage/PreImage for machines whose
// transitions are given as next-state functions:
//   BackImage(Z) = forall inputs . Z[state := F(state, inputs)].
//
// The substitution functions can sit anywhere in the variable order, so the
// recursion rebuilds with ITE rather than mk.  The memo table is local to
// each call (the cache key would otherwise have to include the whole map).
#include <unordered_map>

#include "bdd/manager.hpp"

namespace icb {

namespace {

class VectorComposer {
 public:
  VectorComposer(BddManager& mgr, std::span<const Edge> map)
      : mgr_(mgr), map_(map) {}

  Edge compose(Edge f) {
    if (edgeIsConstant(f)) return f;
    // compose commutes with negation: memoize plain edges only.
    const bool neg = edgeIsComplemented(f);
    const Edge key = edgeRegular(f);
    if (const auto it = memo_.find(key); it != memo_.end()) {
      return it->second ^ (neg ? 1u : 0u);
    }
    const unsigned v = mgr_.nodeVar(key);
    const Edge sub = v < map_.size() ? map_[v] : varEdgeOf(v);
    const Edge hi = compose(mgr_.edgeThen(key));
    const Edge lo = compose(mgr_.edgeElse(key));
    const Edge result = mgr_.iteE(sub, hi, lo);
    memo_.emplace(key, result);
    return result ^ (neg ? 1u : 0u);
  }

 private:
  Edge varEdgeOf(unsigned v) { return mgr_.varEdge(v); }

  BddManager& mgr_;
  std::span<const Edge> map_;
  std::unordered_map<Edge, Edge> memo_;
};

}  // namespace

Edge BddManager::composeVecE(Edge f, std::span<const Edge> map) {
  VectorComposer composer(*this, map);
  return composer.compose(f);
}

Edge BddManager::permuteE(Edge f, std::span<const unsigned> perm) {
  std::vector<Edge> map(varEdges_.size());
  for (unsigned v = 0; v < map.size(); ++v) {
    const unsigned target = v < perm.size() ? perm[v] : v;
    if (target >= varEdges_.size()) {
      throw BddUsageError("permute target out of range");
    }
    map[v] = varEdges_[target];
  }
  VectorComposer composer(*this, map);
  return composer.compose(f);
}

Edge BddManager::cofactorE(Edge f, unsigned var, bool value) {
  if (var >= varEdges_.size()) throw BddUsageError("cofactor var out of range");
  // restrict by the literal is exactly the cofactor (the care set forces
  // var to one value, and Restrict's sibling-merge case skips var above f).
  const Edge literal = value ? varEdges_[var] : edgeNot(varEdges_[var]);
  return restrictE(f, literal);
}

Edge BddManager::transferFromE(const BddManager& source, Edge e) {
  while (varCount() < source.varCount()) {
    newVar(source.varName(varCount()));
  }
  // Memoized rebuild through ITE (the orders may differ).
  std::unordered_map<Edge, Edge> memo;
  auto rec = [&](auto&& self, Edge f) -> Edge {
    if (edgeIsConstant(f)) return f;
    const bool neg = edgeIsComplemented(f);
    const Edge key = edgeRegular(f);
    if (const auto it = memo.find(key); it != memo.end()) {
      return it->second ^ (neg ? 1u : 0u);
    }
    const Edge hi = self(self, source.edgeThen(key));
    const Edge lo = self(self, source.edgeElse(key));
    const Edge result = iteE(varEdge(source.nodeVar(key)), hi, lo);
    memo.emplace(key, result);
    return result ^ (neg ? 1u : 0u);
  };
  return rec(rec, e);
}

}  // namespace icb
