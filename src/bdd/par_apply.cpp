// Intra-problem parallel apply (ROADMAP item 1): the region driver and the
// parallel twins of the recursive operators.
//
// One public apply call with applyWorkers > 1 becomes one *region*:
//
//   parApply    brackets the region with NodeStore::begin/endConcurrent,
//               runs the root subproblem through the work-stealing
//               ApplyPool, merges the workers' private counters into
//               BddStats at the quiesced join, and retries the whole
//               operation with doubled arena slack on a GrowRequest
//               (published nodes and cache entries survive the retry, so
//               every pass makes forward progress).
//
//   par*        mirror andRec/xorRec/iteRec/existsRec/andExistsRec line for
//               line -- same normalizations, same cache keys, same terminal
//               cases -- but allocate through mkShared (lock-free
//               find-or-publish) and probe the cache through the per-worker
//               counter blocks.  Above the spawn depth limit, the then-branch
//               cofactor is offered to thieves as a Task while the
//               else-branch runs inline; below it the recursion is plainly
//               sequential (stolen work stays coarse).
//
// Determinism: results are canonical BDD edges, so verdicts, iteration
// counts, and counterexamples are independent of the schedule.  What *is*
// schedule-dependent is which duplicate loses a publish race and the
// speculative else-branch work where the serial path would have taken the
// exists early cutoff -- both only affect node/cache traffic, never any
// function computed.  The serial path (applyWorkers <= 1) never enters this
// file and stays byte-identical to the historical package.
//
// Exception safety is the strict fork-join protocol of ApplyPool: every
// spawned task is joined (sync) or retired before its frame exits, so tasks
// can live on the spawning frame's stack.  The first real error (resource
// limit, grow request) is captured by abortRegion; every other worker
// unwinds on RegionAborted and the captured error is rethrown at the join.
#include <algorithm>
#include <bit>
#include <utility>

#include "bdd/manager.hpp"
#include "bdd/par_internal.hpp"

namespace icb {

namespace {

/// Offers `t` to thieves while computing the other branch inline, then joins
/// both.  Returns {spawned result, inline result}.  When the inline branch
/// throws, the task is retired (popped unrun, or its thief awaited) before
/// the exception leaves, so the stack-allocated Task never outlives the
/// region's interest in it.
template <typename InlineFn>
std::pair<Edge, Edge> forkJoin(par::ApplyPool& pool, unsigned wid,
                               par::ApplyPool::Task& t, InlineFn inlineBranch) {
  pool.spawn(wid, &t);
  Edge inlined;
  try {
    inlined = inlineBranch();
  } catch (...) {
    pool.abortRegion(std::current_exception());
    pool.retire(wid, &t);
    throw;
  }
  const auto spawned = static_cast<Edge>(pool.sync(wid, &t));
  // The thief may have swallowed a RegionAborted cascade and published a
  // meaningless result; re-check before trusting it.
  if (pool.aborting()) throw par::RegionAborted{};
  return {spawned, inlined};
}

}  // namespace

// ---------------------------------------------------------------------------
// region driver

Edge BddManager::parApply(Op op, Edge f, Edge g, Edge h) {
  for (;;) {
    for (ParWorker& w : par_->workers) w.reset();
    store_.beginConcurrent(par_->growSlack);

    bool grew = false;
    Edge result = 0;
    std::exception_ptr error;
    try {
      result = static_cast<Edge>(par_->pool.run(
          this, &parTaskEntry, static_cast<std::uint32_t>(op), f, g, h));
    } catch (const NodeStore::GrowRequest&) {
      grew = true;
    } catch (...) {
      error = std::current_exception();
    }

    // The join: the pool is parked and the workers' counter blocks are
    // quiescent, so plain merges and serial store maintenance are safe.
    store_.endConcurrent();
    stats_.parSteals += par_->pool.stealsLastRegion();
    for (const ParWorker& w : par_->workers) {
      stats_.uniqueLookups += w.uniqueLookups;
      stats_.uniqueChainSteps += w.uniqueChainSteps;
      stats_.nodesCreated += w.nodesCreated;
      stats_.parCasRetries += w.casRetries;
      stats_.parCacheRaces += w.cacheRaces;
      for (std::size_t i = 0; i < kBddOpCount; ++i) {
        stats_.opCache[i].lookups += w.opCache[i].lookups;
        stats_.opCache[i].hits += w.opCache[i].hits;
      }
    }
    stats_.peakNodes =
        std::max<std::uint64_t>(stats_.peakNodes, allocatedNodes());
    // The unique table was pre-sized by beginConcurrent, so only the
    // computed cache may lag the arena here.
    maybeGrowComputedCache();

    if (error) {
      bool spillFallback = false;
      try {
        std::rethrow_exception(error);
      } catch (const ResourceLimitError& err) {
        spillFallback = err.kind() == ResourceKind::kNodes &&
                        store_.spillArmed() && !store_.spillEngaged();
        if (!spillFallback) throw;
      }
      // Quiesce -> spill -> retry (docs/external_memory.md): the node cap
      // fired inside the region with the spill tier armed but not mounted.
      // The region has just quiesced (endConcurrent above), so this is a
      // safe point to engage the tier and re-run the operation through the
      // serial recursion -- parallelEnabled() stays false from here on.
      // kNodeIndexSpace (the structural 31-bit ceiling no disk can lift)
      // and every other limit rethrow unchanged above.
      engageSpill();
      switch (op) {
        case Op::kAnd: return andRec(f, g);
        case Op::kXor: return xorRec(f, g);
        case Op::kIte: return iteRec(f, g, h);
        case Op::kExists: return existsRec(f, g);
        case Op::kAndExists: return andExistsRec(f, g, h);
        default:
          throw BddUsageError("parallel dispatch of unsupported operation");
      }
    }
    if (!grew) {
      // Decay the slack so one huge operation does not pin the arena
      // headroom for every later small one.
      par_->growSlack = std::max<std::size_t>(par_->growSlack / 2, 1u << 16);
      return result;
    }
    par_->growSlack *= 2;
  }
}

std::uint32_t BddManager::parTaskEntry(void* ctx, std::uint32_t op,
                                       std::uint32_t f, std::uint32_t g,
                                       std::uint32_t h, unsigned depth,
                                       unsigned worker) {
  auto* mgr = static_cast<BddManager*>(ctx);
  return mgr->parDispatch(mgr->par_->workers[worker], static_cast<Op>(op), f,
                          g, h, depth);
}

Edge BddManager::parDispatch(ParWorker& w, Op op, Edge f, Edge g, Edge h,
                             unsigned depth) {
  switch (op) {
    case Op::kAnd: return parAnd(w, f, g, depth);
    case Op::kXor: return parXor(w, f, g, depth);
    case Op::kIte: return parIte(w, f, g, h, depth);
    case Op::kExists: return parExists(w, f, g, depth);
    case Op::kAndExists: return parAndExists(w, f, g, h, depth);
    default: break;
  }
  throw BddUsageError("parallel dispatch of unsupported operation");
}

// ---------------------------------------------------------------------------
// shared-mode building blocks

Edge BddManager::mkShared(ParWorker& w, unsigned var, Edge hi, Edge lo) {
  if (hi == lo) return hi;
  // Canonical form: the then-arc is never complemented.
  if (edgeIsComplemented(hi)) {
    return edgeNot(mkShared(w, var, edgeNot(hi), edgeNot(lo)));
  }

  ++w.uniqueLookups;
  const std::uint32_t hit =
      store_.findShared(var, hi, lo, &w.uniqueChainSteps);
  if (hit != kNil) return makeEdge(hit, false);

  parPollLimits(w);

  bool createdNew = false;
  const std::uint32_t index = store_.allocateShared(
      var, hi, lo, &w.uniqueChainSteps, &w.casRetries, &createdNew);
  if (createdNew) ++w.nodesCreated;
  return makeEdge(index, false);
}

void BddManager::parPollLimits(ParWorker& w) {
  // Cascade promptly once any worker has aborted the region: the rest of
  // this subproblem's work would be thrown away anyway.
  if (par_->pool.aborting()) throw par::RegionAborted{};
  if (limits_.maxNodes != 0 && store_.allocatedShared() > limits_.maxNodes) {
    throw ResourceLimitError(ResourceKind::kNodes);
  }
  // relaxed: cancellation is advisory -- the poll needs timeliness, not
  // ordering with the cancelling thread's other writes (same contract as
  // the serial checkResourceLimits).
  if (limits_.cancelFlag != nullptr &&
      limits_.cancelFlag->load(std::memory_order_relaxed)) {
    throw ResourceLimitError(ResourceKind::kCancelled);
  }
  // The clock is comparatively expensive; sample it through the worker's
  // private countdown (the serial path samples identically).
  if (limits_.deadline.isSet() && w.limitCountdown-- == 0) {
    w.limitCountdown = 8192;
    if (limits_.deadline.expired()) {
      throw ResourceLimitError(ResourceKind::kTime);
    }
  }
}

bool BddManager::parCacheLookup(ParWorker& w, Op op, Edge f, Edge g, Edge h,
                                Edge* out) {
  BddOpCacheStats& opStats = w.opCache[static_cast<std::size_t>(op)];
  ++opStats.lookups;
  if (cache_.lookup(static_cast<std::uint32_t>(op), f, g, h, out,
                    &w.cacheRaces)) {
    ++opStats.hits;
    return true;
  }
  return false;
}

void BddManager::parCacheInsert(ParWorker& w, Op op, Edge f, Edge g, Edge h,
                                Edge result) {
  cache_.insert(static_cast<std::uint32_t>(op), f, g, h, result,
                &w.cacheRaces);
}

// ---------------------------------------------------------------------------
// parallel recursions (each the line-for-line twin of its serial original;
// see ops.cpp / quant.cpp for the normalization rationale)

Edge BddManager::parAnd(ParWorker& w, Edge f, Edge g, unsigned depth) {
  if (f == kFalseEdge || g == kFalseEdge) return kFalseEdge;
  if (f == kTrueEdge) return g;
  if (g == kTrueEdge) return f;
  if (f == g) return f;
  if (f == edgeNot(g)) return kFalseEdge;

  if (f > g) std::swap(f, g);

  Edge cached;
  if (parCacheLookup(w, Op::kAnd, f, g, 0, &cached)) return cached;

  const unsigned lf = edgeLevel(f);
  const unsigned lg = edgeLevel(g);
  const unsigned top = std::min(lf, lg);
  const unsigned var = level2var_[top];

  const Edge f1 = lf == top ? edgeThen(f) : f;
  const Edge f0 = lf == top ? edgeElse(f) : f;
  const Edge g1 = lg == top ? edgeThen(g) : g;
  const Edge g0 = lg == top ? edgeElse(g) : g;

  Edge r1, r0;
  par::ApplyPool& pool = par_->pool;
  if (depth < pool.spawnDepthLimit()) {
    const auto wid = static_cast<unsigned>(&w - par_->workers.data());
    par::ApplyPool::Task t;
    t.op = static_cast<std::uint32_t>(Op::kAnd);
    t.f = f1;
    t.g = g1;
    t.depth = depth + 1;
    std::tie(r1, r0) =
        forkJoin(pool, wid, t, [&] { return parAnd(w, f0, g0, depth + 1); });
  } else {
    r1 = parAnd(w, f1, g1, depth + 1);
    r0 = parAnd(w, f0, g0, depth + 1);
  }
  const Edge result = mkShared(w, var, r1, r0);

  parCacheInsert(w, Op::kAnd, f, g, 0, result);
  return result;
}

Edge BddManager::parXor(ParWorker& w, Edge f, Edge g, unsigned depth) {
  if (f == kFalseEdge) return g;
  if (g == kFalseEdge) return f;
  if (f == kTrueEdge) return edgeNot(g);
  if (g == kTrueEdge) return edgeNot(f);
  if (f == g) return kFalseEdge;
  if (f == edgeNot(g)) return kTrueEdge;

  Edge parity = (f & 1u) ^ (g & 1u);
  f = edgeRegular(f);
  g = edgeRegular(g);
  if (f > g) std::swap(f, g);

  Edge cached;
  if (parCacheLookup(w, Op::kXor, f, g, 0, &cached)) return cached ^ parity;

  const unsigned lf = edgeLevel(f);
  const unsigned lg = edgeLevel(g);
  const unsigned top = std::min(lf, lg);
  const unsigned var = level2var_[top];

  const Edge f1 = lf == top ? edgeThen(f) : f;
  const Edge f0 = lf == top ? edgeElse(f) : f;
  const Edge g1 = lg == top ? edgeThen(g) : g;
  const Edge g0 = lg == top ? edgeElse(g) : g;

  Edge r1, r0;
  par::ApplyPool& pool = par_->pool;
  if (depth < pool.spawnDepthLimit()) {
    const auto wid = static_cast<unsigned>(&w - par_->workers.data());
    par::ApplyPool::Task t;
    t.op = static_cast<std::uint32_t>(Op::kXor);
    t.f = f1;
    t.g = g1;
    t.depth = depth + 1;
    std::tie(r1, r0) =
        forkJoin(pool, wid, t, [&] { return parXor(w, f0, g0, depth + 1); });
  } else {
    r1 = parXor(w, f1, g1, depth + 1);
    r0 = parXor(w, f0, g0, depth + 1);
  }
  const Edge result = mkShared(w, var, r1, r0);

  parCacheInsert(w, Op::kXor, f, g, 0, result);
  return result ^ parity;
}

Edge BddManager::parIte(ParWorker& w, Edge f, Edge g, Edge h, unsigned depth) {
  if (f == kTrueEdge) return g;
  if (f == kFalseEdge) return h;
  if (g == h) return g;
  if (g == kTrueEdge && h == kFalseEdge) return f;
  if (g == kFalseEdge && h == kTrueEdge) return edgeNot(f);
  if (f == g) g = kTrueEdge;
  else if (f == edgeNot(g)) g = kFalseEdge;
  if (f == h) h = kFalseEdge;
  else if (f == edgeNot(h)) h = kTrueEdge;

  if (g == h) return g;
  if (g == kTrueEdge && h == kFalseEdge) return f;
  if (g == kFalseEdge && h == kTrueEdge) return edgeNot(f);
  if (g == kTrueEdge) return edgeNot(parAnd(w, edgeNot(f), edgeNot(h), depth));
  if (g == kFalseEdge) return parAnd(w, edgeNot(f), h, depth);
  if (h == kFalseEdge) return parAnd(w, f, g, depth);
  if (h == kTrueEdge) return edgeNot(parAnd(w, f, edgeNot(g), depth));

  if (edgeIsComplemented(f)) {
    f = edgeNot(f);
    std::swap(g, h);
  }
  Edge parity = 0;
  if (edgeIsComplemented(g)) {
    parity = 1;
    g = edgeNot(g);
    h = edgeNot(h);
  }

  Edge cached;
  if (parCacheLookup(w, Op::kIte, f, g, h, &cached)) return cached ^ parity;

  const unsigned lf = edgeLevel(f);
  const unsigned lg = edgeLevel(g);
  const unsigned lh = edgeLevel(h);
  const unsigned top = std::min({lf, lg, lh});
  const unsigned var = level2var_[top];

  const Edge f1 = lf == top ? edgeThen(f) : f;
  const Edge f0 = lf == top ? edgeElse(f) : f;
  const Edge g1 = lg == top ? edgeThen(g) : g;
  const Edge g0 = lg == top ? edgeElse(g) : g;
  const Edge h1 = lh == top ? edgeThen(h) : h;
  const Edge h0 = lh == top ? edgeElse(h) : h;

  Edge r1, r0;
  par::ApplyPool& pool = par_->pool;
  if (depth < pool.spawnDepthLimit()) {
    const auto wid = static_cast<unsigned>(&w - par_->workers.data());
    par::ApplyPool::Task t;
    t.op = static_cast<std::uint32_t>(Op::kIte);
    t.f = f1;
    t.g = g1;
    t.h = h1;
    t.depth = depth + 1;
    std::tie(r1, r0) = forkJoin(
        pool, wid, t, [&] { return parIte(w, f0, g0, h0, depth + 1); });
  } else {
    r1 = parIte(w, f1, g1, h1, depth + 1);
    r0 = parIte(w, f0, g0, h0, depth + 1);
  }
  const Edge result = mkShared(w, var, r1, r0);

  parCacheInsert(w, Op::kIte, f, g, h, result);
  return result ^ parity;
}

Edge BddManager::parExists(ParWorker& w, Edge f, Edge cube, unsigned depth) {
  if (edgeIsConstant(f)) return f;
  const unsigned lf = edgeLevel(f);
  while (cube != kTrueEdge && edgeLevel(cube) < lf) {
    cube = edgeThen(cube);  // positive cubes chain through their then-arcs
  }
  if (cube == kTrueEdge) return f;

  Edge cached;
  if (parCacheLookup(w, Op::kExists, f, cube, 0, &cached)) return cached;

  const unsigned lc = edgeLevel(cube);
  const unsigned var = nodeVar(f);
  par::ApplyPool& pool = par_->pool;
  Edge result;
  if (lf == lc) {
    const Edge rest = edgeThen(cube);
    if (depth < pool.spawnDepthLimit()) {
      // Speculative split: the serial early cutoff (skip the else-cofactor
      // once the then-side saturates to TRUE) cannot be honored while the
      // then-side computes concurrently.  The extra else-side work changes
      // node/cache traffic only -- results are canonical either way.
      const auto wid = static_cast<unsigned>(&w - par_->workers.data());
      par::ApplyPool::Task t;
      t.op = static_cast<std::uint32_t>(Op::kExists);
      t.f = edgeThen(f);
      t.g = rest;
      t.depth = depth + 1;
      const auto [r1, r0] = forkJoin(
          pool, wid, t, [&] { return parExists(w, edgeElse(f), rest, depth + 1); });
      result = r1 == kTrueEdge
                   ? kTrueEdge
                   : edgeNot(parAnd(w, edgeNot(r1), edgeNot(r0), depth));
    } else {
      const Edge r1 = parExists(w, edgeThen(f), rest, depth + 1);
      if (r1 == kTrueEdge) {
        result = kTrueEdge;  // early cutoff: OR already saturated
      } else {
        const Edge r0 = parExists(w, edgeElse(f), rest, depth + 1);
        result = edgeNot(parAnd(w, edgeNot(r1), edgeNot(r0), depth));
      }
    }
  } else {
    Edge r1, r0;
    if (depth < pool.spawnDepthLimit()) {
      const auto wid = static_cast<unsigned>(&w - par_->workers.data());
      par::ApplyPool::Task t;
      t.op = static_cast<std::uint32_t>(Op::kExists);
      t.f = edgeThen(f);
      t.g = cube;
      t.depth = depth + 1;
      std::tie(r1, r0) = forkJoin(
          pool, wid, t, [&] { return parExists(w, edgeElse(f), cube, depth + 1); });
    } else {
      r1 = parExists(w, edgeThen(f), cube, depth + 1);
      r0 = parExists(w, edgeElse(f), cube, depth + 1);
    }
    result = mkShared(w, var, r1, r0);
  }

  parCacheInsert(w, Op::kExists, f, cube, 0, result);
  return result;
}

Edge BddManager::parAndExists(ParWorker& w, Edge f, Edge g, Edge cube,
                              unsigned depth) {
  if (f == kFalseEdge || g == kFalseEdge) return kFalseEdge;
  if (f == edgeNot(g)) return kFalseEdge;
  if (f == kTrueEdge || f == g) return parExists(w, g, cube, depth);
  if (g == kTrueEdge) return parExists(w, f, cube, depth);

  const unsigned lf = edgeLevel(f);
  const unsigned lg = edgeLevel(g);
  const unsigned top = std::min(lf, lg);
  while (cube != kTrueEdge && edgeLevel(cube) < top) {
    cube = edgeThen(cube);
  }
  if (cube == kTrueEdge) return parAnd(w, f, g, depth);

  if (f > g) std::swap(f, g);
  Edge cached;
  if (parCacheLookup(w, Op::kAndExists, f, g, cube, &cached)) return cached;

  const unsigned lf2 = edgeLevel(f);
  const unsigned lg2 = edgeLevel(g);
  const unsigned var = level2var_[top];
  const Edge f1 = lf2 == top ? edgeThen(f) : f;
  const Edge f0 = lf2 == top ? edgeElse(f) : f;
  const Edge g1 = lg2 == top ? edgeThen(g) : g;
  const Edge g0 = lg2 == top ? edgeElse(g) : g;

  par::ApplyPool& pool = par_->pool;
  Edge result;
  if (edgeLevel(cube) == top) {
    const Edge rest = edgeThen(cube);
    if (depth < pool.spawnDepthLimit()) {
      // Speculative, like parExists: the else-side may run even when the
      // then-side would have saturated the OR.
      const auto wid = static_cast<unsigned>(&w - par_->workers.data());
      par::ApplyPool::Task t;
      t.op = static_cast<std::uint32_t>(Op::kAndExists);
      t.f = f1;
      t.g = g1;
      t.h = rest;
      t.depth = depth + 1;
      const auto [r1, r0] = forkJoin(pool, wid, t, [&] {
        return parAndExists(w, f0, g0, rest, depth + 1);
      });
      result = r1 == kTrueEdge
                   ? kTrueEdge
                   : edgeNot(parAnd(w, edgeNot(r1), edgeNot(r0), depth));
    } else {
      const Edge r1 = parAndExists(w, f1, g1, rest, depth + 1);
      if (r1 == kTrueEdge) {
        result = kTrueEdge;
      } else {
        const Edge r0 = parAndExists(w, f0, g0, rest, depth + 1);
        result = edgeNot(parAnd(w, edgeNot(r1), edgeNot(r0), depth));
      }
    }
  } else {
    Edge r1, r0;
    if (depth < pool.spawnDepthLimit()) {
      const auto wid = static_cast<unsigned>(&w - par_->workers.data());
      par::ApplyPool::Task t;
      t.op = static_cast<std::uint32_t>(Op::kAndExists);
      t.f = f1;
      t.g = g1;
      t.h = cube;
      t.depth = depth + 1;
      std::tie(r1, r0) = forkJoin(pool, wid, t, [&] {
        return parAndExists(w, f0, g0, cube, depth + 1);
      });
    } else {
      r1 = parAndExists(w, f1, g1, cube, depth + 1);
      r0 = parAndExists(w, f0, g0, cube, depth + 1);
    }
    result = mkShared(w, var, r1, r0);
  }

  parCacheInsert(w, Op::kAndExists, f, g, cube, result);
  return result;
}

}  // namespace icb
