#include "bdd/node_store.hpp"

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <bit>

namespace icb {

namespace {

/// 64-bit mix (Murmur3 finalizer); good avalanche for table hashing.
std::uint64_t mix64(std::uint64_t x) {
  x ^= x >> 33;
  x *= 0xFF51AFD7ED558CCDull;
  x ^= x >> 33;
  x *= 0xC4CEB9FE1A85EC53ull;
  x ^= x >> 33;
  return x;
}

/// Process-unique page-file name: several managers (service jobs) may spill
/// into the same directory concurrently.
std::string nextSpillName() {
  static std::atomic<std::uint64_t> seq{0};
  // relaxed: the ticket needs only uniqueness, no ordering.
  const std::uint64_t n = seq.fetch_add(1, std::memory_order_relaxed);
  return "icbdd-spill-" + std::to_string(::getpid()) + "-" +
         std::to_string(n) + ".pages";
}

}  // namespace

NodeStore::NodeStore(std::size_t initialCapacity) {
  nodes_.reserve(initialCapacity);
  // Node 0: the terminal.  Its var is kTermVar so it never matches a
  // variable; it is never on a hash chain; its reference is pinned.
  PackedNode terminal;
  packFields(terminal, kTermVar, kTrueEdge, kTrueEdge);
  packNext(terminal, kNil);
  nodes_.push_back(terminal);
  buckets_.assign(std::bit_ceil<std::size_t>(initialCapacity), kNil);
  refs_.emplace(0u, kMaxRef);
}

std::size_t NodeStore::hashOf(unsigned var, Edge hi, Edge lo) const {
  const std::uint64_t key =
      (static_cast<std::uint64_t>(var) << 40) ^
      (static_cast<std::uint64_t>(hi) << 20) ^ static_cast<std::uint64_t>(lo);
  return mix64(key) & (buckets_.size() - 1);
}

std::uint32_t NodeStore::find(unsigned var, Edge hi, Edge lo,
                              std::uint64_t* chainSteps) const {
  for (std::uint32_t i = buckets_[hashOf(var, hi, lo)]; i != kNil;
       i = unpackNext(nodes_[i])) {
    ++*chainSteps;
    const PackedNode& n = nodes_[i];
    if (unpackVar(n) == var && unpackHi(n) == hi && unpackLo(n) == lo) {
      return i;
    }
  }
  return kNil;
}

std::uint32_t NodeStore::allocate(unsigned var, Edge hi, Edge lo) {
  std::uint32_t index;
  if (freeHead_ != kNil) {
    index = freeHead_;
    freeHead_ = unpackNext(nodes_[index]);
    --freeCount_;
  } else {
    // The cap check runs BEFORE the arena grows: on a throw nothing has
    // changed, so the caller's manager remains fully usable.  kMaxIndex
    // (== kNil - 1) keeps every fresh index encodable in Edge's 31-bit
    // index field and distinct from the null link -- a wrapped makeEdge()
    // is structurally impossible, not merely checked.
    if (nodes_.size() > indexCap_) {
      throw ResourceLimitError(ResourceKind::kNodeIndexSpace);
    }
    index = static_cast<std::uint32_t>(nodes_.size());
    nodes_.emplace_back();
  }
  PackedNode& n = nodes_[index];
  packFields(n, var, hi, lo);
  const std::size_t slot = hashOf(var, hi, lo);
  packNext(n, buckets_[slot]);
  buckets_[slot] = index;
  return index;
}

// ---------------------------------------------------------------------------
// external-memory (spill) tier

void NodeStore::engageSpill(std::uint64_t budgetNodes) {
  if (nodes_.engaged()) return;
  if (spillDir_.empty()) {
    throw BddUsageError("engageSpill: spill tier is not armed (no spillDir)");
  }
  spillFile_ = std::make_unique<xmem::PageFile>();
  spillFile_->open(spillDir_ + "/" + nextSpillName(),
                   xmem::PagedStore<PackedNode>::kPageBytes,
                   sizeof(PackedNode));
  const std::size_t budgetPages = static_cast<std::size_t>(
      budgetNodes >> xmem::PagedStore<PackedNode>::kPageShift);
  nodes_.engage(budgetPages, spillFile_.get(), &pagerStats_);
}

NodeStore::SpillInfo NodeStore::spillInfo() const {
  SpillInfo info;
  info.armed = spillArmed();
  info.engaged = nodes_.engaged();
  info.pageCount = nodes_.pageCount();
  info.residentPages = nodes_.residentPages();
  info.budgetPages = nodes_.budgetPages();
  info.pageBytes = xmem::PagedStore<PackedNode>::kPageBytes;
  info.spillFileBytes = spillFile_ ? spillFile_->bytesOnDisk() : 0;
  return info;
}

// ---------------------------------------------------------------------------
// concurrent (shared-apply) mode

void NodeStore::beginConcurrent(std::size_t slack) {
  const std::uint64_t want =
      static_cast<std::uint64_t>(nodes_.size()) + slack;
  const std::uint64_t cap =
      std::min<std::uint64_t>(want, static_cast<std::uint64_t>(indexCap_) + 1);
  capacity_ = static_cast<std::size_t>(
      std::max<std::uint64_t>(cap, nodes_.size()));
  // relaxed: single-threaded here -- the region's workers have not started.
  bump_.store(static_cast<std::uint32_t>(nodes_.size()),
              std::memory_order_relaxed);
  // relaxed: same single-threaded setup store as above.
  abandonedHead_.store(kNil, std::memory_order_relaxed);
  // Pre-size the unique table so the load factor stays <= 1 without a
  // mid-region rehash.  This must happen BEFORE the padding below exists:
  // rehash() chains every node whose var is not the free sentinel, and the
  // value-initialized padding (both words zero) decodes as a var-0 node --
  // rehashing over it would chain the whole slack region into one bucket,
  // which dangles once endConcurrent() truncates the unclaimed tail.
  if (buckets_.size() < capacity_) {
    rehash(std::bit_ceil<std::size_t>(capacity_));
  }
  // The padding nodes are value-initialized and stay unreachable until a
  // worker claims their index and publishes it.
  nodes_.resize(capacity_);
  concurrent_ = true;
}

void NodeStore::endConcurrent() {
  // relaxed: the workers have quiesced (joined); this thread sees their
  // final ticket by the join's synchronization.
  const std::uint64_t bump = bump_.load(std::memory_order_relaxed);
  const std::size_t extent = static_cast<std::size_t>(
      std::min<std::uint64_t>(bump, capacity_));
  nodes_.resize(extent);
  // Free-list the CAS losers: every abandoned index is below the extent
  // (abandonShared only ever parks in-capacity tickets).
  // relaxed: quiesced, as above.
  std::uint32_t a = abandonedHead_.load(std::memory_order_relaxed);
  while (a != kNil) {
    const std::uint32_t next = unpackNext(nodes_[a]);
    nodes_[a].word0 = 0;  // drop the claim mark and the abandoned-list link
    pushFree(a);
    a = next;
  }
  // relaxed: quiesced, as above.
  abandonedHead_.store(kNil, std::memory_order_relaxed);
  concurrent_ = false;
}

std::uint32_t NodeStore::chainSearch(std::uint32_t i, unsigned var, Edge hi,
                                     Edge lo, std::uint64_t* chainSteps) {
  while (i != kNil) {
    ++*chainSteps;
    PackedNode& n = nodes_[i];
    // relaxed: node i became reachable through a release-published bucket
    // head (acquire-loaded by the caller) or a release CAS extending the
    // chain; either way its words happened-before this load.
    const std::uint64_t w0 =
        std::atomic_ref<std::uint64_t>(n.word0).load(std::memory_order_relaxed);
    // relaxed: same publication argument as word0 above.
    const std::uint64_t w1 =
        std::atomic_ref<std::uint64_t>(n.word1).load(std::memory_order_relaxed);
    if (static_cast<unsigned>((w1 >> kVarShift) & kVarMask) == var &&
        static_cast<Edge>(w0 & kEdgeMask) == hi &&
        static_cast<Edge>(w1 & kEdgeMask) == lo) {
      return i;
    }
    i = static_cast<std::uint32_t>((w0 >> kNextShift) & kNextMask);
  }
  return kNil;
}

std::uint32_t NodeStore::findShared(unsigned var, Edge hi, Edge lo,
                                    std::uint64_t* chainSteps) {
  const std::size_t slot = hashOf(var, hi, lo);
  const std::uint32_t head =
      std::atomic_ref<std::uint32_t>(buckets_[slot])
          .load(std::memory_order_acquire);
  return chainSearch(head, var, hi, lo, chainSteps);
}

void NodeStore::abandonShared(std::uint32_t index) {
  PackedNode& n = nodes_[index];
  // The loser keeps its claim mark; its var becomes the free sentinel so a
  // stray read never mistakes it for a live node.  Plain stores are fine:
  // nobody else reads an unpublished node, and the quiesced drain in
  // endConcurrent() is ordered by the workers' join.
  n.word1 = static_cast<std::uint64_t>(kFreeVar) << kVarShift;
  // relaxed: the CAS below is what publishes the push; a stale head only
  // makes it retry.
  std::uint32_t head = abandonedHead_.load(std::memory_order_relaxed);
  for (;;) {
    n.word0 = kClaimBit |
              (static_cast<std::uint64_t>(head & kNextMask) << kNextShift);
    // relaxed: failure just re-reads the head for the retry; success needs
    // release only so the drain (already ordered by the join) is also
    // well-formed against a racing pusher's word0 store.
    if (abandonedHead_.compare_exchange_weak(head, index,
                                             std::memory_order_release,
                                             std::memory_order_relaxed)) {
      return;
    }
  }
}

std::uint32_t NodeStore::allocateShared(unsigned var, Edge hi, Edge lo,
                                        std::uint64_t* chainSteps,
                                        std::uint64_t* casRetries,
                                        bool* createdNew) {
  // relaxed: the ticket needs only uniqueness (fetch_add); the node is
  // published -- with full ordering -- by the bucket-head CAS below.
  const std::uint32_t index =
      bump_.fetch_add(1, std::memory_order_relaxed);
  if (index > indexCap_) {
    // Keep the extent hole-free before reporting the structural ceiling:
    // in-capacity tickets park on the abandoned list, out-of-capacity ones
    // are beyond the post-region extent anyway.
    if (index < capacity_) abandonShared(index);
    throw ResourceLimitError(ResourceKind::kNodeIndexSpace);
  }
  if (index >= capacity_) throw GrowRequest{};

  PackedNode& n = nodes_[index];
  // Claimed: allocated but not yet published (word0 bit 63, the reserved
  // spare of docs/node_layout.md).  Plain stores -- the index is private
  // until the CAS succeeds.
  n.word1 = (static_cast<std::uint64_t>(var & kVarMask) << kVarShift) |
            static_cast<std::uint64_t>(lo);
  n.word0 = static_cast<std::uint64_t>(hi) |
            (static_cast<std::uint64_t>(kNil) << kNextShift) | kClaimBit;

  const std::size_t slot = hashOf(var, hi, lo);
  std::atomic_ref<std::uint32_t> head(buckets_[slot]);
  std::uint32_t h0 = head.load(std::memory_order_acquire);
  for (;;) {
    // Re-probe under the current head: a racing worker may have published
    // this very triple while we were claiming our ticket.
    const std::uint32_t dup = chainSearch(h0, var, hi, lo, chainSteps);
    if (dup != kNil) {
      abandonShared(index);
      *createdNew = false;
      return dup;
    }
    // Link then publish: word0 gains the chain link and sheds the claim
    // mark in one release store; the head CAS makes it reachable.  Readers
    // that acquire the new head see this store (and, through the release
    // sequence on the head, every earlier node's words too).
    std::atomic_ref<std::uint64_t>(n.word0).store(
        static_cast<std::uint64_t>(hi) |
            (static_cast<std::uint64_t>(h0 & kNextMask) << kNextShift),
        std::memory_order_release);
    if (head.compare_exchange_weak(h0, index, std::memory_order_release,
                                   std::memory_order_acquire)) {
      *createdNew = true;
      return index;
    }
    ++*casRetries;
  }
}

void NodeStore::rehash(std::size_t newBucketCount) {
  buckets_.assign(newBucketCount, kNil);
  for (std::uint32_t i = 1; i < nodes_.size(); ++i) {
    PackedNode& n = nodes_[i];
    if (unpackVar(n) == kFreeVar) continue;  // free-listed node
    const std::size_t slot = hashOf(unpackVar(n), unpackHi(n), unpackLo(n));
    packNext(n, buckets_[slot]);
    buckets_[slot] = i;
  }
}

void NodeStore::linkIntoBucket(std::uint32_t i) {
  PackedNode& n = nodes_[i];
  const std::size_t slot = hashOf(unpackVar(n), unpackHi(n), unpackLo(n));
  packNext(n, buckets_[slot]);
  buckets_[slot] = i;
}

bool NodeStore::unlinkFromBucket(std::uint32_t i) {
  const std::uint32_t after = unpackNext(nodes_[i]);
  const PackedNode& n = nodes_[i];
  const std::size_t slot = hashOf(unpackVar(n), unpackHi(n), unpackLo(n));
  std::uint32_t cur = buckets_[slot];
  if (cur == i) {
    buckets_[slot] = after;
    return true;
  }
  while (cur != kNil) {
    const std::uint32_t next = unpackNext(nodes_[cur]);
    if (next == i) {
      packNext(nodes_[cur], after);
      return true;
    }
    cur = next;
  }
  return false;
}

}  // namespace icb
