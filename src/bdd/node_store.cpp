#include "bdd/node_store.hpp"

#include <bit>

namespace icb {

namespace {

/// 64-bit mix (Murmur3 finalizer); good avalanche for table hashing.
std::uint64_t mix64(std::uint64_t x) {
  x ^= x >> 33;
  x *= 0xFF51AFD7ED558CCDull;
  x ^= x >> 33;
  x *= 0xC4CEB9FE1A85EC53ull;
  x ^= x >> 33;
  return x;
}

}  // namespace

NodeStore::NodeStore(std::size_t initialCapacity) {
  nodes_.reserve(initialCapacity);
  // Node 0: the terminal.  Its var is kTermVar so it never matches a
  // variable; it is never on a hash chain; its reference is pinned.
  PackedNode terminal;
  packFields(terminal, kTermVar, kTrueEdge, kTrueEdge);
  packNext(terminal, kNil);
  nodes_.push_back(terminal);
  buckets_.assign(std::bit_ceil<std::size_t>(initialCapacity), kNil);
  refs_.emplace(0u, kMaxRef);
}

std::size_t NodeStore::hashOf(unsigned var, Edge hi, Edge lo) const {
  const std::uint64_t key =
      (static_cast<std::uint64_t>(var) << 40) ^
      (static_cast<std::uint64_t>(hi) << 20) ^ static_cast<std::uint64_t>(lo);
  return mix64(key) & (buckets_.size() - 1);
}

std::uint32_t NodeStore::find(unsigned var, Edge hi, Edge lo,
                              std::uint64_t* chainSteps) const {
  for (std::uint32_t i = buckets_[hashOf(var, hi, lo)]; i != kNil;
       i = unpackNext(nodes_[i])) {
    ++*chainSteps;
    const PackedNode& n = nodes_[i];
    if (unpackVar(n) == var && unpackHi(n) == hi && unpackLo(n) == lo) {
      return i;
    }
  }
  return kNil;
}

std::uint32_t NodeStore::allocate(unsigned var, Edge hi, Edge lo) {
  std::uint32_t index;
  if (freeHead_ != kNil) {
    index = freeHead_;
    freeHead_ = unpackNext(nodes_[index]);
    --freeCount_;
  } else {
    // The cap check runs BEFORE the arena grows: on a throw nothing has
    // changed, so the caller's manager remains fully usable.  kMaxIndex
    // (== kNil - 1) keeps every fresh index encodable in Edge's 31-bit
    // index field and distinct from the null link -- a wrapped makeEdge()
    // is structurally impossible, not merely checked.
    if (nodes_.size() > indexCap_) {
      throw ResourceLimitError(ResourceKind::kNodeIndexSpace);
    }
    index = static_cast<std::uint32_t>(nodes_.size());
    nodes_.emplace_back();
  }
  PackedNode& n = nodes_[index];
  packFields(n, var, hi, lo);
  const std::size_t slot = hashOf(var, hi, lo);
  packNext(n, buckets_[slot]);
  buckets_[slot] = index;
  return index;
}

void NodeStore::rehash(std::size_t newBucketCount) {
  buckets_.assign(newBucketCount, kNil);
  for (std::uint32_t i = 1; i < nodes_.size(); ++i) {
    PackedNode& n = nodes_[i];
    if (unpackVar(n) == kFreeVar) continue;  // free-listed node
    const std::size_t slot = hashOf(unpackVar(n), unpackHi(n), unpackLo(n));
    packNext(n, buckets_[slot]);
    buckets_[slot] = i;
  }
}

void NodeStore::linkIntoBucket(std::uint32_t i) {
  PackedNode& n = nodes_[i];
  const std::size_t slot = hashOf(unpackVar(n), unpackHi(n), unpackLo(n));
  packNext(n, buckets_[slot]);
  buckets_[slot] = i;
}

bool NodeStore::unlinkFromBucket(std::uint32_t i) {
  const std::uint32_t after = unpackNext(nodes_[i]);
  const PackedNode& n = nodes_[i];
  const std::size_t slot = hashOf(unpackVar(n), unpackHi(n), unpackLo(n));
  std::uint32_t cur = buckets_[slot];
  if (cur == i) {
    buckets_[slot] = after;
    return true;
  }
  while (cur != kNil) {
    const std::uint32_t next = unpackNext(nodes_[cur]);
    if (next == i) {
      packNext(nodes_[cur], after);
      return true;
    }
    cur = next;
  }
  return false;
}

}  // namespace icb
