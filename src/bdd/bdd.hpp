// Bdd: RAII handle for a BDD function.
//
// A Bdd keeps its root node alive across garbage collections (the manager's
// mark phase starts from every node whose reference count is nonzero).
// Handles are cheap to copy (one refcount bump).  Because the underlying
// representation is canonical, operator== is a constant-time pointer compare.
//
// All Boolean operators trigger the manager's adaptive garbage collector
// before running, so user code never has to think about memory management.
#pragma once

#include <cassert>
#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "bdd/manager.hpp"

namespace icb {

class Bdd {
 public:
  /// Null handle; most operations on it are invalid.  Exists so containers
  /// of Bdd are cheap to create.
  Bdd() = default;

  Bdd(BddManager* mgr, Edge e) : mgr_(mgr), e_(e) {
    if (mgr_ != nullptr) mgr_->ref(e_);
  }

  Bdd(const Bdd& other) : mgr_(other.mgr_), e_(other.e_) {
    if (mgr_ != nullptr) mgr_->ref(e_);
  }

  Bdd(Bdd&& other) noexcept : mgr_(other.mgr_), e_(other.e_) {
    other.mgr_ = nullptr;
    other.e_ = kFalseEdge;
  }

  Bdd& operator=(const Bdd& other) {
    if (this != &other) {
      if (other.mgr_ != nullptr) other.mgr_->ref(other.e_);
      release();
      mgr_ = other.mgr_;
      e_ = other.e_;
    }
    return *this;
  }

  Bdd& operator=(Bdd&& other) noexcept {
    if (this != &other) {
      release();
      mgr_ = other.mgr_;
      e_ = other.e_;
      other.mgr_ = nullptr;
      other.e_ = kFalseEdge;
    }
    return *this;
  }

  ~Bdd() { release(); }

  // ---- identity ------------------------------------------------------------

  [[nodiscard]] bool isNull() const { return mgr_ == nullptr; }
  [[nodiscard]] BddManager* manager() const { return mgr_; }
  [[nodiscard]] Edge edge() const { return e_; }

  [[nodiscard]] bool isConstant() const { return edgeIsConstant(e_); }
  [[nodiscard]] bool isOne() const { return e_ == kTrueEdge; }
  [[nodiscard]] bool isZero() const { return e_ == kFalseEdge; }

  /// Canonical-form equality: same function iff same edge.
  friend bool operator==(const Bdd& a, const Bdd& b) {
    return a.mgr_ == b.mgr_ && a.e_ == b.e_;
  }
  friend bool operator!=(const Bdd& a, const Bdd& b) { return !(a == b); }

  /// Top variable (precondition: not constant).
  [[nodiscard]] unsigned topVar() const {
    assert(!isConstant());
    return mgr_->nodeVar(e_);
  }

  /// Then/else cofactors at the top variable.
  [[nodiscard]] Bdd high() const { return Bdd(mgr_, mgr_->edgeThen(e_)); }
  [[nodiscard]] Bdd low() const { return Bdd(mgr_, mgr_->edgeElse(e_)); }

  // ---- Boolean operations ---------------------------------------------------

  [[nodiscard]] Bdd operator!() const { return Bdd(mgr_, edgeNot(e_)); }
  [[nodiscard]] Bdd operator~() const { return Bdd(mgr_, edgeNot(e_)); }

  [[nodiscard]] Bdd operator&(const Bdd& g) const {
    checkSame(g);
    mgr_->autoGc();
    return Bdd(mgr_, mgr_->andE(e_, g.e_));
  }
  [[nodiscard]] Bdd operator|(const Bdd& g) const {
    checkSame(g);
    mgr_->autoGc();
    return Bdd(mgr_, mgr_->orE(e_, g.e_));
  }
  [[nodiscard]] Bdd operator^(const Bdd& g) const {
    checkSame(g);
    mgr_->autoGc();
    return Bdd(mgr_, mgr_->xorE(e_, g.e_));
  }
  Bdd& operator&=(const Bdd& g) { return *this = *this & g; }
  Bdd& operator|=(const Bdd& g) { return *this = *this | g; }
  Bdd& operator^=(const Bdd& g) { return *this = *this ^ g; }

  [[nodiscard]] Bdd xnor(const Bdd& g) const { return !(*this ^ g); }

  /// if-then-else with *this as the selector.
  [[nodiscard]] Bdd ite(const Bdd& g, const Bdd& h) const {
    checkSame(g);
    checkSame(h);
    mgr_->autoGc();
    return Bdd(mgr_, mgr_->iteE(e_, g.e_, h.e_));
  }

  /// Semantic implication test: does this ==> g hold everywhere?
  [[nodiscard]] bool implies(const Bdd& g) const {
    checkSame(g);
    mgr_->autoGc();
    return mgr_->andE(e_, edgeNot(g.e_)) == kFalseEdge;
  }

  /// True iff the two functions share no satisfying assignment.
  [[nodiscard]] bool disjointFrom(const Bdd& g) const {
    checkSame(g);
    mgr_->autoGc();
    return mgr_->andE(e_, g.e_) == kFalseEdge;
  }

  // ---- quantification / substitution ----------------------------------------

  [[nodiscard]] Bdd exists(const Bdd& cube) const {
    checkSame(cube);
    mgr_->autoGc();
    return Bdd(mgr_, mgr_->existsE(e_, cube.e_));
  }
  [[nodiscard]] Bdd forall(const Bdd& cube) const {
    checkSame(cube);
    mgr_->autoGc();
    return Bdd(mgr_, mgr_->forallE(e_, cube.e_));
  }
  [[nodiscard]] Bdd andExists(const Bdd& g, const Bdd& cube) const {
    checkSame(g);
    checkSame(cube);
    mgr_->autoGc();
    return Bdd(mgr_, mgr_->andExistsE(e_, g.e_, cube.e_));
  }

  [[nodiscard]] Bdd restrictBy(const Bdd& care) const {
    checkSame(care);
    mgr_->autoGc();
    return Bdd(mgr_, mgr_->restrictE(e_, care.e_));
  }
  [[nodiscard]] Bdd constrainBy(const Bdd& care) const {
    checkSame(care);
    mgr_->autoGc();
    return Bdd(mgr_, mgr_->constrainE(e_, care.e_));
  }

  /// Simplifies against the implicit conjunction of several care sets at
  /// once (see BddManager::restrictMultiE).
  [[nodiscard]] Bdd restrictByAll(std::span<const Bdd> cares) const {
    std::vector<Edge> edges;
    edges.reserve(cares.size());
    for (const Bdd& c : cares) {
      checkSame(c);
      edges.push_back(c.e_);
    }
    mgr_->autoGc();
    return Bdd(mgr_, mgr_->restrictMultiE(e_, edges));
  }

  [[nodiscard]] Bdd cofactor(unsigned var, bool value) const {
    mgr_->autoGc();
    return Bdd(mgr_, mgr_->cofactorE(e_, var, value));
  }

  [[nodiscard]] Bdd composeVec(std::span<const Edge> map) const {
    mgr_->autoGc();
    return Bdd(mgr_, mgr_->composeVecE(e_, map));
  }

  [[nodiscard]] Bdd permute(std::span<const unsigned> perm) const {
    mgr_->autoGc();
    return Bdd(mgr_, mgr_->permuteE(e_, perm));
  }

  // ---- analysis --------------------------------------------------------------

  [[nodiscard]] std::uint64_t size() const { return mgr_->sizeE(e_); }

  [[nodiscard]] double satCount(unsigned nvars) const {
    return mgr_->satCountE(e_, nvars);
  }

  [[nodiscard]] std::vector<unsigned> support() const {
    return mgr_->supportE(e_);
  }

  [[nodiscard]] bool eval(std::span<const char> values) const {
    return mgr_->evalE(e_, values);
  }

 private:
  void release() {
    if (mgr_ != nullptr) mgr_->deref(e_);
    mgr_ = nullptr;
  }

  void checkSame(const Bdd& other) const {
    if (mgr_ == nullptr || other.mgr_ != mgr_) {
      throw BddUsageError("Bdd operands belong to different managers");
    }
  }

  BddManager* mgr_ = nullptr;
  Edge e_ = kFalseEdge;
};

/// Copies `f` into `target` (see BddManager::transferFromE).
Bdd transferTo(BddManager& target, const Bdd& f);

/// Shared DAG size of a set of handles (Figure 1's BDDSize(X_i, X_j)).
std::uint64_t sharedSize(std::span<const Bdd> fs);

/// Conjunction of a whole list (convenience; evaluates left to right).
Bdd conjoinAll(BddManager& mgr, std::span<const Bdd> fs);

}  // namespace icb
