// Core Boolean operators: AND, XOR, ITE.
//
// Each operator normalizes its arguments before the cache probe so that
// equivalent calls share cache entries (standard efficient-BDD practice):
//   * AND: commutative -> order operands by edge value,
//   * XOR: complement bits factor out -> strip them, remember the parity,
//   * ITE: constant/absorption rules first, then make f and g plain.
#include <algorithm>

#include "bdd/manager.hpp"
#include "check/check.hpp"

namespace icb {

// The non-recursive wrappers are the operator entry points; at kCheap they
// validate that every argument and result edge points at a live node (a
// stale edge-level value surviving past a GC is the classic misuse the
// manager header warns about).  The recursive workers stay check-free.

Edge BddManager::andE(Edge f, Edge g) {
  ICBDD_CHECK(kCheap, validateEdge(f); validateEdge(g));
  const BddOpTimer timer(stats_, BddOp::kAnd);
  const Edge result =
      parallelEnabled() ? parApply(Op::kAnd, f, g, 0) : andRec(f, g);
  ICBDD_CHECK(kCheap, validateEdge(result));
  return result;
}

Edge BddManager::xorE(Edge f, Edge g) {
  ICBDD_CHECK(kCheap, validateEdge(f); validateEdge(g));
  const BddOpTimer timer(stats_, BddOp::kXor);
  const Edge result =
      parallelEnabled() ? parApply(Op::kXor, f, g, 0) : xorRec(f, g);
  ICBDD_CHECK(kCheap, validateEdge(result));
  return result;
}

Edge BddManager::iteE(Edge f, Edge g, Edge h) {
  ICBDD_CHECK(kCheap, validateEdge(f); validateEdge(g); validateEdge(h));
  const BddOpTimer timer(stats_, BddOp::kIte);
  const Edge result =
      parallelEnabled() ? parApply(Op::kIte, f, g, h) : iteRec(f, g, h);
  ICBDD_CHECK(kCheap, validateEdge(result));
  return result;
}

Edge BddManager::andRec(Edge f, Edge g) {
  // terminal cases
  if (f == kFalseEdge || g == kFalseEdge) return kFalseEdge;
  if (f == kTrueEdge) return g;
  if (g == kTrueEdge) return f;
  if (f == g) return f;
  if (f == edgeNot(g)) return kFalseEdge;

  if (f > g) std::swap(f, g);

  Edge cached;
  if (cacheLookup(Op::kAnd, f, g, 0, &cached)) return cached;

  const unsigned lf = edgeLevel(f);
  const unsigned lg = edgeLevel(g);
  const unsigned top = std::min(lf, lg);
  const unsigned var = level2var_[top];

  const Edge f1 = lf == top ? edgeThen(f) : f;
  const Edge f0 = lf == top ? edgeElse(f) : f;
  const Edge g1 = lg == top ? edgeThen(g) : g;
  const Edge g0 = lg == top ? edgeElse(g) : g;

  const Edge r1 = andRec(f1, g1);
  const Edge r0 = andRec(f0, g0);
  const Edge result = mk(var, r1, r0);

  cacheInsert(Op::kAnd, f, g, 0, result);
  return result;
}

Edge BddManager::xorRec(Edge f, Edge g) {
  if (f == kFalseEdge) return g;
  if (g == kFalseEdge) return f;
  if (f == kTrueEdge) return edgeNot(g);
  if (g == kTrueEdge) return edgeNot(f);
  if (f == g) return kFalseEdge;
  if (f == edgeNot(g)) return kTrueEdge;

  // xor(!f, g) == !xor(f, g): strip complements, track the parity.
  Edge parity = (f & 1u) ^ (g & 1u);
  f = edgeRegular(f);
  g = edgeRegular(g);
  if (f > g) std::swap(f, g);

  Edge cached;
  if (cacheLookup(Op::kXor, f, g, 0, &cached)) return cached ^ parity;

  const unsigned lf = edgeLevel(f);
  const unsigned lg = edgeLevel(g);
  const unsigned top = std::min(lf, lg);
  const unsigned var = level2var_[top];

  const Edge f1 = lf == top ? edgeThen(f) : f;
  const Edge f0 = lf == top ? edgeElse(f) : f;
  const Edge g1 = lg == top ? edgeThen(g) : g;
  const Edge g0 = lg == top ? edgeElse(g) : g;

  const Edge r1 = xorRec(f1, g1);
  const Edge r0 = xorRec(f0, g0);
  const Edge result = mk(var, r1, r0);

  cacheInsert(Op::kXor, f, g, 0, result);
  return result ^ parity;
}

Edge BddManager::iteRec(Edge f, Edge g, Edge h) {
  // terminal and absorption cases
  if (f == kTrueEdge) return g;
  if (f == kFalseEdge) return h;
  if (g == h) return g;
  if (g == kTrueEdge && h == kFalseEdge) return f;
  if (g == kFalseEdge && h == kTrueEdge) return edgeNot(f);
  if (f == g) g = kTrueEdge;           // ite(f, f, h) = f | h
  else if (f == edgeNot(g)) g = kFalseEdge;
  if (f == h) h = kFalseEdge;          // ite(f, g, f) = f & g
  else if (f == edgeNot(h)) h = kTrueEdge;

  // Re-check the two-operand special cases the rewrites may have exposed.
  if (g == h) return g;
  if (g == kTrueEdge && h == kFalseEdge) return f;
  if (g == kFalseEdge && h == kTrueEdge) return edgeNot(f);
  if (g == kTrueEdge) return edgeNot(andRec(edgeNot(f), edgeNot(h)));  // f | h
  if (g == kFalseEdge) return andRec(edgeNot(f), h);
  if (h == kFalseEdge) return andRec(f, g);
  if (h == kTrueEdge) return edgeNot(andRec(f, edgeNot(g)));  // !f | g

  // canonical complements: make f plain, then g plain.
  if (edgeIsComplemented(f)) {
    f = edgeNot(f);
    std::swap(g, h);
  }
  Edge parity = 0;
  if (edgeIsComplemented(g)) {
    parity = 1;
    g = edgeNot(g);
    h = edgeNot(h);
  }

  Edge cached;
  if (cacheLookup(Op::kIte, f, g, h, &cached)) return cached ^ parity;

  const unsigned lf = edgeLevel(f);
  const unsigned lg = edgeLevel(g);
  const unsigned lh = edgeLevel(h);
  const unsigned top = std::min({lf, lg, lh});
  const unsigned var = level2var_[top];

  const Edge f1 = lf == top ? edgeThen(f) : f;
  const Edge f0 = lf == top ? edgeElse(f) : f;
  const Edge g1 = lg == top ? edgeThen(g) : g;
  const Edge g0 = lg == top ? edgeElse(g) : g;
  const Edge h1 = lh == top ? edgeThen(h) : h;
  const Edge h0 = lh == top ? edgeElse(h) : h;

  const Edge r1 = iteRec(f1, g1, h1);
  const Edge r0 = iteRec(f0, g0, h0);
  const Edge result = mk(var, r1, r0);

  cacheInsert(Op::kIte, f, g, h, result);
  return result ^ parity;
}

}  // namespace icb
