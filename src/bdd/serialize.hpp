// Textual save/load of BDDs, e.g. to checkpoint derived invariant lists.
//
// Format (line oriented, self-describing):
//   icbdd-bdd-v2
//   vars <count>
//   v <index> <name>            (one per variable)
//   order <var> <var> ...       (level->var map: the variable at each level)
//   nodes <count>
//   n <id> <var> <hi> <lo>      (children: T, F, or [!]<id> of an earlier n)
//   roots <count>
//   r <ref>                     (same reference syntax)
//
// Node ids are file-local and topologically ordered (children precede
// parents), so loading is a single pass of mk() calls; shared subgraphs and
// complement edges round-trip exactly.
//
// v2 persists the writer's variable ORDER (the level->var map), not just the
// variables: a snapshot taken after dynamic reordering reloads with the same
// order, so node counts, Restrict forms, and minterm picks -- everything a
// resumed run's byte-identical replay depends on -- match the saved manager,
// not whatever order the loading manager happened to be in.  v1 files (no
// order line) still load; they keep the loading manager's current order.
#pragma once

#include <iosfwd>
#include <span>
#include <vector>

#include "bdd/bdd.hpp"

namespace icb {

/// Writes the DAG reachable from `roots` (shared nodes once).
void saveBdds(std::ostream& os, const BddManager& mgr,
              std::span<const Bdd> roots);

/// Reads functions saved by saveBdds into `mgr`.  Missing variables are
/// created (with their saved names) so the manager may start empty; when
/// variables already exist they are matched by index.  When the file carries
/// an order line (v2) and the manager has exactly the file's variables, the
/// saved order is restored via applyVarOrder before nodes are rebuilt.
/// Throws BddUsageError on malformed input.
std::vector<Bdd> loadBdds(std::istream& is, BddManager& mgr);

/// Reorders `mgr` (by adjacent-level swaps, semantics preserved) until its
/// level->var map equals `level2var`, which must be a permutation of all the
/// manager's variables.  No-op when the order already matches.  Throws
/// BddUsageError on a malformed permutation.
void applyVarOrder(BddManager& mgr, std::span<const unsigned> level2var);

}  // namespace icb
