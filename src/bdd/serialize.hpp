// Save/load of BDDs, e.g. to checkpoint derived invariant lists.
//
// Text format (line oriented, self-describing):
//   icbdd-bdd-v2
//   vars <count>
//   v <index> <name>            (one per variable)
//   order <var> <var> ...       (level->var map: the variable at each level)
//   nodes <count>
//   n <id> <var> <hi> <lo>      (children: T, F, or [!]<id> of an earlier n)
//   roots <count>
//   r <ref>                     (same reference syntax)
//
// Node ids are file-local and topologically ordered (children precede
// parents), so loading is a single pass of mk() calls; shared subgraphs and
// complement edges round-trip exactly.
//
// v2 persists the writer's variable ORDER (the level->var map), not just the
// variables: a snapshot taken after dynamic reordering reloads with the same
// order, so node counts, Restrict forms, and minterm picks -- everything a
// resumed run's byte-identical replay depends on -- match the saved manager,
// not whatever order the loading manager happened to be in.  v1 files (no
// order line) still load; they keep the loading manager's current order.
//
// Binary format (icbdd-bdd-v3): a magic line followed by a little-endian
// body -- near-memcpy of the topologically ordered node records.  See
// docs/node_layout.md ("On-disk contract") for the full byte layout.  The
// same record layout is used by the spill tier's page file.  loadBdds
// auto-detects all three versions from the magic line.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <span>
#include <vector>

#include "bdd/bdd.hpp"

namespace icb {

/// Malformed, truncated, or corrupt serialized input.  Derives from
/// BddUsageError so pre-existing catch sites keep working; carries the byte
/// offset into the stream at which the problem was detected so fuzzed or
/// truncated dumps produce an actionable message instead of silently loading
/// a prefix.
class SerializeError : public BddUsageError {
 public:
  SerializeError(const std::string& what, std::uint64_t byteOffset)
      : BddUsageError(what + " (at byte " + std::to_string(byteOffset) + ")"),
        byteOffset_(byteOffset) {}

  /// Byte offset (from the start of the stream) of the offending input.
  [[nodiscard]] std::uint64_t byteOffset() const { return byteOffset_; }

 private:
  std::uint64_t byteOffset_;
};

/// Writes the DAG reachable from `roots` (shared nodes once), text v2.
void saveBdds(std::ostream& os, const BddManager& mgr,
              std::span<const Bdd> roots);

/// Writes the DAG reachable from `roots` in the icbdd-bdd-v3 binary format.
/// Loads via the same loadBdds below (auto-detected); round-trips
/// bit-identically through save -> load -> save.
void saveBddsBinary(std::ostream& os, const BddManager& mgr,
                    std::span<const Bdd> roots);

/// Reads functions saved by saveBdds/saveBddsBinary into `mgr` (the format
/// version is auto-detected from the magic line).  Missing variables are
/// created (with their saved names) so the manager may start empty; when
/// variables already exist they are matched by index.  When the file carries
/// a variable order (v2/v3) and the manager has exactly the file's
/// variables, the saved order is restored via applyVarOrder before nodes are
/// rebuilt.  Throws SerializeError on malformed, truncated, or corrupt
/// input.
std::vector<Bdd> loadBdds(std::istream& is, BddManager& mgr);

/// Header summary of a dump, for tooling (icbdd_doctor --dump-store).
struct DumpInfo {
  int version = 0;          ///< 1, 2, or 3
  bool binary = false;      ///< true for icbdd-bdd-v3
  std::uint64_t varCount = 0;
  std::uint64_t nodeCount = 0;
  std::uint64_t rootCount = 0;
  std::uint64_t nodeBytes = 0;  ///< bytes of node payload (v3: 16 per node)
};

/// Parses just enough of a dump to fill DumpInfo without building any nodes.
/// Throws SerializeError on malformed or truncated input.
DumpInfo inspectDump(std::istream& is);

/// Reorders `mgr` (by adjacent-level swaps, semantics preserved) until its
/// level->var map equals `level2var`, which must be a permutation of all the
/// manager's variables.  No-op when the order already matches.  Throws
/// BddUsageError on a malformed permutation.
void applyVarOrder(BddManager& mgr, std::span<const unsigned> level2var);

}  // namespace icb
