// Textual save/load of BDDs, e.g. to checkpoint derived invariant lists.
//
// Format (line oriented, self-describing):
//   icbdd-bdd-v1
//   vars <count>
//   v <index> <name>            (one per variable)
//   nodes <count>
//   n <id> <var> <hi> <lo>      (children: T, F, or [!]<id> of an earlier n)
//   roots <count>
//   r <ref>                     (same reference syntax)
//
// Node ids are file-local and topologically ordered (children precede
// parents), so loading is a single pass of mk() calls; shared subgraphs and
// complement edges round-trip exactly.
#pragma once

#include <iosfwd>
#include <span>
#include <vector>

#include "bdd/bdd.hpp"

namespace icb {

/// Writes the DAG reachable from `roots` (shared nodes once).
void saveBdds(std::ostream& os, const BddManager& mgr,
              std::span<const Bdd> roots);

/// Reads functions saved by saveBdds into `mgr`.  Missing variables are
/// created (with their saved names) so the manager may start empty; when
/// variables already exist they are matched by index.  Throws BddUsageError
/// on malformed input.
std::vector<Bdd> loadBdds(std::istream& is, BddManager& mgr);

}  // namespace icb
