// BddManager: shared-node BDD package with complement edges.
//
// Design follows the classic Brace-Rudell-Bryant efficient implementation
// (the same family as David Long's CMU package used by the paper):
//   * one node arena, hash-consed through a unique table,
//   * complement edges restricted to else-arcs and external edges
//     (the then-arc of a stored node is never complemented), giving a
//     canonical form with constant-time negation,
//   * a lossy computed cache for the recursive operators,
//   * mark-and-sweep garbage collection rooted at the RAII `Bdd` handles.
//
// Two API levels coexist:
//   * the handle level (`Bdd`, see bdd.hpp) -- safe, reference counted,
//     what the rest of the library uses;
//   * the edge level (`Edge` methods below) -- used internally by the
//     recursive algorithms.  Edge-level results are only safe until the next
//     garbage collection, which can run at any handle-level entry point.
#pragma once

#include <array>
#include <cstdint>
#include <limits>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "bdd/computed_cache.hpp"
#include "bdd/edge.hpp"
#include "bdd/node_store.hpp"
#include "bdd/options.hpp"
#include "obs/histogram.hpp"
#include "util/thread_annotations.hpp"
#include "util/timer.hpp"

namespace icb {

class Bdd;
class Rng;

/// Operation kinds of the computed cache, public so the per-operation
/// statistics below (and the obs/ metrics layer naming them) can be indexed
/// outside the manager.  kInvalid tags empty cache slots and records no
/// statistics.
enum class BddOp : std::uint32_t {
  kInvalid = 0,
  kIte,
  kAnd,
  kXor,
  kExists,
  kAndExists,
  kRestrict,
  kConstrain,
};

inline constexpr std::size_t kBddOpCount = 8;  ///< including kInvalid

/// Short lowercase name ("ite", "and", ...) for counter naming and reports.
[[nodiscard]] const char* bddOpName(BddOp op);

/// Computed-cache traffic for one operation kind.
struct BddOpCacheStats {
  std::uint64_t lookups = 0;
  std::uint64_t hits = 0;

  [[nodiscard]] std::uint64_t misses() const { return lookups - hits; }
};

/// Aggregate operation counters, exposed for the benchmark harness and the
/// obs/ metrics layer.  Engines call BddManager::resetStats() on entry so a
/// manager reused across runs (or back-to-back bench cells) reports each
/// run's workload in isolation.
struct BddStats {
  std::uint64_t nodesCreated = 0;   ///< total mk() allocations ever
  std::uint64_t peakNodes = 0;      ///< max arena occupancy (live + dead)
  std::uint64_t gcRuns = 0;         ///< number of collections
  std::uint64_t gcReclaimed = 0;    ///< nodes reclaimed across all GCs
  std::uint64_t uniqueLookups = 0;  ///< unique-table probes
  std::uint64_t uniqueChainSteps = 0;  ///< hash-chain nodes visited probing
  std::uint64_t reorderSwaps = 0;   ///< adjacent-level swaps performed
  std::uint64_t reorderRuns = 0;    ///< completed sift() passes
  std::uint64_t reorderSavedNodes = 0;  ///< live nodes shed across all sifts
  std::uint64_t reorderInterrupted = 0;  ///< sifts cut short by a limit
  std::uint64_t restrictCalls = 0;  ///< top-level restrictE invocations
  std::uint64_t constrainCalls = 0; ///< top-level constrainE invocations
  std::uint64_t multiRestrictCalls = 0;  ///< top-level restrictMultiE calls
  std::uint64_t cacheResizes = 0;   ///< adaptive computed-cache doublings
  std::uint64_t refUnderflows = 0;  ///< deref() calls on a zero count (a
                                    ///< double release swallowed because the
                                    ///< check level was below cheap)
  std::uint64_t parSteals = 0;      ///< parallel-apply tasks run by a thief
  std::uint64_t parCasRetries = 0;  ///< unique-table bucket-head CAS retries
  std::uint64_t parCacheRaces = 0;  ///< computed-cache probes/inserts dropped
                                    ///< because a concurrent writer held or
                                    ///< rewrote the slot (lossy by contract)

  /// Computed-cache hit/miss per operation kind, indexed by BddOp.
  std::array<BddOpCacheStats, kBddOpCount> opCache{};

  /// Wall-clock latency distributions, microseconds.  Recorded at *public*
  /// entry points only (BddOpTimer around iteE/andE/...), never in the
  /// recursive bodies, so one user-visible apply contributes one sample and
  /// the hot recursion stays timer-free.  Indexed by BddOp like opCache.
  std::array<obs::Histogram, kBddOpCount> applyLatencyUs{};
  obs::Histogram gcPauseUs;       ///< full mark-and-sweep pauses
  obs::Histogram reorderPauseUs;  ///< complete sift() passes (incl. capped)

  [[nodiscard]] const BddOpCacheStats& cacheFor(BddOp op) const {
    return opCache[static_cast<std::size_t>(op)];
  }

  /// Aggregate probes across every operation kind.
  [[nodiscard]] std::uint64_t cacheLookups() const {
    std::uint64_t total = 0;
    for (const BddOpCacheStats& s : opCache) total += s.lookups;
    return total;
  }

  /// Aggregate hits across every operation kind.
  [[nodiscard]] std::uint64_t cacheHits() const {
    std::uint64_t total = 0;
    for (const BddOpCacheStats& s : opCache) total += s.hits;
    return total;
  }
};

/// RAII scope timing one *public* apply entry point (iteE, andE, existsE,
/// ...) into BddStats::applyLatencyUs[op].  Constructed only at the outer
/// call -- the recursive helpers never instantiate one -- so every sample is
/// one user-visible operation and the inner loops stay clock-free.
class BddOpTimer {
 public:
  BddOpTimer(BddStats& stats, BddOp op) : stats_(stats), op_(op) {}
  ~BddOpTimer() {
    const double us = watch_.elapsedSeconds() * 1e6;
    stats_.applyLatencyUs[static_cast<std::size_t>(op_)].record(
        us <= 0.0 ? 0 : static_cast<std::uint64_t>(us));
  }

  BddOpTimer(const BddOpTimer&) = delete;
  BddOpTimer& operator=(const BddOpTimer&) = delete;

 private:
  BddStats& stats_;
  BddOp op_;
  Stopwatch watch_;
};

// The manager is declared a *capability* (clang thread-safety analysis):
// today every manager is confined to one thread (the scheduler gives each
// cell a private manager), so nothing acquires it and the analysis has
// nothing to prove.  When ROADMAP item 1 shares the unique table / computed
// cache across workers, the shared entry points gain ICBDD_REQUIRES(*this)
// (or finer-grained capabilities) against this declaration, and every
// access to the members marked "item-1 shared" below becomes machine-checked
// instead of comment-enforced.  Cross-thread interaction that is already
// legal today goes through ResourceLimits::cancelFlag (an atomic the owner
// thread installs), never through direct member access.
class ICBDD_CAPABILITY("BddManager") BddManager {
 public:
  explicit BddManager(const BddOptions& options = {});
  ~BddManager();

  BddManager(const BddManager&) = delete;
  BddManager& operator=(const BddManager&) = delete;

  // ---- variables ---------------------------------------------------------

  /// Creates a new variable at the bottom of the current order.
  /// Returns its index.  Variable indices are dense, starting at 0.
  unsigned newVar(const std::string& name = {});

  /// Number of variables created so far.
  [[nodiscard]] unsigned varCount() const {
    return static_cast<unsigned>(varEdges_.size());
  }

  /// Position of variable `var` in the order (0 = top).
  [[nodiscard]] unsigned varLevel(unsigned var) const {
    return var2level_[var];
  }

  /// Registers the given variables as one sifting group: sift() moves them
  /// as a unit, preserving their relative order.  Intended for the paper's
  /// (cur, nxt) state-bit pairs, whose interleaving must survive reordering.
  /// Grouping is a sifting hint only -- manual swapAdjacentLevels() may still
  /// split a group, in which case its level-contiguous fragments sift
  /// separately until they happen to reunite.
  void groupVars(std::span<const unsigned> vars);

  /// Sifting group of `var`, or kNoGroup when ungrouped.
  [[nodiscard]] unsigned varGroupOf(unsigned var) const {
    return varGroup_[var];
  }

  static constexpr unsigned kNoGroup = std::numeric_limits<unsigned>::max();

  /// Variable sitting at order position `level`.
  [[nodiscard]] unsigned varAtLevel(unsigned level) const {
    return level2var_[level];
  }

  [[nodiscard]] const std::string& varName(unsigned var) const {
    return varNames_[var];
  }

  // ---- handle-level constants and projections ----------------------------

  Bdd one();
  Bdd zero();
  Bdd var(unsigned v);   ///< the projection function of variable v
  Bdd nvar(unsigned v);  ///< its negation

  // ---- resource limits ----------------------------------------------------

  void setLimits(const ResourceLimits& limits) { limits_ = limits; }
  [[nodiscard]] const ResourceLimits& limits() const { return limits_; }
  void clearLimits() { limits_ = ResourceLimits{}; }

  // ---- memory / stats ------------------------------------------------------

  /// Nodes currently allocated in the arena (live + dead-awaiting-GC).
  [[nodiscard]] std::uint64_t allocatedNodes() const {
    return store_.allocated();
  }

  /// Estimated bytes of true footprint for an arena of `n` nodes.  Used to
  /// report paper-style "Mem" columns in an implementation-independent way
  /// (the paper itself warns memory numbers depend on the package).  The
  /// packed node folds the unique-table chain link into its spare bits, so
  /// the arena term is exactly 16 bytes per node; on top of that ride the
  /// sparse refcount side table (entries + bucket array) and, once the
  /// spill tier engages, the page-table bookkeeping -- while the arena term
  /// itself is capped at the resident-page budget, because spilled pages
  /// live on disk, not in RAM (docs/node_layout.md has the accounting).
  [[nodiscard]] std::uint64_t bytesForNodes(std::uint64_t n) const;

  [[nodiscard]] const BddStats& stats() const { return stats_; }
  void resetPeak() { stats_.peakNodes = allocatedNodes(); }

  /// Current computed-cache capacity in entries (a power of two; grows
  /// adaptively with arena occupancy up to BddOptions::cacheMaxBitsLog2).
  [[nodiscard]] std::uint64_t computedCacheEntries() const {
    return cache_.size();
  }

  /// Zeroes every counter and re-bases the peak at the current occupancy.
  /// Engines call this on entry so a reused manager (doctor runs, bench
  /// cells sharing a manager) never bleeds one run's counters into the next.
  void resetStats() {
    stats_ = BddStats{};
    stats_.peakNodes = allocatedNodes();
  }

  /// Runs a full mark-and-sweep collection now.  Returns nodes reclaimed.
  std::uint64_t gc();

  /// Runs GC if the arena has outgrown the adaptive threshold.  Called
  /// automatically at handle-level entry points; harmless to call manually.
  /// With BddOptions::autoReorder on, this is also the growth-triggered
  /// reordering safe point: right after a collection the live count is
  /// exact, and no recursive operator is on the stack.
  void autoGc();

  /// Explicit auto-reorder safe point for engine iteration boundaries.
  /// No-op (and side-effect free) unless BddOptions::autoReorder is set and
  /// the arena has outgrown the trigger; returns true when a sift ran.
  /// Never call this with edge-level results held across it -- like autoGc,
  /// it may collect unreferenced nodes (the sift itself keeps every edge
  /// denoting the same function, so handles survive).
  bool autoReorderIfNeeded();

  /// Checks the installed resource limits now (mk() polls them itself, but
  /// long non-allocating walks such as node counting call this explicitly).
  void pollLimits() { checkResourceLimits(); }

  // ---- intra-problem parallelism (ROADMAP item 1) --------------------------

  /// Reconfigures the apply-worker count at a safe point (no operation may
  /// be running).  n <= 1 parks and releases the pool and restores the
  /// byte-identical serial path; n > 1 (re)builds a work-stealing pool of n
  /// workers (calling thread included) that splits AND/XOR/ITE/EXISTS/
  /// AND-EXISTS cofactor subproblems across the shared NodeStore and
  /// lock-free computed cache.  Engines plumb EngineOptions::applyWorkers
  /// through here (via LimitGuard); benches and the service set it at
  /// construction through BddOptions::applyWorkers.
  void setApplyWorkers(unsigned n);

  /// Current apply-worker count (1 == serial).
  [[nodiscard]] unsigned applyWorkers() const;

  // ---- external-memory spill tier (ROADMAP item 3) -------------------------

  /// True when BddOptions::spillDir armed the spill-to-disk tier.
  [[nodiscard]] bool spillArmed() const { return store_.spillArmed(); }

  /// True once the tier actually mounted: the arena is paging through the
  /// spill file, runs complete beyond RAM instead of ending in kNodeLimit,
  /// and engines report `spilled` in their results.
  [[nodiscard]] bool spillEngaged() const { return store_.spillEngaged(); }

  /// Mounts the spill tier now at the configured budget
  /// (BddOptions::spillThresholdNodes, else ResourceLimits::maxNodes, else
  /// a default).  Normally the manager engages itself when the arena
  /// crosses the budget; tests and the parallel-apply fallback call this
  /// directly.  No-op when already engaged; BddUsageError when not armed.
  void engageSpill();

  /// Pager telemetry (bdd.xmem.*); nullptr when the tier is not armed, so
  /// unspilled runs emit byte-identical metrics.
  [[nodiscard]] const xmem::PagerStats* pagerStats() const {
    return store_.pagerStats();
  }

  /// Arena / page-cache occupancy snapshot (doctor --dump-store, /statusz).
  [[nodiscard]] NodeStore::SpillInfo spillInfo() const {
    return store_.spillInfo();
  }

  /// Distinct externally referenced nodes (refcount side-table occupancy;
  /// the GC root set).  Doctor --dump-store reports it next to the arena.
  [[nodiscard]] std::size_t rootSetSize() const {
    return store_.refs().size();
  }

  // ---- edge-level structural accessors ------------------------------------

  [[nodiscard]] unsigned nodeVar(Edge e) const {
    return store_.varOf(edgeIndex(e));
  }

  /// Order position of an edge's top node; constants sit below everything.
  [[nodiscard]] unsigned edgeLevel(Edge e) const {
    return edgeIsConstant(e) ? kTermLevel
                             : var2level_[store_.varOf(edgeIndex(e))];
  }

  /// Then-cofactor of the *function* denoted by `e` at its own top variable
  /// (complement bit propagated into the child).
  [[nodiscard]] Edge edgeThen(Edge e) const {
    return store_.hiOf(edgeIndex(e)) ^ (e & 1u);
  }

  [[nodiscard]] Edge edgeElse(Edge e) const {
    return store_.loOf(edgeIndex(e)) ^ (e & 1u);
  }

  /// Edge of the projection function of variable v (edge-level `var(v)`).
  [[nodiscard]] Edge varEdge(unsigned v) const {
    if (v >= varEdges_.size()) throw BddUsageError("var index out of range");
    return varEdges_[v];
  }

  static constexpr unsigned kTermLevel =
      std::numeric_limits<unsigned>::max();

  // ---- edge-level operations ----------------------------------------------
  // These are the recursive workers.  They never trigger GC.

  /// Canonicalizing node constructor ("find or add").
  Edge mk(unsigned var, Edge hi, Edge lo);

  Edge iteE(Edge f, Edge g, Edge h);
  Edge andE(Edge f, Edge g);
  Edge orE(Edge f, Edge g) { return edgeNot(andE(edgeNot(f), edgeNot(g))); }
  Edge xorE(Edge f, Edge g);

  /// Existential quantification of the positive cube `cube` from f.
  Edge existsE(Edge f, Edge cube);
  Edge forallE(Edge f, Edge cube) {
    return edgeNot(existsE(edgeNot(f), cube));
  }
  /// Relational product: exists(cube, f & g) without building f & g.
  Edge andExistsE(Edge f, Edge g, Edge cube);

  /// Coudert-Berthet-Madre Restrict (sibling-substitution simplification):
  /// returns some f' with f' & c == f & c, usually smaller than f.
  Edge restrictE(Edge f, Edge c);

  /// Generalized cofactor (Constrain): f' with f' & c == f & c and the
  /// image property; can blow up, unlike Restrict it never skips levels.
  Edge constrainE(Edge f, Edge c);

  /// Simultaneous multi-care-set Restrict (paper SS V future work): returns
  /// f' with f' & (c1 & ... & ck) == f & (c1 & ... & ck) WITHOUT building
  /// the conjunction of the care BDDs.  Strictly sharper than iterating
  /// restrictE when the care sets overlap destructively (the paper's
  /// "simplify by c1 blows up, then by c2 shrinks below f" scenario).
  Edge restrictMultiE(Edge f, std::span<const Edge> cares);

  /// Cofactor of f with respect to literal (var = value).
  Edge cofactorE(Edge f, unsigned var, bool value);

  /// Simultaneous composition: replaces every variable v by map[v].
  /// map.size() may be less than varCount(); missing vars stay themselves.
  Edge composeVecE(Edge f, std::span<const Edge> map);

  /// Variable-to-variable renaming (special case of composeVecE).
  /// perm[v] = target variable for v; missing entries stay.
  Edge permuteE(Edge f, std::span<const unsigned> perm);

  /// Builds the positive cube of the given variables.
  Edge cubeE(std::span<const unsigned> vars);

  /// Copies a function from another manager into this one (variables are
  /// matched by index; missing ones are created).  The managers may use
  /// different orders -- the rebuild goes through ITE.
  Edge transferFromE(const BddManager& source, Edge e);

  // ---- edge-level analysis -------------------------------------------------

  /// Number of distinct nodes reachable from e, terminal included
  /// (an 8-bit "x <= 128" comparator measures 9, as in the paper).
  [[nodiscard]] std::uint64_t sizeE(Edge e) const;

  /// DAG size of several roots together, counting shared nodes once.
  /// This is the paper's BDDSize(X_i, X_j) denominator in Figure 1.
  [[nodiscard]] std::uint64_t sharedSizeE(std::span<const Edge> roots) const;

  /// Number of satisfying assignments over `nvars` variables.
  [[nodiscard]] double satCountE(Edge e, unsigned nvars) const;

  /// Sorted list of variables the function depends on.
  [[nodiscard]] std::vector<unsigned> supportE(Edge e) const;

  /// Evaluates the function under a full assignment (indexed by variable).
  [[nodiscard]] bool evalE(Edge e, std::span<const char> values) const;

  /// Picks one satisfying assignment; values of `vars` not constrained by
  /// the function are drawn from `rng`.  Precondition: e != FALSE.
  void pickMintermE(Edge e, std::span<const unsigned> vars, Rng& rng,
                    std::vector<char>& values) const;

  // ---- bounded operations (paper SS V "future work": abort an AND whose
  //      result exceeds a known usefulness bound) -----------------------------

  /// Computes f & g but gives up once the operation has created more than
  /// `nodeBudget` fresh nodes.  Returns true and stores the result on
  /// success; returns false (result untouched) when the budget is exceeded.
  bool andBoundedE(Edge f, Edge g, std::uint64_t nodeBudget, Edge* result);

  // ---- reordering -----------------------------------------------------------

  /// Swaps the variables at order positions `level` and `level+1` in place.
  /// Checks the installed ResourceLimits once per call, at the consistent
  /// state after the swap -- an interrupted reorder never leaves a
  /// half-rewritten level behind.
  void swapAdjacentLevels(unsigned level);

  /// Rudell-style sifting over all variables, moving each registered
  /// variable group (see groupVars) as a block.  Returns the live-node
  /// delta (negative = shrink).  Honors ResourceLimits at swap granularity;
  /// on interruption the ResourceLimitError propagates with the manager
  /// audit-clean.  (Extension: the paper keeps a fixed order.)
  std::int64_t sift(std::uint64_t maxGrowth = 0);

  // ---- debug ---------------------------------------------------------------

  /// Structural sanity check (canonicity, ordering, table consistency).
  /// Delegates to check/StructuralChecker at full effort and throws
  /// BddUsageError on the first violation.  Intended for tests; the richer
  /// CheckReport interface lives on StructuralChecker itself.
  void checkInvariants() const;

  /// Writes a Graphviz dot rendering of the given roots.
  void dumpDot(std::ostream& os, std::span<const Edge> roots,
               std::span<const std::string> rootNames = {}) const;

  /// Count of live (externally referenced, directly or transitively) nodes.
  /// Runs a full mark pass; intended for tests and stats, not hot paths.
  [[nodiscard]] std::uint64_t liveNodes() const;

 private:
  friend class Bdd;
  // The invariant-checker subsystem (src/check) reads -- and, for the cache
  // auditor's evict-and-recompute probe, writes -- private state directly.
  friend class StructuralChecker;
  friend class CacheAuditor;
  // Test-only corruption hook (src/check/test_hooks.hpp).
  friend class NodeSurgeon;

  // The node representation lives in NodeStore (bdd/node_store.hpp): packed
  // 16-byte nodes, a sparse refcount side table, and the unique table /
  // free list.  The historical sentinels are re-exported so the checker and
  // the reorder machinery keep reading naturally.
  static constexpr unsigned kFreeVar = NodeStore::kFreeVar;
  static constexpr std::uint32_t kNil = NodeStore::kNil;
  static constexpr std::uint32_t kMaxRef = NodeStore::kMaxRef;

  // Operation tags for the computed cache; the public BddOp so per-op
  // statistics and the cache auditor's re-execution switch share one enum.
  using Op = BddOp;

  // The decoded cache-entry shape (op as a raw integer) the cache class,
  // the auditor, and the surgeon hooks traffic in.
  using CacheEntry = ComputedCache::Entry;

  // reference counting (used by Bdd handles only)
  void ref(Edge e) { store_.ref(edgeIndex(e)); }
  /// Dropping a count that is already zero means someone released a handle
  /// twice: counted in stats_.refUnderflows always, and escalated to a
  /// CheckFailure(kRefUnderflow) under ICBDD_CHECK_LEVEL >= cheap.  Out of
  /// line because the escalation needs check/check.hpp.
  void deref(Edge e);

  // computed cache
  [[nodiscard]] std::size_t cacheSlot(Op op, Edge f, Edge g, Edge h) const;
  bool cacheLookup(Op op, Edge f, Edge g, Edge h, Edge* out);
  void cacheInsert(Op op, Edge f, Edge g, Edge h, Edge result);
  /// Doubles the computed cache (rehashing live entries) while the arena has
  /// outgrown it, up to the BddOptions::cacheMaxBitsLog2 ceiling.
  void maybeGrowComputedCache();

  void checkResourceLimits();
  /// Engages the spill tier instead of throwing kNodes when armed and
  /// outside a concurrent region; returns true when the caller should keep
  /// running beyond the node cap.
  bool maybeSpillInsteadOfNodeLimit();
  void markRecursive(std::uint32_t index, std::vector<std::uint8_t>& mark) const;

  // reordering internals (reorder.cpp)
  //
  // ReorderBook is the sift-scoped incremental bookkeeping that replaces the
  // historical per-swap liveNodes() full mark pass: per-node in-degree from
  // live nodes, a live flag, per-variable live populations, and per-variable
  // candidate lists so a swap touches only the nodes of its own level.
  struct ReorderBook;
  void initReorderBook(ReorderBook& book) const;
  void bookAcquire(ReorderBook& book, Edge e);
  void bookRelease(ReorderBook& book, Edge e);
  Edge mkBook(unsigned var, Edge hi, Edge lo, ReorderBook* book);
  /// The one adjacent-level swap implementation: with a book it iterates the
  /// level's candidate list and maintains the live count incrementally; the
  /// public swapAdjacentLevels() passes nullptr and scans the arena.
  void swapLevelsInternal(unsigned level, ReorderBook* book);
  /// Store unlink that escalates a missing chain entry to a CheckFailure
  /// (the reorder path must never lose a node silently).
  void unlinkFromBucket(std::uint32_t index);
  /// Throws CheckFailure when the book's live count disagrees with a full
  /// liveNodes() mark pass (ICBDD_CHECK_LEVEL=full only).
  void auditReorderBook(const ReorderBook& book) const;
  void maybeAutoReorderPostGc();

  /// ICBDD_CHECK(kCheap) helper for operator entry/exit points: throws
  /// CheckFailure(kInvalidEdge) when `e` points outside the arena or at a
  /// free-listed node.
  void validateEdge(Edge e) const;

  // recursive workers
  Edge iteRec(Edge f, Edge g, Edge h);
  Edge andRec(Edge f, Edge g);
  Edge xorRec(Edge f, Edge g);
  Edge existsRec(Edge f, Edge cube);
  Edge andExistsRec(Edge f, Edge g, Edge cube);
  Edge restrictRec(Edge f, Edge c);
  Edge constrainRec(Edge f, Edge c);

  // parallel apply (par_apply.cpp; see docs/parallel.md).  ParWorker is one
  // worker's private counters, ParState owns the pool + workers; both are
  // defined in bdd/par_internal.hpp so this header stays thread-free.
  struct ParWorker;
  struct ParState;
  /// True when a pool exists and the entry points should fork a region.
  /// Once the spill tier engages, regions are off: eviction is not
  /// thread-safe and atomic_ref needs resident, stable node memory, so the
  /// dispatch falls back to the byte-identical serial recursion
  /// (docs/external_memory.md).
  [[nodiscard]] bool parallelEnabled() const {
    return par_ != nullptr && !store_.spillEngaged();
  }
  /// Runs (op, f, g, h) as one parallel region, including the
  /// quiesce-grow-retry loop around NodeStore::GrowRequest and the stats
  /// merge at the joined end.
  Edge parApply(Op op, Edge f, Edge g, Edge h);
  static std::uint32_t parTaskEntry(void* ctx, std::uint32_t op,
                                    std::uint32_t f, std::uint32_t g,
                                    std::uint32_t h, unsigned depth,
                                    unsigned worker);
  Edge parDispatch(ParWorker& w, Op op, Edge f, Edge g, Edge h,
                   unsigned depth);
  Edge parAnd(ParWorker& w, Edge f, Edge g, unsigned depth);
  Edge parXor(ParWorker& w, Edge f, Edge g, unsigned depth);
  Edge parIte(ParWorker& w, Edge f, Edge g, Edge h, unsigned depth);
  Edge parExists(ParWorker& w, Edge f, Edge cube, unsigned depth);
  Edge parAndExists(ParWorker& w, Edge f, Edge g, Edge cube, unsigned depth);
  /// Shared-mode mk: lock-free find-or-publish, no GC/rehash/cache growth.
  Edge mkShared(ParWorker& w, unsigned var, Edge hi, Edge lo);
  /// Abort-flag + resource-limit poll for the parallel recursion (sampled
  /// through the worker's private countdown).
  void parPollLimits(ParWorker& w);
  bool parCacheLookup(ParWorker& w, Op op, Edge f, Edge g, Edge h, Edge* out);
  void parCacheInsert(ParWorker& w, Op op, Edge f, Edge g, Edge h,
                      Edge result);

  // data -- the first block is the item-1 shared state: the NodeStore
  // (node arena + unique table + free list, see bdd/node_store.hpp) and the
  // computed cache are exactly what the shared concurrent manager will hand
  // to multiple workers, so any new access to them must stay behind this
  // class's capability (see the class comment).
  NodeStore store_;                     // item-1 shared

  ComputedCache cache_;                 // item-1 shared: computed cache

  // Parallel-apply state (null when applyWorkers <= 1: the serial path
  // never touches it).  Owns the work-stealing pool and the per-worker
  // counter blocks; also carries the arena-slack hint the grow-retry loop
  // doubles (bdd/par_internal.hpp).
  std::unique_ptr<ParState> par_;

  std::vector<Edge> varEdges_;  // projection edge per variable (kept live)
  std::vector<unsigned> var2level_;
  std::vector<unsigned> level2var_;
  std::vector<std::string> varNames_;

  BddOptions options_;
  ResourceLimits limits_;
  BddStats stats_;
  std::uint64_t gcThreshold_ = 0;
  std::uint32_t limitCheckCountdown_ = 0;

  // reordering state
  std::vector<unsigned> varGroup_;      // sifting group per var; kNoGroup
  unsigned nextGroupId_ = 0;
  std::uint64_t reorderBaseline_ = 0;   // live nodes after the last sift
  bool inReorder_ = false;              // reentrancy guard for safe points
  bool suppressRehash_ = false;         // defer table growth during a swap
};

}  // namespace icb
