// Analysis utilities: node counting (single- and shared-root), satisfying
// assignment counting, support, evaluation, minterm picking, and the
// node-budget-bounded AND (the paper's SS V wish: "abort any of these
// operations if the size exceeds a specified bound").
#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "bdd/manager.hpp"
#include "util/rng.hpp"

namespace icb {

namespace {

/// DFS node count over one or more roots, shared nodes counted once.
/// Counts the terminal if any root reaches it (every nonempty set does),
/// matching the paper's figures (8-bit "<= 128" comparator == 9 nodes).
std::uint64_t countNodes(const BddManager& mgr, std::span<const Edge> roots) {
  std::unordered_set<std::uint32_t> seen;
  std::vector<std::uint32_t> stack;
  for (const Edge root : roots) {
    stack.push_back(edgeIndex(root));
  }
  while (!stack.empty()) {
    const std::uint32_t i = stack.back();
    stack.pop_back();
    if (!seen.insert(i).second) continue;
    if (i == 0) continue;
    if ((seen.size() & 0xFFFFu) == 0) {
      // Large counts can dominate wall time without ever allocating;
      // honour the deadline here too.
      const_cast<BddManager&>(mgr).pollLimits();
    }
    const Edge plain = makeEdge(i, false);
    stack.push_back(edgeIndex(mgr.edgeThen(plain)));
    stack.push_back(edgeIndex(mgr.edgeElse(plain)));
  }
  return seen.size();
}

}  // namespace

std::uint64_t BddManager::sizeE(Edge e) const {
  const Edge roots[1] = {e};
  return countNodes(*this, roots);
}

std::uint64_t BddManager::sharedSizeE(std::span<const Edge> roots) const {
  if (roots.empty()) return 0;
  return countNodes(*this, roots);
}

double BddManager::satCountE(Edge e, unsigned nvars) const {
  // Compute the probability that a uniformly random assignment satisfies e;
  // complement edges fall out naturally as prob(!f) = 1 - prob(f).
  std::unordered_map<std::uint32_t, double> memo;
  // Recursive lambda via explicit stack-free recursion (depth <= #vars).
  auto prob = [&](auto&& self, Edge f) -> double {
    if (f == kTrueEdge) return 1.0;
    if (f == kFalseEdge) return 0.0;
    const bool neg = edgeIsComplemented(f);
    const std::uint32_t i = edgeIndex(f);
    double p;
    if (const auto it = memo.find(i); it != memo.end()) {
      p = it->second;
    } else {
      const Edge plain = makeEdge(i, false);
      p = 0.5 * (self(self, edgeThen(plain)) + self(self, edgeElse(plain)));
      memo.emplace(i, p);
    }
    return neg ? 1.0 - p : p;
  };
  double scale = 1.0;
  for (unsigned i = 0; i < nvars; ++i) scale *= 2.0;
  return prob(prob, e) * scale;
}

std::vector<unsigned> BddManager::supportE(Edge e) const {
  std::unordered_set<std::uint32_t> seen;
  std::vector<std::uint32_t> stack{edgeIndex(e)};
  std::vector<unsigned> vars;
  while (!stack.empty()) {
    const std::uint32_t i = stack.back();
    stack.pop_back();
    if (i == 0 || !seen.insert(i).second) continue;
    vars.push_back(store_.varOf(i));
    stack.push_back(edgeIndex(store_.hiOf(i)));
    stack.push_back(edgeIndex(store_.loOf(i)));
  }
  std::sort(vars.begin(), vars.end());
  vars.erase(std::unique(vars.begin(), vars.end()), vars.end());
  return vars;
}

bool BddManager::evalE(Edge e, std::span<const char> values) const {
  while (!edgeIsConstant(e)) {
    const unsigned v = nodeVar(e);
    if (v >= values.size()) {
      throw BddUsageError("evalE: assignment misses a support variable");
    }
    e = values[v] != 0 ? edgeThen(e) : edgeElse(e);
  }
  return e == kTrueEdge;
}

void BddManager::pickMintermE(Edge e, std::span<const unsigned> vars, Rng& rng,
                              std::vector<char>& values) const {
  if (e == kFalseEdge) {
    throw BddUsageError("pickMintermE on the empty set");
  }
  if (values.size() < varEdges_.size()) values.resize(varEdges_.size(), 0);
  // Unconstrained variables get random values first; the walk below then
  // overwrites the constrained ones along one satisfying path.
  for (const unsigned v : vars) values[v] = rng.coin() ? 1 : 0;
  while (!edgeIsConstant(e)) {
    const unsigned v = nodeVar(e);
    const Edge hi = edgeThen(e);
    const Edge lo = edgeElse(e);
    bool takeHigh;
    if (hi == kFalseEdge) {
      takeHigh = false;
    } else if (lo == kFalseEdge) {
      takeHigh = true;
    } else {
      takeHigh = rng.coin();
    }
    values[v] = takeHigh ? 1 : 0;
    e = takeHigh ? hi : lo;
  }
  // e must have ended at TRUE: we only ever stepped into non-FALSE children.
}

bool BddManager::andBoundedE(Edge f, Edge g, std::uint64_t nodeBudget,
                             Edge* result) {
  const ResourceLimits saved = limits_;
  const std::uint64_t start = allocatedNodes();
  const std::uint64_t cap = start + nodeBudget;
  limits_.maxNodes =
      saved.maxNodes == 0 ? cap : std::min<std::uint64_t>(saved.maxNodes, cap);
  try {
    const Edge r = andE(f, g);
    limits_ = saved;
    *result = r;
    return true;
  } catch (const ResourceLimitError& err) {
    limits_ = saved;
    if (err.kind() == ResourceKind::kTime ||
        (saved.maxNodes != 0 && allocatedNodes() >= saved.maxNodes)) {
      throw;  // the caller's own limit is the one that tripped
    }
    return false;
  }
}

}  // namespace icb
