#include "bdd/manager.hpp"

#include <algorithm>

#include "bdd/bdd.hpp"
#include "bdd/par_internal.hpp"
#include "check/check.hpp"
#include "check/structural_checker.hpp"
#include "obs/trace.hpp"
#include "util/timer.hpp"

namespace icb {

const char* bddOpName(BddOp op) {
  switch (op) {
    case BddOp::kInvalid: return "invalid";
    case BddOp::kIte: return "ite";
    case BddOp::kAnd: return "and";
    case BddOp::kXor: return "xor";
    case BddOp::kExists: return "exists";
    case BddOp::kAndExists: return "and_exists";
    case BddOp::kRestrict: return "restrict";
    case BddOp::kConstrain: return "constrain";
  }
  return "?";
}

BddManager::BddManager(const BddOptions& options)
    : store_(options.initialCapacity),
      cache_(std::size_t{1} << options.cacheBitsLog2),
      options_(options) {
  gcThreshold_ = options_.gcThreshold;
  stats_.peakNodes = 1;
  if (!options_.spillDir.empty()) store_.armSpill(options_.spillDir);
  if (options_.applyWorkers > 1) setApplyWorkers(options_.applyWorkers);
}

BddManager::~BddManager() = default;

// ---------------------------------------------------------------------------
// apply workers (ROADMAP item 1; the regions themselves live in
// par_apply.cpp)

void BddManager::setApplyWorkers(unsigned n) {
  const unsigned want = n <= 1 ? 1 : n;
  if (want == applyWorkers()) return;
  par_.reset();  // park and join the old pool first
  if (want > 1) par_ = std::make_unique<ParState>(want);
}

unsigned BddManager::applyWorkers() const {
  return par_ ? par_->pool.workers() : 1;
}

// ---------------------------------------------------------------------------
// variables

unsigned BddManager::newVar(const std::string& name) {
  const auto v = static_cast<unsigned>(varEdges_.size());
  if (v > NodeStore::kMaxVar) {
    throw BddUsageError("variable index space exhausted (packed nodes carry "
                        "20-bit variable indices)");
  }
  var2level_.push_back(v);
  level2var_.push_back(v);
  varGroup_.push_back(kNoGroup);
  varNames_.push_back(name.empty() ? "v" + std::to_string(v) : name);
  const Edge e = mk(v, kTrueEdge, kFalseEdge);
  ref(e);  // projection functions stay alive for the manager's lifetime
  varEdges_.push_back(e);
  ICBDD_CHECK(kCheap, StructuralChecker(*this).throwIfBroken(CheckLevel::kCheap));
  return v;
}

Bdd BddManager::one() { return Bdd(this, kTrueEdge); }
Bdd BddManager::zero() { return Bdd(this, kFalseEdge); }

Bdd BddManager::var(unsigned v) {
  if (v >= varEdges_.size()) throw BddUsageError("var index out of range");
  return Bdd(this, varEdges_[v]);
}

Bdd BddManager::nvar(unsigned v) {
  if (v >= varEdges_.size()) throw BddUsageError("var index out of range");
  return Bdd(this, edgeNot(varEdges_[v]));
}

// ---------------------------------------------------------------------------
// reference counting

void BddManager::deref(Edge e) {
  if (store_.deref(edgeIndex(e))) {
    // A release on a zero count: some handle was dropped twice.  Always
    // counted (the obs layer exports bdd.ref.underflow); fatal when the
    // per-operation checks are on.
    ++stats_.refUnderflows;
    ICBDD_CHECK(kCheap,
                throw CheckFailure(
                    ViolationKind::kRefUnderflow,
                    "deref of edge " + std::to_string(e) +
                        " whose external reference count is already zero"));
  }
}

void BddManager::checkResourceLimits() {
  if (limits_.maxNodes != 0 && allocatedNodes() > limits_.maxNodes &&
      !maybeSpillInsteadOfNodeLimit()) {
    throw ResourceLimitError(ResourceKind::kNodes);
  }
  // Proactive engagement: with a spill threshold configured, mount the tier
  // as soon as the arena crosses it, well before the node cap would fire.
  if (options_.spillThresholdNodes != 0 && !store_.spillEngaged() &&
      store_.spillArmed() && !store_.concurrent() &&
      allocatedNodes() > options_.spillThresholdNodes) {
    engageSpill();
  }
  // relaxed: cancellation is advisory -- the poll needs timeliness, not
  // ordering with the cancelling thread's other writes.
  if (limits_.cancelFlag != nullptr &&
      limits_.cancelFlag->load(std::memory_order_relaxed)) {
    throw ResourceLimitError(ResourceKind::kCancelled);
  }
  // The clock is comparatively expensive; sample it.
  if (limits_.deadline.isSet() && limitCheckCountdown_-- == 0) {
    limitCheckCountdown_ = 8192;
    if (limits_.deadline.expired()) {
      throw ResourceLimitError(ResourceKind::kTime);
    }
  }
}

bool BddManager::maybeSpillInsteadOfNodeLimit() {
  // Inside a concurrent region the tier must not mount (eviction is not
  // thread-safe); the region aborts with kNodes and parApply's quiesced
  // retry path engages the tier before falling back to the serial
  // recursion (docs/external_memory.md).
  if (!store_.spillArmed() || store_.concurrent()) return false;
  if (!store_.spillEngaged()) engageSpill();
  // The node cap modeled RAM and the tier now supplies RAM from disk: keep
  // running beyond the cap instead of reporting kNodeLimit.
  return true;
}

void BddManager::engageSpill() {
  if (store_.spillEngaged()) return;
  std::uint64_t budgetNodes = options_.spillThresholdNodes;
  if (budgetNodes == 0) budgetNodes = limits_.maxNodes;
  if (budgetNodes == 0) budgetNodes = std::uint64_t{1} << 20;
  store_.engageSpill(budgetNodes);
  if (obs::traceEnabled()) {
    obs::emitGlobalEvent("spill_engage", *this,
                         obs::JsonObject()
                             .put("budget_nodes", budgetNodes)
                             .put("allocated", allocatedNodes()));
  }
}

std::uint64_t BddManager::bytesForNodes(std::uint64_t n) const {
  std::uint64_t arena = n * sizeof(PackedNode);
  if (store_.spillEngaged()) {
    // Spilled pages live on disk: the arena's RAM term is capped at the
    // resident budget, and the page-table bookkeeping joins the bill.
    const NodeStore::SpillInfo info = store_.spillInfo();
    arena = std::min<std::uint64_t>(
                arena, static_cast<std::uint64_t>(info.budgetPages) *
                           info.pageBytes) +
            store_.pageTableBytes();
  }
  // The sparse refcount side table: a hash node per externally referenced
  // index (~2x the 8-byte payload with the chain pointer and allocator
  // rounding) plus the bucket-pointer array.
  constexpr std::uint64_t kRefEntryBytes = 32;
  const auto& refs = store_.refs();
  return arena + refs.size() * kRefEntryBytes +
         refs.bucket_count() * sizeof(void*);
}

Edge BddManager::mk(unsigned var, Edge hi, Edge lo) {
  if (hi == lo) return hi;
  // Canonical form: the then-arc is never complemented.
  if (edgeIsComplemented(hi)) {
    return edgeNot(mk(var, edgeNot(hi), edgeNot(lo)));
  }

  ++stats_.uniqueLookups;
  const std::uint32_t hit = store_.find(var, hi, lo, &stats_.uniqueChainSteps);
  if (hit != kNil) return makeEdge(hit, false);

  checkResourceLimits();

  // allocate() enforces the 31-bit Edge index space itself, throwing the
  // typed kNodeIndexSpace error *before* touching any state -- the guard
  // that used to live here (and before that, nowhere: indices silently
  // wrapped through makeEdge past 2^31 nodes).
  const bool grew = store_.wouldGrow();
  const std::uint32_t index = store_.allocate(var, hi, lo);
  if (grew) {
    // Keep the load factor of the unique table below 1.  Mid-swap the table
    // holds unlinked nodes with stale triples, so growth is deferred until
    // the swap has restored consistency (see swapLevelsInternal).
    if (store_.needsRehash() && !suppressRehash_) {
      store_.rehash(store_.bucketCount() * 2);
    }
    // The computed cache tracks the arena the same way: a cache frozen at
    // its boot size serves a multi-million-node traversal at direct-mapped
    // conflict rates while the unique table scales freely beside it.
    maybeGrowComputedCache();
  }

  ++stats_.nodesCreated;
  stats_.peakNodes = std::max<std::uint64_t>(stats_.peakNodes, allocatedNodes());
  return makeEdge(index, false);
}

// ---------------------------------------------------------------------------
// computed cache

std::size_t BddManager::cacheSlot(Op op, Edge f, Edge g, Edge h) const {
  return cache_.slotOf(static_cast<std::uint32_t>(op), f, g, h);
}

bool BddManager::cacheLookup(Op op, Edge f, Edge g, Edge h, Edge* out) {
  BddOpCacheStats& opStats = stats_.opCache[static_cast<std::size_t>(op)];
  ++opStats.lookups;
  // The race counter never moves on this serial path (no concurrent
  // writers), so routing it at stats_ directly is safe.
  if (cache_.lookup(static_cast<std::uint32_t>(op), f, g, h, out,
                    &stats_.parCacheRaces)) {
    ++opStats.hits;
    return true;
  }
  return false;
}

void BddManager::cacheInsert(Op op, Edge f, Edge g, Edge h, Edge result) {
  cache_.insert(static_cast<std::uint32_t>(op), f, g, h, result,
                &stats_.parCacheRaces);
}

void BddManager::maybeGrowComputedCache() {
  const std::size_t ceiling = std::size_t{1}
                              << std::max(options_.cacheMaxBitsLog2,
                                          options_.cacheBitsLog2);
  // Keep the cache at least twice the arena: a direct-mapped table at load
  // factor ~1 loses most of its entries to slot conflicts, so growing only
  // to parity buys nothing.  The 2x headroom is what turns growth into
  // measurable hit-rate gains on multi-hundred-thousand-node traversals.
  //
  // Only ever called at quiesced safe points (serial mk, or the join at a
  // parallel region's end): resizing is the one cache operation the
  // lock-free protocol does not cover (docs/parallel.md).
  while (store_.size() * 2 > cache_.size() && cache_.size() < ceiling) {
    // Rehash rather than drop: every live entry stays findable at its slot
    // in the doubled table, so growth never costs a cold restart.
    const std::size_t oldSize = cache_.size();
    std::vector<CacheEntry> live;
    live.reserve(oldSize / 4);
    for (std::size_t slot = 0; slot < oldSize; ++slot) {
      const CacheEntry e = cache_.entryAt(slot);
      if (e.op != static_cast<std::uint32_t>(Op::kInvalid)) live.push_back(e);
    }
    cache_.reset(oldSize * 2);
    for (const CacheEntry& e : live) {
      cache_.setEntryAt(cache_.slotOf(e.op, e.f, e.g, e.h), e);
    }
    ++stats_.cacheResizes;
    if (obs::traceEnabled()) {
      obs::emitGlobalEvent("cache_resize", *this,
                           obs::JsonObject()
                               .put("entries", cache_.size())
                               .put("allocated", allocatedNodes()));
    }
  }
}

// ---------------------------------------------------------------------------
// garbage collection

void BddManager::markRecursive(std::uint32_t index,
                               std::vector<std::uint8_t>& mark) const {
  // Iterative DFS to avoid stack overflow on deep BDDs.
  std::vector<std::uint32_t> stack{index};
  while (!stack.empty()) {
    const std::uint32_t i = stack.back();
    stack.pop_back();
    if (mark[i] != 0) continue;
    mark[i] = 1;
    if (i == 0) continue;
    stack.push_back(edgeIndex(store_.hiOf(i)));
    stack.push_back(edgeIndex(store_.loOf(i)));
  }
}

std::uint64_t BddManager::gc() {
  const Stopwatch gcWatch;
  std::vector<std::uint8_t> mark(store_.size(), 0);
  mark[0] = 1;
  // Roots are exactly the side table's entries: every externally referenced
  // node, without an O(arena) scan for nonzero counts.  Sorted by node
  // index before marking: the unordered_map iterates in hash order, which
  // varies with the table's resize history and across standard libraries --
  // sorting pins the whole collection to a deterministic visit order
  // instead of leaning on mark-set commutativity.
  std::vector<std::uint32_t> roots;
  roots.reserve(store_.refs().size());
  for (const auto& [i, r] : store_.refs()) {
    if (i != 0 && r > 0 && !store_.isFree(i)) roots.push_back(i);
  }
  std::sort(roots.begin(), roots.end());
  for (const std::uint32_t i : roots) {
    markRecursive(i, mark);
  }

  std::uint64_t reclaimed = 0;
  store_.resetFreeList();
  for (std::uint32_t i = 1; i < store_.size(); ++i) {
    if (mark[i] != 0) continue;
    if (!store_.isFree(i)) ++reclaimed;
    store_.pushFree(i);
  }

  store_.rehash(store_.bucketCount());
  // Sweep the computed cache selectively: an entry stays valid as long as
  // every node it references survived, because the sweep frees slots in
  // place (survivors keep their index, and an index keeps denoting the same
  // function -- see reorder.cpp).  Dropping the whole table here instead
  // forces every traversal to re-derive results about still-live subgraphs
  // after each collection, which is what used to cap the cache hit rate on
  // the deep table-1 runs no matter how large the cache grew.
  std::uint64_t kept = 0;
  for (std::size_t slot = 0; slot < cache_.size(); ++slot) {
    const CacheEntry e = cache_.entryAt(slot);
    if (e.op == static_cast<std::uint32_t>(Op::kInvalid)) continue;
    if (mark[edgeIndex(e.f)] != 0 && mark[edgeIndex(e.g)] != 0 &&
        mark[edgeIndex(e.h)] != 0 && mark[edgeIndex(e.result)] != 0) {
      ++kept;
    } else {
      cache_.clearAt(slot);
    }
  }

  ++stats_.gcRuns;
  stats_.gcReclaimed += reclaimed;
  const double gcUs = gcWatch.elapsedSeconds() * 1e6;
  stats_.gcPauseUs.record(gcUs <= 0.0 ? 0 : static_cast<std::uint64_t>(gcUs));
  if (obs::traceEnabled()) {
    obs::emitGlobalEvent("gc", *this,
                         obs::JsonObject()
                             .put("reclaimed", reclaimed)
                             .put("allocated", allocatedNodes())
                             .put("cache_kept", kept)
                             .put("wall_s", gcWatch.elapsedSeconds()));
  }
  // GC is the phase boundary where every structural invariant must hold:
  // the sweep rebuilt the unique table and the free list from scratch.
  ICBDD_CHECK(kFull, auditArenaCreditingTime(*this));
  return reclaimed;
}

void BddManager::autoGc() {
  if (store_.size() < gcThreshold_) return;
  gc();
  // If the table is still mostly live, collecting again soon is pointless:
  // raise the threshold so we grow instead.
  if (allocatedNodes() * 4 > store_.size() * 3) {
    gcThreshold_ =
        std::max<std::uint64_t>(gcThreshold_ * 2, store_.size() * 2);
  }
  // The collection just failed to get the live count back under the growth
  // trigger?  This is the safe point where sifting is allowed to fire: only
  // handle-level entries reach autoGc(), never a recursive worker.
  maybeAutoReorderPostGc();
}

std::uint64_t BddManager::liveNodes() const {
  std::vector<std::uint8_t> mark(store_.size(), 0);
  mark[0] = 1;
  // Same deterministic index-order visit as gc()'s root enumeration.
  std::vector<std::uint32_t> roots;
  roots.reserve(store_.refs().size());
  for (const auto& [i, r] : store_.refs()) {
    if (i != 0 && r > 0 && !store_.isFree(i)) roots.push_back(i);
  }
  std::sort(roots.begin(), roots.end());
  for (const std::uint32_t i : roots) {
    markRecursive(i, mark);
  }
  return static_cast<std::uint64_t>(std::count(mark.begin(), mark.end(), 1));
}

// ---------------------------------------------------------------------------
// invariants (test support)

void BddManager::checkInvariants() const {
  const CheckReport report = StructuralChecker(*this).run(CheckLevel::kFull);
  if (!report.ok()) {
    throw BddUsageError(report.summary());
  }
}

void BddManager::validateEdge(Edge e) const {
  if (edgeIndex(e) >= store_.size()) {
    throw CheckFailure(ViolationKind::kInvalidEdge,
                       "edge " + std::to_string(e) + " points outside the arena");
  }
  if (!edgeIsConstant(e) && store_.isFree(edgeIndex(e))) {
    throw CheckFailure(ViolationKind::kInvalidEdge,
                       "edge " + std::to_string(e) + " points at a freed node");
  }
}

// ---------------------------------------------------------------------------
// free-function helpers on handles

Bdd transferTo(BddManager& target, const Bdd& f) {
  if (f.manager() == &target) return f;
  target.autoGc();
  return Bdd(&target, target.transferFromE(*f.manager(), f.edge()));
}

std::uint64_t sharedSize(std::span<const Bdd> fs) {
  if (fs.empty()) return 0;
  BddManager* mgr = fs.front().manager();
  std::vector<Edge> roots;
  roots.reserve(fs.size());
  for (const Bdd& f : fs) {
    if (f.manager() != mgr) {
      throw BddUsageError("sharedSize across managers");
    }
    roots.push_back(f.edge());
  }
  return mgr->sharedSizeE(roots);
}

Bdd conjoinAll(BddManager& mgr, std::span<const Bdd> fs) {
  Bdd acc = mgr.one();
  for (const Bdd& f : fs) acc &= f;
  return acc;
}

}  // namespace icb
