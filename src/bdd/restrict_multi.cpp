// Simultaneous multi-care-set Restrict -- the paper's Section V wish:
//
//   "We really wish to simplify by c1 & c2, which gives a smaller care-set,
//    but we can't afford to build the BDD for c1 & c2.  What's needed,
//    therefore, is a routine that simplifies using multiple BDDs
//    simultaneously."
//
// restrictMultiE(f, {c1..ck}) simplifies f against the IMPLICIT conjunction
// of the care BDDs without ever building it.  The recursion carries the
// whole care list, cofactoring every member in lock-step:
//
//   * if any member is constant FALSE the conjunction is FALSE on this
//     branch: the sibling's result can be substituted (the defining
//     sibling-substitution step of Restrict);
//   * members that become constant TRUE drop out of the list;
//   * when f does not depend on the branching variable, each member is
//     replaced by the OR of its own cofactors.  (AND of ORs is a superset
//     of the exists of the AND, so the care set only ever grows -- which
//     keeps the operator sound, merely occasionally less sharp.)
//
// The contract is the same as Restrict's:  result & C == f & C  for
// C = c1 & ... & ck.  Detection of an empty conjunction is member-wise
// (sound but not complete), so this is a heuristic strengthening of
// iterated pairwise Restrict, not a replacement for building C.
#include <algorithm>
#include <map>

#include "bdd/manager.hpp"

namespace icb {

namespace {

class MultiRestrictor {
 public:
  explicit MultiRestrictor(BddManager& mgr) : mgr_(mgr) {}

  Edge run(Edge f, std::vector<Edge> cares) {
    normalize(cares);
    return rec(f, std::move(cares));
  }

 private:
  /// Drops TRUE members and duplicates; sorts for memo-key canonicity.
  /// Returns true when some member is FALSE (conjunction empty).
  static bool normalize(std::vector<Edge>& cares) {
    std::sort(cares.begin(), cares.end());
    cares.erase(std::unique(cares.begin(), cares.end()), cares.end());
    bool empty = false;
    std::erase_if(cares, [&](Edge c) {
      if (c == kFalseEdge) empty = true;
      return c == kTrueEdge;
    });
    return empty;
  }

  Edge rec(Edge f, std::vector<Edge> cares) {
    if (edgeIsConstant(f)) return f;
    const bool emptyCare = normalize(cares);
    if (emptyCare) return f;  // vacuous contract; any result is legal
    if (cares.empty()) return f;
    // A single care member degenerates to the classic operator (and picks
    // up its global computed-cache entries).
    if (cares.size() == 1) return mgr_.restrictE(f, cares.front());

    const auto key = std::make_pair(f, cares);
    if (const auto it = memo_.find(key); it != memo_.end()) {
      return it->second;
    }

    // Branch on the topmost variable of f or any care member.
    unsigned level = mgr_.edgeLevel(f);
    for (const Edge c : cares) level = std::min(level, mgr_.edgeLevel(c));
    const unsigned var = mgr_.varAtLevel(level);

    Edge result;
    if (mgr_.edgeLevel(f) > level) {
      // f does not depend on the branching variable: merge each care
      // member's cofactors (a superset of exists(var, AND cares)).
      std::vector<Edge> merged;
      merged.reserve(cares.size());
      for (const Edge c : cares) {
        merged.push_back(mgr_.edgeLevel(c) == level
                             ? mgr_.orE(mgr_.edgeThen(c), mgr_.edgeElse(c))
                             : c);
      }
      result = rec(f, std::move(merged));
    } else {
      std::vector<Edge> hiCares;
      std::vector<Edge> loCares;
      hiCares.reserve(cares.size());
      loCares.reserve(cares.size());
      bool hiEmpty = false;
      bool loEmpty = false;
      for (const Edge c : cares) {
        const Edge ch = mgr_.edgeLevel(c) == level ? mgr_.edgeThen(c) : c;
        const Edge cl = mgr_.edgeLevel(c) == level ? mgr_.edgeElse(c) : c;
        hiEmpty |= ch == kFalseEdge;
        loEmpty |= cl == kFalseEdge;
        hiCares.push_back(ch);
        loCares.push_back(cl);
      }
      const Edge f1 = mgr_.edgeThen(f);
      const Edge f0 = mgr_.edgeElse(f);
      if (hiEmpty && loEmpty) {
        result = f;  // conjunction empty on both branches: free choice
      } else if (hiEmpty) {
        result = rec(f0, std::move(loCares));  // sibling substitution
      } else if (loEmpty) {
        result = rec(f1, std::move(hiCares));
      } else {
        const Edge r1 = rec(f1, std::move(hiCares));
        const Edge r0 = rec(f0, std::move(loCares));
        result = mgr_.mk(var, r1, r0);
      }
    }

    memo_.emplace(std::make_pair(f, std::move(cares)), result);
    return result;
  }

  BddManager& mgr_;
  std::map<std::pair<Edge, std::vector<Edge>>, Edge> memo_;
};

}  // namespace

Edge BddManager::restrictMultiE(Edge f, std::span<const Edge> cares) {
  ++stats_.multiRestrictCalls;
  MultiRestrictor restrictor(*this);
  return restrictor.run(f, std::vector<Edge>(cares.begin(), cares.end()));
}

}  // namespace icb
