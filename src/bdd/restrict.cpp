// The two care-set simplification operators of Coudert, Berthet and Madre:
//
//   Restrict(f, c)  -- sibling-substitution simplification.  Returns f' with
//                      f' & c == f & c; when c skips a whole variable the
//                      operator merges f's cofactor pair, which is what makes
//                      it effective at *shrinking* BDDs.  This is the
//                      BDDSimplify the paper uses, and the operator for which
//                      Theorem 3 holds (a | b tautology iff Restrict(a, !b)
//                      tautology), which gives the exact termination test its
//                      step-3 shortcut for free.
//
//   Constrain(f, c) -- the generalized cofactor.  Same care-set contract plus
//                      the image property Image(f, c) = Constrain(f, c)'s
//                      range; it never skips levels and can therefore blow up.
//
// Both return f unchanged when c == FALSE (any result would satisfy the
// contract vacuously; callers in this library treat an all-false care set
// before calling).
#include <algorithm>

#include "bdd/manager.hpp"
#include "check/check.hpp"

namespace icb {

Edge BddManager::restrictE(Edge f, Edge c) {
  ICBDD_CHECK(kCheap, validateEdge(f); validateEdge(c));
  ++stats_.restrictCalls;
  const BddOpTimer timer(stats_, BddOp::kRestrict);
  return restrictRec(f, c);
}

Edge BddManager::constrainE(Edge f, Edge c) {
  ICBDD_CHECK(kCheap, validateEdge(f); validateEdge(c));
  ++stats_.constrainCalls;
  const BddOpTimer timer(stats_, BddOp::kConstrain);
  return constrainRec(f, c);
}

Edge BddManager::restrictRec(Edge f, Edge c) {
  if (c == kTrueEdge || edgeIsConstant(f)) return f;
  if (c == kFalseEdge) return f;  // vacuous contract; see header comment
  if (f == c) return kTrueEdge;
  if (f == edgeNot(c)) return kFalseEdge;

  Edge cached;
  if (cacheLookup(Op::kRestrict, f, c, 0, &cached)) return cached;

  const unsigned lf = edgeLevel(f);
  const unsigned lc = edgeLevel(c);

  Edge result;
  if (lc < lf) {
    // f does not depend on c's top variable: merge c's cofactors and retry.
    result = restrictRec(f, orE(edgeThen(c), edgeElse(c)));
  } else {
    const unsigned var = nodeVar(f);
    const Edge c1 = lc == lf ? edgeThen(c) : c;
    const Edge c0 = lc == lf ? edgeElse(c) : c;
    if (c1 == kFalseEdge) {
      result = restrictRec(edgeElse(f), c0);
    } else if (c0 == kFalseEdge) {
      result = restrictRec(edgeThen(f), c1);
    } else {
      const Edge r1 = restrictRec(edgeThen(f), c1);
      const Edge r0 = restrictRec(edgeElse(f), c0);
      result = mk(var, r1, r0);
    }
  }

  cacheInsert(Op::kRestrict, f, c, 0, result);
  return result;
}

Edge BddManager::constrainRec(Edge f, Edge c) {
  if (c == kTrueEdge || edgeIsConstant(f)) return f;
  if (c == kFalseEdge) return f;  // vacuous contract
  if (f == c) return kTrueEdge;
  if (f == edgeNot(c)) return kFalseEdge;

  Edge cached;
  if (cacheLookup(Op::kConstrain, f, c, 0, &cached)) return cached;

  const unsigned lf = edgeLevel(f);
  const unsigned lc = edgeLevel(c);
  const unsigned top = std::min(lf, lc);
  const unsigned var = level2var_[top];

  const Edge f1 = lf == top ? edgeThen(f) : f;
  const Edge f0 = lf == top ? edgeElse(f) : f;
  const Edge c1 = lc == top ? edgeThen(c) : c;
  const Edge c0 = lc == top ? edgeElse(c) : c;

  Edge result;
  if (c1 == kFalseEdge) {
    result = constrainRec(f0, c0);
  } else if (c0 == kFalseEdge) {
    result = constrainRec(f1, c1);
  } else {
    const Edge r1 = constrainRec(f1, c1);
    const Edge r0 = constrainRec(f0, c0);
    result = mk(var, r1, r0);
  }

  cacheInsert(Op::kConstrain, f, c, 0, result);
  return result;
}

}  // namespace icb
