// Graphviz output for debugging and documentation figures.
#include <ostream>
#include <unordered_set>

#include "bdd/manager.hpp"

namespace icb {

void BddManager::dumpDot(std::ostream& os, std::span<const Edge> roots,
                         std::span<const std::string> rootNames) const {
  os << "digraph bdd {\n";
  os << "  rankdir=TB;\n";
  os << "  node [shape=circle];\n";
  os << "  t1 [shape=box, label=\"1\"];\n";

  std::unordered_set<std::uint32_t> seen;
  std::vector<std::uint32_t> stack;

  auto edgeTarget = [](Edge e) {
    return edgeIndex(e) == 0 ? std::string("t1")
                             : "n" + std::to_string(edgeIndex(e));
  };

  for (std::size_t r = 0; r < roots.size(); ++r) {
    const std::string name = r < rootNames.size()
                                 ? rootNames[r]
                                 : "f" + std::to_string(r);
    os << "  r" << r << " [shape=plaintext, label=\"" << name << "\"];\n";
    os << "  r" << r << " -> " << edgeTarget(roots[r])
       << (edgeIsComplemented(roots[r]) ? " [style=dotted]" : "") << ";\n";
    stack.push_back(edgeIndex(roots[r]));
  }

  while (!stack.empty()) {
    const std::uint32_t i = stack.back();
    stack.pop_back();
    if (i == 0 || !seen.insert(i).second) continue;
    const Edge hi = store_.hiOf(i);
    const Edge lo = store_.loOf(i);
    os << "  n" << i << " [label=\"" << varNames_[store_.varOf(i)] << "\"];\n";
    os << "  n" << i << " -> " << edgeTarget(hi) << ";\n";
    os << "  n" << i << " -> " << edgeTarget(lo) << " [style=dashed"
       << (edgeIsComplemented(lo) ? ",color=red" : "") << "];\n";
    stack.push_back(edgeIndex(hi));
    stack.push_back(edgeIndex(lo));
  }
  os << "}\n";
}

}  // namespace icb
