// Configuration and resource-limit types for the BDD manager.
#pragma once

#include <atomic>
#include <cstdint>
#include <stdexcept>
#include <string>

#include "util/timer.hpp"

namespace icb {

/// Tuning knobs for a BddManager.  The defaults are sized for the paper's
/// laptop-scale experiments.
struct BddOptions {
  /// Initial node-arena capacity (number of nodes reserved up front).
  std::uint32_t initialCapacity = 1u << 14;
  /// Garbage collection is considered once the arena has grown past this
  /// many nodes; the threshold doubles whenever a collection frees too little.
  std::uint32_t gcThreshold = 1u << 16;
  /// log2 of the *initial* computed-cache size in entries.
  unsigned cacheBitsLog2 = 18;
  /// log2 ceiling for the adaptive computed cache.  The unique table rehashes
  /// whenever the arena outgrows it; the computed cache grows the same way --
  /// doubling (entries rehashed, not dropped) whenever the arena outgrows the
  /// cache -- so a multi-million-node traversal is not stuck pushing its
  /// lookups through the boot-time direct-mapped table.  Set equal to
  /// cacheBitsLog2 to pin the historical fixed-size behavior.
  unsigned cacheMaxBitsLog2 = 22;
  /// Growth-triggered automatic dynamic reordering (grouped sifting).  Off by
  /// default: the paper keeps a fixed interleaved order, and verdict/iteration
  /// reproducibility against it requires the order to stay put.  When on, a
  /// sift fires at safe points (handle-level autoGc, engine iteration
  /// boundaries) once the live-node count exceeds reorderTrigger times the
  /// count after the last reorder AND garbage collection failed to get back
  /// under that bar.
  bool autoReorder = false;
  /// Live-node growth factor that arms the next automatic sift.
  double reorderTrigger = 2.0;
  /// Automatic sifting is pointless on tiny arenas: never fire below this
  /// many live nodes.
  std::uint64_t reorderMinLiveNodes = 4096;
  /// Number of workers sharing this manager inside one apply (ROADMAP
  /// item 1: intra-problem parallelism).  1 (the default) keeps the
  /// historical single-threaded recursion byte-for-byte: no pool is
  /// created, no atomics are touched on the hot path.  N > 1 spawns a
  /// per-manager work-stealing pool of N workers (the calling thread
  /// included) that splits cofactor subproblems of AND/XOR/ITE/EXISTS/
  /// AND-EXISTS across a shared NodeStore and lock-free computed cache.
  /// GC, reordering, and table growth still run only at quiesced safe
  /// points between operations (docs/parallel.md).
  unsigned applyWorkers = 1;
  /// Arms the external-memory spill tier (ROADMAP item 3): when non-empty,
  /// a run whose arena outgrows its RAM budget pages node arena pages
  /// through a write-back scratch file under this directory instead of
  /// aborting with kNodeLimit.  Empty (the default) leaves the tier off --
  /// no page file, no bookkeeping, byte-identical behavior.
  /// docs/external_memory.md covers tuning and failure modes.
  std::string spillDir;
  /// Resident RAM budget, in nodes, of the spill tier.  When nonzero the
  /// tier engages proactively as soon as the arena crosses this many
  /// allocated nodes (and the budget caps the resident page cache); when 0
  /// the tier engages only where ResourceLimits::maxNodes would have
  /// aborted the run, with the budget derived from that cap.
  std::uint64_t spillThresholdNodes = 0;
};

/// Which resource gave out first when a run is aborted.  kNodes is the
/// *configured* ResourceLimits::maxNodes cap; kNodeIndexSpace is the
/// structural ceiling of the 31-bit Edge index encoding (the arena can hold
/// no more nodes no matter what the limits say).
enum class ResourceKind { kNodes, kTime, kCancelled, kNodeIndexSpace };

[[nodiscard]] constexpr const char* resourceKindMessage(ResourceKind kind) {
  switch (kind) {
    case ResourceKind::kNodes: return "BDD node limit exceeded";
    case ResourceKind::kTime: return "BDD deadline exceeded";
    case ResourceKind::kCancelled: return "BDD operation cancelled";
    case ResourceKind::kNodeIndexSpace:
      return "BDD node index space exhausted (31-bit Edge encoding)";
  }
  return "BDD resource limit exceeded";
}

/// Hard caps applied to every operation of a manager.  Engines install these
/// to reproduce the paper's "Exceeded 60MB." / "Exceeded 40 minutes." rows.
struct ResourceLimits {
  /// Maximum number of allocated (live + not-yet-collected) nodes.
  /// 0 means unlimited.
  std::uint64_t maxNodes = 0;
  /// Wall-clock deadline.  Default never expires.
  Deadline deadline;
  /// Cooperative cross-thread cancellation: when non-null, the manager polls
  /// this flag wherever it polls the deadline and aborts the current
  /// operation with ResourceKind::kCancelled once it reads true.  The flag
  /// (and its owner) must outlive every operation run under these limits.
  /// This is how a scheduler/service thread stops a *running* BDD workload
  /// it no longer needs -- the running-cell half of the cancellation story
  /// that deadline propagation alone cannot provide.
  const std::atomic<bool>* cancelFlag = nullptr;
};

/// Thrown from inside BDD operations when a ResourceLimits cap is hit.
/// The manager remains fully usable afterwards: orphaned intermediate nodes
/// are reclaimed by the next garbage collection.
class ResourceLimitError : public std::runtime_error {
 public:
  explicit ResourceLimitError(ResourceKind kind)
      : std::runtime_error(resourceKindMessage(kind)), kind_(kind) {}

  [[nodiscard]] ResourceKind kind() const { return kind_; }

 private:
  ResourceKind kind_;
};

/// Thrown on API misuse (mixing managers, bad variable index, ...).
class BddUsageError : public std::logic_error {
 public:
  explicit BddUsageError(const std::string& what) : std::logic_error(what) {}
};

}  // namespace icb
