// Definitions of BddManager's parallel-apply state (declared opaquely in
// manager.hpp so that header stays free of <thread> and the pool types).
// Included by manager.cpp and par_apply.cpp only.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <vector>

#include "bdd/manager.hpp"
#include "par/apply_pool.hpp"

namespace icb {

/// One worker's private counters for one region.  Everything here is
/// thread-local by construction (indexed by worker id), merged into
/// BddStats under the region's join -- the recursion never touches a shared
/// counter on the hot path.
struct BddManager::ParWorker {
  std::uint64_t uniqueLookups = 0;
  std::uint64_t uniqueChainSteps = 0;
  std::uint64_t nodesCreated = 0;
  std::uint64_t casRetries = 0;
  std::uint64_t cacheRaces = 0;
  std::array<BddOpCacheStats, kBddOpCount> opCache{};
  std::uint32_t limitCountdown = 0;

  void reset() { *this = ParWorker{}; }
};

/// The pool plus its per-worker blocks, owned by the manager while
/// applyWorkers > 1.
struct BddManager::ParState {
  explicit ParState(unsigned workerCount)
      : pool(workerCount), workers(pool.workers()) {}

  par::ApplyPool pool;
  std::vector<ParWorker> workers;
  /// Bump-extent headroom for the next region; parApply doubles it on a
  /// NodeStore::GrowRequest and it decays back between operations.
  std::size_t growSlack = 1u << 16;
};

}  // namespace icb
