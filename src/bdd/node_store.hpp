// NodeStore: the shared-state seam of BddManager -- node arena, unique
// table, and free list -- implemented over a packed 16-byte node.
//
// This is exactly the block manager.hpp marks "item-1 shared": the state a
// future shared concurrent manager (ROADMAP item 1) hands to multiple
// workers, and the tier an external-memory backend (item 3) would swap out.
// Pulling it behind one class gives those items a single surface to take
// over, and lets the node representation change without touching the
// algorithms above it.
//
// The packed layout follows the two-u64-word idiom of distbdd-spin17's
// bddnode.h (42-bit index / 20-bit level packing there), adapted to this
// package's 32-bit Edge (31-bit index + complement bit):
//
//   word0  bits 0..31   hi edge (then-arc; plain in a canonical arena, but
//                       the full 32 bits are stored so corruption tests can
//                       represent a complemented then-arc)
//          bits 32..62  unique-table chain / free-list link (31-bit index,
//                       kNil terminated) -- the chain pointer that used to
//                       be a separate word rides in the spare bits
//          bit  63      spare
//   word1  bits 0..31   lo edge (else-arc, may be complemented)
//          bits 32..51  variable index (20 bits; kFreeVar marks free-listed
//                       nodes, kTermVar the terminal)
//          bits 52..63  spare
//
// External (handle) reference counts live OUTSIDE the node, in a sparse
// side table keyed by node index: at any moment only the handful of nodes
// under a live Bdd handle carry a count, so a hash map beats a 4-byte field
// paid by every node.  Absent means zero; the terminal is pinned at kMaxRef
// for the store's lifetime.  docs/node_layout.md is the full contract.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "bdd/edge.hpp"
#include "bdd/options.hpp"
#include "xmem/page_file.hpp"
#include "xmem/paged_store.hpp"
#include "xmem/stats.hpp"

namespace icb {

/// One BDD node in two 64-bit words.  The words are private: every consumer
/// goes through NodeStore's field accessors, so the packing can change (or
/// grow atomics for item 1) without touching callers.
struct PackedNode {
 private:
  friend class NodeStore;
  std::uint64_t word0 = 0;
  std::uint64_t word1 = 0;
};

static_assert(sizeof(PackedNode) == 16,
              "PackedNode must stay two machine words -- the bytes-per-node "
              "reduction is the point of the packed layout");

class NodeStore {
 public:
  static constexpr unsigned kVarBits = 20;
  /// Sentinel variable of free-listed nodes (all-ones in the var field).
  static constexpr unsigned kFreeVar = (1u << kVarBits) - 1;
  /// Variable of the terminal node; never matches a real variable.
  static constexpr unsigned kTermVar = kFreeVar - 1;
  /// Largest real variable index a node can carry.
  static constexpr unsigned kMaxVar = kTermVar - 1;
  /// Null link of the unique-table chains and the free list.
  static constexpr std::uint32_t kNil = 0x7FFFFFFFu;
  /// Largest allocatable node index: one below kNil, so a fresh index can
  /// never collide with the null link nor overflow Edge's 31-bit index
  /// field.  The old layout checked this at the caller (and an earlier
  /// version not at all -- the arena-bounds bug this store fixes for good);
  /// here allocate() enforces it unconditionally.
  static constexpr std::uint32_t kMaxIndex = kNil - 1;
  /// Saturating reference count (terminal and projection pins park here).
  static constexpr std::uint32_t kMaxRef =
      std::numeric_limits<std::uint32_t>::max();

  explicit NodeStore(std::size_t initialCapacity);

  // ---- arena ---------------------------------------------------------------

  /// Arena extent: allocated + free-listed nodes + the terminal.
  [[nodiscard]] std::size_t size() const { return nodes_.size(); }

  /// Nodes currently allocated (live + dead-awaiting-GC).
  [[nodiscard]] std::uint64_t allocated() const {
    return nodes_.size() - freeCount_;
  }

  [[nodiscard]] std::uint64_t freeCount() const { return freeCount_; }

  // ---- packed-field accessors ----------------------------------------------

  [[nodiscard]] unsigned varOf(std::uint32_t i) const {
    return unpackVar(nodes_[i]);
  }
  [[nodiscard]] Edge hiOf(std::uint32_t i) const {
    return unpackHi(nodes_[i]);
  }
  [[nodiscard]] Edge loOf(std::uint32_t i) const {
    return unpackLo(nodes_[i]);
  }
  [[nodiscard]] std::uint32_t nextOf(std::uint32_t i) const {
    return unpackNext(nodes_[i]);
  }
  [[nodiscard]] bool isFree(std::uint32_t i) const {
    return unpackVar(nodes_[i]) == kFreeVar;
  }

  /// Rewrites a node's function fields in place, keeping its chain link.
  /// Reordering (and the corruption hooks) mutate nodes this way; ordinary
  /// construction goes through allocate().
  void setFields(std::uint32_t i, unsigned var, Edge hi, Edge lo) {
    packFields(nodes_[i], var, hi, lo);
  }
  void setHi(std::uint32_t i, Edge hi) { packHi(nodes_[i], hi); }
  void setNext(std::uint32_t i, std::uint32_t next) {
    packNext(nodes_[i], next);
  }

  // ---- unique table --------------------------------------------------------

  [[nodiscard]] std::size_t bucketCount() const { return buckets_.size(); }

  /// Head index of bucket b's chain (kNil when empty).  The structural
  /// checker walks chains through this; ordinary lookups use find().
  [[nodiscard]] std::uint32_t bucketHead(std::size_t b) const {
    return buckets_[b];
  }

  /// Bucket of a (var, hi, lo) triple at the current table size.
  [[nodiscard]] std::size_t hashOf(unsigned var, Edge hi, Edge lo) const;

  /// Hash-consing probe: the index of the live node carrying the triple, or
  /// kNil.  Chain nodes visited are added to *chainSteps (stats hook).
  [[nodiscard]] std::uint32_t find(unsigned var, Edge hi, Edge lo,
                                   std::uint64_t* chainSteps) const;

  /// True when the next allocate() must extend the arena (free list empty).
  [[nodiscard]] bool wouldGrow() const { return freeHead_ == kNil; }

  /// True when the arena has outgrown the table (load factor above 1).
  [[nodiscard]] bool needsRehash() const {
    return nodes_.size() > buckets_.size();
  }

  /// Allocates a node carrying (var, hi, lo) -- from the free list when
  /// possible, else by extending the arena -- and links it into its bucket.
  /// Throws ResourceLimitError(kNodeIndexSpace) before any state changes
  /// when a fresh index would exceed the index cap, so the store stays
  /// fully usable after the throw.
  std::uint32_t allocate(unsigned var, Edge hi, Edge lo);

  /// Rebuilds every chain at the given bucket count (a power of two).
  void rehash(std::size_t newBucketCount);

  /// Links node i into the bucket of its current triple (front insertion).
  void linkIntoBucket(std::uint32_t i);

  /// Unlinks node i from its bucket's chain.  Returns false when the node
  /// is not on it (completeness hole -- the caller decides how loud to be).
  [[nodiscard]] bool unlinkFromBucket(std::uint32_t i);

  // ---- free list -----------------------------------------------------------

  /// Drops the whole free list (GC rebuilds it during the sweep).
  void resetFreeList() {
    freeHead_ = kNil;
    freeCount_ = 0;
  }

  /// Marks node i free and pushes it onto the free list.
  void pushFree(std::uint32_t i) {
    packFields(nodes_[i], kFreeVar, 0, 0);
    packNext(nodes_[i], freeHead_);
    freeHead_ = i;
    ++freeCount_;
  }

  [[nodiscard]] std::uint32_t freeHead() const { return freeHead_; }

  /// Test hook (NodeSurgeon): desynchronizes the free-list counter.
  void bumpFreeCount(std::uint64_t delta) { freeCount_ += delta; }

  // ---- concurrent (shared-apply) mode --------------------------------------
  //
  // Between beginConcurrent() and endConcurrent() the store is shared by the
  // parallel apply workers (ROADMAP item 1).  The serial mutators above must
  // not run; the only legal operations are findShared()/allocateShared(),
  // the read-only field accessors (published nodes are immutable for the
  // whole region), and allocatedShared().  Inside a region:
  //
  //   * allocation is bump-only from a pre-sized extent (the free list is
  //     ignored; it is consumed again once the region ends),
  //   * insertion is lock-free: a fresh node is written with the claim bit
  //     (word0 bit 63, the spare docs/node_layout.md reserved) set, then
  //     published by a CAS on its bucket head with the chain link folded
  //     into word0 and the claim bit cleared in the same release store,
  //   * a racing duplicate is abandoned onto a lock-free list and
  //     free-listed at the next quiesce -- canonicity is preserved because
  //     only the CAS winner's index ever escapes,
  //   * the unique table never rehashes and the arena vector never
  //     reallocates (beginConcurrent sized both), so references stay stable.
  //
  // GC, rehash, reordering, and every other serial mutator run only at
  // quiesced safe points outside regions (docs/parallel.md).

  /// Internal control-flow signal: a worker ran the pre-sized extent dry.
  /// The manager quiesces, grows the slack, and retries the operation --
  /// nothing allocated so far is lost (published nodes stay canonical).
  struct GrowRequest {};

  /// Enters concurrent mode: extends the arena by ~`slack` nodes of bump
  /// headroom (clamped to the index cap) and pre-sizes the unique table so
  /// no growth is needed mid-region.
  void beginConcurrent(std::size_t slack);

  /// Leaves concurrent mode: shrinks the arena back to the bump extent
  /// (restoring the serial size()/allocated() invariants) and free-lists
  /// every abandoned duplicate.
  void endConcurrent();

  [[nodiscard]] bool concurrent() const { return concurrent_; }

  /// Lock-free hash-consing probe (acquire on the bucket head; all nodes on
  /// the chain were release-published, so their words read consistently).
  [[nodiscard]] std::uint32_t findShared(unsigned var, Edge hi, Edge lo,
                                         std::uint64_t* chainSteps);

  /// Lock-free find-or-add.  Returns the canonical index of (var, hi, lo):
  /// the freshly published node (*createdNew = true) or the racing winner
  /// already on the chain (*createdNew = false, own ticket abandoned).
  /// Throws ResourceLimitError(kNodeIndexSpace) at the index cap and
  /// GrowRequest when the pre-sized extent is exhausted; both leave the
  /// extent hole-free.
  std::uint32_t allocateShared(unsigned var, Edge hi, Edge lo,
                               std::uint64_t* chainSteps,
                               std::uint64_t* casRetries, bool* createdNew);

  /// Allocated-node count valid inside a region (bump extent minus the
  /// untouched free list); the concurrent analogue of allocated().
  [[nodiscard]] std::uint64_t allocatedShared() const {
    // relaxed: a monotonic watermark polled for limit checks; no ordering
    // with the allocating workers' other writes is needed.
    return bump_.load(std::memory_order_relaxed) - freeCount_;
  }

  /// True while node i carries the claim (in-flight) mark.  Outside a
  /// region no node may: the structural checker audits exactly that.
  [[nodiscard]] bool isClaimed(std::uint32_t i) const {
    return unpackClaimed(nodes_[i]);
  }

  // ---- external reference counts (sparse side table) -----------------------

  /// Bumps the count (saturating at kMaxRef).
  void ref(std::uint32_t i) {
    std::uint32_t& r = refs_[i];
    if (r != kMaxRef) ++r;
  }

  /// Drops the count; entries erase at zero so the table stays sparse.
  /// Returns true when the count was already zero -- an underflow the
  /// caller must report (a double release is a real bug, see
  /// BddManager::deref).
  bool deref(std::uint32_t i) {
    const auto it = refs_.find(i);
    if (it == refs_.end()) return true;
    if (it->second != kMaxRef && --it->second == 0) refs_.erase(it);
    return false;
  }

  [[nodiscard]] std::uint32_t refOf(std::uint32_t i) const {
    const auto it = refs_.find(i);
    return it == refs_.end() ? 0 : it->second;
  }

  /// Forces a count (test hook; also used by GC-root surgery).  Zero erases.
  void setRef(std::uint32_t i, std::uint32_t r) {
    if (r == 0) {
      refs_.erase(i);
    } else {
      refs_[i] = r;
    }
  }

  /// The root set: every (index, count) pair with a nonzero count.  GC and
  /// the structural checker iterate this instead of scanning the arena.
  [[nodiscard]] const std::unordered_map<std::uint32_t, std::uint32_t>& refs()
      const {
    return refs_;
  }

  // ---- index-space cap -----------------------------------------------------

  /// Lowers the allocation cap below kMaxIndex so tests can drive the
  /// index-space guard without building 2^31 nodes.
  void setIndexCapForTesting(std::uint32_t cap) { indexCap_ = cap; }

  [[nodiscard]] std::uint32_t indexCap() const { return indexCap_; }

  // ---- external-memory (spill) tier ----------------------------------------
  //
  // The arena is a PagedStore (src/xmem/): until the tier engages it is an
  // all-resident paged vector; after engageSpill() at most a budgeted number
  // of pages stay in RAM and the rest round-trip through a write-back page
  // file under the armed spill directory.  Engagement is one-way for the
  // store's lifetime, never happens inside a concurrent region (the manager
  // forces the serial apply path once spilling), and is invisible to every
  // accessor above -- docs/external_memory.md is the full contract.

  /// Arms the tier: records where the page file would be created.  Arming
  /// alone changes nothing -- engageSpill() mounts it.
  void armSpill(std::string dir) { spillDir_ = std::move(dir); }

  [[nodiscard]] bool spillArmed() const { return !spillDir_.empty(); }
  [[nodiscard]] bool spillEngaged() const { return nodes_.engaged(); }

  /// Mounts the spill tier: creates the page file and evicts the arena down
  /// to roughly `budgetNodes` resident records (floored at the pager's
  /// minimum).  No-op when already engaged; BddUsageError when not armed;
  /// xmem::IoError when the page file cannot be created.  Must not be
  /// called inside a concurrent region.
  void engageSpill(std::uint64_t budgetNodes);

  /// Pager counters/latency histograms; nullptr when the tier is not armed
  /// (so unspilled telemetry stays byte-identical).
  [[nodiscard]] const xmem::PagerStats* pagerStats() const {
    return spillArmed() ? &pagerStats_ : nullptr;
  }

  /// Occupancy snapshot for icbdd_doctor --dump-store and /statusz.
  struct SpillInfo {
    bool armed = false;
    bool engaged = false;
    std::size_t pageCount = 0;      ///< pages the arena spans
    std::size_t residentPages = 0;  ///< pages holding an in-RAM buffer
    std::size_t budgetPages = 0;    ///< resident cap once engaged
    std::uint64_t pageBytes = 0;    ///< bytes per page
    std::uint64_t spillFileBytes = 0;  ///< page-file size on disk
  };
  [[nodiscard]] SpillInfo spillInfo() const;

  /// Bytes of resident arena buffers right now (== size() * 16 rounded up
  /// to pages until the tier engages).
  [[nodiscard]] std::uint64_t residentArenaBytes() const {
    return nodes_.residentBytes();
  }

  /// Page-table bookkeeping overhead of the paged arena.
  [[nodiscard]] std::uint64_t pageTableBytes() const {
    return nodes_.metadataBytes();
  }

 private:
  // The packing lives in these private helpers only: public surfaces (this
  // class's accessors included) speak (var, hi, lo, next), never words.
  static constexpr unsigned kNextShift = 32;
  static constexpr unsigned kVarShift = 32;
  static constexpr std::uint64_t kEdgeMask = 0xFFFFFFFFull;
  static constexpr std::uint64_t kNextMask = 0x7FFFFFFFull;
  static constexpr std::uint64_t kVarMask = (1ull << kVarBits) - 1;
  /// word0 bit 63 -- the reserved spare: set between a shared allocation's
  /// ticket grab and its publish/abandon (the in-flight marker).  Always
  /// clear on published, free-listed, and serially built nodes.
  static constexpr std::uint64_t kClaimBit = 1ull << 63;

  static unsigned unpackVar(const PackedNode& n) {
    return static_cast<unsigned>((n.word1 >> kVarShift) & kVarMask);
  }
  static Edge unpackHi(const PackedNode& n) {
    return static_cast<Edge>(n.word0 & kEdgeMask);
  }
  static Edge unpackLo(const PackedNode& n) {
    return static_cast<Edge>(n.word1 & kEdgeMask);
  }
  static std::uint32_t unpackNext(const PackedNode& n) {
    return static_cast<std::uint32_t>((n.word0 >> kNextShift) & kNextMask);
  }
  static bool unpackClaimed(const PackedNode& n) {
    return (n.word0 & kClaimBit) != 0;
  }
  static void packFields(PackedNode& n, unsigned var, Edge hi, Edge lo) {
    n.word0 = (n.word0 & ~kEdgeMask) | static_cast<std::uint64_t>(hi);
    n.word1 = (static_cast<std::uint64_t>(var & kVarMask) << kVarShift) |
              static_cast<std::uint64_t>(lo);
  }
  static void packHi(PackedNode& n, Edge hi) {
    n.word0 = (n.word0 & ~kEdgeMask) | static_cast<std::uint64_t>(hi);
  }
  static void packNext(PackedNode& n, std::uint32_t next) {
    n.word0 = (n.word0 & ~(kNextMask << kNextShift)) |
              (static_cast<std::uint64_t>(next & kNextMask) << kNextShift);
  }

  /// Shared chain walk from head `i` (concurrent mode).  Non-const because
  /// std::atomic_ref over const words arrives only with C++26.
  std::uint32_t chainSearch(std::uint32_t i, unsigned var, Edge hi, Edge lo,
                            std::uint64_t* chainSteps);

  /// Parks a claimed-but-unpublished node on the abandoned list (lock-free
  /// push); endConcurrent() free-lists it.
  void abandonShared(std::uint32_t index);

  xmem::PagedStore<PackedNode> nodes_;
  std::vector<std::uint32_t> buckets_;  ///< unique-table heads
  std::uint32_t freeHead_ = kNil;
  std::uint64_t freeCount_ = 0;
  std::unordered_map<std::uint32_t, std::uint32_t> refs_;
  std::uint32_t indexCap_ = kMaxIndex;

  // spill-tier state (docs/external_memory.md)
  std::string spillDir_;                      ///< empty: tier not armed
  std::unique_ptr<xmem::PageFile> spillFile_; ///< created at engageSpill()
  xmem::PagerStats pagerStats_;

  // concurrent-mode state (meaningful only between begin/endConcurrent)
  bool concurrent_ = false;
  std::size_t capacity_ = 0;                    ///< arena extent incl. slack
  std::atomic<std::uint32_t> bump_{0};          ///< next fresh ticket
  std::atomic<std::uint32_t> abandonedHead_{kNil};  ///< CAS-loser list
};

}  // namespace icb
