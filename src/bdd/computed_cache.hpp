// ComputedCache: the manager's lossy operation cache, shareable by the
// parallel apply workers (ROADMAP item 1).
//
// The table is open-addressed (direct-mapped, like the vector<CacheEntry>
// it replaces) with each entry spread over three 64-bit words:
//
//   key word a   bits 0..31  f        bits 32..63  g
//   key word b   bits 0..31  h        bits 32..39  op
//   tag word     bits 0..31  result   bits 32..62  sequence   bit 63  writing
//
// Entries are published with a seqlock protocol built on the tag word:
//
//   writer   claim the entry by a CAS of the tag to (sequence+1 | writing);
//            a failed CAS means another writer got there first and the
//            insert is simply dropped (the cache is lossy by contract, so
//            losing a race costs a future recomputation, never correctness).
//            Store the two key words, then release-store the final tag
//            (result | sequence+1, writing clear) -- the store that makes
//            the entry visible.
//   reader   acquire-load the tag; a set writing bit or a tag that changed
//            across re-validation means a concurrent writer -- report a
//            miss (again: lossy, not wrong).  Otherwise compare the full
//            key words; false positives are impossible because the compare
//            is exact, exactly as the serial cache compared (op, f, g, h).
//
// Under a single thread every CAS succeeds and every validation passes, so
// the serial hit/miss sequence -- and therefore every trace, stats, and
// bench byte -- is identical to the historical vector<CacheEntry> cache.
//
// Growth (the adaptive resize from PR 3) is NOT concurrency-safe and is
// only invoked at quiesced safe points between parallel regions; the
// manager gates it on its region epoch (docs/parallel.md).
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "bdd/edge.hpp"

namespace icb {

class ComputedCache {
 public:
  /// One decoded entry, the shape consumers (cache auditor, GC sweep, the
  /// surgeon hooks) traffic in.  `op` is the manager's BddOp as a raw
  /// integer so this header does not depend on manager.hpp.
  struct Entry {
    Edge f = 0, g = 0, h = 0;
    std::uint32_t op = 0;  ///< 0 == BddOp::kInvalid == empty slot
    Edge result = 0;
  };

  explicit ComputedCache(std::size_t entries) : slots_(entries) {}

  [[nodiscard]] std::size_t size() const { return slots_.size(); }

  /// Slot of a key at the current table size (a power of two).  The hash is
  /// the historical one (two mix64 rounds) so serial slot assignment -- and
  /// with it every conflict-eviction decision -- is unchanged.
  [[nodiscard]] std::size_t slotOf(std::uint32_t op, Edge f, Edge g,
                                   Edge h) const {
    const std::uint64_t k1 =
        (static_cast<std::uint64_t>(f) << 32) | static_cast<std::uint64_t>(g);
    const std::uint64_t k2 = (static_cast<std::uint64_t>(h) << 8) |
                             static_cast<std::uint64_t>(op);
    return (mix64(k1) ^ mix64(k2 * 0x9E3779B97F4A7C15ull)) &
           (slots_.size() - 1);
  }

  /// Probe.  Returns true and stores the result on an exact key hit.  A slot
  /// mid-write (or rewritten during validation) counts one unit into
  /// *races and reports a miss -- the "lossy on race" half of the protocol.
  /// (Non-const because std::atomic_ref over const words is a C++26
  /// addition; the probe itself mutates nothing but the race counter.)
  bool lookup(std::uint32_t op, Edge f, Edge g, Edge h, Edge* out,
              std::uint64_t* races) {
    Slot& s = slots_[slotOf(op, f, g, h)];
    const std::uint64_t t1 =
        std::atomic_ref<std::uint64_t>(s.tag).load(std::memory_order_acquire);
    if ((t1 & kWritingBit) != 0) {
      ++*races;
      return false;
    }
    // Acquire on each key load keeps the re-validation load below from
    // being hoisted above either of them -- the read-read ordering a
    // seqlock needs.  (The textbook formulation is relaxed loads plus an
    // acquire fence, but ThreadSanitizer does not model standalone fences;
    // per-load acquire is equivalent here and free on x86/ARM acquire
    // loads.)
    const std::uint64_t a =
        std::atomic_ref<std::uint64_t>(s.a).load(std::memory_order_acquire);
    const std::uint64_t b =
        std::atomic_ref<std::uint64_t>(s.b).load(std::memory_order_acquire);
    // relaxed: the acquire loads above keep this validation load ordered
    // after the key loads; equality with t1 proves the snapshot was
    // consistent.
    const std::uint64_t t2 =
        std::atomic_ref<std::uint64_t>(s.tag).load(std::memory_order_relaxed);
    if (t1 != t2) {
      ++*races;
      return false;
    }
    if (a != packA(f, g) || b != packB(h, op)) return false;
    *out = static_cast<Edge>(t1 & 0xFFFFFFFFull);
    return true;
  }

  /// Publish (always-overwrite, like the serial cache).  Losing the claim
  /// CAS to a concurrent writer drops the insert and counts into *races.
  void insert(std::uint32_t op, Edge f, Edge g, Edge h, Edge result,
              std::uint64_t* races) {
    Slot& s = slots_[slotOf(op, f, g, h)];
    std::atomic_ref<std::uint64_t> tag(s.tag);
    // relaxed: claim-CAS failure below is the only consumer of this value;
    // a stale read just makes the CAS fail and the insert drop (lossy).
    std::uint64_t t0 = tag.load(std::memory_order_relaxed);
    if ((t0 & kWritingBit) != 0) {
      ++*races;
      return;
    }
    const std::uint64_t seq = ((t0 >> 32) + 1) & kSeqMask;
    // relaxed: on CAS failure nothing is read from the slot -- the insert
    // just drops; only the success (acquire) path proceeds to write.
    if (!tag.compare_exchange_strong(t0, (seq << 32) | kWritingBit,
                                     std::memory_order_acquire,
                                     std::memory_order_relaxed)) {
      ++*races;
      return;
    }
    // relaxed: these key stores are ordered before the publishing
    // release-store of the tag below; readers never look at them unless
    // that tag validates.
    std::atomic_ref<std::uint64_t>(s.a).store(packA(f, g),
                                              std::memory_order_relaxed);
    // relaxed: same seqlock write-side protocol as the store above.
    std::atomic_ref<std::uint64_t>(s.b).store(packB(h, op),
                                              std::memory_order_relaxed);
    tag.store((seq << 32) | static_cast<std::uint64_t>(result),
              std::memory_order_release);
  }

  // ---- quiesced-only surface (auditor, GC sweep, surgeon, resize) ---------
  // These read and write the words plainly; callers run them only while no
  // parallel region is active (the manager's safe-point contract).

  [[nodiscard]] Entry entryAt(std::size_t slot) const {
    const Slot& s = slots_[slot];
    Entry e;
    e.f = static_cast<Edge>(s.a & 0xFFFFFFFFull);
    e.g = static_cast<Edge>(s.a >> 32);
    e.h = static_cast<Edge>(s.b & 0xFFFFFFFFull);
    e.op = static_cast<std::uint32_t>((s.b >> 32) & 0xFFull);
    e.result = static_cast<Edge>(s.tag & 0xFFFFFFFFull);
    return e;
  }

  void setEntryAt(std::size_t slot, const Entry& e) {
    Slot& s = slots_[slot];
    s.a = packA(e.f, e.g);
    s.b = packB(e.h, e.op);
    const std::uint64_t seq = ((s.tag >> 32) + 1) & kSeqMask;
    s.tag = (seq << 32) | static_cast<std::uint64_t>(e.result);
  }

  void clearAt(std::size_t slot) { setEntryAt(slot, Entry{}); }

  /// Replaces the table with a fresh one of `entries` slots, dropping every
  /// entry.  The manager's resize (which *keeps* entries) decodes and
  /// re-inserts via entryAt/setEntryAt around this call.
  void reset(std::size_t entries) {
    slots_.assign(entries, Slot{});
  }

 private:
  struct Slot {
    std::uint64_t tag = 0;  ///< result | sequence<<32 | writing<<63
    std::uint64_t a = 0;    ///< f | g<<32
    std::uint64_t b = 0;    ///< h | op<<32
  };
  static_assert(sizeof(Slot) == 24, "three words per cache entry");

  static constexpr std::uint64_t kWritingBit = 1ull << 63;
  static constexpr std::uint64_t kSeqMask = 0x7FFFFFFFull;

  static std::uint64_t packA(Edge f, Edge g) {
    return static_cast<std::uint64_t>(f) |
           (static_cast<std::uint64_t>(g) << 32);
  }
  static std::uint64_t packB(Edge h, std::uint32_t op) {
    return static_cast<std::uint64_t>(h) |
           (static_cast<std::uint64_t>(op & 0xFFu) << 32);
  }

  /// 64-bit mix (Murmur3 finalizer); the historical cache hash.
  static std::uint64_t mix64(std::uint64_t x) {
    x ^= x >> 33;
    x *= 0xFF51AFD7ED558CCDull;
    x ^= x >> 33;
    x *= 0xC4CEB9FE1A85EC53ull;
    x ^= x >> 33;
    return x;
  }

  std::vector<Slot> slots_;
};

}  // namespace icb
