// Dynamic variable reordering: in-place adjacent-level swap and Rudell-style
// sifting.  The paper keeps a fixed (interleaved) order, so reordering is an
// extension here -- exposed for experiments and exercised by the test suite.
//
// The in-place swap follows the classic recipe for packages with complement
// edges and the "then-arc never complemented" rule:
//   * only level-l nodes with a level-(l+1) child need rewriting,
//   * each such node (x, f1, f0) becomes
//       (y, mk(x, f1|y, f0|y), mk(x, f1|!y, f0|!y))
//     mutated in place so every parent/handle stays valid (the node keeps
//     denoting the same function),
//   * rewritten triples cannot collide with each other (the rewrite map is
//     injective) nor with pre-existing y-nodes (those cannot reach x-nodes,
//     since x was above y), so canonicity is preserved,
//   * the unique table is rebuilt afterwards; the computed cache stays valid
//     because cached entries denote functions, not shapes.
#include <algorithm>
#include <numeric>

#include "bdd/manager.hpp"
#include "check/check.hpp"
#include "check/structural_checker.hpp"
#include "obs/trace.hpp"
#include "util/timer.hpp"

namespace icb {

void BddManager::swapAdjacentLevels(unsigned level) {
  if (level + 1 >= level2var_.size()) {
    throw BddUsageError("swapAdjacentLevels: level out of range");
  }
  const unsigned x = level2var_[level];
  const unsigned y = level2var_[level + 1];

  // Collect the level-`level` nodes that actually reference variable y.
  std::vector<std::uint32_t> rewrite;
  for (std::uint32_t i = 1; i < nodes_.size(); ++i) {
    const Node& n = nodes_[i];
    if (n.var != x) continue;
    const bool hiY = !edgeIsConstant(n.hi) && nodes_[edgeIndex(n.hi)].var == y;
    const bool loY = !edgeIsConstant(n.lo) && nodes_[edgeIndex(n.lo)].var == y;
    if (hiY || loY) rewrite.push_back(i);
  }

  for (const std::uint32_t i : rewrite) {
    const Edge f1 = nodes_[i].hi;  // plain by canonicity
    const Edge f0 = nodes_[i].lo;  // possibly complemented

    const bool hiY = !edgeIsConstant(f1) && nodes_[edgeIndex(f1)].var == y;
    const bool loY = !edgeIsConstant(f0) && nodes_[edgeIndex(f0)].var == y;
    const Edge f11 = hiY ? edgeThen(f1) : f1;
    const Edge f10 = hiY ? edgeElse(f1) : f1;
    const Edge f01 = loY ? edgeThen(f0) : f0;
    const Edge f00 = loY ? edgeElse(f0) : f0;

    const Edge newHi = mk(x, f11, f01);
    const Edge newLo = mk(x, f10, f00);
    // newHi is plain: f11 is plain (then-arc of a plain edge), and the
    // f11 == f01 collapse can only yield a plain edge in that case too.
    Node& n = nodes_[i];
    n.var = y;
    n.hi = newHi;
    n.lo = newLo;
  }

  level2var_[level] = y;
  level2var_[level + 1] = x;
  var2level_[x] = level + 1;
  var2level_[y] = level;
  ++stats_.reorderSwaps;

  // Rewritten nodes sit in stale unique-table chains; rebuild.
  rehash(buckets_.size());

  // The in-place mutation above is the single most invariant-hostile code
  // path in the package (canonicity, order, and table completeness are all
  // re-established by hand), so audit the whole arena after every swap.
  ICBDD_CHECK(kFull, auditArenaCreditingTime(*this));
}

std::int64_t BddManager::sift(std::uint64_t maxGrowth) {
  const Stopwatch siftWatch;
  const std::uint64_t swapsBefore = stats_.reorderSwaps;
  gc();
  const std::int64_t before = static_cast<std::int64_t>(liveNodes());
  if (maxGrowth == 0) maxGrowth = static_cast<std::uint64_t>(before) * 2 + 1024;

  const unsigned nvars = varCount();
  if (nvars < 2) return 0;

  // Sift variables in decreasing order of current subtable population.
  std::vector<std::uint64_t> population(nvars, 0);
  for (std::uint32_t i = 1; i < nodes_.size(); ++i) {
    if (nodes_[i].var != kFreeVar) ++population[nodes_[i].var];
  }
  std::vector<unsigned> order(nvars);
  std::iota(order.begin(), order.end(), 0u);
  std::sort(order.begin(), order.end(), [&](unsigned a, unsigned b) {
    return population[a] > population[b];
  });

  for (const unsigned v : order) {
    const unsigned start = var2level_[v];
    std::uint64_t best = liveNodes();
    unsigned bestLevel = start;
    std::uint64_t current = best;

    // Sweep down to the bottom...
    for (unsigned l = start; l + 1 < nvars; ++l) {
      swapAdjacentLevels(l);
      current = liveNodes();
      if (current < best) {
        best = current;
        bestLevel = l + 1;
      }
      if (current > best + maxGrowth) break;
    }
    // ...then up to the top...
    for (unsigned l = var2level_[v]; l > 0; --l) {
      swapAdjacentLevels(l - 1);
      current = liveNodes();
      if (current < best) {
        best = current;
        bestLevel = l - 1;
      }
      if (current > best + maxGrowth) break;
    }
    // ...and settle at the best position seen.
    while (var2level_[v] < bestLevel) swapAdjacentLevels(var2level_[v]);
    while (var2level_[v] > bestLevel) swapAdjacentLevels(var2level_[v] - 1);
    gc();
  }

  const std::int64_t after = static_cast<std::int64_t>(liveNodes());
  if (obs::traceEnabled()) {
    obs::emitGlobalEvent("reorder", *this,
                         obs::JsonObject()
                             .put("swaps", stats_.reorderSwaps - swapsBefore)
                             .put("live_before", static_cast<std::int64_t>(before))
                             .put("live_after", static_cast<std::int64_t>(after))
                             .put("wall_s", siftWatch.elapsedSeconds()));
  }
  ICBDD_CHECK(kFull, auditArenaCreditingTime(*this));
  return after - before;
}

}  // namespace icb
