// Dynamic variable reordering: in-place adjacent-level swap, grouped
// Rudell-style sifting, and the growth-triggered automatic reordering policy.
// The paper keeps a fixed (interleaved) order, so reordering is an extension
// here -- docs/reordering.md covers the trigger policy and the safe points.
//
// The in-place swap follows the classic recipe for packages with complement
// edges and the "then-arc never complemented" rule:
//   * only level-l nodes with a level-(l+1) child need rewriting,
//   * each such node (x, f1, f0) becomes
//       (y, mk(x, f1|y, f0|y), mk(x, f1|!y, f0|!y))
//     mutated in place so every parent/handle stays valid (the node keeps
//     denoting the same function),
//   * rewritten triples cannot collide with each other (the rewrite map is
//     injective) nor with pre-existing y-nodes (those cannot reach x-nodes,
//     since x was above y), so canonicity is preserved,
//   * rewritten nodes are unlinked from their unique-table chain before and
//     relinked after the mutation -- a swap costs O(level population), not a
//     full table rebuild,
//   * the computed cache stays valid because cached entries denote
//     functions, not shapes.
//
// Sifting maintains a ReorderBook instead of re-running the O(arena)
// liveNodes() mark pass after every swap: per-node in-degree from live
// nodes, a live flag, per-variable populations, and per-variable candidate
// lists.  Because the arena is acyclic, reference counting in the book is
// exact reachability; under ICBDD_CHECK_LEVEL=full every swap cross-checks
// the book against a fresh mark pass.
#include <algorithm>
#include <numeric>

#include "bdd/manager.hpp"
#include "check/check.hpp"
#include "check/structural_checker.hpp"
#include "obs/trace.hpp"
#include "util/timer.hpp"

namespace icb {

namespace {

/// One reorder-pause sample per sift() pass, interrupted or not, so the
/// bdd.reorder.pause_us distribution covers exactly what callers stalled on.
void recordReorderPause(BddStats& stats, const Stopwatch& watch) {
  const double us = watch.elapsedSeconds() * 1e6;
  stats.reorderPauseUs.record(us <= 0.0 ? 0
                                        : static_cast<std::uint64_t>(us));
}

}  // namespace

struct BddManager::ReorderBook {
  std::vector<std::uint32_t> parents;  ///< in-edges from live nodes
  std::vector<std::uint8_t> alive;     ///< reachable from an external root
  std::vector<std::uint64_t> popVar;   ///< live nodes per variable
  /// Candidate node indices per variable.  Entries go stale when a node is
  /// rewritten to another variable or freed; consumers filter on Node::var
  /// and deduplicate, so the lists only ever over-approximate.
  std::vector<std::vector<std::uint32_t>> varNodes;
  std::uint64_t live = 0;  ///< matches liveNodes(): live nodes + terminal
};

void BddManager::groupVars(std::span<const unsigned> vars) {
  for (const unsigned v : vars) {
    if (v >= varGroup_.size()) {
      throw BddUsageError("groupVars: var index out of range");
    }
  }
  const unsigned id = nextGroupId_++;
  for (const unsigned v : vars) varGroup_[v] = id;
}

void BddManager::initReorderBook(ReorderBook& book) const {
  // Precondition: gc() just ran, so every non-free node is reachable from an
  // external root and the one O(arena) pass below prices the whole sift.
  book.parents.assign(store_.size(), 0);
  book.alive.assign(store_.size(), 0);
  book.popVar.assign(varCount(), 0);
  book.varNodes.assign(varCount(), {});
  book.live = 1;  // the terminal
  for (std::uint32_t i = 1; i < store_.size(); ++i) {
    if (store_.isFree(i)) continue;
    const unsigned var = store_.varOf(i);
    book.alive[i] = 1;
    ++book.live;
    ++book.popVar[var];
    book.varNodes[var].push_back(i);
    const Edge hi = store_.hiOf(i);
    const Edge lo = store_.loOf(i);
    if (edgeIndex(hi) != 0) ++book.parents[edgeIndex(hi)];
    if (edgeIndex(lo) != 0) ++book.parents[edgeIndex(lo)];
  }
}

void BddManager::bookAcquire(ReorderBook& book, Edge e) {
  const std::uint32_t idx = edgeIndex(e);
  if (idx == 0) return;
  ++book.parents[idx];
  if (book.alive[idx] != 0) return;
  // Resurrection: mk() handed back a node that had gone dead during this
  // sift.  It re-enters the live set together with its whole cone.
  std::vector<std::uint32_t> stack{idx};
  while (!stack.empty()) {
    const std::uint32_t i = stack.back();
    stack.pop_back();
    if (book.alive[i] != 0) continue;
    book.alive[i] = 1;
    ++book.live;
    ++book.popVar[store_.varOf(i)];
    for (const Edge c : {store_.hiOf(i), store_.loOf(i)}) {
      const std::uint32_t ci = edgeIndex(c);
      if (ci == 0) continue;
      ++book.parents[ci];
      if (book.alive[ci] == 0) stack.push_back(ci);
    }
  }
}

void BddManager::bookRelease(ReorderBook& book, Edge e) {
  if (edgeIndex(e) == 0) return;
  // Every stack entry is a node that just lost one in-edge from a live node.
  std::vector<std::uint32_t> stack{edgeIndex(e)};
  while (!stack.empty()) {
    const std::uint32_t i = stack.back();
    stack.pop_back();
    --book.parents[i];
    if (book.parents[i] != 0 || store_.refOf(i) != 0 || book.alive[i] == 0) {
      continue;
    }
    book.alive[i] = 0;
    --book.live;
    --book.popVar[store_.varOf(i)];
    for (const Edge c : {store_.hiOf(i), store_.loOf(i)}) {
      if (edgeIndex(c) != 0) stack.push_back(edgeIndex(c));
    }
  }
}

Edge BddManager::mkBook(unsigned var, Edge hi, Edge lo, ReorderBook* book) {
  if (book == nullptr) return mk(var, hi, lo);
  const std::uint64_t createdBefore = stats_.nodesCreated;
  const Edge e = mk(var, hi, lo);
  if (stats_.nodesCreated != createdBefore) {
    // Fresh node: dead until a live parent acquires it, no in-edges yet.
    const std::uint32_t idx = edgeIndex(e);
    if (idx >= book->alive.size()) {
      book->parents.resize(store_.size(), 0);
      book->alive.resize(store_.size(), 0);
    }
    book->parents[idx] = 0;
    book->alive[idx] = 0;
    book->varNodes[var].push_back(idx);
  }
  return e;
}

void BddManager::auditReorderBook(const ReorderBook& book) const {
  const std::uint64_t marked = liveNodes();
  if (marked != book.live) {
    throw CheckFailure(ViolationKind::kReorderBookMismatch,
                       "incremental live count " + std::to_string(book.live) +
                           " != mark pass " + std::to_string(marked));
  }
}

void BddManager::unlinkFromBucket(std::uint32_t index) {
  if (!store_.unlinkFromBucket(index)) {
    throw CheckFailure(ViolationKind::kUniqueTableMiss,
                       "node " + std::to_string(index) +
                           " missing from its unique-table chain");
  }
}

void BddManager::swapLevelsInternal(unsigned level, ReorderBook* book) {
  const unsigned x = level2var_[level];
  const unsigned y = level2var_[level + 1];

  // Collect the level-`level` nodes that actually reference variable y.
  std::vector<std::uint32_t> rewrite;
  auto wantsRewrite = [&](std::uint32_t i) {
    const Edge hi = store_.hiOf(i);
    const Edge lo = store_.loOf(i);
    const bool hiY =
        !edgeIsConstant(hi) && store_.varOf(edgeIndex(hi)) == y;
    const bool loY =
        !edgeIsConstant(lo) && store_.varOf(edgeIndex(lo)) == y;
    return hiY || loY;
  };
  if (book != nullptr) {
    // The candidate list over-approximates (stale vars, duplicates from
    // nodes that bounced between levels); filter and compact it in place.
    std::vector<std::uint32_t>& candidates = book->varNodes[x];
    std::sort(candidates.begin(), candidates.end());
    candidates.erase(std::unique(candidates.begin(), candidates.end()),
                     candidates.end());
    std::erase_if(candidates,
                  [&](std::uint32_t i) { return store_.varOf(i) != x; });
    for (const std::uint32_t i : candidates) {
      if (wantsRewrite(i)) rewrite.push_back(i);
    }
  } else {
    for (std::uint32_t i = 1; i < store_.size(); ++i) {
      if (store_.varOf(i) == x && wantsRewrite(i)) rewrite.push_back(i);
    }
  }

  // Suspend the resource limits for the rewrite: mk() polling them mid-loop
  // could throw with the level half rewritten.  They are re-checked -- once,
  // with an unsampled clock read -- after the swap reaches a consistent
  // state, which caps a runaway sift at single-swap granularity.
  const ResourceLimits savedLimits = limits_;
  limits_ = ResourceLimits{};
  suppressRehash_ = true;

  for (const std::uint32_t i : rewrite) {
    unlinkFromBucket(i);
    const Edge f1 = store_.hiOf(i);  // plain by canonicity
    const Edge f0 = store_.loOf(i);  // possibly complemented

    const bool hiY =
        !edgeIsConstant(f1) && store_.varOf(edgeIndex(f1)) == y;
    const bool loY =
        !edgeIsConstant(f0) && store_.varOf(edgeIndex(f0)) == y;
    const Edge f11 = hiY ? edgeThen(f1) : f1;
    const Edge f10 = hiY ? edgeElse(f1) : f1;
    const Edge f01 = loY ? edgeThen(f0) : f0;
    const Edge f00 = loY ? edgeElse(f0) : f0;

    const Edge newHi = mkBook(x, f11, f01, book);
    const Edge newLo = mkBook(x, f10, f00, book);
    // newHi is plain: f11 is plain (then-arc of a plain edge), and the
    // f11 == f01 collapse can only yield a plain edge in that case too.
    const bool wasAlive = book != nullptr && book->alive[i] != 0;
    if (wasAlive) {
      // Acquire before releasing so shared grandchildren never transit
      // through a spurious dead state.
      bookAcquire(*book, newHi);
      bookAcquire(*book, newLo);
    }
    store_.setFields(i, y, newHi, newLo);
    store_.linkIntoBucket(i);
    if (book != nullptr) {
      book->varNodes[y].push_back(i);
      if (wasAlive) {
        --book->popVar[x];
        ++book->popVar[y];
        bookRelease(*book, f1);
        bookRelease(*book, f0);
      }
    }
  }

  suppressRehash_ = false;
  // Table growth deferred by the flag above happens now, on a consistent
  // table (a mid-loop rehash would have re-inserted pending nodes under
  // their stale triples).
  std::size_t wantBuckets = store_.bucketCount();
  while (store_.size() > wantBuckets) wantBuckets *= 2;
  if (wantBuckets != store_.bucketCount()) store_.rehash(wantBuckets);

  level2var_[level] = y;
  level2var_[level + 1] = x;
  var2level_[x] = level + 1;
  var2level_[y] = level;
  ++stats_.reorderSwaps;
  limits_ = savedLimits;

  // The in-place mutation above is the single most invariant-hostile code
  // path in the package (canonicity, order, and table completeness are all
  // re-established by hand), so audit the whole arena after every swap.
  // Both audits credit their wall time back to the deadline.
  ICBDD_CHECK(kFull, auditArenaCreditingTime(*this));
  if (book != nullptr) {
    ICBDD_CHECK(kFull, auditReorderBook(*book));
  }

  // Per-swap limit check, at a state every caller may safely abandon.
  if (limits_.maxNodes != 0 && allocatedNodes() > limits_.maxNodes) {
    throw ResourceLimitError(ResourceKind::kNodes);
  }
  if (limits_.deadline.isSet() && limits_.deadline.expired()) {
    throw ResourceLimitError(ResourceKind::kTime);
  }
}

void BddManager::swapAdjacentLevels(unsigned level) {
  if (level + 1 >= level2var_.size()) {
    throw BddUsageError("swapAdjacentLevels: level out of range");
  }
  swapLevelsInternal(level, nullptr);
}

std::int64_t BddManager::sift(std::uint64_t maxGrowth) {
  const unsigned nvars = varCount();
  if (nvars < 2) return 0;
  const Stopwatch siftWatch;
  const std::uint64_t swapsBefore = stats_.reorderSwaps;
  gc();

  ReorderBook book;
  initReorderBook(book);
  const std::int64_t before = static_cast<std::int64_t>(book.live);
  if (maxGrowth == 0) maxGrowth = static_cast<std::uint64_t>(before) * 2 + 1024;

  // Carve the current order into blocks: a maximal run of adjacent levels
  // sharing a registered group moves as one unit, everything else is a
  // singleton.  A group torn apart by manual swaps simply yields several
  // blocks.  Block membership and internal order never change below, so a
  // block is identified by its member variables (top to bottom).
  std::vector<std::vector<unsigned>> blocks;
  std::vector<std::size_t> blockOf(nvars);
  for (unsigned l = 0; l < nvars;) {
    const unsigned v = level2var_[l];
    std::vector<unsigned> members{v};
    unsigned next = l + 1;
    if (varGroup_[v] != kNoGroup) {
      while (next < nvars && varGroup_[level2var_[next]] == varGroup_[v]) {
        members.push_back(level2var_[next]);
        ++next;
      }
    }
    for (const unsigned m : members) blockOf[m] = blocks.size();
    blocks.push_back(std::move(members));
    l = next;
  }

  const auto blockTop = [&](std::size_t b) {
    return var2level_[blocks[b].front()];
  };
  // Exchanges block `b` with the block directly below it: the bottom member
  // sinks past the whole lower block, then the next one, ... -- m*n adjacent
  // swaps, both blocks keeping their internal order.
  const auto swapWithBelow = [&](std::size_t b) {
    const unsigned top = blockTop(b);
    const auto m = static_cast<unsigned>(blocks[b].size());
    const std::size_t lower = blockOf[level2var_[top + m]];
    const auto n = static_cast<unsigned>(blocks[lower].size());
    for (unsigned i = 0; i < m; ++i) {
      for (unsigned j = 0; j < n; ++j) {
        swapLevelsInternal(top + m - 1 - i + j, &book);
      }
    }
  };
  const auto swapWithAbove = [&](std::size_t b) {
    swapWithBelow(blockOf[level2var_[blockTop(b) - 1]]);
  };
  // Swaps strand their rewritten-out children as dead allocations; the book
  // keeps the *live* count bounded, but without collections the arena (and
  // with it the maxNodes accounting) would churn without bound across the
  // O(n^2) swaps of a full pass.  Collect whenever dead nodes dominate.
  const auto collectChurn = [&] {
    if (allocatedNodes() > book.live * 4 + 4096) gc();
  };

  // Sift blocks in decreasing order of live population.
  std::vector<std::size_t> order(blocks.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  const auto population = [&](std::size_t b) {
    std::uint64_t total = 0;
    for (const unsigned v : blocks[b]) total += book.popVar[v];
    return total;
  };
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return population(a) > population(b);
  });

  bool interrupted = false;
  try {
    for (const std::size_t b : order) {
      const auto m = static_cast<unsigned>(blocks[b].size());
      std::uint64_t best = book.live;
      unsigned bestTop = blockTop(b);

      // Sweep down to the bottom...
      while (blockTop(b) + m < nvars) {
        swapWithBelow(b);
        collectChurn();
        if (book.live < best) {
          best = book.live;
          bestTop = blockTop(b);
        }
        if (book.live > best + maxGrowth) break;
      }
      // ...then up to the top...
      while (blockTop(b) > 0) {
        swapWithAbove(b);
        collectChurn();
        if (book.live < best) {
          best = book.live;
          bestTop = blockTop(b);
        }
        if (book.live > best + maxGrowth) break;
      }
      // ...and settle at the best position seen.  The other blocks' relative
      // order is untouched by moving this one, so every recorded top is
      // reachable exactly.
      while (blockTop(b) > bestTop) {
        swapWithAbove(b);
        collectChurn();
      }
      while (blockTop(b) < bestTop) {
        swapWithBelow(b);
        collectChurn();
      }
    }
  } catch (const ResourceLimitError&) {
    // swapLevelsInternal only throws between swaps, at a consistent state:
    // account for the partial pass and let the engine report its capped
    // verdict.  Dead nodes parked in the arena are normal pre-GC state.
    interrupted = true;
    ++stats_.reorderInterrupted;
    ++stats_.reorderRuns;
    recordReorderPause(stats_, siftWatch);
    if (obs::traceEnabled()) {
      obs::emitGlobalEvent(
          "reorder", *this,
          obs::JsonObject()
              .put("swaps", stats_.reorderSwaps - swapsBefore)
              .put("live_before", before)
              .put("live_after", static_cast<std::int64_t>(book.live))
              .put("interrupted", true)
              .put("wall_s", siftWatch.elapsedSeconds()));
    }
    throw;
  }

  gc();  // reclaim the intermediates the sweeps abandoned
  const std::int64_t after = static_cast<std::int64_t>(book.live);
  ++stats_.reorderRuns;
  recordReorderPause(stats_, siftWatch);
  if (after < before) {
    stats_.reorderSavedNodes += static_cast<std::uint64_t>(before - after);
  }
  if (obs::traceEnabled()) {
    obs::emitGlobalEvent("reorder", *this,
                         obs::JsonObject()
                             .put("swaps", stats_.reorderSwaps - swapsBefore)
                             .put("live_before", before)
                             .put("live_after", after)
                             .put("interrupted", interrupted)
                             .put("wall_s", siftWatch.elapsedSeconds()));
  }
  ICBDD_CHECK(kFull, auditArenaCreditingTime(*this));
  return after - before;
}

// ---------------------------------------------------------------------------
// growth-triggered automatic reordering

void BddManager::maybeAutoReorderPostGc() {
  if (!options_.autoReorder || inReorder_) return;
  // A collection just finished, so allocatedNodes() is the exact live count.
  const std::uint64_t live = allocatedNodes();
  if (reorderBaseline_ == 0) {
    // First safe point with the policy armed: record the reference size.
    reorderBaseline_ = std::max<std::uint64_t>(live, 1);
    return;
  }
  if (live < options_.reorderMinLiveNodes) return;
  if (static_cast<double>(live) <
      options_.reorderTrigger * static_cast<double>(reorderBaseline_)) {
    return;
  }
  inReorder_ = true;
  // Re-base before sifting: even an interrupted pass must not re-arm the
  // trigger at the very next safe point.
  reorderBaseline_ = live;
  try {
    sift();
  } catch (...) {
    inReorder_ = false;
    throw;
  }
  inReorder_ = false;
  reorderBaseline_ = std::max<std::uint64_t>(allocatedNodes(), 1);
}

bool BddManager::autoReorderIfNeeded() {
  if (!options_.autoReorder || inReorder_) return false;
  if (reorderBaseline_ != 0) {
    // allocatedNodes() bounds the live count from above, so a cheap
    // comparison against it skips the gc() most iterations.
    const std::uint64_t allocated = allocatedNodes();
    if (allocated < options_.reorderMinLiveNodes) return false;
    if (static_cast<double>(allocated) <
        options_.reorderTrigger * static_cast<double>(reorderBaseline_)) {
      return false;
    }
  }
  gc();
  const std::uint64_t runsBefore = stats_.reorderRuns;
  maybeAutoReorderPostGc();
  return stats_.reorderRuns != runsBefore;
}

}  // namespace icb
