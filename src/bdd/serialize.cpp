#include "bdd/serialize.hpp"

#include <istream>
#include <ostream>
#include <sstream>
#include <string>
#include <unordered_map>

namespace icb {

namespace {

constexpr const char* kMagicV1 = "icbdd-bdd-v1";
constexpr const char* kMagicV2 = "icbdd-bdd-v2";

/// File-local reference: T, F, or [!]<node id>.
std::string refOf(Edge e,
                  const std::unordered_map<std::uint32_t, std::size_t>& ids) {
  if (e == kTrueEdge) return "T";
  if (e == kFalseEdge) return "F";
  const std::string id = std::to_string(ids.at(edgeIndex(e)));
  return edgeIsComplemented(e) ? "!" + id : id;
}

Edge parseRef(const std::string& token, const std::vector<Edge>& loaded) {
  if (token == "T") return kTrueEdge;
  if (token == "F") return kFalseEdge;
  std::string body = token;
  bool negate = false;
  if (!body.empty() && body[0] == '!') {
    negate = true;
    body = body.substr(1);
  }
  char* end = nullptr;
  const unsigned long id = std::strtoul(body.c_str(), &end, 10);
  if (end == body.c_str() || *end != '\0' || id >= loaded.size()) {
    throw BddUsageError("loadBdds: bad node reference '" + token + "'");
  }
  const Edge e = loaded[static_cast<std::size_t>(id)];
  return negate ? edgeNot(e) : e;
}

}  // namespace

void saveBdds(std::ostream& os, const BddManager& mgr,
              std::span<const Bdd> roots) {
  // Topological order: emit a node after its children (iterative DFS with
  // an explicit done-flag so shared nodes are emitted once).
  std::unordered_map<std::uint32_t, std::size_t> ids;
  std::vector<std::pair<std::uint32_t, bool>> stack;
  std::vector<std::uint32_t> order;
  for (const Bdd& root : roots) {
    if (root.manager() != &mgr) {
      throw BddUsageError("saveBdds: root from a different manager");
    }
    if (!root.isConstant()) stack.emplace_back(edgeIndex(root.edge()), false);
  }
  while (!stack.empty()) {
    auto [index, expanded] = stack.back();
    stack.pop_back();
    if (ids.count(index) != 0) continue;
    const Edge plain = makeEdge(index, false);
    if (expanded) {
      ids.emplace(index, order.size());
      order.push_back(index);
      continue;
    }
    stack.emplace_back(index, true);
    for (const Edge child : {mgr.edgeThen(plain), mgr.edgeElse(plain)}) {
      if (!edgeIsConstant(child) && ids.count(edgeIndex(child)) == 0) {
        stack.emplace_back(edgeIndex(child), false);
      }
    }
  }

  os << kMagicV2 << '\n';
  os << "vars " << mgr.varCount() << '\n';
  for (unsigned v = 0; v < mgr.varCount(); ++v) {
    os << "v " << v << ' ' << mgr.varName(v) << '\n';
  }
  os << "order";
  for (unsigned level = 0; level < mgr.varCount(); ++level) {
    os << ' ' << mgr.varAtLevel(level);
  }
  os << '\n';
  os << "nodes " << order.size() << '\n';
  for (const std::uint32_t index : order) {
    const Edge plain = makeEdge(index, false);
    os << "n " << ids.at(index) << ' ' << mgr.nodeVar(plain) << ' '
       << refOf(mgr.edgeThen(plain), ids) << ' '
       << refOf(mgr.edgeElse(plain), ids) << '\n';
  }
  os << "roots " << roots.size() << '\n';
  for (const Bdd& root : roots) {
    os << "r "
       << (root.isConstant() ? (root.isOne() ? std::string("T") : std::string("F"))
                             : refOf(root.edge(), ids))
       << '\n';
  }
}

std::vector<Bdd> loadBdds(std::istream& is, BddManager& mgr) {
  std::string line;
  auto nextLine = [&]() -> std::istringstream {
    if (!std::getline(is, line)) {
      throw BddUsageError("loadBdds: unexpected end of input");
    }
    return std::istringstream(line);
  };

  bool hasOrderLine = false;
  {
    auto ls = nextLine();
    std::string magic;
    ls >> magic;
    if (magic == kMagicV2) {
      hasOrderLine = true;
    } else if (magic != kMagicV1) {
      throw BddUsageError("loadBdds: bad magic");
    }
  }

  std::size_t varCount = 0;
  {
    auto ls = nextLine();
    std::string key;
    ls >> key >> varCount;
    if (key != "vars") throw BddUsageError("loadBdds: expected vars");
  }
  for (std::size_t i = 0; i < varCount; ++i) {
    auto ls = nextLine();
    std::string key;
    std::string name;
    unsigned index = 0;
    ls >> key >> index >> name;
    if (key != "v" || index != i) throw BddUsageError("loadBdds: bad var line");
    if (index >= mgr.varCount()) mgr.newVar(name);
  }

  if (hasOrderLine) {
    auto ls = nextLine();
    std::string key;
    ls >> key;
    if (key != "order") throw BddUsageError("loadBdds: expected order");
    std::vector<unsigned> level2var;
    level2var.reserve(varCount);
    unsigned var = 0;
    while (ls >> var) level2var.push_back(var);
    if (level2var.size() != varCount) {
      throw BddUsageError("loadBdds: order line length != vars");
    }
    // Restoring the saved order only makes sense when the manager holds
    // exactly the file's variables; when loading into a larger manager the
    // saved permutation is partial, so we keep the manager's current order
    // (ITE re-canonicalizes the nodes either way).
    if (mgr.varCount() == varCount) applyVarOrder(mgr, level2var);
  }

  std::size_t nodeCount = 0;
  {
    auto ls = nextLine();
    std::string key;
    ls >> key >> nodeCount;
    if (key != "nodes") throw BddUsageError("loadBdds: expected nodes");
  }
  std::vector<Edge> loaded;
  std::vector<Bdd> keepAlive;  // protect intermediates across autoGc
  loaded.reserve(nodeCount);
  for (std::size_t i = 0; i < nodeCount; ++i) {
    auto ls = nextLine();
    std::string key;
    std::size_t id = 0;
    unsigned var = 0;
    std::string hiTok;
    std::string loTok;
    ls >> key >> id >> var >> hiTok >> loTok;
    if (key != "n" || id != i || var >= mgr.varCount()) {
      throw BddUsageError("loadBdds: bad node line");
    }
    const Edge hi = parseRef(hiTok, loaded);
    const Edge lo = parseRef(loTok, loaded);
    // Rebuild with ITE rather than mk: the file may have been written under
    // a different (e.g. sifted) variable order, in which case raw mk would
    // create ill-ordered nodes; ITE re-canonicalizes for this manager.
    const Edge e = mgr.iteE(mgr.varEdge(var), hi, lo);
    loaded.push_back(e);
    keepAlive.emplace_back(&mgr, e);
  }

  std::size_t rootCount = 0;
  {
    auto ls = nextLine();
    std::string key;
    ls >> key >> rootCount;
    if (key != "roots") throw BddUsageError("loadBdds: expected roots");
  }
  std::vector<Bdd> roots;
  roots.reserve(rootCount);
  for (std::size_t i = 0; i < rootCount; ++i) {
    auto ls = nextLine();
    std::string key;
    std::string tok;
    ls >> key >> tok;
    if (key != "r") throw BddUsageError("loadBdds: bad root line");
    roots.emplace_back(&mgr, parseRef(tok, loaded));
  }
  return roots;
}

void applyVarOrder(BddManager& mgr, std::span<const unsigned> level2var) {
  const unsigned n = mgr.varCount();
  if (level2var.size() != n) {
    throw BddUsageError("applyVarOrder: order length != varCount");
  }
  std::vector<bool> seen(n, false);
  for (const unsigned var : level2var) {
    if (var >= n || seen[var]) {
      throw BddUsageError("applyVarOrder: not a permutation of the variables");
    }
    seen[var] = true;
  }
  // Selection sort by adjacent swaps: for each target level top-down, bubble
  // the wanted variable up from wherever it currently sits.  O(n^2) swaps
  // worst case, fine for the var counts we serialize.
  for (unsigned level = 0; level < n; ++level) {
    const unsigned want = level2var[level];
    unsigned at = mgr.varLevel(want);
    while (at > level) {
      mgr.swapAdjacentLevels(at - 1);
      --at;
    }
  }
}

}  // namespace icb
