#include "bdd/serialize.hpp"

#include <algorithm>
#include <cstdlib>
#include <istream>
#include <ostream>
#include <sstream>
#include <string>
#include <unordered_map>
#include <utility>

namespace icb {

namespace {

constexpr const char* kMagicV1 = "icbdd-bdd-v1";
constexpr const char* kMagicV2 = "icbdd-bdd-v2";
constexpr const char* kMagicV3 = "icbdd-bdd-v3";

// ---------------------------------------------------------------------------
// Shared: topological node collection (children before parents).

void collectTopo(const BddManager& mgr, std::span<const Bdd> roots,
                 std::unordered_map<std::uint32_t, std::size_t>& ids,
                 std::vector<std::uint32_t>& order) {
  std::vector<std::pair<std::uint32_t, bool>> stack;
  for (const Bdd& root : roots) {
    if (root.manager() != &mgr) {
      throw BddUsageError("saveBdds: root from a different manager");
    }
    if (!root.isConstant()) stack.emplace_back(edgeIndex(root.edge()), false);
  }
  while (!stack.empty()) {
    auto [index, expanded] = stack.back();
    stack.pop_back();
    if (ids.count(index) != 0) continue;
    const Edge plain = makeEdge(index, false);
    if (expanded) {
      ids.emplace(index, order.size());
      order.push_back(index);
      continue;
    }
    stack.emplace_back(index, true);
    for (const Edge child : {mgr.edgeThen(plain), mgr.edgeElse(plain)}) {
      if (!edgeIsConstant(child) && ids.count(edgeIndex(child)) == 0) {
        stack.emplace_back(edgeIndex(child), false);
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Text format helpers.

/// File-local reference: T, F, or [!]<node id>.
std::string refOf(Edge e,
                  const std::unordered_map<std::uint32_t, std::size_t>& ids) {
  if (e == kTrueEdge) return "T";
  if (e == kFalseEdge) return "F";
  const std::string id = std::to_string(ids.at(edgeIndex(e)));
  return edgeIsComplemented(e) ? "!" + id : id;
}

Edge parseRef(const std::string& token, const std::vector<Edge>& loaded,
              std::uint64_t lineOffset) {
  if (token == "T") return kTrueEdge;
  if (token == "F") return kFalseEdge;
  std::string body = token;
  bool negate = false;
  if (!body.empty() && body[0] == '!') {
    negate = true;
    body = body.substr(1);
  }
  char* end = nullptr;
  const unsigned long id = std::strtoul(body.c_str(), &end, 10);
  if (end == body.c_str() || *end != '\0' || id >= loaded.size()) {
    throw SerializeError("loadBdds: bad node reference '" + token + "'",
                         lineOffset);
  }
  const Edge e = loaded[static_cast<std::size_t>(id)];
  return negate ? edgeNot(e) : e;
}

/// Line reader that tracks byte offsets so every parse error can point at
/// the offending line.  Truncation (EOF where a line was required) and
/// garbage (a line whose fields do not extract) both throw SerializeError;
/// neither may be treated as a clean end of input.
struct LineSource {
  std::istream& is;
  std::string line;
  std::uint64_t offset = 0;     ///< offset of the next unread byte
  std::uint64_t lineStart = 0;  ///< offset of the most recently read line

  std::istringstream next(const char* what) {
    lineStart = offset;
    if (!std::getline(is, line)) {
      throw SerializeError(
          std::string("loadBdds: truncated input, expected ") + what, offset);
    }
    offset += line.size() + 1;  // +1: the newline getline consumed
    return std::istringstream(line);
  }

  [[noreturn]] void bad(const char* what) const {
    throw SerializeError(std::string("loadBdds: malformed ") + what +
                             " line '" + line + "'",
                         lineStart);
  }
};

// ---------------------------------------------------------------------------
// Binary (v3) helpers.  The body is explicitly little-endian -- values are
// assembled byte by byte so the format is host-endianness independent -- and
// covered by a trailing FNV-1a checksum.

constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ull;
constexpr std::uint64_t kFnvPrime = 0x100000001b3ull;
constexpr std::uint32_t kEndianTag = 0x01020304u;

class ByteWriter {
 public:
  explicit ByteWriter(std::ostream& os) : os_(os) {}

  void bytes(const void* p, std::size_t n) {
    os_.write(static_cast<const char*>(p), static_cast<std::streamsize>(n));
    const auto* b = static_cast<const unsigned char*>(p);
    for (std::size_t i = 0; i < n; ++i) {
      hash_ = (hash_ ^ b[i]) * kFnvPrime;
    }
  }

  void u32(std::uint32_t v) {
    unsigned char b[4];
    for (int i = 0; i < 4; ++i) b[i] = static_cast<unsigned char>(v >> (8 * i));
    bytes(b, sizeof b);
  }

  void u64(std::uint64_t v) {
    unsigned char b[8];
    for (int i = 0; i < 8; ++i) b[i] = static_cast<unsigned char>(v >> (8 * i));
    bytes(b, sizeof b);
  }

  /// Writes v WITHOUT folding it into the hash -- for the checksum itself.
  void u64raw(std::uint64_t v) {
    char b[8];
    for (int i = 0; i < 8; ++i) b[i] = static_cast<char>(v >> (8 * i));
    os_.write(b, sizeof b);
  }

  [[nodiscard]] std::uint64_t hash() const { return hash_; }

 private:
  std::ostream& os_;
  std::uint64_t hash_ = kFnvOffset;
};

class ByteReader {
 public:
  ByteReader(std::istream& is, std::uint64_t startOffset)
      : is_(is), offset_(startOffset) {}

  void bytes(void* p, std::size_t n, const char* what) {
    is_.read(static_cast<char*>(p), static_cast<std::streamsize>(n));
    const auto got = static_cast<std::size_t>(is_.gcount());
    if (got != n) {
      throw SerializeError(
          std::string("loadBdds: truncated input reading ") + what,
          offset_ + got);
    }
    const auto* b = static_cast<const unsigned char*>(p);
    for (std::size_t i = 0; i < n; ++i) {
      hash_ = (hash_ ^ b[i]) * kFnvPrime;
    }
    offset_ += n;
  }

  std::uint32_t u32(const char* what) {
    unsigned char b[4];
    bytes(b, sizeof b, what);
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v |= std::uint32_t{b[i]} << (8 * i);
    return v;
  }

  std::uint64_t u64(const char* what) {
    unsigned char b[8];
    bytes(b, sizeof b, what);
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v |= std::uint64_t{b[i]} << (8 * i);
    return v;
  }

  /// Reads WITHOUT hashing -- for the trailing checksum field.
  std::uint64_t u64raw(const char* what) {
    unsigned char b[8];
    is_.read(reinterpret_cast<char*>(b), sizeof b);
    const auto got = static_cast<std::size_t>(is_.gcount());
    if (got != sizeof b) {
      throw SerializeError(
          std::string("loadBdds: truncated input reading ") + what,
          offset_ + got);
    }
    offset_ += sizeof b;
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v |= std::uint64_t{b[i]} << (8 * i);
    return v;
  }

  [[nodiscard]] std::uint64_t offset() const { return offset_; }
  [[nodiscard]] std::uint64_t hash() const { return hash_; }

 private:
  std::istream& is_;
  std::uint64_t offset_;
  std::uint64_t hash_ = kFnvOffset;
};

/// Counts in a dump header come from untrusted bytes: a corrupt count must
/// fail as a typed parse error when the records run out, never as a
/// multi-gigabyte up-front allocation.  Reservations are clamped to this and
/// vectors grow normally past it; variable names longer than this are
/// rejected outright (no legitimate name comes close).
constexpr std::uint64_t kReserveClamp = std::uint64_t{1} << 20;

/// v3 reference: 0 = TRUE, 1 = FALSE, else ((file id + 1) << 1) | complement.
std::uint32_t binRefOf(Edge e,
                       const std::unordered_map<std::uint32_t, std::size_t>& ids) {
  if (e == kTrueEdge) return 0;
  if (e == kFalseEdge) return 1;
  const auto id = static_cast<std::uint32_t>(ids.at(edgeIndex(e)));
  return ((id + 1u) << 1) | (edgeIsComplemented(e) ? 1u : 0u);
}

Edge parseBinRef(std::uint32_t ref, const std::vector<Edge>& loaded,
                 std::uint64_t offset) {
  if (ref == 0) return kTrueEdge;
  if (ref == 1) return kFalseEdge;
  const std::uint32_t id = (ref >> 1) - 1u;
  if (id >= loaded.size()) {
    throw SerializeError(
        "loadBdds: node reference " + std::to_string(id) +
            " points past the nodes decoded so far (not topologically ordered?)",
        offset);
  }
  const Edge e = loaded[id];
  return (ref & 1u) != 0 ? edgeNot(e) : e;
}

}  // namespace

// ---------------------------------------------------------------------------
// Text save (v2).

void saveBdds(std::ostream& os, const BddManager& mgr,
              std::span<const Bdd> roots) {
  std::unordered_map<std::uint32_t, std::size_t> ids;
  std::vector<std::uint32_t> order;
  collectTopo(mgr, roots, ids, order);

  os << kMagicV2 << '\n';
  os << "vars " << mgr.varCount() << '\n';
  for (unsigned v = 0; v < mgr.varCount(); ++v) {
    os << "v " << v << ' ' << mgr.varName(v) << '\n';
  }
  os << "order";
  for (unsigned level = 0; level < mgr.varCount(); ++level) {
    os << ' ' << mgr.varAtLevel(level);
  }
  os << '\n';
  os << "nodes " << order.size() << '\n';
  for (const std::uint32_t index : order) {
    const Edge plain = makeEdge(index, false);
    os << "n " << ids.at(index) << ' ' << mgr.nodeVar(plain) << ' '
       << refOf(mgr.edgeThen(plain), ids) << ' '
       << refOf(mgr.edgeElse(plain), ids) << '\n';
  }
  os << "roots " << roots.size() << '\n';
  for (const Bdd& root : roots) {
    os << "r "
       << (root.isConstant() ? (root.isOne() ? std::string("T") : std::string("F"))
                             : refOf(root.edge(), ids))
       << '\n';
  }
}

// ---------------------------------------------------------------------------
// Binary save (v3).  Layout documented in docs/node_layout.md.

void saveBddsBinary(std::ostream& os, const BddManager& mgr,
                    std::span<const Bdd> roots) {
  std::unordered_map<std::uint32_t, std::size_t> ids;
  std::vector<std::uint32_t> order;
  collectTopo(mgr, roots, ids, order);

  os << kMagicV3 << '\n';
  ByteWriter w(os);
  w.u32(kEndianTag);
  w.u32(0);  // feature flags: none defined yet
  w.u64(mgr.varCount());
  w.u64(order.size());
  w.u64(roots.size());
  for (unsigned v = 0; v < mgr.varCount(); ++v) {
    const std::string& name = mgr.varName(v);
    w.u32(static_cast<std::uint32_t>(name.size()));
    w.bytes(name.data(), name.size());
  }
  for (unsigned level = 0; level < mgr.varCount(); ++level) {
    w.u32(mgr.varAtLevel(level));
  }
  for (const std::uint32_t index : order) {
    const Edge plain = makeEdge(index, false);
    // 16-byte record mirroring the arena shape: word0 = var<<32 | hi ref,
    // word1 = lo ref (upper half reserved, zero).
    const std::uint64_t w0 = (std::uint64_t{mgr.nodeVar(plain)} << 32) |
                             binRefOf(mgr.edgeThen(plain), ids);
    const std::uint64_t w1 = binRefOf(mgr.edgeElse(plain), ids);
    w.u64(w0);
    w.u64(w1);
  }
  for (const Bdd& root : roots) {
    if (root.isConstant()) {
      w.u32(root.isOne() ? 0u : 1u);
    } else {
      w.u32(binRefOf(root.edge(), ids));
    }
  }
  w.u64raw(w.hash());
}

// ---------------------------------------------------------------------------
// Load (auto-detects v1/v2/v3 from the magic line).

namespace {

std::vector<Bdd> loadBddsText(LineSource& src, BddManager& mgr,
                              bool hasOrderLine) {
  std::size_t varCount = 0;
  {
    auto ls = src.next("vars header");
    std::string key;
    ls >> key >> varCount;
    if (ls.fail() || key != "vars") src.bad("vars header");
  }
  for (std::size_t i = 0; i < varCount; ++i) {
    auto ls = src.next("var declaration");
    std::string key;
    std::string name;
    unsigned index = 0;
    ls >> key >> index >> name;
    if (ls.fail() || key != "v" || index != i) src.bad("var");
    if (index >= mgr.varCount()) mgr.newVar(name);
  }

  if (hasOrderLine) {
    auto ls = src.next("order line");
    std::string key;
    ls >> key;
    if (ls.fail() || key != "order") src.bad("order");
    std::vector<unsigned> level2var;
    level2var.reserve(varCount);
    unsigned var = 0;
    while (ls >> var) level2var.push_back(var);
    if (level2var.size() != varCount) {
      throw SerializeError("loadBdds: order line length != vars",
                           src.lineStart);
    }
    // Restoring the saved order only makes sense when the manager holds
    // exactly the file's variables; when loading into a larger manager the
    // saved permutation is partial, so we keep the manager's current order
    // (ITE re-canonicalizes the nodes either way).
    if (mgr.varCount() == varCount) {
      try {
        applyVarOrder(mgr, level2var);
      } catch (const SerializeError&) {
        throw;
      } catch (const BddUsageError& err) {
        // A non-permutation order line is corrupt input, not caller misuse.
        throw SerializeError(std::string("loadBdds: ") + err.what(),
                             src.lineStart);
      }
    }
  }

  std::size_t nodeCount = 0;
  {
    auto ls = src.next("nodes header");
    std::string key;
    ls >> key >> nodeCount;
    if (ls.fail() || key != "nodes") src.bad("nodes header");
  }
  std::vector<Edge> loaded;
  std::vector<Bdd> keepAlive;  // protect intermediates across autoGc
  loaded.reserve(static_cast<std::size_t>(
      std::min<std::uint64_t>(nodeCount, kReserveClamp)));
  for (std::size_t i = 0; i < nodeCount; ++i) {
    auto ls = src.next("node record");
    std::string key;
    std::size_t id = 0;
    unsigned var = 0;
    std::string hiTok;
    std::string loTok;
    ls >> key >> id >> var >> hiTok >> loTok;
    if (ls.fail() || key != "n" || id != i || var >= mgr.varCount()) {
      src.bad("node");
    }
    const Edge hi = parseRef(hiTok, loaded, src.lineStart);
    const Edge lo = parseRef(loTok, loaded, src.lineStart);
    // Rebuild with ITE rather than mk: the file may have been written under
    // a different (e.g. sifted) variable order, in which case raw mk would
    // create ill-ordered nodes; ITE re-canonicalizes for this manager.
    const Edge e = mgr.iteE(mgr.varEdge(var), hi, lo);
    loaded.push_back(e);
    keepAlive.emplace_back(&mgr, e);
  }

  std::size_t rootCount = 0;
  {
    auto ls = src.next("roots header");
    std::string key;
    ls >> key >> rootCount;
    if (ls.fail() || key != "roots") src.bad("roots header");
  }
  std::vector<Bdd> roots;
  roots.reserve(static_cast<std::size_t>(
      std::min<std::uint64_t>(rootCount, kReserveClamp)));
  for (std::size_t i = 0; i < rootCount; ++i) {
    auto ls = src.next("root record");
    std::string key;
    std::string tok;
    ls >> key >> tok;
    if (ls.fail() || key != "r") src.bad("root");
    roots.emplace_back(&mgr, parseRef(tok, loaded, src.lineStart));
  }
  return roots;
}

/// Validates and reads the fixed v3 header fields after the magic line.
struct V3Header {
  std::uint64_t varCount = 0;
  std::uint64_t nodeCount = 0;
  std::uint64_t rootCount = 0;
};

V3Header readV3Header(ByteReader& r) {
  const std::uint32_t endian = r.u32("endian tag");
  if (endian != kEndianTag) {
    throw SerializeError("loadBdds: bad endian tag (byte-swapped or corrupt?)",
                         r.offset() - 4);
  }
  const std::uint32_t features = r.u32("feature flags");
  if (features != 0) {
    throw SerializeError("loadBdds: unknown feature flags " +
                             std::to_string(features) +
                             " (written by a newer version?)",
                         r.offset() - 4);
  }
  V3Header h;
  h.varCount = r.u64("var count");
  h.nodeCount = r.u64("node count");
  h.rootCount = r.u64("root count");
  return h;
}

std::vector<Bdd> loadBddsBinary(std::istream& is, BddManager& mgr,
                                std::uint64_t bodyOffset) {
  ByteReader r(is, bodyOffset);
  const V3Header h = readV3Header(r);

  for (std::uint64_t v = 0; v < h.varCount; ++v) {
    const std::uint32_t len = r.u32("name length");
    if (len > kReserveClamp) {
      throw SerializeError("loadBdds: implausible variable name length " +
                               std::to_string(len) + " (corrupt dump?)",
                           r.offset() - 4);
    }
    std::string name(len, '\0');
    if (len != 0) r.bytes(name.data(), len, "variable name");
    if (v >= mgr.varCount()) mgr.newVar(name);
  }

  std::vector<unsigned> level2var;
  level2var.reserve(static_cast<std::size_t>(
      std::min<std::uint64_t>(h.varCount, kReserveClamp)));
  const std::uint64_t orderAt = r.offset();
  for (std::uint64_t level = 0; level < h.varCount; ++level) {
    level2var.push_back(r.u32("order entry"));
  }
  if (mgr.varCount() == h.varCount) {
    try {
      applyVarOrder(mgr, level2var);
    } catch (const SerializeError&) {
      throw;
    } catch (const BddUsageError& err) {
      // A non-permutation order table is corrupt input, not caller misuse.
      throw SerializeError(std::string("loadBdds: ") + err.what(), orderAt);
    }
  }

  std::vector<Edge> loaded;
  std::vector<Bdd> keepAlive;  // protect intermediates across autoGc
  loaded.reserve(static_cast<std::size_t>(
      std::min<std::uint64_t>(h.nodeCount, kReserveClamp)));
  for (std::uint64_t i = 0; i < h.nodeCount; ++i) {
    const std::uint64_t recordAt = r.offset();
    const std::uint64_t w0 = r.u64("node record");
    const std::uint64_t w1 = r.u64("node record");
    const auto var = static_cast<std::uint32_t>(w0 >> 32);
    if (var >= mgr.varCount()) {
      throw SerializeError("loadBdds: node variable " + std::to_string(var) +
                               " out of range",
                           recordAt);
    }
    if ((w1 >> 32) != 0) {
      throw SerializeError("loadBdds: reserved node bits set", recordAt);
    }
    const Edge hi =
        parseBinRef(static_cast<std::uint32_t>(w0 & 0xffffffffu), loaded,
                    recordAt);
    const Edge lo =
        parseBinRef(static_cast<std::uint32_t>(w1 & 0xffffffffu), loaded,
                    recordAt);
    const Edge e = mgr.iteE(mgr.varEdge(var), hi, lo);
    loaded.push_back(e);
    keepAlive.emplace_back(&mgr, e);
  }

  std::vector<Bdd> roots;
  roots.reserve(static_cast<std::size_t>(
      std::min<std::uint64_t>(h.rootCount, kReserveClamp)));
  for (std::uint64_t i = 0; i < h.rootCount; ++i) {
    const std::uint64_t at = r.offset();
    roots.emplace_back(&mgr, parseBinRef(r.u32("root record"), loaded, at));
  }

  const std::uint64_t expect = r.hash();
  const std::uint64_t stored = r.u64raw("checksum");
  if (stored != expect) {
    throw SerializeError("loadBdds: checksum mismatch (corrupt dump)",
                         r.offset() - 8);
  }
  return roots;
}

}  // namespace

std::vector<Bdd> loadBdds(std::istream& is, BddManager& mgr) {
  LineSource src{is, {}};
  std::string magic;
  {
    auto ls = src.next("magic line");
    ls >> magic;
  }
  if (magic == kMagicV3) return loadBddsBinary(is, mgr, src.offset);
  if (magic == kMagicV2) return loadBddsText(src, mgr, /*hasOrderLine=*/true);
  if (magic == kMagicV1) return loadBddsText(src, mgr, /*hasOrderLine=*/false);
  throw SerializeError("loadBdds: bad magic '" + magic + "'", 0);
}

DumpInfo inspectDump(std::istream& is) {
  LineSource src{is, {}};
  std::string magic;
  {
    auto ls = src.next("magic line");
    ls >> magic;
  }
  DumpInfo info;
  if (magic == kMagicV3) {
    info.version = 3;
    info.binary = true;
    ByteReader r(is, src.offset);
    const V3Header h = readV3Header(r);
    info.varCount = h.varCount;
    info.nodeCount = h.nodeCount;
    info.rootCount = h.rootCount;
    info.nodeBytes = h.nodeCount * 16;
    return info;
  }
  if (magic != kMagicV1 && magic != kMagicV2) {
    throw SerializeError("inspectDump: bad magic '" + magic + "'", 0);
  }
  info.version = magic == kMagicV2 ? 2 : 1;
  {
    auto ls = src.next("vars header");
    std::string key;
    ls >> key >> info.varCount;
    if (ls.fail() || key != "vars") src.bad("vars header");
  }
  for (std::uint64_t i = 0; i < info.varCount; ++i) {
    (void)src.next("var declaration");
  }
  if (info.version == 2) (void)src.next("order line");
  {
    auto ls = src.next("nodes header");
    std::string key;
    ls >> key >> info.nodeCount;
    if (ls.fail() || key != "nodes") src.bad("nodes header");
  }
  for (std::uint64_t i = 0; i < info.nodeCount; ++i) {
    (void)src.next("node record");
  }
  {
    auto ls = src.next("roots header");
    std::string key;
    ls >> key >> info.rootCount;
    if (ls.fail() || key != "roots") src.bad("roots header");
  }
  return info;
}

void applyVarOrder(BddManager& mgr, std::span<const unsigned> level2var) {
  const unsigned n = mgr.varCount();
  if (level2var.size() != n) {
    throw BddUsageError("applyVarOrder: order length != varCount");
  }
  std::vector<bool> seen(n, false);
  for (const unsigned var : level2var) {
    if (var >= n || seen[var]) {
      throw BddUsageError("applyVarOrder: not a permutation of the variables");
    }
    seen[var] = true;
  }
  // Selection sort by adjacent swaps: for each target level top-down, bubble
  // the wanted variable up from wherever it currently sits.  O(n^2) swaps
  // worst case, fine for the var counts we serialize.
  for (unsigned level = 0; level < n; ++level) {
    const unsigned want = level2var[level];
    unsigned at = mgr.varLevel(want);
    while (at > level) {
      mgr.swapAdjacentLevels(at - 1);
      --at;
    }
  }
}

}  // namespace icb
