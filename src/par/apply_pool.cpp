#include "par/apply_pool.hpp"

#include <algorithm>

namespace icb::par {

ApplyPool::ApplyPool(unsigned workers) {
  const unsigned n = std::max(2u, workers);
  lanes_.reserve(n);
  for (unsigned i = 0; i < n; ++i) {
    lanes_.push_back(std::make_unique<Lane>());
  }
  // Keep roughly 8 stealable tasks per worker available: 2^limit >= 8n.
  spawnDepthLimit_ = 3;
  while ((1u << spawnDepthLimit_) < 8 * n && spawnDepthLimit_ < 24) {
    ++spawnDepthLimit_;
  }
  threads_.reserve(n - 1);
  for (unsigned i = 1; i < n; ++i) {
    threads_.emplace_back([this, i] { workerLoop(i); });
  }
}

ApplyPool::~ApplyPool() {
  {
    std::lock_guard<std::mutex> lock(wakeMutex_);
    shutdown_ = true;
  }
  wakeCv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void ApplyPool::workerLoop(unsigned id) {
  std::uint64_t seen = 0;
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(wakeMutex_);
      wakeCv_.wait(lock, [&] { return shutdown_ || epoch_ != seen; });
      if (shutdown_) return;
      seen = epoch_;
    }
    while (active_.load(std::memory_order_acquire)) {
      if (!helpOnce(id)) std::this_thread::yield();
    }
  }
}

std::uint32_t ApplyPool::run(void* ctx, RunFn fn, std::uint32_t op,
                             std::uint32_t f, std::uint32_t g,
                             std::uint32_t h) {
  ctx_ = ctx;
  fn_ = fn;
  {
    std::lock_guard<std::mutex> lock(errorMutex_);
    error_ = nullptr;
  }
  // relaxed: region setup -- the workers are parked; the epoch handshake
  // below is what releases this store to them.
  abort_.store(false, std::memory_order_relaxed);
  for (auto& lane : lanes_) {
    std::lock_guard<std::mutex> lock(lane->mutex);
    lane->steals = 0;
  }
  {
    std::lock_guard<std::mutex> lock(wakeMutex_);
    ++epoch_;
    active_.store(true, std::memory_order_release);
  }
  wakeCv_.notify_all();

  std::uint32_t result = 0;
  try {
    result = fn(ctx, op, f, g, h, 0, 0);
  } catch (const RegionAborted&) {
    // The real error was captured by abortRegion(); fall through to park
    // and rethrow below.
  } catch (...) {
    abortRegion(std::current_exception());
  }
  // The root call only returns (or unwinds) once every spawned task has
  // been joined or retired, so no task is outstanding: parking is safe.
  active_.store(false, std::memory_order_release);

  std::uint64_t steals = 0;
  for (auto& lane : lanes_) {
    std::lock_guard<std::mutex> lock(lane->mutex);
    steals += lane->steals;
  }
  stealsLastRegion_ = steals;

  std::exception_ptr error;
  {
    std::lock_guard<std::mutex> lock(errorMutex_);
    error = error_;
  }
  if (error) std::rethrow_exception(error);
  return result;
}

void ApplyPool::spawn(unsigned worker, Task* t) {
  Lane& lane = *lanes_[worker];
  std::lock_guard<std::mutex> lock(lane.mutex);
  lane.deque.push_back(t);
}

std::uint32_t ApplyPool::sync(unsigned worker, Task* t) {
  Lane& lane = *lanes_[worker];
  bool ours = false;
  {
    std::lock_guard<std::mutex> lock(lane.mutex);
    if (!lane.deque.empty() && lane.deque.back() == t) {
      lane.deque.pop_back();
      // relaxed: ownership transfers under the lane mutex; the state word
      // only tells waiters "not done yet", which it already says.
      t->state.store(kClaimed, std::memory_order_relaxed);
      ours = true;
    }
  }
  if (ours) {
    // The common, contention-free case: run the child inline, exactly where
    // a serial recursion would have.  Exceptions propagate to the spawning
    // frame, which retires its own outer tasks while unwinding.
    return fn_(ctx_, t->op, t->f, t->g, t->h, t->depth, worker);
  }
  // Stolen: help the region along instead of spinning idle.
  while (t->state.load(std::memory_order_acquire) != kDone) {
    if (!helpOnce(worker)) std::this_thread::yield();
  }
  return t->result;
}

void ApplyPool::retire(unsigned worker, Task* t) noexcept {
  Lane& lane = *lanes_[worker];
  {
    std::lock_guard<std::mutex> lock(lane.mutex);
    const auto it = std::find(lane.deque.begin(), lane.deque.end(), t);
    if (it != lane.deque.end()) {
      lane.deque.erase(it);
      return;  // never started; dying unrun is fine
    }
  }
  while (t->state.load(std::memory_order_acquire) != kDone) {
    if (!helpOnce(worker)) std::this_thread::yield();
  }
}

void ApplyPool::abortRegion(std::exception_ptr error) noexcept {
  {
    std::lock_guard<std::mutex> lock(errorMutex_);
    if (!error_) error_ = error;
  }
  // relaxed: the flag is advisory (polled); the error above is published
  // under its mutex, and quiesce ordering comes from the task joins.
  abort_.store(true, std::memory_order_relaxed);
}

bool ApplyPool::helpOnce(unsigned worker) {
  const unsigned n = workers();
  for (unsigned k = 1; k <= n; ++k) {
    Lane& victim = *lanes_[(worker + k) % n];
    Task* t = nullptr;
    {
      std::lock_guard<std::mutex> lock(victim.mutex);
      if (victim.deque.empty()) continue;
      t = victim.deque.front();
      victim.deque.erase(victim.deque.begin());
      // relaxed: the claim is already exclusive -- only one thread can pop
      // a task, under the lane mutex.
      t->state.store(kClaimed, std::memory_order_relaxed);
    }
    {
      Lane& mine = *lanes_[worker];
      std::lock_guard<std::mutex> lock(mine.mutex);
      ++mine.steals;
    }
    runStolen(t, worker);
    return true;
  }
  return false;
}

void ApplyPool::runStolen(Task* t, unsigned worker) noexcept {
  try {
    t->result = fn_(ctx_, t->op, t->f, t->g, t->h, t->depth, worker);
  } catch (const RegionAborted&) {
    // Cascade from someone else's abort: the cause is already captured.
  } catch (...) {
    abortRegion(std::current_exception());
  }
  t->state.store(kDone, std::memory_order_release);
}

}  // namespace icb::par
