#include "par/scheduler.hpp"

#include <algorithm>
#include <exception>
#include <thread>

#include "obs/jsonl.hpp"
#include "obs/trace.hpp"

namespace icb::par {

unsigned hardwareJobs() {
  return std::max(1u, std::thread::hardware_concurrency());
}

void CellContext::apply(EngineOptions& options) const {
  options.traceWorker = static_cast<int>(worker);
  if (!group.empty()) options.traceJob = group;
  if (remainingGlobalSeconds > 0.0 &&
      (options.timeLimitSeconds <= 0.0 ||
       options.timeLimitSeconds > remainingGlobalSeconds)) {
    options.timeLimitSeconds = remainingGlobalSeconds;
  }
  if (cancelFlag != nullptr) options.cancelFlag = cancelFlag;
}

VerifyScheduler::VerifyScheduler(SchedulerOptions options)
    : options_(options),
      jobs_(options.jobs != 0 ? options.jobs : hardwareJobs()) {}

std::size_t VerifyScheduler::submit(std::string group, Method method,
                                    CellBody body) {
  cells_.push_back(Cell{std::move(group), method, std::move(body)});
  return cells_.size() - 1;
}

void VerifyScheduler::cancel(const std::string& reason) {
  bool expected = false;
  if (cancelled_.compare_exchange_strong(expected, true)) {
    const MutexLock lock(reasonMutex_);
    reason_ = reason;
  }
}

std::string VerifyScheduler::cancelReason() {
  const MutexLock lock(reasonMutex_);
  return reason_;
}

std::optional<std::size_t> VerifyScheduler::take(unsigned self) {
  {
    WorkerQueue& own = queues_[self];
    const MutexLock lock(own.mutex);
    if (!own.cells.empty()) {
      const std::size_t index = own.cells.front();
      own.cells.pop_front();
      return index;
    }
  }
  // Steal from the back of a peer: the victim keeps working the front of
  // its own queue, so contention on any one deque stays incidental.
  for (unsigned step = 1; step < queues_.size(); ++step) {
    WorkerQueue& victim = queues_[(self + step) % queues_.size()];
    const MutexLock lock(victim.mutex);
    if (!victim.cells.empty()) {
      const std::size_t index = victim.cells.back();
      victim.cells.pop_back();
      return index;
    }
  }
  return std::nullopt;
}

void VerifyScheduler::runCell(std::size_t index, unsigned worker,
                              std::vector<CellResult>& results) {
  CellResult& out = results[index];
  out.worker = worker;

  double remaining = 0.0;
  if (options_.globalDeadlineSeconds > 0.0) {
    remaining = options_.globalDeadlineSeconds - batchWatch_.elapsedSeconds();
    if (remaining <= 0.0) cancel("global deadline expired");
  }
  if (cancelled_.load(std::memory_order_acquire)) {
    out.skipped = true;
    out.skipReason = cancelReason();
    out.result.method = cells_[index].method;
    out.result.note = "cancelled: " + out.skipReason;
    return;
  }

  out.queueWaitSeconds = batchWatch_.elapsedSeconds();
  const CellContext ctx{worker,
                        index,
                        cells_[index].group,
                        out.queueWaitSeconds,
                        remaining,
                        options_.cancelRunningCells ? &cancelled_ : nullptr};
  const Stopwatch watch;
  try {
    out.result = cells_[index].body(ctx);
  } catch (const std::exception& e) {
    // A throwing cell is a harness failure, not a verdict: record it and
    // fail the rest of the batch fast.
    out.result.method = cells_[index].method;
    out.result.note = std::string("cell failed: ") + e.what();
    cancel(out.result.note);
  }
  out.wallSeconds = watch.elapsedSeconds();

  if (options_.cancelOnFirstViolation && out.result.violated()) {
    cancel("first violation: " + out.group + " / " +
           std::string(methodName(out.result.method)));
  }

  if (obs::traceEnabled()) {
    obs::TraceSession session;  // default process-wide sink, no manager
    session.emit("cell_end", obs::JsonObject()
                                 .put("cell", static_cast<std::uint64_t>(index))
                                 .put("group", out.group)
                                 .put("method", methodName(out.result.method))
                                 .put("worker", worker)
                                 .put("verdict", verdictName(out.result.verdict))
                                 .put("wall_s", out.wallSeconds)
                                 .put("queued_s", out.queueWaitSeconds));
  }
}

void VerifyScheduler::workerLoop(unsigned self,
                                 std::vector<CellResult>& results) {
  while (const std::optional<std::size_t> index = take(self)) {
    runCell(*index, self, results);
  }
}

std::vector<CellResult> VerifyScheduler::run() {
  std::vector<CellResult> results(cells_.size());
  for (std::size_t i = 0; i < cells_.size(); ++i) {
    results[i].index = i;
    results[i].group = cells_[i].group;
    results[i].method = cells_[i].method;
  }
  batchWatch_.reset();

  const unsigned jobs = static_cast<unsigned>(std::min<std::size_t>(
      jobs_, std::max<std::size_t>(std::size_t{1}, cells_.size())));
  if (jobs <= 1) {
    // Serial mode: no threads, submission order, byte-identical to the
    // historical sweep (cancellation still honored for queued cells).
    for (std::size_t i = 0; i < cells_.size(); ++i) runCell(i, 0, results);
    return results;
  }

  queues_ = std::vector<WorkerQueue>(jobs);
  for (std::size_t i = 0; i < cells_.size(); ++i) {
    // The workers have not spawned yet, but seeding under the queue's own
    // lock keeps the capability analysis airtight at negligible cost.
    WorkerQueue& queue = queues_[i % jobs];
    const MutexLock lock(queue.mutex);
    queue.cells.push_back(i);
  }

  std::vector<std::thread> workers;
  workers.reserve(jobs);
  for (unsigned w = 0; w < jobs; ++w) {
    workers.emplace_back([this, w, &results] { workerLoop(w, results); });
  }
  for (std::thread& t : workers) t.join();
  return results;
}

}  // namespace icb::par
