// ApplyPool: the per-manager work-stealing pool behind intra-problem
// parallel apply (ROADMAP item 1, BddOptions::applyWorkers).
//
// Where par::VerifyScheduler steals whole model x method cells, this pool
// steals *cofactor subproblems of one BDD operation*: the parallel
// recursion spawns one branch as a Task onto its worker's lane and computes
// the other inline, then sync()s -- popping the task back (the common,
// steal-free case runs it inline with zero cross-thread traffic) or helping
// other lanes until the thief finishes.  The discipline is strictly
// fork-join (every spawn is joined -- or retired on the exception path --
// before its frame exits), so tasks can live on the spawner's stack.
//
// One region == one top-level apply.  run() wakes the workers, executes the
// root on the calling thread (worker 0), and parks the pool again when the
// root returns; the manager brackets the region with the NodeStore's
// begin/endConcurrent, so GC/reorder/rehash only ever see a parked pool
// (the quiesce protocol, docs/parallel.md).
//
// Task payloads are four uint32 operands + a depth, deliberately opaque
// here: the pool knows scheduling, the manager's par_apply.cpp knows BDDs.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace icb::par {

/// Thrown by the parallel recursion when another worker has already aborted
/// the region (error, resource limit, arena-grow request): unwinds the
/// current task to its boundary so the region can quiesce fast.  Never
/// escapes ApplyPool::run -- the first real exception is rethrown instead.
struct RegionAborted {};

class ApplyPool {
 public:
  /// One spawned subproblem.  Stack-allocated by the spawning frame, which
  /// guarantees it outlives the region's interest in it (sync/retire).
  struct Task {
    std::uint32_t op = 0;
    std::uint32_t f = 0, g = 0, h = 0;
    unsigned depth = 0;
    std::uint32_t result = 0;
    std::atomic<std::uint32_t> state{kPending};
  };

  /// The manager's dispatch callback: runs one (op, f, g, h) subproblem on
  /// `worker` and returns the result edge.
  using RunFn = std::uint32_t (*)(void* ctx, std::uint32_t op, std::uint32_t f,
                                  std::uint32_t g, std::uint32_t h,
                                  unsigned depth, unsigned worker);

  /// `workers` >= 2 total lanes; the constructor spawns workers - 1 threads
  /// (the caller of run() is worker 0).
  explicit ApplyPool(unsigned workers);
  ~ApplyPool();

  ApplyPool(const ApplyPool&) = delete;
  ApplyPool& operator=(const ApplyPool&) = delete;

  [[nodiscard]] unsigned workers() const {
    return static_cast<unsigned>(lanes_.size());
  }

  /// Spawning below this depth keeps ~8 tasks per worker in flight; deeper
  /// frames recurse inline (stolen work is coarse, bookkeeping is bounded).
  [[nodiscard]] unsigned spawnDepthLimit() const { return spawnDepthLimit_; }

  /// Runs one region: wakes the pool, executes the root subproblem on the
  /// calling thread, parks the pool, and returns the root's result.  If any
  /// worker aborted the region, rethrows the first captured exception.
  std::uint32_t run(void* ctx, RunFn fn, std::uint32_t op, std::uint32_t f,
                    std::uint32_t g, std::uint32_t h);

  /// Pushes a task onto `worker`'s lane (hot end).
  void spawn(unsigned worker, Task* t);

  /// Joins a spawned task: pops and runs it inline when still unstolen,
  /// otherwise helps other lanes until the thief publishes the result.
  /// Exceptions from inline execution propagate to the caller (whose frame
  /// owns any outer tasks and retires them on the way out).
  std::uint32_t sync(unsigned worker, Task* t);

  /// Exception-path join: guarantees the task is dead (popped unrun, or
  /// stolen and finished) so the spawning frame may unwind.
  void retire(unsigned worker, Task* t) noexcept;

  /// Records the region's first exception and flags the abort.  Later calls
  /// keep the first error (a RegionAborted cascade never masks the cause).
  void abortRegion(std::exception_ptr error) noexcept;

  [[nodiscard]] bool aborting() const {
    // relaxed: advisory flag polled by the recursion; the exception itself
    // travels through abortRegion's mutex.
    return abort_.load(std::memory_order_relaxed);
  }

  /// Tasks executed by a non-spawning worker in the last region.
  [[nodiscard]] std::uint64_t stealsLastRegion() const {
    return stealsLastRegion_;
  }

 private:
  static constexpr std::uint32_t kPending = 0;
  static constexpr std::uint32_t kClaimed = 1;
  static constexpr std::uint32_t kDone = 2;

  struct Lane {
    std::mutex mutex;
    std::vector<Task*> deque;  ///< back = owner's hot end, front = steal end
    std::uint64_t steals = 0;  ///< guarded by mutex
  };

  bool helpOnce(unsigned worker);
  void runStolen(Task* t, unsigned worker) noexcept;
  void workerLoop(unsigned id);

  std::vector<std::unique_ptr<Lane>> lanes_;
  std::vector<std::thread> threads_;

  std::mutex wakeMutex_;
  std::condition_variable wakeCv_;
  std::uint64_t epoch_ = 0;  ///< guarded by wakeMutex_
  bool shutdown_ = false;    ///< guarded by wakeMutex_
  std::atomic<bool> active_{false};

  void* ctx_ = nullptr;  ///< region dispatch target (set while parked)
  RunFn fn_ = nullptr;   ///< region dispatch callback (set while parked)

  std::atomic<bool> abort_{false};
  std::mutex errorMutex_;
  std::exception_ptr error_;  ///< guarded by errorMutex_

  std::uint64_t stealsLastRegion_ = 0;
  unsigned spawnDepthLimit_ = 0;
};

}  // namespace icb::par
