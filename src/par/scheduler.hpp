// Cell-level parallel verification scheduler.
//
// Every (model, method) cell of a paper-table sweep is an independent
// workload: it builds its own model inside a private BddManager, runs one
// engine, and returns an EngineResult.  Nothing is shared between cells
// except the (mutex-protected) JSONL trace sink, so cells parallelize
// trivially -- the same observation that drives partitioned/levelized BDD
// systems (Adiar, distbdd): scale comes from structuring independent BDD
// workloads, not from locking one node table.
//
// VerifyScheduler is a fixed thread pool over a batch of submitted cells:
//
//   * work stealing -- each worker owns a deque seeded round-robin; it pops
//     its own queue from the front and steals from the back of its peers, so
//     one slow cell (a monolithic Fwd run at depth 10) never strands the
//     cells queued behind it;
//   * deterministic aggregation -- results come back indexed by submission
//     order regardless of completion order, so a parallel sweep renders the
//     exact table a serial sweep renders;
//   * cooperative cancellation -- a thrown cell (and, when
//     cancelOnFirstViolation is set, the first violated verdict) stops every
//     cell that has not yet started; a global deadline is propagated into
//     each cell through the existing EngineOptions/ResourceLimits deadline
//     machinery, so running cells abort themselves the way a capped bench
//     row does;
//   * per-cell attribution -- every result records the worker that ran it,
//     and CellContext::apply tags the cell's trace spans with the same
//     worker id (the "worker" field of docs/observability.md).
//
// jobs == 1 runs every cell inline on the calling thread in submission
// order: no threads are spawned and the behavior is byte-identical to the
// historical serial sweep.
#pragma once

#include <atomic>
#include <cstddef>
#include <deque>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "util/mutex.hpp"
#include "util/thread_annotations.hpp"
#include "util/timer.hpp"
#include "verif/engine.hpp"

namespace icb::par {

/// Worker threads used when SchedulerOptions::jobs is 0: the hardware
/// concurrency, never less than 1.
[[nodiscard]] unsigned hardwareJobs();

/// Handed to a cell body when it starts executing.
struct CellContext {
  unsigned worker = 0;     ///< executing worker, 0-based
  std::size_t index = 0;   ///< submission index of this cell
  std::string group;       ///< the cell's group label (job id for svc cells)
  /// Seconds this cell sat queued between run() starting and its body
  /// being dispatched -- the scheduler-side wait the svc.job.queue_wait_us
  /// histogram and the cell_end "queued_s" field report.
  double queueWaitSeconds = 0.0;
  /// Seconds left on the scheduler's global deadline at dispatch time
  /// (0 when no global deadline is installed).
  double remainingGlobalSeconds = 0.0;
  /// The scheduler's cancellation flag, when SchedulerOptions::
  /// cancelRunningCells asked for running cells to observe it (else null).
  /// apply() threads it into EngineOptions so the cell's BDD operations
  /// poll it alongside the deadline.
  const std::atomic<bool>* cancelFlag = nullptr;

  /// Applies the scheduler context to one cell's engine options: tags the
  /// run's trace spans with the worker id and the group name (the "job"
  /// correlation field), clamps the cell's time limit to the remaining
  /// global budget, and installs the batch cancellation flag.  Cell bodies
  /// call this on the options they are about to run with.
  void apply(EngineOptions& options) const;
};

/// One cell's workload.  The body builds its model in a private BddManager,
/// applies the context to its options, and runs one engine.
using CellBody = std::function<EngineResult(const CellContext&)>;

/// One cell's outcome, in submission order.
struct CellResult {
  std::size_t index = 0;
  std::string group;              ///< row-group label (model + config)
  Method method = Method::kFwd;
  EngineResult result;
  unsigned worker = 0;            ///< worker that ran (or skipped) the cell
  bool skipped = false;           ///< cancelled before the body started
  std::string skipReason;         ///< why, when skipped
  double wallSeconds = 0.0;       ///< body wall time (0 when skipped)
  double queueWaitSeconds = 0.0;  ///< run()-to-dispatch wait for this cell
};

struct SchedulerOptions {
  /// Worker threads.  0 = hardwareJobs(); 1 = run inline, no threads.
  unsigned jobs = 0;
  /// Cancel all not-yet-started cells after the first kViolated verdict.
  /// (A cell body throwing always cancels the remainder -- fail fast.)
  bool cancelOnFirstViolation = false;
  /// Also abort cells that are already *running* when the batch is
  /// cancelled: the scheduler's flag is threaded into each cell's
  /// EngineOptions (CellContext::cancelFlag) and the BDD manager polls it
  /// with the deadline, so a monolithic cell stops within a few thousand
  /// node allocations instead of running to completion.  An aborted cell
  /// reports the ordinary capped verdict (kTimeLimit).  Off by default:
  /// the historical contract only skips cells that have not started.
  bool cancelRunningCells = false;
  /// Wall-clock budget for the whole batch (0 = none).  Propagated into
  /// each cell's EngineOptions deadline at dispatch; cells that would start
  /// after expiry are skipped.
  double globalDeadlineSeconds = 0.0;
};

class VerifyScheduler {
 public:
  explicit VerifyScheduler(SchedulerOptions options = {});

  VerifyScheduler(const VerifyScheduler&) = delete;
  VerifyScheduler& operator=(const VerifyScheduler&) = delete;

  /// Queues one cell; returns its submission index.
  std::size_t submit(std::string group, Method method, CellBody body);

  /// Runs every submitted cell and returns the results in submission order.
  /// May be called once per scheduler.
  std::vector<CellResult> run();

  /// The worker count run() will use (options resolved against hardware).
  [[nodiscard]] unsigned jobs() const { return jobs_; }

  [[nodiscard]] std::size_t cellCount() const { return cells_.size(); }

 private:
  struct Cell {
    std::string group;
    Method method = Method::kFwd;
    CellBody body;
  };

  /// One worker's deque; own pops from the front, thieves from the back.
  struct WorkerQueue {
    Mutex mutex;
    std::deque<std::size_t> cells ICBDD_GUARDED_BY(mutex);
  };

  void cancel(const std::string& reason) ICBDD_EXCLUDES(reasonMutex_);
  [[nodiscard]] std::string cancelReason() ICBDD_EXCLUDES(reasonMutex_);
  std::optional<std::size_t> take(unsigned self);
  void runCell(std::size_t index, unsigned worker,
               std::vector<CellResult>& results);
  void workerLoop(unsigned self, std::vector<CellResult>& results);

  SchedulerOptions options_;
  unsigned jobs_;
  // cells_ and queues_ (the vector itself) are shaped before the worker
  // threads spawn and only read afterwards; per-queue deques are the
  // mutable shared state and live behind their own WorkerQueue::mutex.
  std::vector<Cell> cells_;
  std::vector<WorkerQueue> queues_;
  Stopwatch batchWatch_;
  // Set-once batch kill switch.  Written by cancel() (seq_cst CAS), read
  // with acquire so a skipping worker also observes the reason_ write that
  // the CAS winner made before it (release ordering via the mutex).
  std::atomic<bool> cancelled_{false};
  Mutex reasonMutex_;
  std::string reason_ ICBDD_GUARDED_BY(reasonMutex_);
};

}  // namespace icb::par
