#include "sym/bitvector.hpp"

#include <algorithm>

namespace icb {

namespace {

BddManager& managerOf(const BitVec& a, const BitVec& b) {
  for (const Bdd& bit : a.bits()) {
    if (!bit.isNull()) return *bit.manager();
  }
  for (const Bdd& bit : b.bits()) {
    if (!bit.isNull()) return *bit.manager();
  }
  throw BddUsageError("BitVec operation on empty vectors");
}

}  // namespace

BitVec BitVec::constant(BddManager& mgr, unsigned width, std::uint64_t value) {
  std::vector<Bdd> bits;
  bits.reserve(width);
  for (unsigned i = 0; i < width; ++i) {
    bits.push_back(((value >> i) & 1u) != 0 ? mgr.one() : mgr.zero());
  }
  return BitVec(std::move(bits));
}

BitVec BitVec::resized(unsigned width) const {
  if (bits_.empty()) throw BddUsageError("resized on empty BitVec");
  BddManager& mgr = *bits_.front().manager();
  std::vector<Bdd> bits;
  bits.reserve(width);
  for (unsigned i = 0; i < width; ++i) {
    bits.push_back(i < bits_.size() ? bits_[i] : mgr.zero());
  }
  return BitVec(std::move(bits));
}

BitVec BitVec::shiftRight(unsigned amount) const {
  if (bits_.empty()) throw BddUsageError("shiftRight on empty BitVec");
  BddManager& mgr = *bits_.front().manager();
  std::vector<Bdd> bits;
  bits.reserve(bits_.size());
  for (unsigned i = 0; i < bits_.size(); ++i) {
    const std::size_t src = static_cast<std::size_t>(i) + amount;
    bits.push_back(src < bits_.size() ? bits_[src] : mgr.zero());
  }
  return BitVec(std::move(bits));
}

BitVec BitVec::dropLow(unsigned amount) const {
  std::vector<Bdd> bits(bits_.begin() + std::min<std::size_t>(amount, bits_.size()),
                        bits_.end());
  return BitVec(std::move(bits));
}

std::uint64_t BitVec::evalUint(std::span<const char> values) const {
  std::uint64_t out = 0;
  for (unsigned i = 0; i < bits_.size(); ++i) {
    if (bits_[i].eval(values)) out |= (std::uint64_t{1} << i);
  }
  return out;
}

namespace {

BitVec addImpl(const BitVec& a, const BitVec& b, bool carryOut) {
  BddManager& mgr = managerOf(a, b);
  const unsigned w = std::max(a.width(), b.width());
  const BitVec ax = a.resized(w);
  const BitVec bx = b.resized(w);
  std::vector<Bdd> bits;
  bits.reserve(w + (carryOut ? 1 : 0));
  Bdd carry = mgr.zero();
  for (unsigned i = 0; i < w; ++i) {
    const Bdd& x = ax.bit(i);
    const Bdd& y = bx.bit(i);
    bits.push_back(x ^ y ^ carry);
    carry = (x & y) | (carry & (x ^ y));
  }
  if (carryOut) bits.push_back(carry);
  return BitVec(std::move(bits));
}

}  // namespace

BitVec add(const BitVec& a, const BitVec& b) { return addImpl(a, b, true); }
BitVec addTrunc(const BitVec& a, const BitVec& b) {
  return addImpl(a, b, false);
}

BitVec subTrunc(const BitVec& a, const BitVec& b) {
  BddManager& mgr = managerOf(a, b);
  const unsigned w = std::max(a.width(), b.width());
  const BitVec ax = a.resized(w);
  const BitVec bx = b.resized(w);
  std::vector<Bdd> bits;
  bits.reserve(w);
  Bdd borrow = mgr.zero();
  for (unsigned i = 0; i < w; ++i) {
    const Bdd& x = ax.bit(i);
    const Bdd& y = bx.bit(i);
    bits.push_back(x ^ y ^ borrow);
    borrow = ((!x) & y) | ((!(x ^ y)) & borrow);
  }
  return BitVec(std::move(bits));
}

Bdd eq(const BitVec& a, const BitVec& b) {
  BddManager& mgr = managerOf(a, b);
  const unsigned w = std::max(a.width(), b.width());
  const BitVec ax = a.resized(w);
  const BitVec bx = b.resized(w);
  Bdd acc = mgr.one();
  // Conjoin from the most significant bit down; with interleaved orders the
  // MSB comparison usually prunes fastest, and for equal vectors the
  // direction is irrelevant.
  for (unsigned i = w; i-- > 0;) {
    acc &= ax.bit(i).xnor(bx.bit(i));
  }
  return acc;
}

Bdd ule(const BitVec& a, const BitVec& b) {
  BddManager& mgr = managerOf(a, b);
  const unsigned w = std::max(a.width(), b.width());
  const BitVec ax = a.resized(w);
  const BitVec bx = b.resized(w);
  // LSB-to-MSB recurrence: le_i = (a_i < b_i) | (a_i == b_i) & le_{i-1}.
  Bdd le = mgr.one();
  for (unsigned i = 0; i < w; ++i) {
    const Bdd& x = ax.bit(i);
    const Bdd& y = bx.bit(i);
    le = ((!x) & y) | (x.xnor(y) & le);
  }
  return le;
}

Bdd ult(const BitVec& a, const BitVec& b) { return !ule(b, a); }

BitVec mux(const Bdd& sel, const BitVec& a, const BitVec& b) {
  const unsigned w = std::max(a.width(), b.width());
  const BitVec ax = a.resized(w);
  const BitVec bx = b.resized(w);
  std::vector<Bdd> bits;
  bits.reserve(w);
  for (unsigned i = 0; i < w; ++i) {
    bits.push_back(sel.ite(ax.bit(i), bx.bit(i)));
  }
  return BitVec(std::move(bits));
}

Bdd eqConst(const BitVec& a, std::uint64_t value) {
  if (a.width() == 0) throw BddUsageError("eqConst on empty BitVec");
  BddManager& mgr = *a.bit(0).manager();
  if (a.width() < 64 && (value >> a.width()) != 0) return mgr.zero();
  Bdd acc = mgr.one();
  for (unsigned i = a.width(); i-- > 0;) {
    acc &= ((value >> i) & 1u) != 0 ? a.bit(i) : !a.bit(i);
  }
  return acc;
}

Bdd uleConst(const BitVec& a, std::uint64_t value) {
  if (a.width() == 0) throw BddUsageError("uleConst on empty BitVec");
  BddManager& mgr = *a.bit(0).manager();
  if (a.width() < 64 && (value >> a.width()) != 0) return mgr.one();
  // MSB-to-LSB: lt becomes true as soon as a bit of `a` is 0 where the
  // constant has 1; eq tracks the all-equal prefix.
  Bdd lt = mgr.zero();
  Bdd eqAcc = mgr.one();
  for (unsigned i = a.width(); i-- > 0;) {
    const bool c = ((value >> i) & 1u) != 0;
    if (c) {
      lt |= eqAcc & !a.bit(i);
      eqAcc &= a.bit(i);
    } else {
      eqAcc &= !a.bit(i);
    }
  }
  return lt | eqAcc;
}

BitVec incTrunc(const BitVec& a) {
  if (a.width() == 0) throw BddUsageError("incTrunc on empty BitVec");
  return addTrunc(a, BitVec::constant(*a.bit(0).manager(), a.width(), 1));
}

BitVec decTrunc(const BitVec& a) {
  if (a.width() == 0) throw BddUsageError("decTrunc on empty BitVec");
  return subTrunc(a, BitVec::constant(*a.bit(0).manager(), a.width(), 1));
}

}  // namespace icb
