// Forward image computation via a clustered, conjunctively partitioned
// transition relation with early quantification (Burch/Clarke/Long style,
// the paper's reference [4]).
//
// The relation is never built monolithically: per-bit conjuncts
//   T_k = (v'_k  XNOR  f_k(u, i))
// are greedily clustered under a node cap, and each (current-state or input)
// variable is existentially quantified as soon as the last cluster that
// mentions it has been conjoined -- keeping intermediate products small.
#pragma once

#include <cstdint>
#include <vector>

#include "sym/fsm.hpp"

namespace icb {

/// Greedy clustering of conjuncts under a node cap, plus the early
/// quantification schedule over them: perCluster[c] holds the quantVars whose
/// last occurrence is in cluster c (quantified right after conjoining it),
/// upfront the quantVars no cluster mentions (quantified from the source set
/// before the walk).  One code path serves clusteredExistsProduct and the
/// ImageComputer constructor.
struct ClusterSchedule {
  std::vector<Bdd> clusters;
  std::vector<std::vector<unsigned>> perCluster;
  std::vector<unsigned> upfront;
};

/// Builds the schedule.  quantVars order is respected within each schedule
/// bucket, so a deterministic input yields a deterministic schedule.
ClusterSchedule buildClusterSchedule(BddManager& mgr,
                                     const std::vector<Bdd>& conjuncts,
                                     const std::vector<unsigned>& quantVars,
                                     std::uint64_t clusterCap);

/// exists(quantVars) [ base & conjuncts... ] computed with greedy clustering
/// and early quantification: each variable is quantified right after the
/// last cluster that mentions it.  Shared by the forward images, the
/// functional-dependency engine and the relational Pre/BackImage.
Bdd clusteredExistsProduct(BddManager& mgr, const Bdd& base,
                           const std::vector<Bdd>& conjuncts,
                           const std::vector<unsigned>& quantVars,
                           std::uint64_t clusterCap);

struct ImageOptions {
  /// Node cap for one cluster of transition conjuncts.
  std::uint64_t clusterCap = 5000;
  /// Build one monolithic relation instead of clusters (test oracle).
  bool monolithic = false;
};

class ImageComputer {
 public:
  ImageComputer(const Fsm& fsm, const ImageOptions& options = {});

  /// States reachable in one transition from `from` (both over cur vars).
  [[nodiscard]] Bdd image(const Bdd& from) const;

  [[nodiscard]] std::size_t clusterCount() const { return clusters_.size(); }

 private:
  const Fsm& fsm_;
  std::vector<Bdd> clusters_;
  /// quantCubes_[i]: cube of cur+input vars whose last occurrence is in
  /// cluster i, quantified right after conjoining that cluster.
  std::vector<Bdd> quantCubes_;
  /// Cur+input vars mentioned by no cluster at all: quantified from `from`
  /// up front.
  Bdd preQuantCube_;
  /// Renaming map nxt -> cur applied to the final product.
  std::vector<unsigned> renameMap_;
};

}  // namespace icb
