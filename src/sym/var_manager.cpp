#include "sym/var_manager.hpp"

#include <array>

namespace icb {

unsigned VarManager::addStateBit(const std::string& name) {
  const unsigned cur = mgr_->newVar(name);
  const unsigned nxt = mgr_->newVar(name + "'");
  // Reordering must keep the (cur, nxt) interleaving the relational
  // operations rely on: sift moves the pair as one block.
  mgr_->groupVars(std::array{cur, nxt});
  state_.push_back(StateBit{cur, nxt, name});
  return static_cast<unsigned>(state_.size() - 1);
}

unsigned VarManager::addInputBit(const std::string& name) {
  const unsigned v = mgr_->newVar(name);
  inputs_.push_back(v);
  inputNames_.push_back(name);
  return static_cast<unsigned>(inputs_.size() - 1);
}

Bdd VarManager::inputCube() const {
  return Bdd(mgr_, mgr_->cubeE(inputs_));
}

Bdd VarManager::curCube() const {
  std::vector<unsigned> vars;
  vars.reserve(state_.size());
  for (const StateBit& b : state_) vars.push_back(b.cur);
  return Bdd(mgr_, mgr_->cubeE(vars));
}

Bdd VarManager::nxtCube() const {
  std::vector<unsigned> vars;
  vars.reserve(state_.size());
  for (const StateBit& b : state_) vars.push_back(b.nxt);
  return Bdd(mgr_, mgr_->cubeE(vars));
}

}  // namespace icb
