// Fsm: a non-deterministic finite-state machine in functional form.
//
// The machine is deterministic given its inputs: every state bit has a
// next-state function over (current state, inputs), and the inputs are free
// -- quantifying them yields the non-deterministic transition relation
//   delta(u, v) = exists i . AND_k (v_k == f_k(u, i)).
//
// With this representation the three image operators of the paper are:
//   Image(Z)     = rename(exists u,i . Z(u) & AND_k (v_k == f_k(u,i)))
//   PreImage(Z)  = exists i . Z[u := F(u, i)]
//   BackImage(Z) = forall i . Z[u := F(u, i)]   ( == !PreImage(!Z) )
// BackImage distributes over conjunction (Theorem 1), which is what lets the
// backward traversal keep G_i implicitly conjoined.
#pragma once

#include <functional>
#include <span>
#include <string>
#include <vector>

#include "ici/conjunct_list.hpp"
#include "sym/var_manager.hpp"

namespace icb {

class Fsm {
 public:
  explicit Fsm(BddManager& mgr) : mgr_(&mgr), vars_(mgr) {}

  [[nodiscard]] BddManager& mgr() const { return *mgr_; }
  [[nodiscard]] VarManager& vars() { return vars_; }
  [[nodiscard]] const VarManager& vars() const { return vars_; }

  void setInit(Bdd init) { init_ = std::move(init); }
  [[nodiscard]] const Bdd& init() const { return init_; }

  /// Sets the next-state function of a state bit (over cur + input vars).
  void setNext(unsigned stateBitIndex, Bdd fn);
  [[nodiscard]] const Bdd& next(unsigned stateBitIndex) const {
    return next_[stateBitIndex];
  }
  [[nodiscard]] const std::vector<Bdd>& nextFunctions() const { return next_; }

  /// Adds one conjunct of the property G being verified.
  void addInvariant(Bdd g) { invariant_.push_back(std::move(g)); }
  /// Adds a user-supplied "assisting invariant" (a lemma).  Kept separate so
  /// the Table 1 (with assists) and Table 2 (without) runs share one model.
  void addAssistInvariant(Bdd g) { assists_.push_back(std::move(g)); }

  [[nodiscard]] const std::vector<Bdd>& invariantConjuncts() const {
    return invariant_;
  }
  [[nodiscard]] const std::vector<Bdd>& assistConjuncts() const {
    return assists_;
  }

  /// The property as an implicitly conjoined list; assists appended on
  /// request.
  [[nodiscard]] ConjunctList property(bool withAssists) const;

  /// Throws BddUsageError unless every state bit has a next function and
  /// init is set.
  void validate() const;

  // ---- images ----------------------------------------------------------------

  /// BackImage over the machine: forall inputs . z[cur := F(cur, inputs)].
  /// Computed as !PreImage(!z) through the partitioned relational product.
  [[nodiscard]] Bdd backImage(const Bdd& z) const;

  /// PreImage: exists inputs . z[cur := F(cur, inputs)].  Computed as
  /// exists nxt,inputs . z[cur -> nxt] & AND_k (nxt_k == f_k), clustered
  /// with early quantification; only the state bits in z's support
  /// contribute conjuncts.
  [[nodiscard]] Bdd preImage(const Bdd& z) const;

  /// Reference implementations by direct simultaneous substitution
  /// (exponential in bad cases; kept as the oracle for tests).
  [[nodiscard]] Bdd backImageByCompose(const Bdd& z) const;
  [[nodiscard]] Bdd preImageByCompose(const Bdd& z) const;

  // ---- concrete simulation (trace validation) ------------------------------

  /// Evaluates one transition: `values` must assign every cur and input
  /// variable; returns a values vector with the cur bits replaced by the
  /// next state (input and nxt positions are zeroed).
  [[nodiscard]] std::vector<char> step(std::span<const char> values) const;

  /// Renders the state part of an assignment, for counterexample printing.
  /// Model classes may install a pretty-printer via setStatePrinter.
  using StatePrinter =
      std::function<std::string(const Fsm&, std::span<const char>)>;
  void setStatePrinter(StatePrinter p) { printer_ = std::move(p); }
  [[nodiscard]] std::string describeState(std::span<const char> values) const;

 private:
  [[nodiscard]] std::vector<Edge> composeMap() const;

  BddManager* mgr_;
  VarManager vars_;
  Bdd init_;
  std::vector<Bdd> next_;
  std::vector<Bdd> invariant_;
  std::vector<Bdd> assists_;
  StatePrinter printer_;
};

}  // namespace icb
