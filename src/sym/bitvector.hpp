// BitVec: a little-endian vector of BDDs, one per bit, with the word-level
// operations the paper's models need (adders, comparators, shifters, muxes).
// All arithmetic is unsigned; bit 0 is the least significant bit.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "bdd/bdd.hpp"

namespace icb {

class BitVec {
 public:
  BitVec() = default;
  explicit BitVec(std::vector<Bdd> bits) : bits_(std::move(bits)) {}

  /// All-constant vector encoding `value` in `width` bits.
  static BitVec constant(BddManager& mgr, unsigned width, std::uint64_t value);

  [[nodiscard]] unsigned width() const {
    return static_cast<unsigned>(bits_.size());
  }
  [[nodiscard]] const Bdd& bit(unsigned i) const { return bits_[i]; }
  [[nodiscard]] const std::vector<Bdd>& bits() const { return bits_; }
  void push(Bdd b) { bits_.push_back(std::move(b)); }

  /// Zero-extends (or truncates) to exactly `width` bits.
  [[nodiscard]] BitVec resized(unsigned width) const;

  /// Logical shift right by a constant amount (zero fill, same width).
  [[nodiscard]] BitVec shiftRight(unsigned amount) const;

  /// Drops the `amount` low bits (the paper's filter "3-bit discard",
  /// i.e. divide by 2^amount).
  [[nodiscard]] BitVec dropLow(unsigned amount) const;

  /// Decodes the vector under a full assignment of BDD variables.
  [[nodiscard]] std::uint64_t evalUint(std::span<const char> values) const;

 private:
  std::vector<Bdd> bits_;
};

/// a + b with full carry out: result width = max(width) + 1.
BitVec add(const BitVec& a, const BitVec& b);

/// a + b truncated to max(width) bits (modular).
BitVec addTrunc(const BitVec& a, const BitVec& b);

/// a - b modulo 2^width (two's complement; width = max of the inputs).
BitVec subTrunc(const BitVec& a, const BitVec& b);

/// Bitwise equality of the two vectors (widths are zero-extended to match).
Bdd eq(const BitVec& a, const BitVec& b);

/// Unsigned a <= b.
Bdd ule(const BitVec& a, const BitVec& b);

/// Unsigned a < b.
Bdd ult(const BitVec& a, const BitVec& b);

/// Per-bit if-then-else: sel ? a : b.
BitVec mux(const Bdd& sel, const BitVec& a, const BitVec& b);

/// Equality against a constant.
Bdd eqConst(const BitVec& a, std::uint64_t value);

/// a <= constant (unsigned).  This is the typed-FIFO "item <= 128" check.
Bdd uleConst(const BitVec& a, std::uint64_t value);

/// Increment / decrement truncated to the vector's width.
BitVec incTrunc(const BitVec& a);
BitVec decTrunc(const BitVec& a);

}  // namespace icb
