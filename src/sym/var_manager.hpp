// Variable bookkeeping for symbolic finite-state machines.
//
// Each state bit owns a (current, next) variable pair, allocated adjacently
// in the BDD order -- the standard interleaving for image computation.
// Models control the *global* allocation order themselves, which is how the
// paper's bit-slice-interleaved datapath orders (Jeong et al. [19]) are
// expressed: allocate bit 0 of every lane, then bit 1 of every lane, ...
#pragma once

#include <string>
#include <vector>

#include "bdd/bdd.hpp"

namespace icb {

struct StateBit {
  unsigned cur;      ///< BDD variable index of the current-state copy
  unsigned nxt;      ///< BDD variable index of the next-state copy
  std::string name;  ///< for traces and dot dumps
};

class VarManager {
 public:
  explicit VarManager(BddManager& mgr) : mgr_(&mgr) {}

  [[nodiscard]] BddManager& mgr() const { return *mgr_; }

  /// Allocates a state bit (cur followed by nxt in the order).
  /// Returns the state-bit index.
  unsigned addStateBit(const std::string& name);

  /// Allocates a free (nondeterministic) input bit.  Returns the input index.
  unsigned addInputBit(const std::string& name);

  [[nodiscard]] std::size_t stateBitCount() const { return state_.size(); }
  [[nodiscard]] std::size_t inputBitCount() const { return inputs_.size(); }

  [[nodiscard]] const StateBit& stateBit(unsigned i) const { return state_[i]; }
  [[nodiscard]] const std::vector<StateBit>& stateBits() const { return state_; }
  [[nodiscard]] const std::vector<unsigned>& inputVars() const { return inputs_; }
  [[nodiscard]] const std::string& inputName(unsigned i) const {
    return inputNames_[i];
  }

  [[nodiscard]] Bdd cur(unsigned stateBitIndex) const {
    return mgr_->var(state_[stateBitIndex].cur);
  }
  [[nodiscard]] Bdd nxt(unsigned stateBitIndex) const {
    return mgr_->var(state_[stateBitIndex].nxt);
  }
  [[nodiscard]] Bdd input(unsigned inputIndex) const {
    return mgr_->var(inputs_[inputIndex]);
  }

  /// Cube of all input variables (for quantification in the images).
  [[nodiscard]] Bdd inputCube() const;
  /// Cube of all current-state variables.
  [[nodiscard]] Bdd curCube() const;
  /// Cube of all next-state variables.
  [[nodiscard]] Bdd nxtCube() const;

 private:
  BddManager* mgr_;
  std::vector<StateBit> state_;
  std::vector<unsigned> inputs_;
  std::vector<std::string> inputNames_;
};

}  // namespace icb
