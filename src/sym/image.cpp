#include "sym/image.hpp"

#include <limits>

namespace icb {

ClusterSchedule buildClusterSchedule(BddManager& mgr,
                                     const std::vector<Bdd>& conjuncts,
                                     const std::vector<unsigned>& quantVars,
                                     std::uint64_t clusterCap) {
  ClusterSchedule out;

  // Greedy clustering under the node cap, in conjunct order (locality
  // heuristic: adjacent state bits tend to share support).
  Bdd acc;
  for (const Bdd& t : conjuncts) {
    if (acc.isNull()) {
      acc = t;
      continue;
    }
    const Bdd merged = acc & t;
    if (merged.size() > clusterCap) {
      out.clusters.push_back(acc);
      acc = t;
    } else {
      acc = merged;
    }
  }
  if (!acc.isNull()) out.clusters.push_back(std::move(acc));

  // A variable can be quantified right after the last cluster mentioning it;
  // one mentioned by no cluster can go before the walk even starts.
  std::vector<int> lastCluster(mgr.varCount(), -1);
  std::vector<std::uint8_t> quantifiable(mgr.varCount(), 0);
  for (const unsigned v : quantVars) quantifiable[v] = 1;
  for (std::size_t c = 0; c < out.clusters.size(); ++c) {
    for (const unsigned v : out.clusters[c].support()) {
      if (quantifiable[v] != 0) lastCluster[v] = static_cast<int>(c);
    }
  }
  out.perCluster.resize(out.clusters.size());
  for (const unsigned v : quantVars) {
    if (lastCluster[v] >= 0) {
      out.perCluster[static_cast<std::size_t>(lastCluster[v])].push_back(v);
    } else {
      out.upfront.push_back(v);
    }
  }
  return out;
}

Bdd clusteredExistsProduct(BddManager& mgr, const Bdd& base,
                           const std::vector<Bdd>& conjuncts,
                           const std::vector<unsigned>& quantVars,
                           std::uint64_t clusterCap) {
  const ClusterSchedule sched =
      buildClusterSchedule(mgr, conjuncts, quantVars, clusterCap);

  Bdd acc = base.exists(Bdd(&mgr, mgr.cubeE(sched.upfront)));
  for (std::size_t c = 0; c < sched.clusters.size(); ++c) {
    acc = acc.andExists(sched.clusters[c],
                        Bdd(&mgr, mgr.cubeE(sched.perCluster[c])));
    if (acc.isZero()) break;
  }
  return acc;
}

ImageComputer::ImageComputer(const Fsm& fsm, const ImageOptions& options)
    : fsm_(fsm) {
  BddManager& mgr = fsm.mgr();
  const VarManager& vars = fsm.vars();

  // Per-bit transition conjuncts in allocation order (locality heuristic).
  std::vector<Bdd> conjuncts;
  conjuncts.reserve(vars.stateBitCount());
  for (unsigned k = 0; k < vars.stateBitCount(); ++k) {
    conjuncts.push_back(vars.nxt(k).xnor(fsm.next(k)));
  }

  // Cur/input variables are the quantifiable ones, listed deterministically
  // (state bits first, then inputs) so the schedule -- and with it every
  // cube and operation sequence -- is reproducible run to run.
  std::vector<unsigned> quantVars;
  quantVars.reserve(vars.stateBitCount() + vars.inputVars().size());
  for (const StateBit& b : vars.stateBits()) quantVars.push_back(b.cur);
  for (const unsigned v : vars.inputVars()) quantVars.push_back(v);

  // An uncapped schedule degenerates to the single monolithic relation.
  const std::uint64_t cap = options.monolithic
                                ? std::numeric_limits<std::uint64_t>::max()
                                : options.clusterCap;
  ClusterSchedule sched = buildClusterSchedule(mgr, conjuncts, quantVars, cap);

  clusters_ = std::move(sched.clusters);
  quantCubes_.reserve(clusters_.size());
  for (const auto& vs : sched.perCluster) {
    quantCubes_.push_back(Bdd(&mgr, mgr.cubeE(vs)));
  }
  preQuantCube_ = Bdd(&mgr, mgr.cubeE(sched.upfront));

  // nxt -> cur renaming for the final product.
  renameMap_.resize(mgr.varCount());
  for (unsigned v = 0; v < renameMap_.size(); ++v) renameMap_[v] = v;
  for (const StateBit& b : vars.stateBits()) renameMap_[b.nxt] = b.cur;
}

Bdd ImageComputer::image(const Bdd& from) const {
  Bdd acc = from.exists(preQuantCube_);
  for (std::size_t c = 0; c < clusters_.size(); ++c) {
    acc = acc.andExists(clusters_[c], quantCubes_[c]);
    if (acc.isZero()) break;
  }
  return acc.permute(renameMap_);
}

}  // namespace icb
