#include "sym/image.hpp"

#include <algorithm>
#include <unordered_set>

namespace icb {

Bdd clusteredExistsProduct(BddManager& mgr, const Bdd& base,
                           const std::vector<Bdd>& conjuncts,
                           const std::vector<unsigned>& quantVars,
                           std::uint64_t clusterCap) {
  std::vector<Bdd> clusters;
  Bdd acc0;
  for (const Bdd& t : conjuncts) {
    if (acc0.isNull()) {
      acc0 = t;
      continue;
    }
    const Bdd merged = acc0 & t;
    if (merged.size() > clusterCap) {
      clusters.push_back(acc0);
      acc0 = t;
    } else {
      acc0 = merged;
    }
  }
  if (!acc0.isNull()) clusters.push_back(std::move(acc0));

  const std::unordered_set<unsigned> quantifiable(quantVars.begin(),
                                                  quantVars.end());
  std::vector<int> lastCluster(mgr.varCount(), -1);
  for (std::size_t c = 0; c < clusters.size(); ++c) {
    for (const unsigned v : clusters[c].support()) {
      if (quantifiable.count(v) != 0) lastCluster[v] = static_cast<int>(c);
    }
  }
  std::vector<std::vector<unsigned>> schedule(clusters.size());
  std::vector<unsigned> upfront;
  for (const unsigned v : quantVars) {
    if (lastCluster[v] >= 0) {
      schedule[static_cast<std::size_t>(lastCluster[v])].push_back(v);
    } else {
      upfront.push_back(v);
    }
  }

  Bdd acc = base.exists(Bdd(&mgr, mgr.cubeE(upfront)));
  for (std::size_t c = 0; c < clusters.size(); ++c) {
    acc = acc.andExists(clusters[c], Bdd(&mgr, mgr.cubeE(schedule[c])));
    if (acc.isZero()) break;
  }
  return acc;
}

ImageComputer::ImageComputer(const Fsm& fsm, const ImageOptions& options)
    : fsm_(fsm) {
  BddManager& mgr = fsm.mgr();
  const VarManager& vars = fsm.vars();

  // Per-bit transition conjuncts in allocation order (locality heuristic).
  std::vector<Bdd> conjuncts;
  conjuncts.reserve(vars.stateBitCount());
  for (unsigned k = 0; k < vars.stateBitCount(); ++k) {
    conjuncts.push_back(vars.nxt(k).xnor(fsm.next(k)));
  }

  // Greedy clustering under the node cap.
  if (options.monolithic) {
    Bdd all = mgr.one();
    for (const Bdd& t : conjuncts) all &= t;
    clusters_.push_back(std::move(all));
  } else {
    Bdd current;
    for (const Bdd& t : conjuncts) {
      if (current.isNull()) {
        current = t;
        continue;
      }
      const Bdd merged = current & t;
      if (merged.size() > options.clusterCap) {
        clusters_.push_back(current);
        current = t;
      } else {
        current = merged;
      }
    }
    if (!current.isNull()) clusters_.push_back(std::move(current));
  }

  // Quantification schedule: a cur/input variable can be quantified after
  // the last cluster mentioning it.  Variables in no cluster are quantified
  // from the source set before the walk (they are cur vars the relation
  // ignores, or unused inputs).
  std::unordered_set<unsigned> quantifiable;
  for (const StateBit& b : vars.stateBits()) quantifiable.insert(b.cur);
  for (const unsigned v : vars.inputVars()) quantifiable.insert(v);

  std::vector<int> lastCluster(mgr.varCount(), -1);
  for (std::size_t c = 0; c < clusters_.size(); ++c) {
    for (const unsigned v : clusters_[c].support()) {
      if (quantifiable.count(v) != 0) {
        lastCluster[v] = static_cast<int>(c);
      }
    }
  }

  std::vector<std::vector<unsigned>> perCluster(clusters_.size());
  std::vector<unsigned> unused;
  for (const unsigned v : quantifiable) {
    if (lastCluster[v] >= 0) {
      perCluster[static_cast<std::size_t>(lastCluster[v])].push_back(v);
    } else {
      unused.push_back(v);
    }
  }
  quantCubes_.reserve(clusters_.size());
  for (const auto& vs : perCluster) {
    quantCubes_.push_back(Bdd(&mgr, mgr.cubeE(vs)));
  }
  preQuantCube_ = Bdd(&mgr, mgr.cubeE(unused));

  // nxt -> cur renaming for the final product.
  renameMap_.resize(mgr.varCount());
  for (unsigned v = 0; v < renameMap_.size(); ++v) renameMap_[v] = v;
  for (const StateBit& b : vars.stateBits()) renameMap_[b.nxt] = b.cur;
}

Bdd ImageComputer::image(const Bdd& from) const {
  Bdd acc = from.exists(preQuantCube_);
  for (std::size_t c = 0; c < clusters_.size(); ++c) {
    acc = acc.andExists(clusters_[c], quantCubes_[c]);
    if (acc.isZero()) break;
  }
  return acc.permute(renameMap_);
}

}  // namespace icb
