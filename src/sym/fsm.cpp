#include "sym/fsm.hpp"

#include <unordered_set>

#include "sym/image.hpp"

namespace icb {

void Fsm::setNext(unsigned stateBitIndex, Bdd fn) {
  if (next_.size() < vars_.stateBitCount()) {
    next_.resize(vars_.stateBitCount());
  }
  if (stateBitIndex >= next_.size()) {
    throw BddUsageError("setNext: state bit index out of range");
  }
  next_[stateBitIndex] = std::move(fn);
}

ConjunctList Fsm::property(bool withAssists) const {
  std::vector<Bdd> items = invariant_;
  if (withAssists) {
    items.insert(items.end(), assists_.begin(), assists_.end());
  }
  ConjunctList list(mgr_, std::move(items));
  list.normalize();
  return list;
}

void Fsm::validate() const {
  if (init_.isNull()) throw BddUsageError("Fsm: init not set");
  if (next_.size() != vars_.stateBitCount()) {
    throw BddUsageError("Fsm: missing next-state functions");
  }
  for (const Bdd& f : next_) {
    if (f.isNull()) throw BddUsageError("Fsm: a next-state function is null");
  }
  if (invariant_.empty()) throw BddUsageError("Fsm: no invariant");
}

std::vector<Edge> Fsm::composeMap() const {
  std::vector<Edge> map(mgr_->varCount());
  for (unsigned v = 0; v < map.size(); ++v) map[v] = mgr_->varEdge(v);
  for (unsigned k = 0; k < vars_.stateBitCount(); ++k) {
    map[vars_.stateBit(k).cur] = next_[k].edge();
  }
  return map;
}

Bdd Fsm::backImage(const Bdd& z) const {
  return !preImage(!z);
}

Bdd Fsm::preImage(const Bdd& z) const {
  mgr_->autoGc();
  // Rename z's current-state variables to the next-state copies...
  std::vector<unsigned> perm(mgr_->varCount());
  for (unsigned v = 0; v < perm.size(); ++v) perm[v] = v;
  for (const StateBit& b : vars_.stateBits()) perm[b.cur] = b.nxt;
  const Bdd renamed = z.permute(perm);

  // ...then conjoin the transition conjuncts of exactly the bits z reads
  // (the others quantify to TRUE) and quantify nxt + inputs early.
  std::unordered_set<unsigned> support;
  for (const unsigned v : renamed.support()) support.insert(v);
  std::vector<Bdd> conjuncts;
  std::vector<unsigned> quantVars;
  for (unsigned k = 0; k < vars_.stateBitCount(); ++k) {
    const StateBit& b = vars_.stateBit(k);
    if (support.count(b.nxt) == 0) continue;
    conjuncts.push_back(vars_.nxt(k).xnor(next_[k]));
    quantVars.push_back(b.nxt);
  }
  for (const unsigned v : vars_.inputVars()) quantVars.push_back(v);
  return clusteredExistsProduct(*mgr_, renamed, conjuncts, quantVars,
                                /*clusterCap=*/5000);
}

Bdd Fsm::backImageByCompose(const Bdd& z) const {
  mgr_->autoGc();
  const std::vector<Edge> map = composeMap();
  const Bdd substituted(mgr_, mgr_->composeVecE(z.edge(), map));
  return substituted.forall(vars_.inputCube());
}

Bdd Fsm::preImageByCompose(const Bdd& z) const {
  mgr_->autoGc();
  const std::vector<Edge> map = composeMap();
  const Bdd substituted(mgr_, mgr_->composeVecE(z.edge(), map));
  return substituted.exists(vars_.inputCube());
}

std::vector<char> Fsm::step(std::span<const char> values) const {
  std::vector<char> out(mgr_->varCount(), 0);
  for (unsigned k = 0; k < vars_.stateBitCount(); ++k) {
    out[vars_.stateBit(k).cur] = next_[k].eval(values) ? 1 : 0;
  }
  return out;
}

std::string Fsm::describeState(std::span<const char> values) const {
  if (printer_) return printer_(*this, values);
  std::string out;
  for (unsigned k = 0; k < vars_.stateBitCount(); ++k) {
    const StateBit& b = vars_.stateBit(k);
    if (!out.empty()) out += ' ';
    out += b.name + "=" + (values[b.cur] != 0 ? "1" : "0");
  }
  return out;
}

}  // namespace icb
