#include "svc/service.hpp"

#include <algorithm>
#include <filesystem>
#include <sstream>
#include <utility>

#include "obs/trace.hpp"
#include "verif/checkpoint.hpp"

namespace icb::svc {

namespace {

constexpr const char* kSchema = "icbdd-svc-v1";

/// Starts a response object: {"schema":"icbdd-svc-v1","type":<type>,...}.
obs::JsonObject response(const char* type) {
  obs::JsonObject o;
  o.put("schema", kSchema).put("type", type);
  return o;
}

/// Renders counterexample rows (assignment vectors of 0/1) as a JSON array
/// of bitstrings, one character per BDD variable.
std::string bitstringArray(const std::vector<std::vector<char>>& rows) {
  std::string out = "[";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    if (i != 0) out += ',';
    out += '"';
    for (const char b : rows[i]) out += b != 0 ? '1' : '0';
    out += '"';
  }
  out += ']';
  return out;
}

/// Histogram samples are integer microseconds (docs/observability.md).
std::uint64_t micros(double seconds) {
  return seconds <= 0.0 ? 0 : static_cast<std::uint64_t>(seconds * 1e6);
}

}  // namespace

VerifyService::VerifyService(ServiceOptions options, Emit emit)
    : options_(std::move(options)), emit_(std::move(emit)) {
  if (!options_.journalDir.empty()) {
    journal_ = std::make_unique<JobJournal>(options_.journalDir);
  }
  dispatcher_ = std::thread([this] { dispatcherLoop(); });
}

VerifyService::~VerifyService() { shutdown(); }

void VerifyService::emitLine(const std::string& line) {
  const MutexLock lock(emitMutex_);
  if (emit_) emit_(line);
}

bool VerifyService::submitLine(const std::string& line) {
  std::string id;
  auto reject = [&](const char* reason, const std::string& detail) {
    metrics_.add("svc.jobs.rejected");
    std::size_t depth = 0;
    {
      const MutexLock lock(mutex_);
      depth = pending_.size() + running_;
    }
    obs::JsonObject o = response("job_rejected");
    if (!id.empty()) o.put("id", id);
    o.put("reason", reason);
    if (!detail.empty()) o.put("detail", detail);
    o.put("queue_depth", static_cast<std::uint64_t>(depth))
        .put("queue_bound", static_cast<std::uint64_t>(options_.queueBound));
    emitLine(std::move(o).str());
    return false;
  };

  try {
    const obs::JsonValue parsed = obs::parseJson(line);
    if (const obs::JsonValue* idField = parsed.find("id")) {
      if (idField->kind == obs::JsonValue::Kind::kString) id = idField->text;
    }
    return submit(parseJobRequest(parsed), line);
  } catch (const obs::JsonParseError& e) {
    return reject("parse_error", e.what());
  } catch (const std::invalid_argument& e) {
    return reject("invalid_request", e.what());
  }
}

bool VerifyService::submit(const JobRequest& request, const std::string& line) {
  {
    const MutexLock lock(mutex_);
    const char* reason = nullptr;
    if (std::find(activeIds_.begin(), activeIds_.end(), request.id) !=
        activeIds_.end()) {
      reason = "duplicate_id";
    } else if (pending_.size() + running_ >= options_.queueBound) {
      reason = "queue_full";
    }
    if (reason != nullptr) {
      metrics_.add("svc.jobs.rejected");
      emitLine(std::move(response("job_rejected")
                             .put("id", request.id)
                             .put("reason", reason)
                             .put("queue_depth", static_cast<std::uint64_t>(
                                                    pending_.size() + running_))
                             .put("queue_bound", static_cast<std::uint64_t>(
                                                     options_.queueBound)))
                   .str());
      return false;
    }
    if (journal_) journal_->recordAccepted(request.id, line);
    pending_.push_back(QueuedJob{request, line, obs::traceClockSeconds()});
    activeIds_.push_back(request.id);
    metrics_.add("svc.jobs.accepted");
    const double depth = static_cast<double>(pending_.size() + running_);
    metrics_.setGauge("svc.queue.depth", depth);
    metrics_.setGaugeMax("svc.queue.peak_depth", depth);
    emitLine(std::move(response("job_accepted")
                           .put("id", request.id)
                           .put("queue_depth", static_cast<std::uint64_t>(depth)))
                 .str());
  }
  cv_.notify_all();
  return true;
}

std::size_t VerifyService::recoverJournal() {
  if (!journal_) return 0;
  std::size_t count = 0;
  for (const std::string& line : journal_->recoverableRequests()) {
    try {
      JobRequest request = parseJobRequest(obs::parseJson(line));
      request.resume = true;  // pick up the journaled checkpoint, if any
      if (submit(request, line)) {
        metrics_.add("svc.jobs.recovered");
        ++count;
      }
    } catch (const std::exception&) {
      continue;  // a torn request line is dropped, not fatal to recovery
    }
  }
  return count;
}

void VerifyService::shutdown() {
  {
    const MutexLock lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  if (dispatcher_.joinable()) dispatcher_.join();
}

std::size_t VerifyService::queueDepth() const {
  const MutexLock lock(mutex_);
  return pending_.size() + running_;
}

obs::MetricsRegistry VerifyService::metricsSnapshot() const {
  obs::MetricsRegistry snap = metrics_.snapshot();
  if (journal_) {
    snap.add("svc.journal.writes", journal_->writesRecorded());
    snap.add("svc.journal.write_failures", journal_->writeFailures());
  }
  return snap;
}

ServiceHealth VerifyService::health() const {
  ServiceHealth h;
  h.queueDepth = queueDepth();
  if (journal_) {
    h.journalOk = journal_->healthy();
    h.secondsSinceJournalWrite = journal_->secondsSinceLastWrite();
    h.journalError = journal_->lastError();
  }
  return h;
}

void VerifyService::dispatcherLoop() {
  MutexLock lock(mutex_);
  while (true) {
    // Manual wait loop (not the predicate overload) so the thread-safety
    // analysis sees every read of stop_/pending_ happen with mutex_ held.
    while (!stop_ && (options_.drain || pending_.empty())) {
      cv_.wait(mutex_);
    }
    if (pending_.empty()) {
      if (stop_) return;
      continue;
    }
    std::vector<QueuedJob> batch;
    batch.swap(pending_);
    running_ = batch.size();
    lock.unlock();
    runBatch(batch);
    lock.lock();
  }
}

void VerifyService::runBatch(std::vector<QueuedJob>& batch) {
  par::SchedulerOptions schedOptions;
  schedOptions.jobs = options_.workers;
  par::VerifyScheduler scheduler(schedOptions);
  for (const QueuedJob& job : batch) {
    scheduler.submit(job.request.id, job.request.method,
                     [this, &job](const par::CellContext& ctx) {
                       runOneJob(job, ctx);  // never throws
                       return EngineResult{};
                     });
  }
  scheduler.run();
}

void VerifyService::finishJob(const std::string& id, const char* counterName) {
  if (journal_) journal_->remove(id);
  std::size_t depth = 0;
  {
    const MutexLock lock(mutex_);
    activeIds_.erase(std::remove(activeIds_.begin(), activeIds_.end(), id),
                     activeIds_.end());
    if (running_ > 0) --running_;
    depth = pending_.size() + running_;
  }
  metrics_.add(counterName);
  metrics_.setGauge("svc.queue.depth", static_cast<double>(depth));
}

void VerifyService::runOneJob(const QueuedJob& job,
                              const par::CellContext& ctx) {
  const JobRequest& req = job.request;
  try {
    BddOptions bddOptions = bddOptionsFor(req);
    // The service-level default only fills in for requests that left
    // "apply_workers" unset; an explicit request value always wins.
    if (req.applyWorkers == 0) bddOptions.applyWorkers = options_.applyWorkers;
    if (req.spill) {
      bddOptions.spillDir =
          !options_.spillDir.empty()
              ? options_.spillDir
              : std::filesystem::temp_directory_path().string();
      bddOptions.spillThresholdNodes = options_.spillThresholdNodes;
    }
    BddManager mgr(bddOptions);
    ModelInstance model = buildJobModel(mgr, req);
    EngineOptions engineOptions = engineOptionsFor(req);

    // Admission-control half of the deadline story: the per-job deadline is
    // the request's, defaulted and then clamped to the service ceiling.
    double deadline = engineOptions.timeLimitSeconds > 0.0
                          ? engineOptions.timeLimitSeconds
                          : options_.defaultJobSeconds;
    if (options_.maxJobSeconds > 0.0) {
      deadline = deadline > 0.0 ? std::min(deadline, options_.maxJobSeconds)
                                : options_.maxJobSeconds;
    }
    engineOptions.timeLimitSeconds = deadline;
    ctx.apply(engineOptions);  // worker attribution for the run's trace spans

    // Resume from the journaled checkpoint when the request asks for it.
    EngineSnapshot snapshot;
    bool resumed = false;
    unsigned resumedFrom = 0;
    if (req.resume && journal_) {
      if (const auto text = journal_->checkpointText(req.id)) {
        std::istringstream in(*text);
        snapshot = loadSnapshot(in, mgr);
        engineOptions.checkpoint.resume = &snapshot;
        resumed = true;
        resumedFrom = snapshot.iteration;
        metrics_.add("svc.jobs.resumed");
      }
    }

    const unsigned every = req.checkpointEvery != 0 ? req.checkpointEvery
                                                    : options_.checkpointEvery;
    if (every != 0) {
      engineOptions.checkpoint.everyIterations = every;
      engineOptions.checkpoint.sink = [this, &req, &mgr,
                                       &ctx](const EngineSnapshot& snap) {
        std::ostringstream os;
        saveSnapshot(os, mgr, snap);
        metrics_.recordHistogram("svc.checkpoint.write_bytes",
                                 static_cast<std::uint64_t>(os.str().size()));
        if (journal_) journal_->recordCheckpoint(req.id, os.str());
        metrics_.add("svc.checkpoints.saved");
        emitLine(std::move(response("job_progress")
                               .put("id", req.id)
                               .put("iteration", snap.iteration)
                               .put("checkpoint", true)
                               .put("worker", ctx.worker))
                     .str());
      };
    }

    obs::TraceSession span(engineOptions.traceSink, &mgr,
                           engineOptions.traceWorker, req.id);
    if (span.enabled()) {
      span.emit("job_begin", obs::JsonObject()
                                 .put("id", req.id)
                                 .put("model", req.model)
                                 .put("method", methodName(req.method))
                                 .put("resumed", resumed));
    }

    // Admission-to-dispatch wait: how long the job sat in pending_ plus the
    // scheduler queue before its body started.
    const double queueWaitSeconds =
        std::max(0.0, obs::traceClockSeconds() - job.enqueueSeconds);
    const Stopwatch runWatch;
    const EngineResult result =
        runMethod(*model.fsm, req.method, model.fdCandidates, engineOptions);
    const double runSeconds = runWatch.elapsedSeconds();

    // Per-job resource bill: the manager is private to this job, so its
    // counter deltas over the run *are* the job's attribution.
    const std::uint64_t nodesCreated =
        result.metrics.counter("bdd.nodes_created");
    const double peakNodes = result.metrics.gauge("bdd.peak_nodes");
    metrics_.recordHistogram("svc.job.queue_wait_us", micros(queueWaitSeconds));
    metrics_.recordHistogram("svc.job.run_us", micros(runSeconds));
    metrics_.recordHistogram("svc.job.nodes_created", nodesCreated);
    metrics_.recordHistogram(
        "svc.job.peak_nodes",
        peakNodes <= 0.0 ? 0 : static_cast<std::uint64_t>(peakNodes));
    if (result.spilled) {
      // Fold the job's external-memory telemetry into the service registry
      // so /metrics exposes fleet-wide bdd.xmem.* totals (jobs that never
      // spilled contribute nothing, keeping the scrape noise-free).
      metrics_.add("svc.jobs.spilled");
      for (const auto& [name, value] : result.metrics.counters()) {
        if (name.rfind("bdd.xmem.", 0) == 0) metrics_.add(name, value);
      }
      for (const auto& [name, h] : result.metrics.histograms()) {
        if (name.rfind("bdd.xmem.", 0) == 0) metrics_.mergeHistogram(name, h);
      }
    }

    if (span.enabled()) {
      span.emit("job_end",
                obs::JsonObject()
                    .put("id", req.id)
                    .put("verdict", verdictName(result.verdict))
                    .put("iterations", result.iterations)
                    .put("seconds", runSeconds)
                    .put("queue_wait_s", queueWaitSeconds)
                    .put("spilled", result.spilled)
                    .put("nodes_created", nodesCreated)
                    .put("peak_nodes",
                         peakNodes <= 0.0
                             ? std::uint64_t{0}
                             : static_cast<std::uint64_t>(peakNodes)));
    }

    obs::JsonObject o = response("job_result");
    o.put("id", req.id)
        .put("model", req.model)
        .put("method", methodName(req.method))
        .put("verdict", verdictName(result.verdict))
        .put("iterations", result.iterations)
        .put("seconds", result.seconds)
        .put("peak_iterate_nodes", result.peakIterateNodes)
        .put("peak_allocated_nodes", result.peakAllocatedNodes)
        .put("spilled", result.spilled)
        .put("resumed", resumed)
        .put("worker", ctx.worker);
    if (resumed) o.put("resumed_from", resumedFrom);
    if (result.trace.has_value()) {
      o.putRaw("trace_states", bitstringArray(result.trace->states));
      o.putRaw("trace_inputs", bitstringArray(result.trace->inputs));
    }
    emitLine(std::move(o).str());
    finishJob(req.id, "svc.jobs.completed");
  } catch (const std::exception& e) {
    emitLine(std::move(response("job_failed")
                           .put("id", req.id)
                           .put("error", e.what())
                           .put("worker", ctx.worker))
                 .str());
    finishJob(req.id, "svc.jobs.failed");
  }
}

}  // namespace icb::svc
