#include "svc/job.hpp"

#include <cmath>
#include <memory>
#include <stdexcept>

#include "models/avg_filter.hpp"
#include "models/mutex_ring.hpp"
#include "models/network.hpp"
#include "models/pipeline_cpu.hpp"
#include "models/typed_fifo.hpp"

namespace icb::svc {

namespace {

/// Reads an optional non-negative integer field, rejecting fractions and
/// wrong-typed values (a silently truncated "4.5" would run the wrong job).
unsigned uintField(const obs::JsonValue& request, const char* name,
                   unsigned def) {
  const obs::JsonValue* v = request.find(name);
  if (v == nullptr) return def;
  if (v->kind != obs::JsonValue::Kind::kNumber || v->number < 0 ||
      v->number != std::floor(v->number)) {
    throw std::invalid_argument(std::string(name) +
                                " must be a non-negative integer");
  }
  return static_cast<unsigned>(v->number);
}

std::uint64_t u64Field(const obs::JsonValue& request, const char* name,
                       std::uint64_t def) {
  const obs::JsonValue* v = request.find(name);
  if (v == nullptr) return def;
  if (v->kind != obs::JsonValue::Kind::kNumber || v->number < 0 ||
      v->number != std::floor(v->number)) {
    throw std::invalid_argument(std::string(name) +
                                " must be a non-negative integer");
  }
  return static_cast<std::uint64_t>(v->number);
}

double doubleField(const obs::JsonValue& request, const char* name,
                   double def) {
  const obs::JsonValue* v = request.find(name);
  if (v == nullptr) return def;
  if (v->kind != obs::JsonValue::Kind::kNumber || v->number < 0) {
    throw std::invalid_argument(std::string(name) +
                                " must be a non-negative number");
  }
  return v->number;
}

bool boolField(const obs::JsonValue& request, const char* name, bool def) {
  const obs::JsonValue* v = request.find(name);
  if (v == nullptr) return def;
  if (v->kind != obs::JsonValue::Kind::kBool) {
    throw std::invalid_argument(std::string(name) + " must be a boolean");
  }
  return v->boolean;
}

}  // namespace

bool validJobId(const std::string& id) {
  if (id.empty() || id.size() > 64 || id.front() == '.') return false;
  for (const char c : id) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '.' || c == '_' || c == '-';
    if (!ok) return false;
  }
  return true;
}

JobRequest parseJobRequest(const obs::JsonValue& request) {
  if (request.kind != obs::JsonValue::Kind::kObject) {
    throw std::invalid_argument("request must be a JSON object");
  }
  JobRequest req;
  const obs::JsonValue* id = request.find("id");
  if (id == nullptr || id->kind != obs::JsonValue::Kind::kString) {
    throw std::invalid_argument("missing required string field 'id'");
  }
  req.id = id->text;
  if (!validJobId(req.id)) {
    throw std::invalid_argument(
        "id must be 1-64 chars of [A-Za-z0-9._-], not starting with '.'");
  }
  const obs::JsonValue* model = request.find("model");
  if (model == nullptr || model->kind != obs::JsonValue::Kind::kString) {
    throw std::invalid_argument("missing required string field 'model'");
  }
  req.model = model->text;

  if (const obs::JsonValue* method = request.find("method")) {
    if (method->kind != obs::JsonValue::Kind::kString) {
      throw std::invalid_argument("method must be a string");
    }
    req.method = parseMethod(method->text);  // throws invalid_argument
  }

  req.size = uintField(request, "size", 0);
  req.width = uintField(request, "width", 0);
  req.injectBug = boolField(request, "inject_bug", false);
  req.withAssists = boolField(request, "with_assists", false);
  req.wantTrace = boolField(request, "want_trace", true);
  req.deadlineSeconds = doubleField(request, "deadline_seconds", 0.0);
  req.maxNodes = u64Field(request, "max_nodes", 0);
  req.maxIterations = uintField(request, "max_iterations", 0);
  req.checkpointEvery = uintField(request, "checkpoint_every", 0);
  req.resume = boolField(request, "resume", false);
  req.autoReorder = boolField(request, "auto_reorder", false);
  req.reorderTrigger = doubleField(request, "reorder_trigger", 0.0);
  req.applyWorkers = uintField(request, "apply_workers", 0);
  req.spill = boolField(request, "spill", false);
  return req;
}

BddOptions bddOptionsFor(const JobRequest& request) {
  BddOptions options;
  options.autoReorder = request.autoReorder;
  if (request.reorderTrigger > 0.0) {
    options.reorderTrigger = request.reorderTrigger;
  }
  options.applyWorkers = request.applyWorkers;
  return options;
}

EngineOptions engineOptionsFor(const JobRequest& request) {
  EngineOptions options;
  options.withAssists = request.withAssists;
  options.wantTrace = request.wantTrace;
  options.maxNodes = request.maxNodes;
  if (request.maxIterations != 0) options.maxIterations = request.maxIterations;
  options.timeLimitSeconds = request.deadlineSeconds;
  return options;
}

ModelInstance buildJobModel(BddManager& mgr, const JobRequest& request) {
  const unsigned size = request.size;
  const unsigned width = request.width;
  ModelInstance out;
  if (request.model == "fifo") {
    auto m = std::make_shared<TypedFifoModel>(
        mgr, TypedFifoConfig{size != 0 ? size : 3, width != 0 ? width : 4,
                             request.injectBug});
    out.fsm = &m->fsm();
    out.fdCandidates = m->fdCandidates();
    out.holder = std::move(m);
  } else if (request.model == "mutex") {
    auto m = std::make_shared<MutexRingModel>(
        mgr, MutexRingConfig{size != 0 ? size : 3, request.injectBug});
    out.fsm = &m->fsm();
    out.fdCandidates = m->fdCandidates();
    out.holder = std::move(m);
  } else if (request.model == "network") {
    auto m = std::make_shared<NetworkModel>(
        mgr, NetworkConfig{size != 0 ? size : 3, request.injectBug});
    out.fsm = &m->fsm();
    out.fdCandidates = m->fdCandidates();
    out.holder = std::move(m);
  } else if (request.model == "filter") {
    auto m = std::make_shared<AvgFilterModel>(
        mgr, AvgFilterConfig{size != 0 ? size : 2, width != 0 ? width : 4,
                             request.injectBug});
    out.fsm = &m->fsm();
    out.fdCandidates = m->fdCandidates();
    out.holder = std::move(m);
  } else if (request.model == "pipeline") {
    auto m = std::make_shared<PipelineCpuModel>(
        mgr, PipelineCpuConfig{size != 0 ? size : 2, width != 0 ? width : 1,
                               request.injectBug});
    out.fsm = &m->fsm();
    out.fdCandidates = m->fdCandidates();
    out.holder = std::move(m);
  } else {
    throw std::invalid_argument(
        "unknown model '" + request.model +
        "' (fifo|mutex|network|filter|pipeline)");
  }
  return out;
}

}  // namespace icb::svc
