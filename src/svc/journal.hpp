// On-disk job journal: what lets a killed service process resume its jobs.
//
// One directory, two files per live job (the id is validated by validJobId
// before it ever reaches a filename):
//
//   <id>.req    the original request line, verbatim
//   <id>.ckpt   the latest icbdd-ckpt-v1 snapshot (absent until the first
//               checkpoint fires)
//
// Both are written atomically (temp file + rename), so a SIGKILL mid-write
// leaves either the previous snapshot or the new one -- never a torn file.
// Completed jobs have their files removed; whatever .req files remain at
// startup are exactly the jobs that were accepted but never finished, and
// VerifyService::recoverJournal re-submits them with resume=true.
//
// Write failures degrade, they do not kill: a journal whose directory turns
// unwritable mid-flight (disk full, permissions yanked) records the failure
// (svc.journal.write_failures, healthy() == false, lastError()) and keeps
// serving -- jobs lose crash-resume durability, not their results.  The
// /healthz endpoint surfaces the degradation (docs/observability.md).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "util/mutex.hpp"
#include "util/thread_annotations.hpp"
#include "util/timer.hpp"

namespace icb::svc {

/// Thread-safe: the journal handle is shared by the service's accept path
/// and every worker thread (checkpoint sinks write concurrently).  Distinct
/// jobs touch distinct files and each write is temp-then-rename atomic, so
/// file-level operations need no lock; the write statistics below are the
/// only cross-thread mutable state and live behind statsMutex_.
class JobJournal {
 public:
  /// Creates `dir` (and parents) if needed; throws std::runtime_error when
  /// the directory cannot be created or is not writable.
  explicit JobJournal(std::string dir);

  /// Journals an accepted job's request line.  A failed write is counted
  /// and remembered (degraded mode), never thrown.
  void recordAccepted(const std::string& id, const std::string& requestLine);

  /// Atomically replaces the job's checkpoint snapshot.  A failed write is
  /// counted and remembered (degraded mode), never thrown.
  void recordCheckpoint(const std::string& id, const std::string& snapshot);

  /// The job's latest snapshot text, or nullopt when none was written.
  [[nodiscard]] std::optional<std::string> checkpointText(
      const std::string& id) const;

  /// Removes the job's files (called when a job completes or fails).
  void remove(const std::string& id);

  /// Request lines of every journaled job that never completed, in
  /// lexicographic id order (deterministic recovery).
  [[nodiscard]] std::vector<std::string> recoverableRequests() const;

  [[nodiscard]] const std::string& dir() const { return dir_; }

  /// Atomic journal writes performed so far (request lines + checkpoints);
  /// exported as the `svc.journal.writes` counter.
  [[nodiscard]] std::uint64_t writesRecorded() const
      ICBDD_EXCLUDES(statsMutex_);

  /// Failed journal writes so far; exported as `svc.journal.write_failures`.
  [[nodiscard]] std::uint64_t writeFailures() const ICBDD_EXCLUDES(statsMutex_);

  /// False after a write failure until the next successful write -- the
  /// /healthz degradation signal.
  [[nodiscard]] bool healthy() const ICBDD_EXCLUDES(statsMutex_);

  /// Seconds since the last *successful* journal write, or a negative value
  /// when nothing has been written yet (the /healthz journal-age field).
  [[nodiscard]] double secondsSinceLastWrite() const
      ICBDD_EXCLUDES(statsMutex_);

  /// The most recent write failure's message ("" when healthy()).
  [[nodiscard]] std::string lastError() const ICBDD_EXCLUDES(statsMutex_);

 private:
  [[nodiscard]] std::string pathFor(const std::string& id,
                                    const char* suffix) const;
  void countWrite() ICBDD_EXCLUDES(statsMutex_);
  void countFailure(const std::string& what) ICBDD_EXCLUDES(statsMutex_);

  std::string dir_;  ///< immutable after construction
  mutable Mutex statsMutex_;
  std::uint64_t writes_ ICBDD_GUARDED_BY(statsMutex_) = 0;
  std::uint64_t writeFailures_ ICBDD_GUARDED_BY(statsMutex_) = 0;
  bool healthy_ ICBDD_GUARDED_BY(statsMutex_) = true;
  bool hasWritten_ ICBDD_GUARDED_BY(statsMutex_) = false;
  Stopwatch lastWriteWatch_ ICBDD_GUARDED_BY(statsMutex_);
  std::string lastError_ ICBDD_GUARDED_BY(statsMutex_);
};

}  // namespace icb::svc
