// VerifyService: the verification job service (icbdd-svc-v1).
//
// Wraps the batch scheduler (src/par/) in what a long-lived service needs
// and a bench does not:
//
//   * admission control -- a bounded queue.  submitLine parses one request
//     (obs/jsonl), answers job_accepted or a structured job_rejected
//     (queue_full / parse_error / invalid_request / duplicate_id), and never
//     queues past the bound;
//   * deadline clamping -- per-job deadlines are clamped to the service's
//     maxJobSeconds and fall back to defaultJobSeconds, then flow into the
//     engines through the existing EngineOptions/ResourceLimits machinery;
//   * checkpoint/resume -- every job runs with CheckpointOptions wired to
//     the on-disk JobJournal: every N iterations the engine's state is
//     snapshotted (verif/checkpoint) and journaled, a job_progress line is
//     streamed, and a killed process picks its jobs back up at startup via
//     recoverJournal();
//   * metrics -- svc.jobs.{accepted,rejected,completed,failed,resumed},
//     svc.checkpoints.saved, svc.journal.{writes,write_failures} counters,
//     svc.queue.{depth,peak_depth} gauges, and the svc.job.* /
//     svc.checkpoint.* latency and attribution histograms in a
//     SharedMetrics (docs/observability.md);
//   * per-job attribution -- each job's trace spans carry its request id
//     (the "job" envelope field), its job_end span reports wall/queue-wait
//     seconds and the private manager's node bill, and the same quantities
//     feed the svc.job.* histograms for the /metrics endpoint.
//
// Every emitted line is one JSON object carrying "schema":"icbdd-svc-v1";
// docs/service.md documents the protocol.  Jobs execute on a VerifyScheduler
// batch per queue drain, each in a private BddManager, with worker
// attribution flowing into the job's trace spans via CellContext::apply.
//
// Concurrency contract (checked by -Wthread-safety under clang):
// mutex_ guards the queue state (pending_, activeIds_, running_, stop_);
// emitMutex_ serializes the caller's emit callback and is always acquired
// *after* mutex_ when both are held; metrics_ and journal_ synchronize
// internally and may be touched from any thread without either lock.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"
#include "svc/job.hpp"
#include "svc/journal.hpp"
#include "util/mutex.hpp"
#include "util/thread_annotations.hpp"

namespace icb::svc {

struct ServiceOptions {
  /// Worker threads per queue drain.  0 = hardware concurrency.
  unsigned workers = 1;
  /// Admission bound: pending + running jobs may not exceed this.
  std::size_t queueBound = 16;
  /// Hard ceiling clamped onto every job's deadline (0 = no ceiling).
  double maxJobSeconds = 0.0;
  /// Deadline for jobs that request none (0 = unlimited).
  double defaultJobSeconds = 0.0;
  /// Default checkpoint cadence in iterations (0 disables checkpointing
  /// for jobs that do not ask for it).
  unsigned checkpointEvery = 4;
  /// Intra-problem apply workers for jobs that do not set "apply_workers"
  /// themselves (0/1 = serial).  Independent of `workers`: that fans jobs
  /// out across managers, this splits each BDD operation inside one.
  unsigned applyWorkers = 0;
  /// Journal directory; empty runs without persistence (no cross-process
  /// resume, but in-request "resume" of a prior snapshot still works when
  /// a journal exists).
  std::string journalDir;
  /// Spill directory for jobs that set "spill": true; empty falls back to
  /// the system temp directory.  Arms BddOptions::spillDir per job
  /// (docs/external_memory.md); jobs without the flag never spill.
  std::string spillDir;
  /// BddOptions::spillThresholdNodes for spill-armed jobs (0 = engage only
  /// where max_nodes would otherwise abort the job).
  std::uint64_t spillThresholdNodes = 0;
  /// Hold every accepted job until shutdown(), then run the whole queue as
  /// one batch.  Makes admission decisions independent of worker timing --
  /// the CI smoke test uses this to force a deterministic rejection.
  bool drain = false;
};

/// Point-in-time liveness snapshot for the /healthz endpoint.
struct ServiceHealth {
  std::size_t queueDepth = 0;
  /// False when the journal has entered degraded mode (last write failed).
  /// Always true for a journal-less service.
  bool journalOk = true;
  /// Seconds since the last successful journal write; negative when none
  /// has happened yet (or no journal is configured).
  double secondsSinceJournalWrite = -1.0;
  /// The journal's most recent write error ("" when journalOk).
  std::string journalError;

  [[nodiscard]] bool ok() const { return journalOk; }
};

class VerifyService {
 public:
  /// `emit` receives every response line (one JSON object, no newline); it
  /// is called under an internal mutex, from submit callers and from worker
  /// threads, and must be fast and non-reentrant.
  using Emit = std::function<void(const std::string& line)>;

  VerifyService(ServiceOptions options, Emit emit);
  ~VerifyService();

  VerifyService(const VerifyService&) = delete;
  VerifyService& operator=(const VerifyService&) = delete;

  /// Parses and admits one request line.  Always answers with exactly one
  /// job_accepted or job_rejected line; returns whether it was accepted.
  bool submitLine(const std::string& line) ICBDD_EXCLUDES(mutex_);

  /// Admits an already parsed request (`line` is what the journal stores).
  bool submit(const JobRequest& request, const std::string& line)
      ICBDD_EXCLUDES(mutex_);

  /// Re-submits every unfinished journaled job with resume=true.  Call
  /// before accepting new work.  Returns how many jobs were re-admitted.
  std::size_t recoverJournal() ICBDD_EXCLUDES(mutex_);

  /// Runs the queue dry and joins the dispatcher.  Idempotent.
  void shutdown() ICBDD_EXCLUDES(mutex_);

  /// Pending + running jobs right now.
  [[nodiscard]] std::size_t queueDepth() const ICBDD_EXCLUDES(mutex_);

  /// Point-in-time copy of the service counters/gauges/histograms (plus the
  /// journal's svc.journal.{writes,write_failures}, folded in at snapshot
  /// time).  This is what /metrics renders.
  [[nodiscard]] obs::MetricsRegistry metricsSnapshot() const;

  /// Liveness snapshot for /healthz: queue depth plus journal degradation.
  [[nodiscard]] ServiceHealth health() const ICBDD_EXCLUDES(mutex_);

 private:
  struct QueuedJob {
    JobRequest request;
    std::string line;             ///< journaled request line
    double enqueueSeconds = 0.0;  ///< traceClockSeconds() at admission
  };

  void dispatcherLoop() ICBDD_EXCLUDES(mutex_);
  void runBatch(std::vector<QueuedJob>& batch);
  void runOneJob(const QueuedJob& job, const par::CellContext& ctx);
  void emitLine(const std::string& line) ICBDD_EXCLUDES(emitMutex_);
  void finishJob(const std::string& id, const char* counterName)
      ICBDD_EXCLUDES(mutex_);

  ServiceOptions options_;
  Emit emit_;
  std::unique_ptr<JobJournal> journal_;  ///< internally synchronized

  mutable Mutex mutex_;
  // _any because icb::Mutex is a BasicLockable, not std::mutex; the wait
  // sites re-check their predicate in a loop, so spurious wakeups are safe.
  std::condition_variable_any cv_;
  std::vector<QueuedJob> pending_ ICBDD_GUARDED_BY(mutex_);
  /// Pending + running job ids (duplicate-admission check).
  std::vector<std::string> activeIds_ ICBDD_GUARDED_BY(mutex_);
  std::size_t running_ ICBDD_GUARDED_BY(mutex_) = 0;
  bool stop_ ICBDD_GUARDED_BY(mutex_) = false;
  obs::SharedMetrics metrics_;  ///< internally synchronized

  Mutex emitMutex_ ICBDD_ACQUIRED_AFTER(mutex_);
  std::thread dispatcher_;
};

}  // namespace icb::svc
