#include "svc/journal.hpp"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace icb::svc {

namespace fs = std::filesystem;

namespace {

/// Temp-then-rename so a kill mid-write never leaves a torn file: rename
/// within one directory is atomic on POSIX filesystems.
void writeAtomically(const std::string& path, const std::string& content) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::trunc | std::ios::binary);
    if (!out) throw std::runtime_error("journal: cannot write " + tmp);
    out << content;
    out.flush();
    if (!out) throw std::runtime_error("journal: short write to " + tmp);
  }
  fs::rename(tmp, path);
}

}  // namespace

JobJournal::JobJournal(std::string dir) : dir_(std::move(dir)) {
  std::error_code ec;
  fs::create_directories(dir_, ec);
  if (ec || !fs::is_directory(dir_)) {
    throw std::runtime_error("journal: cannot create directory " + dir_);
  }
}

std::string JobJournal::pathFor(const std::string& id,
                                const char* suffix) const {
  return dir_ + "/" + id + suffix;
}

void JobJournal::countWrite() {
  const MutexLock lock(statsMutex_);
  ++writes_;
}

std::uint64_t JobJournal::writesRecorded() const {
  const MutexLock lock(statsMutex_);
  return writes_;
}

void JobJournal::recordAccepted(const std::string& id,
                                const std::string& requestLine) {
  writeAtomically(pathFor(id, ".req"), requestLine + "\n");
  countWrite();
}

void JobJournal::recordCheckpoint(const std::string& id,
                                  const std::string& snapshot) {
  writeAtomically(pathFor(id, ".ckpt"), snapshot);
  countWrite();
}

std::optional<std::string> JobJournal::checkpointText(
    const std::string& id) const {
  std::ifstream in(pathFor(id, ".ckpt"), std::ios::binary);
  if (!in) return std::nullopt;
  std::ostringstream text;
  text << in.rdbuf();
  return std::move(text).str();
}

void JobJournal::remove(const std::string& id) {
  std::error_code ec;
  fs::remove(pathFor(id, ".req"), ec);
  fs::remove(pathFor(id, ".ckpt"), ec);
}

std::vector<std::string> JobJournal::recoverableRequests() const {
  std::vector<fs::path> reqs;
  for (const fs::directory_entry& entry : fs::directory_iterator(dir_)) {
    if (entry.is_regular_file() && entry.path().extension() == ".req") {
      reqs.push_back(entry.path());
    }
  }
  std::sort(reqs.begin(), reqs.end());
  std::vector<std::string> lines;
  lines.reserve(reqs.size());
  for (const fs::path& path : reqs) {
    std::ifstream in(path);
    std::string line;
    if (in && std::getline(in, line) && !line.empty()) {
      lines.push_back(line);
    }
  }
  return lines;
}

}  // namespace icb::svc
