#include "svc/journal.hpp"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace icb::svc {

namespace fs = std::filesystem;

namespace {

/// Temp-then-rename so a kill mid-write never leaves a torn file: rename
/// within one directory is atomic on POSIX filesystems.
void writeAtomically(const std::string& path, const std::string& content) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::trunc | std::ios::binary);
    if (!out) throw std::runtime_error("journal: cannot write " + tmp);
    out << content;
    out.flush();
    if (!out) throw std::runtime_error("journal: short write to " + tmp);
  }
  fs::rename(tmp, path);
}

}  // namespace

JobJournal::JobJournal(std::string dir) : dir_(std::move(dir)) {
  std::error_code ec;
  fs::create_directories(dir_, ec);
  if (ec || !fs::is_directory(dir_)) {
    throw std::runtime_error("journal: cannot create directory " + dir_);
  }
}

std::string JobJournal::pathFor(const std::string& id,
                                const char* suffix) const {
  return dir_ + "/" + id + suffix;
}

void JobJournal::countWrite() {
  const MutexLock lock(statsMutex_);
  ++writes_;
  healthy_ = true;
  hasWritten_ = true;
  lastWriteWatch_.reset();
  lastError_.clear();
}

void JobJournal::countFailure(const std::string& what) {
  const MutexLock lock(statsMutex_);
  ++writeFailures_;
  healthy_ = false;
  lastError_ = what;
}

std::uint64_t JobJournal::writesRecorded() const {
  const MutexLock lock(statsMutex_);
  return writes_;
}

std::uint64_t JobJournal::writeFailures() const {
  const MutexLock lock(statsMutex_);
  return writeFailures_;
}

bool JobJournal::healthy() const {
  const MutexLock lock(statsMutex_);
  return healthy_;
}

double JobJournal::secondsSinceLastWrite() const {
  const MutexLock lock(statsMutex_);
  if (!hasWritten_) return -1.0;
  return lastWriteWatch_.elapsedSeconds();
}

std::string JobJournal::lastError() const {
  const MutexLock lock(statsMutex_);
  return lastError_;
}

void JobJournal::recordAccepted(const std::string& id,
                                const std::string& requestLine) {
  try {
    writeAtomically(pathFor(id, ".req"), requestLine + "\n");
  } catch (const std::exception& e) {
    countFailure(e.what());
    return;
  }
  countWrite();
}

void JobJournal::recordCheckpoint(const std::string& id,
                                  const std::string& snapshot) {
  try {
    writeAtomically(pathFor(id, ".ckpt"), snapshot);
  } catch (const std::exception& e) {
    countFailure(e.what());
    return;
  }
  countWrite();
}

std::optional<std::string> JobJournal::checkpointText(
    const std::string& id) const {
  std::ifstream in(pathFor(id, ".ckpt"), std::ios::binary);
  if (!in) return std::nullopt;
  std::ostringstream text;
  text << in.rdbuf();
  return std::move(text).str();
}

void JobJournal::remove(const std::string& id) {
  std::error_code ec;
  fs::remove(pathFor(id, ".req"), ec);
  fs::remove(pathFor(id, ".ckpt"), ec);
}

std::vector<std::string> JobJournal::recoverableRequests() const {
  std::vector<fs::path> reqs;
  for (const fs::directory_entry& entry : fs::directory_iterator(dir_)) {
    if (entry.is_regular_file() && entry.path().extension() == ".req") {
      reqs.push_back(entry.path());
    }
  }
  std::sort(reqs.begin(), reqs.end());
  std::vector<std::string> lines;
  lines.reserve(reqs.size());
  for (const fs::path& path : reqs) {
    std::ifstream in(path);
    std::string line;
    if (in && std::getline(in, line) && !line.empty()) {
      lines.push_back(line);
    }
  }
  return lines;
}

}  // namespace icb::svc
