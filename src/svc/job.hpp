// Verification job requests: the icbdd-svc-v1 request half.
//
// A request is one JSON object per line (parsed with obs/jsonl, the same
// reader the trace tooling uses), naming a model, an engine method, and the
// resource / checkpoint knobs a service caller may set:
//
//   {"id":"fifo-1","model":"fifo","method":"xici","size":4,"width":8,
//    "inject_bug":false,"with_assists":true,"deadline_seconds":30,
//    "max_nodes":1000000,"max_iterations":200,"checkpoint_every":4,
//    "resume":true,"auto_reorder":false}
//
// Only "id" and "model" are required.  docs/service.md documents every
// field.  The same parser backs VerifyService::submitLine and the doctor's
// --job flag, so the schema cannot drift from what the service accepts.
#pragma once

#include <string>

#include "bdd/options.hpp"
#include "obs/jsonl.hpp"
#include "verif/run_all.hpp"

namespace icb::svc {

struct JobRequest {
  std::string id;               ///< [A-Za-z0-9._-], at most 64 chars
  std::string model;            ///< fifo|mutex|network|filter|pipeline
  Method method = Method::kXici;
  unsigned size = 0;            ///< model size knob (depth/cells/...); 0 = default
  unsigned width = 0;           ///< model width knob where it has one; 0 = default
  bool injectBug = false;
  bool withAssists = false;
  bool wantTrace = true;
  double deadlineSeconds = 0.0;     ///< 0 = service default / unlimited
  std::uint64_t maxNodes = 0;       ///< 0 = unlimited
  unsigned maxIterations = 0;       ///< 0 = engine default
  unsigned checkpointEvery = 0;     ///< 0 = service default
  bool resume = false;              ///< pick up this id's journaled checkpoint
  bool autoReorder = false;
  double reorderTrigger = 0.0;      ///< 0 = BddOptions default
  unsigned applyWorkers = 0;        ///< intra-problem apply workers; 0/1 = serial
  bool spill = false;               ///< arm the spill-to-disk tier for this job
};

/// True when `id` is usable as a job id (and hence a journal file stem):
/// 1..64 characters from [A-Za-z0-9._-], not starting with a dot.
[[nodiscard]] bool validJobId(const std::string& id);

/// Parses one request object.  Throws std::invalid_argument on a missing or
/// malformed field (the message is safe to echo back in a job_rejected).
[[nodiscard]] JobRequest parseJobRequest(const obs::JsonValue& request);

/// Manager options implied by the request's reorder knobs.
[[nodiscard]] BddOptions bddOptionsFor(const JobRequest& request);

/// Engine options implied by the request (checkpoint hooks and the
/// service-level deadline clamp are layered on by VerifyService).
[[nodiscard]] EngineOptions engineOptionsFor(const JobRequest& request);

/// Builds the requested model in `mgr`.  Throws std::invalid_argument on an
/// unknown model name.
[[nodiscard]] ModelInstance buildJobModel(BddManager& mgr,
                                          const JobRequest& request);

}  // namespace icb::svc
