// Runtime invariant-checking layer for the BDD core and the ICI structures.
//
// The package's correctness rests on structural invariants that ordinary
// tests exercise only indirectly: complement edges restricted to else-arcs,
// hash-consed canonicity, unique-table completeness, GC root consistency,
// and -- at the ICI layer -- the guarantee that Restrict-based
// cross-simplification and greedy conjunction evaluation preserve the
// denoted conjunction (paper Section III).  The checkers in this directory
// make violations of those invariants loud:
//
//   StructuralChecker  walks the node arena and the unique table,
//   CacheAuditor       samples computed-cache entries and re-executes them,
//   IciChecker         spot-checks ConjunctList / PairTable semantics.
//
// Checks are gated by a process-wide level:
//
//   off    no checking (production default),
//   cheap  O(1)-per-operation argument/result validation,
//   full   whole-structure audits at phase boundaries (GC, reorder,
//          simplification passes, engine iterations).
//
// The level comes from the ICBDD_CHECK_LEVEL environment variable
// ("off" / "cheap" / "full", or 0 / 1 / 2) and can be changed at runtime
// with setCheckLevel().  Library code threads checks through the hot paths
// with the ICBDD_CHECK macro, which compiles to a single relaxed atomic
// load and a branch when the level is off.
#pragma once

#include <atomic>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

namespace icb {

enum class CheckLevel : int { kOff = 0, kCheap = 1, kFull = 2 };

[[nodiscard]] const char* checkLevelName(CheckLevel level);

/// Parses "off" / "cheap" / "full" (case-insensitive) or "0" / "1" / "2".
/// Returns false (out untouched) on anything else.
bool parseCheckLevel(const std::string& text, CheckLevel* out);

namespace check_detail {
extern std::atomic<int> g_level;  // initialized from ICBDD_CHECK_LEVEL
}  // namespace check_detail

/// The process-wide check level.
[[nodiscard]] inline CheckLevel checkLevel() {
  // relaxed: the level is a standalone knob -- no other data is published
  // with it, and a momentarily stale read only delays a level change by one
  // check site.  Keeps the off-path to a plain load + branch.
  return static_cast<CheckLevel>(
      check_detail::g_level.load(std::memory_order_relaxed));
}

void setCheckLevel(CheckLevel level);

/// Runs `...` only when the process check level is at least `levelTag`
/// (kCheap or kFull).  The guard is one relaxed load + compare, so leaving
/// these in release builds costs nothing measurable while the level is off.
#define ICBDD_CHECK(levelTag, ...)                                     \
  do {                                                                 \
    if (::icb::checkLevel() >= ::icb::CheckLevel::levelTag) {          \
      __VA_ARGS__;                                                     \
    }                                                                  \
  } while (false)

// ---------------------------------------------------------------------------
// violation taxonomy

/// Every invariant class the checkers enforce.  docs/invariants.md catalogues
/// each one with its paper cross-reference; the mutation tests in
/// tests/check_test.cpp deliberately break each class and assert the
/// matching kind is reported.
enum class ViolationKind {
  // node arena / canonical form (StructuralChecker)
  kInvalidEdge,             ///< edge index out of the arena, or into a freed node
  kComplementedThenArc,     ///< stored then-arc carries the complement bit
  kRedundantNode,           ///< node with hi == lo survived mk()
  kOrderViolation,          ///< child's level not strictly below its parent's
  kDanglingChild,           ///< live node points at a free-listed node
  kDuplicateNode,           ///< two live nodes share one (var, hi, lo) triple
  // unique table / free list (StructuralChecker)
  kUniqueTableMiss,         ///< live node unreachable from its hash bucket
  kUniqueTableChainCorrupt, ///< chain hits a freed node, a cycle, or the wrong bucket
  kFreeListCorrupt,         ///< free-list length disagrees with the counters
  // GC roots (StructuralChecker / BddManager::deref)
  kStaleRefOnFreeNode,      ///< freed node still carries an external refcount
  kVarEdgeCorrupt,          ///< projection edge is not the function of its variable
  kRefUnderflow,            ///< deref of a node whose external refcount is zero
  // reordering (BddManager::auditReorderBook)
  kReorderBookMismatch,     ///< sift's incremental live count != full mark pass
  // computed cache (CacheAuditor)
  kCacheDanglingEdge,       ///< cache entry references a freed or out-of-range node
  kCacheWrongResult,        ///< re-executing the operator disagrees with the cache
  // ICI layer (IciChecker)
  kDenotationChanged,       ///< a conjunct list stopped denoting its conjunction
  kPairTableMismatch,       ///< stored P_ij differs from a fresh X_i & X_j
  kPairTableStaleSize,      ///< cached size column out of sync with the BDDs
};

[[nodiscard]] const char* violationKindName(ViolationKind kind);

struct Violation {
  ViolationKind kind;
  std::string detail;
};

/// Thrown by throwIfBroken() (and by ICBDD_CHECK sites) on the first
/// violation found.  Distinct from BddUsageError: a CheckFailure means the
/// *library* corrupted its own structures, not that the caller misused them.
class CheckFailure : public std::runtime_error {
 public:
  CheckFailure(ViolationKind kind, const std::string& detail)
      : std::runtime_error(std::string(violationKindName(kind)) + ": " +
                           detail),
        kind_(kind) {}

  [[nodiscard]] ViolationKind kind() const { return kind_; }

 private:
  ViolationKind kind_;
};

/// Accumulated result of one audit.  Checkers report every violation they
/// can find (not just the first) so the doctor binary can print a complete
/// diagnosis of a corrupted dump.
struct CheckReport {
  std::vector<Violation> violations;
  std::uint64_t itemsChecked = 0;  ///< nodes / cache entries / pairs visited

  [[nodiscard]] bool ok() const { return violations.empty(); }

  void add(ViolationKind kind, std::string detail) {
    violations.push_back(Violation{kind, std::move(detail)});
  }

  void merge(CheckReport&& other) {
    for (Violation& v : other.violations) violations.push_back(std::move(v));
    itemsChecked += other.itemsChecked;
  }

  /// True iff some violation has the given kind.
  [[nodiscard]] bool has(ViolationKind kind) const;

  /// Multi-line human-readable rendering ("ok (N items checked)" or one
  /// line per violation).
  [[nodiscard]] std::string summary() const;

  /// Throws CheckFailure for the first violation; no-op when ok.
  void throwIfBroken() const;
};

}  // namespace icb
