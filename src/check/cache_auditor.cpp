#include "check/cache_auditor.hpp"

#include <vector>

#include "bdd/manager.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

namespace icb {

CheckReport CacheAuditor::audit() {
  // Local because BddManager::Op is private; member functions of the friend
  // class see it, free functions would not.
  const auto opName = [](BddManager::Op op) -> const char* {
    switch (op) {
      case BddManager::Op::kInvalid: return "invalid";
      case BddManager::Op::kIte: return "ite";
      case BddManager::Op::kAnd: return "and";
      case BddManager::Op::kXor: return "xor";
      case BddManager::Op::kExists: return "exists";
      case BddManager::Op::kAndExists: return "and-exists";
      case BddManager::Op::kRestrict: return "restrict";
      case BddManager::Op::kConstrain: return "constrain";
    }
    return "?";
  };

  CheckReport report;
  // Suspend the manager's limits: audit re-execution is diagnostic work and
  // must not trip the engine's node / deadline caps.  The audit's own wall
  // time is credited back to the deadline on restore.
  const Stopwatch watch;
  ResourceLimits saved = mgr_.limits();
  mgr_.clearLimits();
  auto& cache = mgr_.cache_;
  const NodeStore& store = mgr_.store_;

  const auto edgeOk = [&](Edge e) {
    return edgeIndex(e) < store.size() &&
           (edgeIsConstant(e) || !store.isFree(edgeIndex(e)));
  };

  // Pass 1: every referenced edge of every valid entry must be alive.
  std::vector<std::size_t> sampleable;
  for (std::size_t slot = 0; slot < cache.size(); ++slot) {
    const BddManager::CacheEntry entry = cache.entryAt(slot);
    const auto op = static_cast<BddManager::Op>(entry.op);
    if (op == BddManager::Op::kInvalid) continue;
    ++report.itemsChecked;
    if (!edgeOk(entry.f) || !edgeOk(entry.g) || !edgeOk(entry.h) ||
        !edgeOk(entry.result)) {
      report.add(ViolationKind::kCacheDanglingEdge,
                 std::string("slot ") + std::to_string(slot) + " (" +
                     opName(op) + ") references a dead node");
      continue;
    }
    sampleable.push_back(slot);
  }

  // Pass 2: rate-limited soundness sampling.  Evict the entry first so the
  // re-execution is forced down the miss path instead of reading back the
  // very value under audit.
  Rng rng(options_.seed);
  std::size_t budget = options_.maxSamples;
  while (budget > 0 && !sampleable.empty()) {
    --budget;
    const std::size_t pick = rng.below(sampleable.size());
    const std::size_t slot = sampleable[pick];
    sampleable[pick] = sampleable.back();
    sampleable.pop_back();

    const BddManager::CacheEntry entry = cache.entryAt(slot);
    cache.clearAt(slot);

    Edge fresh = kFalseEdge;
    switch (static_cast<BddManager::Op>(entry.op)) {
      case BddManager::Op::kIte:
        fresh = mgr_.iteE(entry.f, entry.g, entry.h);
        break;
      case BddManager::Op::kAnd:
        fresh = mgr_.andE(entry.f, entry.g);
        break;
      case BddManager::Op::kXor:
        fresh = mgr_.xorE(entry.f, entry.g);
        break;
      case BddManager::Op::kExists:
        fresh = mgr_.existsE(entry.f, entry.g);
        break;
      case BddManager::Op::kAndExists:
        fresh = mgr_.andExistsE(entry.f, entry.g, entry.h);
        break;
      case BddManager::Op::kRestrict:
        fresh = mgr_.restrictE(entry.f, entry.g);
        break;
      case BddManager::Op::kConstrain:
        fresh = mgr_.constrainE(entry.f, entry.g);
        break;
      case BddManager::Op::kInvalid:
        continue;  // unreachable: filtered in pass 1
    }

    if (fresh != entry.result) {
      report.add(ViolationKind::kCacheWrongResult,
                 std::string("slot ") + std::to_string(slot) + " (" +
                     opName(static_cast<BddManager::Op>(entry.op)) +
                     "): stored " +
                     std::to_string(entry.result) + ", re-execution gives " +
                     std::to_string(fresh));
    }
  }

  saved.deadline.extendBySeconds(watch.elapsedSeconds());
  mgr_.setLimits(saved);
  return report;
}

}  // namespace icb
