#include "check/check.hpp"

#include <algorithm>
#include <cctype>
#include <cstdlib>

namespace icb {

namespace {

int levelFromEnv() {
  const char* env = std::getenv("ICBDD_CHECK_LEVEL");
  if (env == nullptr) return static_cast<int>(CheckLevel::kOff);
  CheckLevel parsed;
  if (parseCheckLevel(env, &parsed)) return static_cast<int>(parsed);
  return static_cast<int>(CheckLevel::kOff);
}

}  // namespace

namespace check_detail {
std::atomic<int> g_level{levelFromEnv()};
}  // namespace check_detail

void setCheckLevel(CheckLevel level) {
  // relaxed: pairs with the relaxed load in checkLevel() -- the level is an
  // independent int with no associated payload to publish.
  check_detail::g_level.store(static_cast<int>(level),
                              std::memory_order_relaxed);
}

const char* checkLevelName(CheckLevel level) {
  switch (level) {
    case CheckLevel::kOff: return "off";
    case CheckLevel::kCheap: return "cheap";
    case CheckLevel::kFull: return "full";
  }
  return "?";
}

bool parseCheckLevel(const std::string& text, CheckLevel* out) {
  std::string lower(text.size(), '\0');
  std::transform(text.begin(), text.end(), lower.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  if (lower == "off" || lower == "0" || lower == "none") {
    *out = CheckLevel::kOff;
  } else if (lower == "cheap" || lower == "1") {
    *out = CheckLevel::kCheap;
  } else if (lower == "full" || lower == "2") {
    *out = CheckLevel::kFull;
  } else {
    return false;
  }
  return true;
}

const char* violationKindName(ViolationKind kind) {
  switch (kind) {
    case ViolationKind::kInvalidEdge: return "invalid-edge";
    case ViolationKind::kComplementedThenArc: return "complemented-then-arc";
    case ViolationKind::kRedundantNode: return "redundant-node";
    case ViolationKind::kOrderViolation: return "order-violation";
    case ViolationKind::kDanglingChild: return "dangling-child";
    case ViolationKind::kDuplicateNode: return "duplicate-node";
    case ViolationKind::kUniqueTableMiss: return "unique-table-miss";
    case ViolationKind::kUniqueTableChainCorrupt:
      return "unique-table-chain-corrupt";
    case ViolationKind::kFreeListCorrupt: return "free-list-corrupt";
    case ViolationKind::kStaleRefOnFreeNode: return "stale-ref-on-free-node";
    case ViolationKind::kVarEdgeCorrupt: return "var-edge-corrupt";
    case ViolationKind::kRefUnderflow: return "ref-underflow";
    case ViolationKind::kReorderBookMismatch: return "reorder-book-mismatch";
    case ViolationKind::kCacheDanglingEdge: return "cache-dangling-edge";
    case ViolationKind::kCacheWrongResult: return "cache-wrong-result";
    case ViolationKind::kDenotationChanged: return "denotation-changed";
    case ViolationKind::kPairTableMismatch: return "pair-table-mismatch";
    case ViolationKind::kPairTableStaleSize: return "pair-table-stale-size";
  }
  return "?";
}

bool CheckReport::has(ViolationKind kind) const {
  return std::any_of(violations.begin(), violations.end(),
                     [kind](const Violation& v) { return v.kind == kind; });
}

std::string CheckReport::summary() const {
  if (ok()) {
    return "ok (" + std::to_string(itemsChecked) + " items checked)";
  }
  std::string out = std::to_string(violations.size()) + " violation" +
                    (violations.size() == 1 ? "" : "s") + ":";
  for (const Violation& v : violations) {
    out += "\n  [";
    out += violationKindName(v.kind);
    out += "] ";
    out += v.detail;
  }
  return out;
}

void CheckReport::throwIfBroken() const {
  if (!violations.empty()) {
    throw CheckFailure(violations.front().kind, violations.front().detail);
  }
}

}  // namespace icb
