// CacheAuditor: soundness sampling of the computed cache.
//
// A wrong computed-cache entry is the quietest corruption a BDD package can
// have: every operator result stays canonical and structurally healthy, it
// just denotes the wrong function.  The auditor makes that class loud by
// sampling valid entries, evicting each sample, re-executing the operator on
// the now-guaranteed miss path, and comparing the fresh result against what
// the cache had stored.
//
// Two passes:
//   * validity scan (whole cache, cheap): every referenced edge must point
//     inside the arena at a live node;
//   * soundness sampling (rate-limited): at most `maxSamples` entries are
//     re-executed per audit, chosen by a deterministic PRNG so failures
//     reproduce.
//
// Re-execution allocates nodes (never GCs); the manager's resource limits
// are suspended for the duration of the audit so diagnostic work cannot
// trip an engine's node or deadline caps.
#pragma once

#include <cstdint>

#include "check/check.hpp"

namespace icb {

class BddManager;

struct CacheAuditOptions {
  /// Cap on entries re-executed per audit() call (the validity scan always
  /// covers the whole table).  0 disables re-execution.
  std::size_t maxSamples = 64;
  /// Sampling PRNG seed; fixed by default so audits are reproducible.
  std::uint64_t seed = 0xC0FFEE0DDBA11ull;
};

class CacheAuditor {
 public:
  explicit CacheAuditor(BddManager& mgr, const CacheAuditOptions& options = {})
      : mgr_(mgr), options_(options) {}

  /// Runs the validity scan plus the soundness sampling.
  [[nodiscard]] CheckReport audit();

  /// audit() + CheckReport::throwIfBroken().
  void throwIfBroken() { audit().throwIfBroken(); }

 private:
  BddManager& mgr_;
  CacheAuditOptions options_;
};

}  // namespace icb
