// IciChecker: semantic audits for the implicitly-conjoined layer.
//
// The ICI transformations are only allowed to change the *representation*
// of a conjunction, never the denoted set:
//   * simplifyList / evaluateAndSimplify replace members by Restrict
//     results and greedy pairwise evaluations (paper Section III.A) -- both
//     preserve X_1 & ... & X_n;
//   * PairTable caches every pairwise conjunction P_ij = X_i & X_j plus its
//     size column (Figure 1's ratio bookkeeping) and must stay in sync with
//     the conjuncts across merges.
//
// checkDenotationPreserved compares two lists semantically: exactly (via
// bounded explicit evaluation) when both sides are small enough, and by
// random-assignment spot checks otherwise -- explicit evaluation of a large
// implicit conjunction is the very blow-up the technique exists to avoid,
// so the checker must not force it.
#pragma once

#include <cstdint>

#include "check/check.hpp"

namespace icb {

class BddManager;
class ConjunctList;
class PairTable;

struct IciCheckOptions {
  /// Exact equivalence check is attempted only when each list's shared node
  /// count is at or below this; larger lists get spot checks only.
  std::uint64_t exactNodeLimit = 4096;
  /// Node budget multiple granted to the bounded explicit evaluation used
  /// by the exact path (relative to the lists' shared sizes).
  std::uint64_t exactBudgetFactor = 64;
  /// Random full assignments evaluated on the spot-check path.
  unsigned sampleCount = 64;
  /// Spot-check PRNG seed; fixed so failures reproduce.
  std::uint64_t seed = 0x1C1C1C1C5EEDull;
};

class IciChecker {
 public:
  explicit IciChecker(BddManager& mgr, const IciCheckOptions& options = {})
      : mgr_(mgr), options_(options) {}

  /// Verifies that `after` still denotes the same conjunction as `before`.
  /// Both lists must live in this checker's manager.
  [[nodiscard]] CheckReport checkDenotationPreserved(
      const ConjunctList& before, const ConjunctList& after) const;

  /// Verifies every non-aborted PairTable entry against a freshly computed
  /// X_i & X_j, and the cached size columns against the live BDDs.
  [[nodiscard]] CheckReport checkPairTable(const PairTable& table) const;

 private:
  BddManager& mgr_;
  IciCheckOptions options_;
};

}  // namespace icb
