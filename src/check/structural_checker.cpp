#include "check/structural_checker.hpp"

#include <unordered_map>

#include "bdd/manager.hpp"
#include "util/timer.hpp"

namespace icb {

namespace {

std::string nodeDesc(std::uint32_t index, const char* what) {
  return "node " + std::to_string(index) + ": " + what;
}

}  // namespace

CheckReport StructuralChecker::run(CheckLevel effort) const {
  CheckReport report;
  if (effort == CheckLevel::kOff) return report;
  checkFreeList(report);
  checkRoots(report);
  if (effort >= CheckLevel::kFull) {
    checkNodes(report);
    checkUniqueTable(report);
  }
  return report;
}

void auditArenaCreditingTime(BddManager& mgr, CheckLevel effort) {
  const Stopwatch watch;
  StructuralChecker(mgr).throwIfBroken(effort);
  ResourceLimits limits = mgr.limits();
  limits.deadline.extendBySeconds(watch.elapsedSeconds());
  mgr.setLimits(limits);
}

void StructuralChecker::checkNodes(CheckReport& report) const {
  const auto& nodes = mgr_.nodes_;
  // packed (var, hi, lo) -> indices seen, for hash-consing uniqueness.
  std::unordered_map<std::uint64_t, std::vector<std::uint32_t>> seen;
  seen.reserve(nodes.size());

  for (std::uint32_t i = 1; i < nodes.size(); ++i) {
    const BddManager::Node& n = nodes[i];
    if (n.var == BddManager::kFreeVar) {
      if (n.ref != 0) {
        report.add(ViolationKind::kStaleRefOnFreeNode,
                   nodeDesc(i, "freed but ref = ") + std::to_string(n.ref));
      }
      continue;
    }
    ++report.itemsChecked;
    if (n.var >= mgr_.varEdges_.size()) {
      report.add(ViolationKind::kInvalidEdge,
                 nodeDesc(i, "variable out of range: ") +
                     std::to_string(n.var));
      continue;
    }
    if (edgeIsComplemented(n.hi)) {
      report.add(ViolationKind::kComplementedThenArc,
                 nodeDesc(i, "then-arc carries the complement bit"));
    }
    if (n.hi == n.lo) {
      report.add(ViolationKind::kRedundantNode,
                 nodeDesc(i, "hi == lo (should have been collapsed by mk)"));
    }
    const unsigned myLevel = mgr_.var2level_[n.var];
    for (const Edge child : {n.hi, n.lo}) {
      if (edgeIndex(child) >= nodes.size()) {
        report.add(ViolationKind::kInvalidEdge,
                   nodeDesc(i, "child edge index out of the arena"));
        continue;
      }
      if (edgeIsConstant(child)) continue;
      const BddManager::Node& c = nodes[edgeIndex(child)];
      if (c.var == BddManager::kFreeVar) {
        report.add(ViolationKind::kDanglingChild,
                   nodeDesc(i, "points at freed node ") +
                       std::to_string(edgeIndex(child)));
      } else if (c.var >= mgr_.var2level_.size()) {
        report.add(ViolationKind::kInvalidEdge,
                   nodeDesc(edgeIndex(child), "child variable out of range"));
      } else if (mgr_.var2level_[c.var] <= myLevel) {
        report.add(ViolationKind::kOrderViolation,
                   nodeDesc(i, "child ") + std::to_string(edgeIndex(child)) +
                       " is not strictly below it in the order");
      }
    }
    const std::uint64_t key = (static_cast<std::uint64_t>(n.var) << 40) ^
                              (static_cast<std::uint64_t>(n.hi) << 20) ^
                              static_cast<std::uint64_t>(n.lo);
    // The packed key is not injective in principle, so confirm field-by-field
    // among the nodes sharing it before reporting a duplicate.
    std::vector<std::uint32_t>& bucket = seen[key];
    for (const std::uint32_t j : bucket) {
      const BddManager::Node& other = nodes[j];
      if (other.var == n.var && other.hi == n.hi && other.lo == n.lo) {
        report.add(ViolationKind::kDuplicateNode,
                   nodeDesc(i, "duplicates node ") + std::to_string(j) +
                       " (hash-consing uniqueness broken)");
        break;
      }
    }
    bucket.push_back(i);
  }
}

void StructuralChecker::checkUniqueTable(CheckReport& report) const {
  const auto& nodes = mgr_.nodes_;
  const auto& buckets = mgr_.buckets_;

  // Sweep every chain: entries must be live, hash to their bucket, and the
  // total chain length must not exceed the arena (cycle guard).
  std::uint64_t chained = 0;
  for (std::size_t b = 0; b < buckets.size(); ++b) {
    std::uint64_t steps = 0;
    for (std::uint32_t i = buckets[b]; i != BddManager::kNil;
         i = nodes[i].next) {
      if (i >= nodes.size()) {
        report.add(ViolationKind::kUniqueTableChainCorrupt,
                   "bucket " + std::to_string(b) +
                       " chains to out-of-range index " + std::to_string(i));
        break;
      }
      const BddManager::Node& n = nodes[i];
      if (n.var == BddManager::kFreeVar) {
        report.add(ViolationKind::kUniqueTableChainCorrupt,
                   "bucket " + std::to_string(b) + " chains to freed node " +
                       std::to_string(i));
        break;
      }
      if (mgr_.hashNode(n.var, n.hi, n.lo) != b) {
        report.add(ViolationKind::kUniqueTableChainCorrupt,
                   nodeDesc(i, "sits in the wrong bucket"));
      }
      ++chained;
      if (++steps > nodes.size()) {
        report.add(ViolationKind::kUniqueTableChainCorrupt,
                   "bucket " + std::to_string(b) + " chain has a cycle");
        break;
      }
    }
  }

  // Completeness: every live node findable by rehashing its triple.
  for (std::uint32_t i = 1; i < nodes.size(); ++i) {
    const BddManager::Node& n = nodes[i];
    if (n.var == BddManager::kFreeVar) continue;
    ++report.itemsChecked;
    bool found = false;
    std::uint64_t steps = 0;
    for (std::uint32_t j = buckets[mgr_.hashNode(n.var, n.hi, n.lo)];
         j != BddManager::kNil && steps <= nodes.size();
         j = nodes[j].next, ++steps) {
      if (j == i) {
        found = true;
        break;
      }
    }
    if (!found) {
      report.add(ViolationKind::kUniqueTableMiss,
                 nodeDesc(i, "not reachable from its hash bucket"));
    }
  }
  (void)chained;
}

void StructuralChecker::checkFreeList(CheckReport& report) const {
  const auto& nodes = mgr_.nodes_;
  std::uint64_t length = 0;
  for (std::uint32_t i = mgr_.freeHead_; i != BddManager::kNil;
       i = nodes[i].next) {
    if (i >= nodes.size()) {
      report.add(ViolationKind::kFreeListCorrupt,
                 "free list chains to out-of-range index " + std::to_string(i));
      return;
    }
    if (nodes[i].var != BddManager::kFreeVar) {
      report.add(ViolationKind::kFreeListCorrupt,
                 nodeDesc(i, "on the free list but not marked free"));
      return;
    }
    if (++length > nodes.size()) {
      report.add(ViolationKind::kFreeListCorrupt, "free list has a cycle");
      return;
    }
  }
  if (length != mgr_.freeCount_) {
    report.add(ViolationKind::kFreeListCorrupt,
               "free list length " + std::to_string(length) +
                   " != freeCount " + std::to_string(mgr_.freeCount_));
  }
  report.itemsChecked += length;
}

void StructuralChecker::checkRoots(CheckReport& report) const {
  const auto& nodes = mgr_.nodes_;
  // The terminal is a permanent root.
  if (nodes.empty() || nodes[0].ref != BddManager::kMaxRef) {
    report.add(ViolationKind::kVarEdgeCorrupt,
               "terminal node is missing its permanent reference");
    return;
  }
  // Every projection edge must still denote its variable and stay pinned.
  for (unsigned v = 0; v < mgr_.varEdges_.size(); ++v) {
    ++report.itemsChecked;
    const Edge e = mgr_.varEdges_[v];
    if (edgeIndex(e) >= nodes.size() || edgeIsComplemented(e) ||
        edgeIsConstant(e)) {
      report.add(ViolationKind::kVarEdgeCorrupt,
                 "projection edge of v" + std::to_string(v) + " is malformed");
      continue;
    }
    const BddManager::Node& n = nodes[edgeIndex(e)];
    if (n.var != v || n.hi != kTrueEdge || n.lo != kFalseEdge) {
      report.add(ViolationKind::kVarEdgeCorrupt,
                 "projection edge of v" + std::to_string(v) +
                     " no longer denotes the variable");
    } else if (n.ref == 0) {
      report.add(ViolationKind::kVarEdgeCorrupt,
                 "projection node of v" + std::to_string(v) +
                     " lost its pin reference");
    }
  }
}

}  // namespace icb
