#include "check/structural_checker.hpp"

#include <unordered_map>

#include "bdd/manager.hpp"
#include "util/timer.hpp"

namespace icb {

namespace {

std::string nodeDesc(std::uint32_t index, const char* what) {
  return "node " + std::to_string(index) + ": " + what;
}

}  // namespace

CheckReport StructuralChecker::run(CheckLevel effort) const {
  CheckReport report;
  if (effort == CheckLevel::kOff) return report;
  checkFreeList(report);
  checkRoots(report);
  if (effort >= CheckLevel::kFull) {
    checkNodes(report);
    checkUniqueTable(report);
  }
  return report;
}

void auditArenaCreditingTime(BddManager& mgr, CheckLevel effort) {
  const Stopwatch watch;
  StructuralChecker(mgr).throwIfBroken(effort);
  ResourceLimits limits = mgr.limits();
  limits.deadline.extendBySeconds(watch.elapsedSeconds());
  mgr.setLimits(limits);
}

void StructuralChecker::checkNodes(CheckReport& report) const {
  const NodeStore& store = mgr_.store_;
  // Freed nodes carry no count by construction (the side table only holds
  // externally referenced indices), so a stale entry on a free node is a
  // root-set corruption.
  for (const auto& [i, r] : store.refs()) {
    if (i != 0 && r != 0 && store.isFree(i)) {
      report.add(ViolationKind::kStaleRefOnFreeNode,
                 nodeDesc(i, "freed but ref = ") + std::to_string(r));
    }
  }

  // packed (var, hi, lo) -> indices seen, for hash-consing uniqueness.
  std::unordered_map<std::uint64_t, std::vector<std::uint32_t>> seen;
  seen.reserve(store.size());

  for (std::uint32_t i = 1; i < store.size(); ++i) {
    if (store.isFree(i)) continue;
    const unsigned var = store.varOf(i);
    const Edge hi = store.hiOf(i);
    const Edge lo = store.loOf(i);
    ++report.itemsChecked;
    if (var >= mgr_.varEdges_.size()) {
      report.add(ViolationKind::kInvalidEdge,
                 nodeDesc(i, "variable out of range: ") + std::to_string(var));
      continue;
    }
    if (edgeIsComplemented(hi)) {
      report.add(ViolationKind::kComplementedThenArc,
                 nodeDesc(i, "then-arc carries the complement bit"));
    }
    if (hi == lo) {
      report.add(ViolationKind::kRedundantNode,
                 nodeDesc(i, "hi == lo (should have been collapsed by mk)"));
    }
    const unsigned myLevel = mgr_.var2level_[var];
    for (const Edge child : {hi, lo}) {
      if (edgeIndex(child) >= store.size()) {
        report.add(ViolationKind::kInvalidEdge,
                   nodeDesc(i, "child edge index out of the arena"));
        continue;
      }
      if (edgeIsConstant(child)) continue;
      const unsigned childVar = store.varOf(edgeIndex(child));
      if (childVar == BddManager::kFreeVar) {
        report.add(ViolationKind::kDanglingChild,
                   nodeDesc(i, "points at freed node ") +
                       std::to_string(edgeIndex(child)));
      } else if (childVar >= mgr_.var2level_.size()) {
        report.add(ViolationKind::kInvalidEdge,
                   nodeDesc(edgeIndex(child), "child variable out of range"));
      } else if (mgr_.var2level_[childVar] <= myLevel) {
        report.add(ViolationKind::kOrderViolation,
                   nodeDesc(i, "child ") + std::to_string(edgeIndex(child)) +
                       " is not strictly below it in the order");
      }
    }
    const std::uint64_t key = (static_cast<std::uint64_t>(var) << 40) ^
                              (static_cast<std::uint64_t>(hi) << 20) ^
                              static_cast<std::uint64_t>(lo);
    // The packed key is not injective in principle, so confirm field-by-field
    // among the nodes sharing it before reporting a duplicate.
    std::vector<std::uint32_t>& bucket = seen[key];
    for (const std::uint32_t j : bucket) {
      if (store.varOf(j) == var && store.hiOf(j) == hi && store.loOf(j) == lo) {
        report.add(ViolationKind::kDuplicateNode,
                   nodeDesc(i, "duplicates node ") + std::to_string(j) +
                       " (hash-consing uniqueness broken)");
        break;
      }
    }
    bucket.push_back(i);
  }
}

void StructuralChecker::checkUniqueTable(CheckReport& report) const {
  const NodeStore& store = mgr_.store_;

  // Sweep every chain: entries must be live, hash to their bucket, and the
  // total chain length must not exceed the arena (cycle guard).
  std::uint64_t chained = 0;
  for (std::size_t b = 0; b < store.bucketCount(); ++b) {
    std::uint64_t steps = 0;
    for (std::uint32_t i = store.bucketHead(b); i != BddManager::kNil;
         i = store.nextOf(i)) {
      if (i >= store.size()) {
        report.add(ViolationKind::kUniqueTableChainCorrupt,
                   "bucket " + std::to_string(b) +
                       " chains to out-of-range index " + std::to_string(i));
        break;
      }
      if (store.isFree(i)) {
        report.add(ViolationKind::kUniqueTableChainCorrupt,
                   "bucket " + std::to_string(b) + " chains to freed node " +
                       std::to_string(i));
        break;
      }
      if (store.hashOf(store.varOf(i), store.hiOf(i), store.loOf(i)) != b) {
        report.add(ViolationKind::kUniqueTableChainCorrupt,
                   nodeDesc(i, "sits in the wrong bucket"));
      }
      ++chained;
      if (++steps > store.size()) {
        report.add(ViolationKind::kUniqueTableChainCorrupt,
                   "bucket " + std::to_string(b) + " chain has a cycle");
        break;
      }
    }
  }

  // Completeness: every live node findable by rehashing its triple.
  for (std::uint32_t i = 1; i < store.size(); ++i) {
    if (store.isFree(i)) continue;
    ++report.itemsChecked;
    bool found = false;
    std::uint64_t steps = 0;
    const std::size_t b =
        store.hashOf(store.varOf(i), store.hiOf(i), store.loOf(i));
    for (std::uint32_t j = store.bucketHead(b);
         j != BddManager::kNil && steps <= store.size();
         j = store.nextOf(j), ++steps) {
      if (j == i) {
        found = true;
        break;
      }
    }
    if (!found) {
      report.add(ViolationKind::kUniqueTableMiss,
                 nodeDesc(i, "not reachable from its hash bucket"));
    }
  }
  (void)chained;
}

void StructuralChecker::checkFreeList(CheckReport& report) const {
  const NodeStore& store = mgr_.store_;
  std::uint64_t length = 0;
  for (std::uint32_t i = store.freeHead(); i != BddManager::kNil;
       i = store.nextOf(i)) {
    if (i >= store.size()) {
      report.add(ViolationKind::kFreeListCorrupt,
                 "free list chains to out-of-range index " + std::to_string(i));
      return;
    }
    if (!store.isFree(i)) {
      report.add(ViolationKind::kFreeListCorrupt,
                 nodeDesc(i, "on the free list but not marked free"));
      return;
    }
    if (++length > store.size()) {
      report.add(ViolationKind::kFreeListCorrupt, "free list has a cycle");
      return;
    }
  }
  if (length != store.freeCount()) {
    report.add(ViolationKind::kFreeListCorrupt,
               "free list length " + std::to_string(length) +
                   " != freeCount " + std::to_string(store.freeCount()));
  }
  report.itemsChecked += length;
}

void StructuralChecker::checkRoots(CheckReport& report) const {
  const NodeStore& store = mgr_.store_;
  // The terminal is a permanent root.
  if (store.size() == 0 || store.refOf(0) != BddManager::kMaxRef) {
    report.add(ViolationKind::kVarEdgeCorrupt,
               "terminal node is missing its permanent reference");
    return;
  }
  // Every projection edge must still denote its variable and stay pinned.
  for (unsigned v = 0; v < mgr_.varEdges_.size(); ++v) {
    ++report.itemsChecked;
    const Edge e = mgr_.varEdges_[v];
    if (edgeIndex(e) >= store.size() || edgeIsComplemented(e) ||
        edgeIsConstant(e)) {
      report.add(ViolationKind::kVarEdgeCorrupt,
                 "projection edge of v" + std::to_string(v) + " is malformed");
      continue;
    }
    const std::uint32_t i = edgeIndex(e);
    if (store.varOf(i) != v || store.hiOf(i) != kTrueEdge ||
        store.loOf(i) != kFalseEdge) {
      report.add(ViolationKind::kVarEdgeCorrupt,
                 "projection edge of v" + std::to_string(v) +
                     " no longer denotes the variable");
    } else if (store.refOf(i) == 0) {
      report.add(ViolationKind::kVarEdgeCorrupt,
                 "projection node of v" + std::to_string(v) +
                     " lost its pin reference");
    }
  }
}

}  // namespace icb
