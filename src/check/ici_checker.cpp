#include "check/ici_checker.hpp"

#include <algorithm>
#include <vector>

#include "bdd/manager.hpp"
#include "ici/conjunct_list.hpp"
#include "ici/pair_table.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

namespace icb {

namespace {

/// Suspends the manager's resource limits for the duration of an audit:
/// checker work is diagnostic and must not trip (or be aborted by) the
/// engine's node / deadline caps.  On restore, the time the audit took is
/// credited back to the deadline so full-level checking slows a limited run
/// down without ever flipping it to a spurious deadline abort.
class LimitsPause {
 public:
  explicit LimitsPause(BddManager& mgr) : mgr_(mgr), saved_(mgr.limits()) {
    mgr_.clearLimits();
  }
  ~LimitsPause() {
    saved_.deadline.extendBySeconds(watch_.elapsedSeconds());
    mgr_.setLimits(saved_);
  }
  LimitsPause(const LimitsPause&) = delete;
  LimitsPause& operator=(const LimitsPause&) = delete;

 private:
  BddManager& mgr_;
  ResourceLimits saved_;
  Stopwatch watch_;
};

/// Conjoins a list explicitly under a node budget, smallest member first.
/// Returns false when the budget runs out (the conjunction is one the ICI
/// technique exists to avoid building -- give up rather than blow up).
bool boundedConjunction(BddManager& mgr, const ConjunctList& list,
                        std::uint64_t budget, Edge* out) {
  std::vector<Bdd> sorted = list.items();
  std::sort(sorted.begin(), sorted.end(), [](const Bdd& a, const Bdd& b) {
    return a.size() < b.size();
  });
  Edge acc = kTrueEdge;
  for (const Bdd& f : sorted) {
    // Edge-level only from here: andBoundedE never garbage-collects, so the
    // unprotected accumulator edge stays valid across iterations.
    if (!mgr.andBoundedE(acc, f.edge(), budget, &acc)) return false;
    if (acc == kFalseEdge) break;
  }
  *out = acc;
  return true;
}

}  // namespace

CheckReport IciChecker::checkDenotationPreserved(
    const ConjunctList& before, const ConjunctList& after) const {
  CheckReport report;
  LimitsPause pause(mgr_);

  const std::uint64_t sizeBefore = before.sharedNodeCount();
  const std::uint64_t sizeAfter = after.sharedNodeCount();
  ++report.itemsChecked;

  // Exact path: explicitly evaluate both conjunctions under a budget and
  // compare the canonical results.
  if (sizeBefore <= options_.exactNodeLimit &&
      sizeAfter <= options_.exactNodeLimit) {
    const std::uint64_t budget =
        options_.exactBudgetFactor * (sizeBefore + sizeAfter + 1) + 4096;
    Edge a = kTrueEdge;
    Edge b = kTrueEdge;
    if (boundedConjunction(mgr_, before, budget, &a) &&
        boundedConjunction(mgr_, after, budget, &b)) {
      if (a != b) {
        report.add(ViolationKind::kDenotationChanged,
                   "explicit conjunctions differ: before " + before.describe() +
                       ", after " + after.describe());
      }
      return report;
    }
    // Budget exceeded: fall through to the sampling path.
  }

  // Spot-check path: the two conjunctions must agree on random assignments.
  const unsigned nvars = mgr_.varCount();
  Rng rng(options_.seed);
  std::vector<char> values(nvars, 0);
  for (unsigned s = 0; s < options_.sampleCount; ++s) {
    for (unsigned v = 0; v < nvars; ++v) {
      values[v] = rng.coin() ? 1 : 0;
    }
    if (before.evalAssignment(values) != after.evalAssignment(values)) {
      report.add(ViolationKind::kDenotationChanged,
                 "lists disagree on a sampled assignment (sample " +
                     std::to_string(s) + "): before " + before.describe() +
                     ", after " + after.describe());
      return report;
    }
  }
  return report;
}

CheckReport IciChecker::checkPairTable(const PairTable& table) const {
  CheckReport report;
  LimitsPause pause(mgr_);
  const std::size_t n = table.conjuncts_.size();

  for (std::size_t i = 0; i < n; ++i) {
    // Size column: Figure 1's ratio bookkeeping divides by these.
    if (table.sizes_[i] != table.conjuncts_[i].size()) {
      report.add(ViolationKind::kPairTableStaleSize,
                 "conjunct " + std::to_string(i) + " size column says " +
                     std::to_string(table.sizes_[i]) + " but the BDD has " +
                     std::to_string(table.conjuncts_[i].size()) + " nodes");
    }
    for (std::size_t j = i + 1; j < n; ++j) {
      const PairTable::Entry& entry = table.table_[i][j];
      ++report.itemsChecked;
      if (entry.aborted) continue;  // over budget by design, nothing stored
      const std::string pair =
          "P(" + std::to_string(i) + "," + std::to_string(j) + ")";
      if (entry.conjunction.isNull()) {
        report.add(ViolationKind::kPairTableMismatch,
                   pair + " is neither aborted nor built");
        continue;
      }
      const Edge fresh =
          mgr_.andE(table.conjuncts_[i].edge(), table.conjuncts_[j].edge());
      if (fresh != entry.conjunction.edge()) {
        report.add(ViolationKind::kPairTableMismatch,
                   pair + " differs from a freshly computed conjunction");
      }
      if (entry.size != entry.conjunction.size()) {
        report.add(ViolationKind::kPairTableStaleSize,
                   pair + " caches size " + std::to_string(entry.size) +
                       " but stores a " +
                       std::to_string(entry.conjunction.size()) + "-node BDD");
      }
    }
  }
  return report;
}

}  // namespace icb
