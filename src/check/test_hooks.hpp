// Test-only surgical access to the private state of BddManager and
// PairTable, used by the mutation tests (tests/check_test.cpp) to break one
// invariant at a time and assert the matching checker diagnostic.
//
// NOTHING outside tests and the checker test-bench may include this header:
// every method here violates the package's invariants on purpose.  A manager
// operated on by a surgeon is only good for being diagnosed afterwards.
#pragma once

#include "bdd/manager.hpp"
#include "ici/pair_table.hpp"

namespace icb {

class NodeSurgeon {
 public:
  static std::uint32_t nodeCount(const BddManager& mgr) {
    return static_cast<std::uint32_t>(mgr.store_.size());
  }

  static unsigned rawVar(const BddManager& mgr, std::uint32_t index) {
    return mgr.store_.varOf(index);
  }
  static bool isFree(const BddManager& mgr, std::uint32_t index) {
    return mgr.store_.isFree(index);
  }
  static Edge rawHi(const BddManager& mgr, std::uint32_t index) {
    return mgr.store_.hiOf(index);
  }
  static Edge rawLo(const BddManager& mgr, std::uint32_t index) {
    return mgr.store_.loOf(index);
  }

  /// Overwrites a node's function fields, bypassing mk() and the unique
  /// table entirely.
  static void setNodeFields(BddManager& mgr, std::uint32_t index, unsigned var,
                            Edge hi, Edge lo) {
    mgr.store_.setFields(index, var, hi, lo);
  }

  /// Swaps a node's children in place (breaks canonicity: the then-arc
  /// inherits the else-arc's complement bit, or the function changes).
  static void swapChildren(BddManager& mgr, std::uint32_t index) {
    NodeStore& store = mgr.store_;
    store.setFields(index, store.varOf(index), store.loOf(index),
                    store.hiOf(index));
  }

  /// Sets the complement bit on a stored then-arc.
  static void complementThenArc(BddManager& mgr, std::uint32_t index) {
    mgr.store_.setHi(index, edgeNot(mgr.store_.hiOf(index)));
  }

  /// Forces a node's external reference count.
  static void setRef(BddManager& mgr, std::uint32_t index, std::uint32_t ref) {
    mgr.store_.setRef(index, ref);
  }

  /// Reads a node's external reference count (0 when absent from the side
  /// table).
  static std::uint32_t refOf(const BddManager& mgr, std::uint32_t index) {
    return mgr.store_.refOf(index);
  }

  /// Unlinks a node from its unique-table chain without freeing it (the
  /// node stays live but becomes unfindable -- a rehash-completeness hole).
  static bool detachFromUniqueTable(BddManager& mgr, std::uint32_t index) {
    if (!mgr.store_.unlinkFromBucket(index)) return false;
    mgr.store_.setNext(index, BddManager::kNil);
    return true;
  }

  /// Desynchronizes the free-list counter from the actual chain.
  static void bumpFreeCount(BddManager& mgr, std::uint64_t delta) {
    mgr.store_.bumpFreeCount(delta);
  }

  /// Repoints a projection edge at an arbitrary edge.
  static void setVarEdge(BddManager& mgr, unsigned var, Edge e) {
    mgr.varEdges_[var] = e;
  }

  /// Lowers the node-index cap so tests can trip the 31-bit index-space
  /// guard without allocating anywhere near 2^31 nodes.
  static void capNodeIndexSpace(BddManager& mgr, std::uint32_t cap) {
    mgr.store_.setIndexCapForTesting(cap);
  }

  /// Drops an edge's external reference through the manager's checked path,
  /// outside any Bdd destructor -- so an underflow CheckFailure propagates
  /// instead of terminating.
  static void derefEdge(BddManager& mgr, Edge e) { mgr.deref(e); }

  /// Flips the result of the first valid computed-cache entry found.
  /// Returns false when the cache is empty.
  static bool corruptFirstCacheEntry(BddManager& mgr) {
    for (std::size_t slot = 0; slot < mgr.cache_.size(); ++slot) {
      BddManager::CacheEntry entry = mgr.cache_.entryAt(slot);
      if (static_cast<BddManager::Op>(entry.op) != BddManager::Op::kInvalid) {
        entry.result = edgeNot(entry.result);
        mgr.cache_.setEntryAt(slot, entry);
        return true;
      }
    }
    return false;
  }

  /// Plants a cache entry whose operand points outside the arena.
  static void plantDanglingCacheEntry(BddManager& mgr) {
    BddManager::CacheEntry entry;
    entry.op = static_cast<std::uint32_t>(BddManager::Op::kAnd);
    entry.f =
        makeEdge(static_cast<std::uint32_t>(mgr.store_.size()) + 7, false);
    entry.g = kTrueEdge;
    entry.result = kTrueEdge;
    mgr.cache_.setEntryAt(0, entry);
  }
};

class PairTableSurgeon {
 public:
  /// Replaces the stored conjunction P_ij with an arbitrary BDD.
  static void replaceEntry(PairTable& table, std::size_t i, std::size_t j,
                           Bdd wrong) {
    PairTable::Entry& entry = table.table_[i][j];
    entry.conjunction = std::move(wrong);
  }

  /// Corrupts the cached size column of entry (i, j).
  static void corruptEntrySize(PairTable& table, std::size_t i, std::size_t j,
                               std::uint64_t size) {
    table.table_[i][j].size = size;
  }

  /// Corrupts the cached size of conjunct i.
  static void corruptConjunctSize(PairTable& table, std::size_t i,
                                  std::uint64_t size) {
    table.sizes_[i] = size;
  }
};

}  // namespace icb
