// Test-only surgical access to the private state of BddManager and
// PairTable, used by the mutation tests (tests/check_test.cpp) to break one
// invariant at a time and assert the matching checker diagnostic.
//
// NOTHING outside tests and the checker test-bench may include this header:
// every method here violates the package's invariants on purpose.  A manager
// operated on by a surgeon is only good for being diagnosed afterwards.
#pragma once

#include "bdd/manager.hpp"
#include "ici/pair_table.hpp"
#include "util/lint.hpp"

namespace icb {

class NodeSurgeon {
 public:
  static std::uint32_t nodeCount(const BddManager& mgr) {
    return static_cast<std::uint32_t>(mgr.nodes_.size());
  }

  static unsigned rawVar(const BddManager& mgr, std::uint32_t index) {
    return mgr.nodes_[index].var;
  }
  static bool isFree(const BddManager& mgr, std::uint32_t index) {
    return mgr.nodes_[index].var == BddManager::kFreeVar;
  }
  static Edge rawHi(const BddManager& mgr, std::uint32_t index) {
    return mgr.nodes_[index].hi;
  }
  static Edge rawLo(const BddManager& mgr, std::uint32_t index) {
    return mgr.nodes_[index].lo;
  }

  /// Overwrites a node's function fields, bypassing mk() and the unique
  /// table entirely.
  static void setNodeFields(BddManager& mgr, std::uint32_t index, unsigned var,
                            Edge hi, Edge lo) {
    ICBDD_LINT_SUPPRESS(L3, "surgeon hook: corrupting nodes is the point");
    BddManager::Node& n = mgr.nodes_[index];
    n.var = var;
    n.hi = hi;
    n.lo = lo;
  }

  /// Swaps a node's children in place (breaks canonicity: the then-arc
  /// inherits the else-arc's complement bit, or the function changes).
  static void swapChildren(BddManager& mgr, std::uint32_t index) {
    ICBDD_LINT_SUPPRESS(L3, "surgeon hook: corrupting nodes is the point");
    BddManager::Node& n = mgr.nodes_[index];
    std::swap(n.hi, n.lo);
  }

  /// Sets the complement bit on a stored then-arc.
  static void complementThenArc(BddManager& mgr, std::uint32_t index) {
    mgr.nodes_[index].hi = edgeNot(mgr.nodes_[index].hi);
  }

  /// Forces a node's external reference count.
  static void setRef(BddManager& mgr, std::uint32_t index, std::uint32_t ref) {
    mgr.nodes_[index].ref = ref;
  }

  /// Unlinks a node from its unique-table chain without freeing it (the
  /// node stays live but becomes unfindable -- a rehash-completeness hole).
  static bool detachFromUniqueTable(BddManager& mgr, std::uint32_t index) {
    ICBDD_LINT_SUPPRESS(L3, "surgeon hook: walks raw chains on purpose");
    const BddManager::Node& n = mgr.nodes_[index];
    const std::size_t slot = mgr.hashNode(n.var, n.hi, n.lo);
    std::uint32_t* link = &mgr.buckets_[slot];
    while (*link != BddManager::kNil) {
      if (*link == index) {
        *link = mgr.nodes_[index].next;
        mgr.nodes_[index].next = BddManager::kNil;
        return true;
      }
      link = &mgr.nodes_[*link].next;
    }
    return false;
  }

  /// Desynchronizes the free-list counter from the actual chain.
  static void bumpFreeCount(BddManager& mgr, std::uint64_t delta) {
    mgr.freeCount_ += delta;
  }

  /// Repoints a projection edge at an arbitrary edge.
  static void setVarEdge(BddManager& mgr, unsigned var, Edge e) {
    mgr.varEdges_[var] = e;
  }

  /// Flips the result of the first valid computed-cache entry found.
  /// Returns false when the cache is empty.
  static bool corruptFirstCacheEntry(BddManager& mgr) {
    for (BddManager::CacheEntry& entry : mgr.cache_) {
      if (entry.op != BddManager::Op::kInvalid) {
        entry.result = edgeNot(entry.result);
        return true;
      }
    }
    return false;
  }

  /// Plants a cache entry whose operand points outside the arena.
  static void plantDanglingCacheEntry(BddManager& mgr) {
    BddManager::CacheEntry entry;
    entry.op = BddManager::Op::kAnd;
    entry.f = makeEdge(static_cast<std::uint32_t>(mgr.nodes_.size()) + 7, false);
    entry.g = kTrueEdge;
    entry.result = kTrueEdge;
    mgr.cache_[0] = entry;
  }
};

class PairTableSurgeon {
 public:
  /// Replaces the stored conjunction P_ij with an arbitrary BDD.
  static void replaceEntry(PairTable& table, std::size_t i, std::size_t j,
                           Bdd wrong) {
    PairTable::Entry& entry = table.table_[i][j];
    entry.conjunction = std::move(wrong);
  }

  /// Corrupts the cached size column of entry (i, j).
  static void corruptEntrySize(PairTable& table, std::size_t i, std::size_t j,
                               std::uint64_t size) {
    table.table_[i][j].size = size;
  }

  /// Corrupts the cached size of conjunct i.
  static void corruptConjunctSize(PairTable& table, std::size_t i,
                                  std::uint64_t size) {
    table.sizes_[i] = size;
  }
};

}  // namespace icb
