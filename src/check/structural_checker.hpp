// StructuralChecker: whole-arena audit of a BddManager.
//
// Validates, against the canonical-form contract documented in
// bdd/manager.hpp and docs/invariants.md:
//   * variable ordering    -- children strictly below their parents,
//   * canonical form       -- no complemented then-arcs, no redundant
//                             (hi == lo) nodes, no duplicate (var, hi, lo)
//                             triples (hash-consing uniqueness),
//   * unique-table completeness -- every live node findable by rehashing
//                             its triple, every chain entry live and in the
//                             right bucket, no chain cycles,
//   * free-list consistency -- chain length matches the freeCount_ counter
//                             and the number of freed slots,
//   * GC-root consistency  -- freed nodes carry no external references and
//                             every projection edge still denotes its
//                             variable.
//
// The checker never mutates the manager and never allocates nodes, so it is
// safe to call at any point, including from inside a corrupted manager's
// diagnosis (the doctor binary does exactly that).
#pragma once

#include "check/check.hpp"

namespace icb {

class BddManager;

class StructuralChecker {
 public:
  explicit StructuralChecker(const BddManager& mgr) : mgr_(mgr) {}

  /// Runs the audit.  kCheap covers the O(free-list + variables) subset
  /// (free-list and root consistency); kFull adds the O(arena) node walk
  /// and the unique-table sweep.  kOff returns an empty, passing report.
  [[nodiscard]] CheckReport run(CheckLevel effort = CheckLevel::kFull) const;

  /// run() + CheckReport::throwIfBroken().
  void throwIfBroken(CheckLevel effort = CheckLevel::kFull) const {
    run(effort).throwIfBroken();
  }

 private:
  void checkNodes(CheckReport& report) const;
  void checkUniqueTable(CheckReport& report) const;
  void checkFreeList(CheckReport& report) const;
  void checkRoots(CheckReport& report) const;

  const BddManager& mgr_;
};

/// Full structural audit that credits its own wall-clock cost back to the
/// manager's deadline.  The audit sites inside resource-limited phases (GC,
/// reordering, engine iterations) use this so ICBDD_CHECK_LEVEL=full slows
/// a run down but never flips its verdict to a spurious deadline abort.
void auditArenaCreditingTime(BddManager& mgr,
                             CheckLevel effort = CheckLevel::kFull);

}  // namespace icb
