// Plain-text table printer used by the benchmark harness to emit rows in the
// same layout as the paper's Tables 1-3.
#pragma once

#include <cstddef>
#include <ostream>
#include <string>
#include <vector>

namespace icb {

/// Accumulates rows of strings and prints them with aligned columns.
/// Column 0 is left-aligned, all other columns right-aligned (matching the
/// look of the paper's result tables).
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  void addRow(std::vector<std::string> cells);

  /// A full-width single-cell row, e.g. "Example: 8-Bit Wide Typed FIFO".
  void addSpan(std::string text);

  void print(std::ostream& os) const;

  [[nodiscard]] std::size_t rowCount() const { return rows_.size(); }

 private:
  struct Row {
    std::vector<std::string> cells;
    bool span = false;
  };
  std::vector<std::string> header_;
  std::vector<Row> rows_;
};

/// Formats a duration like the paper: M:SS for >= 1s, else e.g. "0:00.12".
std::string formatMinSec(double seconds);

/// Formats a byte count as "1234K" (the paper reports memory in kilobytes).
std::string formatKb(std::uint64_t bytes);

}  // namespace icb
