// Small deterministic PRNG (xoshiro256**) so tests and benchmarks are
// reproducible across platforms without dragging in <random> state.
#pragma once

#include <cstdint>

namespace icb {

/// Deterministic 64-bit PRNG.  Same seed => same sequence on every platform.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ull) {
    // SplitMix64 seeding to fill the state from a single word.
    std::uint64_t z = seed;
    for (auto& s : state_) {
      z += 0x9E3779B97F4A7C15ull;
      std::uint64_t x = z;
      x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
      x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
      s = x ^ (x >> 31);
    }
  }

  std::uint64_t next() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform value in [0, bound).  bound must be nonzero.
  std::uint64_t below(std::uint64_t bound) { return next() % bound; }

  bool coin() { return (next() & 1) != 0; }

  /// Uniform double in [0, 1).
  double unit() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t state_[4]{};
};

}  // namespace icb
