#include "util/table.hpp"

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <utility>

namespace icb {

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header)) {}

void TextTable::addRow(std::vector<std::string> cells) {
  rows_.push_back(Row{std::move(cells), /*span=*/false});
}

void TextTable::addSpan(std::string text) {
  rows_.push_back(Row{{std::move(text)}, /*span=*/true});
}

void TextTable::print(std::ostream& os) const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) {
    widths[c] = header_[c].size();
  }
  for (const Row& r : rows_) {
    if (r.span) continue;
    for (std::size_t c = 0; c < r.cells.size() && c < widths.size(); ++c) {
      widths[c] = std::max(widths[c], r.cells[c].size());
    }
  }

  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < widths.size(); ++c) {
      const std::string& s = c < cells.size() ? cells[c] : std::string{};
      if (c == 0) {
        os << s << std::string(widths[c] - s.size(), ' ');
      } else {
        os << "  " << std::string(widths[c] - s.size(), ' ') << s;
      }
    }
    os << '\n';
  };

  std::size_t total = 0;
  for (std::size_t c = 0; c < widths.size(); ++c) {
    total += widths[c] + (c == 0 ? 0 : 2);
  }

  emit(header_);
  os << std::string(total, '-') << '\n';
  for (const Row& r : rows_) {
    if (r.span) {
      os << "-- " << r.cells[0] << '\n';
    } else {
      emit(r.cells);
    }
  }
}

std::string formatMinSec(double seconds) {
  if (seconds < 0) seconds = 0;
  const auto whole = static_cast<std::int64_t>(seconds);
  const std::int64_t mins = whole / 60;
  const double rem = seconds - static_cast<double>(mins) * 60.0;
  char buf[64];
  if (seconds < 60.0) {
    std::snprintf(buf, sizeof buf, "%d:%05.2f", 0, rem);
  } else {
    std::snprintf(buf, sizeof buf, "%lld:%02d", static_cast<long long>(mins),
                  static_cast<int>(rem));
  }
  return buf;
}

std::string formatKb(std::uint64_t bytes) {
  return std::to_string((bytes + 1023) / 1024) + "K";
}

}  // namespace icb
