// Source markers consumed by the project lint gate (ci/lint/icbdd_lint.py).
//
// The gate enforces ICBDD-specific invariants no off-the-shelf checker
// knows (rule catalog and rationale in docs/static_analysis.md):
//
//   L1  no raw I/O or sleeping inside an engine iteration -- such work must
//       route through the deadline-credit helpers so it cannot flip a
//       resource-capped verdict;
//   L2  autoReorderIfNeeded() / checkpoint emission only at registered
//       iteration-boundary safe points;
//   L3  no raw interior BddNode pointer escapes a BddManager public API;
//   L4  every MetricsRegistry counter/gauge name matches the dotted-name
//       catalog in docs/observability.md;
//   L5  no naked std::memory_order_relaxed without an adjacent
//       "relaxed:" justification comment.
//
// Both macros compile to nothing; they exist so the discipline is declared
// in the code the rule governs, where reviewers and the lint can see it.
#pragma once

/// Registers the next statement(s) as an engine safe point: the iteration
/// boundary where no edge-level results are live, so reordering and
/// checkpoint emission are legal.  Rule L2 flags autoReorderIfNeeded() and
/// CheckpointEmitter::emit() call sites that are not under such a marker.
#define ICBDD_SAFE_POINT(what) static_assert(true, "icbdd safe point")

/// Suppresses one lint finding on this line or the next.  `rule` is the
/// bare rule id (L1..L5); `reason` must say why the rule does not apply.
/// The gate counts every suppression and reports the total in its summary,
/// so escapes stay visible instead of accumulating silently.
#define ICBDD_LINT_SUPPRESS(rule, reason) \
  static_assert(true, "icbdd lint suppression")
