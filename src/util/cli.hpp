// Minimal command-line flag parser for the example and benchmark binaries.
// Supports "--name value" and "--name=value" forms plus boolean switches.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace icb {

/// Parses argv into a flag map.  Unknown positional arguments are kept in
/// order and retrievable via positional().
class CliArgs {
 public:
  CliArgs(int argc, const char* const* argv);

  [[nodiscard]] bool has(const std::string& name) const;

  [[nodiscard]] std::string getString(const std::string& name,
                                      const std::string& def) const;
  [[nodiscard]] std::int64_t getInt(const std::string& name,
                                    std::int64_t def) const;
  [[nodiscard]] double getDouble(const std::string& name, double def) const;
  [[nodiscard]] bool getBool(const std::string& name, bool def) const;

  [[nodiscard]] const std::vector<std::string>& positional() const {
    return positional_;
  }

  [[nodiscard]] const std::string& programName() const { return program_; }

 private:
  std::string program_;
  std::map<std::string, std::string> flags_;
  std::vector<std::string> positional_;
};

}  // namespace icb
