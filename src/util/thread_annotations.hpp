// Clang thread-safety ("capability") analysis macros.
//
// The lock discipline of the concurrent pieces of this library -- the
// work-stealing scheduler (src/par/), the job service (src/svc/), the shared
// trace sink (src/obs/) -- historically lived in comments and tsan runs.
// tsan only catches races a test happens to execute; clang's -Wthread-safety
// proves the lock contracts on every path at compile time.  These macros make
// the contracts part of the type signatures:
//
//   ICBDD_GUARDED_BY(m)   data member readable/writable only with m held
//   ICBDD_REQUIRES(m)     function may only be called with m held
//   ICBDD_ACQUIRE(m)      function acquires m (and does not release it)
//   ICBDD_RELEASE(m)      function releases m
//   ICBDD_EXCLUDES(m)     function must NOT be called with m held
//
// The attributes exist only under clang (GCC parses none of them), so every
// macro expands to nothing when unsupported -- annotated headers compile
// identically everywhere, and the analysis runs wherever a clang toolchain is
// available (the lint-strict CI job; `cmake` auto-enables -Wthread-safety
// -Werror=thread-safety whenever the compiler supports it).
//
// libstdc++'s std::mutex carries no capability attribute, so annotations
// must name a capability-attributed type: use icb::Mutex / icb::MutexLock
// from util/mutex.hpp instead of std::mutex / std::lock_guard in any class
// that declares a lock contract.  docs/static_analysis.md is the full guide.
#pragma once

#if defined(__clang__) && defined(__has_attribute)
#define ICBDD_THREAD_ANNOTATION_IMPL(x) __attribute__((x))
#else
#define ICBDD_THREAD_ANNOTATION_IMPL(x)  // no-op: analysis is clang-only
#endif

/// Declares a type to be a capability (a lockable thing the analysis can
/// track).  `name` appears in diagnostics: ICBDD_CAPABILITY("mutex").
#define ICBDD_CAPABILITY(name) \
  ICBDD_THREAD_ANNOTATION_IMPL(capability(name))

/// Declares an RAII type whose constructor acquires and destructor releases
/// a capability (std::lock_guard-shaped types).
#define ICBDD_SCOPED_CAPABILITY \
  ICBDD_THREAD_ANNOTATION_IMPL(scoped_lockable)

/// Data member: may only be accessed while holding the given capability.
#define ICBDD_GUARDED_BY(x) ICBDD_THREAD_ANNOTATION_IMPL(guarded_by(x))

/// Pointer member: the *pointee* may only be accessed while holding the
/// given capability (the pointer itself is unguarded).
#define ICBDD_PT_GUARDED_BY(x) ICBDD_THREAD_ANNOTATION_IMPL(pt_guarded_by(x))

/// Function precondition: the listed capabilities must be held (exclusively).
#define ICBDD_REQUIRES(...) \
  ICBDD_THREAD_ANNOTATION_IMPL(requires_capability(__VA_ARGS__))

/// Function precondition: the listed capabilities must be held (shared).
#define ICBDD_REQUIRES_SHARED(...) \
  ICBDD_THREAD_ANNOTATION_IMPL(requires_shared_capability(__VA_ARGS__))

/// The function acquires the listed capabilities and holds them on return.
#define ICBDD_ACQUIRE(...) \
  ICBDD_THREAD_ANNOTATION_IMPL(acquire_capability(__VA_ARGS__))

/// The function releases the listed capabilities.
#define ICBDD_RELEASE(...) \
  ICBDD_THREAD_ANNOTATION_IMPL(release_capability(__VA_ARGS__))

/// The function acquires the capability iff it returns `result`.
#define ICBDD_TRY_ACQUIRE(result, ...) \
  ICBDD_THREAD_ANNOTATION_IMPL(try_acquire_capability(result, __VA_ARGS__))

/// Function precondition: the listed capabilities must NOT be held (deadlock
/// prevention for self-locking public entry points).
#define ICBDD_EXCLUDES(...) \
  ICBDD_THREAD_ANNOTATION_IMPL(locks_excluded(__VA_ARGS__))

/// Declares a required acquisition order between capabilities.
#define ICBDD_ACQUIRED_BEFORE(...) \
  ICBDD_THREAD_ANNOTATION_IMPL(acquired_before(__VA_ARGS__))
#define ICBDD_ACQUIRED_AFTER(...) \
  ICBDD_THREAD_ANNOTATION_IMPL(acquired_after(__VA_ARGS__))

/// The function returns a reference to the given capability.
#define ICBDD_RETURN_CAPABILITY(x) \
  ICBDD_THREAD_ANNOTATION_IMPL(lock_returned(x))

/// Escape hatch: the function body is not analyzed.  Use only where the
/// analysis cannot express the true contract, and say why in a comment.
#define ICBDD_NO_THREAD_SAFETY_ANALYSIS \
  ICBDD_THREAD_ANNOTATION_IMPL(no_thread_safety_analysis)

/// Runtime assertion that the calling thread holds the capability (pairs
/// with a real assert in the body when one is wanted).
#define ICBDD_ASSERT_CAPABILITY(x) \
  ICBDD_THREAD_ANNOTATION_IMPL(assert_capability(x))
