// Capability-annotated mutex wrappers.
//
// libstdc++ ships std::mutex without thread-safety attributes, so a member
// declared ICBDD_GUARDED_BY(someStdMutex) is rejected by clang's analysis
// ("argument is not a capability").  These thin wrappers give the library a
// lockable type the analysis understands; they add no state and compile to
// exactly the std::mutex calls they wrap.
//
//   icb::Mutex      a capability; lock()/unlock()/try_lock() are annotated.
//                   Also BasicLockable, so std::condition_variable_any can
//                   wait on it directly (see VerifyService::dispatcherLoop).
//   icb::MutexLock  scoped acquisition (std::unique_lock-shaped: tracks
//                   ownership, so manual unlock()/lock() around a long call
//                   is safe and visible to the analysis).
#pragma once

#include <mutex>

#include "util/thread_annotations.hpp"

namespace icb {

class ICBDD_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() ICBDD_ACQUIRE() { m_.lock(); }
  void unlock() ICBDD_RELEASE() { m_.unlock(); }
  bool try_lock() ICBDD_TRY_ACQUIRE(true) { return m_.try_lock(); }

 private:
  std::mutex m_;
};

/// RAII lock over icb::Mutex.  Ownership-tracking like std::unique_lock:
/// unlock()/lock() may bracket a section that must run unlocked (a batch
/// dispatch, a blocking callback) and the destructor releases only if held.
class ICBDD_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& m) ICBDD_ACQUIRE(m) : m_(m), held_(true) {
    m_.lock();
  }
  ~MutexLock() ICBDD_RELEASE() {
    if (held_) m_.unlock();
  }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

  void unlock() ICBDD_RELEASE() {
    m_.unlock();
    held_ = false;
  }
  void lock() ICBDD_ACQUIRE() {
    m_.lock();
    held_ = true;
  }

 private:
  Mutex& m_;
  bool held_;
};

}  // namespace icb
