// Wall-clock stopwatch and deadline helpers used by the verification engines
// to reproduce the paper's "exceeded 40 minutes"-style resource caps.
#pragma once

#include <chrono>
#include <cstdint>
#include <optional>

namespace icb {

/// Monotonic stopwatch.  Started on construction; `elapsed*` may be called
/// any number of times without stopping it.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void reset() { start_ = Clock::now(); }

  [[nodiscard]] double elapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  [[nodiscard]] std::int64_t elapsedMs() const {
    return std::chrono::duration_cast<std::chrono::milliseconds>(Clock::now() -
                                                                 start_)
        .count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// A point in time after which resource-limited computations must abort.
/// `Deadline{}` (default) never expires.
class Deadline {
 public:
  Deadline() = default;

  static Deadline afterSeconds(double seconds) {
    Deadline d;
    d.when_ = Clock::now() + std::chrono::duration_cast<Clock::duration>(
                                 std::chrono::duration<double>(seconds));
    return d;
  }

  [[nodiscard]] bool expired() const {
    return when_.has_value() && Clock::now() >= *when_;
  }

  [[nodiscard]] bool isSet() const { return when_.has_value(); }

  /// Pushes the deadline back; no-op when unset.  Used to credit time spent
  /// in diagnostic audits (ICBDD_CHECK_LEVEL) back to the computation being
  /// limited, so enabling the checkers cannot flip a verdict to a spurious
  /// deadline abort.
  void extendBySeconds(double seconds) {
    if (when_.has_value()) {
      *when_ += std::chrono::duration_cast<Clock::duration>(
          std::chrono::duration<double>(seconds));
    }
  }

 private:
  using Clock = std::chrono::steady_clock;
  std::optional<Clock::time_point> when_;
};

}  // namespace icb
