#include "obs/prometheus.hpp"

#include <array>
#include <sstream>

#include "obs/histogram.hpp"
#include "obs/jsonl.hpp"
#include "obs/metrics.hpp"

namespace icb::obs {

namespace {

constexpr MetricCatalogEntry kCatalog[] = {
#include "obs/metric_catalog.inc"
};

/// True when wildcard segment-list `entry` ("bdd.apply.<op>.latency_us")
/// matches concrete `name`: segment counts agree, `<op>` segments match one
/// nonempty lowercase identifier, everything else matches literally.
bool wildcardMatches(std::string_view entry, std::string_view name) {
  while (true) {
    const std::size_t entryDot = entry.find('.');
    const std::size_t nameDot = name.find('.');
    const std::string_view entrySeg = entry.substr(0, entryDot);
    const std::string_view nameSeg = name.substr(0, nameDot);
    if (entrySeg == "<op>") {
      if (nameSeg.empty()) return false;
      for (const char c : nameSeg) {
        if ((c < 'a' || c > 'z') && (c < '0' || c > '9') && c != '_') {
          return false;
        }
      }
    } else if (entrySeg != nameSeg) {
      return false;
    }
    const bool entryDone = entryDot == std::string_view::npos;
    const bool nameDone = nameDot == std::string_view::npos;
    if (entryDone || nameDone) return entryDone && nameDone;
    entry.remove_prefix(entryDot + 1);
    name.remove_prefix(nameDot + 1);
  }
}

/// HELP text escaping per the exposition format: backslash and newline.
std::string escapeHelp(std::string_view help) {
  std::string out;
  out.reserve(help.size());
  for (const char c : help) {
    if (c == '\\') {
      out += "\\\\";
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out += c;
    }
  }
  return out;
}

void renderHeader(std::ostringstream& os, const std::string& promName,
                  std::string_view dottedName, MetricKind kind) {
  static constexpr std::array<std::string_view, 3> kKindNames = {
      "counter", "gauge", "histogram"};
  const MetricCatalogEntry* entry = findCatalogEntry(dottedName);
  if (entry != nullptr) {
    os << "# HELP " << promName << ' ' << escapeHelp(entry->help) << '\n';
  }
  os << "# TYPE " << promName << ' '
     << kKindNames[static_cast<std::size_t>(kind)] << '\n';
}

}  // namespace

std::span<const MetricCatalogEntry> metricCatalog() { return kCatalog; }

const MetricCatalogEntry* findCatalogEntry(std::string_view name) {
  for (const MetricCatalogEntry& entry : kCatalog) {
    if (entry.name.find('<') != std::string_view::npos
            ? wildcardMatches(entry.name, name)
            : entry.name == name) {
      return &entry;
    }
  }
  return nullptr;
}

std::string prometheusName(std::string_view name) {
  std::string out = "icbdd_";
  out.reserve(out.size() + name.size());
  for (const char c : name) out += c == '.' ? '_' : c;
  return out;
}

std::string prometheusRender(const MetricsRegistry& registry) {
  std::ostringstream os;
  for (const auto& [name, value] : registry.counters()) {
    const std::string prom = prometheusName(name);
    renderHeader(os, prom, name, MetricKind::kCounter);
    os << prom << ' ' << value << '\n';
  }
  for (const auto& [name, value] : registry.gauges()) {
    const std::string prom = prometheusName(name);
    renderHeader(os, prom, name, MetricKind::kGauge);
    os << prom << ' ' << jsonNumber(value) << '\n';
  }
  for (const auto& [name, h] : registry.histograms()) {
    const std::string prom = prometheusName(name);
    renderHeader(os, prom, name, MetricKind::kHistogram);
    // Cumulative buckets: only occupied bounds are emitted (plus the
    // mandatory +Inf, which must equal _count) -- legal exposition, and it
    // keeps a 64-slot histogram from printing 64 mostly-zero lines.
    std::uint64_t cumulative = 0;
    for (std::size_t b = 0; b + 1 < Histogram::kBuckets; ++b) {
      const std::uint64_t inBucket = h.bucketCount(b);
      if (inBucket == 0) continue;
      cumulative += inBucket;
      os << prom << "_bucket{le=\"" << Histogram::bucketUpperBound(b)
         << "\"} " << cumulative << '\n';
    }
    os << prom << "_bucket{le=\"+Inf\"} " << h.count() << '\n';
    os << prom << "_sum " << h.sum() << '\n';
    os << prom << "_count " << h.count() << '\n';
  }
  return os.str();
}

}  // namespace icb::obs
