// Minimal embedded HTTP server for the scrape endpoints.
//
// Deliberately tiny: a blocking accept loop on one background thread, one
// request per connection, GET only.  Prometheus scrapes arrive seconds
// apart from one or two pollers, so concurrency machinery would be pure
// liability next to a verification engine; anything but GET gets a 405 and
// malformed request lines get a 400.  The handler runs on the server
// thread -- handlers must therefore only touch thread-safe state (the
// service's SharedMetrics snapshot path), and a throwing handler is
// answered with a 500 instead of taking the process down.
//
// Lifecycle: the constructor binds, listens, and starts the thread (port 0
// asks the kernel for an ephemeral port -- port() reports the real one);
// stop()/the destructor shut the listening socket down and join.  A
// constructor failure throws std::runtime_error with errno text.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <thread>

namespace icb::obs {

struct HttpResponse {
  int status = 200;  ///< 200, 404, 503, ... (a few canonical reasons known)
  std::string contentType = "text/plain; charset=utf-8";
  std::string body;
};

/// Routes one GET by path ("/metrics"); runs on the server thread.
using HttpHandler = std::function<HttpResponse(const std::string& path)>;

class HttpServer {
 public:
  /// Binds 0.0.0.0:`port` (0 = ephemeral), starts serving immediately.
  HttpServer(std::uint16_t port, HttpHandler handler);
  ~HttpServer();

  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  /// The bound port -- the kernel's pick when constructed with 0.
  [[nodiscard]] std::uint16_t port() const { return port_; }

  /// Stops accepting, joins the server thread.  Idempotent.
  void stop();

 private:
  void serveLoop();

  /// stop() exchanges this to -1 and shuts the socket down to wake the
  /// blocked accept(); the fd itself is closed only after the join, so the
  /// server thread can never race a closed (possibly reused) descriptor.
  std::atomic<int> listenFd_{-1};
  std::uint16_t port_ = 0;
  HttpHandler handler_;
  std::thread thread_;
};

}  // namespace icb::obs
