// Cold-path metrics aggregation.
//
// The hot paths keep their statistics in plain per-object structs (BddStats,
// TerminationStats, EvaluatePolicyResult, ...) -- no maps, no atomics, no
// string keys anywhere near an inner loop.  A MetricsRegistry is the
// *snapshot* side: engines and tools fold those native structs into one
// flat, dotted-name catalog (bdd.cache.ite.hits, ici.term.step4_shannon,
// ...) that prints uniformly and serializes to JSON for the bench --json
// output.  docs/observability.md lists every name the capture helpers emit.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <string_view>

#include "obs/histogram.hpp"
#include "util/mutex.hpp"
#include "util/thread_annotations.hpp"

namespace icb {
class BddManager;
struct TerminationStats;
struct EvaluatePolicyResult;
struct SimplifyResult;
}  // namespace icb

namespace icb::obs {

/// A named bag of monotonic counters (uint64, merged by addition), gauges
/// (double, merged by last-writer-wins unless noted), and histograms
/// (merged bucket-wise).  Ordered maps keep the output deterministic.
class MetricsRegistry {
 public:
  void add(std::string_view name, std::uint64_t delta = 1);
  void setGauge(std::string_view name, double value);
  /// Keeps the larger of the existing gauge and `value` (for high-water
  /// marks like recursion depth, where merging runs must not lose the peak).
  void setGaugeMax(std::string_view name, double value);
  /// Records one sample into the named histogram (created on first use).
  void recordHistogram(std::string_view name, std::uint64_t value);
  /// Folds a whole native Histogram in (bucket-wise add); no-op when empty.
  void mergeHistogram(std::string_view name, const Histogram& h);

  /// Reads a counter; absent names read as 0.
  [[nodiscard]] std::uint64_t counter(std::string_view name) const;
  /// Reads a gauge; absent names read as 0.0.
  [[nodiscard]] double gauge(std::string_view name) const;
  /// Reads a histogram; nullptr when the name was never recorded.
  [[nodiscard]] const Histogram* histogram(std::string_view name) const;

  [[nodiscard]] bool empty() const {
    return counters_.empty() && gauges_.empty() && histograms_.empty();
  }
  void clear();

  /// Folds `other` in: counters add, gauges overwrite (latest wins).
  void merge(const MetricsRegistry& other);

  // -- capture helpers: native stat structs -> catalog names --------------
  void captureBdd(const BddManager& mgr);
  void captureTermination(const TerminationStats& stats);
  void capturePolicy(const EvaluatePolicyResult& result);
  void captureSimplify(const SimplifyResult& result);

  /// One JSON object: {"counters": {...}, "gauges": {...}} plus a
  /// "histograms" object of per-name summaries when any were recorded.
  [[nodiscard]] std::string toJson() const;

  /// Aligned name = value lines, one metric per line.
  void print(std::ostream& os, std::string_view indent = "  ") const;

  [[nodiscard]] const std::map<std::string, std::uint64_t>& counters() const {
    return counters_;
  }
  [[nodiscard]] const std::map<std::string, double>& gauges() const {
    return gauges_;
  }
  [[nodiscard]] const std::map<std::string, Histogram>& histograms() const {
    return histograms_;
  }

 private:
  std::map<std::string, std::uint64_t> counters_;
  std::map<std::string, double> gauges_;
  std::map<std::string, Histogram> histograms_;
};

/// Mutex-protected MetricsRegistry for registries shared across threads
/// (the job service's counters, a future Prometheus scrape endpoint).
/// MetricsRegistry itself stays lock-free-by-confinement -- engines own
/// theirs exclusively -- so the cost of synchronization is paid only where
/// sharing is real.  All methods are safe to call from any thread.
class SharedMetrics {
 public:
  void add(std::string_view name, std::uint64_t delta = 1)
      ICBDD_EXCLUDES(mutex_) {
    const MutexLock lock(mutex_);
    registry_.add(name, delta);
  }
  void setGauge(std::string_view name, double value) ICBDD_EXCLUDES(mutex_) {
    const MutexLock lock(mutex_);
    registry_.setGauge(name, value);
  }
  void setGaugeMax(std::string_view name, double value)
      ICBDD_EXCLUDES(mutex_) {
    const MutexLock lock(mutex_);
    registry_.setGaugeMax(name, value);
  }
  void recordHistogram(std::string_view name, std::uint64_t value)
      ICBDD_EXCLUDES(mutex_) {
    const MutexLock lock(mutex_);
    registry_.recordHistogram(name, value);
  }
  void mergeHistogram(std::string_view name, const Histogram& h)
      ICBDD_EXCLUDES(mutex_) {
    const MutexLock lock(mutex_);
    registry_.mergeHistogram(name, h);
  }
  void merge(const MetricsRegistry& other) ICBDD_EXCLUDES(mutex_) {
    const MutexLock lock(mutex_);
    registry_.merge(other);
  }

  /// Point-in-time copy; the caller's snapshot is immune to later updates.
  [[nodiscard]] MetricsRegistry snapshot() const ICBDD_EXCLUDES(mutex_) {
    const MutexLock lock(mutex_);
    return registry_;
  }

 private:
  mutable Mutex mutex_;
  MetricsRegistry registry_ ICBDD_GUARDED_BY(mutex_);
};

}  // namespace icb::obs
